// Benchmark: compare Backward-Sort against Quicksort and Timsort
// inside the full system — a client-server benchmark run over TCP, the
// shape of the paper's Figures 13–21 (one cell each).
//
//	go run ./examples/benchmark
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/rpc"
)

func main() {
	fmt.Println("write-pct=0.90, LogNormal(1,4), batch=500, 4 clients over TCP")
	fmt.Printf("%-10s %14s %12s %12s %14s\n",
		"algo", "query pts/s", "flush ms", "sort ms", "total latency")
	for _, algo := range []string{"backward", "quick", "tim"} {
		res, err := runOne(algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.0f %12.3f %12.3f %14v\n",
			algo, res.QueryThroughput, res.AvgFlushMs, res.AvgSortMs, res.TotalLatency)
	}
}

func runOne(algo string) (bench.Result, error) {
	dir, err := os.MkdirTemp("", "bench-example-*")
	if err != nil {
		return bench.Result{}, err
	}
	defer os.RemoveAll(dir)

	eng, err := engine.Open(engine.Config{Dir: dir, MemTableSize: 50000, Algorithm: algo})
	if err != nil {
		return bench.Result{}, err
	}
	defer eng.Close()

	srv := rpc.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return bench.Result{}, err
	}
	defer srv.Close()

	client, err := rpc.Dial(addr)
	if err != nil {
		return bench.Result{}, err
	}
	defer client.Close()

	return bench.Run(client, bench.Config{
		WritePercent: 0.9,
		BatchSize:    500,
		Operations:   400,
		Sensors:      4,
		Dataset:      "lognormal",
		Mu:           1,
		Sigma:        4,
		Clients:      4,
		Seed:         1,
	})
}
