// Downstream: the paper's Section VI-E application — train the
// from-scratch LSTM forecaster on the same series in arrival
// (disordered) order and in time (ordered) order, showing why
// downstream analytics need sorted time series.
//
//	go run ./examples/downstream
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/dataset"
	"repro/internal/lstm"
)

func main() {
	const n = 6000
	fmt.Println("LSTM(input=10, hidden=2), 70/30 train/test, LogNormal(1,σ) delays")
	fmt.Printf("%-8s %12s %12s %14s\n", "sigma", "train MSE", "test MSE", "ordered test")
	for _, sigma := range []float64{0, 0.5, 1, 2, 4} {
		series := dataset.LogNormal(n, 1, sigma, 11)

		// Disordered: values in arrival order, as a system without
		// sorting would hand them to the model.
		dis, err := lstm.TrainForecast(series.Values, lstm.Config{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}

		// Ordered: the same records sorted by timestamp first.
		type tv struct {
			t int64
			v float64
		}
		pairs := make([]tv, series.Len())
		for i := range pairs {
			pairs[i] = tv{series.Times[i], series.Values[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].t < pairs[b].t })
		orderedVals := make([]float64, len(pairs))
		for i := range pairs {
			orderedVals[i] = pairs[i].v
		}
		ord, err := lstm.TrainForecast(orderedVals, lstm.Config{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8g %12.4f %12.4f %14.4f\n", sigma, dis.TrainMSE, dis.TestMSE, ord.TestMSE)
	}
	fmt.Println("\nordered test MSE stays flat across σ; disordered degrades as σ grows.")
}
