// Aggregation: windowed analytics over out-of-order ingestion — the
// paper's motivating downstream use ("computing the average speed of
// an engine in every minute"). Points arrive disordered; the engine
// sorts with Backward-Sort; the aggregation layer then computes
// correct per-window statistics, locally and over the TCP protocol.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/rpc"
	"repro/internal/stream"
)

func main() {
	dir, err := os.MkdirTemp("", "agg-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := engine.Open(engine.Config{Dir: dir, MemTableSize: 30000, Algorithm: "backward"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 100k out-of-order points; generation interval is 1000 ticks, so
	// a "minute" window of 60 samples is 60,000 ticks.
	s := dataset.LogNormal(100000, 1, 2, 21)
	for i := range s.Times {
		if err := eng.Insert("engine.speed", s.Times[i], 60+s.Values[i]); err != nil {
			log.Fatal(err)
		}
	}

	const window = 60000
	wins, err := query.WindowQuery(eng, "engine.speed", 0, 10*window, window, query.Avg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("average engine speed per minute (first 10 windows):")
	for _, w := range wins {
		fmt.Printf("  [%8d, %8d): avg %.2f over %d samples\n", w.Start, w.Start+window, w.Value, w.Count)
	}

	maxWins, err := query.WindowQuery(eng, "engine.speed", 0, 5*window, window, query.Max)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("peak speed per minute (first 5 windows):")
	for _, w := range maxWins {
		fmt.Printf("  [%8d, %8d): max %.2f\n", w.Start, w.Start+window, w.Value)
	}

	// The streaming alternative (related work §VII-B): aggregate
	// out-of-order events on arrival with a watermark + allowed
	// lateness instead of sorting. With lateness covering the delays
	// it matches the sorted answer; with less it silently drops.
	var streamed []stream.WindowResult
	agg, err := stream.NewAggregator(window, 200000, query.Avg, func(w stream.WindowResult) {
		streamed = append(streamed, w)
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range s.Times {
		agg.Insert(s.Times[i], 60+s.Values[i])
	}
	agg.Close()
	fmt.Printf("streaming path: %d windows emitted, %d events dropped as too late\n",
		agg.Emitted(), agg.Dropped())
	if len(streamed) > 0 && len(wins) > 0 {
		fmt.Printf("first window, streaming vs sorted: %.2f vs %.2f\n", streamed[0].Value, wins[0].Value)
	}

	// The same aggregation over the wire, the way a dashboard would.
	srv := rpc.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	client, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	remote, err := client.Aggregate("engine.speed", 0, 3*window, window, query.Count)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("remote count per minute (first 3 windows):")
	for _, w := range remote {
		fmt.Printf("  [%8d, %8d): %d points\n", w.Start, w.Start+window, w.Count)
	}
}
