// Quickstart: sort an out-of-order time series with Backward-Sort.
//
// The example builds a TVList (IoTDB's blocked memtable column),
// appends delay-only out-of-order points, and sorts it in place,
// printing what the algorithm decided (block size, merges, overlap).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/inversion"
	"repro/internal/tvlist"
)

func main() {
	// Generate 50k points whose arrival order is disturbed by
	// LogNormal(1, 2) delays — the paper's synthetic workload.
	series := dataset.LogNormal(50000, 1, 2, 42)
	fmt.Printf("generated %d points, %d inversions, sorted=%v\n",
		series.Len(), inversion.Count(series.Times), inversion.IsSorted(series.Times))

	// Load them into a TVList exactly as the storage engine would.
	list := tvlist.NewDouble()
	for i := range series.Times {
		list.Put(series.Times[i], series.Values[i])
	}
	fmt.Printf("TVList: %d points in %d arrays of %d, sorted=%v\n",
		list.Len(), list.MemoryArrays(), tvlist.DefaultArrayLen, list.Sorted())

	// Sort with Backward-Sort and inspect the trace.
	var trace core.Trace
	list.Sort(func(s core.Sortable) {
		trace = core.BackwardSort(s, core.Options{})
	})
	fmt.Printf("backward-sort: block size L=%d (found in %d iterations), %d blocks, %d merges\n",
		trace.BlockSize, trace.SearchIterations, trace.Blocks, trace.Merges)
	if trace.Merges > 0 {
		fmt.Printf("average overlap between adjacent sorted blocks: %.2f points (max %d)\n",
			float64(trace.OverlapTotal)/float64(trace.Merges), trace.MaxOverlap)
	}
	fmt.Printf("sorted=%v, first=(%d), last=(%d)\n",
		core.IsSorted(list), list.Time(0), list.Time(list.Len()-1))

	// The same API works for plain slices via core.Pairs.
	times := []int64{10, 30, 20, 50, 40}
	values := []string{"a", "c", "b", "e", "d"}
	core.BackwardSort(core.NewPairs(times, values), core.Options{})
	fmt.Println("pairs after sort:", times, values)
}
