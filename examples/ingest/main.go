// Ingest: run the storage engine end-to-end — out-of-order writes,
// the separation policy, automatic flushing (with Backward-Sort in the
// flush path), and time-range queries across memtable and files.
//
//	go run ./examples/ingest
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/engine"
)

func main() {
	dir, err := os.MkdirTemp("", "ingest-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := engine.Open(engine.Config{
		Dir:          dir,
		MemTableSize: 20000, // flush every 20k points
		Algorithm:    "backward",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Ingest two sensors with different disorder profiles.
	cb := dataset.CitiBike201808(60000, 7)
	sam := dataset.SamsungS10(60000, 7)
	for i := 0; i < 60000; i++ {
		if err := eng.Insert("station.trips", cb.Times[i], cb.Values[i]); err != nil {
			log.Fatal(err)
		}
		if err := eng.Insert("phone.accel", sam.Times[i], sam.Values[i]); err != nil {
			log.Fatal(err)
		}
	}

	// A very late point: the separation policy diverts it to the
	// unsequence memtable instead of disturbing the sequence path.
	if err := eng.Insert("phone.accel", 5, -1); err != nil {
		log.Fatal(err)
	}

	eng.WaitFlushes() // let the asynchronous drains finish before reading stats
	st := eng.Stats()
	fmt.Printf("flushes: %d, avg flush %.2f ms (sorting %.2f ms of it)\n",
		st.FlushCount, st.AvgFlushMillis, st.AvgSortMillis)
	fmt.Printf("separation policy: %d sequence points, %d unsequence points\n",
		st.SeqPoints, st.UnseqPoints)
	fmt.Printf("files on disk: %d, points still in memtable: %d\n", st.Files, st.MemTablePoints)

	// Range query near the newest data (the benchmark's query shape).
	latest, _ := eng.LatestTime("phone.accel")
	out, err := eng.Query("phone.accel", latest-50000, latest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query [latest-50000, latest]: %d points, first t=%d, last t=%d\n",
		len(out), out[0].T, out[len(out)-1].T)

	// The late point is still found, merged from the unsequence path.
	late, err := eng.Query("phone.accel", 5, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late point query: %+v\n", late)
}
