// Package lstm implements the downstream application of the paper's
// Section VI-E: a small LSTM forecaster (input size 10, hidden size 2,
// as in the paper) trained to predict the next value of a time series,
// used to show that out-of-order data degrades learning — the first
// 70% of the series trains the network and the last 30% tests it,
// reporting MSE for both.
//
// The network is written from scratch on float64 slices: forward pass,
// backpropagation through time, and Adam updates. With hidden size 2
// the matrices are tiny, so the pure-Go implementation is fast enough
// to sweep the paper's σ values in tests.
package lstm

import (
	"fmt"
	"math"
	"math/rand"
)

// Config configures a forecaster. Zero values select the paper's
// setup.
type Config struct {
	InputSize  int     // window width fed per timestep (paper: 10)
	HiddenSize int     // LSTM hidden units (paper: 2)
	SeqLen     int     // BPTT unroll length (default 8)
	Epochs     int     // training epochs (default 8)
	LearnRate  float64 // Adam step size (default 0.01)
	Seed       int64   // weight init & shuffling seed
}

func (c Config) withDefaults() Config {
	if c.InputSize <= 0 {
		c.InputSize = 10
	}
	if c.HiddenSize <= 0 {
		c.HiddenSize = 2
	}
	if c.SeqLen <= 0 {
		c.SeqLen = 8
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.01
	}
	return c
}

// Network is an LSTM with a linear head producing one value.
type Network struct {
	cfg Config
	// Gate weights: rows = 4*hidden (i, f, g, o stacked), cols =
	// input+hidden. One flat slice, row-major.
	w  []float64
	b  []float64
	wy []float64 // 1 x hidden output head
	by float64

	// Adam state.
	mW, vW   []float64
	mB, vB   []float64
	mWy, vWy []float64
	mBy, vBy float64
	step     int
}

// NewNetwork initializes a network with small random weights.
func NewNetwork(cfg Config) *Network {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	in := cfg.InputSize + cfg.HiddenSize
	rows := 4 * cfg.HiddenSize
	n := &Network{cfg: cfg}
	n.w = make([]float64, rows*in)
	scale := 1.0 / math.Sqrt(float64(in))
	for i := range n.w {
		n.w[i] = r.NormFloat64() * scale
	}
	n.b = make([]float64, rows)
	// Forget-gate bias starts at 1, the standard trick for gradient
	// flow early in training.
	for h := 0; h < cfg.HiddenSize; h++ {
		n.b[cfg.HiddenSize+h] = 1
	}
	n.wy = make([]float64, cfg.HiddenSize)
	for i := range n.wy {
		n.wy[i] = r.NormFloat64() * scale
	}
	n.mW = make([]float64, len(n.w))
	n.vW = make([]float64, len(n.w))
	n.mB = make([]float64, len(n.b))
	n.vB = make([]float64, len(n.b))
	n.mWy = make([]float64, len(n.wy))
	n.vWy = make([]float64, len(n.wy))
	return n
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// stepCache holds forward-pass intermediates for BPTT.
type stepCache struct {
	x          []float64 // input window
	hPrev      []float64
	cPrev      []float64
	i, f, g, o []float64
	c, h       []float64
}

// forward runs one timestep; returns new hidden/cell and the cache.
func (n *Network) forward(x, hPrev, cPrev []float64) stepCache {
	H := n.cfg.HiddenSize
	in := n.cfg.InputSize + H
	z := make([]float64, in)
	copy(z, x)
	copy(z[n.cfg.InputSize:], hPrev)
	cache := stepCache{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: make([]float64, H), f: make([]float64, H),
		g: make([]float64, H), o: make([]float64, H),
		c: make([]float64, H), h: make([]float64, H),
	}
	for h := 0; h < H; h++ {
		var ai, af, ag, ao float64
		rowI := (0*H + h) * in
		rowF := (1*H + h) * in
		rowG := (2*H + h) * in
		rowO := (3*H + h) * in
		for k := 0; k < in; k++ {
			zk := z[k]
			ai += n.w[rowI+k] * zk
			af += n.w[rowF+k] * zk
			ag += n.w[rowG+k] * zk
			ao += n.w[rowO+k] * zk
		}
		cache.i[h] = sigmoid(ai + n.b[0*H+h])
		cache.f[h] = sigmoid(af + n.b[1*H+h])
		cache.g[h] = math.Tanh(ag + n.b[2*H+h])
		cache.o[h] = sigmoid(ao + n.b[3*H+h])
		cache.c[h] = cache.f[h]*cPrev[h] + cache.i[h]*cache.g[h]
		cache.h[h] = cache.o[h] * math.Tanh(cache.c[h])
	}
	return cache
}

// predictFrom maps a hidden state to the output value.
func (n *Network) predictFrom(h []float64) float64 {
	y := n.by
	for k, w := range n.wy {
		y += w * h[k]
	}
	return y
}

// Predict runs the network over a sequence of input windows and
// returns the forecast after the last step.
func (n *Network) Predict(seq [][]float64) float64 {
	H := n.cfg.HiddenSize
	h := make([]float64, H)
	c := make([]float64, H)
	for _, x := range seq {
		cache := n.forward(x, h, c)
		h, c = cache.h, cache.c
	}
	return n.predictFrom(h)
}

// trainSeq runs forward + BPTT on one (sequence, target) sample and
// applies an Adam step. Returns the squared error before the update.
func (n *Network) trainSeq(seq [][]float64, target float64) float64 {
	H := n.cfg.HiddenSize
	in := n.cfg.InputSize + H
	caches := make([]stepCache, len(seq))
	h := make([]float64, H)
	c := make([]float64, H)
	for t, x := range seq {
		caches[t] = n.forward(x, h, c)
		h, c = caches[t].h, caches[t].c
	}
	pred := n.predictFrom(h)
	diff := pred - target

	// Gradients.
	gW := make([]float64, len(n.w))
	gB := make([]float64, len(n.b))
	gWy := make([]float64, len(n.wy))
	gBy := 2 * diff
	dh := make([]float64, H)
	dc := make([]float64, H)
	for k := 0; k < H; k++ {
		gWy[k] = 2 * diff * h[k]
		dh[k] = 2 * diff * n.wy[k]
	}
	for t := len(seq) - 1; t >= 0; t-- {
		cc := caches[t]
		dhNext := make([]float64, H)
		dcNext := make([]float64, H)
		for hIdx := 0; hIdx < H; hIdx++ {
			tanhC := math.Tanh(cc.c[hIdx])
			do := dh[hIdx] * tanhC * cc.o[hIdx] * (1 - cc.o[hIdx])
			dcTot := dc[hIdx] + dh[hIdx]*cc.o[hIdx]*(1-tanhC*tanhC)
			di := dcTot * cc.g[hIdx] * cc.i[hIdx] * (1 - cc.i[hIdx])
			df := dcTot * cc.cPrev[hIdx] * cc.f[hIdx] * (1 - cc.f[hIdx])
			dg := dcTot * cc.i[hIdx] * (1 - cc.g[hIdx]*cc.g[hIdx])
			dcNext[hIdx] = dcTot * cc.f[hIdx]

			rows := [4]int{0*H + hIdx, 1*H + hIdx, 2*H + hIdx, 3*H + hIdx}
			dGates := [4]float64{di, df, dg, do}
			for gi := 0; gi < 4; gi++ {
				row := rows[gi] * in
				dgate := dGates[gi]
				gB[rows[gi]] += dgate
				for k := 0; k < n.cfg.InputSize; k++ {
					gW[row+k] += dgate * cc.x[k]
				}
				for k := 0; k < H; k++ {
					gW[row+n.cfg.InputSize+k] += dgate * cc.hPrev[k]
					dhNext[k] += dgate * n.w[row+n.cfg.InputSize+k]
				}
			}
		}
		dh, dc = dhNext, dcNext
	}

	n.adam(gW, gB, gWy, gBy)
	return diff * diff
}

// adam applies one Adam update.
func (n *Network) adam(gW, gB, gWy []float64, gBy float64) {
	n.step++
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	lr := n.cfg.LearnRate
	bc1 := 1 - math.Pow(beta1, float64(n.step))
	bc2 := 1 - math.Pow(beta2, float64(n.step))
	upd := func(w, g, m, v []float64) {
		for i := range w {
			m[i] = beta1*m[i] + (1-beta1)*g[i]
			v[i] = beta2*v[i] + (1-beta2)*g[i]*g[i]
			w[i] -= lr * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + eps)
		}
	}
	upd(n.w, gW, n.mW, n.vW)
	upd(n.b, gB, n.mB, n.vB)
	upd(n.wy, gWy, n.mWy, n.vWy)
	n.mBy = beta1*n.mBy + (1-beta1)*gBy
	n.vBy = beta2*n.vBy + (1-beta2)*gBy*gBy
	n.by -= lr * (n.mBy / bc1) / (math.Sqrt(n.vBy/bc2) + eps)
}

// Sample is one training example: a sequence of input windows and the
// next value to predict.
type Sample struct {
	Seq    [][]float64
	Target float64
}

// WindowSamples slices a value series into forecasting samples: each
// sample feeds seqLen consecutive windows of inputSize values and
// predicts the value immediately after the last window. Values are
// normalized by the caller if desired.
func WindowSamples(values []float64, inputSize, seqLen int) []Sample {
	span := inputSize + seqLen - 1 // values consumed by the windows
	var out []Sample
	for start := 0; start+span < len(values); start += seqLen {
		seq := make([][]float64, seqLen)
		for t := 0; t < seqLen; t++ {
			seq[t] = values[start+t : start+t+inputSize]
		}
		out = append(out, Sample{Seq: seq, Target: values[start+span]})
	}
	return out
}

// Result reports a training run.
type Result struct {
	TrainMSE float64
	TestMSE  float64
}

// TrainForecast trains on the first 70% of values and evaluates on the
// last 30%, the protocol of the paper's Figure 22(b). Values are
// standardized by the training split's mean and deviation.
func TrainForecast(values []float64, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if len(values) < (cfg.InputSize+cfg.SeqLen+1)*4 {
		return Result{}, fmt.Errorf("lstm: series too short: %d values", len(values))
	}
	cut := len(values) * 7 / 10

	// Standardize on training statistics.
	mean, std := 0.0, 0.0
	for _, v := range values[:cut] {
		mean += v
	}
	mean /= float64(cut)
	for _, v := range values[:cut] {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(cut))
	if std == 0 {
		std = 1
	}
	norm := make([]float64, len(values))
	for i, v := range values {
		norm[i] = (v - mean) / std
	}

	train := WindowSamples(norm[:cut], cfg.InputSize, cfg.SeqLen)
	test := WindowSamples(norm[cut:], cfg.InputSize, cfg.SeqLen)
	if len(train) == 0 || len(test) == 0 {
		return Result{}, fmt.Errorf("lstm: not enough samples (train %d, test %d)", len(train), len(test))
	}

	n := NewNetwork(cfg)
	r := rand.New(rand.NewSource(cfg.Seed + 2))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(len(train))
		for _, idx := range perm {
			n.trainSeq(train[idx].Seq, train[idx].Target)
		}
	}

	var res Result
	for _, s := range train {
		d := n.Predict(s.Seq) - s.Target
		res.TrainMSE += d * d
	}
	res.TrainMSE /= float64(len(train))
	for _, s := range test {
		d := n.Predict(s.Seq) - s.Target
		res.TestMSE += d * d
	}
	res.TestMSE /= float64(len(test))
	return res, nil
}
