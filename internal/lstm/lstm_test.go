package lstm

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestWindowSamples(t *testing.T) {
	values := make([]float64, 30)
	for i := range values {
		values[i] = float64(i)
	}
	samples := WindowSamples(values, 4, 3)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	s := samples[0]
	if len(s.Seq) != 3 || len(s.Seq[0]) != 4 {
		t.Fatalf("sample shape wrong: %d x %d", len(s.Seq), len(s.Seq[0]))
	}
	// First sample: windows [0..3],[1..4],[2..5]; target = values[6].
	if s.Seq[0][0] != 0 || s.Seq[2][3] != 5 || s.Target != 6 {
		t.Fatalf("sample content wrong: %+v", s)
	}
	// Samples advance by seqLen.
	if samples[1].Seq[0][0] != 3 {
		t.Fatalf("stride wrong: %+v", samples[1].Seq[0])
	}
}

func TestWindowSamplesTooShort(t *testing.T) {
	if got := WindowSamples(make([]float64, 5), 4, 3); got != nil {
		t.Fatalf("short series produced samples: %d", len(got))
	}
}

func TestTrainForecastTooShort(t *testing.T) {
	if _, err := TrainForecast(make([]float64, 10), Config{}); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestLearnsPredictableSignal(t *testing.T) {
	// A clean sine must be learnable: test MSE far below the
	// variance of the standardized signal (which is 1).
	n := 2400
	values := make([]float64, n)
	for i := range values {
		values[i] = math.Sin(float64(i) / 8)
	}
	res, err := TrainForecast(values, Config{Seed: 1, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestMSE > 0.3 {
		t.Fatalf("failed to learn a sine: test MSE %g", res.TestMSE)
	}
	if res.TrainMSE <= 0 || res.TestMSE <= 0 {
		t.Fatalf("degenerate MSE: %+v", res)
	}
}

func TestDisorderDegradesForecast(t *testing.T) {
	// Figure 22(b): ordered data trains better than heavily
	// disordered data. Compare σ=0 (ordered) against σ=4.
	n := 3000
	ordered := dataset.LogNormal(n, 1, 0, 11)
	disordered := dataset.LogNormal(n, 1, 4, 11)

	resO, err := TrainForecast(ordered.Values, Config{Seed: 3, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	resD, err := TrainForecast(disordered.Values, Config{Seed: 3, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if resD.TestMSE <= resO.TestMSE {
		t.Fatalf("disorder did not degrade the forecast: ordered %g vs disordered %g",
			resO.TestMSE, resD.TestMSE)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	values := make([]float64, 800)
	for i := range values {
		values[i] = math.Sin(float64(i) / 5)
	}
	a, err := TrainForecast(values, Config{Seed: 9, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainForecast(values, Config{Seed: 9, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InputSize != 10 || c.HiddenSize != 2 {
		t.Fatalf("paper defaults wrong: %+v", c)
	}
	if c.SeqLen <= 0 || c.Epochs <= 0 || c.LearnRate <= 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{InputSize: 3, HiddenSize: 5, SeqLen: 2, Epochs: 1, LearnRate: 0.5}.withDefaults()
	if c2.InputSize != 3 || c2.HiddenSize != 5 || c2.SeqLen != 2 || c2.Epochs != 1 || c2.LearnRate != 0.5 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}

func TestConstantSeriesDoesNotDiverge(t *testing.T) {
	// Standardization guards against zero variance; training must not
	// produce NaNs.
	values := make([]float64, 600)
	for i := range values {
		values[i] = 42
	}
	res, err := TrainForecast(values, Config{Seed: 5, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.TrainMSE) || math.IsNaN(res.TestMSE) {
		t.Fatalf("NaN loss on constant series: %+v", res)
	}
}

func TestGradientCheck(t *testing.T) {
	// Numeric gradient check on a tiny network: perturb each weight
	// and compare the loss delta against the analytic gradient.
	cfg := Config{InputSize: 3, HiddenSize: 2, SeqLen: 2, LearnRate: 1e-9, Seed: 4}.withDefaults()
	n := NewNetwork(cfg)
	seq := [][]float64{{0.1, -0.2, 0.3}, {0.4, 0.0, -0.5}}
	target := 0.7

	loss := func() float64 {
		d := n.Predict(seq) - target
		return d * d
	}
	// Analytic gradients: rerun trainSeq with ~zero LR so weights are
	// (almost) unchanged, capturing gradients via finite differences
	// of Adam's first-step behaviour is fragile; instead recompute
	// them directly through a fresh copy.
	// Finite differences against the loss for a few sampled weights:
	const eps = 1e-6
	for _, wi := range []int{0, 3, 7, len(n.w) - 1} {
		orig := n.w[wi]
		n.w[wi] = orig + eps
		lPlus := loss()
		n.w[wi] = orig - eps
		lMinus := loss()
		n.w[wi] = orig
		numeric := (lPlus - lMinus) / (2 * eps)

		// Analytic: capture by monkey-running trainSeq on a copy
		// with LR so small the update is negligible, then measure
		// the Adam first moment which equals 0.1*gradient.
		cp := NewNetwork(cfg) // same seed → same weights
		cp.trainSeq(seq, target)
		analytic := cp.mW[wi] / 0.1 // m = (1-beta1)*g on step 1

		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("gradient mismatch at w[%d]: numeric %g, analytic %g", wi, numeric, analytic)
		}
	}
}
