package tsfile

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeed builds a small valid v2 file and returns its raw bytes.
func fuzzSeed(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.gtsf")
	w, err := Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteChunk("s1", []int64{1, 2, 3}, []float64{1.5, -2, 3}); err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteChunk("s2", []int64{10, 20}, []float64{7, 8}); err != nil {
		tb.Fatal(err)
	}
	if err := WriteTypedChunk(w, "i", []int64{5, 6}, []int64{100, 200}); err != nil {
		tb.Fatal(err)
	}
	if err := WriteTypedChunk(w, "t", []int64{5, 6}, []string{"a", "bb"}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// fuzzSeedV3 builds a small valid v3 (blocked) file and returns its
// raw bytes, so the fuzzer mutates block indexes too.
func fuzzSeedV3(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed3.gtsf")
	w, err := Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	w.BlockPoints = 4
	times := make([]int64, 20)
	values := make([]float64, 20)
	for i := range times {
		times[i] = int64(i * 2)
		values[i] = float64(i) + 0.5
	}
	if err := w.WriteChunk("s1", times, values); err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteChunk("s2", times[:3], values[:3]); err != nil {
		tb.Fatal(err)
	}
	if err := WriteTypedChunk(w, "i", []int64{5, 6}, []int64{100, 200}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzOpen feeds arbitrary bytes through the full read path: Open,
// index iteration, ReadChunk, ReadTypedChunk, and QuerySensor. The
// invariant under test is that hostile input produces an error (almost
// always ErrCorrupt), never a panic, hang, or unbounded allocation.
func FuzzOpen(f *testing.F) {
	seed := fuzzSeed(f)
	f.Add(seed)
	// A few targeted mutations so the corpus starts near the
	// interesting surfaces: footer, index offset, index body.
	for _, i := range []int{len(seed) - 1, len(seed) - 9, len(seed) - 17, len(seed) / 2, 0} {
		if i >= 0 && i < len(seed) {
			mut := append([]byte(nil), seed...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	seed3 := fuzzSeedV3(f)
	f.Add(seed3)
	// Mutations targeting the v3 footer and block-index region.
	for _, i := range []int{len(seed3) - 1, len(seed3) - 9, len(seed3) - 17,
		len(seed3) - 24, len(seed3) - 32, len(seed3) / 2} {
		if i >= 0 && i < len(seed3) {
			mut := append([]byte(nil), seed3...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add(seed3[:len(seed3)-int(tailLen)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // keep iterations fast; size bugs are offset bugs
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "f.gtsf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(path)
		if err != nil {
			return // rejected cleanly — fine
		}
		defer r.Close()
		for _, m := range r.Index() {
			r.ReadChunk(m)
			r.ReadTypedChunk(m)
			r.QuerySensor(m.Sensor, m.MinTime, m.MaxTime)
		}
	})
}
