package tsfile

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeed builds a small valid v2 file and returns its raw bytes.
func fuzzSeed(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.gtsf")
	w, err := Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteChunk("s1", []int64{1, 2, 3}, []float64{1.5, -2, 3}); err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteChunk("s2", []int64{10, 20}, []float64{7, 8}); err != nil {
		tb.Fatal(err)
	}
	if err := WriteTypedChunk(w, "i", []int64{5, 6}, []int64{100, 200}); err != nil {
		tb.Fatal(err)
	}
	if err := WriteTypedChunk(w, "t", []int64{5, 6}, []string{"a", "bb"}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzOpen feeds arbitrary bytes through the full read path: Open,
// index iteration, ReadChunk, ReadTypedChunk, and QuerySensor. The
// invariant under test is that hostile input produces an error (almost
// always ErrCorrupt), never a panic, hang, or unbounded allocation.
func FuzzOpen(f *testing.F) {
	seed := fuzzSeed(f)
	f.Add(seed)
	// A few targeted mutations so the corpus starts near the
	// interesting surfaces: footer, index offset, index body.
	for _, i := range []int{len(seed) - 1, len(seed) - 9, len(seed) - 17, len(seed) / 2, 0} {
		if i >= 0 && i < len(seed) {
			mut := append([]byte(nil), seed...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // keep iterations fast; size bugs are offset bugs
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "f.gtsf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(path)
		if err != nil {
			return // rejected cleanly — fine
		}
		defer r.Close()
		for _, m := range r.Index() {
			r.ReadChunk(m)
			r.ReadTypedChunk(m)
			r.QuerySensor(m.Sensor, m.MinTime, m.MaxTime)
		}
	})
}
