package tsfile

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestStatsRoundTrip(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	times := []int64{1, 2, 3, 4}
	values := []float64{2.5, -1, 7, 3}
	if err := w.WriteChunk("s", times, values); err != nil {
		t.Fatal(err)
	}
	// Duplicate timestamps: no stats, because dedup at query time would
	// make them lie.
	if err := w.WriteChunk("d", []int64{1, 1, 2}, []float64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idx := r.Index()
	if len(idx) != 2 {
		t.Fatalf("index size %d", len(idx))
	}
	st := idx[0].Stats
	if st == nil {
		t.Fatal("clean chunk lost its statistics")
	}
	if st.Min != -1 || st.Max != 7 || st.Sum != 11.5 || st.First != 2.5 || st.Last != 3 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if idx[1].Stats != nil {
		t.Fatalf("duplicate-timestamp chunk has stats: %+v", idx[1].Stats)
	}
}

func TestTypedDoubleChunkGetsStats(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedChunk(w, "dbl", []int64{1, 2}, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedChunk(w, "int", []int64{1, 2}, []int64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idx := r.Index()
	if idx[0].Stats == nil || idx[0].Stats.Sum != 30 {
		t.Fatalf("double typed chunk stats: %+v", idx[0].Stats)
	}
	if idx[1].Stats != nil {
		t.Fatal("int64 typed chunk has float stats")
	}
}

// rewriteAsV1 converts a (v2) file on disk to the original
// statistics-free index format, so back-compat tests can exercise the
// version negotiation without an old binary.
func rewriteAsV1(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ftr := len(raw) - int(tailLen)
	indexOff := int64(binary.LittleEndian.Uint64(raw[ftr : ftr+8]))
	idx := raw[indexOff:ftr]
	out := append([]byte(nil), raw[:indexOff]...)

	// Transcode the v2 index (entries end with a flags byte + optional
	// stats) into v1 (entries stop after maxTime).
	br := &sliceReader{b: idx}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	v1 := binary.AppendUvarint(nil, count)
	for i := uint64(0); i < count; i++ {
		nameLen, _ := binary.ReadUvarint(br)
		name, _ := br.take(int(nameLen))
		off, _ := binary.ReadUvarint(br)
		cnt, _ := binary.ReadUvarint(br)
		minT, _ := binary.ReadVarint(br)
		maxT, _ := binary.ReadVarint(br)
		flags, _ := br.ReadByte()
		if flags&1 != 0 {
			if _, err := br.take(5 * 8); err != nil {
				t.Fatal(err)
			}
		}
		v1 = binary.AppendUvarint(v1, nameLen)
		v1 = append(v1, name...)
		v1 = binary.AppendUvarint(v1, off)
		v1 = binary.AppendUvarint(v1, cnt)
		v1 = binary.AppendVarint(v1, minT)
		v1 = binary.AppendVarint(v1, maxT)
	}
	out = append(out, v1...)
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], uint64(indexOff))
	out = append(out, foot[:]...)
	out = append(out, magicTailV1...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestV1FileStillReadable(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	times := []int64{10, 20, 30}
	values := []float64{1, 2, 3}
	if err := w.WriteChunk("s", times, values); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rewriteAsV1(t, path)

	r, err := Open(path)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	defer r.Close()
	idx := r.Index()
	if len(idx) != 1 || idx[0].Count != 3 || idx[0].MinTime != 10 || idx[0].MaxTime != 30 {
		t.Fatalf("v1 index wrong: %+v", idx)
	}
	if idx[0].Stats != nil {
		t.Fatal("v1 entry has statistics")
	}
	ts, vs, err := r.ReadChunk(idx[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		if ts[i] != times[i] || vs[i] != values[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestAppendEncodedRejectsOutOfOrderSensorChunks(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteChunk("s", []int64{10, 20}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Out of order: starts before the previous chunk's max.
	if err := w.WriteChunk("s", []int64{15, 25}, []float64{3, 4}); err == nil {
		t.Fatal("overlapping same-sensor chunk accepted")
	}
	// Touching at the boundary is allowed (nondecreasing, like the
	// chunks a flush splits).
	if err := w.WriteChunk("s", []int64{20, 30}, []float64{5, 6}); err != nil {
		t.Fatalf("boundary-touching chunk rejected: %v", err)
	}
	// Other sensors are independent.
	if err := w.WriteChunk("other", []int64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	// Typed writes share the same invariant.
	if err := WriteTypedChunk(w, "s", []int64{5}, []float64{9}); err == nil {
		t.Fatal("typed out-of-order chunk accepted")
	}
}

// corruptIndexEntry rewrites the first index entry of a freshly
// written single-chunk v2 file via mutate and returns the path.
func corruptIndexEntry(t *testing.T, mutate func(m *ChunkMeta)) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("s", []int64{1, 2, 3}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	metas := w.Index()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ftr := len(raw) - int(tailLen)
	indexOff := int64(binary.LittleEndian.Uint64(raw[ftr : ftr+8]))
	m := metas[0]
	m.Offset = int64(len(magicHead))
	mutate(&m)
	idx := binary.AppendUvarint(nil, 1)
	idx = binary.AppendUvarint(idx, uint64(len(m.Sensor)))
	idx = append(idx, m.Sensor...)
	idx = binary.AppendUvarint(idx, uint64(m.Offset))
	idx = binary.AppendUvarint(idx, uint64(m.Count))
	idx = binary.AppendVarint(idx, m.MinTime)
	idx = binary.AppendVarint(idx, m.MaxTime)
	idx = append(idx, 0) // no stats
	out := append([]byte(nil), raw[:indexOff]...)
	out = append(out, idx...)
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], uint64(indexOff))
	out = append(out, foot[:]...)
	out = append(out, magicTailV2...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadIndexRejectsHostileEntries(t *testing.T) {
	cases := map[string]func(m *ChunkMeta){
		// The old reader sized its ReadChunk buffer from Count; a huge
		// value allocated gigabytes (or wrapped negative and panicked)
		// before any CRC could object.
		"huge count":      func(m *ChunkMeta) { m.Count = math.MaxInt64 / 2 },
		"zero count":      func(m *ChunkMeta) { m.Count = 0 },
		"offset past idx": func(m *ChunkMeta) { m.Offset = 1 << 40 },
		"offset in magic": func(m *ChunkMeta) { m.Offset = 2 },
		"inverted times":  func(m *ChunkMeta) { m.MinTime, m.MaxTime = 5, 1 },
	}
	for name, mutate := range cases {
		path := corruptIndexEntry(t, mutate)
		if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Open = %v, want ErrCorrupt", name, err)
		}
	}
	// Sanity: the same rewrite with no mutation stays readable.
	path := corruptIndexEntry(t, func(m *ChunkMeta) {})
	r, err := Open(path)
	if err != nil {
		t.Fatalf("clean rewrite rejected: %v", err)
	}
	r.Close()
}

func TestLoadIndexRejectsOutOfOrderSensorChunks(t *testing.T) {
	// Build a file whose index lists a sensor's chunks out of time
	// order — QuerySensor's concatenation would be unsorted.
	path := filepath.Join(t.TempDir(), "o.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("s", []int64{1, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("s", []int64{10, 20}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	metas := w.Index()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ftr := len(raw) - int(tailLen)
	indexOff := int64(binary.LittleEndian.Uint64(raw[ftr : ftr+8]))
	idx := binary.AppendUvarint(nil, 2)
	for _, m := range []ChunkMeta{metas[1], metas[0]} { // swapped
		idx = binary.AppendUvarint(idx, uint64(len(m.Sensor)))
		idx = append(idx, m.Sensor...)
		idx = binary.AppendUvarint(idx, uint64(m.Offset))
		idx = binary.AppendUvarint(idx, uint64(m.Count))
		idx = binary.AppendVarint(idx, m.MinTime)
		idx = binary.AppendVarint(idx, m.MaxTime)
		idx = append(idx, 0)
	}
	out := append([]byte(nil), raw[:indexOff]...)
	out = append(out, idx...)
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], uint64(indexOff))
	out = append(out, foot[:]...)
	out = append(out, magicTailV2...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-order index accepted: %v", err)
	}
}
