package tsfile

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTypedRoundTripAllTypes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typed.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	times := []int64{1, 2, 3, 4}
	if err := WriteTypedChunk(w, "d", times, []float64{1.5, 2.5, math.Inf(1), -0.0}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedChunk(w, "i", times, []int64{-5, 0, 5, math.MaxInt64}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedChunk(w, "b", times, []bool{true, false, false, true}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedChunk(w, "t", times, []string{"", "a", "héllo", strings.Repeat("x", 1000)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idx := r.Index()
	if len(idx) != 4 {
		t.Fatalf("index = %+v", idx)
	}

	ts, vals, vt, err := r.ReadTypedChunk(idx[0])
	if err != nil || vt != TypeDouble {
		t.Fatalf("double chunk: %v, %v", vt, err)
	}
	if ts[3] != 4 {
		t.Fatal("times wrong")
	}
	ds := vals.([]float64)
	if ds[0] != 1.5 || !math.IsInf(ds[2], 1) {
		t.Fatalf("double values %v", ds)
	}

	_, vals, vt, err = r.ReadTypedChunk(idx[1])
	if err != nil || vt != TypeInt64 {
		t.Fatalf("int chunk: %v, %v", vt, err)
	}
	is := vals.([]int64)
	if is[0] != -5 || is[3] != math.MaxInt64 {
		t.Fatalf("int values %v", is)
	}

	_, vals, vt, err = r.ReadTypedChunk(idx[2])
	if err != nil || vt != TypeBool {
		t.Fatalf("bool chunk: %v, %v", vt, err)
	}
	bs := vals.([]bool)
	if !bs[0] || bs[1] || !bs[3] {
		t.Fatalf("bool values %v", bs)
	}

	_, vals, vt, err = r.ReadTypedChunk(idx[3])
	if err != nil || vt != TypeText {
		t.Fatalf("text chunk: %v, %v", vt, err)
	}
	ss := vals.([]string)
	if ss[0] != "" || ss[2] != "héllo" || len(ss[3]) != 1000 {
		t.Fatalf("text values %v", ss[:3])
	}
}

func TestTypedAndPlainChunksCoexist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("plain", []int64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedChunk(w, "typed", []int64{2}, []int64{7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idx := r.Index()
	if _, _, err := r.ReadChunk(idx[0]); err != nil {
		t.Fatalf("plain chunk unreadable: %v", err)
	}
	// Plain reader must refuse typed chunks loudly, not misparse.
	if _, _, err := r.ReadChunk(idx[1]); err == nil {
		t.Fatal("plain ReadChunk accepted a typed chunk")
	}
	if _, _, vt, err := r.ReadTypedChunk(idx[1]); err != nil || vt != TypeInt64 {
		t.Fatalf("typed chunk: %v %v", vt, err)
	}
}

func TestTypedValidation(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "v.gtsf"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := WriteTypedChunk(w, "s", nil, []int64{}); err == nil {
		t.Fatal("empty typed chunk accepted")
	}
	if err := WriteTypedChunk(w, "s", []int64{2, 1}, []int64{1, 2}); err == nil {
		t.Fatal("unsorted typed chunk accepted")
	}
	if err := WriteTypedChunk(w, strings.Repeat("n", 200), []int64{1}, []int64{1}); err == nil {
		t.Fatal("oversized sensor name accepted")
	}
}

func TestTypedCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]int64, 50)
	vals := make([]int64, 50)
	for i := range times {
		times[i] = int64(i)
		vals[i] = int64(i * 3)
	}
	if err := WriteTypedChunk(w, "s", times, vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(t, path)
	raw[25] ^= 0x55
	writeAll(t, path, raw)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, _, err := r.ReadTypedChunk(r.Index()[0]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("typed corruption not detected: %v", err)
	}
}

func TestValueTypeString(t *testing.T) {
	if TypeDouble.String() != "DOUBLE" || TypeText.String() != "TEXT" || ValueType(9).String() == "" {
		t.Fatal("ValueType.String wrong")
	}
}

// readAll / writeAll are tiny test helpers.
func readAll(t *testing.T, path string) ([]byte, error) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, nil
}

func writeAll(t *testing.T, path string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
