package tsfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestV3RoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v3.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockPoints = 16
	const n = 100
	times := make([]int64, n)
	values := make([]float64, n)
	for i := range times {
		times[i] = int64(i * 3)
		values[i] = float64(i) * 1.5
	}
	if err := w.WriteChunk("s1", times, values); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("s2", times[:5], values[:5]); err != nil {
		t.Fatal(err)
	}
	if err := WriteTypedChunk(w, "txt", []int64{1, 2}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 3 {
		t.Fatalf("version = %d, want 3", r.Version())
	}
	idx := r.Index()
	if len(idx) != 3 {
		t.Fatalf("index has %d entries", len(idx))
	}
	// 100 points at 16 per block → 7 blocks.
	if got := len(idx[0].Blocks); got != 7 {
		t.Fatalf("s1 has %d blocks, want 7", got)
	}
	if len(idx[1].Blocks) != 1 || len(idx[2].Blocks) != 0 {
		t.Fatalf("blocks: s2=%d typed=%d", len(idx[1].Blocks), len(idx[2].Blocks))
	}
	for _, m := range idx[:2] {
		ts, vs, err := r.ReadChunk(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != m.Count || len(vs) != m.Count {
			t.Fatalf("%s: got %d/%d points, want %d", m.Sensor, len(ts), len(vs), m.Count)
		}
		for i := range ts {
			if ts[i] != times[i] || vs[i] != values[i] {
				t.Fatalf("%s: point %d = (%d, %v)", m.Sensor, i, ts[i], vs[i])
			}
		}
		// Per-block stats and bounds must agree with a direct decode.
		sum := 0
		for _, b := range m.Blocks {
			bt, bv, err := r.ReadBlock(m, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(bt) != b.Count || bt[0] != b.MinTime || bt[len(bt)-1] != b.MaxTime {
				t.Fatalf("block meta %+v disagrees with decode", b)
			}
			if b.Stats == nil {
				t.Fatalf("block without stats: %+v", b)
			}
			var s float64
			for _, v := range bv {
				s += v
			}
			if s != b.Stats.Sum || bv[0] != b.Stats.First || bv[len(bv)-1] != b.Stats.Last {
				t.Fatalf("block stats %+v disagree with decode", *b.Stats)
			}
			sum += b.Count
		}
		if sum != m.Count {
			t.Fatalf("block counts sum to %d, want %d", sum, m.Count)
		}
	}
}

// TestV3QueryMatchesV2 writes identical data in v2 and v3 layouts and
// requires QuerySensor to agree bit-for-bit on random ranges.
func TestV3QueryMatchesV2(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	const n = 1000
	times := make([]int64, n)
	values := make([]float64, n)
	tick := int64(0)
	for i := range times {
		tick += int64(rng.Intn(3)) // duplicates and gaps
		times[i] = tick
		values[i] = rng.NormFloat64()
	}
	paths := map[string]int{"v2.gtsf": 0, "v3.gtsf": 13}
	readers := map[string]*Reader{}
	for name, bp := range paths {
		p := filepath.Join(dir, name)
		w, err := Create(p)
		if err != nil {
			t.Fatal(err)
		}
		w.BlockPoints = bp
		// Two chunks per sensor to cover cross-chunk merging.
		if err := w.WriteChunk("s", times[:n/2], values[:n/2]); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteChunk("s", times[n/2:], values[n/2:]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		readers[name] = r
	}
	for q := 0; q < 200; q++ {
		lo := int64(rng.Intn(int(tick))) - 5
		hi := lo + int64(rng.Intn(40)) // narrow ranges exercise block pruning
		t2, v2, err := readers["v2.gtsf"].QuerySensor("s", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		t3, v3, err := readers["v3.gtsf"].QuerySensor("s", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(t2) != len(t3) {
			t.Fatalf("[%d,%d]: v2 %d points, v3 %d", lo, hi, len(t2), len(t3))
		}
		for i := range t2 {
			if t2[i] != t3[i] || v2[i] != v3[i] {
				t.Fatalf("[%d,%d] point %d: v2 (%d,%v) v3 (%d,%v)", lo, hi, i, t2[i], v2[i], t3[i], v3[i])
			}
		}
	}
}

// TestV3StreamingWriter drives BeginChunk/AppendBlock/EndChunk — the
// compaction write path — and checks the result equals a WriteChunk
// file's contents.
func TestV3StreamingWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockPoints = 8
	if err := w.BeginChunk("s"); err != nil {
		t.Fatal(err)
	}
	var allT []int64
	var allV []float64
	next := int64(0)
	for b := 0; b < 5; b++ {
		var ts []int64
		var vs []float64
		for i := 0; i < 8; i++ {
			ts = append(ts, next)
			vs = append(vs, float64(next)*0.5)
			next += 2
		}
		if err := w.AppendBlock(ts, vs); err != nil {
			t.Fatal(err)
		}
		allT = append(allT, ts...)
		allV = append(allV, vs...)
	}
	if err := w.EndChunk(); err != nil {
		t.Fatal(err)
	}
	// A second sensor after the streamed chunk must still work.
	if err := w.WriteChunk("u", []int64{1, 2, 3}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idx := r.Index()
	if len(idx) != 2 || idx[0].Count != len(allT) || len(idx[0].Blocks) != 5 {
		t.Fatalf("index: %+v", idx)
	}
	if idx[0].Stats == nil || idx[0].Stats.First != allV[0] || idx[0].Stats.Last != allV[len(allV)-1] {
		t.Fatalf("streamed chunk stats: %+v", idx[0].Stats)
	}
	ts, vs, err := r.ReadChunk(idx[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range allT {
		if ts[i] != allT[i] || vs[i] != allV[i] {
			t.Fatalf("point %d: (%d,%v) want (%d,%v)", i, ts[i], vs[i], allT[i], allV[i])
		}
	}
}

func TestV3StreamingGuards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginChunk("s"); err == nil {
		t.Fatal("BeginChunk accepted on a v2 writer")
	}
	w.BlockPoints = 4
	if err := w.AppendBlock([]int64{1}, []float64{1}); err == nil {
		t.Fatal("AppendBlock without BeginChunk accepted")
	}
	if err := w.BeginChunk("s"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock([]int64{5, 6}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock([]int64{4}, []float64{0}); err == nil {
		t.Fatal("out-of-order block accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted with an open streaming chunk")
	}
	if err := w.EndChunk(); err != nil {
		t.Fatal(err)
	}
	// After EndChunk an older same-sensor chunk must be rejected.
	if err := w.BeginChunk("s"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock([]int64{2}, []float64{2}); err == nil {
		t.Fatal("cross-chunk time-order violation accepted")
	}
}

// TestV3BlockBoundaryDuplicates pins the split rule: a run of equal
// timestamps never straddles a block boundary, and a boundary-equal
// pair of blocks disables chunk-level stats.
func TestV3BlockBoundaryDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockPoints = 4
	// Duplicates exactly at the would-be split point (index 4).
	times := []int64{0, 1, 2, 3, 3, 3, 4, 5, 6, 7}
	values := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := w.WriteChunk("s", times, values); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m := r.Index()[0]
	if m.Stats != nil {
		t.Fatal("chunk with duplicate timestamps has stats")
	}
	for i, b := range m.Blocks {
		if i > 0 && b.MinTime == m.Blocks[i-1].MaxTime {
			t.Fatalf("blocks %d/%d share timestamp %d across the boundary", i-1, i, b.MinTime)
		}
	}
	ts, _, err := r.ReadChunk(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(times) {
		t.Fatalf("read %d points, want %d", len(ts), len(times))
	}
}

// TestV3RejectsCorruptBlockIndex flips bytes across a v3 file and
// requires Open/ReadChunk to fail with ErrCorrupt rather than
// mis-read.
func TestV3TornTailReadsAsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.gtsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockPoints = 8
	times := make([]int64, 64)
	values := make([]float64, 64)
	for i := range times {
		times[i] = int64(i)
		values[i] = float64(i)
	}
	if err := w.WriteChunk("s", times, values); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a v3 file must fail to open (torn write).
	for cut := len(full) - 1; cut > len(full)-int(tailLen)-10; cut-- {
		torn := filepath.Join(t.TempDir(), "cut.gtsf")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(torn); err == nil {
			t.Fatalf("truncation at %d opened cleanly", cut)
		}
	}
}
