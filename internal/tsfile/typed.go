package tsfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/encoding"
)

// ValueType tags a typed chunk's column type, mirroring the data types
// Apache IoTDB specializes its TVLists for (Section V-A of the paper).
type ValueType byte

// Supported column types.
const (
	TypeDouble ValueType = 0 // float64, Gorilla-encoded
	TypeInt64  ValueType = 1 // int64, zig-zag varint
	TypeBool   ValueType = 2 // bool, run-length encoded
	TypeText   ValueType = 3 // string, length-prefixed
)

// String returns the IoTDB-style type name.
func (v ValueType) String() string {
	switch v {
	case TypeDouble:
		return "DOUBLE"
	case TypeInt64:
		return "INT64"
	case TypeBool:
		return "BOOLEAN"
	case TypeText:
		return "TEXT"
	default:
		return fmt.Sprintf("ValueType(%d)", byte(v))
	}
}

// TypedValues is implemented by the value column types a typed chunk
// can hold.
type TypedValues interface {
	~[]float64 | ~[]int64 | ~[]bool | ~[]string
}

// WriteTypedChunk appends one chunk whose value column is typed. The
// layout extends the plain chunk with a leading 0xFF marker byte and a
// type tag, so plain (double) chunks written by WriteChunk remain
// readable and typed readers can dispatch:
//
//	0xFF | type | uvarint nameLen | name | TS2Diff times | values | crc
func WriteTypedChunk[V TypedValues](w *Writer, sensor string, times []int64, values V) error {
	if w.closed {
		return fmt.Errorf("tsfile: write after Close")
	}
	if w.cur != nil {
		return fmt.Errorf("tsfile: WriteTypedChunk during an open streaming chunk")
	}
	if len(times) == 0 || len(times) != len(values) {
		return fmt.Errorf("tsfile: bad chunk shape: %d times, %d values", len(times), len(values))
	}
	if len(sensor) > maxSensorName {
		return fmt.Errorf("tsfile: sensor name too long (%d bytes)", len(sensor))
	}
	dup := false
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return fmt.Errorf("tsfile: chunk for %q not sorted at %d", sensor, i)
		}
		if times[i] == times[i-1] {
			dup = true
		}
	}
	if last, ok := w.lastMax[sensor]; ok && times[0] < last {
		return fmt.Errorf("tsfile: chunk for %q out of time order: min %d after previous max %d",
			sensor, times[0], last)
	}
	w.lastMax[sensor] = times[len(times)-1]
	payload := []byte{0xFF, byte(valueTypeOf(values))}
	payload = binary.AppendUvarint(payload, uint64(len(sensor)))
	payload = append(payload, sensor...)
	payload = encoding.AppendTS2Diff(payload, times)
	payload = appendTypedValues(payload, values)

	sum := crc32.ChecksumIEEE(payload)
	meta := ChunkMeta{
		Sensor:  sensor,
		Offset:  w.off,
		Size:    int64(len(payload)) + 4,
		Count:   len(times),
		MinTime: times[0],
		MaxTime: times[len(times)-1],
	}
	// Only double columns get value statistics — the aggregation
	// pushdown operates on float64 series.
	if vs, ok := any(values).([]float64); ok {
		meta.Stats = computeStats(vs, dup)
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], sum)
	if _, err := w.w.Write(crcBuf[:]); err != nil {
		return err
	}
	w.off += int64(len(payload)) + 4
	w.index = append(w.index, meta)
	return nil
}

func valueTypeOf(values any) ValueType {
	switch values.(type) {
	case []float64:
		return TypeDouble
	case []int64:
		return TypeInt64
	case []bool:
		return TypeBool
	case []string:
		return TypeText
	default:
		panic(fmt.Sprintf("tsfile: unsupported value column %T", values))
	}
}

func appendTypedValues(dst []byte, values any) []byte {
	switch vs := values.(type) {
	case []float64:
		return encoding.AppendGorilla(dst, vs)
	case []int64:
		dst = binary.AppendUvarint(dst, uint64(len(vs)))
		for _, v := range vs {
			dst = binary.AppendVarint(dst, v)
		}
		return dst
	case []bool:
		return encoding.AppendRLEBool(dst, vs)
	case []string:
		dst = binary.AppendUvarint(dst, uint64(len(vs)))
		for _, v := range vs {
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		}
		return dst
	default:
		panic(fmt.Sprintf("tsfile: unsupported value column %T", values))
	}
}

// ReadTypedChunk decodes a chunk written by WriteTypedChunk, verifying
// its CRC. The value column is returned as one of []float64, []int64,
// []bool or []string according to the returned ValueType.
func (r *Reader) ReadTypedChunk(meta ChunkMeta) ([]int64, any, ValueType, error) {
	maxLen := 12 + len(meta.Sensor) + meta.Count*21 + 64
	// Text columns have no fixed per-value bound; read generously and
	// retry larger on truncation, but never past the chunk region — a
	// chunk that still truncates with the whole region in memory is
	// corrupt, not large.
	region := r.dataEnd - meta.Offset
	if region <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: chunk offset %d past data end %d", ErrCorrupt, meta.Offset, r.dataEnd)
	}
	full := false
	if maxLen < 0 || int64(maxLen) >= region {
		maxLen, full = int(region), true
	}
	buf, err := r.readAt(meta.Offset, maxLen)
	if err != nil {
		return nil, nil, 0, err
	}
	times, values, vt, consumed, derr := decodeTypedChunk(buf, meta)
	for derr == errNeedMore {
		if full {
			return nil, nil, 0, fmt.Errorf("%w: typed chunk truncated", ErrCorrupt)
		}
		maxLen *= 4
		if maxLen < 0 || int64(maxLen) >= region {
			maxLen, full = int(region), true
		}
		buf, err = r.readAt(meta.Offset, maxLen)
		if err != nil {
			return nil, nil, 0, err
		}
		times, values, vt, consumed, derr = decodeTypedChunk(buf, meta)
	}
	if derr != nil {
		return nil, nil, 0, derr
	}
	_ = consumed
	return times, values, vt, nil
}

var errNeedMore = fmt.Errorf("tsfile: need more bytes")

func decodeTypedChunk(buf []byte, meta ChunkMeta) ([]int64, any, ValueType, int, error) {
	br := &sliceReader{b: buf}
	marker, err := br.ReadByte()
	if err != nil {
		return nil, nil, 0, 0, errNeedMore
	}
	if marker != 0xFF {
		return nil, nil, 0, 0, fmt.Errorf("%w: not a typed chunk (marker %02x)", ErrCorrupt, marker)
	}
	tb, err := br.ReadByte()
	if err != nil {
		return nil, nil, 0, 0, errNeedMore
	}
	vt := ValueType(tb)
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, 0, 0, errNeedMore
	}
	name, err := br.take(int(nameLen))
	if err != nil {
		return nil, nil, 0, 0, errNeedMore
	}
	if string(name) != meta.Sensor {
		return nil, nil, 0, 0, fmt.Errorf("%w: chunk sensor %q, index says %q", ErrCorrupt, name, meta.Sensor)
	}
	times, consumed, err := encoding.DecodeTS2Diff(buf[br.pos:])
	if err != nil {
		return nil, nil, 0, 0, errNeedMore
	}
	br.pos += consumed
	if len(times) != meta.Count {
		return nil, nil, 0, 0, fmt.Errorf("%w: chunk count %d, index says %d", ErrCorrupt, len(times), meta.Count)
	}
	var values any
	switch vt {
	case TypeDouble:
		vs, n, err := encoding.DecodeGorilla(buf[br.pos:])
		if err != nil {
			return nil, nil, 0, 0, errNeedMore
		}
		br.pos += n
		values = vs
	case TypeInt64:
		n, read := binary.Uvarint(buf[br.pos:])
		if read <= 0 {
			return nil, nil, 0, 0, errNeedMore
		}
		br.pos += read
		if n != uint64(meta.Count) {
			return nil, nil, 0, 0, fmt.Errorf("%w: value count mismatch", ErrCorrupt)
		}
		vs := make([]int64, n)
		for i := range vs {
			v, read := binary.Varint(buf[br.pos:])
			if read <= 0 {
				return nil, nil, 0, 0, errNeedMore
			}
			br.pos += read
			vs[i] = v
		}
		values = vs
	case TypeBool:
		vs, n, err := encoding.DecodeRLEBool(buf[br.pos:])
		if err != nil {
			return nil, nil, 0, 0, errNeedMore
		}
		br.pos += n
		values = vs
	case TypeText:
		n, read := binary.Uvarint(buf[br.pos:])
		if read <= 0 {
			return nil, nil, 0, 0, errNeedMore
		}
		br.pos += read
		if n != uint64(meta.Count) {
			return nil, nil, 0, 0, fmt.Errorf("%w: value count mismatch", ErrCorrupt)
		}
		vs := make([]string, n)
		for i := range vs {
			slen, read := binary.Uvarint(buf[br.pos:])
			if read <= 0 {
				return nil, nil, 0, 0, errNeedMore
			}
			br.pos += read
			b, err := (&sliceReader{b: buf, pos: br.pos}).take(int(slen))
			if err != nil {
				return nil, nil, 0, 0, errNeedMore
			}
			vs[i] = string(b)
			br.pos += int(slen)
		}
		values = vs
	default:
		return nil, nil, 0, 0, fmt.Errorf("%w: unknown value type %d", ErrCorrupt, tb)
	}
	if countOfTyped(values) != meta.Count {
		return nil, nil, 0, 0, fmt.Errorf("%w: value count mismatch", ErrCorrupt)
	}
	payloadLen := br.pos
	crcBytes, err := br.take(4)
	if err != nil {
		return nil, nil, 0, 0, errNeedMore
	}
	want := binary.LittleEndian.Uint32(crcBytes)
	if got := crc32.ChecksumIEEE(buf[:payloadLen]); got != want {
		return nil, nil, 0, 0, fmt.Errorf("%w: typed chunk crc mismatch", ErrCorrupt)
	}
	return times, values, vt, br.pos, nil
}

func countOfTyped(values any) int {
	switch vs := values.(type) {
	case []float64:
		return len(vs)
	case []int64:
		return len(vs)
	case []bool:
		return len(vs)
	case []string:
		return len(vs)
	}
	return -1
}

// readAt reads up to n bytes at off, tolerating a short read at EOF.
func (r *Reader) readAt(off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	got, err := r.f.ReadAt(buf, off)
	if err != nil && got == 0 {
		return nil, err
	}
	return buf[:got], nil
}
