// Package tsfile implements the compact columnar chunk file this
// repository's storage engine flushes memtables into — a simplified
// stand-in for Apache IoTDB's TsFile that preserves the properties the
// paper's experiments depend on: chunks must be written in time order
// (which is why flushing sorts), chunk metadata carries time bounds
// for query pruning, and flushing pays real encoding + I/O cost.
//
// Layout:
//
//	magic "GTSF0001"
//	chunk*   — per (sensor) chunk:
//	             uvarint nameLen, name bytes
//	             v1/v2 body: TS2Diff-encoded timestamps (encoding
//	               package), Gorilla-encoded float64 values, uint32
//	               CRC-32 (IEEE) of the chunk payload
//	             v3 body: block*, where each block is an independently
//	               decodable [TS2Diff timestamps | Gorilla values |
//	               uint32 CRC-32 of the block] unit covering a bounded
//	               point range
//	index    — uvarint entryCount, then per chunk:
//	             uvarint nameLen, name, uvarint offset, uvarint count,
//	             varint minTime, varint maxTime,
//	             byte flags, [5 × float64 value statistics when flags&1]
//	             v3 only: uvarint blockCount, then per block:
//	               uvarint offsetDelta (from the chunk offset),
//	               uvarint size, uvarint count, varint minTime,
//	               varint maxTime, byte flags, [5 × float64 statistics
//	               when flags&1]
//	footer   — 8-byte little-endian index offset, magic "GTSFEND3"
//
// The footer magic doubles as the index format version: files ending
// in "GTSFEND1" carry the original statistics-free index (entries stop
// after maxTime), files ending in "GTSFEND2" carry per-chunk value
// statistics but no block index, and both remain fully readable. The
// v3 block index is what lets narrow-range reads seek to just the
// blocks overlapping their time window instead of decoding whole
// chunks, and per-block statistics extend aggregation pushdown from
// chunk granularity to block granularity. A Writer emits the v3
// layout when BlockPoints > 0 and the exact legacy v2 bytes
// otherwise, so the paper-reproduction write path is unchanged.
//
// Sorted regular timestamps compress to ~1–2 bytes each under TS2Diff
// (IoTDB's TS_2DIFF family) and slowly varying values to a few bits
// under Gorilla, IoTDB's float codec.
package tsfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/encoding"
	"repro/internal/faultfs"
)

const (
	magicHead   = "GTSF0001"
	magicTailV1 = "GTSFEND1" // statistics-free index entries
	magicTailV2 = "GTSFEND2" // entries carry a flags byte + value statistics
	magicTailV3 = "GTSFEND3" // entries additionally carry a per-block index
)

// tailLen is the footer size: 8-byte index offset + 8-byte magic,
// identical across index versions.
const tailLen = int64(8 + len(magicTailV1))

// ErrCorrupt is wrapped by every integrity failure the reader detects.
var ErrCorrupt = errors.New("tsfile: corrupt file")

// maxSensorName bounds sensor names so that a plain chunk's first
// payload byte (the name-length uvarint) can never be the 0xFF marker
// that identifies typed chunks.
const maxSensorName = 120

// ValueStats summarizes a value column, written into the v2+ index at
// flush/compaction time so windowed aggregations can answer from
// metadata without decoding (count lives in ChunkMeta.Count /
// BlockMeta.Count). First and Last are the values at the earliest and
// latest timestamps.
type ValueStats struct {
	Min   float64
	Max   float64
	Sum   float64
	First float64
	Last  float64
}

// BlockMeta describes one block of a v3 chunk: an independently
// CRC'd, independently decodable run of the chunk's points covering
// [MinTime, MaxTime]. Offset is absolute in the file; Size includes
// the block's trailing CRC. Stats is nil when the block contains
// duplicate timestamps (statistics over the raw points would disagree
// with the deduplicated stream queries return).
type BlockMeta struct {
	Offset  int64
	Size    int64
	Count   int
	MinTime int64
	MaxTime int64
	Stats   *ValueStats
}

// ChunkMeta describes one chunk in a file's index. Stats is nil when
// the chunk carries no value statistics: v1 files, typed chunks whose
// column has no float statistics, and chunks containing duplicate
// timestamps. Size is the chunk's byte extent in the file (derived
// from the neighboring index entries at load time, not stored).
// Blocks is non-nil only for v3 blocked chunks, in nondecreasing time
// order; their point counts sum to Count.
type ChunkMeta struct {
	Sensor  string
	Offset  int64
	Size    int64
	Count   int
	MinTime int64
	MaxTime int64
	Stats   *ValueStats
	Blocks  []BlockMeta
}

// Writer writes a tsfile. Chunks append sequentially; Close writes
// the index and footer. A Writer is not safe for concurrent use.
type Writer struct {
	f       faultfs.File
	w       *bufio.Writer
	off     int64
	index   []ChunkMeta
	lastMax map[string]int64 // per-sensor max time of the last appended chunk
	closed  bool
	cur     *streamChunk // in-progress BeginChunk/AppendBlock chunk
	// BlockPoints, when > 0, selects the v3 blocked layout: plain
	// chunks are split into independently encoded and CRC'd blocks of
	// at most ~BlockPoints points each, and the index carries per-block
	// entries. Zero or negative keeps the exact legacy v2 layout. Set
	// it before the first write and do not change it afterwards.
	BlockPoints int
	// SyncOnClose forces an fsync in Close. The storage engine leaves
	// it off unless a WAL sync policy is active — like IoTDB's default
	// flush, durability is the OS page cache's problem, and a per-file
	// fsync would swamp the flush-time metric the experiments measure.
	SyncOnClose bool
}

// Create opens path for writing on the real filesystem, truncating any
// existing file.
func Create(path string) (*Writer, error) {
	return CreateFS(faultfs.OS, path)
}

// CreateFS opens path for writing through fs, so crash tests can
// inject faults into the chunk-file write path.
func CreateFS(fs faultfs.FS, path string) (*Writer, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<16), lastMax: make(map[string]int64)}
	if _, err := w.w.WriteString(magicHead); err != nil {
		f.Close()
		return nil, err
	}
	w.off = int64(len(magicHead))
	return w, nil
}

// WriteChunk appends one chunk. times must be nondecreasing — the
// invariant sorting establishes before flush — and len(times) must
// equal len(values) and be > 0. Under BlockPoints > 0 the chunk is
// split into blocks transparently.
func (w *Writer) WriteChunk(sensor string, times []int64, values []float64) error {
	enc, err := EncodeChunkBlocks(sensor, times, values, w.BlockPoints)
	if err != nil {
		return err
	}
	return w.AppendEncoded(enc)
}

// EncodedChunk is a chunk encoded away from the Writer — validation,
// column encoding and the CRC all happen here, so several chunks can
// be prepared concurrently on different goroutines and then appended
// to the file sequentially in a chosen order. Meta.Offset (and the
// block offsets, for blocked chunks) are filled in by AppendEncoded.
type EncodedChunk struct {
	Meta    ChunkMeta
	payload []byte
	crc     uint32 // unblocked chunks only; blocked payloads carry per-block CRCs
	blocked bool
}

// EncodeChunk validates and encodes one chunk in the legacy
// single-unit layout, without touching any Writer. It is safe to call
// from multiple goroutines.
func EncodeChunk(sensor string, times []int64, values []float64) (*EncodedChunk, error) {
	dup, err := validateChunk(sensor, times, values)
	if err != nil {
		return nil, err
	}
	payload := encodeChunk(sensor, times, values)
	return &EncodedChunk{
		Meta: ChunkMeta{
			Sensor:  sensor,
			Size:    int64(len(payload)) + 4,
			Count:   len(times),
			MinTime: times[0],
			MaxTime: times[len(times)-1],
			Stats:   computeStats(values, dup),
		},
		payload: payload,
		crc:     crc32.ChecksumIEEE(payload),
	}, nil
}

// EncodeChunkBlocks validates and encodes one chunk, splitting it into
// independently decodable blocks of at most ~blockPoints points each
// (a block never splits a run of equal timestamps, so it may run a few
// points long). blockPoints <= 0 falls back to the legacy single-unit
// encoding. Safe to call from multiple goroutines.
func EncodeChunkBlocks(sensor string, times []int64, values []float64, blockPoints int) (*EncodedChunk, error) {
	if blockPoints <= 0 {
		return EncodeChunk(sensor, times, values)
	}
	dup, err := validateChunk(sensor, times, values)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 0, len(sensor)+16+len(times)*3+len(values)*8)
	payload = binary.AppendUvarint(payload, uint64(len(sensor)))
	payload = append(payload, sensor...)
	var blocks []BlockMeta
	for start := 0; start < len(times); {
		end := start + blockPoints
		if end >= len(times) {
			end = len(times)
		} else {
			// Never split a run of equal timestamps across blocks: the
			// run must dedup within one decode unit.
			for end < len(times) && times[end] == times[end-1] {
				end++
			}
		}
		bt, bv := times[start:end], values[start:end]
		bdup := false
		for i := 1; i < len(bt); i++ {
			if bt[i] == bt[i-1] {
				bdup = true
				break
			}
		}
		blockStart := len(payload)
		payload = encoding.AppendTS2Diff(payload, bt)
		payload = encoding.AppendGorilla(payload, bv)
		sum := crc32.ChecksumIEEE(payload[blockStart:])
		payload = binary.LittleEndian.AppendUint32(payload, sum)
		blocks = append(blocks, BlockMeta{
			Offset:  int64(blockStart), // relative until AppendEncoded rebases
			Size:    int64(len(payload) - blockStart),
			Count:   len(bt),
			MinTime: bt[0],
			MaxTime: bt[len(bt)-1],
			Stats:   computeStats(bv, bdup),
		})
		start = end
	}
	return &EncodedChunk{
		Meta: ChunkMeta{
			Sensor:  sensor,
			Size:    int64(len(payload)),
			Count:   len(times),
			MinTime: times[0],
			MaxTime: times[len(times)-1],
			Stats:   computeStats(values, dup),
			Blocks:  blocks,
		},
		payload: payload,
		blocked: true,
	}, nil
}

// validateChunk checks the shared chunk invariants and reports whether
// the timestamps contain duplicates.
func validateChunk(sensor string, times []int64, values []float64) (dup bool, err error) {
	if len(times) == 0 || len(times) != len(values) {
		return false, fmt.Errorf("tsfile: bad chunk shape: %d times, %d values", len(times), len(values))
	}
	if len(sensor) > maxSensorName {
		return false, fmt.Errorf("tsfile: sensor name too long (%d bytes)", len(sensor))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return false, fmt.Errorf("tsfile: chunk for %q not sorted at %d", sensor, i)
		}
		if times[i] == times[i-1] {
			dup = true
		}
	}
	return dup, nil
}

// computeStats summarizes a sorted column's values. A column with
// duplicate timestamps gets no statistics: queries deduplicate equal
// timestamps, so stats over the raw points would overcount.
func computeStats(values []float64, hasDupTimes bool) *ValueStats {
	if hasDupTimes || len(values) == 0 {
		return nil
	}
	s := &ValueStats{
		Min: values[0], Max: values[0],
		First: values[0], Last: values[len(values)-1],
	}
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.Sum += v
	}
	return s
}

// AppendEncoded appends a chunk prepared by EncodeChunk or
// EncodeChunkBlocks. Like the rest of Writer it is not safe for
// concurrent use — parallel encoders must funnel their results through
// one appender.
func (w *Writer) AppendEncoded(enc *EncodedChunk) error {
	if w.closed {
		return errors.New("tsfile: write after Close")
	}
	if w.cur != nil {
		return errors.New("tsfile: AppendEncoded during an open streaming chunk")
	}
	if enc.blocked && w.BlockPoints <= 0 {
		return errors.New("tsfile: blocked chunk on a legacy-format writer")
	}
	meta := enc.Meta
	// Same-sensor chunks must land in nondecreasing time order:
	// QuerySensor and the engine's streaming merge return their
	// concatenation as "sorted" without re-checking.
	if last, ok := w.lastMax[meta.Sensor]; ok && meta.MinTime < last {
		return fmt.Errorf("tsfile: chunk for %q out of time order: min %d after previous max %d",
			meta.Sensor, meta.MinTime, last)
	}
	w.lastMax[meta.Sensor] = meta.MaxTime
	meta.Offset = w.off
	if enc.blocked {
		// Rebase the block offsets (relative to the payload start) to
		// absolute file offsets, on a copy — the EncodedChunk may be
		// retained by its producer.
		blocks := make([]BlockMeta, len(meta.Blocks))
		copy(blocks, meta.Blocks)
		for i := range blocks {
			blocks[i].Offset += w.off
		}
		meta.Blocks = blocks
	}
	if _, err := w.w.Write(enc.payload); err != nil {
		return err
	}
	w.off += int64(len(enc.payload))
	if !enc.blocked {
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], enc.crc)
		if _, err := w.w.Write(crcBuf[:]); err != nil {
			return err
		}
		w.off += 4
	}
	meta.Size = w.off - meta.Offset
	w.index = append(w.index, meta)
	return nil
}

// streamChunk is the state of an in-progress streaming chunk.
type streamChunk struct {
	sensor string
	off    int64 // chunk start (the name-length byte)
	blocks []BlockMeta
	count  int
	stats  *ValueStats
	noStat bool // a block lacked stats, or a dup straddled a boundary
}

// BeginChunk starts a streaming chunk for sensor: blocks are appended
// one at a time with AppendBlock and the index entry is completed by
// EndChunk, so a compaction can write an arbitrarily large chunk while
// holding only one block of points in memory. Requires the v3 layout
// (BlockPoints > 0).
func (w *Writer) BeginChunk(sensor string) error {
	if w.closed {
		return errors.New("tsfile: write after Close")
	}
	if w.BlockPoints <= 0 {
		return errors.New("tsfile: BeginChunk requires the v3 blocked layout (BlockPoints > 0)")
	}
	if w.cur != nil {
		return fmt.Errorf("tsfile: BeginChunk(%q) with chunk for %q still open", sensor, w.cur.sensor)
	}
	if len(sensor) > maxSensorName {
		return fmt.Errorf("tsfile: sensor name too long (%d bytes)", len(sensor))
	}
	hdr := binary.AppendUvarint(nil, uint64(len(sensor)))
	hdr = append(hdr, sensor...)
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	w.cur = &streamChunk{sensor: sensor, off: w.off}
	w.off += int64(len(hdr))
	return nil
}

// AppendBlock appends one block to the streaming chunk. times must be
// nondecreasing, start at or after the previous block's max time, and
// (across chunks of the same sensor) respect the file's nondecreasing
// chunk order.
func (w *Writer) AppendBlock(times []int64, values []float64) error {
	c := w.cur
	if c == nil {
		return errors.New("tsfile: AppendBlock without BeginChunk")
	}
	dup, err := validateChunk(c.sensor, times, values)
	if err != nil {
		return err
	}
	if len(c.blocks) == 0 {
		if last, ok := w.lastMax[c.sensor]; ok && times[0] < last {
			return fmt.Errorf("tsfile: chunk for %q out of time order: min %d after previous max %d",
				c.sensor, times[0], last)
		}
	} else if prev := c.blocks[len(c.blocks)-1]; times[0] < prev.MaxTime {
		return fmt.Errorf("tsfile: block for %q out of time order: min %d after previous max %d",
			c.sensor, times[0], prev.MaxTime)
	} else if times[0] == prev.MaxTime {
		// A duplicate run straddles the block boundary: the per-chunk
		// statistics would overcount after dedup.
		c.noStat = true
	}
	payload := encoding.AppendTS2Diff(nil, times)
	payload = encoding.AppendGorilla(payload, values)
	sum := crc32.ChecksumIEEE(payload)
	payload = binary.LittleEndian.AppendUint32(payload, sum)
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	bs := computeStats(values, dup)
	c.blocks = append(c.blocks, BlockMeta{
		Offset:  w.off,
		Size:    int64(len(payload)),
		Count:   len(times),
		MinTime: times[0],
		MaxTime: times[len(times)-1],
		Stats:   bs,
	})
	w.off += int64(len(payload))
	c.count += len(times)
	if bs == nil {
		c.noStat = true
	} else if c.stats == nil {
		s := *bs
		c.stats = &s
	} else {
		if bs.Min < c.stats.Min {
			c.stats.Min = bs.Min
		}
		if bs.Max > c.stats.Max {
			c.stats.Max = bs.Max
		}
		c.stats.Sum += bs.Sum
		c.stats.Last = bs.Last
	}
	return nil
}

// EndChunk completes the streaming chunk and records its index entry.
func (w *Writer) EndChunk() error {
	c := w.cur
	if c == nil {
		return errors.New("tsfile: EndChunk without BeginChunk")
	}
	if len(c.blocks) == 0 {
		return fmt.Errorf("tsfile: empty streaming chunk for %q", c.sensor)
	}
	w.cur = nil
	stats := c.stats
	if c.noStat {
		stats = nil
	}
	meta := ChunkMeta{
		Sensor:  c.sensor,
		Offset:  c.off,
		Size:    w.off - c.off,
		Count:   c.count,
		MinTime: c.blocks[0].MinTime,
		MaxTime: c.blocks[len(c.blocks)-1].MaxTime,
		Stats:   stats,
		Blocks:  c.blocks,
	}
	w.lastMax[meta.Sensor] = meta.MaxTime
	w.index = append(w.index, meta)
	return nil
}

func encodeChunk(sensor string, times []int64, values []float64) []byte {
	buf := make([]byte, 0, len(sensor)+16+len(times)*3+len(values)*8)
	buf = binary.AppendUvarint(buf, uint64(len(sensor)))
	buf = append(buf, sensor...)
	buf = encoding.AppendTS2Diff(buf, times)
	buf = encoding.AppendGorilla(buf, values)
	return buf
}

// appendStatsEntry serializes the flags byte + optional statistics.
func appendStatsEntry(idx []byte, s *ValueStats) []byte {
	if s == nil {
		return append(idx, 0)
	}
	idx = append(idx, 1)
	for _, v := range [5]float64{s.Min, s.Max, s.Sum, s.First, s.Last} {
		idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(v))
	}
	return idx
}

// Close writes the index and footer and syncs the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if w.cur != nil {
		return fmt.Errorf("tsfile: Close with streaming chunk for %q still open", w.cur.sensor)
	}
	w.closed = true
	v3 := w.BlockPoints > 0
	indexOff := w.off
	idx := make([]byte, 0, 64*len(w.index))
	idx = binary.AppendUvarint(idx, uint64(len(w.index)))
	for _, m := range w.index {
		idx = binary.AppendUvarint(idx, uint64(len(m.Sensor)))
		idx = append(idx, m.Sensor...)
		idx = binary.AppendUvarint(idx, uint64(m.Offset))
		idx = binary.AppendUvarint(idx, uint64(m.Count))
		idx = binary.AppendVarint(idx, m.MinTime)
		idx = binary.AppendVarint(idx, m.MaxTime)
		idx = appendStatsEntry(idx, m.Stats)
		if v3 {
			idx = binary.AppendUvarint(idx, uint64(len(m.Blocks)))
			for _, b := range m.Blocks {
				idx = binary.AppendUvarint(idx, uint64(b.Offset-m.Offset))
				idx = binary.AppendUvarint(idx, uint64(b.Size))
				idx = binary.AppendUvarint(idx, uint64(b.Count))
				idx = binary.AppendVarint(idx, b.MinTime)
				idx = binary.AppendVarint(idx, b.MaxTime)
				idx = appendStatsEntry(idx, b.Stats)
			}
		}
	}
	if _, err := w.w.Write(idx); err != nil {
		return err
	}
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], uint64(indexOff))
	if _, err := w.w.Write(foot[:]); err != nil {
		return err
	}
	tail := magicTailV2
	if v3 {
		tail = magicTailV3
	}
	if _, err := w.w.WriteString(tail); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.SyncOnClose {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	return w.f.Close()
}

// Index returns the chunk metadata written so far; after Close it is
// the complete file index (callers cache it to avoid re-reading).
func (w *Writer) Index() []ChunkMeta {
	out := make([]ChunkMeta, len(w.index))
	copy(out, w.index)
	return out
}

// Reader reads a tsfile. It is safe for concurrent ReadChunk calls.
type Reader struct {
	f       *os.File
	index   []ChunkMeta
	dataEnd int64 // index offset: first byte past the chunk region
	version int   // index format version: 1, 2 or 3
}

// Open opens a tsfile and loads its index.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f}
	if err := r.loadIndex(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Version reports the file's index format version (1, 2 or 3).
func (r *Reader) Version() int { return r.version }

// readStatsEntry parses a flags byte + optional statistics.
func readStatsEntry(br *sliceReader) (*ValueStats, error) {
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if flags&1 == 0 {
		return nil, nil
	}
	raw, err := br.take(5 * 8)
	if err != nil {
		return nil, err
	}
	return &ValueStats{
		Min:   math.Float64frombits(binary.LittleEndian.Uint64(raw[0:])),
		Max:   math.Float64frombits(binary.LittleEndian.Uint64(raw[8:])),
		Sum:   math.Float64frombits(binary.LittleEndian.Uint64(raw[16:])),
		First: math.Float64frombits(binary.LittleEndian.Uint64(raw[24:])),
		Last:  math.Float64frombits(binary.LittleEndian.Uint64(raw[32:])),
	}, nil
}

func (r *Reader) loadIndex() error {
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < int64(len(magicHead))+tailLen {
		return fmt.Errorf("%w: too small (%d bytes)", ErrCorrupt, st.Size())
	}
	head := make([]byte, len(magicHead))
	if _, err := r.f.ReadAt(head, 0); err != nil {
		return err
	}
	if string(head) != magicHead {
		return fmt.Errorf("%w: bad head magic %q", ErrCorrupt, head)
	}
	tail := make([]byte, tailLen)
	if _, err := r.f.ReadAt(tail, st.Size()-tailLen); err != nil {
		return err
	}
	switch string(tail[8:]) {
	case magicTailV1:
		r.version = 1
	case magicTailV2:
		r.version = 2
	case magicTailV3:
		r.version = 3
	default:
		return fmt.Errorf("%w: bad tail magic %q", ErrCorrupt, tail[8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if indexOff < int64(len(magicHead)) || indexOff >= st.Size()-tailLen {
		return fmt.Errorf("%w: index offset %d out of range", ErrCorrupt, indexOff)
	}
	r.dataEnd = indexOff
	idx := make([]byte, st.Size()-tailLen-indexOff)
	if _, err := r.f.ReadAt(idx, indexOff); err != nil {
		return err
	}
	br := &sliceReader{b: idx}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: index count: %v", ErrCorrupt, err)
	}
	// Every field below comes from disk; bound-check each one so a
	// corrupt or hostile index can neither panic the reader nor make
	// ReadChunk size a buffer from a fabricated Count.
	lastMax := make(map[string]int64)
	prevOffset := int64(0)
	for i := uint64(0); i < count; i++ {
		var m ChunkMeta
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d: %v", ErrCorrupt, i, err)
		}
		if nameLen > maxSensorName {
			return fmt.Errorf("%w: index entry %d: sensor name %d bytes", ErrCorrupt, i, nameLen)
		}
		name, err := br.take(int(nameLen))
		if err != nil {
			return fmt.Errorf("%w: index entry %d name: %v", ErrCorrupt, i, err)
		}
		m.Sensor = string(name)
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d offset: %v", ErrCorrupt, i, err)
		}
		m.Offset = int64(off)
		if off > uint64(indexOff) || m.Offset < int64(len(magicHead)) {
			return fmt.Errorf("%w: index entry %d: offset %d outside chunk region [%d, %d)",
				ErrCorrupt, i, m.Offset, len(magicHead), indexOff)
		}
		// Entries appear in file order: the writer appends chunks
		// sequentially, so offsets strictly ascend. This is also what
		// lets each chunk's byte extent be derived from its neighbor.
		if m.Offset <= prevOffset && i > 0 {
			return fmt.Errorf("%w: index entry %d: offset %d not ascending (previous %d)",
				ErrCorrupt, i, m.Offset, prevOffset)
		}
		prevOffset = m.Offset
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d count: %v", ErrCorrupt, i, err)
		}
		// Each record costs at least one bit on disk, so a chunk in the
		// region [Offset, indexOff) can hold at most 8 points per byte.
		if cnt == 0 || cnt > 8*uint64(indexOff-m.Offset) {
			return fmt.Errorf("%w: index entry %d: count %d impossible for %d-byte region",
				ErrCorrupt, i, cnt, indexOff-m.Offset)
		}
		m.Count = int(cnt)
		if m.MinTime, err = binary.ReadVarint(br); err != nil {
			return fmt.Errorf("%w: index entry %d mintime: %v", ErrCorrupt, i, err)
		}
		if m.MaxTime, err = binary.ReadVarint(br); err != nil {
			return fmt.Errorf("%w: index entry %d maxtime: %v", ErrCorrupt, i, err)
		}
		if m.MinTime > m.MaxTime {
			return fmt.Errorf("%w: index entry %d: min time %d > max time %d",
				ErrCorrupt, i, m.MinTime, m.MaxTime)
		}
		// QuerySensor and the engine's streaming merge rely on a
		// sensor's chunks being indexed in nondecreasing time order.
		if last, ok := lastMax[m.Sensor]; ok && m.MinTime < last {
			return fmt.Errorf("%w: index entry %d: chunks for %q out of time order (%d after %d)",
				ErrCorrupt, i, m.Sensor, m.MinTime, last)
		}
		lastMax[m.Sensor] = m.MaxTime
		if r.version >= 2 {
			if m.Stats, err = readStatsEntry(br); err != nil {
				return fmt.Errorf("%w: index entry %d stats: %v", ErrCorrupt, i, err)
			}
		}
		if r.version >= 3 {
			if err := r.loadBlockIndex(br, &m, i, indexOff); err != nil {
				return err
			}
		}
		r.index = append(r.index, m)
	}
	// Offsets ascend, so each chunk's extent ends where the next chunk
	// (or the index) starts.
	for i := range r.index {
		end := indexOff
		if i+1 < len(r.index) {
			end = r.index[i+1].Offset
		}
		r.index[i].Size = end - r.index[i].Offset
		if bs := r.index[i].Blocks; len(bs) > 0 {
			if last := &bs[len(bs)-1]; last.Offset+last.Size > end {
				return fmt.Errorf("%w: index entry %d: block region past chunk end %d", ErrCorrupt, i, end)
			}
		}
	}
	return nil
}

// loadBlockIndex parses and validates one v3 entry's block list.
func (r *Reader) loadBlockIndex(br *sliceReader, m *ChunkMeta, i uint64, indexOff int64) error {
	blockCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: index entry %d block count: %v", ErrCorrupt, i, err)
	}
	if blockCount == 0 {
		return nil // unblocked entry (typed chunks)
	}
	// Every block holds at least one point.
	if blockCount > uint64(m.Count) {
		return fmt.Errorf("%w: index entry %d: %d blocks for %d points", ErrCorrupt, i, blockCount, m.Count)
	}
	blocks := make([]BlockMeta, 0, blockCount)
	sum := 0
	prevEnd := m.Offset
	for j := uint64(0); j < blockCount; j++ {
		var b BlockMeta
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d block %d offset: %v", ErrCorrupt, i, j, err)
		}
		b.Offset = m.Offset + int64(delta)
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d block %d size: %v", ErrCorrupt, i, j, err)
		}
		b.Size = int64(size)
		// A block needs the 4-byte CRC plus at least one payload byte,
		// must start after its chunk's name header (and past the
		// previous block), and must end inside the chunk region.
		if b.Size < 5 || b.Offset <= m.Offset || b.Offset < prevEnd ||
			b.Offset > indexOff || b.Size > indexOff-b.Offset {
			return fmt.Errorf("%w: index entry %d block %d: bad extent [%d, +%d)",
				ErrCorrupt, i, j, b.Offset, b.Size)
		}
		prevEnd = b.Offset + b.Size
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d block %d count: %v", ErrCorrupt, i, j, err)
		}
		if cnt == 0 || cnt > 8*uint64(b.Size) {
			return fmt.Errorf("%w: index entry %d block %d: count %d impossible for %d bytes",
				ErrCorrupt, i, j, cnt, b.Size)
		}
		b.Count = int(cnt)
		if b.MinTime, err = binary.ReadVarint(br); err != nil {
			return fmt.Errorf("%w: index entry %d block %d mintime: %v", ErrCorrupt, i, j, err)
		}
		if b.MaxTime, err = binary.ReadVarint(br); err != nil {
			return fmt.Errorf("%w: index entry %d block %d maxtime: %v", ErrCorrupt, i, j, err)
		}
		if b.MinTime > b.MaxTime || b.MinTime < m.MinTime || b.MaxTime > m.MaxTime {
			return fmt.Errorf("%w: index entry %d block %d: time range [%d, %d] outside chunk [%d, %d]",
				ErrCorrupt, i, j, b.MinTime, b.MaxTime, m.MinTime, m.MaxTime)
		}
		if len(blocks) > 0 && b.MinTime < blocks[len(blocks)-1].MaxTime {
			return fmt.Errorf("%w: index entry %d block %d: out of time order", ErrCorrupt, i, j)
		}
		if b.Stats, err = readStatsEntry(br); err != nil {
			return fmt.Errorf("%w: index entry %d block %d stats: %v", ErrCorrupt, i, j, err)
		}
		sum += b.Count
		blocks = append(blocks, b)
	}
	if sum != m.Count {
		return fmt.Errorf("%w: index entry %d: block counts sum to %d, chunk says %d",
			ErrCorrupt, i, sum, m.Count)
	}
	if blocks[0].MinTime != m.MinTime || blocks[len(blocks)-1].MaxTime != m.MaxTime {
		return fmt.Errorf("%w: index entry %d: block time bounds disagree with chunk", ErrCorrupt, i)
	}
	m.Blocks = blocks
	return nil
}

// Index returns the file's chunk metadata.
func (r *Reader) Index() []ChunkMeta {
	out := make([]ChunkMeta, len(r.index))
	copy(out, r.index)
	return out
}

// ReadBlock decodes one block of a v3 chunk, verifying its CRC. The
// block's extent was validated against the file layout at Open, so a
// read never leaves the chunk region.
func (r *Reader) ReadBlock(meta ChunkMeta, b BlockMeta) ([]int64, []float64, error) {
	buf := make([]byte, b.Size)
	if _, err := r.f.ReadAt(buf, b.Offset); err != nil {
		return nil, nil, fmt.Errorf("%w: block read: %v", ErrCorrupt, err)
	}
	payload := buf[:len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, nil, fmt.Errorf("%w: block crc mismatch: %08x != %08x", ErrCorrupt, got, want)
	}
	times, consumed, err := encoding.DecodeTS2Diff(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: block timestamps: %v", ErrCorrupt, err)
	}
	if len(times) != b.Count {
		return nil, nil, fmt.Errorf("%w: block count %d, index says %d", ErrCorrupt, len(times), b.Count)
	}
	values, _, err := encoding.DecodeGorilla(payload[consumed:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: block values: %v", ErrCorrupt, err)
	}
	if len(values) != b.Count {
		return nil, nil, fmt.Errorf("%w: block value count %d, index says %d", ErrCorrupt, len(values), b.Count)
	}
	return times, values, nil
}

// verifyChunkName checks the name header at the start of a blocked
// chunk against its index entry.
func (r *Reader) verifyChunkName(meta ChunkMeta) error {
	hdrLen := meta.Blocks[0].Offset - meta.Offset
	if hdrLen <= 0 || hdrLen > int64(maxSensorName+10) {
		return fmt.Errorf("%w: chunk header %d bytes", ErrCorrupt, hdrLen)
	}
	buf := make([]byte, hdrLen)
	if _, err := r.f.ReadAt(buf, meta.Offset); err != nil {
		return fmt.Errorf("%w: chunk header: %v", ErrCorrupt, err)
	}
	br := &sliceReader{b: buf}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: chunk name len: %v", ErrCorrupt, err)
	}
	name, err := br.take(int(nameLen))
	if err != nil {
		return fmt.Errorf("%w: chunk name: %v", ErrCorrupt, err)
	}
	if string(name) != meta.Sensor {
		return fmt.Errorf("%w: chunk sensor %q, index says %q", ErrCorrupt, name, meta.Sensor)
	}
	return nil
}

// ReadChunk decodes the chunk at meta, verifying its CRC (per block,
// for v3 blocked chunks).
func (r *Reader) ReadChunk(meta ChunkMeta) ([]int64, []float64, error) {
	if len(meta.Blocks) > 0 {
		if err := r.verifyChunkName(meta); err != nil {
			return nil, nil, err
		}
		times := make([]int64, 0, meta.Count)
		values := make([]float64, 0, meta.Count)
		for _, b := range meta.Blocks {
			ts, vs, err := r.ReadBlock(meta, b)
			if err != nil {
				return nil, nil, err
			}
			times = append(times, ts...)
			values = append(values, vs...)
		}
		return times, values, nil
	}
	// Upper-bound the payload size: name + worst-case TS2Diff varints
	// (10 B/value) + worst-case Gorilla (~10 B/value: 2 control bits +
	// 11 window bits + 64 payload bits) + headers + crc. Never read past
	// the chunk region — the index's Count is untrusted input.
	maxLen := 10 + len(meta.Sensor) + meta.Count*21 + 64
	if region := r.dataEnd - meta.Offset; maxLen < 0 || int64(maxLen) > region {
		if region < 0 {
			return nil, nil, fmt.Errorf("%w: chunk offset %d past data end %d", ErrCorrupt, meta.Offset, r.dataEnd)
		}
		maxLen = int(region)
	}
	buf := make([]byte, maxLen)
	n, err := r.f.ReadAt(buf, meta.Offset)
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	buf = buf[:n]
	if len(buf) > 0 && buf[0] == 0xFF {
		return nil, nil, fmt.Errorf("tsfile: chunk at %d is typed; use ReadTypedChunk", meta.Offset)
	}
	br := &sliceReader{b: buf}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: chunk name len: %v", ErrCorrupt, err)
	}
	name, err := br.take(int(nameLen))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: chunk name: %v", ErrCorrupt, err)
	}
	if string(name) != meta.Sensor {
		return nil, nil, fmt.Errorf("%w: chunk sensor %q, index says %q", ErrCorrupt, name, meta.Sensor)
	}
	times, consumed, err := encoding.DecodeTS2Diff(buf[br.pos:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: timestamps: %v", ErrCorrupt, err)
	}
	br.pos += consumed
	if len(times) != meta.Count {
		return nil, nil, fmt.Errorf("%w: chunk count %d, index says %d", ErrCorrupt, len(times), meta.Count)
	}
	values, consumed, err := encoding.DecodeGorilla(buf[br.pos:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: values: %v", ErrCorrupt, err)
	}
	br.pos += consumed
	if len(values) != meta.Count {
		return nil, nil, fmt.Errorf("%w: value count %d, index says %d", ErrCorrupt, len(values), meta.Count)
	}
	payloadLen := br.pos
	crcBytes, err := br.take(4)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: crc: %v", ErrCorrupt, err)
	}
	want := binary.LittleEndian.Uint32(crcBytes)
	if got := crc32.ChecksumIEEE(buf[:payloadLen]); got != want {
		return nil, nil, fmt.Errorf("%w: chunk crc mismatch: %08x != %08x", ErrCorrupt, got, want)
	}
	return times, values, nil
}

// QuerySensor returns all (time, value) records of sensor within
// [minT, maxT], merged across the file's chunks in time order. Chunks
// — and, in v3 files, individual blocks — whose time bounds do not
// intersect the range are pruned without touching the disk.
func (r *Reader) QuerySensor(sensor string, minT, maxT int64) ([]int64, []float64, error) {
	var outT []int64
	var outV []float64
	appendRange := func(ts []int64, vs []float64) {
		for i, t := range ts {
			if t >= minT && t <= maxT {
				outT = append(outT, t)
				outV = append(outV, vs[i])
			}
		}
	}
	for _, m := range r.index {
		if m.Sensor != sensor || m.MaxTime < minT || m.MinTime > maxT {
			continue
		}
		if len(m.Blocks) > 0 {
			for _, b := range m.Blocks {
				if b.MaxTime < minT || b.MinTime > maxT {
					continue
				}
				ts, vs, err := r.ReadBlock(m, b)
				if err != nil {
					return nil, nil, err
				}
				appendRange(ts, vs)
			}
			continue
		}
		ts, vs, err := r.ReadChunk(m)
		if err != nil {
			return nil, nil, err
		}
		appendRange(ts, vs)
	}
	return outT, outV, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// sliceReader is a byte-slice io.ByteReader with a take helper.
type sliceReader struct {
	b   []byte
	pos int
}

func (s *sliceReader) ReadByte() (byte, error) {
	if s.pos >= len(s.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := s.b[s.pos]
	s.pos++
	return c, nil
}

func (s *sliceReader) take(n int) ([]byte, error) {
	if n < 0 || n > len(s.b)-s.pos {
		return nil, io.ErrUnexpectedEOF
	}
	out := s.b[s.pos : s.pos+n]
	s.pos += n
	return out, nil
}
