// Package tsfile implements the compact columnar chunk file this
// repository's storage engine flushes memtables into — a simplified
// stand-in for Apache IoTDB's TsFile that preserves the properties the
// paper's experiments depend on: chunks must be written in time order
// (which is why flushing sorts), chunk metadata carries time bounds
// for query pruning, and flushing pays real encoding + I/O cost.
//
// Layout:
//
//	magic "GTSF0001"
//	chunk*   — per (sensor) chunk:
//	             uvarint nameLen, name bytes
//	             TS2Diff-encoded timestamps (encoding package)
//	             Gorilla-encoded float64 values (encoding package)
//	             uint32  CRC-32 (IEEE) of the chunk payload
//	index    — uvarint entryCount, then per chunk:
//	             uvarint nameLen, name, uvarint offset, uvarint count,
//	             varint minTime, varint maxTime,
//	             byte flags, [5 × float64 value statistics when flags&1]
//	footer   — 8-byte little-endian index offset, magic "GTSFEND2"
//
// The footer magic doubles as the index format version: files ending
// in "GTSFEND1" carry the original statistics-free index (entries stop
// after maxTime) and remain fully readable — their chunks simply have
// no value statistics, so aggregation pushdown never answers from them
// and always decodes. New files are always written in the v2 format.
//
// Sorted regular timestamps compress to ~1–2 bytes each under TS2Diff
// (IoTDB's TS_2DIFF family) and slowly varying values to a few bits
// under Gorilla, IoTDB's float codec.
package tsfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/encoding"
	"repro/internal/faultfs"
)

const (
	magicHead   = "GTSF0001"
	magicTailV1 = "GTSFEND1" // statistics-free index entries
	magicTailV2 = "GTSFEND2" // entries carry a flags byte + value statistics
)

// tailLen is the footer size: 8-byte index offset + 8-byte magic,
// identical across index versions.
const tailLen = int64(8 + len(magicTailV1))

// ErrCorrupt is wrapped by every integrity failure the reader detects.
var ErrCorrupt = errors.New("tsfile: corrupt file")

// maxSensorName bounds sensor names so that a plain chunk's first
// payload byte (the name-length uvarint) can never be the 0xFF marker
// that identifies typed chunks.
const maxSensorName = 120

// ValueStats summarizes a chunk's value column, written into the v2
// index at flush/compaction time so windowed aggregations can answer
// from metadata without decoding the chunk (count lives in
// ChunkMeta.Count). First and Last are the values at the chunk's
// earliest and latest timestamps.
type ValueStats struct {
	Min   float64
	Max   float64
	Sum   float64
	First float64
	Last  float64
}

// ChunkMeta describes one chunk in a file's index. Stats is nil when
// the chunk carries no value statistics: v1 files, typed chunks whose
// column has no float statistics, and chunks containing duplicate
// timestamps (whose statistics would disagree with the deduplicated
// stream queries return).
type ChunkMeta struct {
	Sensor  string
	Offset  int64
	Count   int
	MinTime int64
	MaxTime int64
	Stats   *ValueStats
}

// Writer writes a tsfile. Chunks append sequentially; Close writes
// the index and footer. A Writer is not safe for concurrent use.
type Writer struct {
	f       faultfs.File
	w       *bufio.Writer
	off     int64
	index   []ChunkMeta
	lastMax map[string]int64 // per-sensor max time of the last appended chunk
	closed  bool
	// SyncOnClose forces an fsync in Close. The storage engine leaves
	// it off unless a WAL sync policy is active — like IoTDB's default
	// flush, durability is the OS page cache's problem, and a per-file
	// fsync would swamp the flush-time metric the experiments measure.
	SyncOnClose bool
}

// Create opens path for writing on the real filesystem, truncating any
// existing file.
func Create(path string) (*Writer, error) {
	return CreateFS(faultfs.OS, path)
}

// CreateFS opens path for writing through fs, so crash tests can
// inject faults into the chunk-file write path.
func CreateFS(fs faultfs.FS, path string) (*Writer, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<16), lastMax: make(map[string]int64)}
	if _, err := w.w.WriteString(magicHead); err != nil {
		f.Close()
		return nil, err
	}
	w.off = int64(len(magicHead))
	return w, nil
}

// WriteChunk appends one chunk. times must be nondecreasing — the
// invariant sorting establishes before flush — and len(times) must
// equal len(values) and be > 0.
func (w *Writer) WriteChunk(sensor string, times []int64, values []float64) error {
	enc, err := EncodeChunk(sensor, times, values)
	if err != nil {
		return err
	}
	return w.AppendEncoded(enc)
}

// EncodedChunk is a chunk encoded away from the Writer — validation,
// column encoding and the CRC all happen here, so several chunks can
// be prepared concurrently on different goroutines and then appended
// to the file sequentially in a chosen order. Meta.Offset is filled in
// by AppendEncoded.
type EncodedChunk struct {
	Meta    ChunkMeta
	payload []byte
	crc     uint32
}

// EncodeChunk validates and encodes one chunk without touching any
// Writer. It is safe to call from multiple goroutines.
func EncodeChunk(sensor string, times []int64, values []float64) (*EncodedChunk, error) {
	if len(times) == 0 || len(times) != len(values) {
		return nil, fmt.Errorf("tsfile: bad chunk shape: %d times, %d values", len(times), len(values))
	}
	if len(sensor) > maxSensorName {
		return nil, fmt.Errorf("tsfile: sensor name too long (%d bytes)", len(sensor))
	}
	dup := false
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return nil, fmt.Errorf("tsfile: chunk for %q not sorted at %d", sensor, i)
		}
		if times[i] == times[i-1] {
			dup = true
		}
	}
	payload := encodeChunk(sensor, times, values)
	return &EncodedChunk{
		Meta: ChunkMeta{
			Sensor:  sensor,
			Count:   len(times),
			MinTime: times[0],
			MaxTime: times[len(times)-1],
			Stats:   computeStats(values, dup),
		},
		payload: payload,
		crc:     crc32.ChecksumIEEE(payload),
	}, nil
}

// computeStats summarizes a sorted chunk's value column. A chunk with
// duplicate timestamps gets no statistics: queries deduplicate equal
// timestamps, so stats over the raw points would overcount.
func computeStats(values []float64, hasDupTimes bool) *ValueStats {
	if hasDupTimes || len(values) == 0 {
		return nil
	}
	s := &ValueStats{
		Min: values[0], Max: values[0],
		First: values[0], Last: values[len(values)-1],
	}
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.Sum += v
	}
	return s
}

// AppendEncoded appends a chunk prepared by EncodeChunk. Like the rest
// of Writer it is not safe for concurrent use — parallel encoders must
// funnel their results through one appender.
func (w *Writer) AppendEncoded(enc *EncodedChunk) error {
	if w.closed {
		return errors.New("tsfile: write after Close")
	}
	meta := enc.Meta
	// Same-sensor chunks must land in nondecreasing time order:
	// QuerySensor and the engine's streaming merge return their
	// concatenation as "sorted" without re-checking.
	if last, ok := w.lastMax[meta.Sensor]; ok && meta.MinTime < last {
		return fmt.Errorf("tsfile: chunk for %q out of time order: min %d after previous max %d",
			meta.Sensor, meta.MinTime, last)
	}
	w.lastMax[meta.Sensor] = meta.MaxTime
	meta.Offset = w.off
	if _, err := w.w.Write(enc.payload); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], enc.crc)
	if _, err := w.w.Write(crcBuf[:]); err != nil {
		return err
	}
	w.off += int64(len(enc.payload)) + 4
	w.index = append(w.index, meta)
	return nil
}

func encodeChunk(sensor string, times []int64, values []float64) []byte {
	buf := make([]byte, 0, len(sensor)+16+len(times)*3+len(values)*8)
	buf = binary.AppendUvarint(buf, uint64(len(sensor)))
	buf = append(buf, sensor...)
	buf = encoding.AppendTS2Diff(buf, times)
	buf = encoding.AppendGorilla(buf, values)
	return buf
}

// Close writes the index and footer and syncs the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	indexOff := w.off
	idx := make([]byte, 0, 64*len(w.index))
	idx = binary.AppendUvarint(idx, uint64(len(w.index)))
	for _, m := range w.index {
		idx = binary.AppendUvarint(idx, uint64(len(m.Sensor)))
		idx = append(idx, m.Sensor...)
		idx = binary.AppendUvarint(idx, uint64(m.Offset))
		idx = binary.AppendUvarint(idx, uint64(m.Count))
		idx = binary.AppendVarint(idx, m.MinTime)
		idx = binary.AppendVarint(idx, m.MaxTime)
		if m.Stats == nil {
			idx = append(idx, 0)
		} else {
			idx = append(idx, 1)
			for _, v := range [5]float64{m.Stats.Min, m.Stats.Max, m.Stats.Sum, m.Stats.First, m.Stats.Last} {
				idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(v))
			}
		}
	}
	if _, err := w.w.Write(idx); err != nil {
		return err
	}
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], uint64(indexOff))
	if _, err := w.w.Write(foot[:]); err != nil {
		return err
	}
	if _, err := w.w.WriteString(magicTailV2); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.SyncOnClose {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	return w.f.Close()
}

// Index returns the chunk metadata written so far; after Close it is
// the complete file index (callers cache it to avoid re-reading).
func (w *Writer) Index() []ChunkMeta {
	out := make([]ChunkMeta, len(w.index))
	copy(out, w.index)
	return out
}

// Reader reads a tsfile. It is safe for concurrent ReadChunk calls.
type Reader struct {
	f       *os.File
	index   []ChunkMeta
	dataEnd int64 // index offset: first byte past the chunk region
}

// Open opens a tsfile and loads its index.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f}
	if err := r.loadIndex(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) loadIndex() error {
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < int64(len(magicHead))+tailLen {
		return fmt.Errorf("%w: too small (%d bytes)", ErrCorrupt, st.Size())
	}
	head := make([]byte, len(magicHead))
	if _, err := r.f.ReadAt(head, 0); err != nil {
		return err
	}
	if string(head) != magicHead {
		return fmt.Errorf("%w: bad head magic %q", ErrCorrupt, head)
	}
	tail := make([]byte, tailLen)
	if _, err := r.f.ReadAt(tail, st.Size()-tailLen); err != nil {
		return err
	}
	var hasStats bool
	switch string(tail[8:]) {
	case magicTailV1:
		hasStats = false
	case magicTailV2:
		hasStats = true
	default:
		return fmt.Errorf("%w: bad tail magic %q", ErrCorrupt, tail[8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if indexOff < int64(len(magicHead)) || indexOff >= st.Size()-tailLen {
		return fmt.Errorf("%w: index offset %d out of range", ErrCorrupt, indexOff)
	}
	r.dataEnd = indexOff
	idx := make([]byte, st.Size()-tailLen-indexOff)
	if _, err := r.f.ReadAt(idx, indexOff); err != nil {
		return err
	}
	br := &sliceReader{b: idx}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: index count: %v", ErrCorrupt, err)
	}
	// Every field below comes from disk; bound-check each one so a
	// corrupt or hostile index can neither panic the reader nor make
	// ReadChunk size a buffer from a fabricated Count.
	lastMax := make(map[string]int64)
	for i := uint64(0); i < count; i++ {
		var m ChunkMeta
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d: %v", ErrCorrupt, i, err)
		}
		if nameLen > maxSensorName {
			return fmt.Errorf("%w: index entry %d: sensor name %d bytes", ErrCorrupt, i, nameLen)
		}
		name, err := br.take(int(nameLen))
		if err != nil {
			return fmt.Errorf("%w: index entry %d name: %v", ErrCorrupt, i, err)
		}
		m.Sensor = string(name)
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d offset: %v", ErrCorrupt, i, err)
		}
		m.Offset = int64(off)
		if off > uint64(indexOff) || m.Offset < int64(len(magicHead)) {
			return fmt.Errorf("%w: index entry %d: offset %d outside chunk region [%d, %d)",
				ErrCorrupt, i, m.Offset, len(magicHead), indexOff)
		}
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: index entry %d count: %v", ErrCorrupt, i, err)
		}
		// Each record costs at least one bit on disk, so a chunk in the
		// region [Offset, indexOff) can hold at most 8 points per byte.
		if cnt == 0 || cnt > 8*uint64(indexOff-m.Offset) {
			return fmt.Errorf("%w: index entry %d: count %d impossible for %d-byte region",
				ErrCorrupt, i, cnt, indexOff-m.Offset)
		}
		m.Count = int(cnt)
		if m.MinTime, err = binary.ReadVarint(br); err != nil {
			return fmt.Errorf("%w: index entry %d mintime: %v", ErrCorrupt, i, err)
		}
		if m.MaxTime, err = binary.ReadVarint(br); err != nil {
			return fmt.Errorf("%w: index entry %d maxtime: %v", ErrCorrupt, i, err)
		}
		if m.MinTime > m.MaxTime {
			return fmt.Errorf("%w: index entry %d: min time %d > max time %d",
				ErrCorrupt, i, m.MinTime, m.MaxTime)
		}
		// QuerySensor and the engine's streaming merge rely on a
		// sensor's chunks being indexed in nondecreasing time order.
		if last, ok := lastMax[m.Sensor]; ok && m.MinTime < last {
			return fmt.Errorf("%w: index entry %d: chunks for %q out of time order (%d after %d)",
				ErrCorrupt, i, m.Sensor, m.MinTime, last)
		}
		lastMax[m.Sensor] = m.MaxTime
		if hasStats {
			flags, err := br.ReadByte()
			if err != nil {
				return fmt.Errorf("%w: index entry %d flags: %v", ErrCorrupt, i, err)
			}
			if flags&1 != 0 {
				raw, err := br.take(5 * 8)
				if err != nil {
					return fmt.Errorf("%w: index entry %d stats: %v", ErrCorrupt, i, err)
				}
				m.Stats = &ValueStats{
					Min:   math.Float64frombits(binary.LittleEndian.Uint64(raw[0:])),
					Max:   math.Float64frombits(binary.LittleEndian.Uint64(raw[8:])),
					Sum:   math.Float64frombits(binary.LittleEndian.Uint64(raw[16:])),
					First: math.Float64frombits(binary.LittleEndian.Uint64(raw[24:])),
					Last:  math.Float64frombits(binary.LittleEndian.Uint64(raw[32:])),
				}
			}
		}
		r.index = append(r.index, m)
	}
	return nil
}

// Index returns the file's chunk metadata.
func (r *Reader) Index() []ChunkMeta {
	out := make([]ChunkMeta, len(r.index))
	copy(out, r.index)
	return out
}

// ReadChunk decodes the chunk at meta, verifying its CRC.
func (r *Reader) ReadChunk(meta ChunkMeta) ([]int64, []float64, error) {
	// Upper-bound the payload size: name + worst-case TS2Diff varints
	// (10 B/value) + worst-case Gorilla (~10 B/value: 2 control bits +
	// 11 window bits + 64 payload bits) + headers + crc. Never read past
	// the chunk region — the index's Count is untrusted input.
	maxLen := 10 + len(meta.Sensor) + meta.Count*21 + 64
	if region := r.dataEnd - meta.Offset; maxLen < 0 || int64(maxLen) > region {
		if region < 0 {
			return nil, nil, fmt.Errorf("%w: chunk offset %d past data end %d", ErrCorrupt, meta.Offset, r.dataEnd)
		}
		maxLen = int(region)
	}
	buf := make([]byte, maxLen)
	n, err := r.f.ReadAt(buf, meta.Offset)
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	buf = buf[:n]
	if len(buf) > 0 && buf[0] == 0xFF {
		return nil, nil, fmt.Errorf("tsfile: chunk at %d is typed; use ReadTypedChunk", meta.Offset)
	}
	br := &sliceReader{b: buf}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: chunk name len: %v", ErrCorrupt, err)
	}
	name, err := br.take(int(nameLen))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: chunk name: %v", ErrCorrupt, err)
	}
	if string(name) != meta.Sensor {
		return nil, nil, fmt.Errorf("%w: chunk sensor %q, index says %q", ErrCorrupt, name, meta.Sensor)
	}
	times, consumed, err := encoding.DecodeTS2Diff(buf[br.pos:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: timestamps: %v", ErrCorrupt, err)
	}
	br.pos += consumed
	if len(times) != meta.Count {
		return nil, nil, fmt.Errorf("%w: chunk count %d, index says %d", ErrCorrupt, len(times), meta.Count)
	}
	values, consumed, err := encoding.DecodeGorilla(buf[br.pos:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: values: %v", ErrCorrupt, err)
	}
	br.pos += consumed
	if len(values) != meta.Count {
		return nil, nil, fmt.Errorf("%w: value count %d, index says %d", ErrCorrupt, len(values), meta.Count)
	}
	payloadLen := br.pos
	crcBytes, err := br.take(4)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: crc: %v", ErrCorrupt, err)
	}
	want := binary.LittleEndian.Uint32(crcBytes)
	if got := crc32.ChecksumIEEE(buf[:payloadLen]); got != want {
		return nil, nil, fmt.Errorf("%w: chunk crc mismatch: %08x != %08x", ErrCorrupt, got, want)
	}
	return times, values, nil
}

// QuerySensor returns all (time, value) records of sensor within
// [minT, maxT], merged across the file's chunks in time order. Chunks
// whose time bounds do not intersect the range are pruned without
// touching the disk.
func (r *Reader) QuerySensor(sensor string, minT, maxT int64) ([]int64, []float64, error) {
	var outT []int64
	var outV []float64
	for _, m := range r.index {
		if m.Sensor != sensor || m.MaxTime < minT || m.MinTime > maxT {
			continue
		}
		ts, vs, err := r.ReadChunk(m)
		if err != nil {
			return nil, nil, err
		}
		for i, t := range ts {
			if t >= minT && t <= maxT {
				outT = append(outT, t)
				outV = append(outV, vs[i])
			}
		}
	}
	return outT, outV, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// sliceReader is a byte-slice io.ByteReader with a take helper.
type sliceReader struct {
	b   []byte
	pos int
}

func (s *sliceReader) ReadByte() (byte, error) {
	if s.pos >= len(s.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := s.b[s.pos]
	s.pos++
	return c, nil
}

func (s *sliceReader) take(n int) ([]byte, error) {
	if n < 0 || n > len(s.b)-s.pos {
		return nil, io.ErrUnexpectedEOF
	}
	out := s.b[s.pos : s.pos+n]
	s.pos += n
	return out, nil
}
