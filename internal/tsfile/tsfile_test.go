package tsfile

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.gtsf")
}

func TestRoundTripSingleChunk(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	times := []int64{1, 5, 5, 9, 100000}
	values := []float64{0.5, -3, math.Pi, math.Inf(1), math.MaxFloat64}
	if err := w.WriteChunk("s1", times, values); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idx := r.Index()
	if len(idx) != 1 || idx[0].Sensor != "s1" || idx[0].Count != 5 ||
		idx[0].MinTime != 1 || idx[0].MaxTime != 100000 {
		t.Fatalf("index wrong: %+v", idx)
	}
	ts, vs, err := r.ReadChunk(idx[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		if ts[i] != times[i] || vs[i] != values[i] {
			t.Fatalf("record %d mismatch: (%d,%g) vs (%d,%g)", i, ts[i], vs[i], times[i], values[i])
		}
	}
}

func TestRoundTripManyChunksQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), "q.gtsf")
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		type chunk struct {
			sensor string
			ts     []int64
			vs     []float64
		}
		var chunks []chunk
		nChunks := 1 + r.Intn(5)
		for c := 0; c < nChunks; c++ {
			n := 1 + r.Intn(300)
			ts := make([]int64, n)
			vs := make([]float64, n)
			cur := r.Int63n(1000) - 500
			for i := range ts {
				cur += r.Int63n(100) // nondecreasing, may repeat
				ts[i] = cur
				vs[i] = r.NormFloat64() * 1e6
			}
			ch := chunk{sensor: string(rune('a' + c)), ts: ts, vs: vs}
			chunks = append(chunks, ch)
			if err := w.WriteChunk(ch.sensor, ch.ts, ch.vs); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rd, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		idx := rd.Index()
		if len(idx) != len(chunks) {
			return false
		}
		for i, ch := range chunks {
			ts, vs, err := rd.ReadChunk(idx[i])
			if err != nil {
				t.Fatal(err)
			}
			for j := range ch.ts {
				if ts[j] != ch.ts[j] || vs[j] != ch.vs[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteChunkValidation(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteChunk("s", nil, nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if err := w.WriteChunk("s", []int64{1, 2}, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := w.WriteChunk("s", []int64{2, 1}, []float64{1, 2}); err == nil {
		t.Fatal("unsorted chunk accepted")
	}
}

func TestWriteAfterClose(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("s", []int64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("s", []int64{2}, []float64{2}); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestQuerySensorPruningAndFilter(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// Two chunks for sensor a with disjoint time ranges, one for b.
	if err := w.WriteChunk("a", []int64{1, 2, 3}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("a", []int64{10, 20, 30}, []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("b", []int64{2, 4}, []float64{-2, -4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ts, vs, err := r.QuerySensor("a", 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0] != 2 || ts[1] != 3 || ts[2] != 10 || vs[2] != 10 {
		t.Fatalf("QuerySensor = %v %v", ts, vs)
	}
	ts, _, err = r.QuerySensor("b", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("sensor b results: %v", ts)
	}
	ts, _, err = r.QuerySensor("nope", 0, 100)
	if err != nil || len(ts) != 0 {
		t.Fatalf("unknown sensor should be empty, got %v %v", ts, err)
	}
	ts, _, err = r.QuerySensor("a", 1000, 2000)
	if err != nil || len(ts) != 0 {
		t.Fatalf("out-of-range query should be empty, got %v %v", ts, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]int64, 100)
	values := make([]float64, 100)
	for i := range times {
		times[i] = int64(i)
		values[i] = float64(i)
	}
	if err := w.WriteChunk("s", times, values); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the chunk payload (past the head magic).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err) // index is at the end and untouched
	}
	defer r.Close()
	if _, _, err := r.ReadChunk(r.Index()[0]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	// Too small.
	small := filepath.Join(dir, "small")
	if err := os.WriteFile(small, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(small); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tiny file accepted: %v", err)
	}
	// Wrong magic, right size.
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage accepted: %v", err)
	}
	// Missing file.
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTimestampCompression(t *testing.T) {
	// Regular sorted timestamps must encode far below 8 bytes each.
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 10000
	times := make([]int64, n)
	values := make([]float64, n)
	for i := range times {
		times[i] = int64(i) * 1000
	}
	if err := w.WriteChunk("s", times, values); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 8 bytes/value is irreducible here; timestamps should add ~2
	// bytes each, not 8.
	if st.Size() > int64(n*8+n*4) {
		t.Fatalf("file too large for delta encoding: %d bytes", st.Size())
	}
}

func TestEncodeAppendMatchesWriteChunk(t *testing.T) {
	// Encoding in any order then appending must produce a file
	// identical in content to sequential WriteChunk calls.
	times1 := []int64{1, 2, 3}
	vals1 := []float64{10, 20, 30}
	times2 := []int64{5, 9}
	vals2 := []float64{50, 90}

	direct := tmpPath(t)
	w, err := Create(direct)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("a", times1, vals1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk("b", times2, vals2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	staged := tmpPath(t)
	// Encode out of append order — Offset is only assigned at append.
	encB, err := EncodeChunk("b", times2, vals2)
	if err != nil {
		t.Fatal(err)
	}
	encA, err := EncodeChunk("a", times1, vals1)
	if err != nil {
		t.Fatal(err)
	}
	if encA.Meta.Offset != 0 || encB.Meta.Offset != 0 {
		t.Fatal("offset assigned before append")
	}
	w2, err := Create(staged)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendEncoded(encA); err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendEncoded(encB); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(staged)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("file sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("files differ at byte %d", i)
		}
	}
}

func TestEncodeChunkValidation(t *testing.T) {
	if _, err := EncodeChunk("s", nil, nil); err == nil {
		t.Fatal("empty chunk should fail")
	}
	if _, err := EncodeChunk("s", []int64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := EncodeChunk("s", []int64{2, 1}, []float64{1, 2}); err == nil {
		t.Fatal("unsorted times should fail")
	}
}
