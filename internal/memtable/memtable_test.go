package memtable

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tvlist"
)

func TestWriteAndChunks(t *testing.T) {
	m := New(0)
	if m.State() != Working || !m.Empty() {
		t.Fatal("fresh memtable should be empty and working")
	}
	m.Write("b", 2, 20)
	m.Write("a", 1, 10)
	m.Write("a", 3, 30)
	if m.Points() != 3 {
		t.Fatalf("Points = %d", m.Points())
	}
	if got := m.Sensors(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Sensors = %v", got)
	}
	a := m.Chunk("a")
	if a.Len() != 2 {
		t.Fatalf("chunk a Len = %d", a.Len())
	}
	if m.Chunk("missing") != nil {
		t.Fatal("missing sensor should be nil")
	}
}

func TestArrayLenPropagates(t *testing.T) {
	m := New(4)
	for i := 0; i < 9; i++ {
		m.Write("s", int64(i), 0)
	}
	if m.Chunk("s").MemoryArrays() != 3 {
		t.Fatalf("arrays = %d, want 3", m.Chunk("s").MemoryArrays())
	}
	// Default length.
	m2 := New(0)
	m2.Write("s", 1, 1)
	if m2.Chunk("s").MemoryArrays() != 1 {
		t.Fatal("default array length broken")
	}
	_ = tvlist.DefaultArrayLen
}

func TestStateTransition(t *testing.T) {
	m := New(0)
	m.Write("s", 1, 1)
	m.MarkFlushing()
	if m.State() != Flushing {
		t.Fatal("MarkFlushing did not transition")
	}
	if Working.String() != "working" || Flushing.String() != "flushing" || State(9).String() != "unknown" {
		t.Fatal("State.String wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("write to flushing memtable should panic")
		}
	}()
	m.Write("s", 2, 2)
}

func TestSnapshotChunkIsIndependent(t *testing.T) {
	m := New(4)
	m.Write("s", 3, 30)
	m.Write("s", 1, 10)
	if m.SnapshotChunk("missing") != nil {
		t.Fatal("missing sensor should snapshot to nil")
	}
	snap := m.SnapshotChunk("s")
	if snap.Len() != 2 || snap.Sorted() {
		t.Fatalf("snapshot shape wrong: len=%d sorted=%v", snap.Len(), snap.Sorted())
	}
	// Writes to the live chunk must not reach the snapshot...
	m.Write("s", 2, 20)
	if snap.Len() != 2 {
		t.Fatal("snapshot saw a later write")
	}
	// ...and sorting the snapshot must not touch the live chunk.
	snap.Sort(func(s core.Sortable) {
		// trivial exchange sort via the Sortable interface
		n := s.Len()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if s.Time(j) < s.Time(i) {
					s.Swap(i, j)
				}
			}
		}
	})
	if !snap.Sorted() || snap.Time(0) != 1 {
		t.Fatal("snapshot sort failed")
	}
	live := m.Chunk("s")
	if live.Sorted() {
		t.Fatal("sorting the snapshot marked the live chunk sorted")
	}
	if live.Time(0) != 3 {
		t.Fatal("sorting the snapshot reordered the live chunk")
	}
	// Sorted-flag preservation: a sorted live chunk snapshots as sorted.
	m2 := New(0)
	m2.Write("t", 1, 1)
	m2.Write("t", 2, 2)
	if !m2.SnapshotChunk("t").Sorted() {
		t.Fatal("sorted flag not preserved by snapshot")
	}
}
