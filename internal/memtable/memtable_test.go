package memtable

import (
	"testing"

	"repro/internal/tvlist"
)

func TestWriteAndChunks(t *testing.T) {
	m := New(0)
	if m.State() != Working || !m.Empty() {
		t.Fatal("fresh memtable should be empty and working")
	}
	m.Write("b", 2, 20)
	m.Write("a", 1, 10)
	m.Write("a", 3, 30)
	if m.Points() != 3 {
		t.Fatalf("Points = %d", m.Points())
	}
	if got := m.Sensors(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Sensors = %v", got)
	}
	a := m.Chunk("a")
	if a.Len() != 2 {
		t.Fatalf("chunk a Len = %d", a.Len())
	}
	if m.Chunk("missing") != nil {
		t.Fatal("missing sensor should be nil")
	}
}

func TestArrayLenPropagates(t *testing.T) {
	m := New(4)
	for i := 0; i < 9; i++ {
		m.Write("s", int64(i), 0)
	}
	if m.Chunk("s").MemoryArrays() != 3 {
		t.Fatalf("arrays = %d, want 3", m.Chunk("s").MemoryArrays())
	}
	// Default length.
	m2 := New(0)
	m2.Write("s", 1, 1)
	if m2.Chunk("s").MemoryArrays() != 1 {
		t.Fatal("default array length broken")
	}
	_ = tvlist.DefaultArrayLen
}

func TestStateTransition(t *testing.T) {
	m := New(0)
	m.Write("s", 1, 1)
	m.MarkFlushing()
	if m.State() != Flushing {
		t.Fatal("MarkFlushing did not transition")
	}
	if Working.String() != "working" || Flushing.String() != "flushing" || State(9).String() != "unknown" {
		t.Fatal("State.String wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("write to flushing memtable should panic")
		}
	}()
	m.Write("s", 2, 2)
}
