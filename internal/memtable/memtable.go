// Package memtable implements the in-memory write buffer of the
// storage engine, mirroring Apache IoTDB's design (Section V-A of the
// paper): a MemTable holds one chunk per sensor, each chunk wrapping a
// TVList of (timestamp, value) records; an *active* (working) memtable
// absorbs writes until it is full, then transitions to *immutable*
// (flushing) and is drained to disk while a fresh working memtable
// takes over.
package memtable

import (
	"sort"

	"repro/internal/adaptive"
	"repro/internal/tvlist"
)

// State is a memtable's lifecycle phase.
type State int

const (
	// Working memtables accept writes.
	Working State = iota
	// Flushing memtables are immutable and being written to disk.
	Flushing
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Working:
		return "working"
	case Flushing:
		return "flushing"
	default:
		return "unknown"
	}
}

// MemTable buffers writes per sensor. It is not internally
// synchronized: the engine serializes access (in IoTDB, too, the
// query takes the lock and blocks the write process — Section VI-D1).
type MemTable struct {
	state    State
	chunks   map[string]*tvlist.TVList[float64]
	arrayLen int
	points   int
	// sketches, when non-nil, holds one adaptive disorder sketch per
	// sensor, updated on every Write. A fresh memtable starts with
	// fresh (zero) sketches: sketch state never survives the flush
	// rotation — cross-generation memory lives in the planner, not
	// here.
	sketches map[string]*adaptive.Sketch
}

// New creates an empty working memtable whose TVLists use the given
// array length (0 selects tvlist.DefaultArrayLen).
func New(arrayLen int) *MemTable {
	if arrayLen <= 0 {
		arrayLen = tvlist.DefaultArrayLen
	}
	return &MemTable{
		chunks:   make(map[string]*tvlist.TVList[float64]),
		arrayLen: arrayLen,
	}
}

// Write appends one record to the sensor's chunk. Writing to a
// flushing memtable panics: the engine must never route writes to an
// immutable table, and doing so is a bug worth failing loudly on.
func (m *MemTable) Write(sensor string, t int64, v float64) {
	if m.state != Working {
		panic("memtable: write to non-working memtable")
	}
	c, ok := m.chunks[sensor]
	if !ok {
		c = tvlist.NewWithArrayLen[float64](m.arrayLen)
		m.chunks[sensor] = c
	}
	c.Put(t, v)
	m.points++
	if m.sketches != nil {
		sk := m.sketches[sensor]
		if sk == nil {
			sk = &adaptive.Sketch{}
			m.sketches[sensor] = sk
		}
		sk.Observe(t)
	}
}

// TrackDisorder enables per-sensor adaptive disorder sketches: every
// subsequent Write also feeds the sensor's sketch (O(1) per point).
// Call it on a fresh memtable, before any writes, under the same
// serialization that guards Write.
func (m *MemTable) TrackDisorder() {
	if m.sketches == nil {
		m.sketches = make(map[string]*adaptive.Sketch)
	}
}

// Sketch returns a snapshot of the sensor's disorder sketch. ok is
// false when disorder tracking is off or the sensor has no data. Like
// every MemTable accessor it must be called under the engine's
// serialization (or after the memtable turned immutable).
func (m *MemTable) Sketch(sensor string) (adaptive.Snapshot, bool) {
	sk := m.sketches[sensor]
	if sk == nil {
		return adaptive.Snapshot{}, false
	}
	return sk.Snapshot(), true
}

// Chunk returns the sensor's TVList, or nil if the sensor has no data.
func (m *MemTable) Chunk(sensor string) *tvlist.TVList[float64] {
	return m.chunks[sensor]
}

// SnapshotChunk returns a deep copy of the sensor's TVList, or nil if
// the sensor has no data. Queries use it to snapshot a *working*
// (still-mutable) chunk under the engine lock and then sort and scan
// the copy outside it — the copy is O(points) memcpy, far cheaper than
// holding the lock across an O(n log n) sort. The copy preserves the
// sorted flag, so an in-order chunk's snapshot skips its sort
// entirely.
func (m *MemTable) SnapshotChunk(sensor string) *tvlist.TVList[float64] {
	c, ok := m.chunks[sensor]
	if !ok {
		return nil
	}
	return c.Clone()
}

// Sensors returns the sensors present, sorted for deterministic
// iteration.
func (m *MemTable) Sensors() []string {
	out := make([]string, 0, len(m.chunks))
	for s := range m.chunks {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Points returns the total number of buffered records.
func (m *MemTable) Points() int { return m.points }

// State returns the lifecycle state.
func (m *MemTable) State() State { return m.state }

// MarkFlushing transitions the memtable to the immutable flushing
// state. The transition is one-way.
func (m *MemTable) MarkFlushing() { m.state = Flushing }

// Empty reports whether the memtable holds no records.
func (m *MemTable) Empty() bool { return m.points == 0 }
