package tsql

import (
	"testing"
)

// FuzzParse drives the full parser — selector syntax included — with
// arbitrary statements: it must return a statement or an error, never
// panic, and accepted selector statements must re-execute their
// invariants (selector implies matchers xor empty-all form; INSERT
// selectors always carry a concrete label set).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`SELECT * FROM series{host="a", region=~"west-.*"}`,
		`SELECT * FROM series{}`,
		`SELECT * FROM series{host!="a", rack!~"r[0-9]+"} WHERE time >= 1 AND time <= 2 LIMIT 5`,
		`SELECT sum(value) FROM series{metric="cpu"} GROUP BY WINDOW(10)`,
		`INSERT INTO series{host="a", metric="cpu"} VALUES (1, 2.5)`,
		`INSERT INTO s.engine.speed VALUES (1, 2), (3, 4)`,
		`SELECT * FROM "quoted sensor" LIMIT 1`,
		`SELECT * FROM series{host="a\"b\\c"}`,
		`SELECT * FROM series{host='sq'}`,
		`SELECT * FROM series{host="unterminated`,
		`SELECT * FROM series{host=~"("}`,
		`SELECT * FROM series{host=}`,
		"SELECT * FROM series{h\x00st=\"a\"}",
		`FLUSH`, `STATS`, ``,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatal("nil statement without error")
		}
		if st.HasSelector {
			for _, m := range st.Matchers {
				if m == nil || m.Name == "" {
					t.Fatalf("accepted selector with bad matcher: %q", input)
				}
			}
			if st.Kind == KindInsert && st.LabelSet == nil {
				t.Fatalf("INSERT selector without label set: %q", input)
			}
		} else if len(st.Matchers) != 0 {
			t.Fatalf("matchers without selector: %q", input)
		}
	})
}
