package tsql

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 100, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO room.temp VALUES (1, 20.5), (2, 21)")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindInsert || st.Sensor != "room.temp" {
		t.Fatalf("%+v", st)
	}
	if len(st.Times) != 2 || st.Times[1] != 2 || st.Values[0] != 20.5 {
		t.Fatalf("%+v", st)
	}
}

func TestParseSelectStar(t *testing.T) {
	st, err := Parse("select * from s where time >= 10 and time <= 20 limit 5;")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindSelect || st.HasAgg || st.Sensor != "s" {
		t.Fatalf("%+v", st)
	}
	if st.MinTime != 10 || st.MaxTime != 20 || st.Limit != 5 {
		t.Fatalf("%+v", st)
	}
}

func TestParseSelectStrictComparators(t *testing.T) {
	st, err := Parse("SELECT * FROM s WHERE time > 10 AND time < 20")
	if err != nil {
		t.Fatal(err)
	}
	if st.MinTime != 11 || st.MaxTime != 19 {
		t.Fatalf("strict bounds wrong: %+v", st)
	}
	st, err = Parse("SELECT * FROM s WHERE time = 7")
	if err != nil {
		t.Fatal(err)
	}
	if st.MinTime != 7 || st.MaxTime != 7 {
		t.Fatalf("equality bounds wrong: %+v", st)
	}
}

func TestParseSelectUnbounded(t *testing.T) {
	st, err := Parse("SELECT * FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if st.MinTime != math.MinInt64 || st.MaxTime != math.MaxInt64 {
		t.Fatalf("default bounds wrong: %+v", st)
	}
}

func TestParseAggregation(t *testing.T) {
	st, err := Parse("SELECT avg(value) FROM s WHERE time >= 0 AND time <= 99 GROUP BY window(10)")
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasAgg || st.Agg != query.Avg || st.Window != 10 {
		t.Fatalf("%+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE s",
		"INSERT INTO VALUES (1,2)",
		"INSERT INTO s VALUES (1)",
		"INSERT INTO s VALUES (1, 2) garbage",
		"SELECT FROM s",
		"SELECT avg(value) FROM s",           // agg without window
		"SELECT * FROM s GROUP BY window(5)", // window without agg
		"SELECT * FROM s WHERE value > 3",    // non-time predicate
		"SELECT median(value) FROM s GROUP BY window(5)", // unknown agg
		"SELECT * FROM",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestExecuteInsertSelectRoundTrip(t *testing.T) {
	e := testEngine(t)
	if _, err := Run(e, "INSERT INTO s VALUES (5, 50), (1, 10), (3, 30)"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "SELECT * FROM s WHERE time >= 1 AND time <= 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0] != "1" || res.Rows[2][1] != "50" {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestExecuteLimit(t *testing.T) {
	e := testEngine(t)
	Run(e, "INSERT INTO s VALUES (1,1), (2,2), (3,3), (4,4)")
	res, err := Run(e, "SELECT * FROM s LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit ignored: %+v", res.Rows)
	}
}

func TestExecuteAggregation(t *testing.T) {
	e := testEngine(t)
	Run(e, "INSERT INTO s VALUES (0,2), (5,4), (12,10)")
	res, err := Run(e, "SELECT avg(value) FROM s WHERE time >= 0 AND time <= 19 GROUP BY WINDOW(10)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != "3" || res.Rows[1][1] != "10" {
		t.Fatalf("agg rows = %+v", res.Rows)
	}
}

func TestExecuteFlushCompactStats(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 250; i++ {
		if _, err := Run(e, "INSERT INTO s VALUES ("+strconv.Itoa(i)+", 1)"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(e, "FLUSH"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e, "COMPACT"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "STATS")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Columns) != 7 {
		t.Fatalf("stats = %+v", res)
	}
	// After compaction exactly one file remains.
	if res.Rows[0][5] != "1" {
		t.Fatalf("files column = %q", res.Rows[0][5])
	}
	// And the data survives.
	sel, err := Run(e, "SELECT * FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 250 {
		t.Fatalf("rows after compact = %d", len(sel.Rows))
	}
}
