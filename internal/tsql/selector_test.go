package tsql

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/labels"
	"repro/internal/shard"
)

// TestTokenizeQuotedLiterals is the regression for the old splitter,
// which padded every operator character and mangled quoted values like
// host="a=b" into five tokens.
func TestTokenizeQuotedLiterals(t *testing.T) {
	toks, err := tokenize(`host="a=b"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"host", "=", stringMarker + "a=b"}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("tokenize: %q, want %q", toks, want)
	}
	toks, err = tokenize(`x='a,(b)<c>' <= 5`)
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"x", "=", stringMarker + "a,(b)<c>", "<=", "5"}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("tokenize: %q, want %q", toks, want)
	}
	// Escapes inside literals.
	toks, err = tokenize(`"a\"b\\c"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || text(toks[0]) != `a"b\c` {
		t.Fatalf("escaped literal: %q", toks)
	}
	// Unterminated literal is a parse error, not a mangled token soup.
	if _, err := tokenize(`host="abc`); err == nil {
		t.Fatal("unterminated literal accepted")
	}
	// A quoted keyword is a value, not a keyword.
	st, err := Parse(`SELECT * FROM "select"`)
	if err != nil || st.Sensor != "select" {
		t.Fatalf("quoted sensor: %+v err=%v", st, err)
	}
}

func TestParseSelector(t *testing.T) {
	st, err := Parse(`SELECT * FROM series{host="a", region=~"west-.*", dc!="x", rack!~"r[0-9]"} WHERE time >= 5 AND time <= 10 LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasSelector || len(st.Matchers) != 4 {
		t.Fatalf("selector: %+v", st)
	}
	wantOps := []labels.MatchType{labels.MatchEq, labels.MatchRe, labels.MatchNotEq, labels.MatchNotRe}
	for i, m := range st.Matchers {
		if m.Type != wantOps[i] {
			t.Fatalf("matcher %d type %v, want %v", i, m.Type, wantOps[i])
		}
	}
	if st.Matchers[0].Name != "host" || st.Matchers[0].Value != "a" {
		t.Fatalf("matcher 0: %+v", st.Matchers[0])
	}
	if st.MinTime != 5 || st.MaxTime != 10 || st.Limit != 3 {
		t.Fatalf("bounds: %+v", st)
	}

	// Empty selector = all series.
	st, err = Parse(`SELECT * FROM series{}`)
	if err != nil || !st.HasSelector || len(st.Matchers) != 0 {
		t.Fatalf("empty selector: %+v err=%v", st, err)
	}

	// Bare (unquoted) values parse too.
	st, err = Parse(`SELECT * FROM series{host=a1}`)
	if err != nil || st.Matchers[0].Value != "a1" {
		t.Fatalf("bare value: %+v err=%v", st, err)
	}

	// A sensor literally named series still works flat.
	st, err = Parse(`SELECT * FROM series`)
	if err != nil || st.HasSelector || st.Sensor != "series" {
		t.Fatalf("flat 'series' sensor: %+v err=%v", st, err)
	}

	// INSERT selector must be equality-only.
	if _, err := Parse(`INSERT INTO series{host=~"a.*"} VALUES (1, 2)`); err == nil {
		t.Fatal("regex INSERT selector accepted")
	}
	st, err = Parse(`INSERT INTO series{host="a", metric="cpu"} VALUES (1, 2)`)
	if err != nil || st.LabelSet.Canonical() != "host=a,metric=cpu" {
		t.Fatalf("insert selector: %+v err=%v", st, err)
	}
}

func TestParseSelectorErrors(t *testing.T) {
	for _, bad := range []string{
		`SELECT * FROM series{host}`,
		`SELECT * FROM series{host="a"`,
		`SELECT * FROM series{host<"a"}`,
		`SELECT * FROM series{="a"}`,
		`SELECT * FROM series{host="a",}`,
		`SELECT * FROM series{host=~"("}`, // invalid regex
		`INSERT INTO series{} VALUES (1, 2)`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted: %s", bad)
		}
	}
}

func routerEngine(t *testing.T) *shard.Router {
	t.Helper()
	r, err := shard.Open(shard.Config{
		Config:     engine.Config{Dir: t.TempDir(), MemTableSize: 128},
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestExecuteSelector(t *testing.T) {
	r := routerEngine(t)
	mustRun := func(q string) *Result {
		t.Helper()
		res, err := Run(r, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return res
	}
	mustRun(`INSERT INTO series{host="a", metric="cpu"} VALUES (1, 10), (2, 20)`)
	mustRun(`INSERT INTO series{host="b", metric="cpu"} VALUES (1, 100)`)
	mustRun(`INSERT INTO series{host="a", metric="mem"} VALUES (1, 5)`)

	res := mustRun(`SELECT * FROM series{metric="cpu"}`)
	if !reflect.DeepEqual(res.Columns, []string{"series", "time", "value"}) {
		t.Fatalf("columns: %v", res.Columns)
	}
	want := [][]string{
		{`{host="a",metric="cpu"}`, "1", "10"},
		{`{host="a",metric="cpu"}`, "2", "20"},
		{`{host="b",metric="cpu"}`, "1", "100"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows: %v", res.Rows)
	}

	// LIMIT applies to flattened rows.
	if res := mustRun(`SELECT * FROM series{metric="cpu"} LIMIT 2`); len(res.Rows) != 2 {
		t.Fatalf("limit: %v", res.Rows)
	}

	// Non-matching selector: empty result, not an error.
	if res := mustRun(`SELECT * FROM series{host="zzz"}`); len(res.Rows) != 0 {
		t.Fatalf("non-matching selector: %v", res.Rows)
	}

	// Cross-series aggregation merges all matching series per window.
	res = mustRun(`SELECT sum(value) FROM series{metric="cpu"} WHERE time >= 0 AND time <= 9 GROUP BY WINDOW(10)`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "130" || res.Rows[0][2] != "3" {
		t.Fatalf("group sum: %v", res.Rows)
	}
	res = mustRun(`SELECT avg(value) FROM series{}  GROUP BY WINDOW(10)`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "33.75" { // (10+20+100+5)/4
		t.Fatalf("group avg: %v", res.Rows)
	}

	// First/Last cannot merge across series.
	if _, err := Run(r, `SELECT first(value) FROM series{} GROUP BY WINDOW(10)`); err == nil {
		t.Fatal("first over selector accepted")
	}

	// Selector statements against a bare engine fail with guidance.
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := Run(e, `SELECT * FROM series{host="a"}`); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("bare-engine selector error: %v", err)
	}
}
