package tsql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseSurvivesRandomInput: the parser must reject or accept, but
// never panic, on arbitrary token soup.
func TestParseSurvivesRandomInput(t *testing.T) {
	vocab := []string{
		"SELECT", "INSERT", "INTO", "FROM", "WHERE", "AND", "GROUP", "BY",
		"WINDOW", "VALUES", "LIMIT", "time", "value", "avg", "*", "(",
		")", ",", "=", "<", ">", "<=", ">=", "s1", "-5", "42", "3.14",
		"9223372036854775807", ";", "FLUSH", "STATS",
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := r.Intn(12)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = vocab[r.Intn(len(vocab))]
		}
		input := strings.Join(parts, " ")
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", input, p)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

// TestParseSurvivesRandomBytes: raw byte garbage, not just token soup.
func TestParseSurvivesRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		raw := make([]byte, r.Intn(40))
		r.Read(raw)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %x: %v", raw, p)
				}
			}()
			_, _ = Parse(string(raw))
		}()
	}
}
