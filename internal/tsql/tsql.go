// Package tsql implements the tiny SQL-ish query language of the
// cmd/tsql shell — enough surface to drive the storage engine the way
// the paper's experiments do (IoTDB is operated through SQL, and the
// benchmark's query is literally "SELECT * FROM data WHERE time >
// current - window"):
//
//	INSERT INTO <sensor> VALUES (t, v) [, (t, v)]...
//	INSERT INTO series{host="a", metric="cpu"} VALUES (t, v)...
//	SELECT * FROM <sensor> [WHERE time >= a AND time <= b] [LIMIT n]
//	SELECT * FROM series{host="a", region=~"west-.*"} [WHERE ...]
//	SELECT avg|sum|min|max|count|first|last(value) FROM <sensor>
//	       [WHERE ...] GROUP BY WINDOW(w)
//	FLUSH | COMPACT | STATS
//
// The series{...} form addresses series by label selector: `=` and
// `!=` compare values exactly, `=~` and `!~` match anchored regular
// expressions, and an empty selector `series{}` means every registered
// series. Selector selects return (series, time, value) rows; selector
// aggregations merge all matching series into one cross-series result
// per window.
//
// Statements parse into a Statement tree and execute against an
// Engine (a bare engine.Engine or the shard router); parsing and
// execution are separate so both are testable.
package tsql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/labels"
	"repro/internal/query"
	"repro/internal/shard"
)

// Statement is a parsed statement.
type Statement struct {
	Kind   Kind
	Sensor string
	// Insert rows.
	Times  []int64
	Values []float64
	// Select bounds (inclusive), defaulting to the full range.
	MinTime int64
	MaxTime int64
	Limit   int // 0 = unlimited
	// Aggregation.
	Agg    query.Aggregator
	HasAgg bool
	Window int64
	// Label selector (the series{...} form). HasSelector distinguishes
	// an empty selector (all series) from the flat-sensor form.
	HasSelector bool
	Matchers    []*labels.Matcher
	// LabelSet is the concrete label set of INSERT INTO series{...}
	// (equality-only selectors name exactly one series).
	LabelSet labels.Set
}

// Kind discriminates statements.
type Kind int

// Statement kinds.
const (
	KindSelect Kind = iota
	KindInsert
	KindFlush
	KindCompact
	KindStats
)

// stringMarker prefixes decoded string-literal tokens so the parser
// can tell `"select"` (a quoted value) from the SELECT keyword; \x00
// cannot appear in source text, so no identifier collides with it.
const stringMarker = "\x00"

// tokenize scans one statement into tokens. Quoted string literals
// (single or double quotes, backslash escapes) pass through intact —
// `host="a=b"` is three tokens, not a mangled five — fixing the old
// splitter that blindly padded every operator character. Two-char
// operators (<= >= != =~ !~) are scanned before their one-char
// prefixes.
func tokenize(s string) ([]string, error) {
	var out []string
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"' || c == '\'':
			quote := c
			var lit []byte
			j := i + 1
			for {
				if j >= len(s) {
					return nil, fmt.Errorf("tsql: unterminated string literal starting at column %d", i+1)
				}
				if s[j] == '\\' {
					if j+1 >= len(s) {
						return nil, fmt.Errorf("tsql: trailing backslash in string literal")
					}
					lit = append(lit, s[j+1])
					j += 2
					continue
				}
				if s[j] == quote {
					break
				}
				lit = append(lit, s[j])
				j++
			}
			out = append(out, stringMarker+string(lit))
			i = j + 1
		case i+1 < len(s) && (s[i:i+2] == "<=" || s[i:i+2] == ">=" || s[i:i+2] == "!=" || s[i:i+2] == "=~" || s[i:i+2] == "!~"):
			out = append(out, s[i:i+2])
			i += 2
		case strings.IndexByte("(),=<>*{}", c) >= 0:
			out = append(out, string(c))
			i++
		default:
			j := i
			for j < len(s) && strings.IndexByte(" \t\n\r\"'(),=<>*{}", s[j]) < 0 &&
				!(j+1 < len(s) && (s[j:j+2] == "!=" || s[j:j+2] == "!~")) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("tsql: unexpected character %q at column %d", c, i+1)
			}
			out = append(out, s[i:j])
			i = j
		}
	}
	return out, nil
}

// parser walks the token slice.
type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return strings.ToUpper(p.toks[p.pos])
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) raw() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

// isString reports whether tok is a decoded string literal.
func isString(tok string) bool { return strings.HasPrefix(tok, stringMarker) }

// text returns a token's source text: string literals decode to their
// contents, everything else passes through.
func text(tok string) string { return strings.TrimPrefix(tok, stringMarker) }

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("tsql: expected %s, got %q", tok, got)
	}
	return nil
}

func (p *parser) int64() (int64, error) {
	raw := p.raw()
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("tsql: expected integer, got %q", raw)
	}
	return v, nil
}

func (p *parser) float64() (float64, error) {
	raw := p.raw()
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("tsql: expected number, got %q", raw)
	}
	return v, nil
}

// Parse parses one statement.
func Parse(input string) (*Statement, error) {
	toks, err := tokenize(strings.TrimSuffix(strings.TrimSpace(input), ";"))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch p.next() {
	case "INSERT":
		return p.parseInsert()
	case "SELECT":
		return p.parseSelect()
	case "FLUSH":
		return &Statement{Kind: KindFlush}, nil
	case "COMPACT":
		return &Statement{Kind: KindCompact}, nil
	case "STATS":
		return &Statement{Kind: KindStats}, nil
	case "":
		return nil, fmt.Errorf("tsql: empty statement")
	default:
		return nil, fmt.Errorf("tsql: unknown statement %q", p.toks[0])
	}
}

func (p *parser) parseInsert() (*Statement, error) {
	st := &Statement{Kind: KindInsert}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	if err := p.parseTarget(st); err != nil {
		return nil, err
	}
	if st.HasSelector {
		// Writes address exactly one series: every term must be an
		// equality with a non-empty value.
		ls := make([]labels.Label, 0, len(st.Matchers))
		for _, m := range st.Matchers {
			if m.Type != labels.MatchEq || m.Value == "" {
				return nil, fmt.Errorf("tsql: INSERT selector terms must be label=\"value\", got %s", m)
			}
			ls = append(ls, labels.Label{Name: m.Name, Value: m.Value})
		}
		set, err := labels.New(ls...)
		if err != nil {
			return nil, fmt.Errorf("tsql: %w", err)
		}
		st.LabelSet = set
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		t, err := p.int64()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		v, err := p.float64()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Times = append(st.Times, t)
		st.Values = append(st.Values, v)
		if p.peek() != "," {
			break
		}
		p.next()
	}
	if p.peek() != "" {
		return nil, fmt.Errorf("tsql: trailing tokens after INSERT")
	}
	return st, nil
}

func (p *parser) parseSelect() (*Statement, error) {
	st := &Statement{Kind: KindSelect, MinTime: math.MinInt64, MaxTime: math.MaxInt64}
	switch p.peek() {
	case "*":
		p.next()
	case "AVG", "SUM", "MIN", "MAX", "COUNT", "FIRST", "LAST":
		name := p.next()
		st.HasAgg = true
		st.Agg = map[string]query.Aggregator{
			"AVG": query.Avg, "SUM": query.Sum, "MIN": query.Min, "MAX": query.Max,
			"COUNT": query.Count, "FIRST": query.First, "LAST": query.Last,
		}[name]
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if got := p.next(); got != "VALUE" {
			return nil, fmt.Errorf("tsql: aggregations take value, got %q", got)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("tsql: SELECT needs * or an aggregation, got %q", p.peek())
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseTarget(st); err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case "":
			return p.finishSelect(st)
		case "WHERE", "AND":
			p.next()
			if err := p.parseTimePredicate(st); err != nil {
				return nil, err
			}
		case "GROUP":
			p.next()
			if err := p.expect("BY"); err != nil {
				return nil, err
			}
			if got := p.next(); got != "WINDOW" {
				return nil, fmt.Errorf("tsql: GROUP BY supports WINDOW(w), got %q", got)
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			w, err := p.int64()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			st.Window = w
		case "LIMIT":
			p.next()
			n, err := p.int64()
			if err != nil {
				return nil, err
			}
			st.Limit = int(n)
		default:
			return nil, fmt.Errorf("tsql: unexpected token %q", p.peek())
		}
	}
}

func (p *parser) parseTimePredicate(st *Statement) error {
	if got := p.next(); got != "TIME" {
		return fmt.Errorf("tsql: predicates are on time, got %q", got)
	}
	op := p.next()
	v, err := p.int64()
	if err != nil {
		return err
	}
	// Strict comparators are normalized to the inclusive [MinTime,
	// MaxTime] the engine scans (aggregations later convert to the
	// half-open [startT, endT) convention of query.WindowQuery). At the
	// int64 extremes the ±1 normalization would wrap around and turn an
	// empty predicate into a full scan, so those collapse to a
	// statically empty range instead.
	switch op {
	case ">":
		if v == math.MaxInt64 {
			st.MinTime, st.MaxTime = math.MaxInt64, math.MinInt64
		} else {
			st.MinTime = v + 1
		}
	case ">=":
		st.MinTime = v
	case "<":
		if v == math.MinInt64 {
			st.MinTime, st.MaxTime = math.MaxInt64, math.MinInt64
		} else {
			st.MaxTime = v - 1
		}
	case "<=":
		st.MaxTime = v
	case "=":
		st.MinTime, st.MaxTime = v, v
	default:
		return fmt.Errorf("tsql: unsupported comparator %q", op)
	}
	return nil
}

// parseTarget parses the table position of FROM/INTO: either a flat
// sensor name (quoting allowed, so operator characters survive) or the
// series{...} selector form. An unquoted sensor literally named
// "series" without a following brace still parses as a flat sensor.
func (p *parser) parseTarget(st *Statement) error {
	tok := p.raw()
	if tok == "" {
		return fmt.Errorf("tsql: missing sensor name")
	}
	if !isString(tok) && strings.EqualFold(tok, "series") && p.peek() == "{" {
		return p.parseSelector(st)
	}
	st.Sensor = text(tok)
	return nil
}

// parseSelector parses {name op value, ...} into matchers. The empty
// selector {} selects every registered series.
func (p *parser) parseSelector(st *Statement) error {
	st.HasSelector = true
	p.next() // consume "{"
	if p.peek() == "}" {
		p.next()
		return nil
	}
	for {
		nameTok := p.raw()
		if nameTok == "" || nameTok == "}" || nameTok == "," {
			return fmt.Errorf("tsql: missing label name in selector")
		}
		var mt labels.MatchType
		switch op := p.next(); op {
		case "=":
			mt = labels.MatchEq
		case "!=":
			mt = labels.MatchNotEq
		case "=~":
			mt = labels.MatchRe
		case "!~":
			mt = labels.MatchNotRe
		default:
			return fmt.Errorf("tsql: selector operator must be = != =~ or !~, got %q", op)
		}
		valTok := p.raw()
		if valTok == "" || (!isString(valTok) && strings.ContainsAny(valTok, "{}(),=<>*")) {
			return fmt.Errorf("tsql: missing label value in selector")
		}
		m, err := labels.NewMatcher(mt, text(nameTok), text(valTok))
		if err != nil {
			return fmt.Errorf("tsql: %w", err)
		}
		st.Matchers = append(st.Matchers, m)
		switch p.next() {
		case ",":
		case "}":
			return nil
		default:
			return fmt.Errorf("tsql: selector terms must be separated by ',' and closed by '}'")
		}
	}
}

func (p *parser) finishSelect(st *Statement) (*Statement, error) {
	if st.HasAgg && st.Window <= 0 {
		return nil, fmt.Errorf("tsql: aggregations need GROUP BY WINDOW(w)")
	}
	if !st.HasAgg && st.Window > 0 {
		return nil, fmt.Errorf("tsql: GROUP BY WINDOW needs an aggregation")
	}
	return st, nil
}

// Result is a statement's tabular output.
type Result struct {
	Columns []string
	Rows    [][]string
	Message string // for statements without rows
}

// Engine is the storage surface statements execute against — a bare
// *engine.Engine or the shard router.
type Engine interface {
	InsertBatch(sensor string, times []int64, values []float64) error
	Query(sensor string, minT, maxT int64) ([]engine.TV, error)
	Flush()
	Compact() error
	FileCount() int
	Stats() engine.Stats
}

// shardStatser is optionally implemented by sharded engines; STATS
// prints the per-shard breakdown when it is.
type shardStatser interface {
	StatsAll() (engine.Stats, []engine.Stats)
}

// SeriesEngine is the label-series surface the series{...} statements
// need. The shard router implements it; a bare engine does not, so
// selector statements against one fail with a clear error instead of
// misrouting.
type SeriesEngine interface {
	InsertSeries(ls labels.Set, times []int64, values []float64) error
	QuerySeries(ms []*labels.Matcher, minT, maxT int64) ([]shard.SeriesPoints, error)
	AggregateSeriesGroup(ms []*labels.Matcher, startT, endT, window int64, agg query.Aggregator) ([]query.WindowResult, error)
}

// seriesEngine resolves the label-series surface or explains why the
// statement cannot run here.
func seriesEngine(e Engine) (SeriesEngine, error) {
	se, ok := e.(SeriesEngine)
	if !ok {
		return nil, fmt.Errorf("tsql: series{...} statements need the sharded store (run with label routing enabled)")
	}
	return se, nil
}

// Execute runs a parsed statement against the engine.
func Execute(e Engine, st *Statement) (*Result, error) {
	switch st.Kind {
	case KindInsert:
		if st.HasSelector {
			se, err := seriesEngine(e)
			if err != nil {
				return nil, err
			}
			if err := se.InsertSeries(st.LabelSet, st.Times, st.Values); err != nil {
				return nil, err
			}
			return &Result{Message: fmt.Sprintf("inserted %d points into %s", len(st.Times), st.LabelSet)}, nil
		}
		if err := e.InsertBatch(st.Sensor, st.Times, st.Values); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("inserted %d points", len(st.Times))}, nil

	case KindFlush:
		e.Flush()
		return &Result{Message: "flushed"}, nil

	case KindCompact:
		if err := e.Compact(); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("compacted to %d file(s)", e.FileCount())}, nil

	case KindStats:
		if sh, ok := e.(shardStatser); ok {
			// Sharded engine: one aggregate row, then the per-shard
			// breakdown from the same collection pass.
			merged, per := sh.StatsAll()
			res := &Result{
				Columns: []string{"shard", "flushes", "avg_flush_ms", "avg_sort_ms", "seq_points", "unseq_points", "files", "memtable_points"},
				Rows:    [][]string{append([]string{"all"}, statsRow(merged)...)},
			}
			for i, s := range per {
				res.Rows = append(res.Rows, append([]string{strconv.Itoa(i)}, statsRow(s)...))
			}
			return res, nil
		}
		return &Result{
			Columns: []string{"flushes", "avg_flush_ms", "avg_sort_ms", "seq_points", "unseq_points", "files", "memtable_points"},
			Rows:    [][]string{statsRow(e.Stats())},
		}, nil

	case KindSelect:
		if st.HasAgg {
			res := &Result{Columns: []string{"window_start", st.Agg.String() + "(value)", "count"}}
			if st.MinTime > st.MaxTime {
				return res, nil // statically empty predicate
			}
			// The inclusive [MinTime, MaxTime] predicate becomes
			// WindowQuery's half-open [startT, endT): the end bound is
			// exclusive, so time <= T queries endT = T+1.
			endT := st.MaxTime
			if endT != math.MaxInt64 {
				endT++
			}
			startT := st.MinTime
			if startT == math.MinInt64 {
				startT = 0
			}
			var wins []query.WindowResult
			var err error
			if st.HasSelector {
				// Cross-series GROUP BY WINDOW: every matching series
				// aggregates in parallel, windows merge per start.
				se, serr := seriesEngine(e)
				if serr != nil {
					return nil, serr
				}
				wins, err = se.AggregateSeriesGroup(st.Matchers, startT, endT, st.Window, st.Agg)
			} else {
				wins, err = query.WindowQuery(e, st.Sensor, startT, endT, st.Window, st.Agg)
			}
			if err != nil {
				return nil, err
			}
			for _, w := range wins {
				res.Rows = append(res.Rows, []string{
					strconv.FormatInt(w.Start, 10),
					strconv.FormatFloat(w.Value, 'g', -1, 64),
					strconv.Itoa(w.Count),
				})
			}
			return res, nil
		}
		if st.HasSelector {
			se, err := seriesEngine(e)
			if err != nil {
				return nil, err
			}
			sps, err := se.QuerySeries(st.Matchers, st.MinTime, st.MaxTime)
			if err != nil {
				return nil, err
			}
			// Deterministic output: series in canonical order, points in
			// time order within each; LIMIT caps the flattened rows.
			shard.SortSeriesByCanonical(sps)
			res := &Result{Columns: []string{"series", "time", "value"}}
			for _, sp := range sps {
				for _, tv := range sp.Points {
					if st.Limit > 0 && len(res.Rows) >= st.Limit {
						return res, nil
					}
					res.Rows = append(res.Rows, []string{
						sp.Labels.String(),
						strconv.FormatInt(tv.T, 10),
						strconv.FormatFloat(tv.V, 'g', -1, 64),
					})
				}
			}
			return res, nil
		}
		out, err := e.Query(st.Sensor, st.MinTime, st.MaxTime)
		if err != nil {
			return nil, err
		}
		if st.Limit > 0 && len(out) > st.Limit {
			out = out[:st.Limit]
		}
		res := &Result{Columns: []string{"time", "value"}}
		for _, tv := range out {
			res.Rows = append(res.Rows, []string{
				strconv.FormatInt(tv.T, 10),
				strconv.FormatFloat(tv.V, 'g', -1, 64),
			})
		}
		return res, nil

	default:
		return nil, fmt.Errorf("tsql: unknown statement kind %d", st.Kind)
	}
}

// statsRow renders the shared STATS columns for one snapshot.
func statsRow(s engine.Stats) []string {
	return []string{
		strconv.Itoa(s.FlushCount),
		fmt.Sprintf("%.3f", s.AvgFlushMillis),
		fmt.Sprintf("%.3f", s.AvgSortMillis),
		strconv.FormatInt(s.SeqPoints, 10),
		strconv.FormatInt(s.UnseqPoints, 10),
		strconv.Itoa(s.Files),
		strconv.Itoa(s.MemTablePoints),
	}
}

// Run parses and executes one statement.
func Run(e Engine, input string) (*Result, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return Execute(e, st)
}
