package labels

import (
	"testing"
)

func TestNewSortsAndCanonicalizes(t *testing.T) {
	a := MustNew(Label{"b", "2"}, Label{"a", "1"})
	b := MustNew(Label{"a", "1"}, Label{"b", "2"})
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical differs by input order: %q vs %q", a.Canonical(), b.Canonical())
	}
	if a.Canonical() != "a=1,b=2" {
		t.Fatalf("canonical = %q, want a=1,b=2", a.Canonical())
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("hash differs by input order")
	}
	if got := a.Get("b"); got != "2" {
		t.Fatalf("Get(b) = %q", got)
	}
	if got := a.Get("missing"); got != "" {
		t.Fatalf("Get(missing) = %q, want empty", got)
	}
}

func TestNewRejectsBadSets(t *testing.T) {
	if _, err := New(Label{"a", "1"}, Label{"a", "2"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := New(Label{"", "1"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New(); err == nil {
		t.Fatal("empty set accepted")
	}
	// Empty values mean "absent" and are dropped; a set of only empty
	// values is therefore empty.
	if _, err := New(Label{"a", ""}); err == nil {
		t.Fatal("all-empty set accepted")
	}
	s, err := New(Label{"a", "1"}, Label{"drop", ""})
	if err != nil || len(s) != 1 {
		t.Fatalf("empty-valued label not dropped: %v %v", s, err)
	}
}

func TestCanonicalEscapingRoundTrip(t *testing.T) {
	tricky := []Set{
		MustNew(Label{"host", "a=b"}),
		MustNew(Label{"host", "a,b"}, Label{"re", `w\d+`}),
		MustNew(Label{"k=ey", `v\`}, Label{"z", ","}),
		MustNew(Label{"a", "1"}, Label{"b", "2"}),
	}
	for _, s := range tricky {
		c := s.Canonical()
		back, err := ParseCanonical(c)
		if err != nil {
			t.Fatalf("ParseCanonical(%q): %v", c, err)
		}
		if back.Canonical() != c {
			t.Fatalf("round trip changed %q -> %q", c, back.Canonical())
		}
	}
	// Two distinct sets must never collide on canonical bytes.
	x := MustNew(Label{"a", "1,b=2"})
	y := MustNew(Label{"a", "1"}, Label{"b", "2"})
	if x.Canonical() == y.Canonical() {
		t.Fatalf("canonical collision: %q", x.Canonical())
	}
}

func TestParseCanonicalRejectsNonCanonical(t *testing.T) {
	for _, bad := range []string{
		"", "a", "a=", "=v", "b=2,a=1", "a=1,a=2", `a=1\`, "a=1,,b=2",
	} {
		if _, err := ParseCanonical(bad); err == nil {
			t.Fatalf("ParseCanonical(%q) accepted", bad)
		}
	}
}

func TestMatcherEquality(t *testing.T) {
	m := MustMatcher(MatchEq, "host", "a")
	if !m.Matches("a") || m.Matches("b") || m.Matches("") {
		t.Fatal("equality matcher wrong")
	}
	n := MustMatcher(MatchNotEq, "host", "a")
	if n.Matches("a") || !n.Matches("b") || !n.Matches("") {
		t.Fatal("not-equal matcher wrong")
	}
}

// TestMatcherEmptyValue: {host=""} matches series lacking the label,
// {host!=""} matches series having it.
func TestMatcherEmptyValue(t *testing.T) {
	m := MustMatcher(MatchEq, "host", "")
	if !m.Matches("") || m.Matches("a") {
		t.Fatal(`host="" should match only absent labels`)
	}
	n := MustMatcher(MatchNotEq, "host", "")
	if n.Matches("") || !n.Matches("a") {
		t.Fatal(`host!="" should match only present labels`)
	}
}

// TestMatcherRegexAnchored: =~"west" must not match "west-1" — the
// regex is implicitly ^...$.
func TestMatcherRegexAnchored(t *testing.T) {
	m := MustMatcher(MatchRe, "region", "west")
	if !m.Matches("west") || m.Matches("west-1") || m.Matches("northwest") {
		t.Fatal("regex matcher not anchored")
	}
	p := MustMatcher(MatchRe, "region", "west-.*")
	if !p.Matches("west-1") || p.Matches("west") {
		t.Fatal("prefix regex wrong")
	}
	// Alternation must stay inside the anchor group: ^(?:a|b)$, not ^a|b$.
	alt := MustMatcher(MatchRe, "region", "aa|bb")
	if !alt.Matches("aa") || !alt.Matches("bb") || alt.Matches("aax") || alt.Matches("xbb") {
		t.Fatal("alternation escaped the anchors")
	}
	if _, err := NewMatcher(MatchRe, "region", "("); err == nil {
		t.Fatal("invalid regex accepted")
	}
}

func TestMatcherString(t *testing.T) {
	if got := MustMatcher(MatchRe, "region", "west-.*").String(); got != `region=~"west-.*"` {
		t.Fatalf("String() = %q", got)
	}
}
