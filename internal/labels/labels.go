// Package labels implements the label data model that turns flat
// sensor strings into addressable series: a Set is a sorted list of
// name=value pairs ("host=a,region=west"), canonically encoded so that
// {a=1,b=2} and {b=2,a=1} are the same series everywhere — the same
// catalog entry, the same inverted-index postings, and (because the
// shard router hashes the canonical encoding) the same shard. The
// layout follows the tagHash convention of tagged time-series stores:
// pairs sorted by name, joined into one canonical string, hashed with
// a stable function.
package labels

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one name=value pair.
type Label struct {
	Name  string
	Value string
}

// Set is a sorted, duplicate-free list of labels identifying one
// series. Build one with New or FromMap (which canonicalize); a
// hand-built unsorted Set will mis-route, so don't.
type Set []Label

// New builds a Set from labels: pairs are sorted by name, labels with
// empty values are dropped (an empty value means "label absent", as in
// the matcher semantics), and duplicate or empty names are rejected.
// The resulting set must be non-empty.
func New(ls ...Label) (Set, error) {
	s := make(Set, 0, len(ls))
	for _, l := range ls {
		if l.Value == "" {
			continue
		}
		if l.Name == "" {
			return nil, fmt.Errorf("labels: empty label name (value %q)", l.Value)
		}
		s = append(s, l)
	}
	sort.Slice(s, func(a, b int) bool { return s[a].Name < s[b].Name })
	for i := 1; i < len(s); i++ {
		if s[i].Name == s[i-1].Name {
			return nil, fmt.Errorf("labels: duplicate label name %q", s[i].Name)
		}
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("labels: empty label set")
	}
	return s, nil
}

// FromMap builds a Set from a map.
func FromMap(m map[string]string) (Set, error) {
	ls := make([]Label, 0, len(m))
	for n, v := range m {
		ls = append(ls, Label{n, v})
	}
	return New(ls...)
}

// MustNew is New for tests and literals known to be valid.
func MustNew(ls ...Label) Set {
	s, err := New(ls...)
	if err != nil {
		panic(err)
	}
	return s
}

// Get returns the value of name, or "" when the label is absent.
func (s Set) Get(name string) string {
	for _, l := range s {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// appendEscaped writes v with the canonical-encoding metacharacters
// backslash-escaped, so Canonical is unambiguous for any name/value.
func appendEscaped(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\', ',', '=':
			b = append(b, '\\')
		}
		b = append(b, v[i])
	}
	return b
}

// Canonical returns the canonical sorted-pair encoding:
// name=value,name=value with '\', ',' and '=' backslash-escaped. The
// canonical string is the series' storage key — the engine's sensor
// id, the catalog entry, and the input to shard routing — so two sets
// with the same pairs in any input order produce identical bytes.
func (s Set) Canonical() string {
	var b []byte
	for i, l := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendEscaped(b, l.Name)
		b = append(b, '=')
		b = appendEscaped(b, l.Value)
	}
	return string(b)
}

// Hash returns the stable FNV-1a hash of the canonical encoding. The
// shard router's string hash over Canonical() computes exactly this,
// so Hash is the series' routing key; it must never change.
func (s Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	c := s.Canonical()
	for i := 0; i < len(c); i++ {
		h ^= uint64(c[i])
		h *= prime64
	}
	return h
}

// String renders the set selector-style: {a="1",b="2"}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString("=\"")
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ParseCanonical decodes a Canonical() encoding back into a Set — the
// inverse the series catalog uses at replay. It rejects encodings that
// are not in canonical form (unsorted, duplicate or empty names,
// trailing backslash), so a corrupt catalog record cannot smuggle in a
// set that would re-encode differently.
func ParseCanonical(c string) (Set, error) {
	if c == "" {
		return nil, fmt.Errorf("labels: empty canonical encoding")
	}
	var s Set
	var cur []byte
	var name string
	inValue := false
	flush := func() error {
		if !inValue {
			return fmt.Errorf("labels: canonical %q: pair without '='", c)
		}
		s = append(s, Label{Name: name, Value: string(cur)})
		cur = cur[:0]
		inValue = false
		return nil
	}
	for i := 0; i < len(c); i++ {
		switch c[i] {
		case '\\':
			if i+1 >= len(c) {
				return nil, fmt.Errorf("labels: canonical %q: trailing backslash", c)
			}
			i++
			cur = append(cur, c[i])
		case '=':
			if inValue {
				return nil, fmt.Errorf("labels: canonical %q: unescaped '=' in value", c)
			}
			name = string(cur)
			cur = cur[:0]
			inValue = true
		case ',':
			if err := flush(); err != nil {
				return nil, err
			}
		default:
			cur = append(cur, c[i])
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for i, l := range s {
		if l.Name == "" {
			return nil, fmt.Errorf("labels: canonical %q: empty label name", c)
		}
		if l.Value == "" {
			return nil, fmt.Errorf("labels: canonical %q: empty label value", c)
		}
		if i > 0 && s[i-1].Name >= l.Name {
			return nil, fmt.Errorf("labels: canonical %q: pairs not sorted", c)
		}
	}
	return s, nil
}
