package labels

import (
	"fmt"
	"regexp"
)

// MatchType discriminates matcher operators.
type MatchType uint8

// Matcher operators: equality, negated equality, anchored regular
// expression, negated anchored regular expression.
const (
	MatchEq MatchType = iota
	MatchNotEq
	MatchRe
	MatchNotRe
)

func (t MatchType) String() string {
	switch t {
	case MatchEq:
		return "="
	case MatchNotEq:
		return "!="
	case MatchRe:
		return "=~"
	case MatchNotRe:
		return "!~"
	}
	return fmt.Sprintf("MatchType(%d)", t)
}

// Matcher is one selector term: <name> <op> <value>. A series' value
// for an absent label is the empty string, so {host=""} matches series
// without a host label and {host!=""} matches series with one — the
// usual selector semantics.
type Matcher struct {
	Type  MatchType
	Name  string
	Value string
	re    *regexp.Regexp
}

// NewMatcher builds a matcher, compiling regex values fully anchored:
// =~"west" matches exactly "west", not "west-1" — write "west-.*" for
// a prefix match.
func NewMatcher(t MatchType, name, value string) (*Matcher, error) {
	if name == "" {
		return nil, fmt.Errorf("labels: matcher with empty label name")
	}
	m := &Matcher{Type: t, Name: name, Value: value}
	if t == MatchRe || t == MatchNotRe {
		re, err := regexp.Compile("^(?:" + value + ")$")
		if err != nil {
			return nil, fmt.Errorf("labels: bad matcher regex %q: %w", value, err)
		}
		m.re = re
	}
	return m, nil
}

// MustMatcher is NewMatcher for tests and literals known to be valid.
func MustMatcher(t MatchType, name, value string) *Matcher {
	m, err := NewMatcher(t, name, value)
	if err != nil {
		panic(err)
	}
	return m
}

// Matches reports whether a label value satisfies the matcher ("" for
// an absent label).
func (m *Matcher) Matches(v string) bool {
	switch m.Type {
	case MatchEq:
		return v == m.Value
	case MatchNotEq:
		return v != m.Value
	case MatchRe:
		return m.re.MatchString(v)
	case MatchNotRe:
		return !m.re.MatchString(v)
	}
	return false
}

// String renders the matcher selector-style: host=~"west-.*".
func (m *Matcher) String() string {
	return fmt.Sprintf("%s%s%q", m.Name, m.Type, m.Value)
}
