// Package adaptive self-tunes the Backward-Sort path from online
// disorder measurement. The paper fixes its parameters per run — block
// size from one search per sort, flat-vs-interface from a global
// length threshold — but real sensor delay distributions drift over
// time and differ per sensor. This package maintains a cheap
// per-sensor disorder sketch at insert time (Sketch, O(1) per point)
// and turns it into per-flush sort-path decisions (Planner): seed the
// block-size search with the sketch-predicted L, skip the search
// entirely once the prediction is stable, and route each sensor to the
// flat kernel or the in-place interface path on its own measured
// disorder rather than a global threshold.
package adaptive

import "math/bits"

// LateBuckets is the size of the power-of-two lateness histogram.
// Bucket i counts points whose lateness (in timestamp ticks) lies in
// [2^i, 2^(i+1)); 41 buckets cover every lateness up to 2^41 ticks —
// beyond a year at millisecond resolution — with the last bucket
// absorbing anything larger.
const LateBuckets = 41

// Sketch is the per-sensor online disorder sketch, updated on every
// insert. It is deliberately tiny and branch-light: one comparison
// against the running max timestamp, and for the out-of-order minority
// one bits.Len64 to bucket the lateness. The sketch carries no
// synchronization of its own — it lives in the memtable, whose writes
// the engine already serializes, and is read only after the memtable
// rotates to its immutable flushing state (or under the same engine
// lock that serializes the writes).
type Sketch struct {
	n       int64 // points observed
	ooo     int64 // points that arrived behind the running max (t < maxT)
	firstT  int64 // first timestamp observed
	maxT    int64 // running max timestamp
	maxLate int64 // largest lateness observed, in ticks
	late    [LateBuckets]int64
}

// Observe feeds one point's timestamp into the sketch.
func (s *Sketch) Observe(t int64) {
	if s.n == 0 {
		s.n = 1
		s.firstT = t
		s.maxT = t
		return
	}
	s.n++
	if t >= s.maxT {
		s.maxT = t
		return
	}
	late := s.maxT - t // > 0: this point arrived late
	s.ooo++
	if late > s.maxLate {
		s.maxLate = late
	}
	b := bits.Len64(uint64(late)) - 1 // late >= 1 → b >= 0
	if b >= LateBuckets {
		b = LateBuckets - 1
	}
	s.late[b]++
}

// Reset returns the sketch to its zero state. A fresh working memtable
// starts with zero sketches; Reset exists for callers that recycle
// sketch storage.
func (s *Sketch) Reset() { *s = Sketch{} }

// Snapshot returns a value copy of the sketch's counters for reading
// outside the writer's lock.
func (s *Sketch) Snapshot() Snapshot {
	return Snapshot{
		N:       s.n,
		OOO:     s.ooo,
		FirstT:  s.firstT,
		MaxT:    s.maxT,
		MaxLate: s.maxLate,
		Late:    s.late,
	}
}

// Snapshot is an immutable copy of a Sketch's counters.
type Snapshot struct {
	N       int64
	OOO     int64
	FirstT  int64
	MaxT    int64
	MaxLate int64
	Late    [LateBuckets]int64
}

// DisorderFraction is the fraction of observed points that arrived
// behind the running max timestamp — the sketch's estimate of the
// adjacent inversion rate. Always in [0, 1].
func (s Snapshot) DisorderFraction() float64 {
	if s.N <= 0 {
		return 0
	}
	return float64(s.OOO) / float64(s.N)
}

// Interval estimates the sensor's mean inter-arrival spacing in ticks:
// total covered span over points. At least 1 so lateness-to-records
// conversions never divide by zero.
func (s Snapshot) Interval() float64 {
	if s.N < 2 {
		return 1
	}
	iv := float64(s.MaxT-s.FirstT) / float64(s.N-1)
	if iv < 1 {
		iv = 1
	}
	return iv
}
