package adaptive

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/delay"
)

func TestSketchCleanSeries(t *testing.T) {
	var s Sketch
	for i := int64(0); i < 1000; i++ {
		s.Observe(i * 10)
	}
	sk := s.Snapshot()
	if sk.N != 1000 || sk.OOO != 0 || sk.MaxLate != 0 {
		t.Fatalf("clean series: N=%d OOO=%d MaxLate=%d", sk.N, sk.OOO, sk.MaxLate)
	}
	if f := sk.DisorderFraction(); f != 0 {
		t.Fatalf("clean disorder fraction %g", f)
	}
	if iv := sk.Interval(); iv != 10 {
		t.Fatalf("interval %g, want 10", iv)
	}
}

func TestSketchDisorderCounting(t *testing.T) {
	var s Sketch
	// Every 4th point arrives 25 ticks late: disorder fraction 1/4,
	// max lateness 25.
	for i := int64(0); i < 4000; i++ {
		ts := i * 10
		if i%4 == 3 {
			ts -= 25
		}
		s.Observe(ts)
	}
	sk := s.Snapshot()
	if f := sk.DisorderFraction(); f < 0.24 || f > 0.26 {
		t.Fatalf("disorder fraction %g, want ≈0.25", f)
	}
	// A point written 25 ticks behind its slot trails the running max
	// (set by the previous on-time point) by 15 ticks.
	if sk.MaxLate != 15 {
		t.Fatalf("max lateness %d, want 15", sk.MaxLate)
	}
	if f := sk.DisorderFraction(); f < 0 || f > 1 {
		t.Fatalf("disorder fraction %g out of [0,1]", f)
	}
	// Lateness 15 has bit length 4 → bucket 3 ([8,16)).
	if sk.Late[3] != 1000 {
		t.Fatalf("bucket 3 count %d, want 1000", sk.Late[3])
	}
	s.Reset()
	if got := s.Snapshot(); got.N != 0 || got.OOO != 0 {
		t.Fatalf("reset sketch not zero: %+v", got)
	}
}

// TestSketchPredictionTracksSearch checks the tentpole's core claim:
// the histogram-derived block-size prediction lands near the L the
// paper's actual search picks, across delay shapes.
func TestSketchPredictionTracksSearch(t *testing.T) {
	scenarios := []struct {
		name string
		d    delay.Distribution
	}{
		{"exp2", delay.Exponential{Lambda: 2}},
		{"exp0.05", delay.Exponential{Lambda: 0.05}},
		{"absnormal", delay.AbsNormal{Mu: 1, Sigma: 2}},
		{"lognormal", delay.LogNormal{Mu: 1, Sigma: 2}},
		{"clockskew", delay.ClockSkew{P: 0.3, Skew: 100, Jitter: 2}},
	}
	for _, sc := range scenarios {
		ser := dataset.Generate(sc.name, 200000, sc.d, 7)
		var sk Sketch
		for _, ts := range ser.Times {
			sk.Observe(ts)
		}
		p := NewPlanner(Config{})
		var pred int
		for g := 0; g < 3; g++ { // a few generations so decay washes out
			d := p.Plan(sc.name, sk.Snapshot(), len(ser.Times))
			pred = d.FixedL
			if pred == 0 {
				pred = d.SeedL * 2 // seed is half the prediction
			}
		}
		times := append([]int64(nil), ser.Times...)
		tr := core.SortFlat(times, make([]float64, len(times)), core.FlatOptions{})
		searched := tr.BlockSize
		if pred < searched/4 || pred > searched*4 {
			t.Errorf("%s: sketch predicted L=%d, search picked L=%d (want within 4x)",
				sc.name, pred, searched)
		}
	}
}

// snap builds a synthetic snapshot with n points of which ooo arrived
// late by exactly `late` ticks, at unit spacing `interval`.
func snap(n, ooo, late, interval int64) Snapshot {
	var s Snapshot
	s.N = n
	s.OOO = ooo
	s.FirstT = 0
	s.MaxT = (n - 1) * interval
	s.MaxLate = late
	if ooo > 0 {
		b := 0
		for l := late; l > 1; l >>= 1 {
			b++
		}
		if b >= LateBuckets {
			b = LateBuckets - 1
		}
		s.Late[b] = ooo
	}
	return s
}

func TestPlannerStabilizesThenSkips(t *testing.T) {
	p := NewPlanner(Config{})
	// Half the points are 200 ticks (= 20 records) late: the search
	// needs L ≈ 32 to clear Θ.
	gen := snap(10000, 5000, 200, 10)

	sawFixed := false
	for flush := 1; flush <= 7; flush++ {
		d := p.Plan("s1", gen, 10000)
		if !d.Sketched {
			t.Fatalf("flush %d: decision not sketch-informed", flush)
		}
		if d.FixedL > 0 {
			sawFixed = true
			if d.SavedIterations <= 0 {
				t.Fatalf("flush %d: fixed decision saved %d iterations", flush, d.SavedIterations)
			}
			continue // skipped searches must not feed back
		}
		if d.SeedL <= 0 {
			t.Fatalf("flush %d: neither fixed nor seeded: %+v", flush, d)
		}
		// Simulate the seeded search confirming the prediction.
		p.Observe("s1", d.SeedL*2)
	}
	if !sawFixed {
		t.Fatal("planner never skipped the search on a stationary sensor")
	}
	// Flush 8 is a revalidation turn: the search must actually run.
	d := p.Plan("s1", gen, 10000)
	if d.FixedL != 0 || d.SeedL == 0 {
		t.Fatalf("revalidation flush should seed a real search, got %+v", d)
	}
}

func TestPlannerReactsToDrift(t *testing.T) {
	p := NewPlanner(Config{})
	calm := snap(10000, 5000, 200, 10) // → modest L
	var lastCalm Decision
	for flush := 1; flush <= 7; flush++ {
		d := p.Plan("s1", calm, 10000)
		if d.SeedL > 0 {
			p.Observe("s1", d.SeedL*2)
		}
		lastCalm = d
	}
	if lastCalm.FixedL == 0 {
		t.Fatal("sensor did not stabilize on the calm distribution")
	}
	// The delay distribution drifts: lateness explodes 64x. The
	// prediction moves, so the planner must drop back to a real
	// search rather than keep the pinned L.
	burst := snap(10000, 5000, 12800, 10)
	var reSeeded bool
	for flush := 0; flush < 3; flush++ {
		d := p.Plan("s1", burst, 10000)
		if d.SeedL > 0 {
			reSeeded = true
			if d.SeedL*2 <= lastCalm.FixedL {
				t.Fatalf("post-drift seed %d did not move above calm L %d", d.SeedL, lastCalm.FixedL)
			}
			break
		}
	}
	if !reSeeded {
		t.Fatal("planner kept skipping the search after a 64x lateness drift")
	}
}

func TestPlannerRouting(t *testing.T) {
	p := NewPlanner(Config{})
	dirty := snap(10000, 2000, 100, 10)
	clean := snap(10000, 3, 100, 10) // disorder 3e-4 < 1/256

	if d := p.Plan("big-dirty", dirty, 100000); !d.UseFlat {
		t.Fatal("long dirty chunk should route to the flat kernel")
	}
	// A dirty chunk below the engine's static threshold is exactly the
	// case the per-sensor routing exists for: the flat kernel wins on
	// disordered data from FlatDirtyMinLen up.
	if d := p.Plan("mid-dirty", dirty, 2600); !d.UseFlat {
		t.Fatal("mid-size dirty chunk should route to the flat kernel")
	}
	if d := p.Plan("small-dirty", dirty, 16); d.UseFlat {
		t.Fatal("tiny chunk should stay on the interface path")
	}
	// Near-clean chunks defer to the static threshold.
	if d := p.Plan("big-clean", clean, 100000); !d.UseFlat {
		t.Fatal("long near-clean chunk should keep the static flat routing")
	}
	if d := p.Plan("mid-clean", clean, 2600); d.UseFlat {
		t.Fatal("mid-size near-clean chunk should stay on the in-place interface path")
	}
}

func TestPlannerColdStart(t *testing.T) {
	p := NewPlanner(Config{})
	d := p.Plan("s1", snap(10, 2, 50, 10), 100000)
	if d.Sketched || d.FixedL != 0 || d.SeedL != 0 {
		t.Fatalf("10 samples should not inform a decision: %+v", d)
	}
	if !d.UseFlat {
		t.Fatal("cold start on a long chunk should keep the default flat routing")
	}
}
