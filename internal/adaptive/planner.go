package adaptive

import (
	"math/bits"
	"sync"
)

// Config tunes the Planner. The zero value selects defaults matched to
// the paper's search parameters (L0 = 4, Θ = 0.04).
type Config struct {
	// L0 is the block-size search floor (default 4, the paper's L0).
	L0 int
	// Theta is the empirical IIR threshold Θ the prediction targets
	// (default 0.04, the paper's Θ̃).
	Theta float64
	// Decay is the weight kept on prior flush generations when a new
	// generation's sketch is folded in (default 0.5): the per-sensor
	// state is an exponentially decayed histogram over generations, so
	// a drifting delay distribution is forgotten in a few flushes.
	Decay float64
	// StableRuns is how many consecutive searches must confirm the
	// same L before the planner skips the search (default 3).
	StableRuns int
	// RevalidateEvery forces a real (seeded) search every Nth flush of
	// a sensor even when its prediction is stable (default 8), so a
	// drift the sketch underestimates cannot pin a bad L forever.
	RevalidateEvery int64
	// MinSamples is the decayed point count below which the planner
	// makes no sketch-informed decision (default 64).
	MinSamples float64
	// FlatMinLen is the chunk length at which a *near-clean* chunk
	// takes the flat kernel (default 4096, the engine's default
	// flat-sort threshold): when almost nothing is out of order the
	// sort is a near-no-op and routing defers to the static threshold.
	FlatMinLen int
	// FlatDirtyMinLen is the far lower flat floor for chunks the
	// sketch knows to be disordered (default 32): on dirty data the
	// kernel's contiguous sort beats the interface path's per-record
	// indirection by 2-3x at every measured size, so the
	// coalesce/scatter copies amortize almost immediately — the
	// per-sensor routing win a single global threshold cannot express.
	FlatDirtyMinLen int
	// MinDisorderForFlat is the disorder fraction separating the two
	// floors above (default 1/256).
	MinDisorderForFlat float64
}

func (c Config) withDefaults() Config {
	if c.L0 <= 0 {
		c.L0 = 4
	}
	if c.Theta <= 0 {
		c.Theta = 0.04
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	if c.StableRuns <= 0 {
		c.StableRuns = 3
	}
	if c.RevalidateEvery <= 0 {
		c.RevalidateEvery = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.FlatMinLen <= 0 {
		c.FlatMinLen = 4096
	}
	if c.FlatDirtyMinLen <= 0 {
		c.FlatDirtyMinLen = 32
	}
	if c.MinDisorderForFlat <= 0 {
		c.MinDisorderForFlat = 1.0 / 256
	}
	return c
}

// maxPredictL caps the predicted block size; BackwardSort clamps L to
// the chunk length anyway, so a prediction beyond this only wastes
// doubling steps.
const maxPredictL = 1 << 20

// Decision is the planner's per-sensor, per-flush sort-path plan.
type Decision struct {
	// FixedL, when positive, pins the block size and skips the search
	// entirely — the prediction has been stable across StableRuns
	// confirming searches.
	FixedL int
	// SeedL, when positive, seeds the block-size search: the search
	// starts doubling from here instead of from L0. Mutually exclusive
	// with FixedL.
	SeedL int
	// Phase is the anchor for the search's stride-L subsample (see
	// core.Options.SearchPhase). It is stable per sensor but distinct
	// across sensors: distinct anchors keep a fleet-wide periodic
	// timestamp pattern from aliasing every sensor's estimate the same
	// way, while a stable anchor keeps the search deterministic per
	// sensor — a rotating anchor makes the chosen L flap on periodic
	// patterns, which resets the stability count and blocks pinning.
	Phase int
	// UseFlat routes this sensor's chunk through the flat kernel;
	// false keeps it on the in-place interface path.
	UseFlat bool
	// SavedIterations estimates how many doubling-search iterations
	// the decision avoids versus the default search from L0: all of
	// them when FixedL skips the search, the iterations below the seed
	// when SeedL shortcuts its start.
	SavedIterations int
	// Sketched reports whether the planner had enough per-sensor
	// signal to inform the decision; false means defaults were used.
	Sketched bool
}

// sensorState is the decayed cross-generation disorder state of one
// sensor.
type sensorState struct {
	late     [LateBuckets]float64
	n        float64
	ooo      float64
	interval float64
	phase    int   // per-sensor subsample anchor, fixed at first sight
	lastL    int   // last search-confirmed (or stably predicted) block size
	agree    int   // consecutive confirmations of lastL
	flushes  int64 // flush generations folded in
}

// Planner turns per-flush sketch snapshots into sort-path decisions.
// It persists across flush generations — each generation's sketch is
// folded into an exponentially decayed per-sensor state — and is safe
// for concurrent use by the engine's flush workers.
type Planner struct {
	mu      sync.Mutex
	cfg     Config
	phase   int
	sensors map[string]*sensorState
}

// NewPlanner creates a Planner with the given configuration.
func NewPlanner(cfg Config) *Planner {
	return &Planner{
		cfg:     cfg.withDefaults(),
		sensors: make(map[string]*sensorState),
	}
}

// Plan folds one flush generation's sketch into the sensor's decayed
// state and returns the sort-path decision for that sensor's chunk.
func (p *Planner) Plan(sensor string, sk Snapshot, chunkLen int) Decision {
	p.mu.Lock()
	defer p.mu.Unlock()

	st := p.sensors[sensor]
	if st == nil {
		// A large prime stride spreads the per-sensor anchors across
		// residues of any small block size.
		p.phase += 7919
		st = &sensorState{phase: p.phase}
		p.sensors[sensor] = st
	}
	st.flushes++
	d := Decision{Phase: st.phase}

	// Fold the generation in under exponential decay.
	decay := p.cfg.Decay
	st.n = decay*st.n + float64(sk.N)
	st.ooo = decay*st.ooo + float64(sk.OOO)
	for i := range st.late {
		st.late[i] = decay*st.late[i] + float64(sk.Late[i])
	}
	if sk.N >= 2 {
		iv := sk.Interval()
		if st.interval == 0 {
			st.interval = iv
		} else {
			st.interval = decay*st.interval + (1-decay)*iv
		}
	}

	if st.n < p.cfg.MinSamples {
		// Not enough signal: default routing, default search.
		d.UseFlat = chunkLen >= p.cfg.FlatMinLen
		st.agree = 0
		st.lastL = 0
		return d
	}
	d.Sketched = true

	// Per-sensor flat-vs-interface routing: a chunk the sketch knows
	// to be dirty takes the flat kernel from FlatDirtyMinLen up, a
	// near-clean one only from the static threshold up, and tiny
	// chunks stay on the in-place interface path.
	disorder := st.ooo / st.n
	if disorder >= p.cfg.MinDisorderForFlat {
		d.UseFlat = chunkLen >= p.cfg.FlatDirtyMinLen
	} else {
		d.UseFlat = chunkLen >= p.cfg.FlatMinLen
	}

	pred := p.predictL(st)
	// Seed the search at half the prediction: one cheap estimate
	// below the target confirms it from underneath, and an
	// overestimated sketch cannot pin an oversized L because the
	// doubling search never descends.
	seed := pred / 2
	if seed < p.cfg.L0 {
		seed = p.cfg.L0
	}
	// Pinning keys on search stability — the same L confirmed
	// StableRuns times — with the prediction as a drift tripwire only:
	// the histogram-derived pred routinely sits a factor 2-4 off the
	// searched L (the histogram sees lateness, the search sees the
	// realized permutation), so demanding exact agreement would block
	// pinning on perfectly stationary sensors. A prediction that moves
	// outside the factor-2 band around the confirmed L signals a
	// distribution shift and drops the sensor back to a seeded search
	// — kept tight so a burst→calm transition unpins within a couple
	// of flushes instead of sorting calm chunks at the burst's L. The
	// pinned value is the search-confirmed lastL: measurement trumps
	// prediction.
	if st.agree >= p.cfg.StableRuns &&
		pred <= st.lastL*2 && st.lastL <= pred*2 &&
		st.flushes%p.cfg.RevalidateEvery != 0 {
		// Stable and not a revalidation turn: skip the search. The
		// default search would have tested L0, 2L0, …, lastL — count
		// those scans as saved.
		d.FixedL = st.lastL
		d.SavedIterations = log2Ratio(st.lastL, p.cfg.L0) + 1
		return d
	}
	d.SeedL = seed
	d.SavedIterations = log2Ratio(seed, p.cfg.L0)
	return d
}

// Observe feeds back the result of a real (seeded or default) search:
// measurement trumps prediction, so stability is counted on confirmed
// block sizes only. Decisions that skipped the search must not call
// Observe — a pinned L confirming itself would be circular.
//
// A result one power of 2 away from the last still counts as
// agreement: the search flaps between adjacent powers exactly when
// α̃ sits at Θ for one of them, which is also when the two block
// sizes cost nearly the same — resetting stability there would block
// pinning on sensors that are stationary in every way that matters.
// The pin keeps the larger of the two: oversizing by one power costs
// a slightly deeper block sort, undersizing can explode merge work.
func (p *Planner) Observe(sensor string, chosenL int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.sensors[sensor]
	if st == nil {
		return
	}
	switch {
	case chosenL == st.lastL:
		st.agree++
	case chosenL == st.lastL*2:
		st.agree++
		st.lastL = chosenL
	case st.lastL > 1 && chosenL == st.lastL/2:
		st.agree++
	default:
		st.agree = 0
		st.lastL = chosenL
	}
}

// predictL converts the decayed lateness histogram into the block size
// the paper's search would pick: the smallest L = L0·2^k whose
// predicted empirical IIR clears Θ. A point late by ℓ ticks sits
// ≈ ℓ/interval records behind its in-order position, so
// P(t_i > t_{i+L}) ≈ P(lateness > L·interval) — the histogram tail
// above L·interval, with the straddling bucket interpolated linearly.
func (p *Planner) predictL(st *sensorState) int {
	L := p.cfg.L0
	iv := st.interval
	if iv < 1 {
		iv = 1
	}
	for L < maxPredictL {
		x := float64(L) * iv
		if histTail(&st.late, x)/st.n < p.cfg.Theta {
			break
		}
		L *= 2
	}
	return L
}

// histTail estimates how many histogram points exceed lateness x.
// Buckets entirely above x count fully; the straddling bucket
// contributes the linear fraction of its [2^i, 2^(i+1)) range above x.
func histTail(late *[LateBuckets]float64, x float64) float64 {
	var tail float64
	for i := 0; i < LateBuckets; i++ {
		if late[i] == 0 {
			continue
		}
		lo := float64(int64(1) << uint(i))
		hi := lo * 2
		switch {
		case lo > x:
			tail += late[i]
		case hi > x:
			tail += late[i] * (hi - x) / (hi - lo)
		}
	}
	return tail
}

// log2Ratio returns floor(log2(l / l0)) for l >= l0 > 0, the number of
// doublings between them.
func log2Ratio(l, l0 int) int {
	if l <= l0 {
		return 0
	}
	return bits.Len(uint(l/l0)) - 1
}
