// Package rpc provides the client/server wire layer that lets the
// benchmark drive the storage engine over TCP, the way IoTDB-benchmark
// drives an IoTDB server (Section VI-A2). The protocol is a minimal
// length-prefixed binary framing:
//
//	request:  uint32 length | byte opcode | payload
//	response: uint32 length | byte status (0 ok, 1 error) | payload
//
// Payloads use uvarint-prefixed strings, varint timestamps and
// little-endian float64 values. One connection carries one
// request/response exchange at a time; clients open several
// connections for concurrency.
//
// Every connection starts with a handshake: the client's first frame
// must be OpHello carrying the 4-byte magic and its protocol version;
// the server verifies the magic and replies with its own. A
// mixed-version or non-protocol peer therefore fails on the first
// exchange with a descriptive error instead of misparsing later
// frames. Version history:
//
//	1 — original framing (no handshake; OpStats carries the flat
//	    engine stats block only)
//	2 — handshake required; OpStats appends a per-shard extension:
//	    uvarint shard count followed by that many stats blocks
//	3 — OpStats appends a durability extension after the per-shard
//	    blocks: one durability block (WAL syncs, WAL commits,
//	    quarantined files, recovered WAL batches — all varints) for
//	    the aggregate, then one per shard
//	4 — OpStats appends a pruning extension after the durability
//	    blocks: one pruning block (chunks answered from statistics,
//	    chunks decoded, points that skipped decoding — all varints)
//	    for the aggregate, then one per shard
//	5 — OpStats appends a read-amplification/compaction extension after
//	    the pruning blocks: one block (bytes read, blocks decoded,
//	    blocks skipped, blocks answered from statistics, compaction
//	    passes, compaction bytes read, max single-pass bytes,
//	    partitions dropped, partitions active — all varints) for the
//	    aggregate, then one per shard
//	6 — OpStats appends a label-index extension after the
//	    read-amplification blocks: one block (series count, label
//	    pairs, postings entries, matcher resolutions, selector
//	    queries, fan-out series, max fan-out width — all varints) for
//	    the aggregate, then one per shard (per-shard blocks are zeros:
//	    the inverted series index is store-level)
//	7 — tagged frames: when BOTH peers announce version >= 7 in the
//	    handshake, every frame after the hello exchange carries a
//	    4-byte little-endian tag between the kind byte and the
//	    payload:
//
//	    request:  uint32 length | byte opcode | uint32 tag | payload
//	    response: uint32 length | byte status | uint32 tag | payload
//
//	    The tag is chosen by the client and echoed by the server, so
//	    many requests can be pipelined on one connection and answered
//	    out of order. A mixed-version pair (either side <= 6) keeps
//	    the untagged framing and one-in-flight semantics — the
//	    handshake itself is always untagged. Version 7 also adds
//	    response status 2 ("overloaded"): the server's bounded
//	    dispatch queue was full, the request was NOT executed, and
//	    the payload carries a uvarint retry-after hint in
//	    milliseconds. Finally, OpStats appends an ingest-front-end
//	    extension after the label-index blocks: one block (queue
//	    capacity, queue depth, workers, ops enqueued, ops rejected,
//	    pipelined connections, legacy connections — all varints) for
//	    the aggregate, then one per shard (per-shard blocks are
//	    zeros: the dispatch queue is server-level).
//	8 — OpStats appends an adaptive-sort extension after the ingest
//	    blocks: one block (enabled flag, sketch-seeded flushes, search
//	    iterations saved, fixed-L sorts, seeded sorts, flat routes,
//	    interface routes, min chosen L, max chosen L — all varints)
//	    for the aggregate, then one per shard. Framing is unchanged:
//	    tagged frames still require only min(client, server) >= 7.
//
// Extensions are strictly trailing, so a newer client reads an older
// payload by what remains: the per-shard, durability, pruning,
// read-amplification, label-index, ingest and adaptive-sort
// extensions are each detected by remaining payload bytes.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/engine"
)

// Opcodes.
const (
	OpInsert byte = 1 // sensor, n, n*(varint delta-less time, float64)
	OpQuery  byte = 2 // sensor, minT, maxT -> n, n*(time, value)
	OpLatest byte = 3 // sensor -> bool, time
	OpStats  byte = 4 // -> stats block [+ uvarint shard count, shard stats blocks]
	OpFlush  byte = 5 // force flush
	OpWait   byte = 6 // wait for in-flight background flushes
	OpAgg    byte = 7 // sensor, startT, endT, window, agg -> windows
	OpHello  byte = 8 // magic, version -> magic, server version
)

// ProtocolVersion is the version byte this build speaks. Bump it when
// the wire format changes shape; the handshake surfaces the mismatch.
const ProtocolVersion = 8

// Response status bytes. Versions <= 6 know only OK and Error;
// StatusOverloaded is only ever sent on a version-7 tagged connection
// (legacy connections dispatch inline and cannot overload the queue).
const (
	StatusOK         byte = 0
	StatusError      byte = 1
	StatusOverloaded byte = 2
)

// pipelineVersion is the first protocol version speaking tagged
// frames; a connection runs tagged iff min(client, server) >= this.
const pipelineVersion = 7

// protocolMagic opens every handshake payload. Four printable bytes so
// an accidental connection from an unrelated protocol is rejected with
// a clear error rather than a frame-length explosion.
var protocolMagic = [4]byte{'G', 'T', 'S', 'D'}

// MaxFrame bounds a frame to keep a malformed peer from forcing a
// giant allocation. 16 MiB fits > one million points per batch.
const MaxFrame = 16 << 20

// ErrRemote wraps an error string returned by the server.
var ErrRemote = errors.New("rpc: remote error")

// ErrOverloaded is the sentinel behind every overload rejection: the
// server's bounded dispatch queue was full and the request was NOT
// executed, so retrying is always safe (including writes). Check with
// errors.Is; errors.As against *OverloadedError recovers the server's
// retry-after hint.
var ErrOverloaded = errors.New("rpc: server overloaded")

// OverloadedError carries the server's retry-after hint alongside the
// ErrOverloaded sentinel.
type OverloadedError struct {
	// RetryAfter is the server's estimate of when queue capacity is
	// likely back — a hint, not a guarantee.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("rpc: server overloaded; retry after %v", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("rpc: frame too large: %d", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its kind byte and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("rpc: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// writeTaggedFrame sends one version-7 tagged frame: kind byte, then a
// 4-byte little-endian tag, then the payload.
func writeTaggedFrame(w io.Writer, kind byte, tag uint32, payload []byte) error {
	if len(payload)+5 > MaxFrame {
		return fmt.Errorf("rpc: frame too large: %d", len(payload))
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+5))
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], tag)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// appendTaggedFrame encodes the same wire bytes as writeTaggedFrame
// into b, for senders that batch frames before one Write.
func appendTaggedFrame(b []byte, kind byte, tag uint32, payload []byte) ([]byte, error) {
	if len(payload)+5 > MaxFrame {
		return b, fmt.Errorf("rpc: frame too large: %d", len(payload))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)+5))
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint32(b, tag)
	return append(b, payload...), nil
}

// readTaggedFrame reads one tagged frame, returning its kind byte, tag
// and payload.
func readTaggedFrame(r io.Reader) (byte, uint32, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 5 || n > MaxFrame {
		return 0, 0, nil, fmt.Errorf("rpc: invalid tagged frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, err
	}
	return buf[0], binary.LittleEndian.Uint32(buf[1:5]), buf[5:], nil
}

// encodeOverloadPayload/decodeOverloadPayload carry the retry-after
// hint of a StatusOverloaded response as uvarint milliseconds.
func encodeOverloadPayload(hint time.Duration) []byte {
	ms := hint.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return binary.AppendUvarint(nil, uint64(ms))
}

func decodeOverloadPayload(payload []byte) *OverloadedError {
	p := &payloadReader{b: payload}
	ms, err := p.uvarint()
	if err != nil || ms == 0 {
		ms = 50 // malformed hint: fall back to a sane default
	}
	return &OverloadedError{RetryAfter: time.Duration(ms) * time.Millisecond}
}

// Payload encoding helpers.

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat64(b []byte, f float64) []byte {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], math.Float64bits(f))
	return append(b, v[:]...)
}

// payloadReader decodes the helpers above.
type payloadReader struct {
	b   []byte
	pos int
}

func (p *payloadReader) ReadByte() (byte, error) {
	if p.pos >= len(p.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := p.b[p.pos]
	p.pos++
	return c, nil
}

func (p *payloadReader) varint() (int64, error)   { return binary.ReadVarint(p) }
func (p *payloadReader) uvarint() (uint64, error) { return binary.ReadUvarint(p) }

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if p.pos+int(n) > len(p.b) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(p.b[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s, nil
}

func (p *payloadReader) float64() (float64, error) {
	if p.pos+8 > len(p.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.pos:]))
	p.pos += 8
	return v, nil
}

// remaining reports how many undecoded payload bytes are left.
func (p *payloadReader) remaining() int { return len(p.b) - p.pos }

// appendStats encodes one engine stats snapshot. The field order is
// the version-1 OpStats payload and must never change — version-2
// payloads repeat the same block per shard after the aggregate.
func appendStats(b []byte, st engine.Stats) []byte {
	b = binary.AppendVarint(b, int64(st.FlushCount))
	b = appendFloat64(b, st.AvgFlushMillis)
	b = appendFloat64(b, st.AvgSortMillis)
	b = binary.AppendVarint(b, st.SeqPoints)
	b = binary.AppendVarint(b, st.UnseqPoints)
	b = binary.AppendVarint(b, int64(st.Files))
	b = binary.AppendVarint(b, int64(st.MemTablePoints))
	b = binary.AppendVarint(b, int64(st.FlushWorkers))
	b = binary.AppendVarint(b, st.SortsSkipped)
	b = binary.AppendVarint(b, st.LockWaits)
	b = binary.AppendVarint(b, st.QueriesBlocked)
	b = appendFloat64(b, st.AvgEncodeMillis)
	b = appendFloat64(b, st.AvgWriteMillis)
	b = appendFloat64(b, st.AvgLockWaitMicros)
	b = appendFloat64(b, st.MaxLockWaitMicros)
	b = appendFloat64(b, st.P99LockWaitMicros)
	b = binary.AppendVarint(b, st.FlatSorts)
	b = binary.AppendVarint(b, st.InterfaceSorts)
	b = appendFloat64(b, st.FlatSortMillis)
	b = appendFloat64(b, st.InterfaceSortMillis)
	b = binary.AppendVarint(b, int64(st.SortParallelism))
	b = binary.AppendVarint(b, int64(st.FlatSortThreshold))
	return b
}

// stats decodes one engine stats block (the inverse of appendStats).
func (p *payloadReader) stats() (engine.Stats, error) {
	var st engine.Stats
	for _, dst := range []*int{&st.FlushCount} {
		v, err := p.varint()
		if err != nil {
			return st, err
		}
		*dst = int(v)
	}
	var err error
	if st.AvgFlushMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.AvgSortMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.SeqPoints, err = p.varint(); err != nil {
		return st, err
	}
	if st.UnseqPoints, err = p.varint(); err != nil {
		return st, err
	}
	for _, dst := range []*int{&st.Files, &st.MemTablePoints, &st.FlushWorkers} {
		v, err := p.varint()
		if err != nil {
			return st, err
		}
		*dst = int(v)
	}
	if st.SortsSkipped, err = p.varint(); err != nil {
		return st, err
	}
	if st.LockWaits, err = p.varint(); err != nil {
		return st, err
	}
	if st.QueriesBlocked, err = p.varint(); err != nil {
		return st, err
	}
	for _, dst := range []*float64{
		&st.AvgEncodeMillis, &st.AvgWriteMillis,
		&st.AvgLockWaitMicros, &st.MaxLockWaitMicros, &st.P99LockWaitMicros,
	} {
		if *dst, err = p.float64(); err != nil {
			return st, err
		}
	}
	if st.FlatSorts, err = p.varint(); err != nil {
		return st, err
	}
	if st.InterfaceSorts, err = p.varint(); err != nil {
		return st, err
	}
	if st.FlatSortMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.InterfaceSortMillis, err = p.float64(); err != nil {
		return st, err
	}
	for _, dst := range []*int{&st.SortParallelism, &st.FlatSortThreshold} {
		v, err := p.varint()
		if err != nil {
			return st, err
		}
		*dst = int(v)
	}
	return st, nil
}

// appendDurability encodes the version-3 durability counters for one
// stats snapshot. The block trails the per-shard extension so that
// version-2 clients (which stop reading after the shard blocks) are
// unaffected.
func appendDurability(b []byte, st engine.Stats) []byte {
	b = binary.AppendVarint(b, st.WALSyncs)
	b = binary.AppendVarint(b, st.WALCommits)
	b = binary.AppendVarint(b, int64(st.QuarantinedFiles))
	b = binary.AppendVarint(b, st.RecoveredWALBatches)
	return b
}

// durability decodes one durability block into st (the inverse of
// appendDurability).
func (p *payloadReader) durability(st *engine.Stats) error {
	var err error
	if st.WALSyncs, err = p.varint(); err != nil {
		return err
	}
	if st.WALCommits, err = p.varint(); err != nil {
		return err
	}
	v, err := p.varint()
	if err != nil {
		return err
	}
	st.QuarantinedFiles = int(v)
	st.RecoveredWALBatches, err = p.varint()
	return err
}

// appendPruning encodes the version-4 aggregation-pushdown counters
// for one stats snapshot. The block trails the durability extension so
// older clients, which stop reading earlier, are unaffected.
func appendPruning(b []byte, st engine.Stats) []byte {
	b = binary.AppendVarint(b, st.ChunksFromStats)
	b = binary.AppendVarint(b, st.ChunksDecoded)
	b = binary.AppendVarint(b, st.PointsSkipped)
	return b
}

// pruning decodes one pruning block into st (the inverse of
// appendPruning).
func (p *payloadReader) pruning(st *engine.Stats) error {
	var err error
	if st.ChunksFromStats, err = p.varint(); err != nil {
		return err
	}
	if st.ChunksDecoded, err = p.varint(); err != nil {
		return err
	}
	st.PointsSkipped, err = p.varint()
	return err
}

// appendReadAmp encodes the version-5 read-amplification and
// compaction counters for one stats snapshot. The block trails the
// pruning extension so older clients, which stop reading earlier, are
// unaffected.
func appendReadAmp(b []byte, st engine.Stats) []byte {
	b = binary.AppendVarint(b, st.BytesRead)
	b = binary.AppendVarint(b, st.BlocksDecoded)
	b = binary.AppendVarint(b, st.BlocksSkipped)
	b = binary.AppendVarint(b, st.BlocksFromStats)
	b = binary.AppendVarint(b, st.CompactionPasses)
	b = binary.AppendVarint(b, st.CompactionBytesRead)
	b = binary.AppendVarint(b, st.MaxCompactionPassBytes)
	b = binary.AppendVarint(b, st.PartitionsDropped)
	b = binary.AppendVarint(b, int64(st.PartitionsActive))
	return b
}

// appendIndexStats encodes the version-6 label-index counters for one
// stats snapshot. The block trails the read-amplification extension so
// older clients, which stop reading earlier, are unaffected.
func appendIndexStats(b []byte, st engine.Stats) []byte {
	b = binary.AppendVarint(b, int64(st.SeriesCount))
	b = binary.AppendVarint(b, int64(st.LabelPairs))
	b = binary.AppendVarint(b, st.PostingsEntries)
	b = binary.AppendVarint(b, st.MatcherResolutions)
	b = binary.AppendVarint(b, st.SelectorQueries)
	b = binary.AppendVarint(b, st.FanoutSeries)
	b = binary.AppendVarint(b, int64(st.MaxFanoutWidth))
	return b
}

// indexStats decodes one label-index block into st (the inverse of
// appendIndexStats).
func (p *payloadReader) indexStats(st *engine.Stats) error {
	v, err := p.varint()
	if err != nil {
		return err
	}
	st.SeriesCount = int(v)
	if v, err = p.varint(); err != nil {
		return err
	}
	st.LabelPairs = int(v)
	if st.PostingsEntries, err = p.varint(); err != nil {
		return err
	}
	if st.MatcherResolutions, err = p.varint(); err != nil {
		return err
	}
	if st.SelectorQueries, err = p.varint(); err != nil {
		return err
	}
	if st.FanoutSeries, err = p.varint(); err != nil {
		return err
	}
	if v, err = p.varint(); err != nil {
		return err
	}
	st.MaxFanoutWidth = int(v)
	return nil
}

// appendIngestStats encodes the version-7 ingest-front-end counters
// for one stats snapshot. The block trails the label-index extension
// so older clients, which stop reading earlier, are unaffected.
func appendIngestStats(b []byte, st engine.Stats) []byte {
	b = binary.AppendVarint(b, int64(st.IngestQueueCap))
	b = binary.AppendVarint(b, int64(st.IngestQueueDepth))
	b = binary.AppendVarint(b, int64(st.IngestWorkers))
	b = binary.AppendVarint(b, st.IngestEnqueued)
	b = binary.AppendVarint(b, st.IngestRejected)
	b = binary.AppendVarint(b, st.PipelinedConns)
	b = binary.AppendVarint(b, st.LegacyConns)
	return b
}

// appendAdaptiveStats encodes the version-8 adaptive-sort counters for
// one stats snapshot. The block trails the ingest extension so older
// clients, which stop reading earlier, are unaffected.
func appendAdaptiveStats(b []byte, st engine.Stats) []byte {
	var enabled int64
	if st.AdaptiveSortEnabled {
		enabled = 1
	}
	b = binary.AppendVarint(b, enabled)
	b = binary.AppendVarint(b, st.SketchSeededFlushes)
	b = binary.AppendVarint(b, st.SearchItersSaved)
	b = binary.AppendVarint(b, st.AdaptiveFixedSorts)
	b = binary.AppendVarint(b, st.AdaptiveSeededSorts)
	b = binary.AppendVarint(b, st.AdaptiveFlatRoutes)
	b = binary.AppendVarint(b, st.AdaptiveIfaceRoutes)
	b = binary.AppendVarint(b, st.AdaptiveMinL)
	b = binary.AppendVarint(b, st.AdaptiveMaxL)
	return b
}

// adaptiveStats decodes one adaptive-sort block into st (the inverse
// of appendAdaptiveStats).
func (p *payloadReader) adaptiveStats(st *engine.Stats) error {
	enabled, err := p.varint()
	if err != nil {
		return err
	}
	st.AdaptiveSortEnabled = enabled != 0
	for _, dst := range []*int64{
		&st.SketchSeededFlushes, &st.SearchItersSaved,
		&st.AdaptiveFixedSorts, &st.AdaptiveSeededSorts,
		&st.AdaptiveFlatRoutes, &st.AdaptiveIfaceRoutes,
		&st.AdaptiveMinL, &st.AdaptiveMaxL,
	} {
		if *dst, err = p.varint(); err != nil {
			return err
		}
	}
	return nil
}

// ingestStats decodes one ingest-front-end block into st (the inverse
// of appendIngestStats).
func (p *payloadReader) ingestStats(st *engine.Stats) error {
	for _, dst := range []*int{&st.IngestQueueCap, &st.IngestQueueDepth, &st.IngestWorkers} {
		v, err := p.varint()
		if err != nil {
			return err
		}
		*dst = int(v)
	}
	var err error
	if st.IngestEnqueued, err = p.varint(); err != nil {
		return err
	}
	if st.IngestRejected, err = p.varint(); err != nil {
		return err
	}
	if st.PipelinedConns, err = p.varint(); err != nil {
		return err
	}
	st.LegacyConns, err = p.varint()
	return err
}

// readAmp decodes one read-amplification block into st (the inverse
// of appendReadAmp).
func (p *payloadReader) readAmp(st *engine.Stats) error {
	for _, dst := range []*int64{
		&st.BytesRead, &st.BlocksDecoded, &st.BlocksSkipped, &st.BlocksFromStats,
		&st.CompactionPasses, &st.CompactionBytesRead, &st.MaxCompactionPassBytes,
		&st.PartitionsDropped,
	} {
		var err error
		if *dst, err = p.varint(); err != nil {
			return err
		}
	}
	v, err := p.varint()
	if err != nil {
		return err
	}
	st.PartitionsActive = int(v)
	return nil
}
