// Package rpc provides the client/server wire layer that lets the
// benchmark drive the storage engine over TCP, the way IoTDB-benchmark
// drives an IoTDB server (Section VI-A2). The protocol is a minimal
// length-prefixed binary framing:
//
//	request:  uint32 length | byte opcode | payload
//	response: uint32 length | byte status (0 ok, 1 error) | payload
//
// Payloads use uvarint-prefixed strings, varint timestamps and
// little-endian float64 values. One connection carries one
// request/response exchange at a time; clients open several
// connections for concurrency.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Opcodes.
const (
	OpInsert byte = 1 // sensor, n, n*(varint delta-less time, float64)
	OpQuery  byte = 2 // sensor, minT, maxT -> n, n*(time, value)
	OpLatest byte = 3 // sensor -> bool, time
	OpStats  byte = 4 // -> stats struct
	OpFlush  byte = 5 // force flush
	OpWait   byte = 6 // wait for in-flight background flushes
	OpAgg    byte = 7 // sensor, startT, endT, window, agg -> windows
)

// MaxFrame bounds a frame to keep a malformed peer from forcing a
// giant allocation. 16 MiB fits > one million points per batch.
const MaxFrame = 16 << 20

// ErrRemote wraps an error string returned by the server.
var ErrRemote = errors.New("rpc: remote error")

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("rpc: frame too large: %d", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its kind byte and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("rpc: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Payload encoding helpers.

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat64(b []byte, f float64) []byte {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], math.Float64bits(f))
	return append(b, v[:]...)
}

// payloadReader decodes the helpers above.
type payloadReader struct {
	b   []byte
	pos int
}

func (p *payloadReader) ReadByte() (byte, error) {
	if p.pos >= len(p.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := p.b[p.pos]
	p.pos++
	return c, nil
}

func (p *payloadReader) varint() (int64, error)   { return binary.ReadVarint(p) }
func (p *payloadReader) uvarint() (uint64, error) { return binary.ReadUvarint(p) }

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if p.pos+int(n) > len(p.b) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(p.b[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s, nil
}

func (p *payloadReader) float64() (float64, error) {
	if p.pos+8 > len(p.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.pos:]))
	p.pos += 8
	return v, nil
}
