package rpc

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/shard"
)

// rawDial opens a connection that skips the Client handshake, so tests
// can speak arbitrary first frames at the server.
func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn), bufio.NewWriter(conn)
}

func rawCall(t *testing.T, br *bufio.Reader, bw *bufio.Writer, op byte, payload []byte) (byte, []byte) {
	t.Helper()
	if err := writeFrame(bw, op, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	status, resp, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	return status, resp
}

// TestHandshakeRequiredFirst: a client that opens with any opcode other
// than OpHello (a pre-version-2 client) gets a descriptive error on its
// first exchange, and the server drops the connection.
func TestHandshakeRequiredFirst(t *testing.T) {
	_, addr := startServer(t)
	_, br, bw := rawDial(t, addr)
	status, resp := rawCall(t, br, bw, OpStats, nil)
	if status == 0 {
		t.Fatal("pre-handshake OpStats accepted")
	}
	if !strings.Contains(string(resp), "handshake required") {
		t.Fatalf("error not descriptive: %q", resp)
	}
	// The server hangs up after a failed handshake: the next read sees
	// EOF, not another response.
	if err := writeFrame(bw, OpStats, nil); err == nil {
		bw.Flush()
	}
	if _, _, err := readFrame(br); !errors.Is(err, io.EOF) && err == nil {
		t.Fatal("connection survived a failed handshake")
	}
}

// TestHandshakeBadMagic: a hello carrying the wrong magic (some other
// protocol probing the port) is refused and the connection dropped.
func TestHandshakeBadMagic(t *testing.T) {
	_, addr := startServer(t)
	_, br, bw := rawDial(t, addr)
	status, resp := rawCall(t, br, bw, OpHello, []byte{'H', 'T', 'T', 'P', 1})
	if status == 0 {
		t.Fatal("bad magic accepted")
	}
	if !strings.Contains(string(resp), "magic") {
		t.Fatalf("error not descriptive: %q", resp)
	}
}

// TestHandshakeRejectsShortAndZero: truncated hello payloads and
// version 0 are refused.
func TestHandshakeRejectsShortAndZero(t *testing.T) {
	_, addr := startServer(t)
	for _, payload := range [][]byte{nil, protocolMagic[:3], append(append([]byte(nil), protocolMagic[:]...), 0)} {
		_, br, bw := rawDial(t, addr)
		if status, _ := rawCall(t, br, bw, OpHello, payload); status == 0 {
			t.Fatalf("hello payload %v accepted", payload)
		}
	}
}

// TestHandshakeVersionReported: a well-formed hello succeeds and the
// Dial-level client records the server's announced version.
func TestHandshakeVersionReported(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ServerVersion(); v != ProtocolVersion {
		t.Fatalf("server version = %d, want %d", v, ProtocolVersion)
	}
}

// TestShardStatsOverRPC: against a sharded backend, StatsFull carries
// the merged aggregate plus one stats block per shard, and the
// aggregate's counters equal the sum of the per-shard counters.
func TestShardStatsOverRPC(t *testing.T) {
	r, err := shard.Open(shard.Config{ShardCount: 4, Config: engine.Config{
		Dir:          t.TempDir(),
		MemTableSize: 1000,
		SyncFlush:    true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for d := 0; d < 8; d++ {
		sensor := "d" + string(rune('0'+d)) + ".s0"
		if err := c.InsertBatch(sensor, []int64{3, 1, 2}, []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	agg, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("per-shard blocks = %d, want 4", len(per))
	}
	var sum int64
	for _, st := range per {
		sum += st.SeqPoints + st.UnseqPoints
	}
	if agg.SeqPoints+agg.UnseqPoints != sum || sum != 24 {
		t.Fatalf("aggregate %d vs per-shard sum %d (want 24)", agg.SeqPoints+agg.UnseqPoints, sum)
	}
	// The convenience accessor returns the same breakdown.
	per2, err := c.ShardStats()
	if err != nil || len(per2) != 4 {
		t.Fatalf("ShardStats = %d blocks, %v", len(per2), err)
	}
}

// TestUnshardedStatsEmptyBreakdown: a bare-engine server encodes a
// zero-length shard extension; clients see an empty breakdown.
func TestUnshardedStatsEmptyBreakdown(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 0 {
		t.Fatalf("unsharded server reported %d shards", len(per))
	}
}

// TestLegacyStatsShapeParsed: a version-1 server's OpStats payload ends
// after the aggregate block (no shard extension). The client must parse
// it as aggregate-only rather than erroring on the missing extension.
// Simulated with a hand-rolled server speaking the old shape.
func TestLegacyStatsShapeParsed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	want := engine.Stats{FlushCount: 7, SeqPoints: 123, UnseqPoints: 45, Files: 2, FlushWorkers: 1}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		for {
			op, _, err := readFrame(br)
			if err != nil {
				return
			}
			var resp []byte
			switch op {
			case OpHello:
				// Answer hello normally so Dial succeeds; only the stats
				// payload is legacy-shaped.
				resp = append(append([]byte(nil), protocolMagic[:]...), 1)
			case OpStats:
				resp = appendStats(nil, want) // v1: no shard extension
			}
			if writeFrame(bw, 0, resp) != nil || bw.Flush() != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ServerVersion(); v != 1 {
		t.Fatalf("server version = %d, want 1", v)
	}
	st, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if per != nil {
		t.Fatalf("legacy payload produced a shard breakdown: %+v", per)
	}
	if st != want {
		t.Fatalf("legacy stats = %+v, want %+v", st, want)
	}
}

// TestStatsRoundTrip: appendStats/stats are inverses for a fully
// populated Stats value — a new field added to one side but not the
// other shows up here.
func TestStatsRoundTrip(t *testing.T) {
	want := engine.Stats{
		FlushCount: 1, AvgFlushMillis: 2.5, AvgSortMillis: 0.5,
		SeqPoints: 3, UnseqPoints: 4, Files: 5, MemTablePoints: 6,
		FlushWorkers: 7, SortsSkipped: 8, LockWaits: 9, QueriesBlocked: 10,
		AvgEncodeMillis: 1.25, AvgWriteMillis: 0.75, AvgLockWaitMicros: 11.5,
		MaxLockWaitMicros: 12, P99LockWaitMicros: 13,
		FlatSorts: 14, InterfaceSorts: 15, FlatSortMillis: 16.5,
		InterfaceSortMillis: 17.5, SortParallelism: 18, FlatSortThreshold: 19,
	}
	p := &payloadReader{b: appendStats(nil, want)}
	got, err := p.stats()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	if p.remaining() != 0 {
		t.Fatalf("%d trailing bytes after stats block", p.remaining())
	}
}
