package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/shard"
)

// rawDial opens a connection that skips the Client handshake, so tests
// can speak arbitrary first frames at the server.
func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn), bufio.NewWriter(conn)
}

func rawCall(t *testing.T, br *bufio.Reader, bw *bufio.Writer, op byte, payload []byte) (byte, []byte) {
	t.Helper()
	if err := writeFrame(bw, op, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	status, resp, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	return status, resp
}

// TestHandshakeRequiredFirst: a client that opens with any opcode other
// than OpHello (a pre-version-2 client) gets a descriptive error on its
// first exchange, and the server drops the connection.
func TestHandshakeRequiredFirst(t *testing.T) {
	_, addr := startServer(t)
	_, br, bw := rawDial(t, addr)
	status, resp := rawCall(t, br, bw, OpStats, nil)
	if status == 0 {
		t.Fatal("pre-handshake OpStats accepted")
	}
	if !strings.Contains(string(resp), "handshake required") {
		t.Fatalf("error not descriptive: %q", resp)
	}
	// The server hangs up after a failed handshake: the next read sees
	// EOF, not another response.
	if err := writeFrame(bw, OpStats, nil); err == nil {
		bw.Flush()
	}
	if _, _, err := readFrame(br); !errors.Is(err, io.EOF) && err == nil {
		t.Fatal("connection survived a failed handshake")
	}
}

// TestHandshakeBadMagic: a hello carrying the wrong magic (some other
// protocol probing the port) is refused and the connection dropped.
func TestHandshakeBadMagic(t *testing.T) {
	_, addr := startServer(t)
	_, br, bw := rawDial(t, addr)
	status, resp := rawCall(t, br, bw, OpHello, []byte{'H', 'T', 'T', 'P', 1})
	if status == 0 {
		t.Fatal("bad magic accepted")
	}
	if !strings.Contains(string(resp), "magic") {
		t.Fatalf("error not descriptive: %q", resp)
	}
}

// TestHandshakeRejectsShortAndZero: truncated hello payloads and
// version 0 are refused.
func TestHandshakeRejectsShortAndZero(t *testing.T) {
	_, addr := startServer(t)
	for _, payload := range [][]byte{nil, protocolMagic[:3], append(append([]byte(nil), protocolMagic[:]...), 0)} {
		_, br, bw := rawDial(t, addr)
		if status, _ := rawCall(t, br, bw, OpHello, payload); status == 0 {
			t.Fatalf("hello payload %v accepted", payload)
		}
	}
}

// TestHandshakeVersionReported: a well-formed hello succeeds and the
// Dial-level client records the server's announced version.
func TestHandshakeVersionReported(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ServerVersion(); v != ProtocolVersion {
		t.Fatalf("server version = %d, want %d", v, ProtocolVersion)
	}
}

// TestShardStatsOverRPC: against a sharded backend, StatsFull carries
// the merged aggregate plus one stats block per shard, and the
// aggregate's counters equal the sum of the per-shard counters.
func TestShardStatsOverRPC(t *testing.T) {
	r, err := shard.Open(shard.Config{ShardCount: 4, Config: engine.Config{
		Dir:          t.TempDir(),
		MemTableSize: 1000,
		SyncFlush:    true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for d := 0; d < 8; d++ {
		sensor := "d" + string(rune('0'+d)) + ".s0"
		if err := c.InsertBatch(sensor, []int64{3, 1, 2}, []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	agg, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("per-shard blocks = %d, want 4", len(per))
	}
	var sum int64
	for _, st := range per {
		sum += st.SeqPoints + st.UnseqPoints
	}
	if agg.SeqPoints+agg.UnseqPoints != sum || sum != 24 {
		t.Fatalf("aggregate %d vs per-shard sum %d (want 24)", agg.SeqPoints+agg.UnseqPoints, sum)
	}
	// The convenience accessor returns the same breakdown.
	per2, err := c.ShardStats()
	if err != nil || len(per2) != 4 {
		t.Fatalf("ShardStats = %d blocks, %v", len(per2), err)
	}
}

// TestUnshardedStatsEmptyBreakdown: a bare-engine server encodes a
// zero-length shard extension; clients see an empty breakdown.
func TestUnshardedStatsEmptyBreakdown(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 0 {
		t.Fatalf("unsharded server reported %d shards", len(per))
	}
}

// TestLegacyStatsShapeParsed: a version-1 server's OpStats payload ends
// after the aggregate block (no shard extension). The client must parse
// it as aggregate-only rather than erroring on the missing extension.
// Simulated with a hand-rolled server speaking the old shape.
func TestLegacyStatsShapeParsed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	want := engine.Stats{FlushCount: 7, SeqPoints: 123, UnseqPoints: 45, Files: 2, FlushWorkers: 1}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		for {
			op, _, err := readFrame(br)
			if err != nil {
				return
			}
			var resp []byte
			switch op {
			case OpHello:
				// Answer hello normally so Dial succeeds; only the stats
				// payload is legacy-shaped.
				resp = append(append([]byte(nil), protocolMagic[:]...), 1)
			case OpStats:
				resp = appendStats(nil, want) // v1: no shard extension
			}
			if writeFrame(bw, 0, resp) != nil || bw.Flush() != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ServerVersion(); v != 1 {
		t.Fatalf("server version = %d, want 1", v)
	}
	st, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if per != nil {
		t.Fatalf("legacy payload produced a shard breakdown: %+v", per)
	}
	if st != want {
		t.Fatalf("legacy stats = %+v, want %+v", st, want)
	}
}

// legacyRawClient speaks the version <= 6 wire format by hand: an
// untagged hello announcing the given version, then untagged
// request/response exchanges. It stands in for an old client binary
// when testing a new server.
type legacyRawClient struct {
	t  *testing.T
	br *bufio.Reader
	bw *bufio.Writer
}

func dialLegacyRaw(t *testing.T, addr string, version byte) (*legacyRawClient, byte) {
	t.Helper()
	_, br, bw := rawDial(t, addr)
	lc := &legacyRawClient{t: t, br: br, bw: bw}
	hello := append(append([]byte(nil), protocolMagic[:]...), version)
	status, resp := rawCall(t, br, bw, OpHello, hello)
	if status != StatusOK {
		t.Fatalf("legacy hello refused: %s", resp)
	}
	if len(resp) < 5 || string(resp[:4]) != string(protocolMagic[:]) {
		t.Fatalf("malformed hello reply: %v", resp)
	}
	return lc, resp[4]
}

func (lc *legacyRawClient) call(op byte, payload []byte) (byte, []byte) {
	lc.t.Helper()
	return rawCall(lc.t, lc.br, lc.bw, op, payload)
}

// TestV6ClientAgainstV7Server drives every op type through a
// hand-rolled version-6 client against the current server: the server
// must degrade that connection to untagged one-in-flight framing, so
// deployed old binaries keep working against an upgraded server.
func TestV6ClientAgainstV7Server(t *testing.T) {
	_, addr := startServer(t)
	lc, serverVersion := dialLegacyRaw(t, addr, 6)
	if serverVersion != ProtocolVersion {
		t.Fatalf("server announced version %d, want %d", serverVersion, ProtocolVersion)
	}

	// OpInsert
	ins := appendString(nil, "s")
	ins = binary.AppendUvarint(ins, 3)
	for i, tt := range []int64{10, 20, 30} {
		ins = binary.AppendVarint(ins, tt)
		ins = appendFloat64(ins, float64(i))
	}
	if status, resp := lc.call(OpInsert, ins); status != StatusOK {
		t.Fatalf("legacy insert failed: %s", resp)
	}
	// OpFlush, OpWait
	if status, resp := lc.call(OpFlush, nil); status != StatusOK {
		t.Fatalf("legacy flush failed: %s", resp)
	}
	if status, resp := lc.call(OpWait, nil); status != StatusOK {
		t.Fatalf("legacy wait failed: %s", resp)
	}
	// OpQuery
	qp := appendString(nil, "s")
	qp = binary.AppendVarint(qp, 0)
	qp = binary.AppendVarint(qp, 100)
	status, resp := lc.call(OpQuery, qp)
	if status != StatusOK {
		t.Fatalf("legacy query failed: %s", resp)
	}
	p := &payloadReader{b: resp}
	if n, err := p.uvarint(); err != nil || n != 3 {
		t.Fatalf("legacy query returned %d points (%v), want 3", n, err)
	}
	// OpLatest
	status, resp = lc.call(OpLatest, appendString(nil, "s"))
	if status != StatusOK {
		t.Fatalf("legacy latest failed: %s", resp)
	}
	if len(resp) < 1 || resp[0] != 1 {
		t.Fatalf("legacy latest found nothing: %v", resp)
	}
	// OpAgg: avg over [0, 40) window 40 -> one window, value 1.
	ap := appendString(nil, "s")
	for _, v := range []int64{0, 40, 40, int64(query.Avg)} {
		ap = binary.AppendVarint(ap, v)
	}
	status, resp = lc.call(OpAgg, ap)
	if status != StatusOK {
		t.Fatalf("legacy agg failed: %s", resp)
	}
	p = &payloadReader{b: resp}
	if n, err := p.uvarint(); err != nil || n != 1 {
		t.Fatalf("legacy agg returned %d windows (%v), want 1", n, err)
	}
	// OpStats: the v7 payload shape decodes with the current reader and
	// carries the ingest extension even over a legacy connection.
	status, resp = lc.call(OpStats, nil)
	if status != StatusOK {
		t.Fatalf("legacy stats failed: %s", resp)
	}
	p = &payloadReader{b: resp}
	st, err := p.stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SeqPoints+st.UnseqPoints != 3 {
		t.Fatalf("stats points = %d, want 3", st.SeqPoints+st.UnseqPoints)
	}
}

// v6ServerOver serves the version <= 6 wire format over the current
// dispatch logic: untagged frames, announced version 6. It stands in
// for an old server binary when testing the new pipelined client.
func v6ServerOver(t *testing.T, backend Backend) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(backend)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				for {
					op, payload, err := readFrame(br)
					if err != nil {
						return
					}
					var resp []byte
					var derr error
					if op == OpHello {
						resp = append(append([]byte(nil), protocolMagic[:]...), 6)
					} else {
						resp, derr = srv.dispatch(op, payload)
					}
					status := StatusOK
					if derr != nil {
						status, resp = StatusError, []byte(derr.Error())
					}
					if writeFrame(bw, status, resp) != nil || bw.Flush() != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestV7ClientAgainstV6Server drives every client method against a
// version-6 server: the client must fall back to one-in-flight
// untagged exchanges, including for concurrent callers and for
// InsertBatchAsync (which degrades to a synchronous insert).
func TestV7ClientAgainstV6Server(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1000, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	addr := v6ServerOver(t, e)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ServerVersion(); v != 6 {
		t.Fatalf("server version = %d, want 6", v)
	}
	if err := c.InsertBatch("s", []int64{10, 20, 30}, []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if p := c.InsertBatchAsync("s", []int64{40}, []float64{3}); p.Wait() != nil {
		t.Fatalf("async insert on legacy conn: %v", p.Wait())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	pts, err := c.Query("s", 0, 100)
	if err != nil || len(pts) != 4 {
		t.Fatalf("query = %d points, %v; want 4", len(pts), err)
	}
	if n, err := c.QueryCount("s", 0, 100); err != nil || n != 4 {
		t.Fatalf("query count = %d, %v", n, err)
	}
	lt, ok, err := c.Latest("s")
	if err != nil || !ok || lt != 40 {
		t.Fatalf("latest = %d/%v/%v", lt, ok, err)
	}
	ws, err := c.Aggregate("s", 0, 50, 50, query.Avg)
	if err != nil || len(ws) != 1 || ws[0].Count != 4 {
		t.Fatalf("aggregate = %+v, %v", ws, err)
	}
	st, _, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if st.SeqPoints+st.UnseqPoints != 4 {
		t.Fatalf("stats points = %d, want 4", st.SeqPoints+st.UnseqPoints)
	}

	// Concurrent idempotent calls serialize on the legacy exchange
	// instead of corrupting frames.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Query("s", 0, 100); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStatsRoundTrip: appendStats/stats are inverses for a fully
// populated Stats value — a new field added to one side but not the
// other shows up here.
func TestStatsRoundTrip(t *testing.T) {
	want := engine.Stats{
		FlushCount: 1, AvgFlushMillis: 2.5, AvgSortMillis: 0.5,
		SeqPoints: 3, UnseqPoints: 4, Files: 5, MemTablePoints: 6,
		FlushWorkers: 7, SortsSkipped: 8, LockWaits: 9, QueriesBlocked: 10,
		AvgEncodeMillis: 1.25, AvgWriteMillis: 0.75, AvgLockWaitMicros: 11.5,
		MaxLockWaitMicros: 12, P99LockWaitMicros: 13,
		FlatSorts: 14, InterfaceSorts: 15, FlatSortMillis: 16.5,
		InterfaceSortMillis: 17.5, SortParallelism: 18, FlatSortThreshold: 19,
	}
	p := &payloadReader{b: appendStats(nil, want)}
	got, err := p.stats()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	if p.remaining() != 0 {
		t.Fatalf("%d trailing bytes after stats block", p.remaining())
	}
}
