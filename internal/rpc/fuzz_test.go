package rpc

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
)

// TestDispatchSurvivesRandomPayloads throws random bytes at every
// opcode's decoder: the server must reply with errors, never panic.
func TestDispatchSurvivesRandomPayloads(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := NewServer(e)

	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		op := byte(r.Intn(10)) // includes unknown opcodes
		payload := make([]byte, r.Intn(64))
		r.Read(payload)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("dispatch panicked on op %d payload %x: %v", op, payload, p)
				}
			}()
			_, _ = srv.dispatch(op, payload)
		}()
	}
}

// TestDispatchSurvivesTruncatedValidPayloads replays prefixes of a
// valid insert payload — every truncation point must decode cleanly
// into an error.
func TestDispatchSurvivesTruncatedValidPayloads(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := NewServer(e)

	payload := appendString(nil, "sensor")
	payload = append(payload, 2) // n=2
	payload = appendFloat64(appendString(payload[:len(payload)], ""), 0)

	for cut := 0; cut < len(payload); cut++ {
		if _, err := srv.dispatch(OpInsert, payload[:cut]); err == nil && cut < len(payload)-1 {
			// Some prefixes can be coincidentally valid (e.g. n=0);
			// the requirement is only "no panic", checked implicitly.
			continue
		}
	}
}
