package rpc

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/shard"
)

// TestAdaptiveStatsOverRPC checks the version-8 adaptive-sort
// extension round-trips: a sharded backend running with AdaptiveSort
// on reports the planner counters through StatsFull, aggregate and
// per shard.
func TestAdaptiveStatsOverRPC(t *testing.T) {
	r, err := shard.Open(shard.Config{
		Config: engine.Config{
			Dir:          t.TempDir(),
			MemTableSize: 512,
			SyncFlush:    true,
			AdaptiveSort: true,
		},
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Enough out-of-order data on each of several sensors to trip a
	// few flushes per shard.
	for round := 0; round < 8; round++ {
		for _, sensor := range []string{"s0", "s1", "s2", "s3"} {
			ts := make([]int64, 256)
			vs := make([]float64, 256)
			for i := range ts {
				tt := int64(round*256+i) * 10
				if i%2 == 1 {
					tt -= 15
				}
				ts[i] = tt
				vs[i] = float64(i)
			}
			if err := c.InsertBatch(sensor, ts, vs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	agg, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if !agg.AdaptiveSortEnabled {
		t.Fatal("aggregate AdaptiveSortEnabled false over rpc")
	}
	if agg.SketchSeededFlushes == 0 {
		t.Fatalf("no sketch-seeded flushes reported: %+v", agg)
	}
	if agg.AdaptiveFlatRoutes+agg.AdaptiveIfaceRoutes == 0 {
		t.Fatal("no per-sensor routing decisions reported")
	}
	if agg.AdaptiveMinL <= 0 || agg.AdaptiveMaxL < agg.AdaptiveMinL {
		t.Fatalf("chosen-L range [%d, %d] malformed", agg.AdaptiveMinL, agg.AdaptiveMaxL)
	}
	if len(per) != 2 {
		t.Fatalf("per-shard breakdown has %d entries, want 2", len(per))
	}
	var sum int64
	for _, s := range per {
		if !s.AdaptiveSortEnabled {
			t.Fatalf("shard lost the enabled flag: %+v", s)
		}
		sum += s.SketchSeededFlushes
	}
	if sum != agg.SketchSeededFlushes {
		t.Fatalf("per-shard seeded flushes sum %d != aggregate %d", sum, agg.SketchSeededFlushes)
	}
}

// TestStatsFullToleratesV7Payload truncates the adaptive-sort
// extension off a stats payload, as a version-7 server would send it:
// decoding must succeed with the adaptive counters left zero, and a
// full v8 payload must round-trip them exactly.
func TestStatsFullToleratesV7Payload(t *testing.T) {
	var st engine.Stats
	st.FlushCount = 3
	st.AdaptiveSortEnabled = true
	st.SketchSeededFlushes = 11
	st.SearchItersSaved = 42
	st.AdaptiveMinL = 8
	st.AdaptiveMaxL = 4096

	v7 := appendStats(nil, st)
	v7 = appendDurability(v7, st)
	v7 = appendPruning(v7, st)
	v7 = appendReadAmp(v7, st)
	v7 = appendIndexStats(v7, st)
	v7 = appendIngestStats(v7, st)
	// No appendAdaptiveStats: this is the version-7 shape (shard
	// count elided — the decoders below read blocks directly).

	p := &payloadReader{b: v7}
	got, err := p.stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range []func(*engine.Stats) error{
		p.durability, p.pruning, p.readAmp, p.indexStats, p.ingestStats,
	} {
		if err := dec(&got); err != nil {
			t.Fatal(err)
		}
	}
	if p.remaining() != 0 {
		t.Fatalf("v7 payload has %d trailing bytes", p.remaining())
	}
	if got.AdaptiveSortEnabled || got.SketchSeededFlushes != 0 || got.SearchItersSaved != 0 {
		t.Fatalf("adaptive counters must not survive a v7 payload: %+v", got)
	}

	v8 := appendAdaptiveStats(v7, st)
	p = &payloadReader{b: v8}
	got, _ = p.stats()
	p.durability(&got)
	p.pruning(&got)
	p.readAmp(&got)
	p.indexStats(&got)
	p.ingestStats(&got)
	if err := p.adaptiveStats(&got); err != nil {
		t.Fatal(err)
	}
	if !got.AdaptiveSortEnabled || got.SketchSeededFlushes != 11 ||
		got.SearchItersSaved != 42 || got.AdaptiveMinL != 8 || got.AdaptiveMaxL != 4096 {
		t.Fatalf("v8 decode lost adaptive counters: %+v", got)
	}
}
