package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/query"
)

// Client is a connection to a Server. One request runs at a time per
// client; it satisfies bench.Target so benchmark workloads can run
// client-server. Open several clients for concurrency.
type Client struct {
	mu            sync.Mutex
	conn          net.Conn
	br            *bufio.Reader
	bw            *bufio.Writer
	serverVersion byte
}

// Dial connects to a server and performs the protocol handshake. A
// peer that is not a tsdb server, or one whose protocol this client
// cannot speak, fails here with a descriptive error instead of
// misparsing frames later.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// handshake exchanges magic + version with the server once per
// connection.
func (c *Client) handshake() error {
	payload := append([]byte(nil), protocolMagic[:]...)
	payload = append(payload, ProtocolVersion)
	resp, err := c.call(OpHello, payload)
	if err != nil {
		if errors.Is(err, ErrRemote) {
			// A version-1 server answers hello with "unknown opcode".
			return fmt.Errorf("rpc: handshake failed — server predates protocol version %d? (%v)", ProtocolVersion, err)
		}
		return fmt.Errorf("rpc: handshake failed: %w", err)
	}
	if len(resp) < 5 || string(resp[:4]) != string(protocolMagic[:]) {
		return fmt.Errorf("rpc: handshake reply malformed (not a tsdb server?)")
	}
	c.serverVersion = resp[4]
	return nil
}

// ServerVersion reports the protocol version the server announced in
// the handshake.
func (c *Client) ServerVersion() byte { return c.serverVersion }

// call performs one request/response exchange.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, op, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	status, resp, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	if status != 0 {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp)
	}
	return resp, nil
}

// InsertBatch implements bench.Target.
func (c *Client) InsertBatch(sensor string, times []int64, values []float64) error {
	if len(times) != len(values) {
		return fmt.Errorf("rpc: batch shape mismatch")
	}
	payload := appendString(nil, sensor)
	payload = binary.AppendUvarint(payload, uint64(len(times)))
	for i := range times {
		payload = binary.AppendVarint(payload, times[i])
		payload = appendFloat64(payload, values[i])
	}
	_, err := c.call(OpInsert, payload)
	return err
}

// Query returns the records in [minT, maxT] for sensor.
func (c *Client) Query(sensor string, minT, maxT int64) ([]engine.TV, error) {
	payload := appendString(nil, sensor)
	payload = binary.AppendVarint(payload, minT)
	payload = binary.AppendVarint(payload, maxT)
	resp, err := c.call(OpQuery, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/9+1 {
		return nil, fmt.Errorf("rpc: result count %d exceeds frame", n)
	}
	out := make([]engine.TV, n)
	for i := range out {
		if out[i].T, err = p.varint(); err != nil {
			return nil, err
		}
		if out[i].V, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// QueryCount implements bench.Target.
func (c *Client) QueryCount(sensor string, minT, maxT int64) (int, error) {
	out, err := c.Query(sensor, minT, maxT)
	return len(out), err
}

// Latest implements bench.Target.
func (c *Client) Latest(sensor string) (int64, bool, error) {
	resp, err := c.call(OpLatest, appendString(nil, sensor))
	if err != nil {
		return 0, false, err
	}
	p := &payloadReader{b: resp}
	okByte, err := p.ReadByte()
	if err != nil {
		return 0, false, err
	}
	t, err := p.varint()
	if err != nil {
		return 0, false, err
	}
	return t, okByte == 1, nil
}

// Stats implements bench.Target: it returns the server's aggregate
// stats (merged across shards when the server is sharded).
func (c *Client) Stats() (engine.Stats, error) {
	st, _, err := c.StatsFull()
	return st, err
}

// ShardStats returns the server's per-shard stats breakdown, one entry
// per shard in shard order. Empty against an unsharded (or legacy
// version-1) server.
func (c *Client) ShardStats() ([]engine.Stats, error) {
	_, per, err := c.StatsFull()
	return per, err
}

// StatsFull returns the aggregate stats and the per-shard breakdown
// from a single OpStats exchange. A legacy (version-1) stats payload
// carries no per-shard extension; the breakdown is nil then.
func (c *Client) StatsFull() (engine.Stats, []engine.Stats, error) {
	resp, err := c.call(OpStats, nil)
	if err != nil {
		return engine.Stats{}, nil, err
	}
	p := &payloadReader{b: resp}
	st, err := p.stats()
	if err != nil {
		return st, nil, err
	}
	if p.remaining() == 0 {
		return st, nil, nil // legacy stats shape: no shard extension
	}
	n, err := p.uvarint()
	if err != nil {
		return st, nil, err
	}
	// Every stats block is well over 30 bytes; reject counts the frame
	// cannot hold before allocating.
	if n > uint64(p.remaining())/30+1 {
		return st, nil, fmt.Errorf("rpc: shard count %d exceeds frame", n)
	}
	per := make([]engine.Stats, n)
	for i := range per {
		if per[i], err = p.stats(); err != nil {
			return st, nil, err
		}
	}
	return st, per, nil
}

// Flush forces a server-side flush.
func (c *Client) Flush() error {
	_, err := c.call(OpFlush, nil)
	return err
}

// Settle implements bench.Target: waits for the server's in-flight
// background flushes.
func (c *Client) Settle() error {
	_, err := c.call(OpWait, nil)
	return err
}

// Aggregate runs a windowed aggregation server-side:
// SELECT agg(value) GROUP BY window over [startT, endT).
func (c *Client) Aggregate(sensor string, startT, endT, window int64, agg query.Aggregator) ([]query.WindowResult, error) {
	payload := appendString(nil, sensor)
	for _, v := range []int64{startT, endT, window, int64(agg)} {
		payload = binary.AppendVarint(payload, v)
	}
	resp, err := c.call(OpAgg, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/10+1 {
		return nil, fmt.Errorf("rpc: window count %d exceeds frame", n)
	}
	out := make([]query.WindowResult, n)
	for i := range out {
		if out[i].Start, err = p.varint(); err != nil {
			return nil, err
		}
		cnt, err := p.varint()
		if err != nil {
			return nil, err
		}
		out[i].Count = int(cnt)
		if out[i].Value, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
