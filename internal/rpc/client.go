package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/query"
)

// Retry policy for idempotent calls: attempts after the first each
// redial the server, with exponential backoff between them. Overload
// rejections retry on the same (healthy) connection after the
// server's retry-after hint plus jitter.
const (
	retryAttempts    = 4
	retryBaseBackoff = 25 * time.Millisecond
)

var errClientClosed = errors.New("rpc: client closed")

// Client is a connection to a Server. It satisfies bench.Target so
// benchmark workloads can run client-server. Against a version-7 peer
// the connection is pipelined: any number of goroutines may issue
// calls concurrently, each request carries a client-chosen tag, and a
// demultiplexer routes tagged replies back to their callers — so N
// requests overlap on one TCP connection instead of serializing on a
// lock. Against an older peer the client degrades to the classic
// one-request-at-a-time exchange (concurrent callers queue on a
// mutex), so cross-version pairs keep working.
//
// Idempotent calls (Query, Latest, Stats, Aggregate, Flush, Settle)
// transparently redial and retry with exponential backoff when the
// transport fails — e.g. across a server restart or a dropped
// connection. InsertBatch never retries a transport failure: a write
// whose response was lost may have been applied, and re-sending it is
// the caller's call. An overload rejection is different — the server
// refused the request without executing it — so every call, writes
// included, may retry after the server's hint.
type Client struct {
	addr string

	mu            sync.Mutex // guards cc, closed, serverVersion; held across redial (single-flight)
	cc            *clientConn
	closed        bool
	serverVersion byte
}

// callResult is one demuxed reply (or the connection's fatal error).
type callResult struct {
	status  byte
	payload []byte
	err     error
}

func (r callResult) decode() ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	switch r.status {
	case StatusOK:
		return r.payload, nil
	case StatusOverloaded:
		return nil, decodeOverloadPayload(r.payload)
	default:
		return nil, fmt.Errorf("%w: %s", ErrRemote, r.payload)
	}
}

// clientConn is one live connection. In tagged mode a demux goroutine
// owns the read side and a coalescing writer goroutine owns the write
// side; requests register a tag in pend and wait on their channel. In
// legacy mode there are no goroutines and reqMu serializes classic
// write-then-read exchanges.
type clientConn struct {
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer // legacy mode only
	tagged bool

	reqMu sync.Mutex // legacy mode: one exchange at a time

	pendMu  sync.Mutex
	pend    map[uint32]chan callResult
	nextTag uint32
	errv    error // first fatal error; set once under pendMu

	failed   atomic.Bool
	failOnce sync.Once
	stop     chan struct{} // closed by fail(); writer exit signal
	send     chan []byte   // encoded frames for the writer; never closed
}

// Dial connects to a server and performs the protocol handshake. A
// peer that is not a tsdb server, or one whose protocol this client
// cannot speak, fails here with a descriptive error instead of
// misparsing frames later.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.redialLocked(nil); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked replaces the current connection, unless a concurrent
// caller already did: callers pass the conn they saw fail, and if
// c.cc has moved past it the fresh conn is reused instead of dialing
// again. c.mu is held across the dial, so exactly one redial runs at
// a time and a losing racer can never leak a second socket.
func (c *Client) redialLocked(failed *clientConn) (*clientConn, error) {
	if c.closed {
		return nil, errClientClosed
	}
	if c.cc != nil && c.cc != failed && !c.cc.failed.Load() {
		return c.cc, nil // single-flight: someone else already redialed
	}
	if c.cc != nil {
		c.cc.fail(errors.New("rpc: connection replaced"))
		c.cc = nil
	}
	cc, ver, err := dialConn(c.addr)
	if err != nil {
		return nil, err
	}
	c.cc = cc
	c.serverVersion = ver
	return cc, nil
}

// acquire returns the live connection, redialing a broken one.
func (c *Client) acquire() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if c.cc != nil && !c.cc.failed.Load() {
		return c.cc, nil
	}
	return c.redialLocked(c.cc)
}

// current returns the existing connection without ever redialing —
// the write path uses it so a transport failure surfaces instead of
// being papered over by a silent reconnect.
func (c *Client) current() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if c.cc == nil {
		return nil, errors.New("rpc: connection closed")
	}
	return c.cc, nil
}

// dialConn opens a TCP connection, handshakes (always untagged, on
// any version), and — when both ends speak version 7+ — starts the
// demux and writer goroutines that run the tagged connection.
func dialConn(addr string) (*clientConn, byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	hello := append([]byte(nil), protocolMagic[:]...)
	hello = append(hello, ProtocolVersion)
	if err := writeFrame(bw, OpHello, hello); err != nil {
		conn.Close()
		return nil, 0, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, 0, err
	}
	status, resp, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("rpc: handshake failed: %w", err)
	}
	if status != StatusOK {
		conn.Close()
		// A version-1 server answers hello with "unknown opcode".
		return nil, 0, fmt.Errorf("rpc: handshake failed — server predates protocol version %d? (%w: %s)", ProtocolVersion, ErrRemote, resp)
	}
	if len(resp) < 5 || string(resp[:4]) != string(protocolMagic[:]) {
		conn.Close()
		return nil, 0, fmt.Errorf("rpc: handshake reply malformed (not a tsdb server?)")
	}
	ver := resp[4]
	cc := &clientConn{
		conn:    conn,
		br:      br,
		bw:      bw,
		pend:    make(map[uint32]chan callResult),
		nextTag: 1,
		stop:    make(chan struct{}),
		send:    make(chan []byte, 64),
	}
	if min(ver, ProtocolVersion) >= pipelineVersion {
		cc.tagged = true
		go cc.demux()
		go cc.writer()
	}
	return cc, ver, nil
}

// fail shuts the connection down once: every pending call receives
// err, the writer is stopped, and the socket closed. Safe to call
// from any goroutine, any number of times.
func (cc *clientConn) fail(err error) {
	cc.failOnce.Do(func() {
		cc.pendMu.Lock()
		cc.errv = err
		cc.failed.Store(true)
		pend := cc.pend
		cc.pend = nil
		cc.pendMu.Unlock()
		close(cc.stop)
		cc.conn.Close()
		for _, ch := range pend {
			ch <- callResult{err: err}
		}
	})
}

func (cc *clientConn) failErr() error {
	cc.pendMu.Lock()
	defer cc.pendMu.Unlock()
	if cc.errv != nil {
		return cc.errv
	}
	return errors.New("rpc: connection closed")
}

// demux owns the read side of a tagged connection: it routes each
// reply to the caller that registered its tag. A reply for a tag
// nobody registered means the peer broke framing; the connection is
// unusable then.
func (cc *clientConn) demux() {
	for {
		status, tag, payload, err := readTaggedFrame(cc.br)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.pendMu.Lock()
		ch, ok := cc.pend[tag]
		delete(cc.pend, tag)
		cc.pendMu.Unlock()
		if !ok {
			cc.fail(fmt.Errorf("rpc: reply for unknown tag %d", tag))
			return
		}
		ch <- callResult{status: status, payload: payload}
	}
}

// writer owns the write side of a tagged connection. It coalesces:
// after taking one frame it drains whatever else is already queued
// and issues a single Write, so 8 pipelined requests cost one
// syscall, not eight.
func (cc *clientConn) writer() {
	var buf []byte
	for {
		select {
		case frame := <-cc.send:
			buf = append(buf[:0], frame...)
		drain:
			for {
				select {
				case more := <-cc.send:
					buf = append(buf, more...)
				default:
					break drain
				}
			}
			if _, err := cc.conn.Write(buf); err != nil {
				cc.fail(err)
				return
			}
		case <-cc.stop:
			return
		}
	}
}

// start registers a tag and queues the encoded frame, returning the
// channel the reply will arrive on. Tagged connections only.
func (cc *clientConn) start(op byte, payload []byte) (chan callResult, error) {
	ch := make(chan callResult, 1)
	cc.pendMu.Lock()
	if cc.pend == nil { // failed: registering now would strand ch forever
		cc.pendMu.Unlock()
		return nil, cc.failErr()
	}
	tag := cc.nextTag
	cc.nextTag++
	cc.pend[tag] = ch
	cc.pendMu.Unlock()
	frame, err := appendTaggedFrame(nil, op, tag, payload)
	if err != nil {
		cc.forget(tag)
		return nil, err
	}
	select {
	case cc.send <- frame:
		return ch, nil
	case <-cc.stop:
		// fail() has already delivered (or is delivering) to ch.
		return nil, cc.failErr()
	}
}

// forget unregisters a tag whose frame never made it to the wire.
func (cc *clientConn) forget(tag uint32) {
	cc.pendMu.Lock()
	delete(cc.pend, tag)
	cc.pendMu.Unlock()
}

// roundTrip performs one request/response exchange, pipelined or
// legacy depending on the negotiated version.
func (cc *clientConn) roundTrip(op byte, payload []byte) ([]byte, error) {
	if !cc.tagged {
		return cc.legacyExchange(op, payload)
	}
	ch, err := cc.start(op, payload)
	if err != nil {
		return nil, err
	}
	return (<-ch).decode()
}

// legacyExchange is the classic one-in-flight exchange used against
// version <= 6 peers: write a frame, read the next frame as its
// reply, with concurrent callers serialized on reqMu.
func (cc *clientConn) legacyExchange(op byte, payload []byte) ([]byte, error) {
	cc.reqMu.Lock()
	defer cc.reqMu.Unlock()
	if cc.failed.Load() {
		return nil, cc.failErr()
	}
	if err := writeFrame(cc.bw, op, payload); err != nil {
		cc.fail(err)
		return nil, err
	}
	if err := cc.bw.Flush(); err != nil {
		cc.fail(err)
		return nil, err
	}
	status, resp, err := readFrame(cc.br)
	if err != nil {
		cc.fail(err)
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp)
	}
	return resp, nil
}

func (cc *clientConn) close() {
	cc.fail(errClientClosed)
}

// ServerVersion reports the protocol version the server announced in
// the handshake.
func (c *Client) ServerVersion() byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverVersion
}

// overloadBackoff turns an overload rejection into a sleep: the
// server's retry-after hint with jitter in [hint/2, hint], so a herd
// of rejected clients doesn't return in lockstep.
func overloadBackoff(err error) time.Duration {
	hint := 50 * time.Millisecond
	var oe *OverloadedError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		hint = oe.RetryAfter
	}
	half := int64(hint / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// call performs one exchange with no transport retry (used for
// non-idempotent operations). Overload rejections — where the server
// explicitly did not execute the request — retry after the server's
// hint; an actual transport failure surfaces immediately and the
// connection is NOT redialed, so a lost write is never silently
// re-sent.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		cc, err := c.current()
		if err != nil {
			return nil, err
		}
		resp, err := cc.roundTrip(op, payload)
		if err != nil && errors.Is(err, ErrOverloaded) && attempt+1 < retryAttempts {
			time.Sleep(overloadBackoff(err))
			continue
		}
		return resp, err
	}
}

// callIdempotent is call plus a redial-and-retry loop with
// exponential backoff. Transport failures redial; overload
// rejections back off on the same connection; ErrRemote means the
// server received and answered the request, so it is returned as-is.
func (c *Client) callIdempotent(op byte, payload []byte) ([]byte, error) {
	backoff := retryBaseBackoff
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		cc, err := c.acquire()
		if err != nil {
			if errors.Is(err, errClientClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		resp, err := cc.roundTrip(op, payload)
		if err == nil || errors.Is(err, ErrRemote) {
			return resp, err
		}
		if errors.Is(err, ErrOverloaded) {
			lastErr = err
			time.Sleep(overloadBackoff(err))
			backoff = retryBaseBackoff // connection is healthy; don't escalate
			continue
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rpc: %d attempts failed: %w", retryAttempts, lastErr)
}

// encodeInsert builds the OpInsert payload shared by the sync and
// async insert paths.
func encodeInsert(sensor string, times []int64, values []float64) ([]byte, error) {
	if len(times) != len(values) {
		return nil, fmt.Errorf("rpc: batch shape mismatch")
	}
	payload := appendString(nil, sensor)
	payload = binary.AppendUvarint(payload, uint64(len(times)))
	for i := range times {
		payload = binary.AppendVarint(payload, times[i])
		payload = appendFloat64(payload, values[i])
	}
	return payload, nil
}

// InsertBatch implements bench.Target.
func (c *Client) InsertBatch(sensor string, times []int64, values []float64) error {
	payload, err := encodeInsert(sensor, times, values)
	if err != nil {
		return err
	}
	_, err = c.call(OpInsert, payload)
	return err
}

// PendingInsert is an in-flight InsertBatchAsync. Wait blocks until
// the reply arrives and returns the call's error; it must be called
// exactly once, from one goroutine.
type PendingInsert struct {
	ch  chan callResult
	err error // resolved immediately (legacy conn, encode/enqueue failure)
}

// Wait blocks for the server's reply. An overload rejection comes
// back as an *OverloadedError (errors.Is ErrOverloaded) without any
// internal retry, so callers pipelining at depth can count rejects
// and pace themselves.
func (p *PendingInsert) Wait() error {
	if p.ch == nil {
		return p.err
	}
	res := <-p.ch
	p.ch = nil
	_, p.err = res.decode()
	return p.err
}

// InsertBatchAsync issues an insert without waiting for the reply,
// returning a PendingInsert to collect it later. On a pipelined
// (version-7) connection up to the server's in-flight budget of
// inserts can overlap on one connection; on a legacy connection this
// degrades to a synchronous insert that is already resolved when it
// returns.
func (c *Client) InsertBatchAsync(sensor string, times []int64, values []float64) *PendingInsert {
	payload, err := encodeInsert(sensor, times, values)
	if err != nil {
		return &PendingInsert{err: err}
	}
	cc, err := c.current()
	if err != nil {
		return &PendingInsert{err: err}
	}
	if !cc.tagged {
		_, err := cc.legacyExchange(OpInsert, payload)
		return &PendingInsert{err: err}
	}
	ch, err := cc.start(OpInsert, payload)
	if err != nil {
		return &PendingInsert{err: err}
	}
	return &PendingInsert{ch: ch}
}

// Query returns the records in [minT, maxT] for sensor.
func (c *Client) Query(sensor string, minT, maxT int64) ([]engine.TV, error) {
	payload := appendString(nil, sensor)
	payload = binary.AppendVarint(payload, minT)
	payload = binary.AppendVarint(payload, maxT)
	resp, err := c.callIdempotent(OpQuery, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/9+1 {
		return nil, fmt.Errorf("rpc: result count %d exceeds frame", n)
	}
	out := make([]engine.TV, n)
	for i := range out {
		if out[i].T, err = p.varint(); err != nil {
			return nil, err
		}
		if out[i].V, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// QueryCount implements bench.Target.
func (c *Client) QueryCount(sensor string, minT, maxT int64) (int, error) {
	out, err := c.Query(sensor, minT, maxT)
	return len(out), err
}

// Latest implements bench.Target.
func (c *Client) Latest(sensor string) (int64, bool, error) {
	resp, err := c.callIdempotent(OpLatest, appendString(nil, sensor))
	if err != nil {
		return 0, false, err
	}
	p := &payloadReader{b: resp}
	okByte, err := p.ReadByte()
	if err != nil {
		return 0, false, err
	}
	t, err := p.varint()
	if err != nil {
		return 0, false, err
	}
	return t, okByte == 1, nil
}

// Stats implements bench.Target: it returns the server's aggregate
// stats (merged across shards when the server is sharded).
func (c *Client) Stats() (engine.Stats, error) {
	st, _, err := c.StatsFull()
	return st, err
}

// ShardStats returns the server's per-shard stats breakdown, one entry
// per shard in shard order. Empty against an unsharded (or legacy
// version-1) server.
func (c *Client) ShardStats() ([]engine.Stats, error) {
	_, per, err := c.StatsFull()
	return per, err
}

// StatsFull returns the aggregate stats and the per-shard breakdown
// from a single OpStats exchange. A legacy (version-1) stats payload
// carries no per-shard extension (the breakdown is nil then), a
// version-2 payload carries no durability extension (the durability
// counters stay zero), a version-3 payload carries no pruning
// extension, a version-4 payload carries no read-amplification
// extension, a version-5 payload carries no label-index extension,
// and a version-6 payload carries no ingest front-end extension (the
// missing counters stay zero).
func (c *Client) StatsFull() (engine.Stats, []engine.Stats, error) {
	resp, err := c.callIdempotent(OpStats, nil)
	if err != nil {
		return engine.Stats{}, nil, err
	}
	p := &payloadReader{b: resp}
	st, err := p.stats()
	if err != nil {
		return st, nil, err
	}
	if p.remaining() == 0 {
		return st, nil, nil // legacy stats shape: no shard extension
	}
	n, err := p.uvarint()
	if err != nil {
		return st, nil, err
	}
	// Every stats block is well over 30 bytes; reject counts the frame
	// cannot hold before allocating.
	if n > uint64(p.remaining())/30+1 {
		return st, nil, fmt.Errorf("rpc: shard count %d exceeds frame", n)
	}
	per := make([]engine.Stats, n)
	for i := range per {
		if per[i], err = p.stats(); err != nil {
			return st, nil, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-2 payload: no durability extension
	}
	if err := p.durability(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.durability(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-3 payload: no pruning extension
	}
	if err := p.pruning(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.pruning(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-4 payload: no read-amp extension
	}
	if err := p.readAmp(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.readAmp(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-5 payload: no label-index extension
	}
	if err := p.indexStats(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.indexStats(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-6 payload: no ingest extension
	}
	if err := p.ingestStats(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.ingestStats(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-7 payload: no adaptive-sort extension
	}
	if err := p.adaptiveStats(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.adaptiveStats(&per[i]); err != nil {
			return st, per, err
		}
	}
	return st, per, nil
}

// Flush forces a server-side flush.
func (c *Client) Flush() error {
	_, err := c.callIdempotent(OpFlush, nil)
	return err
}

// Settle implements bench.Target: waits for the server's in-flight
// background flushes.
func (c *Client) Settle() error {
	_, err := c.callIdempotent(OpWait, nil)
	return err
}

// Aggregate runs a windowed aggregation server-side:
// SELECT agg(value) GROUP BY window over [startT, endT).
func (c *Client) Aggregate(sensor string, startT, endT, window int64, agg query.Aggregator) ([]query.WindowResult, error) {
	payload := appendString(nil, sensor)
	for _, v := range []int64{startT, endT, window, int64(agg)} {
		payload = binary.AppendVarint(payload, v)
	}
	resp, err := c.callIdempotent(OpAgg, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/10+1 {
		return nil, fmt.Errorf("rpc: window count %d exceeds frame", n)
	}
	out := make([]query.WindowResult, n)
	for i := range out {
		if out[i].Start, err = p.varint(); err != nil {
			return nil, err
		}
		cnt, err := p.varint()
		if err != nil {
			return nil, err
		}
		out[i].Count = int(cnt)
		if out[i].Value, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close closes the connection. Pending pipelined calls fail; further
// calls fail without redialing.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cc == nil {
		return nil
	}
	c.cc.close()
	c.cc = nil
	return nil
}
