package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/query"
)

// Retry policy for idempotent calls: attempts after the first each
// redial the server, with exponential backoff between them.
const (
	retryAttempts    = 4
	retryBaseBackoff = 25 * time.Millisecond
)

// Client is a connection to a Server. One request runs at a time per
// client; it satisfies bench.Target so benchmark workloads can run
// client-server. Open several clients for concurrency.
//
// Idempotent calls (Query, Latest, Stats, Aggregate, Flush, Settle)
// transparently redial and retry with exponential backoff when the
// transport fails — e.g. across a server restart or a dropped
// connection. InsertBatch never retries: a write whose response was
// lost may have been applied, and re-sending it is the caller's call.
type Client struct {
	addr          string
	mu            sync.Mutex
	conn          net.Conn
	br            *bufio.Reader
	bw            *bufio.Writer
	closed        bool
	serverVersion byte
}

// Dial connects to a server and performs the protocol handshake. A
// peer that is not a tsdb server, or one whose protocol this client
// cannot speak, fails here with a descriptive error instead of
// misparsing frames later.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the connection and handshakes. The
// caller holds c.mu (or, during Dial, is the sole owner).
func (c *Client) redialLocked() error {
	if c.closed {
		return fmt.Errorf("rpc: client closed")
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 1<<16)
	c.bw = bufio.NewWriterSize(conn, 1<<16)
	if err := c.handshakeLocked(); err != nil {
		conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// handshakeLocked exchanges magic + version with the server once per
// connection.
func (c *Client) handshakeLocked() error {
	payload := append([]byte(nil), protocolMagic[:]...)
	payload = append(payload, ProtocolVersion)
	resp, err := c.exchangeLocked(OpHello, payload)
	if err != nil {
		if errors.Is(err, ErrRemote) {
			// A version-1 server answers hello with "unknown opcode".
			return fmt.Errorf("rpc: handshake failed — server predates protocol version %d? (%v)", ProtocolVersion, err)
		}
		return fmt.Errorf("rpc: handshake failed: %w", err)
	}
	if len(resp) < 5 || string(resp[:4]) != string(protocolMagic[:]) {
		return fmt.Errorf("rpc: handshake reply malformed (not a tsdb server?)")
	}
	c.serverVersion = resp[4]
	return nil
}

// ServerVersion reports the protocol version the server announced in
// the handshake.
func (c *Client) ServerVersion() byte { return c.serverVersion }

// exchangeLocked performs one request/response exchange; c.mu held.
func (c *Client) exchangeLocked(op byte, payload []byte) ([]byte, error) {
	if c.conn == nil {
		return nil, fmt.Errorf("rpc: connection closed")
	}
	if err := writeFrame(c.bw, op, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	status, resp, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	if status != 0 {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp)
	}
	return resp, nil
}

// call performs one request/response exchange with no retry (used for
// non-idempotent operations).
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exchangeLocked(op, payload)
}

// callIdempotent is call plus a redial-and-retry loop with exponential
// backoff. Only transport failures retry; ErrRemote means the server
// received and answered the request, so it is returned as-is.
func (c *Client) callIdempotent(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	backoff := retryBaseBackoff
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if c.closed {
			return nil, fmt.Errorf("rpc: client closed")
		}
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if err := c.redialLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err := c.exchangeLocked(op, payload)
		if err == nil || errors.Is(err, ErrRemote) {
			return resp, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rpc: %d attempts failed: %w", retryAttempts, lastErr)
}

// InsertBatch implements bench.Target.
func (c *Client) InsertBatch(sensor string, times []int64, values []float64) error {
	if len(times) != len(values) {
		return fmt.Errorf("rpc: batch shape mismatch")
	}
	payload := appendString(nil, sensor)
	payload = binary.AppendUvarint(payload, uint64(len(times)))
	for i := range times {
		payload = binary.AppendVarint(payload, times[i])
		payload = appendFloat64(payload, values[i])
	}
	_, err := c.call(OpInsert, payload)
	return err
}

// Query returns the records in [minT, maxT] for sensor.
func (c *Client) Query(sensor string, minT, maxT int64) ([]engine.TV, error) {
	payload := appendString(nil, sensor)
	payload = binary.AppendVarint(payload, minT)
	payload = binary.AppendVarint(payload, maxT)
	resp, err := c.callIdempotent(OpQuery, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/9+1 {
		return nil, fmt.Errorf("rpc: result count %d exceeds frame", n)
	}
	out := make([]engine.TV, n)
	for i := range out {
		if out[i].T, err = p.varint(); err != nil {
			return nil, err
		}
		if out[i].V, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// QueryCount implements bench.Target.
func (c *Client) QueryCount(sensor string, minT, maxT int64) (int, error) {
	out, err := c.Query(sensor, minT, maxT)
	return len(out), err
}

// Latest implements bench.Target.
func (c *Client) Latest(sensor string) (int64, bool, error) {
	resp, err := c.callIdempotent(OpLatest, appendString(nil, sensor))
	if err != nil {
		return 0, false, err
	}
	p := &payloadReader{b: resp}
	okByte, err := p.ReadByte()
	if err != nil {
		return 0, false, err
	}
	t, err := p.varint()
	if err != nil {
		return 0, false, err
	}
	return t, okByte == 1, nil
}

// Stats implements bench.Target: it returns the server's aggregate
// stats (merged across shards when the server is sharded).
func (c *Client) Stats() (engine.Stats, error) {
	st, _, err := c.StatsFull()
	return st, err
}

// ShardStats returns the server's per-shard stats breakdown, one entry
// per shard in shard order. Empty against an unsharded (or legacy
// version-1) server.
func (c *Client) ShardStats() ([]engine.Stats, error) {
	_, per, err := c.StatsFull()
	return per, err
}

// StatsFull returns the aggregate stats and the per-shard breakdown
// from a single OpStats exchange. A legacy (version-1) stats payload
// carries no per-shard extension (the breakdown is nil then), a
// version-2 payload carries no durability extension (the durability
// counters stay zero), a version-3 payload carries no pruning
// extension, a version-4 payload carries no read-amplification
// extension, and a version-5 payload carries no label-index extension
// (the missing counters stay zero).
func (c *Client) StatsFull() (engine.Stats, []engine.Stats, error) {
	resp, err := c.callIdempotent(OpStats, nil)
	if err != nil {
		return engine.Stats{}, nil, err
	}
	p := &payloadReader{b: resp}
	st, err := p.stats()
	if err != nil {
		return st, nil, err
	}
	if p.remaining() == 0 {
		return st, nil, nil // legacy stats shape: no shard extension
	}
	n, err := p.uvarint()
	if err != nil {
		return st, nil, err
	}
	// Every stats block is well over 30 bytes; reject counts the frame
	// cannot hold before allocating.
	if n > uint64(p.remaining())/30+1 {
		return st, nil, fmt.Errorf("rpc: shard count %d exceeds frame", n)
	}
	per := make([]engine.Stats, n)
	for i := range per {
		if per[i], err = p.stats(); err != nil {
			return st, nil, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-2 payload: no durability extension
	}
	if err := p.durability(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.durability(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-3 payload: no pruning extension
	}
	if err := p.pruning(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.pruning(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-4 payload: no read-amp extension
	}
	if err := p.readAmp(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.readAmp(&per[i]); err != nil {
			return st, per, err
		}
	}
	if p.remaining() == 0 {
		return st, per, nil // version-5 payload: no label-index extension
	}
	if err := p.indexStats(&st); err != nil {
		return st, per, err
	}
	for i := range per {
		if err := p.indexStats(&per[i]); err != nil {
			return st, per, err
		}
	}
	return st, per, nil
}

// Flush forces a server-side flush.
func (c *Client) Flush() error {
	_, err := c.callIdempotent(OpFlush, nil)
	return err
}

// Settle implements bench.Target: waits for the server's in-flight
// background flushes.
func (c *Client) Settle() error {
	_, err := c.callIdempotent(OpWait, nil)
	return err
}

// Aggregate runs a windowed aggregation server-side:
// SELECT agg(value) GROUP BY window over [startT, endT).
func (c *Client) Aggregate(sensor string, startT, endT, window int64, agg query.Aggregator) ([]query.WindowResult, error) {
	payload := appendString(nil, sensor)
	for _, v := range []int64{startT, endT, window, int64(agg)} {
		payload = binary.AppendVarint(payload, v)
	}
	resp, err := c.callIdempotent(OpAgg, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/10+1 {
		return nil, fmt.Errorf("rpc: window count %d exceeds frame", n)
	}
	out := make([]query.WindowResult, n)
	for i := range out {
		if out[i].Start, err = p.varint(); err != nil {
			return nil, err
		}
		cnt, err := p.varint()
		if err != nil {
			return nil, err
		}
		out[i].Count = int(cnt)
		if out[i].Value, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close closes the connection. Further calls fail without redialing.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
