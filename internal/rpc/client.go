package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/query"
)

// Client is a connection to a Server. One request runs at a time per
// client; it satisfies bench.Target so benchmark workloads can run
// client-server. Open several clients for concurrency.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// call performs one request/response exchange.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, op, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	status, resp, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	if status != 0 {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp)
	}
	return resp, nil
}

// InsertBatch implements bench.Target.
func (c *Client) InsertBatch(sensor string, times []int64, values []float64) error {
	if len(times) != len(values) {
		return fmt.Errorf("rpc: batch shape mismatch")
	}
	payload := appendString(nil, sensor)
	payload = binary.AppendUvarint(payload, uint64(len(times)))
	for i := range times {
		payload = binary.AppendVarint(payload, times[i])
		payload = appendFloat64(payload, values[i])
	}
	_, err := c.call(OpInsert, payload)
	return err
}

// Query returns the records in [minT, maxT] for sensor.
func (c *Client) Query(sensor string, minT, maxT int64) ([]engine.TV, error) {
	payload := appendString(nil, sensor)
	payload = binary.AppendVarint(payload, minT)
	payload = binary.AppendVarint(payload, maxT)
	resp, err := c.call(OpQuery, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/9+1 {
		return nil, fmt.Errorf("rpc: result count %d exceeds frame", n)
	}
	out := make([]engine.TV, n)
	for i := range out {
		if out[i].T, err = p.varint(); err != nil {
			return nil, err
		}
		if out[i].V, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// QueryCount implements bench.Target.
func (c *Client) QueryCount(sensor string, minT, maxT int64) (int, error) {
	out, err := c.Query(sensor, minT, maxT)
	return len(out), err
}

// Latest implements bench.Target.
func (c *Client) Latest(sensor string) (int64, bool, error) {
	resp, err := c.call(OpLatest, appendString(nil, sensor))
	if err != nil {
		return 0, false, err
	}
	p := &payloadReader{b: resp}
	okByte, err := p.ReadByte()
	if err != nil {
		return 0, false, err
	}
	t, err := p.varint()
	if err != nil {
		return 0, false, err
	}
	return t, okByte == 1, nil
}

// Stats implements bench.Target.
func (c *Client) Stats() (engine.Stats, error) {
	var st engine.Stats
	resp, err := c.call(OpStats, nil)
	if err != nil {
		return st, err
	}
	p := &payloadReader{b: resp}
	fc, err := p.varint()
	if err != nil {
		return st, err
	}
	st.FlushCount = int(fc)
	if st.AvgFlushMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.AvgSortMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.SeqPoints, err = p.varint(); err != nil {
		return st, err
	}
	if st.UnseqPoints, err = p.varint(); err != nil {
		return st, err
	}
	files, err := p.varint()
	if err != nil {
		return st, err
	}
	st.Files = int(files)
	mp, err := p.varint()
	if err != nil {
		return st, err
	}
	st.MemTablePoints = int(mp)
	fw, err := p.varint()
	if err != nil {
		return st, err
	}
	st.FlushWorkers = int(fw)
	if st.SortsSkipped, err = p.varint(); err != nil {
		return st, err
	}
	if st.LockWaits, err = p.varint(); err != nil {
		return st, err
	}
	if st.QueriesBlocked, err = p.varint(); err != nil {
		return st, err
	}
	if st.AvgEncodeMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.AvgWriteMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.AvgLockWaitMicros, err = p.float64(); err != nil {
		return st, err
	}
	if st.MaxLockWaitMicros, err = p.float64(); err != nil {
		return st, err
	}
	if st.P99LockWaitMicros, err = p.float64(); err != nil {
		return st, err
	}
	if st.FlatSorts, err = p.varint(); err != nil {
		return st, err
	}
	if st.InterfaceSorts, err = p.varint(); err != nil {
		return st, err
	}
	if st.FlatSortMillis, err = p.float64(); err != nil {
		return st, err
	}
	if st.InterfaceSortMillis, err = p.float64(); err != nil {
		return st, err
	}
	sp, err := p.varint()
	if err != nil {
		return st, err
	}
	st.SortParallelism = int(sp)
	ft, err := p.varint()
	if err != nil {
		return st, err
	}
	st.FlatSortThreshold = int(ft)
	return st, nil
}

// Flush forces a server-side flush.
func (c *Client) Flush() error {
	_, err := c.call(OpFlush, nil)
	return err
}

// Settle implements bench.Target: waits for the server's in-flight
// background flushes.
func (c *Client) Settle() error {
	_, err := c.call(OpWait, nil)
	return err
}

// Aggregate runs a windowed aggregation server-side:
// SELECT agg(value) GROUP BY window over [startT, endT).
func (c *Client) Aggregate(sensor string, startT, endT, window int64, agg query.Aggregator) ([]query.WindowResult, error) {
	payload := appendString(nil, sensor)
	for _, v := range []int64{startT, endT, window, int64(agg)} {
		payload = binary.AppendVarint(payload, v)
	}
	resp, err := c.call(OpAgg, payload)
	if err != nil {
		return nil, err
	}
	p := &payloadReader{b: resp}
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(resp))/10+1 {
		return nil, fmt.Errorf("rpc: window count %d exceeds frame", n)
	}
	out := make([]query.WindowResult, n)
	for i := range out {
		if out[i].Start, err = p.varint(); err != nil {
			return nil, err
		}
		cnt, err := p.varint()
		if err != nil {
			return nil, err
		}
		out[i].Count = int(cnt)
		if out[i].Value, err = p.float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
