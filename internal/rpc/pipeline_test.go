package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/ingestq"
)

// blockingBackend wedges every InsertBatch until release is closed,
// so overload tests can hold the worker pool busy deterministically.
// All other ops answer immediately.
type blockingBackend struct {
	started chan struct{} // closed when the first insert begins
	release chan struct{}
	once    sync.Once
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{started: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingBackend) InsertBatch(string, []int64, []float64) error {
	b.once.Do(func() { close(b.started) })
	<-b.release
	return nil
}
func (b *blockingBackend) Query(string, int64, int64) ([]engine.TV, error) { return nil, nil }
func (b *blockingBackend) LatestTime(string) (int64, bool)                 { return 0, false }
func (b *blockingBackend) Stats() engine.Stats                             { return engine.Stats{} }
func (b *blockingBackend) Flush()                                          {}
func (b *blockingBackend) WaitFlushes()                                    {}

// TestPipelinedConcurrentCalls hammers one connection from many
// goroutines: the tag table must route every reply to its caller with
// no cross-talk, and the server must report the connection as
// pipelined.
func TestPipelinedConcurrentCalls(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines = 16
	const opsEach = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sensor := fmt.Sprintf("s%d", g)
			for i := 0; i < opsEach; i++ {
				if err := c.InsertBatch(sensor, []int64{int64(i)}, []float64{float64(g)}); err != nil {
					errs <- fmt.Errorf("insert: %w", err)
					return
				}
			}
			pts, err := c.Query(sensor, 0, int64(opsEach))
			if err != nil {
				errs <- fmt.Errorf("query: %w", err)
				return
			}
			if len(pts) != opsEach {
				errs <- fmt.Errorf("sensor %s: got %d points, want %d", sensor, len(pts), opsEach)
				return
			}
			for _, p := range pts {
				if p.V != float64(g) {
					errs <- fmt.Errorf("sensor %s: cross-talk, value %v", sensor, p.V)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PipelinedConns < 1 || st.LegacyConns != 0 {
		t.Fatalf("conn counters: pipelined=%d legacy=%d", st.PipelinedConns, st.LegacyConns)
	}
	if st.IngestEnqueued == 0 {
		t.Fatalf("pipelined ops bypassed the dispatch queue")
	}
}

// TestInsertBatchAsyncPipelines issues a window of async inserts
// before collecting any reply, then confirms every point landed.
func TestInsertBatchAsyncPipelines(t *testing.T) {
	e, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const depth = 32
	pending := make([]*PendingInsert, depth)
	for i := range pending {
		pending[i] = c.InsertBatchAsync("a", []int64{int64(i)}, []float64{1})
	}
	for i, p := range pending {
		if err := p.Wait(); err != nil {
			t.Fatalf("async insert %d: %v", i, err)
		}
	}
	e.Flush()
	e.WaitFlushes()
	pts, err := c.Query("a", 0, depth)
	if err != nil || len(pts) != depth {
		t.Fatalf("query = %d points, %v; want %d", len(pts), err, depth)
	}
}

// TestOverloadedRPC pins the overload path end to end: with a
// one-slot queue and its single worker wedged, the third in-flight
// insert must come back as StatusOverloaded — carrying a retry-after
// hint, not executing, and leaving the connection healthy.
func TestOverloadedRPC(t *testing.T) {
	b := newBlockingBackend()
	srv := NewServer(b)
	srv.SetQueueBounds(1, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p1 := c.InsertBatchAsync("s", []int64{1}, []float64{1})
	<-b.started                                             // worker is now wedged inside p1
	p2 := c.InsertBatchAsync("s", []int64{2}, []float64{2}) // occupies the only queue slot
	p3 := c.InsertBatchAsync("s", []int64{3}, []float64{3}) // nowhere to go

	err = p3.Wait()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third insert: %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("overload carries no retry-after hint: %v", err)
	}

	close(b.release)
	if err := p1.Wait(); err != nil {
		t.Fatalf("wedged insert: %v", err)
	}
	if err := p2.Wait(); err != nil {
		t.Fatalf("queued insert: %v", err)
	}
	// The connection survived the rejection: a fresh call works.
	if _, err := c.Query("s", 0, 10); err != nil {
		t.Fatalf("connection dead after overload: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestRejected < 1 {
		t.Fatalf("IngestRejected = %d, want >= 1", st.IngestRejected)
	}
}

// TestOverloadRetriesInIdempotentPath: an idempotent call hitting a
// wedged queue backs off on the hint and succeeds once capacity
// returns, without redialing.
func TestOverloadRetriesInIdempotentPath(t *testing.T) {
	b := newBlockingBackend()
	srv := NewServer(b)
	srv.SetQueueBounds(1, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.InsertBatchAsync("s", []int64{1}, []float64{1})
	<-b.started
	c.InsertBatchAsync("s", []int64{2}, []float64{2})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(b.release)
	}()
	if err := c.Flush(); err != nil {
		t.Fatalf("idempotent call did not recover from overload: %v", err)
	}
	if st, _ := c.Stats(); st.PipelinedConns != 1 {
		t.Fatalf("overload recovery redialed: %d conns", st.PipelinedConns)
	}
}

// TestRedialSingleFlight (the redial-race fix): when the server
// restarts, many concurrent idempotent calls must funnel through ONE
// reconnect — the replacement server sees a single connection, and no
// loser socket leaks.
func TestRedialSingleFlight(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1000, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer(e)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Query("s", 0, 10); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PipelinedConns != 1 {
		t.Fatalf("redial opened %d connections to the new server, want 1", st.PipelinedConns)
	}
}

// TestIdleSweepClosesIdleConns: with an idle timeout armed, a
// connection with nothing in flight is closed by the sweeper, while
// the Dial-level client transparently redials on its next call.
func TestIdleSweepClosesIdleConns(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1000, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e)
	srv.SetIdleTimeout(100 * time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// A raw handshaken connection left idle gets hung up on.
	conn, br, bw := rawDial(t, addr)
	hello := append(append([]byte(nil), protocolMagic[:]...), ProtocolVersion)
	if status, _ := rawCall(t, br, bw, OpHello, hello); status != StatusOK {
		t.Fatal("handshake refused")
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, _, _, err := readTaggedFrame(br); err == nil {
		t.Fatal("idle connection was not closed by the sweeper")
	} else if ne, ok := err.(interface{ Timeout() bool }); ok && ne.Timeout() {
		t.Fatal("sweeper never closed the idle connection (local deadline hit instead)")
	}

	// The real client rides it out: its next idempotent call redials.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("s", 0, 10); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if _, err := c.Query("s", 0, 10); err != nil {
		t.Fatalf("query after idle sweep: %v", err)
	}
}

// TestPerFrameDeadlineReset: a session whose individual exchanges all
// beat the read timeout survives indefinitely, even once the total
// session time exceeds it — the deadline must reset per frame, not
// run once per connection.
func TestPerFrameDeadlineReset(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1000, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e)
	srv.SetTimeouts(200*time.Millisecond, time.Second)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 6; i++ { // 6 x 100ms = 3x the read timeout
		if err := c.InsertBatch("s", []int64{int64(i)}, []float64{1}); err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterDrain: after pipelined load, closing the
// clients and draining the server returns the process to its
// goroutine baseline — no reader, writer, demux, worker, or sweeper
// goroutines left behind.
func TestNoGoroutineLeakAfterDrain(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1000, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	// Warm the engine's background machinery before the baseline.
	if err := e.InsertBatch("warm", []int64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	e.WaitFlushes()
	baseline := runtime.NumGoroutine()

	srv := NewServer(e)
	srv.SetIdleTimeout(time.Minute) // exercise the sweeper's shutdown too
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for i := 0; i < 4; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.InsertBatch("leak", []int64{int64(i)}, []float64{1})
			}
			c.Query("leak", 0, 50)
		}(c)
	}
	wg.Wait()
	for _, c := range clients {
		c.Close()
	}
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStalledWriterDoesNotWedgePool: a deaf client — it pipelines
// queries with large results and never reads a reply — stalls its
// connection's writer in a socket write. The shared worker pool must
// keep serving other connections throughout (worker reply sends are
// budgeted, never blocking), and the stalled writer must break out on
// the default write-stall deadline even with no configured write
// timeout, letting the server shut down cleanly.
func TestStalledWriterDoesNotWedgePool(t *testing.T) {
	oldStall := defaultWriteStall
	defaultWriteStall = 200 * time.Millisecond
	t.Cleanup(func() { defaultWriteStall = oldStall })

	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1 << 20, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	// A sensor big enough that a few hundred query replies overwhelm
	// any socket buffering between server and a client that never
	// reads.
	const npts = 8192
	times := make([]int64, npts)
	values := make([]float64, npts)
	for i := range times {
		times[i] = int64(i)
		values[i] = float64(i)
	}
	if err := e.InsertBatch("big", times, values); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(e) // no SetTimeouts: the -rpc-timeout=0 configuration
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	deaf, br, bw := rawDial(t, addr)
	hello := append(append([]byte(nil), protocolMagic[:]...), ProtocolVersion)
	if status, _ := rawCall(t, br, bw, OpHello, hello); status != StatusOK {
		t.Fatal("handshake refused")
	}
	qpayload := appendString(nil, "big")
	qpayload = binary.AppendVarint(qpayload, 0)
	qpayload = binary.AppendVarint(qpayload, npts)
	for i := 0; i < 256; i++ {
		if err := writeTaggedFrame(bw, OpQuery, uint32(i), qpayload); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// ...and never read a single reply.

	// A healthy client on the same server must get service while the
	// deaf connection's writer is stalled.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	healthy := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := c.InsertBatch("s", []int64{int64(i)}, []float64{1}); err != nil {
				healthy <- err
				return
			}
			if _, err := c.Query("big", 0, 10); err != nil {
				healthy <- err
				return
			}
		}
		healthy <- nil
	}()
	select {
	case err := <-healthy:
		if err != nil {
			t.Fatalf("healthy client starved: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shared worker pool wedged behind a deaf pipelined client")
	}

	// The write-stall deadline breaks the stalled writer, which hangs
	// up on the deaf peer; shutdown must then complete promptly.
	deaf.Close()
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestSetQueueBoundsReplacesQueue: re-sizing the private dispatch
// queue must stop the previous pool's workers, not leak them.
func TestSetQueueBoundsReplacesQueue(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := NewServer(newBlockingBackend())
	for i := 0; i < 8; i++ {
		srv.SetQueueBounds(4, 3)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SetQueueBounds leaked workers: baseline %d, now %d",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedQueueAcrossServers: two servers sharing one ingestq see a
// single overload domain — counters accumulate across both.
func TestSharedQueueAcrossServers(t *testing.T) {
	q := ingestq.New(64, 2)
	defer q.Close()
	var addrs []string
	for i := 0; i < 2; i++ {
		e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1000, SyncFlush: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		srv := NewServer(e)
		srv.SetIngestQueue(q)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, addr)
	}
	for _, addr := range addrs {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertBatch("s", []int64{1}, []float64{1}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if got := q.Stats().Enqueued; got < 2 {
		t.Fatalf("shared queue saw %d ops across two servers, want >= 2", got)
	}
}
