package rpc

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
)

// TestDurabilityStatsOverRPC runs a WALSync=always engine behind the
// server and checks the version-3 durability extension round-trips:
// commits and syncs reach the client non-zero, through both the
// aggregate and (via a sharded backend) the per-shard breakdown.
func TestDurabilityStatsOverRPC(t *testing.T) {
	r, err := shard.Open(shard.Config{
		Config: engine.Config{
			Dir:       t.TempDir(),
			SyncFlush: true,
			WAL:       true,
			WALSync:   engine.WALSyncAlways,
		},
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 8; i++ {
		s := "d" + string(rune('0'+i)) + ".s0"
		if err := c.InsertBatch(s, []int64{1, 2}, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	agg, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if agg.WALCommits != 8 {
		t.Fatalf("aggregate WALCommits = %d, want 8", agg.WALCommits)
	}
	if agg.WALSyncs <= 0 || agg.WALSyncs > agg.WALCommits {
		t.Fatalf("aggregate WALSyncs = %d, want in (0, %d]", agg.WALSyncs, agg.WALCommits)
	}
	if len(per) != 2 {
		t.Fatalf("per-shard breakdown has %d entries, want 2", len(per))
	}
	var sum int64
	for _, s := range per {
		sum += s.WALCommits
	}
	if sum != agg.WALCommits {
		t.Fatalf("per-shard WALCommits sum %d != aggregate %d", sum, agg.WALCommits)
	}
}

// TestClientRetriesAcrossRestart kills the server between two queries
// and restarts it on the same address: the idempotent Query must
// transparently redial and succeed, while the original connection is
// long dead.
func TestClientRetriesAcrossRestart(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.InsertBatch("s", []int64{1, 2, 3}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(e)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	t.Cleanup(func() { srv2.Close() })

	got, err := c.Query("s", 0, 10)
	if err != nil {
		t.Fatalf("query across restart: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("query across restart returned %d points, want 3", len(got))
	}
}

// TestInsertDoesNotRetry pins the write-path policy: a transport
// failure on InsertBatch surfaces to the caller instead of silently
// redialing — the client cannot know whether the lost response meant a
// lost write.
func TestInsertDoesNotRetry(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(e)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	if err := c.InsertBatch("s", []int64{1}, []float64{1}); err == nil {
		t.Fatal("insert over a dead connection succeeded; write was silently retried")
	}
}

// TestReadTimeoutDropsIdleConn arms a short server read deadline and
// verifies an idle connection is dropped, while a fresh one still
// serves.
func TestReadTimeoutDropsIdleConn(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e)
	srv.SetTimeouts(50*time.Millisecond, time.Second)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Handshake, then go idle past the read deadline.
	payload := append([]byte(nil), protocolMagic[:]...)
	payload = append(payload, ProtocolVersion)
	if err := writeFrame(conn, OpHello, payload); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(conn); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	conn.SetReadDeadline(deadline)
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("idle connection not dropped by server read timeout")
	} else if strings.Contains(err.Error(), "i/o timeout") {
		t.Fatalf("server kept idle connection past its deadline: %v", err)
	}

	// The server is still serving new connections.
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial after idle drop: %v", err)
	}
	defer c.Close()
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulShutdownDrains verifies Shutdown lets an in-flight
// exchange complete (and its connection close cleanly) instead of
// cutting it mid-response, and that post-shutdown dials are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.InsertBatch("s", []int64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(2 * time.Second) }()
	// The connected client's next (non-retrying) exchange either
	// completes — shutdown had not reached it — or fails because its
	// connection was drained; both are fine. What must hold: Shutdown
	// returns promptly and new dials are refused.
	c.call(OpFlush, nil)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not drain")
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("server accepted a connection after shutdown")
	}
}
