package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/query"
)

// Server exposes an engine over TCP.
type Server struct {
	eng *engine.Engine

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps an engine.
func NewServer(eng *engine.Engine) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	for {
		op, payload, err := readFrame(br)
		if err != nil {
			return // client went away or sent garbage
		}
		resp, err := s.dispatch(op, payload)
		status := byte(0)
		if err != nil {
			status = 1
			resp = []byte(err.Error())
		}
		if err := writeFrame(bw, status, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(op byte, payload []byte) ([]byte, error) {
	p := &payloadReader{b: payload}
	switch op {
	case OpInsert:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		n, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		// Every record costs at least 9 payload bytes (1-byte varint
		// time + 8-byte value); reject counts the frame cannot hold
		// before allocating.
		if n > uint64(len(payload))/9+1 {
			return nil, fmt.Errorf("rpc: insert count %d exceeds frame", n)
		}
		times := make([]int64, n)
		values := make([]float64, n)
		for i := range times {
			if times[i], err = p.varint(); err != nil {
				return nil, err
			}
			if values[i], err = p.float64(); err != nil {
				return nil, err
			}
		}
		return nil, s.eng.InsertBatch(sensor, times, values)

	case OpQuery:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		minT, err := p.varint()
		if err != nil {
			return nil, err
		}
		maxT, err := p.varint()
		if err != nil {
			return nil, err
		}
		out, err := s.eng.Query(sensor, minT, maxT)
		if err != nil {
			return nil, err
		}
		resp := binary.AppendUvarint(nil, uint64(len(out)))
		for _, tv := range out {
			resp = binary.AppendVarint(resp, tv.T)
			resp = appendFloat64(resp, tv.V)
		}
		return resp, nil

	case OpLatest:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		t, ok := s.eng.LatestTime(sensor)
		resp := []byte{0}
		if ok {
			resp[0] = 1
		}
		return binary.AppendVarint(resp, t), nil

	case OpStats:
		st := s.eng.Stats()
		resp := binary.AppendVarint(nil, int64(st.FlushCount))
		resp = appendFloat64(resp, st.AvgFlushMillis)
		resp = appendFloat64(resp, st.AvgSortMillis)
		resp = binary.AppendVarint(resp, st.SeqPoints)
		resp = binary.AppendVarint(resp, st.UnseqPoints)
		resp = binary.AppendVarint(resp, int64(st.Files))
		resp = binary.AppendVarint(resp, int64(st.MemTablePoints))
		resp = binary.AppendVarint(resp, int64(st.FlushWorkers))
		resp = binary.AppendVarint(resp, st.SortsSkipped)
		resp = binary.AppendVarint(resp, st.LockWaits)
		resp = binary.AppendVarint(resp, st.QueriesBlocked)
		resp = appendFloat64(resp, st.AvgEncodeMillis)
		resp = appendFloat64(resp, st.AvgWriteMillis)
		resp = appendFloat64(resp, st.AvgLockWaitMicros)
		resp = appendFloat64(resp, st.MaxLockWaitMicros)
		resp = appendFloat64(resp, st.P99LockWaitMicros)
		resp = binary.AppendVarint(resp, st.FlatSorts)
		resp = binary.AppendVarint(resp, st.InterfaceSorts)
		resp = appendFloat64(resp, st.FlatSortMillis)
		resp = appendFloat64(resp, st.InterfaceSortMillis)
		resp = binary.AppendVarint(resp, int64(st.SortParallelism))
		resp = binary.AppendVarint(resp, int64(st.FlatSortThreshold))
		return resp, nil

	case OpFlush:
		s.eng.Flush()
		return nil, nil

	case OpWait:
		s.eng.WaitFlushes()
		return nil, nil

	case OpAgg:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		var startT, endT, window, aggCode int64
		for _, dst := range []*int64{&startT, &endT, &window, &aggCode} {
			if *dst, err = p.varint(); err != nil {
				return nil, err
			}
		}
		wins, err := query.WindowQuery(s.eng, sensor, startT, endT, window, query.Aggregator(aggCode))
		if err != nil {
			return nil, err
		}
		resp := binary.AppendUvarint(nil, uint64(len(wins)))
		for _, w := range wins {
			resp = binary.AppendVarint(resp, w.Start)
			resp = binary.AppendVarint(resp, int64(w.Count))
			resp = appendFloat64(resp, w.Value)
		}
		return resp, nil

	default:
		return nil, fmt.Errorf("rpc: unknown opcode %d", op)
	}
}

// Close stops accepting, closes live connections, and waits for the
// handlers. The engine is left open (the owner closes it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
