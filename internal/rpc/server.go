package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/query"
)

// Backend is the storage surface the server dispatches onto — a bare
// *engine.Engine or the shard router, which fans the same API out over
// hash-partitioned shards.
type Backend interface {
	InsertBatch(sensor string, times []int64, values []float64) error
	Query(sensor string, minT, maxT int64) ([]engine.TV, error)
	LatestTime(sensor string) (int64, bool)
	Stats() engine.Stats
	Flush()
	WaitFlushes()
}

// shardedBackend is optionally implemented by backends that hold
// per-shard state (the shard router): StatsAll returns the merged
// aggregate and the per-shard snapshots from one collection pass, so
// the OpStats payload is internally consistent.
type shardedBackend interface {
	StatsAll() (engine.Stats, []engine.Stats)
}

// Server exposes a backend over TCP.
type Server struct {
	eng Backend

	readTimeout  time.Duration
	writeTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
	draining bool
}

// NewServer wraps a backend (an engine or a shard router).
func NewServer(eng Backend) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{})}
}

// SetTimeouts arms per-exchange connection deadlines: read is the
// longest a connection may sit between requests (an idle or stalled
// peer is dropped after it), write the longest one response may take to
// drain into the socket. Zero disables the respective deadline. Call
// before Listen.
func (s *Server) SetTimeouts(read, write time.Duration) {
	s.readTimeout = read
	s.writeTimeout = write
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	for first := true; ; first = false {
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		op, payload, err := readFrame(br)
		if err != nil {
			return // client went away, stalled past the deadline, or sent garbage
		}
		var resp []byte
		var derr error
		if first && op != OpHello {
			// Pre-handshake clients would misparse version-2 payloads;
			// refuse them with a message they can still decode (the
			// response framing is unchanged across versions).
			derr = fmt.Errorf("rpc: handshake required: server speaks protocol version %d, client sent opcode %d first (older client?)",
				ProtocolVersion, op)
		} else {
			resp, derr = s.dispatch(op, payload)
		}
		status := byte(0)
		if derr != nil {
			status = 1
			resp = []byte(derr.Error())
		}
		if s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if err := writeFrame(bw, status, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if first && derr != nil {
			return // failed handshake: drop the connection
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return // graceful shutdown: finish the in-flight exchange, then close
		}
	}
}

func (s *Server) dispatch(op byte, payload []byte) ([]byte, error) {
	p := &payloadReader{b: payload}
	switch op {
	case OpInsert:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		n, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		// Every record costs at least 9 payload bytes (1-byte varint
		// time + 8-byte value); reject counts the frame cannot hold
		// before allocating.
		if n > uint64(len(payload))/9+1 {
			return nil, fmt.Errorf("rpc: insert count %d exceeds frame", n)
		}
		times := make([]int64, n)
		values := make([]float64, n)
		for i := range times {
			if times[i], err = p.varint(); err != nil {
				return nil, err
			}
			if values[i], err = p.float64(); err != nil {
				return nil, err
			}
		}
		return nil, s.eng.InsertBatch(sensor, times, values)

	case OpQuery:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		minT, err := p.varint()
		if err != nil {
			return nil, err
		}
		maxT, err := p.varint()
		if err != nil {
			return nil, err
		}
		out, err := s.eng.Query(sensor, minT, maxT)
		if err != nil {
			return nil, err
		}
		resp := binary.AppendUvarint(nil, uint64(len(out)))
		for _, tv := range out {
			resp = binary.AppendVarint(resp, tv.T)
			resp = appendFloat64(resp, tv.V)
		}
		return resp, nil

	case OpLatest:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		t, ok := s.eng.LatestTime(sensor)
		resp := []byte{0}
		if ok {
			resp[0] = 1
		}
		return binary.AppendVarint(resp, t), nil

	case OpStats:
		// Aggregate stats in the version-1 block layout, then the
		// version-2 per-shard extension (absent shards encode as 0, so
		// clients against a bare engine see an empty breakdown), then
		// the version-3 durability extension (aggregate block + one per
		// shard), then the version-4 pruning and version-5
		// read-amplification extensions in the same
		// aggregate-then-per-shard shape. Older clients stop reading
		// before the extensions they do not know.
		var resp []byte
		if sb, ok := s.eng.(shardedBackend); ok {
			merged, per := sb.StatsAll()
			resp = appendStats(nil, merged)
			resp = binary.AppendUvarint(resp, uint64(len(per)))
			for _, shardStats := range per {
				resp = appendStats(resp, shardStats)
			}
			resp = appendDurability(resp, merged)
			for _, shardStats := range per {
				resp = appendDurability(resp, shardStats)
			}
			resp = appendPruning(resp, merged)
			for _, shardStats := range per {
				resp = appendPruning(resp, shardStats)
			}
			resp = appendReadAmp(resp, merged)
			for _, shardStats := range per {
				resp = appendReadAmp(resp, shardStats)
			}
			resp = appendIndexStats(resp, merged)
			for _, shardStats := range per {
				resp = appendIndexStats(resp, shardStats)
			}
		} else {
			st := s.eng.Stats()
			resp = appendStats(nil, st)
			resp = binary.AppendUvarint(resp, 0)
			resp = appendDurability(resp, st)
			resp = appendPruning(resp, st)
			resp = appendReadAmp(resp, st)
			resp = appendIndexStats(resp, st)
		}
		return resp, nil

	case OpHello:
		if len(payload) < 5 {
			return nil, fmt.Errorf("rpc: short handshake payload (%d bytes)", len(payload))
		}
		if string(payload[:4]) != string(protocolMagic[:]) {
			return nil, fmt.Errorf("rpc: bad handshake magic %q (not a tsdb client?)", payload[:4])
		}
		if payload[4] == 0 {
			return nil, fmt.Errorf("rpc: invalid protocol version 0")
		}
		resp := append([]byte(nil), protocolMagic[:]...)
		return append(resp, ProtocolVersion), nil

	case OpFlush:
		s.eng.Flush()
		return nil, nil

	case OpWait:
		s.eng.WaitFlushes()
		return nil, nil

	case OpAgg:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		var startT, endT, window, aggCode int64
		for _, dst := range []*int64{&startT, &endT, &window, &aggCode} {
			if *dst, err = p.varint(); err != nil {
				return nil, err
			}
		}
		wins, err := query.WindowQuery(s.eng, sensor, startT, endT, window, query.Aggregator(aggCode))
		if err != nil {
			return nil, err
		}
		resp := binary.AppendUvarint(nil, uint64(len(wins)))
		for _, w := range wins {
			resp = binary.AppendVarint(resp, w.Start)
			resp = binary.AppendVarint(resp, int64(w.Count))
			resp = appendFloat64(resp, w.Value)
		}
		return resp, nil

	default:
		return nil, fmt.Errorf("rpc: unknown opcode %d", op)
	}
}

// Shutdown drains the server gracefully: it stops accepting, lets every
// in-flight exchange finish (idle connections are released at their
// next read, bounded by the drain deadline), and force-closes whatever
// remains when the deadline passes. The engine is left open (the owner
// closes it — typically right after Shutdown returns, so the final
// flush happens with no requests in flight).
func (s *Server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	// Unblock connections parked in readFrame waiting for a request
	// that will never come; handlers mid-dispatch are unaffected until
	// they next read.
	deadline := time.Now().Add(drain)
	for conn := range s.conns {
		conn.SetReadDeadline(deadline)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain + 100*time.Millisecond):
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// Close stops accepting, closes live connections, and waits for the
// handlers. The engine is left open (the owner closes it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
