package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/ingestq"
	"repro/internal/query"
)

// Backend is the storage surface the server dispatches onto — a bare
// *engine.Engine or the shard router, which fans the same API out over
// hash-partitioned shards.
type Backend interface {
	InsertBatch(sensor string, times []int64, values []float64) error
	Query(sensor string, minT, maxT int64) ([]engine.TV, error)
	LatestTime(sensor string) (int64, bool)
	Stats() engine.Stats
	Flush()
	WaitFlushes()
}

// shardedBackend is optionally implemented by backends that hold
// per-shard state (the shard router): StatsAll returns the merged
// aggregate and the per-shard snapshots from one collection pass, so
// the OpStats payload is internally consistent.
type shardedBackend interface {
	StatsAll() (engine.Stats, []engine.Stats)
}

// maxConnInFlight bounds how many ops one pipelined connection may
// have outstanding. Past it the server answers StatusOverloaded, so a
// single runaway client cannot monopolize the dispatch queue or force
// unbounded reply buffering.
const maxConnInFlight = 1024

// overloadSlack bounds how many reader-issued StatusOverloaded replies
// one connection may have outstanding (handed to the writer but not
// yet consumed by it). Together with maxConnInFlight it sizes the
// reply channel so sends into it never block: every worker reply holds
// an inFlight unit and every overload reply an overloadSlack unit
// until the writer receives it. A peer that keeps pipelining past its
// budget while not draining replies exhausts the slack and is
// disconnected — the worker pool is shared across connections and the
// HTTP gateway, so one deaf client must not be able to wedge it.
const overloadSlack = 16

// defaultWriteStall caps how long the pipelined writer may sit in one
// socket write when no explicit write timeout is configured. A healthy
// peer drains its receive buffer continuously; a stall this long means
// the peer stopped reading, and the connection is cut so its buffered
// replies drain and its reader is released. A var so tests can shrink
// it.
var defaultWriteStall = time.Minute

// servConn is the per-connection bookkeeping the idle sweep and the
// drain logic read.
type servConn struct {
	conn       net.Conn
	lastActive atomic.Int64 // unix nanos of the last frame in or out
	inFlight   atomic.Int64 // ops accepted but not yet answered
}

func (sc *servConn) touch() { sc.lastActive.Store(time.Now().UnixNano()) }

// Server exposes a backend over TCP. Connections negotiating protocol
// version >= 7 are multiplexed: a per-connection reader goroutine
// feeds the bounded dispatch queue, a shared worker pool executes ops,
// and a single per-connection writer goroutine serializes tagged
// replies in completion order. Version <= 6 peers keep the legacy
// one-in-flight read/dispatch/reply loop.
type Server struct {
	eng Backend

	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration

	queue    *ingestq.Queue
	ownQueue bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*servConn
	wg       sync.WaitGroup
	closed   bool
	draining bool
	stopCh   chan struct{}

	pipelinedConns atomic.Int64
	legacyConns    atomic.Int64
}

// NewServer wraps a backend (an engine or a shard router).
func NewServer(eng Backend) *Server {
	return &Server{
		eng:    eng,
		conns:  make(map[net.Conn]*servConn),
		stopCh: make(chan struct{}),
	}
}

// SetTimeouts arms per-frame connection deadlines: read is the longest
// a connection may sit between request frames (an idle or stalled peer
// is dropped after it), write the longest one response frame may take
// to drain into the socket. Zero disables the respective deadline —
// except that a pipelined connection's writer always caps a single
// socket write at defaultWriteStall, because with many replies queued
// behind one stalled write a truly unbounded write would let a peer
// that stops reading pin the connection's buffered replies forever.
// Call before Listen.
func (s *Server) SetTimeouts(read, write time.Duration) {
	s.readTimeout = read
	s.writeTimeout = write
}

// SetIdleTimeout arms the idle-connection sweep: a connection with no
// frame traffic in either direction and no ops in flight for longer
// than d is closed, so dead clients cannot pin reader goroutines
// forever even when no read deadline is set. Zero (the default)
// disables the sweep. Call before Listen.
func (s *Server) SetIdleTimeout(d time.Duration) {
	s.idleTimeout = d
}

// SetIngestQueue makes the server dispatch pipelined ops through q
// instead of a private queue, so several front ends (this server, the
// HTTP gateway) share one backpressure policy. The caller owns q's
// lifetime and must close it only after every sharer has shut down.
// Call before Listen.
func (s *Server) SetIngestQueue(q *ingestq.Queue) {
	s.queue = q
	s.ownQueue = false
}

// SetQueueBounds sizes the server's own dispatch queue (ignored after
// SetIngestQueue): capacity slots and workers executing ops. Zeros
// pick the ingestq defaults. Call before Listen.
func (s *Server) SetQueueBounds(capacity, workers int) {
	if s.queue != nil {
		if !s.ownQueue {
			return
		}
		s.queue.Close() // don't leak the previous pool's workers
	}
	s.queue = ingestq.New(capacity, workers)
	s.ownQueue = true
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	if s.queue == nil {
		s.queue = ingestq.New(0, 0)
		s.ownQueue = true
	}
	idle := s.idleTimeout
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	if idle > 0 {
		s.wg.Add(1)
		go s.sweepIdle(idle)
	}
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		sc := &servConn{conn: conn}
		sc.touch()
		s.conns[conn] = sc
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(sc)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// sweepIdle periodically closes connections with no traffic and no
// in-flight ops for longer than the idle timeout.
func (s *Server) sweepIdle(idle time.Duration) {
	defer s.wg.Done()
	tick := idle / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case now := <-t.C:
			cutoff := now.Add(-idle).UnixNano()
			s.mu.Lock()
			for _, sc := range s.conns {
				if sc.inFlight.Load() == 0 && sc.lastActive.Load() < cutoff {
					sc.conn.Close() // unblocks the parked reader
				}
			}
			s.mu.Unlock()
		}
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// serveConn owns one connection: it runs the untagged handshake
// exchange, then hands off to the pipelined or legacy loop depending
// on the negotiated protocol version.
func (s *Server) serveConn(sc *servConn) {
	conn := sc.conn
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	// The handshake is always untagged, whatever the versions: the
	// client's first frame must be OpHello carrying magic + version.
	if s.readTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.readTimeout))
	}
	op, payload, err := readFrame(br)
	if err != nil {
		return
	}
	sc.touch()
	var resp []byte
	var derr error
	if op != OpHello {
		// Pre-handshake clients would misparse newer payloads; refuse
		// them with a message they can still decode (the untagged
		// response framing is unchanged across versions).
		derr = fmt.Errorf("rpc: handshake required: server speaks protocol version %d, client sent opcode %d first (older client?)",
			ProtocolVersion, op)
	} else {
		resp, derr = s.dispatch(op, payload)
	}
	status := StatusOK
	if derr != nil {
		status = StatusError
		resp = []byte(derr.Error())
	}
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	}
	if writeFrame(bw, status, resp) != nil || bw.Flush() != nil {
		return
	}
	if derr != nil {
		return // failed handshake: drop the connection
	}
	sc.touch()
	peerVersion := payload[4] // dispatch validated the payload shape
	if min(peerVersion, ProtocolVersion) >= pipelineVersion {
		s.pipelinedConns.Add(1)
		s.servePipelined(sc, br, bw)
	} else {
		s.legacyConns.Add(1)
		s.serveLegacy(sc, br, bw)
	}
}

// serveLegacy is the version <= 6 loop: one untagged frame in, one
// dispatched inline, one untagged reply out. Exactly the pre-v7
// behavior, so old peers observe nothing new.
func (s *Server) serveLegacy(sc *servConn, br *bufio.Reader, bw *bufio.Writer) {
	conn := sc.conn
	for {
		if s.isDraining() {
			return // graceful shutdown: the last exchange has completed
		}
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		op, payload, err := readFrame(br)
		if err != nil {
			return // client went away, stalled past the deadline, or sent garbage
		}
		sc.touch()
		sc.inFlight.Add(1)
		resp, derr := s.dispatch(op, payload)
		status := StatusOK
		if derr != nil {
			status = StatusError
			resp = []byte(derr.Error())
		}
		if s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		err = writeFrame(bw, status, resp)
		if err == nil {
			err = bw.Flush()
		}
		sc.inFlight.Add(-1)
		sc.touch()
		if err != nil {
			return
		}
	}
}

// wireReply is one tagged response waiting for the writer goroutine.
type wireReply struct {
	tag     uint32
	status  byte
	payload []byte
}

// servePipelined is the version-7 loop. The calling goroutine is the
// reader: it decodes tagged frames and submits each op to the shared
// dispatch queue, answering StatusOverloaded immediately when the
// queue (or this connection's in-flight budget) is full. Workers
// execute ops concurrently and push replies — in completion order, not
// arrival order — to the writer goroutine, which owns the socket's
// write side and flushes whenever its channel goes momentarily empty,
// so back-to-back replies coalesce into few syscalls.
//
// The reply channel is sized for every budget unit that can be
// outstanding at once — maxConnInFlight worker replies plus
// overloadSlack reader-issued overload replies — and the writer
// releases each unit the moment it receives the reply, so sends into
// the channel never block a shared-pool worker: admission control
// (the inFlight budget, the overload slack) runs strictly ahead of
// every send.
func (s *Server) servePipelined(sc *servConn, br *bufio.Reader, bw *bufio.Writer) {
	conn := sc.conn
	replies := make(chan wireReply, maxConnInFlight+overloadSlack)
	var overloadOut atomic.Int64 // overload replies the writer has not yet consumed
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for rep := range replies {
			// Release the budget unit first: even a broken writer must
			// keep the reply channel's capacity invariant honest.
			if rep.status == StatusOverloaded {
				overloadOut.Add(-1)
			} else {
				sc.inFlight.Add(-1)
			}
			if broken {
				continue // keep draining so workers never block
			}
			// Always bound one socket write: with no configured write
			// timeout a peer that stops reading would otherwise park
			// this goroutine in conn.Write forever, and with it every
			// reply buffered behind the stall.
			stall := s.writeTimeout
			if stall <= 0 {
				stall = defaultWriteStall
			}
			conn.SetWriteDeadline(time.Now().Add(stall))
			if writeTaggedFrame(bw, rep.status, rep.tag, rep.payload) != nil {
				broken = true
				conn.Close() // release the parked reader; the stream is dead
				continue
			}
			if len(replies) == 0 {
				if bw.Flush() != nil {
					broken = true
					conn.Close()
					continue
				}
				sc.touch()
			}
		}
		if !broken {
			bw.Flush()
		}
	}()

	var pending sync.WaitGroup
	for {
		if s.isDraining() {
			break // stop taking requests; in-flight ops still answer
		}
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		op, tag, payload, err := readTaggedFrame(br)
		if err != nil {
			break
		}
		sc.touch()
		if sc.inFlight.Load() >= maxConnInFlight {
			if !s.sendOverload(replies, &overloadOut, tag) {
				break // deaf peer: pipelining past its budget, not reading replies
			}
			continue
		}
		sc.inFlight.Add(1)
		pending.Add(1)
		task := func() {
			defer pending.Done()
			resp, derr := s.dispatch(op, payload)
			rep := wireReply{tag: tag, status: StatusOK, payload: resp}
			if derr != nil {
				rep.status, rep.payload = StatusError, []byte(derr.Error())
			}
			// The op's inFlight unit is released by the writer when it
			// consumes rep, so this send always finds channel capacity.
			select {
			case replies <- rep:
			default:
				// Unreachable while the budget accounting is correct;
				// if it ever is not, kill the connection rather than
				// wedge a shared worker. Closing the conn breaks the
				// writer out of any stalled write, after which it
				// drains the channel — so the blocking send completes.
				conn.Close()
				replies <- rep
			}
		}
		if qerr := s.queue.TrySubmit(task); qerr != nil {
			sc.inFlight.Add(-1)
			pending.Done()
			if !s.sendOverload(replies, &overloadOut, tag) {
				break
			}
		}
	}
	// Reader done (peer gone, deadline, drain, or overload slack
	// spent): wait for this connection's in-flight ops, let the writer
	// drain their replies, then release it.
	pending.Wait()
	close(replies)
	<-writerDone
}

// sendOverload queues a StatusOverloaded reply for tag if the
// connection's overload slack allows. False means the slack is spent:
// the peer keeps pipelining while its writer is stalled (it is not
// reading replies), and the connection must be dropped rather than
// risk the reader blocking on the reply channel — and, through the
// shared dispatch pool, stalling every other connection.
func (s *Server) sendOverload(replies chan<- wireReply, overloadOut *atomic.Int64, tag uint32) bool {
	if overloadOut.Add(1) > overloadSlack {
		overloadOut.Add(-1)
		return false
	}
	replies <- wireReply{tag: tag, status: StatusOverloaded,
		payload: encodeOverloadPayload(s.queue.RetryAfter())}
	return true
}

// frontendStats overlays the server-level ingest counters onto an
// aggregate stats snapshot (the per-shard blocks stay zero, like the
// router's label-index counters — the dispatch queue is server-wide).
func (s *Server) frontendStats(st *engine.Stats) {
	if s.queue != nil {
		qs := s.queue.Stats()
		st.IngestQueueCap = qs.Capacity
		st.IngestQueueDepth = qs.Depth
		st.IngestWorkers = qs.Workers
		st.IngestEnqueued = qs.Enqueued
		st.IngestRejected = qs.Rejected
	}
	st.PipelinedConns = s.pipelinedConns.Load()
	st.LegacyConns = s.legacyConns.Load()
}

func (s *Server) dispatch(op byte, payload []byte) ([]byte, error) {
	p := &payloadReader{b: payload}
	switch op {
	case OpInsert:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		n, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		// Every record costs at least 9 payload bytes (1-byte varint
		// time + 8-byte value); reject counts the frame cannot hold
		// before allocating.
		if n > uint64(len(payload))/9+1 {
			return nil, fmt.Errorf("rpc: insert count %d exceeds frame", n)
		}
		times := make([]int64, n)
		values := make([]float64, n)
		for i := range times {
			if times[i], err = p.varint(); err != nil {
				return nil, err
			}
			if values[i], err = p.float64(); err != nil {
				return nil, err
			}
		}
		return nil, s.eng.InsertBatch(sensor, times, values)

	case OpQuery:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		minT, err := p.varint()
		if err != nil {
			return nil, err
		}
		maxT, err := p.varint()
		if err != nil {
			return nil, err
		}
		out, err := s.eng.Query(sensor, minT, maxT)
		if err != nil {
			return nil, err
		}
		resp := binary.AppendUvarint(nil, uint64(len(out)))
		for _, tv := range out {
			resp = binary.AppendVarint(resp, tv.T)
			resp = appendFloat64(resp, tv.V)
		}
		return resp, nil

	case OpLatest:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		t, ok := s.eng.LatestTime(sensor)
		resp := []byte{0}
		if ok {
			resp[0] = 1
		}
		return binary.AppendVarint(resp, t), nil

	case OpStats:
		// Aggregate stats in the version-1 block layout, then the
		// version-2 per-shard extension (absent shards encode as 0, so
		// clients against a bare engine see an empty breakdown), then
		// the version-3 durability, version-4 pruning, version-5
		// read-amplification, version-6 label-index, version-7 ingest
		// and version-8 adaptive-sort extensions in the same
		// aggregate-then-per-shard shape. Older clients stop reading
		// before the extensions they do not know.
		var resp []byte
		if sb, ok := s.eng.(shardedBackend); ok {
			merged, per := sb.StatsAll()
			s.frontendStats(&merged)
			resp = appendStats(nil, merged)
			resp = binary.AppendUvarint(resp, uint64(len(per)))
			for _, shardStats := range per {
				resp = appendStats(resp, shardStats)
			}
			resp = appendDurability(resp, merged)
			for _, shardStats := range per {
				resp = appendDurability(resp, shardStats)
			}
			resp = appendPruning(resp, merged)
			for _, shardStats := range per {
				resp = appendPruning(resp, shardStats)
			}
			resp = appendReadAmp(resp, merged)
			for _, shardStats := range per {
				resp = appendReadAmp(resp, shardStats)
			}
			resp = appendIndexStats(resp, merged)
			for _, shardStats := range per {
				resp = appendIndexStats(resp, shardStats)
			}
			resp = appendIngestStats(resp, merged)
			for _, shardStats := range per {
				resp = appendIngestStats(resp, shardStats)
			}
			resp = appendAdaptiveStats(resp, merged)
			for _, shardStats := range per {
				resp = appendAdaptiveStats(resp, shardStats)
			}
		} else {
			st := s.eng.Stats()
			s.frontendStats(&st)
			resp = appendStats(nil, st)
			resp = binary.AppendUvarint(resp, 0)
			resp = appendDurability(resp, st)
			resp = appendPruning(resp, st)
			resp = appendReadAmp(resp, st)
			resp = appendIndexStats(resp, st)
			resp = appendIngestStats(resp, st)
			resp = appendAdaptiveStats(resp, st)
		}
		return resp, nil

	case OpHello:
		if len(payload) < 5 {
			return nil, fmt.Errorf("rpc: short handshake payload (%d bytes)", len(payload))
		}
		if string(payload[:4]) != string(protocolMagic[:]) {
			return nil, fmt.Errorf("rpc: bad handshake magic %q (not a tsdb client?)", payload[:4])
		}
		if payload[4] == 0 {
			return nil, fmt.Errorf("rpc: invalid protocol version 0")
		}
		resp := append([]byte(nil), protocolMagic[:]...)
		return append(resp, ProtocolVersion), nil

	case OpFlush:
		s.eng.Flush()
		return nil, nil

	case OpWait:
		s.eng.WaitFlushes()
		return nil, nil

	case OpAgg:
		sensor, err := p.str()
		if err != nil {
			return nil, err
		}
		var startT, endT, window, aggCode int64
		for _, dst := range []*int64{&startT, &endT, &window, &aggCode} {
			if *dst, err = p.varint(); err != nil {
				return nil, err
			}
		}
		wins, err := query.WindowQuery(s.eng, sensor, startT, endT, window, query.Aggregator(aggCode))
		if err != nil {
			return nil, err
		}
		resp := binary.AppendUvarint(nil, uint64(len(wins)))
		for _, w := range wins {
			resp = binary.AppendVarint(resp, w.Start)
			resp = binary.AppendVarint(resp, int64(w.Count))
			resp = appendFloat64(resp, w.Value)
		}
		return resp, nil

	default:
		return nil, fmt.Errorf("rpc: unknown opcode %d", op)
	}
}

// Shutdown drains the server gracefully: it stops accepting, lets every
// in-flight op finish (idle connections are released at their next
// read, bounded by the drain deadline), and force-closes whatever
// remains when the deadline passes. The engine is left open (the owner
// closes it — typically right after Shutdown returns, so the final
// flush happens with no requests in flight).
func (s *Server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	close(s.stopCh)
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	// Unblock readers parked in readFrame/readTaggedFrame waiting for
	// a request that will never come; ops mid-dispatch are unaffected
	// until their connection next reads.
	deadline := time.Now().Add(drain)
	for conn := range s.conns {
		conn.SetReadDeadline(deadline)
	}
	ownQueue := s.ownQueue
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain + 100*time.Millisecond):
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if ownQueue {
		s.queue.Close()
	}
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// Close stops accepting, closes live connections, and waits for the
// handlers. The engine is left open (the owner closes it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stopCh)
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	ownQueue := s.ownQueue
	s.mu.Unlock()
	s.wg.Wait()
	if ownQueue && s.queue != nil {
		s.queue.Close()
	}
	return ignoreNetClosed(err)
}

func ignoreNetClosed(err error) error {
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
