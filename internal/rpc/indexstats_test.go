package rpc

import (
	"encoding/binary"
	"testing"

	"repro/internal/engine"
	"repro/internal/labels"
	"repro/internal/shard"
)

// TestIndexStatsOverRPC checks the version-6 label-index extension
// round-trips: a sharded backend with registered series and a selector
// query behind it reports series/postings/fan-out counters through
// StatsFull, with the per-shard blocks zero (the index is
// store-level).
func TestIndexStatsOverRPC(t *testing.T) {
	r, err := shard.Open(shard.Config{
		Config:     engine.Config{Dir: t.TempDir(), MemTableSize: 128},
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, host := range []string{"a", "b", "c"} {
		ls := labels.MustNew(
			labels.Label{Name: "host", Value: host},
			labels.Label{Name: "metric", Value: "cpu"},
		)
		if err := r.InsertSeries(ls, []int64{1}, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.QuerySeries([]*labels.Matcher{
		labels.MustMatcher(labels.MatchRe, "host", "a|b"),
	}, 0, 10); err != nil {
		t.Fatal(err)
	}

	agg, per, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if agg.SeriesCount != 3 || agg.LabelPairs != 4 || agg.PostingsEntries != 6 {
		t.Fatalf("index shape over rpc: series=%d pairs=%d entries=%d",
			agg.SeriesCount, agg.LabelPairs, agg.PostingsEntries)
	}
	if agg.MatcherResolutions == 0 || agg.SelectorQueries != 1 ||
		agg.FanoutSeries != 2 || agg.MaxFanoutWidth != 2 {
		t.Fatalf("fan-out counters over rpc: %+v", agg)
	}
	if len(per) != 2 {
		t.Fatalf("per-shard breakdown has %d entries, want 2", len(per))
	}
	for i, s := range per {
		if s.SeriesCount != 0 || s.SelectorQueries != 0 {
			t.Fatalf("shard %d carries store-level index counters: %+v", i, s)
		}
	}
}

// TestStatsFullToleratesV5Payload truncates the label-index extension
// off a stats payload, as a version-5 server would send it: decoding
// must succeed with the index counters left zero.
func TestStatsFullToleratesV5Payload(t *testing.T) {
	var st engine.Stats
	st.FlushCount = 7
	st.SeriesCount = 99 // must NOT survive a truncated payload

	payload := appendStats(nil, st)
	payload = binary.AppendUvarint(payload, 0)
	payload = appendDurability(payload, st)
	payload = appendPruning(payload, st)
	payload = appendReadAmp(payload, st)
	// No appendIndexStats: this is the version-5 shape.

	p := &payloadReader{b: payload}
	got, err := p.stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.uvarint(); err != nil {
		t.Fatal(err)
	}
	for _, dec := range []func(*engine.Stats) error{
		p.durability, p.pruning, p.readAmp,
	} {
		if err := dec(&got); err != nil {
			t.Fatal(err)
		}
	}
	if p.remaining() != 0 {
		t.Fatalf("v5 payload has %d trailing bytes", p.remaining())
	}
	if got.FlushCount != 7 || got.SeriesCount != 0 {
		t.Fatalf("v5 decode: %+v", got)
	}

	// And a full v6 payload round-trips the index counters exactly.
	payload = appendIndexStats(payload, st)
	p = &payloadReader{b: payload}
	got, _ = p.stats()
	p.uvarint()
	p.durability(&got)
	p.pruning(&got)
	p.readAmp(&got)
	if err := p.indexStats(&got); err != nil {
		t.Fatal(err)
	}
	if got.SeriesCount != 99 {
		t.Fatalf("v6 decode lost SeriesCount: %+v", got)
	}
}
