package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/query"
)

func startServer(t *testing.T) (*engine.Engine, string) {
	t.Helper()
	e, err := engine.Open(engine.Config{
		Dir:          t.TempDir(),
		MemTableSize: 1000,
		SyncFlush:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, addr
}

func TestClientServerRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.InsertBatch("s", []int64{5, 1, 3}, []float64{50, 10, 30}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Query("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].T != 1 || out[1].T != 3 || out[2].T != 5 || out[2].V != 50 {
		t.Fatalf("query = %+v", out)
	}

	latest, ok, err := c.Latest("s")
	if err != nil || !ok || latest != 5 {
		t.Fatalf("latest = %d,%v,%v", latest, ok, err)
	}
	_, ok, err = c.Latest("ghost")
	if err != nil || ok {
		t.Fatalf("ghost latest should be absent: %v %v", ok, err)
	}

	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FlushCount != 1 || st.SeqPoints != 3 {
		t.Fatalf("stats = %+v", st)
	}

	// Data survives the flush.
	out, err = c.Query("s", 0, 10)
	if err != nil || len(out) != 3 {
		t.Fatalf("post-flush query = %+v, %v", out, err)
	}
}

func TestRemoteErrorSurfaced(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Engine rejects shape mismatches server-side; force one with a
	// hand-rolled payload (client validates, so craft the frame).
	payload := appendString(nil, "s")
	payload = append(payload, 0x01) // n = 1, but no record bytes follow
	if _, err := c.call(OpInsert, payload); err == nil {
		t.Fatal("malformed payload accepted")
	} else if !errors.Is(err, ErrRemote) {
		t.Fatalf("expected ErrRemote, got %v", err)
	}
}

func TestUnknownOpcode(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.call(99, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown opcode: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			sensor := fmt.Sprintf("s%d", w)
			for i := 0; i < 50; i++ {
				if err := c.InsertBatch(sensor, []int64{int64(i)}, []float64{float64(i)}); err != nil {
					errCh <- err
					return
				}
			}
			out, err := c.Query(sensor, 0, 100)
			if err != nil {
				errCh <- err
				return
			}
			if len(out) != 50 {
				errCh <- fmt.Errorf("client %d saw %d points", w, len(out))
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestBenchOverRPC(t *testing.T) {
	// The full client-server benchmark loop: the client satisfies
	// bench.Target.
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var target bench.Target = c
	res, err := bench.Run(target, bench.Config{
		WritePercent: 0.8,
		BatchSize:    100,
		Operations:   50,
		Sensors:      2,
		Dataset:      "lognormal",
		Mu:           1,
		Sigma:        1,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteOps == 0 || res.PointsWritten == 0 {
		t.Fatalf("rpc bench did nothing: %+v", res)
	}
}

func TestAggregateOverRPC(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Out-of-order inserts; server sorts, aggregates per window of 10.
	if err := c.InsertBatch("s", []int64{15, 3, 1, 12, 7}, []float64{15, 3, 1, 12, 7}); err != nil {
		t.Fatal(err)
	}
	wins, err := c.Aggregate("s", 0, 20, 10, query.Avg)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("windows = %+v", wins)
	}
	// [0,10): 1,3,7 → avg 11/3; [10,20): 12,15 → 13.5.
	if wins[0].Count != 3 || wins[1].Count != 2 || wins[1].Value != 13.5 {
		t.Fatalf("windows = %+v", wins)
	}
	// Invalid window surfaces as a remote error.
	if _, err := c.Aggregate("s", 0, 20, 0, query.Avg); !errors.Is(err, ErrRemote) {
		t.Fatalf("invalid window: %v", err)
	}
}

func TestSettleOverRPC(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameLimits(t *testing.T) {
	// Frames above MaxFrame are rejected on write.
	if err := writeFrame(discard{}, 0, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestServerCloseIdempotent(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := NewServer(e)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsSortKernelFieldsOverRPC checks the six sort-kernel stats
// fields survive the wire: a server with a low flat threshold reports
// kernel activity; one with the kernel disabled reports -1.
func TestStatsSortKernelFieldsOverRPC(t *testing.T) {
	open := func(threshold, par int) (*engine.Engine, string) {
		t.Helper()
		e, err := engine.Open(engine.Config{
			Dir:               t.TempDir(),
			MemTableSize:      500,
			SyncFlush:         true,
			FlatSortThreshold: threshold,
			SortParallelism:   par,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(e)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			e.Close()
		})
		return e, addr
	}

	_, addr := open(100, 3)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	times := make([]int64, 600)
	vals := make([]float64, 600)
	for i := range times {
		times[i] = int64(600 - i)
		vals[i] = float64(i)
	}
	if err := c.InsertBatch("s", times, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FlatSorts == 0 {
		t.Fatalf("no flat sorts over RPC: %+v", st)
	}
	if st.SortParallelism != 3 || st.FlatSortThreshold != 100 {
		t.Fatalf("kernel config lost on the wire: parallelism %d, threshold %d",
			st.SortParallelism, st.FlatSortThreshold)
	}

	_, addr2 := open(-1, 0)
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.FlatSortThreshold != -1 || st2.FlatSorts != 0 {
		t.Fatalf("disabled kernel misreported over RPC: %+v", st2)
	}
}
