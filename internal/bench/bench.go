// Package bench is this repository's analog of IoTDB-benchmark
// (Section VI-A2 of the paper): it generates periodic time series with
// configurable out-of-order delay, sends them to a storage target in
// batches (the paper's optimal batch size of 500), mixes in time-range
// queries of the form
//
//	SELECT * FROM data WHERE time > current - window
//
// according to a write percentage, and reports the paper's three
// system metrics: client-side query throughput (points/s), server-side
// average flush time, and total test latency.
package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Target abstracts the system under test so the same workload can
// drive an in-process engine or a remote server over TCP.
type Target interface {
	// InsertBatch writes one batch for a sensor.
	InsertBatch(sensor string, times []int64, values []float64) error
	// QueryCount runs a time-range query and returns the number of
	// points it produced.
	QueryCount(sensor string, minT, maxT int64) (int, error)
	// Latest returns the sensor's newest ingested timestamp.
	Latest(sensor string) (int64, bool, error)
	// Settle waits for in-flight background work (pending flushes) so
	// the final Stats snapshot is complete.
	Settle() error
	// Stats returns server-side metrics.
	Stats() (engine.Stats, error)
}

// ShardStatser is optionally implemented by targets that can report a
// per-shard stats breakdown (the rpc client against a sharded server,
// or EngineTarget over a shard router). A nil slice means the target
// is unsharded.
type ShardStatser interface {
	ShardStats() ([]engine.Stats, error)
}

// LocalEngine is the in-process storage surface EngineTarget adapts —
// a bare *engine.Engine or the shard router.
type LocalEngine interface {
	InsertBatch(sensor string, times []int64, values []float64) error
	Query(sensor string, minT, maxT int64) ([]engine.TV, error)
	LatestTime(sensor string) (int64, bool)
	WaitFlushes()
	Stats() engine.Stats
}

// EngineTarget adapts a local engine (or shard router) to Target.
type EngineTarget struct{ E LocalEngine }

// InsertBatch implements Target.
func (t EngineTarget) InsertBatch(sensor string, ts []int64, vs []float64) error {
	return t.E.InsertBatch(sensor, ts, vs)
}

// QueryCount implements Target.
func (t EngineTarget) QueryCount(sensor string, minT, maxT int64) (int, error) {
	out, err := t.E.Query(sensor, minT, maxT)
	return len(out), err
}

// Latest implements Target.
func (t EngineTarget) Latest(sensor string) (int64, bool, error) {
	v, ok := t.E.LatestTime(sensor)
	return v, ok, nil
}

// Settle implements Target.
func (t EngineTarget) Settle() error {
	t.E.WaitFlushes()
	return nil
}

// Stats implements Target.
func (t EngineTarget) Stats() (engine.Stats, error) { return t.E.Stats(), nil }

// ShardStats implements ShardStatser: per-shard stats when the wrapped
// engine is sharded, nil otherwise.
func (t EngineTarget) ShardStats() ([]engine.Stats, error) {
	if s, ok := t.E.(interface{ ShardStats() []engine.Stats }); ok {
		return s.ShardStats(), nil
	}
	return nil, nil
}

// Config is one benchmark run.
type Config struct {
	// WritePercent in [0,1]: fraction of operations that are batch
	// writes (the paper sweeps 25%..100%).
	WritePercent float64
	// BatchSize is points per write batch (default 500, Section
	// VI-A2).
	BatchSize int
	// Operations is the total operation count (writes + queries).
	Operations int
	// Devices is how many simulated devices emit data. Each write
	// operation sends one device's batch; each device's sensors share
	// the device's arrival order, as in IoTDB-benchmark.
	Devices int
	// SensorsPerDevice is the chunk fan-out per memtable ("each
	// memory table may have multiple chunks, and each chunk contains
	// one TVList that corresponds to one sensor", Section V-A).
	SensorsPerDevice int
	// Sensors is a deprecated alias for Devices kept for terse
	// configs: when Devices is 0 it seeds Devices (with one sensor
	// each).
	Sensors int
	// Dataset names the generator: "absnormal", "lognormal" (with Mu,
	// Sigma), or a real-world dataset name from the dataset package.
	Dataset string
	// Mu, Sigma parameterize the synthetic delay distributions.
	Mu, Sigma float64
	// WindowTicks is the query window: time > current - window.
	// Default 50,000 ticks.
	WindowTicks int64
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 500
	}
	if c.Operations <= 0 {
		c.Operations = 200
	}
	if c.Devices <= 0 {
		if c.Sensors > 0 {
			c.Devices = c.Sensors
		} else {
			c.Devices = 4
		}
	}
	if c.SensorsPerDevice <= 0 {
		c.SensorsPerDevice = 1
	}
	if c.WindowTicks <= 0 {
		c.WindowTicks = 50000
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Dataset == "" {
		c.Dataset = "lognormal"
	}
	return c
}

// Result is the outcome of one run, carrying the paper's metrics.
type Result struct {
	Config        Config
	WriteOps      int
	QueryOps      int
	PointsWritten int64
	PointsQueried int64
	// QueryThroughput is points returned per second of query time —
	// the client-side, user-perceived metric of Figures 13–15.
	QueryThroughput float64
	AvgQueryMillis  float64
	// P50/P95/P99QueryMillis are per-query latency percentiles.
	P50QueryMillis float64
	P95QueryMillis float64
	P99QueryMillis float64
	// TotalLatency is the wall time of the whole test (Figures
	// 19–21).
	TotalLatency time.Duration
	// Server-side flush metrics (Figures 16–18).
	FlushCount  int
	AvgFlushMs  float64
	AvgSortMs   float64
	SeqPoints   int64
	UnseqPoints int64
	// Server-side flush pipeline and lock contention metrics.
	FlushWorkers      int
	AvgEncodeMs       float64
	AvgWriteMs        float64
	SortsSkipped      int64
	LockWaits         int64
	AvgLockWaitMicros float64
	P99LockWaitMicros float64
	QueriesBlocked    int64
	// Sort kernel routing (flat fast path vs interface path).
	FlatSorts           int64
	InterfaceSorts      int64
	FlatSortMillis      float64
	InterfaceSortMillis float64
	SortParallelism     int
	FlatSortThreshold   int
	// Durability counters (WAL sync policy, quarantine, recovery).
	WALSyncs            int64
	WALCommits          int64
	QuarantinedFiles    int
	RecoveredWALBatches int64
	// Aggregation-pushdown pruning counters.
	ChunksFromStats int64
	ChunksDecoded   int64
	PointsSkipped   int64
	// Block-level read-amplification counters (tsfile v3).
	BytesRead       int64
	BlocksDecoded   int64
	BlocksSkipped   int64
	BlocksFromStats int64
	// Leveled-compaction counters.
	CompactionPasses       int64
	CompactionBytesRead    int64
	MaxCompactionPassBytes int64
	PartitionsDropped      int64
	PartitionsActive       int
	// Label-index counters (series catalog, postings, selector
	// fan-out), non-zero only when the target routes label series.
	SeriesCount        int
	LabelPairs         int
	PostingsEntries    int64
	MatcherResolutions int64
	SelectorQueries    int64
	FanoutSeries       int64
	MaxFanoutWidth     int
	// Adaptive sort-path planner counters, non-zero only when the
	// target runs with engine.Config.AdaptiveSort.
	AdaptiveSortEnabled bool
	SketchSeededFlushes int64
	SearchItersSaved    int64
	AdaptiveFixedSorts  int64
	AdaptiveSeededSorts int64
	AdaptiveFlatRoutes  int64
	AdaptiveIfaceRoutes int64
	AdaptiveMinL        int64
	AdaptiveMaxL        int64
	// Ingest front-end counters (bounded dispatch queue, connection
	// modes), non-zero only when the target is an rpc server.
	IngestQueueCap int
	IngestWorkers  int
	IngestEnqueued int64
	IngestRejected int64
	PipelinedConns int64
	LegacyConns    int64
	// PerShard holds the per-shard stats breakdown when the target is
	// sharded (shard router in-process, or a sharded tsdbd over rpc);
	// nil against an unsharded target.
	PerShard []engine.Stats
}

// deviceStream hands out successive batches of one device's
// pre-generated arrival-order series. All the device's sensors share
// the arrival timestamps; per-sensor values are derived from the base
// signal with a per-sensor offset.
type deviceStream struct {
	mu      sync.Mutex
	device  int
	sensors []string
	series  *dataset.Series
	pos     int
}

// batch is one device write: the same timestamps for every sensor.
type batch struct {
	times   []int64
	perSenV [][]float64
	sensors []string
}

func (s *deviceStream) nextBatch(n int) batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= s.series.Len() {
		s.pos = 0 // wrap: the benchmark can outlast the generated data
	}
	end := s.pos + n
	if end > s.series.Len() {
		end = s.series.Len()
	}
	ts := s.series.Times[s.pos:end]
	base := s.series.Values[s.pos:end]
	out := batch{times: ts, sensors: s.sensors, perSenV: make([][]float64, len(s.sensors))}
	for si := range s.sensors {
		if si == 0 {
			out.perSenV[si] = base
			continue
		}
		vs := make([]float64, len(base))
		offset := float64(si * 3)
		for i, v := range base {
			vs[i] = v + offset
		}
		out.perSenV[si] = vs
	}
	s.pos = end
	return out
}

// makeSeries builds the per-sensor series for cfg.
func makeSeries(cfg Config, sensor int, points int) (*dataset.Series, error) {
	seed := cfg.Seed*1000003 + int64(sensor)
	switch cfg.Dataset {
	case "absnormal":
		return dataset.AbsNormal(points, cfg.Mu, cfg.Sigma, seed), nil
	case "lognormal":
		return dataset.LogNormal(points, cfg.Mu, cfg.Sigma, seed), nil
	default:
		if s, ok := dataset.ByName(cfg.Dataset, points, seed); ok {
			return s, nil
		}
		return nil, fmt.Errorf("bench: unknown dataset %q", cfg.Dataset)
	}
}

// Run executes the workload against the target.
func Run(target Target, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Config: cfg}

	// Pre-generate data so generation cost stays out of the measured
	// window (IoTDB-benchmark also generates ahead of sending).
	writeOps := int(float64(cfg.Operations)*cfg.WritePercent + 0.5)
	pointsPerDevice := (writeOps*cfg.BatchSize + cfg.Devices - 1) / cfg.Devices
	if pointsPerDevice < cfg.BatchSize {
		pointsPerDevice = cfg.BatchSize
	}
	streams := make([]*deviceStream, cfg.Devices)
	for i := range streams {
		s, err := makeSeries(cfg, i, pointsPerDevice)
		if err != nil {
			return res, err
		}
		sensors := make([]string, cfg.SensorsPerDevice)
		for si := range sensors {
			sensors[si] = fmt.Sprintf("d%d.s%d", i, si)
		}
		streams[i] = &deviceStream{device: i, sensors: sensors, series: s}
	}

	var (
		opCounter  atomic.Int64
		writeCount atomic.Int64
		queryCount atomic.Int64
		pointsW    atomic.Int64
		pointsQ    atomic.Int64
		queryNanos atomic.Int64
		latMu      sync.Mutex
		latencies  []float64 // per-query milliseconds
		firstErr   error
		firstErrMu sync.Mutex
	)
	recordErr := func(err error) {
		firstErrMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		firstErrMu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed*7919 + int64(c)))
			for {
				op := opCounter.Add(1)
				if op > int64(cfg.Operations) {
					return
				}
				stream := streams[r.Intn(len(streams))]
				if r.Float64() < cfg.WritePercent {
					b := stream.nextBatch(cfg.BatchSize)
					for si, sensor := range b.sensors {
						if err := target.InsertBatch(sensor, b.times, b.perSenV[si]); err != nil {
							recordErr(err)
							return
						}
						pointsW.Add(int64(len(b.times)))
					}
					writeCount.Add(1)
				} else {
					sensor := stream.sensors[r.Intn(len(stream.sensors))]
					latest, ok, err := target.Latest(sensor)
					if err != nil {
						recordErr(err)
						return
					}
					if !ok {
						continue // nothing ingested yet for this sensor
					}
					t0 := time.Now()
					n, err := target.QueryCount(sensor, latest-cfg.WindowTicks, latest)
					if err != nil {
						recordErr(err)
						return
					}
					elapsed := time.Since(t0)
					queryNanos.Add(int64(elapsed))
					queryCount.Add(1)
					pointsQ.Add(int64(n))
					latMu.Lock()
					latencies = append(latencies, float64(elapsed.Microseconds())/1000)
					latMu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	res.TotalLatency = time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}

	res.WriteOps = int(writeCount.Load())
	res.QueryOps = int(queryCount.Load())
	res.PointsWritten = pointsW.Load()
	res.PointsQueried = pointsQ.Load()
	if qn := queryNanos.Load(); qn > 0 {
		res.QueryThroughput = float64(res.PointsQueried) / (float64(qn) / 1e9)
		res.AvgQueryMillis = float64(qn) / 1e6 / float64(res.QueryOps)
		res.P50QueryMillis = stats.Percentile(latencies, 50)
		res.P95QueryMillis = stats.Percentile(latencies, 95)
		res.P99QueryMillis = stats.Percentile(latencies, 99)
	}
	if err := target.Settle(); err != nil {
		return res, err
	}
	st, err := target.Stats()
	if err != nil {
		return res, err
	}
	res.FlushCount = st.FlushCount
	res.AvgFlushMs = st.AvgFlushMillis
	res.AvgSortMs = st.AvgSortMillis
	res.SeqPoints = st.SeqPoints
	res.UnseqPoints = st.UnseqPoints
	res.FlushWorkers = st.FlushWorkers
	res.AvgEncodeMs = st.AvgEncodeMillis
	res.AvgWriteMs = st.AvgWriteMillis
	res.SortsSkipped = st.SortsSkipped
	res.LockWaits = st.LockWaits
	res.AvgLockWaitMicros = st.AvgLockWaitMicros
	res.P99LockWaitMicros = st.P99LockWaitMicros
	res.QueriesBlocked = st.QueriesBlocked
	res.FlatSorts = st.FlatSorts
	res.InterfaceSorts = st.InterfaceSorts
	res.FlatSortMillis = st.FlatSortMillis
	res.InterfaceSortMillis = st.InterfaceSortMillis
	res.SortParallelism = st.SortParallelism
	res.FlatSortThreshold = st.FlatSortThreshold
	res.WALSyncs = st.WALSyncs
	res.WALCommits = st.WALCommits
	res.QuarantinedFiles = st.QuarantinedFiles
	res.RecoveredWALBatches = st.RecoveredWALBatches
	res.ChunksFromStats = st.ChunksFromStats
	res.ChunksDecoded = st.ChunksDecoded
	res.PointsSkipped = st.PointsSkipped
	res.BytesRead = st.BytesRead
	res.BlocksDecoded = st.BlocksDecoded
	res.BlocksSkipped = st.BlocksSkipped
	res.BlocksFromStats = st.BlocksFromStats
	res.CompactionPasses = st.CompactionPasses
	res.CompactionBytesRead = st.CompactionBytesRead
	res.MaxCompactionPassBytes = st.MaxCompactionPassBytes
	res.PartitionsDropped = st.PartitionsDropped
	res.PartitionsActive = st.PartitionsActive
	res.SeriesCount = st.SeriesCount
	res.LabelPairs = st.LabelPairs
	res.PostingsEntries = st.PostingsEntries
	res.MatcherResolutions = st.MatcherResolutions
	res.SelectorQueries = st.SelectorQueries
	res.FanoutSeries = st.FanoutSeries
	res.MaxFanoutWidth = st.MaxFanoutWidth
	res.AdaptiveSortEnabled = st.AdaptiveSortEnabled
	res.SketchSeededFlushes = st.SketchSeededFlushes
	res.SearchItersSaved = st.SearchItersSaved
	res.AdaptiveFixedSorts = st.AdaptiveFixedSorts
	res.AdaptiveSeededSorts = st.AdaptiveSeededSorts
	res.AdaptiveFlatRoutes = st.AdaptiveFlatRoutes
	res.AdaptiveIfaceRoutes = st.AdaptiveIfaceRoutes
	res.AdaptiveMinL = st.AdaptiveMinL
	res.AdaptiveMaxL = st.AdaptiveMaxL
	res.IngestQueueCap = st.IngestQueueCap
	res.IngestWorkers = st.IngestWorkers
	res.IngestEnqueued = st.IngestEnqueued
	res.IngestRejected = st.IngestRejected
	res.PipelinedConns = st.PipelinedConns
	res.LegacyConns = st.LegacyConns
	if ss, ok := target.(ShardStatser); ok {
		per, err := ss.ShardStats()
		if err != nil {
			return res, err
		}
		res.PerShard = per
	}
	return res, nil
}
