package bench

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

func newEngine(t *testing.T, algo string) *engine.Engine {
	t.Helper()
	e, err := engine.Open(engine.Config{
		Dir:          t.TempDir(),
		MemTableSize: 2000,
		Algorithm:    algo,
		SyncFlush:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestRunMixedWorkload(t *testing.T) {
	e := newEngine(t, "backward")
	res, err := Run(EngineTarget{e}, Config{
		WritePercent: 0.75,
		BatchSize:    100,
		Operations:   80,
		Sensors:      2,
		Dataset:      "lognormal",
		Mu:           1,
		Sigma:        2,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteOps+res.QueryOps == 0 || res.WriteOps+res.QueryOps > 80 {
		t.Fatalf("op accounting wrong: %+v", res)
	}
	if res.PointsWritten != int64(res.WriteOps)*100 {
		t.Fatalf("points written %d for %d writes", res.PointsWritten, res.WriteOps)
	}
	if res.QueryOps > 0 && res.PointsQueried == 0 {
		t.Fatal("queries returned nothing despite writes")
	}
	if res.QueryOps > 0 && res.QueryThroughput <= 0 {
		t.Fatalf("no throughput computed: %+v", res)
	}
	if res.TotalLatency <= 0 {
		t.Fatal("no total latency")
	}
	if res.FlushCount == 0 {
		t.Fatalf("expected flushes at memtable size 2000: %+v", res)
	}
	if res.QueryOps > 0 {
		if res.P50QueryMillis <= 0 || res.P99QueryMillis < res.P95QueryMillis || res.P95QueryMillis < res.P50QueryMillis {
			t.Fatalf("latency percentiles inconsistent: %+v", res)
		}
	}
}

func TestRunWriteOnly(t *testing.T) {
	// Write percentage 1.0: no queries, hence no query throughput —
	// the paper notes this case explicitly.
	e := newEngine(t, "quick")
	res, err := Run(EngineTarget{e}, Config{
		WritePercent: 1.0,
		BatchSize:    50,
		Operations:   40,
		Sensors:      1,
		Dataset:      "absnormal",
		Mu:           1,
		Sigma:        1,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryOps != 0 || res.QueryThroughput != 0 {
		t.Fatalf("write-only run performed queries: %+v", res)
	}
	if res.WriteOps != 40 {
		t.Fatalf("write ops = %d, want 40", res.WriteOps)
	}
}

func TestRunRealWorldDatasetsAndClients(t *testing.T) {
	for _, ds := range []string{"citibike-201808", "samsung-s10"} {
		e := newEngine(t, "backward")
		res, err := Run(EngineTarget{e}, Config{
			WritePercent: 0.9,
			BatchSize:    200,
			Operations:   40,
			Sensors:      3,
			Dataset:      ds,
			Clients:      4,
			Seed:         3,
		})
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if res.WriteOps == 0 {
			t.Fatalf("%s: no writes", ds)
		}
	}
}

func TestRunMultiSensorDevices(t *testing.T) {
	e := newEngine(t, "backward")
	res, err := Run(EngineTarget{e}, Config{
		WritePercent:     1.0,
		BatchSize:        100,
		Operations:       10,
		Devices:          2,
		SensorsPerDevice: 3,
		Dataset:          "lognormal",
		Mu:               1,
		Sigma:            1,
		Seed:             6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each write op fans out to every sensor of the device.
	if res.PointsWritten != int64(res.WriteOps)*100*3 {
		t.Fatalf("device fan-out wrong: %d points for %d writes", res.PointsWritten, res.WriteOps)
	}
	// A device's sensors share timestamps, and at least one device
	// received data (device choice is random per op).
	sawData := false
	for d := 0; d < 2; d++ {
		var prev []int64
		for s := 0; s < 3; s++ {
			out, err := e.Query(fmt.Sprintf("d%d.s%d", d, s), -1<<62, 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			times := make([]int64, len(out))
			for i := range out {
				times[i] = out[i].T
			}
			if s > 0 {
				if len(times) != len(prev) {
					t.Fatalf("d%d: sensors disagree on point count", d)
				}
				for i := range times {
					if times[i] != prev[i] {
						t.Fatalf("d%d: sensors disagree on timestamps", d)
					}
				}
			}
			prev = times
		}
		if len(prev) > 0 {
			sawData = true
		}
	}
	if !sawData {
		t.Fatal("no device received any data")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	e := newEngine(t, "backward")
	if _, err := Run(EngineTarget{e}, Config{Dataset: "nope", Seed: 4}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BatchSize != 500 {
		t.Fatalf("default batch size = %d, want the paper's 500", c.BatchSize)
	}
	if c.Clients != 1 || c.Devices <= 0 || c.SensorsPerDevice <= 0 || c.Operations <= 0 || c.WindowTicks <= 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	// The legacy Sensors field seeds Devices.
	c2 := Config{Sensors: 7}.withDefaults()
	if c2.Devices != 7 {
		t.Fatalf("Sensors alias ignored: %+v", c2)
	}
}

func TestStreamWraps(t *testing.T) {
	e := newEngine(t, "backward")
	// More writes than generated points forces stream wrap-around.
	res, err := Run(EngineTarget{e}, Config{
		WritePercent: 1.0,
		BatchSize:    500,
		Operations:   30,
		Sensors:      1,
		Dataset:      "samsung-d5",
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PointsWritten != 15000 {
		t.Fatalf("points written = %d", res.PointsWritten)
	}
}
