// Package stream implements out-of-order sliding-window aggregation —
// the alternative approach to late data the paper contrasts with
// (Section VII-B cites Tangwongsan et al.'s out-of-order window
// aggregation): instead of buffering and sorting, a streaming operator
// folds each event into its window's partial aggregate on arrival and
// emits a window once the watermark passes its end plus an allowed
// lateness. Events later than the allowed lateness are dropped and
// counted, mirroring the accuracy/latency trade-off the paper
// describes for sliding windows.
//
// The engine-based path (sort with Backward-Sort, then aggregate with
// the query package) and this streaming path produce identical results
// whenever every delay is within the allowed lateness — a property the
// tests pin down.
package stream

import (
	"fmt"
	"sort"

	"repro/internal/query"
)

// WindowResult mirrors query.WindowResult for emitted windows.
type WindowResult = query.WindowResult

// Aggregator configures a streaming windowed aggregation.
type Aggregator struct {
	window   int64
	lateness int64
	agg      query.Aggregator
	emit     func(WindowResult)

	watermark int64
	started   bool
	pending   map[int64]*acc
	dropped   int64
	emitted   int64
}

// acc is one window's running aggregate.
type acc struct {
	count int
	value float64
}

// NewAggregator creates a streaming aggregator with tumbling windows
// [k·window, (k+1)·window); emit is called exactly once per non-empty
// window, in window order, once the watermark passes the window end
// plus the allowed lateness.
func NewAggregator(window, allowedLateness int64, agg query.Aggregator, emit func(WindowResult)) (*Aggregator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("stream: window must be positive, got %d", window)
	}
	if allowedLateness < 0 {
		return nil, fmt.Errorf("stream: negative lateness %d", allowedLateness)
	}
	switch agg {
	case query.Count, query.Sum, query.Avg, query.Min, query.Max:
	default:
		// First/Last depend on arrival order under disorder; a
		// streaming operator cannot provide the sorted-order
		// semantics, so refuse rather than silently differ.
		return nil, fmt.Errorf("stream: aggregator %v needs sorted input; use the query package", agg)
	}
	if emit == nil {
		return nil, fmt.Errorf("stream: emit callback is required")
	}
	return &Aggregator{
		window:   window,
		lateness: allowedLateness,
		agg:      agg,
		emit:     emit,
		pending:  make(map[int64]*acc),
	}, nil
}

// windowStart floors t to its window start (handles negatives).
func (a *Aggregator) windowStart(t int64) int64 {
	ws := t / a.window * a.window
	if t < 0 && t%a.window != 0 {
		ws -= a.window
	}
	return ws
}

// Insert folds one event in. Events whose window already closed
// (watermark > window end + lateness) are dropped and counted.
func (a *Aggregator) Insert(t int64, v float64) {
	if a.started && t <= a.watermark-a.lateness {
		// The watermark is the max event time seen; a window closes
		// when watermark - lateness passes its end.
		if a.windowStart(t)+a.window <= a.watermark-a.lateness {
			a.dropped++
			return
		}
	}
	ws := a.windowStart(t)
	w, ok := a.pending[ws]
	if !ok {
		w = &acc{}
		a.pending[ws] = w
	}
	w.count++
	switch a.agg {
	case query.Count:
		w.value = float64(w.count)
	case query.Sum, query.Avg:
		w.value += v
	case query.Min:
		if w.count == 1 || v < w.value {
			w.value = v
		}
	case query.Max:
		if w.count == 1 || v > w.value {
			w.value = v
		}
	}
	if !a.started || t > a.watermark {
		a.watermark = t
		a.started = true
		a.drain()
	}
}

// drain emits every pending window whose end+lateness the watermark
// has passed, in window order.
func (a *Aggregator) drain() {
	var due []int64
	for ws := range a.pending {
		if ws+a.window+a.lateness <= a.watermark {
			due = append(due, ws)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, ws := range due {
		a.flushWindow(ws)
	}
}

func (a *Aggregator) flushWindow(ws int64) {
	w := a.pending[ws]
	delete(a.pending, ws)
	out := WindowResult{Start: ws, Count: w.count, Value: w.value}
	if a.agg == query.Avg && w.count > 0 {
		out.Value /= float64(w.count)
	}
	a.emitted++
	a.emit(out)
}

// Close flushes every remaining window (end of stream), in order.
func (a *Aggregator) Close() {
	var rest []int64
	for ws := range a.pending {
		rest = append(rest, ws)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, ws := range rest {
		a.flushWindow(ws)
	}
}

// Dropped reports how many events arrived too late and were discarded.
func (a *Aggregator) Dropped() int64 { return a.dropped }

// Emitted reports how many windows have been emitted.
func (a *Aggregator) Emitted() int64 { return a.emitted }

// Watermark returns the max event time observed.
func (a *Aggregator) Watermark() int64 { return a.watermark }
