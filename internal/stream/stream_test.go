package stream

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/query"
)

func collect() (*[]WindowResult, func(WindowResult)) {
	var out []WindowResult
	return &out, func(w WindowResult) { out = append(out, w) }
}

func TestOrderedStreamBasic(t *testing.T) {
	got, emit := collect()
	a, err := NewAggregator(10, 0, query.Avg, emit)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		a.Insert(i, float64(i))
	}
	a.Close()
	if len(*got) != 3 {
		t.Fatalf("windows = %+v", *got)
	}
	if (*got)[0].Value != 4.5 || (*got)[1].Value != 14.5 || (*got)[2].Value != 24.5 {
		t.Fatalf("averages = %+v", *got)
	}
	if a.Dropped() != 0 || a.Emitted() != 3 {
		t.Fatalf("stats: dropped %d emitted %d", a.Dropped(), a.Emitted())
	}
}

func TestEmitOrderAndWatermark(t *testing.T) {
	got, emit := collect()
	// Lateness 30 covers every delay in the event sequence below.
	a, err := NewAggregator(10, 30, query.Count, emit)
	if err != nil {
		t.Fatal(err)
	}
	// Out of order across four windows; max delay is 9 arriving after
	// watermark 21 (12 late).
	for _, tt := range []int64{3, 15, 7, 21, 9, 36} {
		a.Insert(tt, 0)
	}
	if a.Watermark() != 36 {
		t.Fatalf("watermark = %d", a.Watermark())
	}
	a.Close()
	if a.Dropped() != 0 {
		t.Fatalf("dropped = %d", a.Dropped())
	}
	// Windows 0,10,20,30 all non-empty and in order.
	starts := []int64{0, 10, 20, 30}
	counts := []int{3, 1, 1, 1}
	if len(*got) != 4 {
		t.Fatalf("windows = %+v", *got)
	}
	for i, w := range *got {
		if w.Start != starts[i] || w.Count != counts[i] {
			t.Fatalf("emit order/content wrong: %+v", *got)
		}
	}
}

func TestLateEventsDroppedBeyondLateness(t *testing.T) {
	got, emit := collect()
	a, err := NewAggregator(10, 5, query.Sum, emit)
	if err != nil {
		t.Fatal(err)
	}
	a.Insert(100, 1) // watermark 100: windows ending <= 95 are closed
	a.Insert(3, 99)  // window [0,10) long closed -> dropped
	a.Insert(97, 2)  // within the open window
	a.Insert(92, 5)  // window [90,100) still open (ends 100 > 95)
	a.Close()
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d", a.Dropped())
	}
	var total float64
	for _, w := range *got {
		total += w.Value
	}
	if total != 8 { // 1+2+5, the 99 was dropped
		t.Fatalf("sum = %g, windows %+v", total, *got)
	}
}

func TestValidation(t *testing.T) {
	_, emit := collect()
	if _, err := NewAggregator(0, 0, query.Avg, emit); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewAggregator(10, -1, query.Avg, emit); err == nil {
		t.Fatal("negative lateness accepted")
	}
	if _, err := NewAggregator(10, 0, query.First, emit); err == nil {
		t.Fatal("order-dependent aggregator accepted")
	}
	if _, err := NewAggregator(10, 0, query.Avg, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
}

func TestNegativeTimestampsWindowing(t *testing.T) {
	// With zero lateness, an event whose window closed behind the
	// watermark is dropped — even at negative timestamps.
	got, emit := collect()
	a, err := NewAggregator(10, 0, query.Count, emit)
	if err != nil {
		t.Fatal(err)
	}
	a.Insert(-5, 0)  // window [-10, 0), watermark -5
	a.Insert(-15, 0) // window [-20, -10) ended at -10 <= -5: dropped
	a.Insert(25, 0)
	a.Close()
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d", a.Dropped())
	}
	if len(*got) != 2 || (*got)[0].Start != -10 || (*got)[1].Start != 20 {
		t.Fatalf("windows = %+v", *got)
	}

	// Enough lateness keeps the same event.
	got2, emit2 := collect()
	a2, err := NewAggregator(10, 20, query.Count, emit2)
	if err != nil {
		t.Fatal(err)
	}
	a2.Insert(-5, 0)
	a2.Insert(-15, 0)
	a2.Insert(25, 0)
	a2.Close()
	if a2.Dropped() != 0 || len(*got2) != 3 || (*got2)[0].Start != -20 {
		t.Fatalf("lateness path: dropped %d windows %+v", a2.Dropped(), *got2)
	}
}

// TestStreamingMatchesSortThenAggregate is the headline property: when
// every delay fits inside the allowed lateness, the streaming operator
// and the sort-then-aggregate path (Backward-Sort inside the engine,
// then query.AggregateWindows) produce identical windows.
func TestStreamingMatchesSortThenAggregate(t *testing.T) {
	s := dataset.SamsungS10(20000, 31) // bounded delays (≤ 29 intervals)
	const window = 50 * 1000           // 50 generation intervals, in ticks

	// Streaming path: generous lateness covers the max delay.
	got, emit := collect()
	a, err := NewAggregator(window, 40*1000, query.Avg, emit)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Times {
		a.Insert(s.Times[i], s.Values[i])
	}
	a.Close()
	if a.Dropped() != 0 {
		t.Fatalf("dropped %d events despite sufficient lateness", a.Dropped())
	}

	// Sort-then-aggregate path.
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 1 << 20, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := range s.Times {
		if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	maxT := s.Times[0]
	for _, tt := range s.Times {
		if tt > maxT {
			maxT = tt
		}
	}
	want, err := query.WindowQuery(e, "s", 0, maxT+1, window, query.Avg)
	if err != nil {
		t.Fatal(err)
	}

	if len(*got) != len(want) {
		t.Fatalf("window counts differ: stream %d vs sorted %d", len(*got), len(want))
	}
	for i := range want {
		g, w := (*got)[i], want[i]
		if g.Start != w.Start || g.Count != w.Count || math.Abs(g.Value-w.Value) > 1e-9 {
			t.Fatalf("window %d differs: stream %+v vs sorted %+v", i, g, w)
		}
	}
}

func TestInsufficientLatenessLosesData(t *testing.T) {
	// The flip side of the equivalence: lateness below the max delay
	// drops events — the accuracy/latency trade-off of Section VII-B.
	s := dataset.CitiBike201808(20000, 31) // delays up to tens of thousands of intervals
	_, emit := collect()
	a, err := NewAggregator(50*1000, 1000, query.Count, emit)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Times {
		a.Insert(s.Times[i], s.Values[i])
	}
	a.Close()
	if a.Dropped() == 0 {
		t.Fatal("heavy disorder with tiny lateness should drop events")
	}
}
