package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", []int64{1, 2, 3}, []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("b", []int64{5}, []float64{-5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Batch
	if err := Replay(path, func(b Batch) error { got = append(got, b); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Sensor != "a" || got[1].Sensor != "b" {
		t.Fatalf("replayed %+v", got)
	}
	if got[0].Times[2] != 3 || got[0].Values[2] != 30 || got[1].Values[0] != -5 {
		t.Fatalf("replayed %+v", got)
	}
}

func TestAppendValidation(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "wal-000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append("a", []int64{1, 2}, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	s.Append("b", []int64{2}, []float64{2})
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the second record: the first must survive,
	// the torn tail must be ignored without error.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var got []Batch
	if err := Replay(path, func(b Batch) error { got = append(got, b); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Sensor != "a" {
		t.Fatalf("torn replay got %+v", got)
	}
}

func TestReplayMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	s.Append("b", []int64{2}, []float64{2})
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[6] ^= 0xFF // inside the first record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(Batch) error { return nil }); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

func TestRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("segment not removed")
	}
}

func TestSegmentsOrdering(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"wal-000000002.log", "wal-000000010.log", "wal-000000001.log"} {
		if err := os.WriteFile(filepath.Join(dir, n), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-WAL file must be ignored.
	os.WriteFile(filepath.Join(dir, "seq-000001.gtsf"), nil, 0o644)
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || filepath.Base(segs[0]) != "wal-000000001.log" || filepath.Base(segs[2]) != "wal-000000010.log" {
		t.Fatalf("segments = %v", segs)
	}
}

func TestAppendEmptyBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", nil, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	count := 0
	if err := Replay(path, func(b Batch) error {
		count++
		if b.Sensor != "a" || len(b.Times) != 0 {
			t.Fatalf("empty batch mangled: %+v", b)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d batches", count)
	}
}

func TestReplayCallbackErrorStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	s.Append("b", []int64{2}, []float64{2})
	s.Close()
	calls := 0
	sentinel := os.ErrClosed
	err = Replay(path, func(Batch) error { calls++; return sentinel })
	if err != sentinel || calls != 1 {
		t.Fatalf("callback error not propagated: calls=%d err=%v", calls, err)
	}
}

func TestSyncAndPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000007.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Path() != path {
		t.Fatalf("Path = %q", s.Path())
	}
	s.Append("a", []int64{1}, []float64{1})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayEmptySegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := Replay(path, func(Batch) error { t.Fatal("callback on empty"); return nil }); err != nil {
		t.Fatal(err)
	}
}
