package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultfs"
)

func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", []int64{1, 2, 3}, []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("b", []int64{5}, []float64{-5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Batch
	if err := Replay(path, func(b Batch) error { got = append(got, b); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Sensor != "a" || got[1].Sensor != "b" {
		t.Fatalf("replayed %+v", got)
	}
	if got[0].Times[2] != 3 || got[0].Values[2] != 30 || got[1].Values[0] != -5 {
		t.Fatalf("replayed %+v", got)
	}
}

func TestAppendValidation(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "wal-000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append("a", []int64{1, 2}, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	s.Append("b", []int64{2}, []float64{2})
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the second record: the first must survive,
	// the torn tail must be ignored without error.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var got []Batch
	if err := Replay(path, func(b Batch) error { got = append(got, b); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Sensor != "a" {
		t.Fatalf("torn replay got %+v", got)
	}
}

func TestReplayMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	s.Append("b", []int64{2}, []float64{2})
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[6] ^= 0xFF // inside the first record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(Batch) error { return nil }); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

func TestRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("segment not removed")
	}
}

func TestSegmentsOrdering(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"wal-000000002.log", "wal-000000010.log", "wal-000000001.log"} {
		if err := os.WriteFile(filepath.Join(dir, n), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-WAL file must be ignored.
	os.WriteFile(filepath.Join(dir, "seq-000001.gtsf"), nil, 0o644)
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || filepath.Base(segs[0]) != "wal-000000001.log" || filepath.Base(segs[2]) != "wal-000000010.log" {
		t.Fatalf("segments = %v", segs)
	}
}

func TestSegmentsNumericOrderPastPadding(t *testing.T) {
	dir := t.TempDir()
	// 10-digit sequence numbers sort lexically BEFORE 9-digit ones
	// ("wal-1000000000" < "wal-999999999"); the numeric sort must not.
	for _, n := range []string{
		"wal-1000000000.log", // seq 1e9, past the 9-digit padding
		"wal-999999999.log",  // seq 999,999,999
		"wal-000000003.log",
		"wal-not-a-seq.log", // non-conforming: skipped
		"wal-12x45.log",     // non-conforming: skipped
	} {
		if err := os.WriteFile(filepath.Join(dir, n), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"wal-000000003.log", "wal-999999999.log", "wal-1000000000.log"}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v", segs)
	}
	for i, w := range want {
		if filepath.Base(segs[i]) != w {
			t.Fatalf("segments[%d] = %s, want %s (full: %v)", i, filepath.Base(segs[i]), w, segs)
		}
	}
}

func TestSeqFromName(t *testing.T) {
	cases := []struct {
		name string
		seq  int
		ok   bool
	}{
		{"wal-000000001.log", 1, true},
		{"wal-1000000000.log", 1000000000, true},
		{"wal-0.log", 0, true},
		{"wal-.log", 0, false},
		{"wal-01a.log", 0, false},
		{"wal-1.txt", 0, false},
		{"seq-000001.gtsf", 0, false},
	}
	for _, c := range cases {
		seq, ok := SeqFromName(c.name)
		if ok != c.ok || (ok && seq != c.seq) {
			t.Errorf("SeqFromName(%q) = %d, %v; want %d, %v", c.name, seq, ok, c.seq, c.ok)
		}
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 64
	var appendMu sync.Mutex // the engine serializes appends under its lock
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			appendMu.Lock()
			err := s.Append("a", []int64{int64(i)}, []float64{float64(i)})
			appendMu.Unlock()
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = s.Commit()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	syncs, commits := s.stats.Syncs.Load(), s.stats.Commits.Load()
	if commits != n {
		t.Fatalf("served %d commits, want %d", commits, n)
	}
	if syncs < 1 || syncs > n {
		t.Fatalf("issued %d syncs for %d commits", syncs, n)
	}
	t.Logf("group commit: %d commits over %d fsyncs (mean group %.1f)", commits, syncs, float64(commits)/float64(syncs))
	// Every committed batch must be durable and replayable.
	count := 0
	if err := Replay(path, func(Batch) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("replayed %d batches, want %d", count, n)
	}
}

func TestCommitAfterRemoveReturnsNil(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	if err := s.Commit(); err != nil { // start the sync loop
		t.Fatal(err)
	}
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("commit on retired segment: %v", err)
	}
}

func TestDurableCreateRemoveSyncsDir(t *testing.T) {
	dir := t.TempDir()
	ops := make(map[string]int)
	var mu sync.Mutex
	fs := &faultfs.HookFS{Under: faultfs.OS, Hook: func(op faultfs.Op, path string) error {
		mu.Lock()
		ops[op.String()]++
		mu.Unlock()
		return nil
	}}
	s, err := CreateFS(fs, filepath.Join(dir, "wal-000000001.log"), Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if ops["syncdir"] != 2 {
		t.Fatalf("durable create+remove must fsync the directory twice, got %d (ops %v)", ops["syncdir"], ops)
	}
}

func TestBatchesAndEmpty(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "wal-000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Empty() || s.Batches() != 0 {
		t.Fatal("fresh segment should be empty")
	}
	s.Append("a", []int64{1}, []float64{1})
	if s.Empty() || s.Batches() != 1 {
		t.Fatalf("after one append: empty=%v batches=%d", s.Empty(), s.Batches())
	}
}

func TestReplayLargeSegmentStreams(t *testing.T) {
	// A multi-record segment with a torn tail: the streaming reader
	// must deliver every intact record in order and stop silently.
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const batches = 200
	for i := 0; i < batches; i++ {
		ts := make([]int64, 50)
		vs := make([]float64, 50)
		for j := range ts {
			ts[j] = int64(i*50 + j)
			vs[j] = float64(j)
		}
		if err := s.Append(fmt.Sprintf("s%d", i%7), ts, vs); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-11], 0o644); err != nil {
		t.Fatal(err)
	}
	got := 0
	var lastFirst int64 = -1
	if err := Replay(path, func(b Batch) error {
		if b.Times[0] <= lastFirst {
			return fmt.Errorf("out of order: %d after %d", b.Times[0], lastFirst)
		}
		lastFirst = b.Times[0]
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != batches-1 {
		t.Fatalf("replayed %d batches, want %d (last one torn)", got, batches-1)
	}
}

func TestAppendEmptyBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", nil, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	count := 0
	if err := Replay(path, func(b Batch) error {
		count++
		if b.Sensor != "a" || len(b.Times) != 0 {
			t.Fatalf("empty batch mangled: %+v", b)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d batches", count)
	}
}

func TestReplayCallbackErrorStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("a", []int64{1}, []float64{1})
	s.Append("b", []int64{2}, []float64{2})
	s.Close()
	calls := 0
	sentinel := os.ErrClosed
	err = Replay(path, func(Batch) error { calls++; return sentinel })
	if err != sentinel || calls != 1 {
		t.Fatalf("callback error not propagated: calls=%d err=%v", calls, err)
	}
}

func TestSyncAndPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000007.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Path() != path {
		t.Fatalf("Path = %q", s.Path())
	}
	s.Append("a", []int64{1}, []float64{1})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayEmptySegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000001.log")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := Replay(path, func(Batch) error { t.Fatal("callback on empty"); return nil }); err != nil {
		t.Fatal(err)
	}
}
