// Package wal implements the storage engine's write-ahead log.
// Apache IoTDB logs every write before acknowledging it so that
// memtable contents survive a crash; this package provides the same
// guarantee for the reproduction's engine. Each memtable generation
// gets its own segment file; once that generation is flushed to a
// chunk file the segment is deleted.
//
// Segment format: a sequence of length-prefixed records,
//
//	uint32 payloadLen | payload | uint32 CRC-32(payload)
//
// where payload = sensor string + TS2Diff times + plain float64
// values (one record per ingested batch). Replay stops at the first
// torn or corrupt record — everything before it is intact, everything
// after it was never acknowledged.
//
// Durability is layered: Append alone survives a process crash (the
// write reaches the OS), Sync survives a machine crash, and Commit is
// the group-commit form of Sync — concurrent committers piggyback on
// one in-flight fsync instead of queueing one fsync each, so
// fsync-per-batch ingestion degrades into fsync-per-group as
// concurrency rises. All file operations go through a faultfs.FS so
// crash tests can kill the "process" at any operation.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/encoding"
	"repro/internal/faultfs"
)

// SyncStats aggregates fsync activity across segments. An engine hands
// the same SyncStats to every segment it creates, so the counters
// describe the whole WAL, not one generation.
type SyncStats struct {
	// Syncs is the number of fsyncs issued on segment files.
	Syncs atomic.Int64
	// Commits is the number of commit tickets served; under group
	// commit, Commits/Syncs is the mean commit-group size.
	Commits atomic.Int64
}

// Options configures a segment beyond its path.
type Options struct {
	// Durable makes segment lifecycle changes survive a machine crash:
	// Create and Remove fsync the parent directory, so a recovered
	// machine agrees with the engine about which segments exist.
	Durable bool
	// Stats receives this segment's fsync counters (nil: counters are
	// kept on a private SyncStats).
	Stats *SyncStats
}

// Segment is an open, appendable WAL segment. Appends must be
// serialized by the caller (the engine appends under its lock);
// Commit, Sync, Close and Remove are safe to call concurrently with
// each other.
type Segment struct {
	fs      faultfs.FS
	f       faultfs.File
	path    string
	durable bool
	stats   *SyncStats
	batches atomic.Int64

	// Group commit: committers send a ticket to commitCh and a lazily
	// started syncer goroutine serves whole groups per fsync. cmu
	// guards the lazy start and the stop handshake.
	cmu      sync.Mutex
	commitCh chan chan error
	stop     chan struct{}
	loopDone chan struct{}
	stopped  bool
}

// maxRecord bounds one WAL record (same spirit as rpc.MaxFrame).
const maxRecord = 64 << 20

// Create opens a fresh segment at path on the real filesystem,
// truncating any previous file.
func Create(path string) (*Segment, error) {
	return CreateFS(faultfs.OS, path, Options{})
}

// CreateFS opens a fresh segment at path through fs.
func CreateFS(fs faultfs.FS, path string, opts Options) (*Segment, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	if opts.Durable {
		if err := fs.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	stats := opts.Stats
	if stats == nil {
		stats = &SyncStats{}
	}
	return &Segment{fs: fs, f: f, path: path, durable: opts.Durable, stats: stats}, nil
}

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// Batches returns how many records have been appended to this segment.
func (s *Segment) Batches() int64 { return s.batches.Load() }

// Empty reports whether the segment has no appended records — i.e.
// deleting it provably cannot lose acknowledged writes.
func (s *Segment) Empty() bool { return s.batches.Load() == 0 }

// Append logs one batch. The write goes straight to the OS so a
// process crash (not machine crash) loses nothing; call Sync or Commit
// for machine-crash durability.
func (s *Segment) Append(sensor string, times []int64, values []float64) error {
	if len(times) != len(values) {
		return fmt.Errorf("wal: batch shape mismatch: %d times, %d values", len(times), len(values))
	}
	payload := binary.AppendUvarint(nil, uint64(len(sensor)))
	payload = append(payload, sensor...)
	payload = encoding.AppendTS2Diff(payload, times)
	payload = encoding.AppendPlainFloat64(payload, values)
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record too large: %d bytes", len(payload))
	}
	rec := make([]byte, 4, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	rec = append(rec, crc[:]...)
	if _, err := s.f.Write(rec); err != nil {
		return err
	}
	s.batches.Add(1)
	return nil
}

// Sync forces the segment to stable storage with a dedicated fsync.
// Prefer Commit on hot paths — it coalesces concurrent callers.
func (s *Segment) Sync() error {
	s.stats.Syncs.Add(1)
	return s.f.Sync()
}

// Commit makes everything appended so far durable, sharing one fsync
// with every other in-flight committer (group commit): the first
// ticket starts a sync round, tickets arriving while that fsync runs
// form the next round. Callers must have finished their Append before
// calling Commit — the fsync that answers a ticket always starts after
// the ticket was queued.
//
// Commit on a retired segment (Close or Remove already called) returns
// nil: segments are retired only once their generation is durable
// elsewhere (flushed and fsynced as a chunk file) or the engine has
// stopped accepting writes.
func (s *Segment) Commit() error {
	s.cmu.Lock()
	if s.stopped {
		s.cmu.Unlock()
		return nil
	}
	if s.commitCh == nil {
		s.commitCh = make(chan chan error)
		s.stop = make(chan struct{})
		s.loopDone = make(chan struct{})
		go s.syncLoop()
	}
	commitCh, stop := s.commitCh, s.stop
	s.cmu.Unlock()

	ticket := make(chan error, 1)
	select {
	case commitCh <- ticket:
		return <-ticket
	case <-stop:
		return nil
	}
}

// syncLoop serves commit tickets: it collects every ticket queued at
// the moment it becomes free, issues one fsync for the whole group,
// and delivers the result to each. Tickets that arrive mid-fsync wait
// for the next round.
func (s *Segment) syncLoop() {
	defer close(s.loopDone)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		var group []chan error
		select {
		case t := <-s.commitCh:
			group = append(group, t)
		case <-s.stop:
			return
		}
		// Coalesce: every committer already blocked on send joins this
		// round.
		for {
			select {
			case t := <-s.commitCh:
				group = append(group, t)
				continue
			default:
			}
			break
		}
		err := s.f.Sync()
		s.stats.Syncs.Add(1)
		s.stats.Commits.Add(int64(len(group)))
		for _, t := range group {
			t <- err
		}
	}
}

// stopSync shuts the group-commit goroutine down (idempotent). Pending
// and future committers get nil — see Commit.
func (s *Segment) stopSync() {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	if s.commitCh != nil {
		close(s.stop)
		<-s.loopDone
	}
}

// Close closes the segment file (without deleting it).
func (s *Segment) Close() error {
	s.stopSync()
	return s.f.Close()
}

// Remove closes and deletes the segment — called once its memtable
// generation is safely flushed.
func (s *Segment) Remove() error {
	s.stopSync()
	if err := s.f.Close(); err != nil {
		return err
	}
	if err := s.fs.Remove(s.path); err != nil {
		return err
	}
	if s.durable {
		return s.fs.SyncDir(filepath.Dir(s.path))
	}
	return nil
}

// Batch is one replayed WAL record.
type Batch struct {
	Sensor string
	Times  []int64
	Values []float64
}

// Replay reads a segment file and invokes fn for each intact batch in
// append order. A torn tail (partial final record, e.g. from a crash
// mid-write) ends the replay silently; a corrupt CRC mid-file is
// reported as an error because it means data loss of acknowledged
// writes.
//
// The file is streamed through a bounded buffer — peak memory is one
// record, not the segment size, so recovering a large generation does
// not double the engine's footprint.
func Replay(path string, fn func(Batch) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [4]byte
	var buf []byte
	offset := int64(0)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end, or torn length prefix
			}
			return err
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:]))
		if plen <= 0 || plen > maxRecord {
			return fmt.Errorf("wal: %s: invalid record length %d at offset %d", path, plen, offset)
		}
		if cap(buf) < plen+4 {
			buf = make([]byte, plen+4)
		}
		buf = buf[:plen+4]
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn tail
			}
			return err
		}
		payload := buf[:plen]
		want := binary.LittleEndian.Uint32(buf[plen:])
		if crc32.ChecksumIEEE(payload) != want {
			// A bad CRC on the very last record is a torn final write;
			// anything following it makes this mid-file corruption.
			if _, err := br.ReadByte(); err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: %s: CRC mismatch at offset %d", path, offset)
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			return fmt.Errorf("wal: %s: offset %d: %w", path, offset, err)
		}
		if err := fn(batch); err != nil {
			return err
		}
		offset += int64(4 + plen + 4)
	}
}

func decodeBatch(payload []byte) (Batch, error) {
	var b Batch
	nameLen, read := binary.Uvarint(payload)
	if read <= 0 || uint64(len(payload)-read) < nameLen {
		return b, errors.New("wal: bad sensor name")
	}
	b.Sensor = string(payload[read : read+int(nameLen)])
	pos := read + int(nameLen)
	times, consumed, err := encoding.DecodeTS2Diff(payload[pos:])
	if err != nil {
		return b, err
	}
	pos += consumed
	values, consumed, err := encoding.DecodePlainFloat64(payload[pos:])
	if err != nil {
		return b, err
	}
	pos += consumed
	if pos != len(payload) {
		return b, fmt.Errorf("wal: %d trailing bytes", len(payload)-pos)
	}
	if len(times) != len(values) {
		return b, errors.New("wal: times/values mismatch")
	}
	b.Times = times
	b.Values = values
	return b, nil
}

// SegmentName returns the canonical file name for a segment sequence
// number: wal-<seq zero-padded to 9 digits>.log. Sequence numbers
// beyond 9 digits simply grow the name; Segments orders numerically,
// so the rollover does not misorder recovery.
func SegmentName(seq int) string {
	return fmt.Sprintf("wal-%09d.log", seq)
}

// SeqFromName parses the sequence number out of a segment file name
// (base name, not path). It returns false for anything that is not
// exactly wal-<digits>.log.
func SeqFromName(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ".log")
	if !ok || digits == "" {
		return 0, false
	}
	for i := 0; i < len(digits); i++ {
		if digits[i] < '0' || digits[i] > '9' {
			return 0, false
		}
	}
	seq, err := strconv.Atoi(digits)
	if err != nil {
		return 0, false // e.g. overflow
	}
	return seq, true
}

// Segments lists the WAL segment files under dir in creation order.
// Order is by parsed sequence number, not lexical — zero padding runs
// out at 10-digit sequence numbers and a lexical sort would then
// replay generations out of order. Files matching the wal-*.log glob
// whose names do not parse as wal-<digits>.log are not ours and are
// skipped.
func Segments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	type seg struct {
		path string
		seq  int
	}
	segs := make([]seg, 0, len(matches))
	for _, path := range matches {
		if seq, ok := SeqFromName(filepath.Base(path)); ok {
			segs = append(segs, seg{path, seq})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.path
	}
	return out, nil
}
