// Package wal implements the storage engine's write-ahead log.
// Apache IoTDB logs every write before acknowledging it so that
// memtable contents survive a crash; this package provides the same
// guarantee for the reproduction's engine. Each memtable generation
// gets its own segment file; once that generation is flushed to a
// chunk file the segment is deleted.
//
// Segment format: a sequence of length-prefixed records,
//
//	uint32 payloadLen | payload | uint32 CRC-32(payload)
//
// where payload = sensor string + TS2Diff times + plain float64
// values (one record per ingested batch). Replay stops at the first
// torn or corrupt record — everything before it is intact, everything
// after it was never acknowledged.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/encoding"
)

// Segment is an open, appendable WAL segment.
type Segment struct {
	f    *os.File
	path string
}

// maxRecord bounds one WAL record (same spirit as rpc.MaxFrame).
const maxRecord = 64 << 20

// Create opens a fresh segment at path, truncating any previous file.
func Create(path string) (*Segment, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Segment{f: f, path: path}, nil
}

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// Append logs one batch. The write goes straight to the OS so a
// process crash (not machine crash) loses nothing; call Sync for
// machine-crash durability.
func (s *Segment) Append(sensor string, times []int64, values []float64) error {
	if len(times) != len(values) {
		return fmt.Errorf("wal: batch shape mismatch: %d times, %d values", len(times), len(values))
	}
	payload := binary.AppendUvarint(nil, uint64(len(sensor)))
	payload = append(payload, sensor...)
	payload = encoding.AppendTS2Diff(payload, times)
	payload = encoding.AppendPlainFloat64(payload, values)
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record too large: %d bytes", len(payload))
	}
	rec := make([]byte, 4, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	rec = append(rec, crc[:]...)
	_, err := s.f.Write(rec)
	return err
}

// Sync forces the segment to stable storage.
func (s *Segment) Sync() error { return s.f.Sync() }

// Close closes the segment file (without deleting it).
func (s *Segment) Close() error { return s.f.Close() }

// Remove closes and deletes the segment — called once its memtable
// generation is safely flushed.
func (s *Segment) Remove() error {
	if err := s.f.Close(); err != nil {
		return err
	}
	return os.Remove(s.path)
}

// Batch is one replayed WAL record.
type Batch struct {
	Sensor string
	Times  []int64
	Values []float64
}

// Replay reads a segment file and invokes fn for each intact batch in
// append order. A torn tail (partial final record, e.g. from a crash
// mid-write) ends the replay silently; a corrupt CRC mid-file is
// reported as an error because it means data loss of acknowledged
// writes.
func Replay(path string, fn func(Batch) error) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	pos := 0
	for pos < len(raw) {
		if len(raw)-pos < 4 {
			return nil // torn tail
		}
		plen := int(binary.LittleEndian.Uint32(raw[pos:]))
		if plen <= 0 || plen > maxRecord {
			return fmt.Errorf("wal: %s: invalid record length %d at offset %d", path, plen, pos)
		}
		if len(raw)-pos < 4+plen+4 {
			return nil // torn tail
		}
		payload := raw[pos+4 : pos+4+plen]
		want := binary.LittleEndian.Uint32(raw[pos+4+plen:])
		if crc32.ChecksumIEEE(payload) != want {
			if pos+4+plen+4 == len(raw) {
				return nil // torn final record
			}
			return fmt.Errorf("wal: %s: CRC mismatch at offset %d", path, pos)
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			return fmt.Errorf("wal: %s: offset %d: %w", path, pos, err)
		}
		if err := fn(batch); err != nil {
			return err
		}
		pos += 4 + plen + 4
	}
	return nil
}

func decodeBatch(payload []byte) (Batch, error) {
	var b Batch
	nameLen, read := binary.Uvarint(payload)
	if read <= 0 || uint64(len(payload)-read) < nameLen {
		return b, errors.New("wal: bad sensor name")
	}
	b.Sensor = string(payload[read : read+int(nameLen)])
	pos := read + int(nameLen)
	times, consumed, err := encoding.DecodeTS2Diff(payload[pos:])
	if err != nil {
		return b, err
	}
	pos += consumed
	values, consumed, err := encoding.DecodePlainFloat64(payload[pos:])
	if err != nil {
		return b, err
	}
	pos += consumed
	if pos != len(payload) {
		return b, fmt.Errorf("wal: %d trailing bytes", len(payload)-pos)
	}
	if len(times) != len(values) {
		return b, errors.New("wal: times/values mismatch")
	}
	b.Times = times
	b.Values = values
	return b, nil
}

// Segments lists the WAL segment files under dir in creation order
// (they are named wal-<seq>.log).
func Segments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}
