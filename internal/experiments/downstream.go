package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/lstm"
)

// Fig22a reproduces Figure 22(a): the same value series viewed in
// arrival (disordered) order versus time (ordered) order — the
// fluctuation that breaks downstream analytics.
func Fig22a(sc Scale) *Table {
	t := &Table{
		ID:     "fig22a",
		Title:  "Ordered vs disordered view of the same series (first 100 points)",
		Header: []string{"index", "disordered_value", "ordered_value"},
	}
	s := dataset.LogNormal(sc.LSTMPoints, 1, 2, sc.Seed)
	ordered := s.Clone()
	// Order by generation timestamp.
	type tv struct {
		t int64
		v float64
	}
	pairs := make([]tv, ordered.Len())
	for i := range pairs {
		pairs[i] = tv{ordered.Times[i], ordered.Values[i]}
	}
	for i := 1; i < len(pairs); i++ { // insertion sort: fine at this scale
		p := pairs[i]
		j := i - 1
		for j >= 0 && pairs[j].t > p.t {
			pairs[j+1] = pairs[j]
			j--
		}
		pairs[j+1] = p
	}
	n := 100
	if n > s.Len() {
		n = s.Len()
	}
	for i := 0; i < n; i++ {
		t.AddRow(fmt.Sprint(i),
			fmt.Sprintf("%.3f", s.Values[i]),
			fmt.Sprintf("%.3f", pairs[i].v))
	}
	return t
}

// Fig22b reproduces Figure 22(b): LSTM train/test MSE versus the
// disorder level σ of LogNormal(1,σ) delays. σ=0 means no delayed
// points (exactly ordered); larger σ means harder training — the
// downstream benefit of sorted series.
func Fig22b(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "fig22b",
		Title:  fmt.Sprintf("LSTM forecast MSE vs σ, LogNormal(1,σ), n=%d (input 10, hidden 2, 70/30 split)", sc.LSTMPoints),
		Header: []string{"sigma", "train_mse", "test_mse"},
	}
	for _, sigma := range []float64{0, 0.25, 0.5, 1, 2, 4} {
		s := dataset.LogNormal(sc.LSTMPoints, 1, sigma, sc.Seed)
		res, err := lstm.TrainForecast(s.Values, lstm.Config{Seed: sc.Seed, Epochs: 6})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(sigma), fmt.Sprintf("%.4f", res.TrainMSE), fmt.Sprintf("%.4f", res.TestMSE))
	}
	return t, nil
}
