package experiments

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/sortalgo"
)

// WritePercents are the operation mixes the paper sweeps
// (Section VI-D); 1.0 has no queries, so throughput is absent there.
var WritePercents = []float64{0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}

// SystemSpec is one dataset panel of Figures 13–21.
type SystemSpec struct {
	Label     string
	Dataset   string
	Mu, Sigma float64
}

// AbsNormalSpecs are the four AbsNormal panels (Figures 13/16/19).
func AbsNormalSpecs() []SystemSpec {
	return []SystemSpec{
		{"AbsNormal(1,1)", "absnormal", 1, 1},
		{"AbsNormal(1,4)", "absnormal", 1, 4},
		{"AbsNormal(4,1)", "absnormal", 4, 1},
		{"AbsNormal(4,4)", "absnormal", 4, 4},
	}
}

// LogNormalSpecs are the four LogNormal panels (Figures 14/17/20).
func LogNormalSpecs() []SystemSpec {
	return []SystemSpec{
		{"LogNormal(1,1)", "lognormal", 1, 1},
		{"LogNormal(1,4)", "lognormal", 1, 4},
		{"LogNormal(4,1)", "lognormal", 4, 1},
		{"LogNormal(4,4)", "lognormal", 4, 4},
	}
}

// RealWorldSpecs are the four real-world panels (Figures 15/18/21).
func RealWorldSpecs() []SystemSpec {
	return []SystemSpec{
		{"citibike-201808", "citibike-201808", 0, 0},
		{"citibike-201902", "citibike-201902", 0, 0},
		{"samsung-d5", "samsung-d5", 0, 0},
		{"samsung-s10", "samsung-s10", 0, 0},
	}
}

// SystemResultSet is the full grid of one system experiment group:
// per dataset panel, per write percentage, per algorithm.
type SystemResultSet struct {
	Specs   []SystemSpec
	Results map[string]map[float64]map[string]bench.Result // label -> pct -> algo
}

// RunSystemGroup runs the benchmark grid for one group of dataset
// panels. Every (panel, write-percentage, algorithm) cell gets a fresh
// engine so flush statistics do not bleed across cells.
func RunSystemGroup(specs []SystemSpec, sc Scale) (*SystemResultSet, error) {
	set := &SystemResultSet{Specs: specs, Results: make(map[string]map[float64]map[string]bench.Result)}
	for _, spec := range specs {
		set.Results[spec.Label] = make(map[float64]map[string]bench.Result)
		for _, pct := range WritePercents {
			set.Results[spec.Label][pct] = make(map[string]bench.Result)
			for _, algo := range sortalgo.PaperNames() {
				res, err := runSystemCell(spec, pct, algo, sc)
				if err != nil {
					return nil, fmt.Errorf("%s/%.2f/%s: %w", spec.Label, pct, algo, err)
				}
				set.Results[spec.Label][pct][algo] = res
			}
		}
	}
	return set, nil
}

func runSystemCell(spec SystemSpec, pct float64, algo string, sc Scale) (bench.Result, error) {
	dir, err := os.MkdirTemp("", "tsbench-*")
	if err != nil {
		return bench.Result{}, err
	}
	defer os.RemoveAll(dir)
	// ShardCount is pinned to 1: the reproduced figures measure the
	// paper's single-engine configuration (one lock domain, one flush
	// path), not the storage-group scaling the shard layer adds. A
	// 1-shard router is behavior-identical to a bare engine (enforced
	// by TestOneShardRouterMatchesBareEngine), so the figures are
	// unchanged while the repro still exercises the routing layer.
	eng, err := shard.Open(shard.Config{ShardCount: 1, Config: engine.Config{
		Dir:          dir,
		MemTableSize: sc.MemTableSize,
		Algorithm:    algo,
		// Synchronous flushes: on small machines (the CI box has one
		// core) asynchronous drains time-slice against the writer
		// goroutines and the measured per-flush wall time becomes
		// scheduler noise rather than sorting cost. Inline flushing
		// keeps the flush-time metric attributable to the algorithm;
		// the flush still blocks ingestion exactly as IoTDB's sorting
		// step does.
		SyncFlush: true,
		// Paper mode: one flush worker (so per-flush sort time is the
		// algorithm's sequential cost, not pool scheduling) and legacy
		// locked queries (queries sort under the engine lock, blocking
		// writes — the contention Figures 13–15 measure). The
		// engine's default concurrent pipeline is deliberately NOT
		// what the paper benchmarked.
		FlushWorkers:        1,
		LegacyLockedQueries: true,
		// The flat-sort kernel is disabled too: the reproduced figures
		// measure the paper's algorithm through the TVList interface
		// path, not this repository's devirtualized kernel.
		FlatSortThreshold: -1,
		// Legacy v2 chunk layout: the reproduced write path stays
		// byte-for-byte what the paper measured, not the block-indexed
		// v3 format.
		BlockPoints: -1,
	}})
	if err != nil {
		return bench.Result{}, err
	}
	defer eng.Close()
	return bench.Run(bench.EngineTarget{E: eng}, bench.Config{
		WritePercent:     pct,
		BatchSize:        sc.SystemBatch,
		Operations:       sc.SystemOps,
		Devices:          4,
		SensorsPerDevice: 1,
		Dataset:          spec.Dataset,
		Mu:               spec.Mu,
		Sigma:            spec.Sigma,
		WindowTicks:      int64(sc.MemTableSize) * 500, // neighborhood of "current"
		Clients:          2,
		Seed:             sc.Seed,
	})
}

// metric extracts one figure's y-value from a benchmark result.
type metric struct {
	name   string
	get    func(bench.Result) float64
	format string
	// skipWriteOnly: query throughput is undefined at write pct 1.0.
	skipWriteOnly bool
}

var (
	metricThroughput = metric{"query throughput (points/s)", func(r bench.Result) float64 { return r.QueryThroughput }, "%.0f", true}
	metricFlush      = metric{"avg flush time (ms)", func(r bench.Result) float64 { return r.AvgFlushMs }, "%.3f", false}
	metricSort       = metric{"avg sorting time per flush (ms)", func(r bench.Result) float64 { return r.AvgSortMs }, "%.3f", false}
	metricLatency    = metric{"total test latency (s)", func(r bench.Result) float64 { return r.TotalLatency.Seconds() }, "%.3f", false}
)

// tables renders one metric across the grid, one table per panel —
// matching the paper's 4-panel figures.
func (s *SystemResultSet) tables(idPrefix string, m metric) []*Table {
	var out []*Table
	for _, spec := range s.Specs {
		t := &Table{
			ID:     fmt.Sprintf("%s-%s", idPrefix, spec.Label),
			Title:  fmt.Sprintf("%s — %s", m.name, spec.Label),
			Header: append([]string{"write_pct"}, sortalgo.PaperNames()...),
		}
		for _, pct := range WritePercents {
			if m.skipWriteOnly && pct == 1.0 {
				continue
			}
			row := []string{fmt.Sprintf("%.2f", pct)}
			for _, algo := range sortalgo.PaperNames() {
				row = append(row, fmt.Sprintf(m.format, m.get(s.Results[spec.Label][pct][algo])))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// ThroughputTables renders Figures 13/14/15 from a result set.
func (s *SystemResultSet) ThroughputTables(id string) []*Table { return s.tables(id, metricThroughput) }

// FlushTables renders Figures 16/17/18: the wall flush time plus a
// companion table isolating the sorting component — on this substrate
// encode+I/O noise can mask the algorithm, and the sorting component
// is the mechanism the paper's flush improvement comes from.
func (s *SystemResultSet) FlushTables(id string) []*Table {
	return append(s.tables(id, metricFlush), s.tables(id+"-sortonly", metricSort)...)
}

// LatencyTables renders Figures 19/20/21.
func (s *SystemResultSet) LatencyTables(id string) []*Table { return s.tables(id, metricLatency) }
