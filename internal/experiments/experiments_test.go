package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns a scale small enough for unit tests.
func tiny() Scale {
	sc := SmallScale()
	sc.AlgoN = 8000
	sc.TuneN = 20000
	sc.MaxSizeSweep = 100000
	sc.SystemOps = 20
	sc.SystemBatch = 100
	sc.MemTableSize = 1500
	sc.LSTMPoints = 1200
	sc.MCPoints = 50000
	return sc
}

func cell(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	ci := -1
	for i, h := range tab.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("%s: no column %q in %v", tab.ID, col, tab.Header)
	}
	v, err := strconv.ParseFloat(tab.Rows[row][ci], 64)
	if err != nil {
		t.Fatalf("%s: cell %d/%s: %v", tab.ID, row, col, err)
	}
	return v
}

func TestFig2BackwardReducesMoves(t *testing.T) {
	tab := Fig2(tiny())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for r := range tab.Rows {
		if red := cell(t, tab, r, "reduction_pct"); red <= 0 {
			t.Fatalf("row %d: no move reduction (%g%%)", r, red)
		}
	}
}

func TestFig5PDFMatchesAnalytic(t *testing.T) {
	tab := Fig5(tiny())
	if len(tab.Rows) != 33 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Peak bucket (t≈0) empirical density should be near analytic.
	mid := len(tab.Rows) / 2
	for _, l := range []string{"l1", "l2", "l3"} {
		a := cell(t, tab, mid, "analytic_"+l)
		e := cell(t, tab, mid, "empirical_"+l)
		if e < a*0.5 || e > a*1.5 {
			t.Fatalf("λ=%s: empirical %g vs analytic %g at peak", l, e, a)
		}
	}
}

func TestExample6CloseToTheory(t *testing.T) {
	tab := Example6(tiny())
	for r := range tab.Rows {
		emp := cell(t, tab, r, "alpha_empirical")
		theo := cell(t, tab, r, "alpha_theoretical")
		if theo > 0.001 && (emp < theo*0.7 || emp > theo*1.3) {
			t.Fatalf("row %d: empirical %g vs theory %g", r, emp, theo)
		}
	}
}

func TestExample7OverlapBound(t *testing.T) {
	tab := Example7(tiny())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for r := range tab.Rows {
		q := cell(t, tab, r, "avg_overlap_Q")
		bound := cell(t, tab, r, "bound_E(dtau|dtau>=0)")
		// Prop. 4 is an expectation bound; allow sampling slack.
		if q > bound*1.5+0.5 {
			t.Fatalf("row %d (%s): Q=%g exceeds bound %g", r, tab.Rows[r][0], q, bound)
		}
	}
}

func TestFig8aIIRDecreasing(t *testing.T) {
	tab := Fig8a(tiny())
	// IIR must be (weakly) decreasing in L for every dataset, and the
	// Samsung datasets must die out quickly while CitiBike persists.
	for _, col := range []string{"samsung-d5", "samsung-s10"} {
		// At L=32 (row index of L=32) samsung IIR should be 0.
		for r := range tab.Rows {
			if tab.Rows[r][0] == "64" {
				if v := cell(t, tab, r, col); v != 0 {
					t.Fatalf("%s IIR at 64 = %g, want 0", col, v)
				}
			}
		}
	}
	for r := range tab.Rows {
		if tab.Rows[r][0] == "64" {
			if v := cell(t, tab, r, "citibike-201808"); v == 0 {
				t.Fatal("citibike IIR already 0 at 64")
			}
		}
	}
}

func TestFig8bExtremesSlower(t *testing.T) {
	tab := Fig8b(tiny())
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// For citibike (disordered), tiny blocks (L=4) must be slower
	// than some intermediate block size.
	first := cell(t, tab, 0, "citibike-201808")
	best := first
	for r := range tab.Rows {
		if v := cell(t, tab, r, "citibike-201808"); v < best {
			best = v
		}
	}
	if best >= first {
		t.Fatalf("no intermediate block size beat L=4: first=%g best=%g", first, best)
	}
}

func TestFig9BackwardCompetitive(t *testing.T) {
	// Wall-clock comparisons flake when the host is loaded (CI shares
	// one core with concurrent benchmarks), so retry a few times and
	// accept the run where scheduling noise did not invert the result.
	// The deterministic version of this claim is
	// sortalgo.TestBackwardNeverMovesMoreThanStraight (move counts).
	var bw, q float64
	for attempt := 0; attempt < 4; attempt++ {
		tabs := Fig9(tiny())
		if len(tabs) != 2 {
			t.Fatal("want 2 panels")
		}
		tab := tabs[0]
		last := len(tab.Rows) - 1
		bw = cell(t, tab, last, "backward")
		q = cell(t, tab, last, "quick")
		if bw < q {
			return // paper shape: backward beats quick at σ=4
		}
	}
	t.Fatalf("backward (%g ms) did not beat quick (%g ms) at σ=4 in any attempt", bw, q)
}

func TestFig10Shapes(t *testing.T) {
	tabs := Fig10(tiny())
	tab := tabs[0]
	// Sort time grows with σ for quick (more disorder, more work).
	lastRow := len(tab.Rows) - 1
	if cell(t, tab, lastRow, "backward") <= 0 {
		t.Fatal("no timing recorded")
	}
	if tab.Rows[0][0] != "ordered" {
		t.Fatalf("first σ row should be 'ordered', got %q", tab.Rows[0][0])
	}
}

func TestFig11AllDatasets(t *testing.T) {
	tab := Fig11(tiny())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 datasets", len(tab.Rows))
	}
}

func TestFig12SizeSweep(t *testing.T) {
	tabs := Fig12(tiny())
	if len(tabs) != 4 {
		t.Fatalf("panels = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 2 { // 10^4, 2*10^4 cap
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
		// Bigger arrays take longer for every algorithm.
		for _, algo := range []string{"backward", "quick"} {
			if cell(t, tab, 1, algo) < cell(t, tab, 0, algo)*0.8 {
				t.Fatalf("%s: %s time shrank with array size", tab.ID, algo)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	sc := tiny()
	theta := AblationTheta(sc)
	if len(theta.Rows) != 7 {
		t.Fatalf("theta rows = %d", len(theta.Rows))
	}
	// Chosen L grows (weakly) as Θ tightens.
	prev := -1.0
	for r := range theta.Rows {
		l := cell(t, theta, r, "chosen_L")
		if prev > 0 && l < prev {
			t.Fatalf("chosen L shrank as Θ tightened: %g after %g", l, prev)
		}
		prev = l
	}
	l0 := AblationL0(sc)
	if len(l0.Rows) != 8 {
		t.Fatalf("l0 rows = %d", len(l0.Rows))
	}
	iir := AblationIIREstimate(sc)
	for r := range iir.Rows {
		if e := cell(t, iir, r, "abs_error"); e > 0.05 {
			t.Fatalf("down-sampled IIR error too large: %g", e)
		}
	}
	al := AblationArrayLen(sc)
	if len(al.Rows) != 6 {
		t.Fatalf("arraylen rows = %d", len(al.Rows))
	}
	for r := range al.Rows {
		if v := cell(t, al, r, "sort_ms"); v <= 0 {
			t.Fatalf("arraylen row %d: no timing", r)
		}
	}
}

func TestSystemGroupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("system grid is slow")
	}
	sc := tiny()
	specs := []SystemSpec{{"LogNormal(1,1)", "lognormal", 1, 1}}
	// Restrict write percents for the smoke test by running the grid
	// and checking structure.
	set, err := RunSystemGroup(specs, sc)
	if err != nil {
		t.Fatal(err)
	}
	th := set.ThroughputTables("fig14")
	fl := set.FlushTables("fig17")
	la := set.LatencyTables("fig20")
	if len(th) != 1 || len(fl) != 2 || len(la) != 1 {
		t.Fatalf("panel counts wrong: %d/%d/%d", len(th), len(fl), len(la))
	}
	// Throughput table omits write pct 1.0.
	if len(th[0].Rows) != len(WritePercents)-1 {
		t.Fatalf("throughput rows = %d", len(th[0].Rows))
	}
	if len(fl[0].Rows) != len(WritePercents) {
		t.Fatalf("flush rows = %d", len(fl[0].Rows))
	}
	// Every cell parses as a float.
	for _, tab := range [][]*Table{th, fl, la} {
		for _, tt := range tab {
			for r := range tt.Rows {
				for c := 1; c < len(tt.Rows[r]); c++ {
					if _, err := strconv.ParseFloat(tt.Rows[r][c], 64); err != nil {
						t.Fatalf("%s cell %d/%d: %v", tt.ID, r, c, err)
					}
				}
			}
		}
	}
}

func TestFig22(t *testing.T) {
	sc := tiny()
	a := Fig22a(sc)
	if len(a.Rows) != 100 {
		t.Fatalf("fig22a rows = %d", len(a.Rows))
	}
	b, err := Fig22b(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 6 {
		t.Fatalf("fig22b rows = %d", len(b.Rows))
	}
	// σ=4 test MSE should exceed σ=0.
	if cell(t, b, 5, "test_mse") <= cell(t, b, 0, "test_mse") {
		t.Fatalf("disorder did not degrade MSE: %v", b.Rows)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "## x — T") || !strings.Contains(out, "1\t2") {
		t.Fatalf("print output: %q", out)
	}
}
