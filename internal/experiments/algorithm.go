package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/delay"
	"repro/internal/inversion"
	"repro/internal/sortalgo"
	"repro/internal/stats"
	"repro/internal/tvlist"
)

// Fig2 reproduces the Figure 2 analysis: record-move counts of the
// straight (bottom-up, untrimmed) merge versus the backward merge on
// delay-only data, both sorting identical blocks first. The paper's
// worked example gives 4M+4 vs 3M+7; here the counts are measured on a
// generated series.
func Fig2(sc Scale) *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "Straight vs Backward merge: record moves (blocks pre-sorted identically)",
		Header: []string{"dataset", "n", "block", "straight_moves", "backward_moves", "reduction_pct"},
	}
	for _, spec := range []struct {
		name      string
		mu, sigma float64
	}{
		{"lognormal", 1, 1},
		{"lognormal", 1, 2},
		{"absnormal", 1, 4},
	} {
		s := algoSeries(spec.name, sc.AlgoN, spec.mu, spec.sigma, sc.Seed)
		block := 256
		straight := core.NewCounter(core.NewPairs(append([]int64(nil), s.Times...), append([]float64(nil), s.Values...)))
		sortalgo.StraightMergeFrom(straight, block)
		backward := core.NewCounter(core.NewPairs(append([]int64(nil), s.Times...), append([]float64(nil), s.Values...)))
		core.BackwardSort(backward, core.Options{FixedBlockSize: block})
		sm, bm := straight.TotalMoves(), backward.TotalMoves()
		red := 100 * (1 - float64(bm)/float64(sm))
		t.AddRow(fmt.Sprintf("%s(%g,%g)", spec.name, spec.mu, spec.sigma),
			fmt.Sprint(sc.AlgoN), fmt.Sprint(block),
			fmt.Sprint(sm), fmt.Sprint(bm), fmt.Sprintf("%.1f", red))
	}
	return t
}

// Fig5 reproduces Figure 5: the PDF of the delay difference Δτ for
// exponential delays τ ~ E(λ), λ ∈ {1,2,3} — analytic f_Δτ(t) =
// (λ/2)e^{−λ|t|} against a Monte Carlo histogram.
func Fig5(sc Scale) *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "PDF of Δτ for τ~E(λ): analytic vs empirical",
		Header: []string{"t", "analytic_l1", "empirical_l1", "analytic_l2", "empirical_l2", "analytic_l3", "empirical_l3"},
	}
	const lo, hi, buckets = -4.0, 4.0, 33
	hists := make([]*stats.Histogram, 3)
	lambdas := []float64{1, 2, 3}
	for i, l := range lambdas {
		h := stats.NewHistogram(lo, hi, buckets)
		e := delay.Exponential{Lambda: l}
		n := sc.MCPoints
		// Pairwise Δτ samples.
		r := newRand(sc.Seed + int64(i))
		for k := 0; k < n; k++ {
			h.Add(e.Sample(r) - e.Sample(r))
		}
		hists[i] = h
	}
	for b := 0; b < buckets; b++ {
		x := hists[0].BucketCenter(b)
		row := []string{fmt.Sprintf("%.2f", x)}
		for i, l := range lambdas {
			e := delay.Exponential{Lambda: l}
			row = append(row,
				fmt.Sprintf("%.4f", e.DeltaTauPDF(x)),
				fmt.Sprintf("%.4f", hists[i].Density(b)))
		}
		t.AddRow(row...)
	}
	return t
}

// Example6 reproduces the Example 6 numbers: empirical interval
// inversion ratios of an exponentially delayed series against the
// closed form E[α_L] = e^{−λL}/2 (λ=2, intervals 1 and 5, as in
// Equations 12–13).
func Example6(sc Scale) *Table {
	t := &Table{
		ID:     "ex6",
		Title:  "Empirical vs theoretical IIR, τ~E(2) (paper Eq. 12–13)",
		Header: []string{"L", "alpha_empirical", "alpha_theoretical"},
	}
	d := delay.Exponential{Lambda: 2}
	s := dataset.Generate("exp2", sc.MCPoints, d, sc.Seed)
	for _, L := range []int{1, 2, 5} {
		emp, _ := inversion.Ratio(s.Times, L)
		theo := d.DeltaTauTail(float64(L))
		t.AddRow(fmt.Sprint(L), fmt.Sprintf("%.6g", emp), fmt.Sprintf("%.6g", theo))
	}
	return t
}

// Example7 validates Proposition 4 with the sorter's own trace: the
// average overlap length Q observed by Backward-Sort's merges is
// bounded by E(Δτ | Δτ ≥ 0). For the discrete uniform delay of the
// paper's Example 7 the bound quantity Σ_k F̄(k) is 5/8.
func Example7(sc Scale) *Table {
	t := &Table{
		ID:     "ex7",
		Title:  fmt.Sprintf("Observed merge overlap vs E(Δτ|Δτ≥0) bound (Prop. 4), n=%d", sc.AlgoN),
		Header: []string{"delay", "avg_overlap_Q", "bound_E(dtau|dtau>=0)"},
	}
	dists := []struct {
		d     delay.Distribution
		bound float64
	}{
		{delay.DiscreteUniform{K: 3}, delay.MeanNonNegDeltaTauMC(delay.DiscreteUniform{K: 3}, 400000, sc.Seed)},
		{delay.Exponential{Lambda: 1}, delay.MeanNonNegDeltaTauMC(delay.Exponential{Lambda: 1}, 400000, sc.Seed)},
		{delay.Exponential{Lambda: 0.2}, delay.MeanNonNegDeltaTauMC(delay.Exponential{Lambda: 0.2}, 400000, sc.Seed)},
		{delay.AbsNormal{Mu: 1, Sigma: 4}, delay.MeanNonNegDeltaTauMC(delay.AbsNormal{Mu: 1, Sigma: 4}, 400000, sc.Seed)},
	}
	for _, spec := range dists {
		s := dataset.Generate(spec.d.Name(), sc.AlgoN, spec.d, sc.Seed)
		p := core.NewPairs(append([]int64(nil), s.Times...), append([]float64(nil), s.Values...))
		// Fixed small blocks keep many boundaries so the average is
		// tight. Q averages over *all* block boundaries (Prop. 4's
		// expectation), including those that needed no merge.
		tr := core.BackwardSort(p, core.Options{FixedBlockSize: 64})
		avgQ := 0.0
		if tr.Blocks > 1 {
			avgQ = float64(tr.OverlapTotal) / float64(tr.Blocks-1)
		}
		t.AddRow(spec.d.Name(), fmt.Sprintf("%.4f", avgQ), fmt.Sprintf("%.4f", spec.bound))
	}
	return t
}

// blockSizes returns powers of two from 2^lo to 2^hi capped at n.
func blockSizes(lo, hi, n int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		L := 1 << e
		if L > n {
			break
		}
		out = append(out, L)
	}
	return out
}

// Fig8a reproduces Figure 8(a): the empirical interval inversion ratio
// α̃_L versus block size for the four real-world datasets.
func Fig8a(sc Scale) *Table {
	t := &Table{
		ID:     "fig8a",
		Title:  fmt.Sprintf("IIR vs block size (n=%d)", sc.TuneN),
		Header: []string{"L"},
	}
	names := dataset.RealWorldNames()
	t.Header = append(t.Header, names...)
	series := make([]*dataset.Series, len(names))
	for i, name := range names {
		series[i], _ = dataset.ByName(name, sc.TuneN, sc.Seed)
	}
	for _, L := range blockSizes(0, 18, sc.TuneN) {
		row := []string{fmt.Sprint(L)}
		for _, s := range series {
			alpha, _ := inversion.EmpiricalRatio(s.Times, L)
			row = append(row, fmt.Sprintf("%.3g", alpha))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig8b reproduces Figure 8(b): Backward-Sort wall time with the block
// size fixed manually (bypassing the set-block-size search), versus
// block size, on the four real-world datasets. L=1 is Insertion-Sort,
// L=n is Quicksort (Figure 6).
func Fig8b(sc Scale) *Table {
	t := &Table{
		ID:     "fig8b",
		Title:  fmt.Sprintf("Sort time (ms) vs fixed block size (n=%d)", sc.TuneN),
		Header: []string{"L"},
	}
	names := dataset.RealWorldNames()
	t.Header = append(t.Header, names...)
	series := make([]*dataset.Series, len(names))
	for i, name := range names {
		series[i], _ = dataset.ByName(name, sc.TuneN, sc.Seed)
	}
	for _, L := range blockSizes(2, 17, sc.TuneN) {
		row := []string{fmt.Sprint(L)}
		for _, s := range series {
			fixed := func(x core.Sortable) { core.BackwardSort(x, core.Options{FixedBlockSize: L}) }
			row = append(row, ms(timeSort(s, fixed, sc.Reps)))
		}
		t.AddRow(row...)
	}
	return t
}

// sigmaSweep runs the Figure 9/10 comparison: sort time of the six
// paper algorithms over σ ∈ {ordered, 0.5, 1, 2, 4} for a fixed μ.
func sigmaSweep(id, title, family string, mu float64, sc Scale) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"sigma"}, sortalgo.PaperNames()...),
	}
	for _, sigma := range []float64{0, 0.5, 1, 2, 4} {
		label := fmt.Sprint(sigma)
		if sigma == 0 {
			label = "ordered"
		}
		s := algoSeries(family, sc.AlgoN, mu, sigma, sc.Seed)
		row := []string{label}
		for _, name := range sortalgo.PaperNames() {
			row = append(row, ms(timeSort(s, sortalgo.MustGet(name), sc.Reps)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig9 reproduces Figure 9: AbsNormal(μ,σ) sort time, μ ∈ {1,4}.
func Fig9(sc Scale) []*Table {
	return []*Table{
		sigmaSweep("fig9a", fmt.Sprintf("Sort time (ms), AbsNormal(1,σ), n=%d", sc.AlgoN), "absnormal", 1, sc),
		sigmaSweep("fig9b", fmt.Sprintf("Sort time (ms), AbsNormal(4,σ), n=%d", sc.AlgoN), "absnormal", 4, sc),
	}
}

// Fig10 reproduces Figure 10: LogNormal(μ,σ) sort time, μ ∈ {1,4}.
func Fig10(sc Scale) []*Table {
	return []*Table{
		sigmaSweep("fig10a", fmt.Sprintf("Sort time (ms), LogNormal(1,σ), n=%d", sc.AlgoN), "lognormal", 1, sc),
		sigmaSweep("fig10b", fmt.Sprintf("Sort time (ms), LogNormal(4,σ), n=%d", sc.AlgoN), "lognormal", 4, sc),
	}
}

// Fig11 reproduces Figure 11: sort time on the four real-world
// datasets.
func Fig11(sc Scale) *Table {
	t := &Table{
		ID:     "fig11",
		Title:  fmt.Sprintf("Sort time (ms), real-world datasets, n=%d", sc.AlgoN),
		Header: append([]string{"dataset"}, sortalgo.PaperNames()...),
	}
	for _, name := range dataset.RealWorldNames() {
		s := algoSeries(name, sc.AlgoN, 0, 0, sc.Seed)
		row := []string{name}
		for _, algo := range sortalgo.PaperNames() {
			row = append(row, ms(timeSort(s, sortalgo.MustGet(algo), sc.Reps)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig12 reproduces Figure 12: sort time versus array size on
// AbsNormal(0,1), LogNormal(0,1), CitiBike-201808 and Samsung-S10.
func Fig12(sc Scale) []*Table {
	specs := []struct {
		id, family string
		mu, sigma  float64
	}{
		{"fig12a", "absnormal", 0, 1},
		{"fig12b", "lognormal", 0, 1},
		{"fig12c", "citibike-201808", 0, 0},
		{"fig12d", "samsung-s10", 0, 0},
	}
	var out []*Table
	for _, spec := range specs {
		t := &Table{
			ID:     spec.id,
			Title:  fmt.Sprintf("Sort time (ms) vs array size, %s", datasetLabel(spec.family, spec.mu, spec.sigma)),
			Header: append([]string{"n"}, sortalgo.PaperNames()...),
		}
		for n := 10000; n <= sc.MaxSizeSweep; n *= 10 {
			s := algoSeries(spec.family, n, spec.mu, spec.sigma, sc.Seed)
			row := []string{fmt.Sprint(n)}
			for _, algo := range sortalgo.PaperNames() {
				row = append(row, ms(timeSort(s, sortalgo.MustGet(algo), sc.Reps)))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

func datasetLabel(family string, mu, sigma float64) string {
	switch family {
	case "absnormal":
		return fmt.Sprintf("AbsNormal(%g,%g)", mu, sigma)
	case "lognormal":
		return fmt.Sprintf("LogNormal(%g,%g)", mu, sigma)
	default:
		return family
	}
}

// AblationTheta sweeps the IIR threshold Θ around the paper's fixed
// Θ̃ = 0.04, reporting the chosen block size and the sort time.
func AblationTheta(sc Scale) *Table {
	t := &Table{
		ID:     "ablation-theta",
		Title:  fmt.Sprintf("Θ sweep, LogNormal(1,2), n=%d", sc.AlgoN),
		Header: []string{"theta", "chosen_L", "search_iters", "time_ms"},
	}
	s := algoSeries("lognormal", sc.AlgoN, 1, 2, sc.Seed)
	for _, theta := range []float64{0.5, 0.2, 0.08, 0.04, 0.02, 0.01, 0.001} {
		var tr core.Trace
		algo := func(x core.Sortable) { tr = core.BackwardSort(x, core.Options{Threshold: theta}) }
		d := timeSort(s, algo, sc.Reps)
		t.AddRow(fmt.Sprint(theta), fmt.Sprint(tr.BlockSize), fmt.Sprint(tr.SearchIterations), ms(d))
	}
	return t
}

// AblationL0 sweeps the initial block size L0 (the paper argues for
// L0 = 4 in Section VI-B).
func AblationL0(sc Scale) *Table {
	t := &Table{
		ID:     "ablation-l0",
		Title:  fmt.Sprintf("L0 sweep, LogNormal(1,2), n=%d", sc.AlgoN),
		Header: []string{"L0", "chosen_L", "search_iters", "time_ms"},
	}
	s := algoSeries("lognormal", sc.AlgoN, 1, 2, sc.Seed)
	for _, l0 := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		var tr core.Trace
		algo := func(x core.Sortable) { tr = core.BackwardSort(x, core.Options{InitialBlockSize: l0}) }
		d := timeSort(s, algo, sc.Reps)
		t.AddRow(fmt.Sprint(l0), fmt.Sprint(tr.BlockSize), fmt.Sprint(tr.SearchIterations), ms(d))
	}
	return t
}

// AblationArrayLen sweeps the TVList array length (Section V-B's
// List<Array> compromise, default 32): tiny arrays pay index
// translation on every access, huge arrays approach a flat buffer.
func AblationArrayLen(sc Scale) *Table {
	t := &Table{
		ID:     "ablation-arraylen",
		Title:  fmt.Sprintf("TVList array length sweep, backward sort, LogNormal(1,2), n=%d", sc.AlgoN),
		Header: []string{"array_len", "sort_ms"},
	}
	s := algoSeries("lognormal", sc.AlgoN, 1, 2, sc.Seed)
	for _, arrayLen := range []int{1, 4, 32, 256, 4096, 65536} {
		var total time.Duration
		reps := sc.Reps
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			l := tvlist.NewWithArrayLen[float64](arrayLen)
			for i := range s.Times {
				l.Put(s.Times[i], s.Values[i])
			}
			t0 := time.Now()
			l.Sort(func(x core.Sortable) { core.BackwardSort(x, core.Options{}) })
			total += time.Since(t0)
			if !core.IsSorted(l) {
				panic("experiments: TVList sort failed")
			}
		}
		t.AddRow(fmt.Sprint(arrayLen), ms(total/time.Duration(reps)))
	}
	return t
}

// AblationIIREstimate compares the down-sampled empirical IIR α̃_L
// against the exact α_L (accuracy of the Example 5 estimator).
func AblationIIREstimate(sc Scale) *Table {
	t := &Table{
		ID:     "ablation-iir",
		Title:  fmt.Sprintf("Exact vs down-sampled IIR, LogNormal(1,2), n=%d", sc.TuneN),
		Header: []string{"L", "alpha_exact", "alpha_downsampled", "abs_error"},
	}
	s := algoSeries("lognormal", sc.TuneN, 1, 2, sc.Seed)
	for _, L := range blockSizes(0, 12, sc.TuneN) {
		exact, _ := inversion.Ratio(s.Times, L)
		emp, _ := inversion.EmpiricalRatio(s.Times, L)
		t.AddRow(fmt.Sprint(L), fmt.Sprintf("%.5g", exact), fmt.Sprintf("%.5g", emp),
			fmt.Sprintf("%.3g", math.Abs(exact-emp)))
	}
	return t
}
