// Package experiments regenerates the data series behind every figure
// in the paper's evaluation (Section VI). Each FigNN function returns
// one or more Tables containing exactly the rows/series the paper
// plots; cmd/repro and cmd/sortlab print them, and bench_test.go wraps
// them in testing.B benchmarks. Sizes are parameterized by Scale so
// the full paper-sized runs and fast CI-sized runs share one code
// path.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sortalgo"
)

// newRand builds a deterministic RNG for one experiment leg.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Table is one figure's data: a header row plus value rows, printed as
// aligned TSV.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print writes the table as tab-separated text with a title banner.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	fmt.Fprintln(w)
}

// Scale sizes an experiment run.
type Scale struct {
	// AlgoN is the array size for the algorithm-only experiments
	// (the paper uses 100,000 — the IoTDB memtable size — for the
	// comparisons and 1,000,000 for parameter tuning).
	AlgoN int
	// TuneN is the array size for the Figure 8 parameter tuning.
	TuneN int
	// MaxSizeSweep caps the Figure 12 size sweep.
	MaxSizeSweep int
	// Reps is how many repetitions each timing averages over.
	Reps int
	// SystemOps is the operation count for the system experiments.
	SystemOps int
	// SystemBatch is the write batch size (paper: 500).
	SystemBatch int
	// MemTableSize is the engine flush threshold.
	MemTableSize int
	// LSTMPoints is the series length for the downstream experiment.
	LSTMPoints int
	// MCPoints is the sample count for the Δτ statistics of Fig. 5 /
	// Example 6 (the paper uses 10^8).
	MCPoints int
	// Seed for reproducibility.
	Seed int64
}

// SmallScale finishes in seconds; used by tests and testing.B.
func SmallScale() Scale {
	return Scale{
		AlgoN:        20000,
		TuneN:        50000,
		MaxSizeSweep: 100000,
		Reps:         1,
		SystemOps:    60,
		SystemBatch:  200,
		MemTableSize: 4000,
		LSTMPoints:   2500,
		MCPoints:     200000,
		Seed:         1,
	}
}

// MediumScale keeps the paper's array sizes for the algorithm figures
// but trims repetition counts and the system grid so a full -fig all
// run records every figure in tens of minutes rather than hours. The
// EXPERIMENTS.md results were produced at this scale.
func MediumScale() Scale {
	return Scale{
		AlgoN:        100000,
		TuneN:        1000000,
		MaxSizeSweep: 10000000,
		Reps:         1,
		SystemOps:    1600,
		SystemBatch:  500,
		MemTableSize: 50000,
		LSTMPoints:   10000,
		MCPoints:     2000000,
		Seed:         1,
	}
}

// PaperScale mirrors the paper's workload sizes (minutes per figure).
func PaperScale() Scale {
	return Scale{
		AlgoN:        100000,
		TuneN:        1000000,
		MaxSizeSweep: 10000000,
		Reps:         3,
		SystemOps:    2000,
		SystemBatch:  500,
		MemTableSize: 100000,
		LSTMPoints:   10000,
		MCPoints:     10000000,
		Seed:         1,
	}
}

// ms formats a duration in milliseconds with 3 decimals.
func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

// timeSort measures the average wall time of algo over reps fresh
// copies of the series, sorting (time, value) records via core.Pairs.
func timeSort(s *dataset.Series, algo sortalgo.Func, reps int) time.Duration {
	if reps < 1 {
		reps = 1
	}
	var total time.Duration
	for r := 0; r < reps; r++ {
		times := append([]int64(nil), s.Times...)
		values := append([]float64(nil), s.Values...)
		p := core.NewPairs(times, values)
		t0 := time.Now()
		algo(p)
		total += time.Since(t0)
		if !core.IsSorted(p) {
			panic("experiments: algorithm failed to sort (bug)")
		}
	}
	return total / time.Duration(reps)
}

// algoSeries builds the named synthetic or real dataset series used by
// the comparison figures.
func algoSeries(name string, n int, mu, sigma float64, seed int64) *dataset.Series {
	switch name {
	case "absnormal":
		if sigma == 0 {
			return dataset.Ordered(n, seed)
		}
		return dataset.AbsNormal(n, mu, sigma, seed)
	case "lognormal":
		return dataset.LogNormal(n, mu, sigma, seed)
	default:
		s, ok := dataset.ByName(name, n, seed)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown dataset %q", name))
		}
		return s
	}
}
