package httpgw

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/ingestq"
	"repro/internal/query"
)

// MaxBody bounds one /write request body. It matches the RPC frame
// bound: a peer cannot force a larger allocation over HTTP than over
// the binary protocol.
const MaxBody = 16 << 20

// Backend is the storage the gateway fronts — a bare engine or the
// shard router. It is the query/insert subset of the RPC server's
// backend, so the same value serves both front ends.
type Backend interface {
	InsertBatch(sensor string, times []int64, values []float64) error
	Query(sensor string, minT, maxT int64) ([]engine.TV, error)
	Stats() engine.Stats
}

// Gateway serves the HTTP ingest front end. Create with New, mount
// Handler on an http.Server, and Close when done.
type Gateway struct {
	backend  Backend
	queue    *ingestq.Queue
	ownQueue bool
	now      func() int64

	writes atomic.Int64 // /write requests that ingested successfully
	points atomic.Int64 // points ingested via /write
}

// New builds a gateway over backend. queue is the bounded dispatch
// queue shared with the RPC server so both front ends saturate — and
// reject — together; pass nil to give the gateway a private queue
// with default bounds (it is closed by Close then).
func New(backend Backend, queue *ingestq.Queue) *Gateway {
	g := &Gateway{backend: backend, queue: queue, now: func() int64 { return time.Now().UnixNano() }}
	if g.queue == nil {
		g.queue = ingestq.New(0, 0)
		g.ownQueue = true
	}
	return g
}

// SetNow overrides the timestamp source for lines without one — tests
// pin it for determinism.
func (g *Gateway) SetNow(now func() int64) { g.now = now }

// Close releases gateway resources: a private queue is drained and
// stopped, a shared one is left to its owner. Call only after the
// http.Server serving Handler has shut down.
func (g *Gateway) Close() {
	if g.ownQueue {
		g.queue.Close()
	}
}

// Handler returns the gateway's routes:
//
//	POST /write  — line-protocol ingest (204, or 429 + Retry-After)
//	GET  /query  — windowed aggregation passthrough (JSON)
//	GET  /stats  — backend + front-end counters (JSON)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /write", g.handleWrite)
	mux.HandleFunc("GET /query", g.handleQuery)
	mux.HandleFunc("GET /stats", g.handleStats)
	return mux
}

// httpError sends a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleWrite ingests a line-protocol payload. The parsed batch is
// submitted to the bounded dispatch queue as one task; a full queue
// answers 429 with the queue's Retry-After estimate, identical in
// policy (and cause) to the RPC server's StatusOverloaded.
func (g *Gateway) handleWrite(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "body too large or unreadable: %v", err)
		return
	}
	pts, err := ParseLineProtocol(body, g.now)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(pts) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	batches := groupBySensor(pts)

	done := make(chan error, 1)
	task := func() {
		var firstErr error
		for _, b := range batches {
			if err := g.backend.InsertBatch(b.sensor, b.times, b.values); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		done <- firstErr
	}
	if err := g.queue.TrySubmit(task); err != nil {
		if errors.Is(err, ingestq.ErrClosed) {
			httpError(w, http.StatusServiceUnavailable, "shutting down")
			return
		}
		retry := g.queue.RetryAfter()
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(retry), 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]any{
			"error":          "overloaded",
			"retry_after_ms": retry.Milliseconds(),
		})
		return
	}
	// Never wait unconditionally: the request may be abandoned by the
	// client, and a submit racing Queue.Close can be accepted yet end
	// up running inside Close (or, losing the race entirely, never) —
	// queue.Done() unblocks this handler in every such case, so
	// http.Server.Shutdown cannot hang on it.
	select {
	case err := <-done:
		if err != nil {
			httpError(w, http.StatusInternalServerError, "insert: %v", err)
			return
		}
	case <-r.Context().Done():
		// Client gone; the insert may still complete in the background,
		// but there is no one left to answer.
		return
	case <-g.queue.Done():
		select {
		case err := <-done: // the task ran during Close's straggler drain
			if err != nil {
				httpError(w, http.StatusInternalServerError, "insert: %v", err)
				return
			}
		default:
			httpError(w, http.StatusServiceUnavailable, "shutting down")
			return
		}
	}
	g.writes.Add(1)
	g.points.Add(int64(len(pts)))
	w.WriteHeader(http.StatusNoContent)
}

// retryAfterSeconds renders a duration as the integer seconds the
// Retry-After header wants, rounding up so a 50ms hint doesn't become
// "retry immediately".
func retryAfterSeconds(d time.Duration) int64 {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

type batch struct {
	sensor string
	times  []int64
	values []float64
}

// groupBySensor folds points into per-sensor insert batches,
// preserving each sensor's arrival order (the engine handles
// out-of-order times; preserving order keeps the common in-order
// case on the engine's fast path).
func groupBySensor(pts []Point) []batch {
	idx := make(map[string]int)
	var out []batch
	for _, p := range pts {
		i, ok := idx[p.Sensor]
		if !ok {
			i = len(out)
			idx[p.Sensor] = i
			out = append(out, batch{sensor: p.Sensor})
		}
		out[i].times = append(out[i].times, p.T)
		out[i].values = append(out[i].values, p.V)
	}
	return out
}

// aggByName maps /query agg parameter values to aggregators, using
// the same names winagg.Op.String() reports.
var aggByName = map[string]query.Aggregator{
	"count": query.Count,
	"sum":   query.Sum,
	"avg":   query.Avg,
	"min":   query.Min,
	"max":   query.Max,
	"first": query.First,
	"last":  query.Last,
}

// windowJSON is one aggregated window in a /query response.
type windowJSON struct {
	Start int64   `json:"start"`
	Count int     `json:"count"`
	Value float64 `json:"value"`
}

// handleQuery answers GET /query?sensor=S&start=A&end=B&window=W&agg=F
// with the windowed aggregation the RPC OpAgg would return, as JSON.
// It goes through query.WindowQuery, so a backend with pushdown
// support (the engine, the shard router) answers from chunk
// statistics exactly as it does for RPC clients.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sensor := q.Get("sensor")
	if sensor == "" {
		httpError(w, http.StatusBadRequest, "missing sensor parameter")
		return
	}
	var startT, endT, window int64
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"start", &startT}, {"end", &endT}, {"window", &window}} {
		v := q.Get(p.name)
		if v == "" {
			httpError(w, http.StatusBadRequest, "missing %s parameter", p.name)
			return
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad %s %q", p.name, v)
			return
		}
		*p.dst = n
	}
	aggName := q.Get("agg")
	if aggName == "" {
		aggName = "avg"
	}
	agg, ok := aggByName[aggName]
	if !ok {
		names := make([]string, 0, len(aggByName))
		for n := range aggByName {
			names = append(names, n)
		}
		sort.Strings(names)
		httpError(w, http.StatusBadRequest, "unknown agg %q (have %v)", aggName, names)
		return
	}
	ws, err := query.WindowQuery(g.backend, sensor, startT, endT, window, agg)
	if err != nil {
		// Parameter mistakes are the client's (400); anything else is a
		// storage/engine fault and must surface as a server error, or
		// monitoring never sees it.
		status := http.StatusInternalServerError
		if errors.Is(err, query.ErrInvalidArgument) {
			status = http.StatusBadRequest
		}
		httpError(w, status, "%v", err)
		return
	}
	out := make([]windowJSON, len(ws))
	for i, win := range ws {
		out[i] = windowJSON{Start: win.Start, Count: win.Count, Value: win.Value}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"sensor": sensor, "agg": aggName, "windows": out})
}

// handleStats reports the backend's stats with the front-end counters
// overlaid: queue depth/capacity and accept/reject totals from the
// shared dispatch queue, plus the gateway's own HTTP counters.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	st := g.backend.Stats()
	qs := g.queue.Stats()
	st.IngestQueueCap = qs.Capacity
	st.IngestQueueDepth = qs.Depth
	st.IngestWorkers = qs.Workers
	st.IngestEnqueued = qs.Enqueued
	st.IngestRejected = qs.Rejected
	st.HTTPWrites = g.writes.Load()
	st.HTTPPoints = g.points.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
