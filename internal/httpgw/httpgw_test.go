package httpgw

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/ingestq"
)

// --- line protocol parser ---

func fixedNow() int64 { return 42 }

func TestParseLineProtocolBasics(t *testing.T) {
	data := []byte("cpu,host=a,region=west usage=0.5 1000\n" +
		"# a comment\n" +
		"\n" +
		"mem free=2048i 2000\n" +
		"cpu,region=west,host=a usage=0.7 3000\n")
	pts, err := ParseLineProtocol(data, fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// Tags sort canonically: both cpu lines land on the same sensor.
	if pts[0].Sensor != "cpu,host=a,region=west.usage" || pts[2].Sensor != pts[0].Sensor {
		t.Fatalf("tag order split the series: %q vs %q", pts[0].Sensor, pts[2].Sensor)
	}
	if pts[1].Sensor != "mem.free" || pts[1].V != 2048 || pts[1].T != 2000 {
		t.Fatalf("integer field parsed wrong: %+v", pts[1])
	}
}

func TestParseLineProtocolDefaultsTimestamp(t *testing.T) {
	pts, err := ParseLineProtocol([]byte("cpu usage=1"), fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].T != 42 {
		t.Fatalf("missing timestamp should use now(): %+v", pts)
	}
}

func TestParseLineProtocolMultiField(t *testing.T) {
	pts, err := ParseLineProtocol([]byte("cpu,host=a user=1,sys=2 5"), fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Sensor != "cpu,host=a.user" || pts[1].Sensor != "cpu,host=a.sys" {
		t.Fatalf("sensors: %q, %q", pts[0].Sensor, pts[1].Sensor)
	}
}

func TestParseLineProtocolEscapes(t *testing.T) {
	pts, err := ParseLineProtocol([]byte(`disk,path=/var\ log used=9 7`), fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Sensor != "disk,path=/var log.used" {
		t.Fatalf("escaped space mishandled: %+v", pts)
	}
}

func TestParseLineProtocolErrors(t *testing.T) {
	for _, bad := range []string{
		"cpu",                   // no fields
		"cpu usage=abc",         // non-numeric value
		"cpu usage=\"s\" 1",     // string value
		", usage=1",             // empty measurement
		"cpu,host usage=1",      // tag without value
		"cpu,h=a,h=b usage=1",   // duplicate tag
		"cpu usage=1 notatime",  // bad timestamp
		"cpu usage=1 1 trailer", // too many sections
	} {
		if _, err := ParseLineProtocol([]byte(bad), fixedNow); err == nil {
			t.Errorf("line %q parsed without error", bad)
		}
	}
}

// --- gateway over a real engine ---

func newTestGateway(t *testing.T, q *ingestq.Queue) (*Gateway, *httptest.Server) {
	t.Helper()
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	g := New(e, q)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		srv.Close()
		g.Close()
	})
	return g, srv
}

func TestWriteQueryRoundTrip(t *testing.T) {
	g, srv := newTestGateway(t, nil)
	g.SetNow(fixedNow)

	var lines strings.Builder
	for i := 0; i < 10; i++ {
		lines.WriteString("engine,unit=7 speed=" + strconv.Itoa(i*10) + " " + strconv.Itoa(i) + "\n")
	}
	resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader(lines.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/write status = %d, want 204", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/query?sensor=engine,unit=7.speed&start=0&end=10&window=5&agg=avg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status = %d", resp.StatusCode)
	}
	var out struct {
		Windows []windowJSON `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Windows [0,5) and [5,10): averages of {0..40} and {50..90}.
	if len(out.Windows) != 2 || out.Windows[0].Value != 20 || out.Windows[1].Value != 70 {
		t.Fatalf("windows = %+v", out.Windows)
	}
	if out.Windows[0].Count != 5 || out.Windows[1].Count != 5 {
		t.Fatalf("window counts = %+v", out.Windows)
	}
}

func TestWriteRejectsMalformed(t *testing.T) {
	_, srv := newTestGateway(t, nil)
	resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader("cpu usage=notanumber"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed write status = %d, want 400", resp.StatusCode)
	}
}

// TestWriteOverloadedReturns429: with the shared queue wedged (one
// busy worker, one occupied slot), /write must reject immediately
// with 429 and a Retry-After hint — the HTTP face of the same
// overload policy the RPC path exposes as StatusOverloaded.
func TestWriteOverloadedReturns429(t *testing.T) {
	q := ingestq.New(1, 1)
	defer q.Close()
	_, srv := newTestGateway(t, q)

	release := make(chan struct{})
	started := make(chan struct{})
	if err := q.TrySubmit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := q.TrySubmit(func() {}); err != nil { // occupy the single slot
		t.Fatal(err)
	}
	defer close(release)

	resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader("cpu usage=1 1"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded write status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	var body struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error != "overloaded" || body.RetryAfterMS < 1 {
		t.Fatalf("429 body = %+v", body)
	}
}

func TestStatsReportsFrontendCounters(t *testing.T) {
	g, srv := newTestGateway(t, nil)
	g.SetNow(fixedNow)
	resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader("cpu usage=1 1\ncpu usage=2 2"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/write status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.HTTPWrites != 1 || st.HTTPPoints != 2 {
		t.Fatalf("HTTP counters = %d writes / %d points, want 1/2", st.HTTPWrites, st.HTTPPoints)
	}
	if st.IngestQueueCap != ingestq.DefaultCapacity || st.IngestWorkers < 1 {
		t.Fatalf("queue stats not overlaid: cap=%d workers=%d", st.IngestQueueCap, st.IngestWorkers)
	}
	if st.IngestEnqueued < 1 {
		t.Fatalf("IngestEnqueued = %d, want >= 1", st.IngestEnqueued)
	}
}

func TestQueryParameterValidation(t *testing.T) {
	_, srv := newTestGateway(t, nil)
	for _, path := range []string{
		"/query",          // no sensor
		"/query?sensor=s", // no range
		"/query?sensor=s&start=0&end=10&window=0",         // bad window
		"/query?sensor=s&start=0&end=10&window=x",         // non-numeric
		"/query?sensor=s&start=0&end=10&window=5&agg=p99", // unknown agg
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestMethodRouting: /write is POST-only, /query and /stats GET-only.
func TestMethodRouting(t *testing.T) {
	_, srv := newTestGateway(t, nil)
	resp, err := http.Get(srv.URL + "/write")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /write status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/stats", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status = %d, want 405", resp.StatusCode)
	}
}

// TestSharedQueueDrains: after a burst of writes through a tiny shared
// queue completes, the gateway remains serviceable (no slot leak).
func TestSharedQueueDrains(t *testing.T) {
	q := ingestq.New(4, 2)
	defer q.Close()
	_, srv := newTestGateway(t, q)
	deadline := time.Now().Add(5 * time.Second)
	ok := 0
	for i := 0; i < 20 && time.Now().Before(deadline); i++ {
		resp, err := http.Post(srv.URL+"/write", "text/plain",
			strings.NewReader("cpu usage=1 "+strconv.Itoa(i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNoContent {
			ok++
		} else if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if ok == 0 {
		t.Fatal("no write ever succeeded through the shared queue")
	}
}

// TestWriteAfterQueueCloseReturns503: a gateway whose shared queue has
// been closed sheds writes with 503 instead of hanging on a task that
// will never run.
func TestWriteAfterQueueCloseReturns503(t *testing.T) {
	q := ingestq.New(4, 1)
	_, srv := newTestGateway(t, q)
	q.Close()
	resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader("cpu usage=1 1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write after queue close status = %d, want 503", resp.StatusCode)
	}
}

// TestWriteUnblocksOnClientCancel: an accepted write whose task is
// stuck behind a wedged worker must not pin the handler past the
// request's own lifetime — the handler returns when the client gives
// up.
func TestWriteUnblocksOnClientCancel(t *testing.T) {
	q := ingestq.New(4, 1)
	defer q.Close()
	_, srv := newTestGateway(t, q)

	release := make(chan struct{})
	started := make(chan struct{})
	if err := q.TrySubmit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/write",
		strings.NewReader("cpu usage=1 1"))
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	// Whether the transport reports the cancellation as an error or a
	// truncated response, the handler must have let go promptly.
	if elapsed := time.Since(begin); elapsed > 3*time.Second {
		t.Fatalf("canceled write pinned the handler for %v", elapsed)
	}
}

// failingBackend answers every query with an internal fault.
type failingBackend struct{}

func (failingBackend) InsertBatch(string, []int64, []float64) error { return nil }
func (failingBackend) Query(string, int64, int64) ([]engine.TV, error) {
	return nil, fmt.Errorf("disk on fire")
}
func (failingBackend) Stats() engine.Stats { return engine.Stats{} }

// TestQueryBackendErrorIs500: parameter mistakes are 400s, but a
// storage-side failure must surface as 500 so monitoring sees it.
func TestQueryBackendErrorIs500(t *testing.T) {
	g := New(failingBackend{}, nil)
	t.Cleanup(g.Close)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/query?sensor=s&start=0&end=10&window=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("backend failure status = %d, want 500", resp.StatusCode)
	}

	// An inverted range is the caller's fault and stays a 400.
	resp, err = http.Get(srv.URL + "/query?sensor=s&start=10&end=0&window=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range status = %d, want 400", resp.StatusCode)
	}
}
