// Package httpgw is the HTTP ingest gateway: an InfluxDB-style
// line-protocol write endpoint, a windowed-aggregation query
// endpoint, and a stats endpoint, all in front of the same storage
// backend the binary RPC server fronts. Writes pass through the same
// bounded dispatch queue as pipelined RPC inserts, so the system has
// exactly one overload policy — a full queue rejects the HTTP request
// with 429 Too Many Requests and a Retry-After hint, precisely when
// the RPC path would answer StatusOverloaded.
package httpgw

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Point is one parsed line-protocol sample, flattened to the
// engine's (sensor, time, value) model.
type Point struct {
	Sensor string
	T      int64
	V      float64
}

// ParseLineProtocol parses an InfluxDB-style line-protocol payload:
//
//	measurement[,tag=value...] field=value[,field=value...] [timestamp]
//
// one sample per line. Each (measurement, tags, field) triple becomes
// one engine sensor named
//
//	measurement[,tag=value...].field
//
// with the tags sorted by name, so the same series key arrives at the
// same sensor no matter what order the client listed its tags in.
// Values are floats, or integers with the line-protocol 'i' suffix;
// timestamps are UNIX nanoseconds, defaulting to now() when absent.
// Backslash escapes ('\ ', '\,', '\=') are honored in measurement,
// tag and field names and tag values. Blank lines and '#' comment
// lines are skipped. A malformed line fails the whole payload with an
// error naming the line, so partial writes never slip in silently.
func ParseLineProtocol(data []byte, now func() int64) ([]Point, error) {
	var out []Point
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		var line string
		if i := indexByte(data, '\n'); i >= 0 {
			line, data = string(data[:i]), data[i+1:]
		} else {
			line, data = string(data), nil
		}
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pts, err := parseLine(line, now)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// parseLine parses one non-empty line into one Point per field.
func parseLine(line string, now func() int64) ([]Point, error) {
	sections := splitUnescaped(line, ' ')
	// Collapse runs of spaces between sections (but a space inside an
	// escaped identifier was already protected by splitUnescaped).
	nonEmpty := sections[:0]
	for _, s := range sections {
		if s != "" {
			nonEmpty = append(nonEmpty, s)
		}
	}
	sections = nonEmpty
	if len(sections) < 2 || len(sections) > 3 {
		return nil, fmt.Errorf("expected 'measurement[,tags] fields [timestamp]', got %d sections", len(sections))
	}

	series, err := parseSeriesKey(sections[0])
	if err != nil {
		return nil, err
	}

	ts := int64(0)
	if len(sections) == 3 {
		ts, err = strconv.ParseInt(sections[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad timestamp %q", sections[2])
		}
	} else {
		ts = now()
	}

	fields := splitUnescaped(sections[1], ',')
	if len(fields) == 0 {
		return nil, fmt.Errorf("no fields")
	}
	pts := make([]Point, 0, len(fields))
	for _, f := range fields {
		eq := splitUnescaped(f, '=')
		if len(eq) != 2 || eq[0] == "" {
			return nil, fmt.Errorf("bad field %q", f)
		}
		v, err := parseFieldValue(eq[1])
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", unescape(eq[0]), err)
		}
		pts = append(pts, Point{
			Sensor: series + "." + unescape(eq[0]),
			T:      ts,
			V:      v,
		})
	}
	return pts, nil
}

// parseSeriesKey normalizes "measurement[,tag=value...]" into the
// sensor prefix: tags are sorted by name so tag order never splits a
// series.
func parseSeriesKey(s string) (string, error) {
	parts := splitUnescaped(s, ',')
	if parts[0] == "" {
		return "", fmt.Errorf("empty measurement")
	}
	measurement := unescape(parts[0])
	if len(parts) == 1 {
		return measurement, nil
	}
	type kv struct{ k, v string }
	tags := make([]kv, 0, len(parts)-1)
	for _, p := range parts[1:] {
		eq := splitUnescaped(p, '=')
		if len(eq) != 2 || eq[0] == "" || eq[1] == "" {
			return "", fmt.Errorf("bad tag %q", p)
		}
		tags = append(tags, kv{unescape(eq[0]), unescape(eq[1])})
	}
	sort.Slice(tags, func(a, b int) bool { return tags[a].k < tags[b].k })
	var b strings.Builder
	b.WriteString(measurement)
	for i, t := range tags {
		if i > 0 && tags[i-1].k == t.k {
			return "", fmt.Errorf("duplicate tag %q", t.k)
		}
		b.WriteByte(',')
		b.WriteString(t.k)
		b.WriteByte('=')
		b.WriteString(t.v)
	}
	return b.String(), nil
}

// parseFieldValue accepts a float, or a line-protocol integer with
// the trailing 'i'. Strings and booleans have no home in a
// float-valued engine and are rejected.
func parseFieldValue(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	if strings.HasSuffix(s, "i") {
		n, err := strconv.ParseInt(s[:len(s)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", s)
		}
		return float64(n), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q (floats and 'i'-suffixed integers only)", s)
	}
	return v, nil
}

// splitUnescaped splits s on sep, treating backslash-escaped bytes
// (including escaped separators) as literal content. The escape
// sequences themselves are preserved — unescape strips them later —
// so nested splits on different separators stay correct.
func splitUnescaped(s string, sep byte) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escaped byte
		case sep:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// unescape strips line-protocol backslash escapes.
func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
