// Streaming query execution and aggregation pushdown.
//
// Query and AggregateWindows share one source model: every generation
// that can hold data for a sensor — working memtables, flushing units,
// flushed files — becomes a pointSource yielding records in
// nondecreasing time order, and a k-way heap merge combines them with
// rank-based newest-wins dedup (sources are ordered newest-first; on
// equal timestamps the lowest rank wins, matching the stable-sort
// semantics the engine has always had). File sources decode one chunk
// at a time, so a long range scan holds one chunk's points in memory
// per file rather than materializing everything before sorting.
//
// AggregateWindows additionally prunes: a chunk whose index entry
// carries value statistics is answered from those statistics — without
// decoding — when the stats provably equal the chunk's contribution to
// the deduplicated stream. The condition (checked in
// statsEligible) is:
//
//  1. the chunk's time range lies entirely inside the query range and
//     inside a single window bucket, so every one of its points lands
//     in that window;
//  2. no other source — memtable point, flushing point, or any other
//     chunk of the same sensor — has a timestamp inside the chunk's
//     [MinTime, MaxTime]. Overlap from a *newer* source could shadow
//     the chunk's points; overlap from an *older* source could itself
//     be shadowed; either way the per-point outcome differs from the
//     raw statistics, so any overlap disqualifies;
//  3. the chunk has statistics at all — chunks with internal duplicate
//     timestamps are written without them, because dedup would drop
//     points the statistics counted.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/memtable"
	"repro/internal/tsfile"
	"repro/internal/tvlist"
	"repro/internal/winagg"
)

// pointSource yields (time, value) records in nondecreasing time
// order. next returns ok=false when exhausted.
type pointSource interface {
	next() (TV, bool, error)
}

// sliceSource streams a materialized, sorted []TV (memtable and
// flushing-unit scans).
type sliceSource struct {
	buf []TV
	pos int
}

func (s *sliceSource) next() (TV, bool, error) {
	if s.pos >= len(s.buf) {
		return TV{}, false, nil
	}
	tv := s.buf[s.pos]
	s.pos++
	return tv, true, nil
}

// fileSource streams one file's chunks for a sensor, decoding lazily
// chunk by chunk. It relies on the tsfile invariant (enforced at write
// and load time) that a sensor's chunks appear in the index in
// nondecreasing time order.
type fileSource struct {
	e          *Engine
	fh         *fileHandle
	chunks     []tsfile.ChunkMeta
	minT, maxT int64
	buf        []TV
	pos        int
}

func (s *fileSource) next() (TV, bool, error) {
	for {
		if s.pos < len(s.buf) {
			tv := s.buf[s.pos]
			s.pos++
			return tv, true, nil
		}
		if len(s.chunks) == 0 {
			return TV{}, false, nil
		}
		m := s.chunks[0]
		s.chunks = s.chunks[1:]
		ts, vs, err := s.fh.reader.ReadChunk(m)
		if err != nil {
			return TV{}, false, err
		}
		s.e.chunksDecoded.Add(1)
		s.buf = s.buf[:0]
		s.pos = 0
		for i, t := range ts {
			if t >= s.minT && t <= s.maxT {
				s.buf = append(s.buf, TV{t, vs[i]})
			}
		}
	}
}

// mergeHead is one heap slot: the head record of a source plus the
// source's rank (its position in the newest-first ordering).
type mergeHead struct {
	tv   TV
	rank int
	src  pointSource
}

// merge is a k-way heap merge with newest-wins dedup. Sources must be
// passed newest-first; each yields nondecreasing timestamps.
type merge struct {
	heads   []mergeHead
	emitted bool
	lastT   int64
}

func newMerge(sources []pointSource) (*merge, error) {
	m := &merge{}
	for rank, src := range sources {
		tv, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.heads = append(m.heads, mergeHead{tv, rank, src})
		}
	}
	for i := len(m.heads)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m, nil
}

// less orders heads by (time, rank): earliest first, and on equal
// timestamps the newest source first — the record dedup keeps.
func (m *merge) less(a, b int) bool {
	if m.heads[a].tv.T != m.heads[b].tv.T {
		return m.heads[a].tv.T < m.heads[b].tv.T
	}
	return m.heads[a].rank < m.heads[b].rank
}

func (m *merge) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(m.heads) && m.less(l, min) {
			min = l
		}
		if r < len(m.heads) && m.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		m.heads[i], m.heads[min] = m.heads[min], m.heads[i]
		i = min
	}
}

// next returns the next deduplicated record in time order.
func (m *merge) next() (TV, bool, error) {
	for len(m.heads) > 0 {
		head := m.heads[0]
		tv, ok, err := head.src.next()
		if err != nil {
			return TV{}, false, err
		}
		if ok {
			m.heads[0].tv = tv
		} else {
			last := len(m.heads) - 1
			m.heads[0] = m.heads[last]
			m.heads = m.heads[:last]
		}
		m.siftDown(0)
		if m.emitted && head.tv.T == m.lastT {
			continue // a newer source already supplied this timestamp
		}
		m.emitted = true
		m.lastT = head.tv.T
		return head.tv, true, nil
	}
	return TV{}, false, nil
}

// querySources is one query's snapshot of the engine: materialized
// memtable/flushing scans (newest-first) and pinned file handles
// (newest-first). release must be called when the query finishes.
type querySources struct {
	mem   [][]TV
	files []*fileHandle
}

func (qs *querySources) release() {
	for _, fh := range qs.files {
		fh.release()
	}
}

// gatherSources snapshots every source that may hold records of sensor
// in [minT, maxT], ordered newest generation first (within a
// generation, unsequence before sequence). The engine lock is held
// only to snapshot; sorting and scanning of snapshotted chunks happen
// after it is released. Config.LegacyLockedQueries restores the
// paper's behavior of sorting the live working TVLists under the lock.
func (e *Engine) gatherSources(sensor string, minT, maxT int64) (*querySources, error) {
	qs := &querySources{}

	e.lockContended(true)
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: closed")
	}
	var workChunks []*tvlist.TVList[float64]
	if e.cfg.LegacyLockedQueries {
		for _, mt := range []*memtable.MemTable{e.workingUn, e.working} {
			if chunk := mt.Chunk(sensor); chunk != nil {
				e.sortChunk(chunk)
				if out := scanChunk(chunk, minT, maxT); len(out) > 0 {
					qs.mem = append(qs.mem, out)
				}
			}
		}
	} else {
		for _, mt := range []*memtable.MemTable{e.workingUn, e.working} {
			if c := mt.SnapshotChunk(sensor); c != nil {
				workChunks = append(workChunks, c)
			}
		}
	}
	unitRefs := append([]*flushUnit(nil), e.flushing...)
	for i := len(e.files) - 1; i >= 0; i-- {
		fh := e.files[i]
		fh.acquire()
		qs.files = append(qs.files, fh)
	}
	e.mu.Unlock()

	// Snapshotted working chunks: sorted and scanned outside the lock;
	// writers proceed in parallel.
	for _, c := range workChunks {
		e.sortChunk(c)
		if out := scanChunk(c, minT, maxT); len(out) > 0 {
			qs.mem = append(qs.mem, out)
		}
	}

	// Flushing units newest-first, so an in-flight rewrite outranks
	// the older in-flight generation it rewrites.
	for i := len(unitRefs) - 1; i >= 0; i-- {
		unit := unitRefs[i]
		for _, mt := range []*memtable.MemTable{unit.unseq, unit.seq} {
			chunk := mt.Chunk(sensor)
			if chunk == nil {
				continue
			}
			mu := unit.lockChunk(chunk)
			mu.Lock()
			e.sortChunk(chunk)
			out := scanChunk(chunk, minT, maxT)
			mu.Unlock()
			if len(out) > 0 {
				qs.mem = append(qs.mem, out)
			}
		}
	}
	return qs, nil
}

// overlapping returns fh's chunks for sensor that intersect
// [minT, maxT], in index (time) order.
func overlapping(fh *fileHandle, sensor string, minT, maxT int64) []tsfile.ChunkMeta {
	var out []tsfile.ChunkMeta
	for _, m := range fh.index {
		if m.Sensor == sensor && m.MaxTime >= minT && m.MinTime <= maxT {
			out = append(out, m)
		}
	}
	return out
}

// anyPointIn reports whether the sorted scan holds a timestamp in
// [lo, hi].
func anyPointIn(scan []TV, lo, hi int64) bool {
	i := sort.Search(len(scan), func(i int) bool { return scan[i].T >= lo })
	return i < len(scan) && scan[i].T <= hi
}

// statsContrib is one stats-answered chunk, folded into its window at
// minTime (sound: no other contribution lies inside the chunk's
// range, so time order is preserved).
type statsContrib struct {
	minTime int64
	count   int
	stats   *tsfile.ValueStats
}

// AggregateWindows evaluates op over window-sized buckets of the
// half-open range [startT, endT): windows start at
// startT + k·window, empty windows are omitted, and results arrive in
// start order. When the same timestamp appears in multiple generations
// the newest write wins, exactly as in Query.
//
// Chunks whose statistics provably equal their contribution to the
// deduplicated stream (see statsEligible) are answered from the index
// without decoding; everything else streams through the same merge
// Query uses, so memory stays O(windows) + one chunk per file.
func (e *Engine) AggregateWindows(sensor string, startT, endT, window int64, op winagg.Op) ([]winagg.Window, error) {
	if window <= 0 {
		return nil, fmt.Errorf("engine: window must be positive, got %d", window)
	}
	if !op.Valid() {
		return nil, fmt.Errorf("engine: unknown aggregate op %d", int(op))
	}
	if err := e.FlushError(); err != nil {
		return nil, err
	}
	if endT <= startT {
		return nil, nil
	}
	maxT := endT - 1 // endT > startT, so this cannot underflow

	qs, err := e.gatherSources(sensor, startT, maxT)
	if err != nil {
		return nil, err
	}
	defer qs.release()

	// Partition each file's overlapping chunks into stats-answered and
	// must-decode. The overlap check needs every candidate chunk across
	// all files: any chunk fully inside the query range can only
	// overlap chunks that also intersect the range.
	perFile := make([][]tsfile.ChunkMeta, len(qs.files))
	var all []tsfile.ChunkMeta
	for i, fh := range qs.files {
		perFile[i] = overlapping(fh, sensor, startT, maxT)
		all = append(all, perFile[i]...)
	}
	var contribs []statsContrib
	srcs := make([]pointSource, 0, len(qs.mem)+len(qs.files))
	for _, s := range qs.mem {
		srcs = append(srcs, &sliceSource{buf: s})
	}
	seen := 0
	for i, fh := range qs.files {
		decode := perFile[i][:0]
		for j, m := range perFile[i] {
			if e.statsEligible(m, seen+j, all, qs.mem, startT, maxT, window) {
				contribs = append(contribs, statsContrib{m.MinTime, m.Count, m.Stats})
				e.chunksFromStats.Add(1)
				e.pointsSkipped.Add(int64(m.Count))
			} else {
				decode = append(decode, m)
			}
		}
		seen += len(perFile[i])
		if len(decode) > 0 {
			srcs = append(srcs, &fileSource{e: e, fh: fh, chunks: decode, minT: startT, maxT: maxT})
		}
	}
	sort.Slice(contribs, func(a, b int) bool { return contribs[a].minTime < contribs[b].minTime })

	m, err := newMerge(srcs)
	if err != nil {
		return nil, err
	}
	accs := make(map[int64]*winagg.Acc)
	get := func(ws int64) *winagg.Acc {
		acc := accs[ws]
		if acc == nil {
			acc = &winagg.Acc{Op: op}
			accs[ws] = acc
		}
		return acc
	}
	fold := func(c statsContrib) {
		ws := winagg.WindowStart(startT, c.minTime, window)
		get(ws).AddStats(c.count, c.stats.Min, c.stats.Max, c.stats.Sum, c.stats.First, c.stats.Last)
	}
	ci := 0
	for {
		tv, ok, err := m.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		// A stats chunk whose range precedes this point is complete:
		// eligibility guarantees no point falls inside its range, so
		// minTime <= tv.T implies the whole chunk is earlier.
		for ci < len(contribs) && contribs[ci].minTime <= tv.T {
			fold(contribs[ci])
			ci++
		}
		get(winagg.WindowStart(startT, tv.T, window)).AddPoint(tv.V)
	}
	for ; ci < len(contribs); ci++ {
		fold(contribs[ci])
	}

	starts := make([]int64, 0, len(accs))
	for ws := range accs {
		starts = append(starts, ws)
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	out := make([]winagg.Window, len(starts))
	for i, ws := range starts {
		acc := accs[ws]
		out[i] = winagg.Window{Start: ws, Count: acc.Count(), Value: acc.Result()}
	}
	return out, nil
}

// statsEligible reports whether chunk m (at position self in all) may
// be answered from its index statistics for a window aggregation over
// [startT, maxT] (inclusive): it must carry statistics, lie entirely
// inside the range and inside one window bucket, and no memtable point
// or other chunk of the sensor may have a timestamp inside its
// [MinTime, MaxTime] — any such overlap lets newest-wins dedup change
// the chunk's effective contribution.
func (e *Engine) statsEligible(m tsfile.ChunkMeta, self int, all []tsfile.ChunkMeta, mem [][]TV, startT, maxT, window int64) bool {
	if m.Stats == nil || m.MinTime < startT || m.MaxTime > maxT {
		return false
	}
	if winagg.WindowStart(startT, m.MinTime, window) != winagg.WindowStart(startT, m.MaxTime, window) {
		return false
	}
	for i, o := range all {
		if i == self {
			continue
		}
		if o.MaxTime >= m.MinTime && o.MinTime <= m.MaxTime {
			return false
		}
	}
	for _, scan := range mem {
		if anyPointIn(scan, m.MinTime, m.MaxTime) {
			return false
		}
	}
	return true
}
