// Streaming query execution and aggregation pushdown.
//
// Query and AggregateWindows share one source model: every generation
// that can hold data for a sensor — working memtables, flushing units,
// flushed files — becomes a pointSource yielding records in
// nondecreasing time order, and a k-way heap merge combines them with
// rank-based newest-wins dedup (sources are ordered newest-first; on
// equal timestamps the lowest rank wins, matching the stable-sort
// semantics the engine has always had). File sources decode one chunk
// at a time, so a long range scan holds one chunk's points in memory
// per file rather than materializing everything before sorting.
//
// AggregateWindows additionally prunes: a chunk — or, in v3 blocked
// files, an individual block — whose index entry carries value
// statistics is answered from those statistics, without decoding, when
// the stats provably equal its contribution to the deduplicated
// stream. The condition (checked per candidate span in
// buildAggPlan/spanEligible) is:
//
//  1. the span's time range lies entirely inside the query range and
//     inside a single window bucket, so every one of its points lands
//     in that window;
//  2. no other source — memtable point, flushing point, or any other
//     span of the sensor (another chunk, another chunk's block, or a
//     sibling block sharing a boundary timestamp) — has a timestamp
//     inside the span's [MinTime, MaxTime]. Overlap from a *newer*
//     source could shadow the span's points; overlap from an *older*
//     source could itself be shadowed; either way the per-point
//     outcome differs from the raw statistics, so any overlap
//     disqualifies;
//  3. the span has statistics at all — chunks/blocks with internal
//     duplicate timestamps are written without them, because dedup
//     would drop points the statistics counted.
//
// Block granularity is what makes the pushdown useful on windows much
// smaller than a chunk: a 100k-point chunk whose blocks each span one
// window still answers every fully-covered block from metadata and
// decodes only the two boundary blocks.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/memtable"
	"repro/internal/tsfile"
	"repro/internal/tvlist"
	"repro/internal/winagg"
)

// pointSource yields (time, value) records in nondecreasing time
// order. next returns ok=false when exhausted.
type pointSource interface {
	next() (TV, bool, error)
}

// sliceSource streams a materialized, sorted []TV (memtable and
// flushing-unit scans).
type sliceSource struct {
	buf []TV
	pos int
}

func (s *sliceSource) next() (TV, bool, error) {
	if s.pos >= len(s.buf) {
		return TV{}, false, nil
	}
	tv := s.buf[s.pos]
	s.pos++
	return tv, true, nil
}

// fileSource streams one file's chunks for a sensor, decoding lazily —
// chunk by chunk, and inside v3 blocked chunks block by block, seeking
// past blocks whose time bounds miss [minT, maxT] without any I/O. It
// relies on the tsfile invariant (enforced at write and load time)
// that a sensor's chunks, and a chunk's blocks, appear in
// nondecreasing time order.
//
// blockSets, when non-nil, runs parallel to chunks and pre-selects the
// exact blocks to decode per blocked chunk (the aggregation planner
// uses it to decode only the blocks its statistics could not answer);
// a nil entry falls back to pruning by time range.
type fileSource struct {
	e          *Engine
	fh         *fileHandle
	chunks     []tsfile.ChunkMeta
	blockSets  [][]tsfile.BlockMeta
	minT, maxT int64
	buf        []TV
	pos        int
	cur        tsfile.ChunkMeta  // blocked chunk being streamed
	curBlocks  []tsfile.BlockMeta
	inChunk    bool
}

func (s *fileSource) fill(ts []int64, vs []float64) {
	s.buf = s.buf[:0]
	s.pos = 0
	for i, t := range ts {
		if t >= s.minT && t <= s.maxT {
			s.buf = append(s.buf, TV{t, vs[i]})
		}
	}
}

func (s *fileSource) next() (TV, bool, error) {
	for {
		if s.pos < len(s.buf) {
			tv := s.buf[s.pos]
			s.pos++
			return tv, true, nil
		}
		if s.inChunk {
			if len(s.curBlocks) == 0 {
				s.inChunk = false
				continue
			}
			b := s.curBlocks[0]
			s.curBlocks = s.curBlocks[1:]
			ts, vs, err := s.fh.reader.ReadBlock(s.cur, b)
			if err != nil {
				return TV{}, false, err
			}
			s.e.blocksDecoded.Add(1)
			s.e.bytesRead.Add(b.Size)
			s.fill(ts, vs)
			continue
		}
		if len(s.chunks) == 0 {
			return TV{}, false, nil
		}
		m := s.chunks[0]
		s.chunks = s.chunks[1:]
		var preset []tsfile.BlockMeta
		if s.blockSets != nil {
			preset = s.blockSets[0]
			s.blockSets = s.blockSets[1:]
		}
		if len(m.Blocks) > 0 {
			blocks := preset
			if blocks == nil {
				for _, b := range m.Blocks {
					if b.MaxTime < s.minT || b.MinTime > s.maxT {
						s.e.blocksSkipped.Add(1)
						continue
					}
					blocks = append(blocks, b)
				}
			}
			if len(blocks) > 0 {
				s.e.chunksDecoded.Add(1)
			}
			s.cur = m
			s.curBlocks = blocks
			s.inChunk = true
			continue
		}
		ts, vs, err := s.fh.reader.ReadChunk(m)
		if err != nil {
			return TV{}, false, err
		}
		s.e.chunksDecoded.Add(1)
		s.e.bytesRead.Add(m.Size)
		s.fill(ts, vs)
	}
}

// mergeHead is one heap slot: the head record of a source plus the
// source's rank (its position in the newest-first ordering).
type mergeHead struct {
	tv   TV
	rank int
	src  pointSource
}

// merge is a k-way heap merge with newest-wins dedup. Sources must be
// passed newest-first; each yields nondecreasing timestamps.
type merge struct {
	heads   []mergeHead
	emitted bool
	lastT   int64
}

func newMerge(sources []pointSource) (*merge, error) {
	m := &merge{}
	for rank, src := range sources {
		tv, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.heads = append(m.heads, mergeHead{tv, rank, src})
		}
	}
	for i := len(m.heads)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m, nil
}

// less orders heads by (time, rank): earliest first, and on equal
// timestamps the newest source first — the record dedup keeps.
func (m *merge) less(a, b int) bool {
	if m.heads[a].tv.T != m.heads[b].tv.T {
		return m.heads[a].tv.T < m.heads[b].tv.T
	}
	return m.heads[a].rank < m.heads[b].rank
}

func (m *merge) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(m.heads) && m.less(l, min) {
			min = l
		}
		if r < len(m.heads) && m.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		m.heads[i], m.heads[min] = m.heads[min], m.heads[i]
		i = min
	}
}

// next returns the next deduplicated record in time order.
func (m *merge) next() (TV, bool, error) {
	for len(m.heads) > 0 {
		head := m.heads[0]
		tv, ok, err := head.src.next()
		if err != nil {
			return TV{}, false, err
		}
		if ok {
			m.heads[0].tv = tv
		} else {
			last := len(m.heads) - 1
			m.heads[0] = m.heads[last]
			m.heads = m.heads[:last]
		}
		m.siftDown(0)
		if m.emitted && head.tv.T == m.lastT {
			continue // a newer source already supplied this timestamp
		}
		m.emitted = true
		m.lastT = head.tv.T
		return head.tv, true, nil
	}
	return TV{}, false, nil
}

// querySources is one query's snapshot of the engine: materialized
// memtable/flushing scans (newest-first) and pinned file handles
// (newest-first). release must be called when the query finishes.
type querySources struct {
	mem   [][]TV
	files []*fileHandle
}

func (qs *querySources) release() {
	for _, fh := range qs.files {
		fh.release()
	}
}

// gatherSources snapshots every source that may hold records of sensor
// in [minT, maxT], ordered newest generation first (within a
// generation, unsequence before sequence). The engine lock is held
// only to snapshot; sorting and scanning of snapshotted chunks happen
// after it is released. Config.LegacyLockedQueries restores the
// paper's behavior of sorting the live working TVLists under the lock.
func (e *Engine) gatherSources(sensor string, minT, maxT int64) (*querySources, error) {
	qs := &querySources{}

	e.lockContended(true)
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: closed")
	}
	var workChunks []*tvlist.TVList[float64]
	if e.cfg.LegacyLockedQueries {
		for _, mt := range []*memtable.MemTable{e.workingUn, e.working} {
			if chunk := mt.Chunk(sensor); chunk != nil {
				e.sortChunk(chunk)
				if out := scanChunk(chunk, minT, maxT); len(out) > 0 {
					qs.mem = append(qs.mem, out)
				}
			}
		}
	} else {
		for _, mt := range []*memtable.MemTable{e.workingUn, e.working} {
			if c := mt.SnapshotChunk(sensor); c != nil {
				workChunks = append(workChunks, c)
			}
		}
	}
	unitRefs := append([]*flushUnit(nil), e.flushing...)
	for i := len(e.files) - 1; i >= 0; i-- {
		fh := e.files[i]
		fh.acquire()
		qs.files = append(qs.files, fh)
	}
	e.mu.Unlock()

	// Snapshotted working chunks: sorted and scanned outside the lock;
	// writers proceed in parallel.
	for _, c := range workChunks {
		e.sortChunk(c)
		if out := scanChunk(c, minT, maxT); len(out) > 0 {
			qs.mem = append(qs.mem, out)
		}
	}

	// Flushing units newest-first, so an in-flight rewrite outranks
	// the older in-flight generation it rewrites.
	for i := len(unitRefs) - 1; i >= 0; i-- {
		unit := unitRefs[i]
		for _, mt := range []*memtable.MemTable{unit.unseq, unit.seq} {
			chunk := mt.Chunk(sensor)
			if chunk == nil {
				continue
			}
			mu := unit.lockChunk(chunk)
			mu.Lock()
			e.sortChunk(chunk)
			out := scanChunk(chunk, minT, maxT)
			mu.Unlock()
			if len(out) > 0 {
				qs.mem = append(qs.mem, out)
			}
		}
	}
	return qs, nil
}

// overlapping returns fh's chunks for sensor that intersect
// [minT, maxT], in index (time) order.
func overlapping(fh *fileHandle, sensor string, minT, maxT int64) []tsfile.ChunkMeta {
	var out []tsfile.ChunkMeta
	for _, m := range fh.index {
		if m.Sensor == sensor && m.MaxTime >= minT && m.MinTime <= maxT {
			out = append(out, m)
		}
	}
	return out
}

// anyPointIn reports whether the sorted scan holds a timestamp in
// [lo, hi].
func anyPointIn(scan []TV, lo, hi int64) bool {
	i := sort.Search(len(scan), func(i int) bool { return scan[i].T >= lo })
	return i < len(scan) && scan[i].T <= hi
}

// statsContrib is one stats-answered chunk, folded into its window at
// minTime (sound: no other contribution lies inside the chunk's
// range, so time order is preserved).
type statsContrib struct {
	minTime int64
	count   int
	stats   *tsfile.ValueStats
}

// AggregateWindows evaluates op over window-sized buckets of the
// half-open range [startT, endT): windows start at
// startT + k·window, empty windows are omitted, and results arrive in
// start order. When the same timestamp appears in multiple generations
// the newest write wins, exactly as in Query.
//
// Chunks whose statistics provably equal their contribution to the
// deduplicated stream (see statsEligible) are answered from the index
// without decoding; everything else streams through the same merge
// Query uses, so memory stays O(windows) + one chunk per file.
func (e *Engine) AggregateWindows(sensor string, startT, endT, window int64, op winagg.Op) ([]winagg.Window, error) {
	if window <= 0 {
		return nil, fmt.Errorf("engine: window must be positive, got %d", window)
	}
	if !op.Valid() {
		return nil, fmt.Errorf("engine: unknown aggregate op %d", int(op))
	}
	if err := e.FlushError(); err != nil {
		return nil, err
	}
	if endT <= startT {
		return nil, nil
	}
	maxT := endT - 1 // endT > startT, so this cannot underflow

	qs, err := e.gatherSources(sensor, startT, maxT)
	if err != nil {
		return nil, err
	}
	defer qs.release()

	contribs, srcs := e.buildAggPlan(qs, sensor, startT, maxT, window)
	sort.Slice(contribs, func(a, b int) bool { return contribs[a].minTime < contribs[b].minTime })

	m, err := newMerge(srcs)
	if err != nil {
		return nil, err
	}
	accs := make(map[int64]*winagg.Acc)
	get := func(ws int64) *winagg.Acc {
		acc := accs[ws]
		if acc == nil {
			acc = &winagg.Acc{Op: op}
			accs[ws] = acc
		}
		return acc
	}
	fold := func(c statsContrib) {
		ws := winagg.WindowStart(startT, c.minTime, window)
		get(ws).AddStats(c.count, c.stats.Min, c.stats.Max, c.stats.Sum, c.stats.First, c.stats.Last)
	}
	ci := 0
	for {
		tv, ok, err := m.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		// A stats chunk whose range precedes this point is complete:
		// eligibility guarantees no point falls inside its range, so
		// minTime <= tv.T implies the whole chunk is earlier.
		for ci < len(contribs) && contribs[ci].minTime <= tv.T {
			fold(contribs[ci])
			ci++
		}
		get(winagg.WindowStart(startT, tv.T, window)).AddPoint(tv.V)
	}
	for ; ci < len(contribs); ci++ {
		fold(contribs[ci])
	}

	starts := make([]int64, 0, len(accs))
	for ws := range accs {
		starts = append(starts, ws)
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	out := make([]winagg.Window, len(starts))
	for i, ws := range starts {
		acc := accs[ws]
		out[i] = winagg.Window{Start: ws, Count: acc.Count(), Value: acc.Result()}
	}
	return out, nil
}

// aggSpan is one pruning unit the aggregation planner considers: a
// whole (unblocked) chunk or a single block of a v3 chunk. chunkID
// ties sibling blocks to their chunk so a whole-chunk candidate can
// exclude its own blocks from the overlap check.
type aggSpan struct {
	chunkID    int
	minT, maxT int64
}

// buildAggPlan partitions every overlapping chunk — at block
// granularity where the v3 index allows — into stats-answered
// contributions and decode sources. The overlap check needs every
// candidate span across all files: a span fully inside the query range
// can only be shadowed by spans that also intersect the range.
func (e *Engine) buildAggPlan(qs *querySources, sensor string, startT, maxT, window int64) ([]statsContrib, []pointSource) {
	perFile := make([][]tsfile.ChunkMeta, len(qs.files))
	var spans []aggSpan
	chunkSpanStart := []int{} // span index where each chunkID's spans begin
	chunkID := 0
	for i, fh := range qs.files {
		perFile[i] = overlapping(fh, sensor, startT, maxT)
		for _, m := range perFile[i] {
			chunkSpanStart = append(chunkSpanStart, len(spans))
			if len(m.Blocks) > 0 {
				for _, b := range m.Blocks {
					if b.MaxTime >= startT && b.MinTime <= maxT {
						spans = append(spans, aggSpan{chunkID, b.MinTime, b.MaxTime})
					}
				}
			} else {
				spans = append(spans, aggSpan{chunkID, m.MinTime, m.MaxTime})
			}
			chunkID++
		}
	}

	// shadowFree reports that no span other than the excluded ones, and
	// no memtable/flushing point, has a timestamp inside [lo, hi].
	shadowFree := func(lo, hi int64, exclude func(si int) bool) bool {
		for si, sp := range spans {
			if exclude(si) {
				continue
			}
			if sp.maxT >= lo && sp.minT <= hi {
				return false
			}
		}
		for _, scan := range qs.mem {
			if anyPointIn(scan, lo, hi) {
				return false
			}
		}
		return true
	}
	inOneWindow := func(lo, hi int64) bool {
		return lo >= startT && hi <= maxT &&
			winagg.WindowStart(startT, lo, window) == winagg.WindowStart(startT, hi, window)
	}

	var contribs []statsContrib
	srcs := make([]pointSource, 0, len(qs.mem)+len(qs.files))
	for _, s := range qs.mem {
		srcs = append(srcs, &sliceSource{buf: s})
	}
	chunkID = 0
	for i, fh := range qs.files {
		var decode []tsfile.ChunkMeta
		var decodeBlocks [][]tsfile.BlockMeta
		for _, m := range perFile[i] {
			id := chunkID
			chunkID++
			ownSpan := func(si int) bool {
				return spans[si].chunkID == id
			}
			if m.Stats != nil && inOneWindow(m.MinTime, m.MaxTime) && shadowFree(m.MinTime, m.MaxTime, ownSpan) {
				contribs = append(contribs, statsContrib{m.MinTime, m.Count, m.Stats})
				e.chunksFromStats.Add(1)
				e.pointsSkipped.Add(int64(m.Count))
				continue
			}
			if len(m.Blocks) == 0 {
				decode = append(decode, m)
				decodeBlocks = append(decodeBlocks, nil)
				continue
			}
			// Block granularity: answer what the per-block statistics
			// can, decode the rest, seek past the out-of-range rest.
			si := chunkSpanStart[id]
			var rest []tsfile.BlockMeta
			for _, b := range m.Blocks {
				if b.MaxTime < startT || b.MinTime > maxT {
					e.blocksSkipped.Add(1)
					continue
				}
				self := si
				si++
				if b.Stats != nil && inOneWindow(b.MinTime, b.MaxTime) &&
					shadowFree(b.MinTime, b.MaxTime, func(i int) bool { return i == self }) {
					contribs = append(contribs, statsContrib{b.MinTime, b.Count, b.Stats})
					e.blocksFromStats.Add(1)
					e.pointsSkipped.Add(int64(b.Count))
					continue
				}
				rest = append(rest, b)
			}
			if len(rest) > 0 {
				decode = append(decode, m)
				decodeBlocks = append(decodeBlocks, rest)
			}
		}
		if len(decode) > 0 {
			srcs = append(srcs, &fileSource{e: e, fh: fh, chunks: decode, blockSets: decodeBlocks, minT: startT, maxT: maxT})
		}
	}
	return contribs, srcs
}
