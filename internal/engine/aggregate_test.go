package engine

import (
	"math/rand"
	"testing"

	"repro/internal/delay"
	"repro/internal/winagg"
)

// oracleWindows aggregates the fully materialized (decode-everything)
// result of Query, the semantics AggregateWindows must reproduce
// bit-for-bit regardless of how many chunks it answers from
// statistics.
func oracleWindows(t *testing.T, e *Engine, sensor string, startT, endT, window int64, op winagg.Op) []winagg.Window {
	t.Helper()
	pts, err := e.Query(sensor, startT, endT-1)
	if err != nil {
		t.Fatal(err)
	}
	accs := map[int64]*winagg.Acc{}
	var starts []int64
	for _, p := range pts {
		ws := winagg.WindowStart(startT, p.T, window)
		a := accs[ws]
		if a == nil {
			a = &winagg.Acc{Op: op}
			accs[ws] = a
			starts = append(starts, ws)
		}
		a.AddPoint(p.V)
	}
	var out []winagg.Window
	for _, ws := range starts {
		a := accs[ws]
		out = append(out, winagg.Window{Start: ws, Count: a.Count(), Value: a.Result()})
	}
	// Query returns sorted points and WindowStart is monotone in t, so
	// starts is already sorted.
	return out
}

func sameWindows(a, b []winagg.Window) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkAllOps(t *testing.T, e *Engine, sensor string, startT, endT, window int64) {
	t.Helper()
	for op := winagg.Count; op <= winagg.Last; op++ {
		got, err := e.AggregateWindows(sensor, startT, endT, window, op)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleWindows(t, e, sensor, startT, endT, window, op)
		if !sameWindows(got, want) {
			t.Fatalf("%v [%d,%d) w=%d: pushdown %v != oracle %v", op, startT, endT, window, got, want)
		}
	}
}

// TestAggregatePushdownMatchesOracle drives the pushdown path through
// random delay/disorder scenarios — including cross-generation
// overwrites of already-flushed ranges — and requires exact agreement
// with materialize-then-aggregate for every operator and many random
// window geometries.
func TestAggregatePushdownMatchesOracle(t *testing.T) {
	dists := []delay.Distribution{
		delay.Constant{C: 0}, // fully in order: stats answers dominate
		delay.DiscreteUniform{K: 8},
		delay.Exponential{Lambda: 0.2},
		delay.LogNormal{Mu: 1, Sigma: 1},
	}
	for di, dist := range dists {
		dist := dist
		t.Run(dist.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + di)))
			e := openTest(t, Config{MemTableSize: 64})
			const n = 1500
			for i := 0; i < n; i++ {
				ts := int64(i) - int64(dist.Sample(rng))
				if err := e.Insert("s", ts, float64(ts%131)+0.25); err != nil {
					t.Fatal(err)
				}
			}
			// Cross-generation overwrites: rewrite slices of old,
			// already-flushed time ranges with new values. Newer files
			// must win and must also disqualify the overlapped older
			// chunks from stats-only answers.
			for i := 0; i < 120; i++ {
				ts := int64(rng.Intn(n / 2))
				if err := e.Insert("s", ts, -1000-float64(i)); err != nil {
					t.Fatal(err)
				}
			}
			e.Flush()
			e.WaitFlushes()

			// A broad full-range pass plus random window geometries.
			checkAllOps(t, e, "s", -64, n+64, 100)
			for q := 0; q < 40; q++ {
				startT := int64(rng.Intn(n)) - 32
				endT := startT + int64(rng.Intn(n))
				window := int64(1 + rng.Intn(300))
				checkAllOps(t, e, "s", startT, endT, window)
			}
			// Unflushed tail: memtable points must block stats answers
			// for chunks they overlap, not corrupt them.
			if err := e.Insert("s", int64(n/4), 9999.5); err != nil {
				t.Fatal(err)
			}
			checkAllOps(t, e, "s", 0, n, 64)

			if di == 0 {
				// The in-order scenario must actually exercise the
				// pushdown, or this whole test is vacuous.
				if st := e.Stats(); st.ChunksFromStats == 0 {
					t.Fatal("in-order scenario never answered a chunk from statistics")
				}
			}
		})
	}
}

// TestAggregateWindowsGuards pins the argument contract shared with
// query.WindowQuery.
func TestAggregateWindowsGuards(t *testing.T) {
	e := openTest(t, Config{})
	if err := e.Insert("s", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AggregateWindows("s", 0, 10, 0, winagg.Sum); err == nil {
		t.Fatal("window=0 accepted")
	}
	if _, err := e.AggregateWindows("s", 0, 10, 5, winagg.Op(99)); err == nil {
		t.Fatal("bogus op accepted")
	}
	for _, endT := range []int64{0, -5} {
		ws, err := e.AggregateWindows("s", 0, endT, 5, winagg.Sum)
		if err != nil || ws != nil {
			t.Fatalf("empty range [0,%d): got %v, %v", endT, ws, err)
		}
	}
}
