package engine

import (
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/wal"
)

// crash abandons an engine without Close, simulating a process crash:
// memtable contents are lost, only chunk files and WAL segments
// survive.
func crash(e *Engine) {
	e.WaitFlushes() // the "crash" happens after in-flight disk writes land
}

func TestWALRecoversUnflushedData(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 1000, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	// 100 points — far below the flush threshold, so without the WAL
	// they would all be lost.
	s := dataset.LogNormal(100, 1, 2, 5)
	for i := range s.Times {
		if err := e1.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	crash(e1)

	e2, err := Open(Config{Dir: dir, MemTableSize: 1000, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	out, err := e2.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("recovered %d of 100 unflushed points", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].T > out[i].T {
			t.Fatal("recovered data unsorted")
		}
	}
}

func TestWALMixedFlushedAndUnflushed(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 300, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.AbsNormal(1000, 1, 2, 7)
	for i := range s.Times {
		if err := e1.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	// 1000 points with threshold 300: three generations flushed, 100
	// points live only in WAL + memtable.
	crash(e1)

	e2, err := Open(Config{Dir: dir, MemTableSize: 300, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	out, err := e2.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("recovered %d of 1000 points", len(out))
	}
}

func TestWALSegmentsRemovedAfterFlush(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 100, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := e.Insert("s", int64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Only the active segment (current generation) may remain.
	if len(segs) != 1 {
		t.Fatalf("flushed generations left segments behind: %v", segs)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ = wal.Segments(dir)
	if len(segs) != 0 {
		t.Fatalf("Close left segments: %v", segs)
	}
}

func TestWALRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 1000, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e1.Insert("s", int64(i), float64(i))
	}
	crash(e1)

	// Two successive recoveries must not duplicate data.
	for round := 0; round < 2; round++ {
		e, err := Open(Config{Dir: dir, MemTableSize: 1000, WAL: true, SyncFlush: true})
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Query("s", 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 50 {
			t.Fatalf("round %d: %d points, want 50", round, len(out))
		}
		crash(e)
	}
}

func TestWALDisabledWritesNoSegments(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		e.Insert("s", int64(i), 0)
	}
	e.Close()
	segs, _ := wal.Segments(dir)
	if len(segs) != 0 {
		t.Fatalf("WAL disabled but segments exist: %v", segs)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.gtsf")); len(matches) == 0 {
		t.Fatal("no chunk files written")
	}
}

func TestWALRewriteAfterRecoveryKeepsLatestValue(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 1000, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	e1.Insert("s", 7, 1)
	e1.Insert("s", 7, 2) // rewrite in the same generation
	crash(e1)

	e2, err := Open(Config{Dir: dir, MemTableSize: 1000, WAL: true, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	out, err := e2.Query("s", 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("duplicate timestamps after recovery: %+v", out)
	}
}
