package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentClose: two goroutines racing Engine.Close() must BOTH
// block until background flushes have drained and resources are
// released, and both must observe the same error result. The original
// fast-path returned nil immediately for the second caller while the
// first was still waiting on flushWG — a caller could delete the data
// directory under an in-flight flush.
func TestConcurrentClose(t *testing.T) {
	e, err := Open(Config{
		Dir:          t.TempDir(),
		MemTableSize: 100, // small: inserts below trigger several async flushes
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		sensor := fmt.Sprintf("d0.s%d", s)
		for b := 0; b < 5; b++ {
			times := make([]int64, 60)
			values := make([]float64, 60)
			for i := range times {
				times[i] = int64(b*60 + i)
				values[i] = float64(i)
			}
			if err := e.InsertBatch(sensor, times, values); err != nil {
				t.Fatal(err)
			}
		}
	}

	const closers = 4
	var wg sync.WaitGroup
	errs := make([]error, closers)
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.Close()
			// By the time any Close returns, all flush work must have
			// drained — a nonzero waitgroup here means a caller got an
			// early return while flushes were still in flight.
			e.flushWG.Wait()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("closer %d got %v, closer 0 got %v — all callers must see the same result", i, err, errs[0])
		}
		if err != nil {
			t.Fatalf("closer %d: %v", i, err)
		}
	}

	// All ingested data must be durable on disk: reopen and count.
	st := e.Stats()
	if st.MemTablePoints != 0 {
		t.Fatalf("memtable not drained at close: %d points", st.MemTablePoints)
	}
	if got, want := st.SeqPoints+st.UnseqPoints, int64(4*5*60); got != want {
		t.Fatalf("flushed %d points, want %d", got, want)
	}
}
