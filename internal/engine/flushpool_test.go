package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestFlushPoolRunsEveryJob(t *testing.T) {
	for _, size := range []int{0, 1, 2, 4} {
		p := newFlushPool(size)
		var ran atomic.Int64
		jobs := make([]func(), 37)
		for i := range jobs {
			jobs[i] = func() { ran.Add(1) }
		}
		p.do(jobs)
		if ran.Load() != 37 {
			t.Fatalf("size %d: ran %d of 37 jobs", size, ran.Load())
		}
		// do returns only after every job finished, so reuse is safe.
		ran.Store(0)
		p.do(jobs[:1])
		if ran.Load() != 1 {
			t.Fatalf("size %d: single-job do ran %d", size, ran.Load())
		}
		p.close()
	}
}

func TestFlushPoolConcurrentDo(t *testing.T) {
	// Multiple drains can share the pool; their job sets must not
	// interfere.
	p := newFlushPool(4)
	defer p.close()
	var wg sync.WaitGroup
	var ran atomic.Int64
	for d := 0; d < 8; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]func(), 20)
			for i := range jobs {
				jobs[i] = func() { ran.Add(1) }
			}
			p.do(jobs)
		}()
	}
	wg.Wait()
	if ran.Load() != 8*20 {
		t.Fatalf("ran %d of %d jobs", ran.Load(), 8*20)
	}
}

func TestFileHandleRefcount(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 2, SyncFlush: true})
	for i := 0; i < 4; i++ {
		if err := e.Insert("s", int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	e.mu.Lock()
	if len(e.files) == 0 {
		e.mu.Unlock()
		t.Fatal("no flushed files")
	}
	fh := e.files[0]
	fh.acquire() // simulate a query pinning the handle
	e.mu.Unlock()

	if got := fh.refs.Load(); got != 2 {
		t.Fatalf("refs = %d, want 2 (engine + query)", got)
	}
	// The engine's own release (as in Close/compaction) must not close
	// the reader while the query still holds it.
	if err := fh.release(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fh.reader.ReadChunk(fh.reader.Index()[0]); err != nil {
		t.Fatalf("read after engine release: %v", err)
	}
	// Last release closes; further reads fail.
	if err := fh.release(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fh.reader.ReadChunk(fh.reader.Index()[0]); err == nil {
		t.Fatal("read succeeded after final release")
	}
	// Put a fresh reference back so engine Close (via openTest cleanup)
	// does not double-release this handle.
	e.mu.Lock()
	e.files = e.files[1:]
	e.mu.Unlock()
}
