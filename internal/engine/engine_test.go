package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/dataset"
)

func openTest(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.MemTableSize == 0 {
		cfg.MemTableSize = 1000
	}
	cfg.SyncFlush = true
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("missing dir accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Algorithm: "bogus"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	e, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if e.Algorithm() != "backward" {
		t.Fatalf("default algorithm = %q", e.Algorithm())
	}
	e.Close()
}

func TestInsertQueryInMemory(t *testing.T) {
	e := openTest(t, Config{})
	// Out-of-order inserts, all within the memtable.
	for _, tt := range []int64{5, 3, 8, 1, 9, 2} {
		if err := e.Insert("s", tt, float64(tt)*2); err != nil {
			t.Fatal(err)
		}
	}
	out, err := e.Query("s", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 3, 5, 8}
	if len(out) != len(want) {
		t.Fatalf("query = %v", out)
	}
	for i, tv := range out {
		if tv.T != want[i] || tv.V != float64(want[i])*2 {
			t.Fatalf("query[%d] = %+v", i, tv)
		}
	}
}

func TestQueryAcrossFlush(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 100})
	total := 1000
	s := dataset.LogNormal(total, 1, 2, 9)
	for i := range s.Times {
		if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.FlushCount == 0 || st.Files == 0 {
		t.Fatalf("expected flushes, stats: %+v", st)
	}
	out, err := e.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != total {
		t.Fatalf("query returned %d of %d points", len(out), total)
	}
	sorted := append([]int64(nil), s.Times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, tv := range out {
		if tv.T != sorted[i] {
			t.Fatalf("result %d: time %d, want %d", i, tv.T, sorted[i])
		}
		if tv.V != dataset.Signal(tv.T) {
			t.Fatalf("result %d: value decoupled", i)
		}
	}
}

func TestSeparationPolicy(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 10})
	// Fill and flush with timestamps 0..9.
	for i := 0; i < 10; i++ {
		if err := e.Insert("s", int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.FlushCount != 1 {
		t.Fatalf("expected 1 flush, got %+v", st)
	}
	// A point older than the flushed watermark must go unsequence.
	if err := e.Insert("s", 4, 40); err != nil {
		t.Fatal(err)
	}
	// A newer point goes sequence.
	if err := e.Insert("s", 100, 100); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.UnseqPoints != 1 {
		t.Fatalf("unseq points = %d, want 1", st.UnseqPoints)
	}
	if st.SeqPoints != 11 {
		t.Fatalf("seq points = %d, want 11", st.SeqPoints)
	}
	// Newest-wins: the rewritten t=4 must return 40, not 4.
	out, err := e.Query("s", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].V != 40 {
		t.Fatalf("rewrite lost: %v", out)
	}
}

func TestQueryDedupAcrossGenerations(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 4})
	// Generation 1 flushes t=1..4 with value v.
	for i := 1; i <= 4; i++ {
		if err := e.Insert("s", int64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Rewrite t=2 (goes unsequence), plus new t=10.
	if err := e.Insert("s", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("s", 10, 1); err != nil {
		t.Fatal(err)
	}
	out, err := e.Query("s", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantT := []int64{1, 2, 3, 4, 10}
	if len(out) != len(wantT) {
		t.Fatalf("query = %v", out)
	}
	for i := range wantT {
		if out[i].T != wantT[i] {
			t.Fatalf("query = %v, want times %v", out, wantT)
		}
	}
	if out[1].V != 2 {
		t.Fatalf("dedup kept old value: %v", out[1])
	}
}

func TestQueryDedupAcrossFlushedFiles(t *testing.T) {
	// A rewrite that has itself been flushed (so both versions live in
	// files, not memtables) must still resolve newest-wins.
	e := openTest(t, Config{MemTableSize: 4})
	for i := 1; i <= 4; i++ { // gen 1 flushes t=1..4, v=1
		if err := e.Insert("s", int64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Gen 2: rewrite t=2 (unsequence) plus filler, then force flush so
	// the rewrite lands in a later file.
	if err := e.Insert("s", 2, 2); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if st := e.Stats(); st.Files < 2 {
		t.Fatalf("need the rewrite in its own file: %+v", st)
	}
	out, err := e.Query("s", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].V != 2 {
		t.Fatalf("file-vs-file dedup kept the old value: %+v", out)
	}
}

func TestMultiSensorIsolation(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 50})
	for i := 0; i < 100; i++ {
		if err := e.Insert(fmt.Sprintf("s%d", i%4), int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for sid := 0; sid < 4; sid++ {
		out, err := e.Query(fmt.Sprintf("s%d", sid), 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 25 {
			t.Fatalf("sensor s%d: %d points, want 25", sid, len(out))
		}
		for _, tv := range out {
			if int(tv.T)%4 != sid {
				t.Fatalf("sensor s%d got foreign point %+v", sid, tv)
			}
		}
	}
}

func TestLatestTime(t *testing.T) {
	e := openTest(t, Config{})
	if _, ok := e.LatestTime("s"); ok {
		t.Fatal("latest on empty sensor should be absent")
	}
	e.Insert("s", 10, 1)
	e.Insert("s", 5, 1) // older, must not regress latest
	got, ok := e.LatestTime("s")
	if !ok || got != 10 {
		t.Fatalf("LatestTime = %d,%v", got, ok)
	}
}

func TestEveryAlgorithmRunsTheEngine(t *testing.T) {
	s := dataset.AbsNormal(600, 1, 4, 3)
	for _, algo := range []string{"backward", "quick", "tim", "patience", "ck", "y"} {
		e := openTest(t, Config{MemTableSize: 100, Algorithm: algo})
		for i := range s.Times {
			if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
				t.Fatal(err)
			}
		}
		out, err := e.Query("s", -1<<62, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 600 {
			t.Fatalf("%s: %d points", algo, len(out))
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].T > out[i].T {
				t.Fatalf("%s: unsorted result", algo)
			}
		}
	}
}

func TestAsyncFlush(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 200}) // async
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.LogNormal(5000, 1, 1, 4)
	for i := range s.Times {
		if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Query concurrently with flushing.
	out, err := e.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5000 {
		t.Fatalf("pre-close query saw %d points", len(out))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("s", 1, 1); err == nil {
		t.Fatal("insert after close accepted")
	}
	if _, err := e.Query("s", 0, 1); err == nil {
		t.Fatal("query after close accepted")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			base := int64(w * 1_000_000)
			for i := 0; i < 2000; i++ {
				tt := base + int64(i) - r.Int63n(5)
				if err := e.Insert(fmt.Sprintf("s%d", w), tt, float64(tt)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sensor := fmt.Sprintf("s%d", q)
				latest, ok := e.LatestTime(sensor)
				if !ok {
					continue
				}
				out, err := e.Query(sensor, latest-1000, latest)
				if err != nil {
					errCh <- err
					return
				}
				for j := 1; j < len(out); j++ {
					if out[j-1].T > out[j].T {
						errCh <- fmt.Errorf("unsorted concurrent query result")
						return
					}
				}
			}
		}(q)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Full count after close/flush.
	for w := 0; w < 4; w++ {
		out, err := e.Query(fmt.Sprintf("s%d", w), -1<<62, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		// Writers may produce duplicate timestamps (tt - rand), so
		// the distinct count can be well below 2000 (coupon-collector
		// coverage of ~2004 slots ≈ 1350) but never above.
		if len(out) > 2000 || len(out) < 1200 {
			t.Fatalf("writer %d: %d distinct points", w, len(out))
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 100})
	s := dataset.AbsNormal(350, 1, 2, 6)
	for i := range s.Times {
		if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.FlushCount != 3 {
		t.Fatalf("flush count = %d, want 3", st.FlushCount)
	}
	if st.AvgFlushMillis <= 0 {
		t.Fatalf("flush time not recorded: %+v", st)
	}
	if st.AvgSortMillis < 0 || st.AvgSortMillis > st.AvgFlushMillis {
		t.Fatalf("sort time out of range: %+v", st)
	}
	if st.MemTablePoints != 50 {
		t.Fatalf("memtable points = %d, want 50", st.MemTablePoints)
	}
	if st.SeqPoints+st.UnseqPoints != 350 {
		t.Fatalf("point accounting wrong: %+v", st)
	}
}

func TestBatchValidation(t *testing.T) {
	e := openTest(t, Config{})
	if err := e.InsertBatch("s", []int64{1, 2}, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestEmptyQueryAndUnknownSensor(t *testing.T) {
	e := openTest(t, Config{})
	out, err := e.Query("ghost", 0, 100)
	if err != nil || out != nil {
		t.Fatalf("ghost query = %v, %v", out, err)
	}
}
