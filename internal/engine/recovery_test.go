package engine

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestRecoverAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := dataset.LogNormal(500, 1, 2, 3)

	e1, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Times {
		if err := e1.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	before, err := e1.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	after, err := e2.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("recovered %d of %d points", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("record %d changed across reopen: %+v vs %+v", i, before[i], after[i])
		}
	}
}

func TestRecoverRestoresSeparationWatermark(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 10, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // fills and flushes t=0..9
		if err := e1.Insert("s", int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Config{Dir: dir, MemTableSize: 10, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// A point at t=5 is older than the recovered watermark (9): it
	// must take the unsequence path.
	if err := e2.Insert("s", 5, 55); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.UnseqPoints != 1 {
		t.Fatalf("recovered watermark not applied: %+v", st)
	}
	// And the latest timestamp is recovered too.
	if latest, ok := e2.LatestTime("s"); !ok || latest != 9 {
		t.Fatalf("latest = %d, %v", latest, ok)
	}
}

func TestRecoverFileSeqContinues(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 5, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e1.Insert("s", int64(i), 0)
	}
	e1.Close()
	filesBefore, _ := filepath.Glob(filepath.Join(dir, "*.gtsf"))

	e2, err := Open(Config{Dir: dir, MemTableSize: 5, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		e2.Insert("s", int64(i), 0)
	}
	e2.Close()
	filesAfter, _ := filepath.Glob(filepath.Join(dir, "*.gtsf"))
	if len(filesAfter) <= len(filesBefore) {
		t.Fatal("no new files after reopen")
	}
	// No file may have been overwritten: every old file still exists
	// and the engine can still read everything back.
	e3, err := Open(Config{Dir: dir, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	out, err := e3.Query("s", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 30 {
		t.Fatalf("recovered %d of 30 points", len(out))
	}
}

func TestRecoverIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.gtsf"), 0o755); err != nil {
		t.Fatal(err)
	}
	e, err := Open(Config{Dir: dir, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
}

func TestFlushFailureSurfaced(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "data")
	e, err := Open(Config{Dir: dir, MemTableSize: 5, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the data directory with a regular file: the next flush's
	// file creation fails with ENOTDIR, for any user including root.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Insert("s", int64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if e.FlushError() == nil {
		t.Fatal("flush failure not recorded")
	}
	if _, err := e.Query("s", 0, 10); err == nil {
		t.Fatal("query did not surface the flush failure")
	}
	// The data is still in the (stuck) flushing unit; Close surfaces
	// the error rather than losing it silently.
	if err := e.Close(); err == nil {
		t.Fatal("close did not surface the flush failure")
	}
}

func TestRecoverQuarantinesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seq-000001.gtsf"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Open(Config{Dir: dir, SyncFlush: true})
	if err != nil {
		t.Fatalf("open with corrupt file: %v", err)
	}
	defer e.Close()
	if got := e.Stats().QuarantinedFiles; got != 1 {
		t.Fatalf("QuarantinedFiles = %d, want 1", got)
	}
	if e.FileCount() != 0 {
		t.Fatalf("corrupt file served: FileCount = %d", e.FileCount())
	}
	if _, err := os.Stat(filepath.Join(dir, "seq-000001.gtsf.quarantine")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seq-000001.gtsf")); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still at servable name: %v", err)
	}
}

func TestRecoverQuarantinesTmpFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seq-000007.gtsf.tmp"), []byte("half a flush"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Open(Config{Dir: dir, SyncFlush: true})
	if err != nil {
		t.Fatalf("open with tmp leftover: %v", err)
	}
	defer e.Close()
	if got := e.Stats().QuarantinedFiles; got != 1 {
		t.Fatalf("QuarantinedFiles = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "seq-000007.gtsf.tmp.quarantine")); err != nil {
		t.Fatalf("quarantined tmp missing: %v", err)
	}
}
