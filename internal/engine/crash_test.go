package engine

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/faultfs"
)

// crashCfg is the crash-matrix configuration: WALSync=always means a
// nil InsertBatch return is a durability promise, SyncFlush keeps
// flushes on the inserting goroutine so every run visits the same
// operation history, and the tiny memtable forces several flush+rotate
// cycles across the run.
func crashCfg(dir string, fs faultfs.FS) Config {
	return Config{
		Dir:          dir,
		MemTableSize: 25,
		SyncFlush:    true,
		WAL:          true,
		WALSync:      WALSyncAlways,
		FS:           fs,
	}
}

// crashIngest appends 10-point batches (timestamp == value, contiguous
// across batches) until the filesystem crashes, returning how many were
// acknowledged.
func crashIngest(e *Engine, batches int) int {
	acked := 0
	for b := 0; b < batches; b++ {
		times := make([]int64, 10)
		values := make([]float64, 10)
		for i := range times {
			times[i] = int64(b*10 + i)
			values[i] = float64(times[i])
		}
		if err := e.InsertBatch("s", times, values); err != nil {
			return acked
		}
		acked++
	}
	return acked
}

// TestCrashMatrix is the durability contract, exhaustively: for every
// k, kill the process at the k-th filesystem operation of an ingest
// run, recover from whatever survived, and assert that (a) every
// acknowledged batch is served in full with untorn values and (b) no
// temporary file is served or left behind. The sweep ends at the first
// k the run completes without reaching.
func TestCrashMatrix(t *testing.T) {
	const batches = 8
	for k := 1; ; k++ {
		dir := t.TempDir()
		inj := faultfs.NewInjector(faultfs.OS, k)
		acked := 0
		e, err := Open(crashCfg(dir, inj))
		if err == nil {
			acked = crashIngest(e, batches)
			e.Close() // crashed fs blocks durable mutation; ignore error
		}
		if !inj.Crashed() {
			if acked != batches {
				t.Fatalf("k=%d: run completed with %d/%d acked batches", k, acked, batches)
			}
			t.Logf("matrix complete: %d injection points swept", k-1)
			return
		}

		re, err := Open(crashCfg(dir, faultfs.OS))
		if err != nil {
			t.Fatalf("k=%d: recovery open: %v", k, err)
		}
		got, err := re.Query("s", 0, 1<<40)
		if err != nil {
			t.Fatalf("k=%d: recovery query: %v", k, err)
		}
		seen := make(map[int64]bool, len(got))
		for _, tv := range got {
			if tv.V != float64(tv.T) {
				t.Fatalf("k=%d: torn value at t=%d: got %v", k, tv.T, tv.V)
			}
			seen[tv.T] = true
		}
		for ts := int64(0); ts < int64(acked*10); ts++ {
			if !seen[ts] {
				t.Fatalf("k=%d: acknowledged point t=%d lost (%d batches acked)", k, ts, acked)
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if strings.HasSuffix(ent.Name(), ".tmp") {
				t.Fatalf("k=%d: %s survived recovery un-quarantined", k, ent.Name())
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("k=%d: close after recovery: %v", k, err)
		}
		if k > 10000 {
			t.Fatal("matrix did not terminate; injector never exhausted")
		}
	}
}

// TestCloseKeepsWALOnFlushFailure is the regression test for the
// shutdown bug where Close removed the active WAL segment
// unconditionally: if the final flush fails, the segment is the only
// copy of the un-persisted batches and must survive for replay.
func TestCloseKeepsWALOnFlushFailure(t *testing.T) {
	dir := t.TempDir()
	var failCreates bool
	fs := &faultfs.HookFS{
		Under: faultfs.OS,
		Hook: func(op faultfs.Op, path string) error {
			if failCreates && op == faultfs.OpCreate && strings.Contains(path, ".gtsf") {
				return fmt.Errorf("injected: create %s", path)
			}
			return nil
		},
	}
	e, err := Open(Config{
		Dir:       dir,
		SyncFlush: true,
		WAL:       true,
		WALSync:   WALSyncAlways,
		FS:        fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InsertBatch("s", []int64{1, 2, 3}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	failCreates = true
	if err := e.Close(); err == nil {
		t.Fatal("close with failed final flush returned nil; WAL batches silently at risk")
	}
	segs, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept := false
	for _, ent := range segs {
		if strings.HasPrefix(ent.Name(), "wal-") && strings.HasSuffix(ent.Name(), ".log") {
			kept = true
		}
	}
	if !kept {
		t.Fatal("active WAL segment removed despite failed final flush")
	}

	// The retained segment must replay on the next open.
	re, err := Open(Config{Dir: dir, SyncFlush: true, WAL: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Stats().RecoveredWALBatches; got != 1 {
		t.Fatalf("RecoveredWALBatches = %d, want 1", got)
	}
	tvs, err := re.Query("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tvs) != 3 {
		t.Fatalf("recovered %d points, want 3", len(tvs))
	}
	for i, tv := range tvs {
		if tv.T != int64(i+1) || tv.V != float64(i+1) {
			t.Fatalf("recovered point %d = (%d, %v), want (%d, %d)", i, tv.T, tv.V, i+1, i+1)
		}
	}
}
