package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkFlushWorkers measures the wall time of draining one
// multi-sensor memtable generation at different flush pool sizes. Each
// sensor's chunk is an independent sort+encode job, so on multi-core
// machines flush wall time should drop as workers increase (on a
// single-core machine the pool can only show parity, since sort and
// encode are CPU-bound).
func BenchmarkFlushWorkers(b *testing.B) {
	const (
		sensors      = 16
		pointsPerSen = 20_000
	)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := Open(Config{
				Dir:          b.TempDir(),
				MemTableSize: 1 << 30, // rotate only on explicit Flush
				FlushWorkers: workers,
				SyncFlush:    true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()

			r := rand.New(rand.NewSource(1))
			times := make([]int64, pointsPerSen)
			vals := make([]float64, pointsPerSen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Refill with locally-shuffled data so every drain has
				// real sorting work (the sorted flag would otherwise
				// skip it after the first flush).
				base := int64(i) * pointsPerSen
				for j := range times {
					times[j] = base + int64(j)
				}
				for j := len(times) - 1; j > 0; j-- {
					k := j - r.Intn(50)
					if k < 0 {
						k = 0
					}
					times[j], times[k] = times[k], times[j]
				}
				for j := range vals {
					vals[j] = r.Float64()
				}
				for s := 0; s < sensors; s++ {
					if err := e.InsertBatch(fmt.Sprintf("s%02d", s), times, vals); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				e.Flush()
				if err := e.FlushError(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
