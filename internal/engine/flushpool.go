package engine

import (
	"runtime"
	"sync"
)

// flushPool is the engine's bounded worker pool for the CPU side of
// flushing: sorting sensor chunks and encoding them into tsfile chunk
// payloads. One pool serves every drain of the engine, so the bound
// holds even when several memtable generations flush concurrently —
// the file itself is still written by the draining goroutine, in
// deterministic sensor order, from the workers' encoded results.
//
// With size 1 the pool runs jobs inline on the submitting goroutine:
// the paper-reproduction mode (cmd/repro) uses that to keep per-flush
// wall time attributable to the sorting algorithm rather than to
// scheduling.
type flushPool struct {
	size int
	jobs chan func()
	wg   sync.WaitGroup
}

// newFlushPool starts a pool with the given number of workers
// (minimum 1).
func newFlushPool(size int) *flushPool {
	if size < 1 {
		size = 1
	}
	p := &flushPool{size: size}
	if size > 1 {
		p.jobs = make(chan func())
		for i := 0; i < size; i++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				for fn := range p.jobs {
					fn()
				}
			}()
		}
	}
	return p
}

// do runs every job and returns when all have finished. Jobs may run
// on pool workers in any order and must synchronize among themselves
// where they touch shared state.
func (p *flushPool) do(jobs []func()) {
	if p.size <= 1 || len(jobs) == 1 {
		for _, fn := range jobs {
			fn()
		}
		return
	}
	var done sync.WaitGroup
	done.Add(len(jobs))
	for _, fn := range jobs {
		fn := fn
		p.jobs <- func() {
			defer done.Done()
			fn()
		}
	}
	done.Wait()
}

// close stops the workers. The caller must guarantee no do() call is
// in flight or can start afterwards (the engine does: Close marks the
// engine closed, waits out in-flight drains, then closes the pool).
func (p *flushPool) close() {
	if p.jobs != nil {
		close(p.jobs)
		p.wg.Wait()
		p.jobs = nil
	}
}

// SharedFlushPool is a sort/encode worker pool shared by several
// engines — the shard layer hands one to every shard so N shards
// cannot oversubscribe the machine with N independent GOMAXPROCS-sized
// pools. An engine given a shared pool does not close it; the owner
// (the shard router) closes it after every sharing engine has closed.
type SharedFlushPool struct {
	once sync.Once
	p    *flushPool
}

// NewSharedFlushPool starts a shared pool with the given number of
// workers (0 or less selects GOMAXPROCS, matching the engine's own
// FlushWorkers default).
func NewSharedFlushPool(workers int) *SharedFlushPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &SharedFlushPool{p: newFlushPool(workers)}
}

// Size reports the resolved worker count.
func (s *SharedFlushPool) Size() int { return s.p.size }

// Close stops the workers. Callers must guarantee every engine sharing
// the pool has finished closing first. Safe to call more than once.
func (s *SharedFlushPool) Close() {
	s.once.Do(s.p.close)
}
