package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressConcurrentEngineOps drives concurrent InsertBatch, Query
// and Flush traffic across multiple sensors (run it with -race). Every
// writer owns a disjoint timestamp range and inserts each timestamp
// exactly once, in locally shuffled order so the separation policy
// sees real out-of-order traffic; at the end every point must be
// queryable exactly once, in strict time order, with its value intact.
// A final phase races queries against Close.
func TestStressConcurrentEngineOps(t *testing.T) {
	const (
		writers   = 4
		perWriter = 3000
		batchSize = 100
	)
	e, err := Open(Config{
		Dir:          t.TempDir(),
		MemTableSize: 1500,
		FlushWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	value := func(ts int64) float64 { return float64(ts)*2 + 1 }

	var wg, workDone sync.WaitGroup
	errCh := make(chan error, writers*2+8)
	stopFlusher := make(chan struct{})

	// Writers: each owns sensor s<w> and timestamps base..base+perWriter-1,
	// shuffled within a sliding window so batches arrive out of order.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		workDone.Add(1)
		go func(w int) {
			defer wg.Done()
			defer workDone.Done()
			r := rand.New(rand.NewSource(int64(w) + 42))
			base := int64(w) * 1_000_000
			times := make([]int64, perWriter)
			for i := range times {
				times[i] = base + int64(i)
			}
			// Local shuffle: swap each element with one up to 20 back.
			for i := len(times) - 1; i > 0; i-- {
				j := i - r.Intn(20)
				if j < 0 {
					j = 0
				}
				times[i], times[j] = times[j], times[i]
			}
			sensor := fmt.Sprintf("s%d", w)
			for off := 0; off < perWriter; off += batchSize {
				end := off + batchSize
				if end > perWriter {
					end = perWriter
				}
				ts := times[off:end]
				vs := make([]float64, len(ts))
				for i, tt := range ts {
					vs[i] = value(tt)
				}
				if err := e.InsertBatch(sensor, ts, vs); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Queriers: results must always be strictly increasing in time
	// (dedup guarantees strictness) with coupled values.
	for q := 0; q < writers; q++ {
		wg.Add(1)
		workDone.Add(1)
		go func(q int) {
			defer wg.Done()
			defer workDone.Done()
			sensor := fmt.Sprintf("s%d", q)
			base := int64(q) * 1_000_000
			r := rand.New(rand.NewSource(int64(q) + 7))
			for i := 0; i < 200; i++ {
				lo := base + r.Int63n(perWriter)
				out, err := e.Query(sensor, lo, lo+500)
				if err != nil {
					errCh <- err
					return
				}
				for j := range out {
					if j > 0 && out[j-1].T >= out[j].T {
						errCh <- fmt.Errorf("stress: result not strictly ordered at %d: %v %v", j, out[j-1], out[j])
						return
					}
					if out[j].V != value(out[j].T) {
						errCh <- fmt.Errorf("stress: value decoupled: %+v", out[j])
						return
					}
				}
			}
		}(q)
	}

	// A background flusher forces extra rotations concurrent with the
	// size-triggered ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopFlusher:
				return
			case <-tick.C:
				e.Flush()
			}
		}
	}()

	// Writers and queriers finish on their own; the flusher needs a
	// stop signal — but it is also in wg, so signal before waiting on
	// it by waiting for the other goroutines via a separate counter.
	go func() {
		defer close(stopFlusher)
		workDone.Wait()
	}()
	wg.Wait()

	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Nothing lost: every writer's full range comes back complete,
	// strictly ordered, values intact.
	e.Flush()
	e.WaitFlushes()
	if err := e.FlushError(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		base := int64(w) * 1_000_000
		out, err := e.Query(fmt.Sprintf("s%d", w), base, base+perWriter-1)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != perWriter {
			t.Fatalf("writer %d: %d of %d points survived", w, len(out), perWriter)
		}
		for i, tv := range out {
			want := base + int64(i)
			if tv.T != want {
				t.Fatalf("writer %d: result[%d] time = %d, want %d", w, i, tv.T, want)
			}
			if tv.V != value(tv.T) {
				t.Fatalf("writer %d: result[%d] value decoupled: %+v", w, i, tv)
			}
		}
	}
	st := e.Stats()
	if st.FlushCount == 0 {
		t.Fatalf("stress run never flushed: %+v", st)
	}
	if st.SeqPoints+st.UnseqPoints != writers*perWriter {
		t.Fatalf("point accounting wrong: %+v", st)
	}

	// Final phase: queries racing Close. Every call must either
	// succeed or report a clean "engine: closed" error — no torn
	// state, no race.
	var raceWG sync.WaitGroup
	var partial atomic.Int64
	for q := 0; q < 4; q++ {
		raceWG.Add(1)
		go func(q int) {
			defer raceWG.Done()
			sensor := fmt.Sprintf("s%d", q%writers)
			for i := 0; i < 50; i++ {
				out, err := e.Query(sensor, 0, 1<<62)
				if err != nil {
					return // clean "engine: closed" — acceptable
				}
				if len(out) != perWriter {
					// A successful query during shutdown must still see
					// the complete data set, never a torn subset.
					partial.Add(1)
					return
				}
			}
		}(q)
	}
	closeErr := make(chan error, 1)
	go func() { closeErr <- e.Close() }()
	raceWG.Wait()
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}
	if n := partial.Load(); n != 0 {
		t.Fatalf("%d queries returned partial data during Close", n)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatalf("second Close errored: %v", err)
	}
}
