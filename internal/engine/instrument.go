package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/tvlist"
)

// lockWaitBuckets is the histogram width: bucket 0 counts waits under
// 1µs, bucket i counts waits in [2^(i-1), 2^i) µs, and the last bucket
// absorbs everything longer (2^22 µs ≈ 4.2 s).
const lockWaitBuckets = 24

// lockWaitHist is a lock-free histogram of engine-lock acquisition
// waits. Only contended acquisitions are recorded (the uncontended
// fast path costs one TryLock), so the counts answer the question the
// paper's Figures 13–15 circle around: how often, and for how long,
// does the engine lock make someone wait?
type lockWaitHist struct {
	counts [lockWaitBuckets]atomic.Int64
	n      atomic.Int64
	total  atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

func (h *lockWaitHist) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.n.Add(1)
	h.total.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	us := d.Microseconds()
	b := 0
	for us > 0 && b < lockWaitBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
}

// percentileMicros returns an upper bound for the p-th percentile wait
// in microseconds, at bucket (power-of-two) resolution.
func (h *lockWaitHist) percentileMicros(p float64) float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := int64(float64(n)*p/100 + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < lockWaitBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return float64(int64(1) << i)
		}
	}
	return float64(int64(1) << (lockWaitBuckets - 1))
}

// lockContended acquires the engine lock, recording the wait whenever
// the lock was not immediately free. isQuery additionally feeds the
// queries-blocked counter — the query side of IoTDB's
// query-blocks-writes contention window.
func (e *Engine) lockContended(isQuery bool) {
	if e.mu.TryLock() {
		return
	}
	t0 := time.Now()
	e.mu.Lock()
	e.lockHist.record(time.Since(t0))
	if isQuery {
		e.queriesBlocked.Add(1)
	}
}

// sortChunk orders one TVList, routing it through the contiguous flat
// kernel when the engine's backward algorithm has one and the list is
// big enough to amortize the coalesce/scatter copies, and through the
// configured interface algorithm otherwise. It returns the elapsed
// sort nanoseconds (0 when the sorted flag let the sort be skipped —
// an earlier query or drain paid for it, or the data arrived ordered —
// which feeds the SortsSkipped counter) and tallies per-path counts
// and cumulative time for Stats.
func (e *Engine) sortChunk(c *tvlist.TVList[float64]) int64 {
	if c.Sorted() {
		e.sortsSkipped.Add(1)
		return 0
	}
	t0 := time.Now()
	if e.useFlat && c.Len() >= e.flatThreshold {
		c.EnsureSortedFlat(e.flatOpts)
		d := int64(time.Since(t0))
		e.flatSorts.Add(1)
		e.flatSortNanos.Add(d)
		return d
	}
	c.EnsureSorted(e.algo)
	d := int64(time.Since(t0))
	e.ifaceSorts.Add(1)
	e.ifaceSortNanos.Add(d)
	return d
}

// sortChunkPlanned is sortChunk for the adaptive path: the planner's
// per-sensor decision chooses the kernel (flat vs interface) and the
// block size (pinned, seeded, or default-searched), and the sort's
// actual Trace is fed back so the planner counts stability on
// confirmed measurements. Only the flush drain takes this path —
// query-side snapshot sorts keep the static routing, where a planner
// round-trip per read would buy nothing (the planner's state advances
// once per flushed generation, not per query).
func (e *Engine) sortChunkPlanned(sensor string, c *tvlist.TVList[float64], dec adaptive.Decision) int64 {
	if c.Sorted() {
		e.sortsSkipped.Add(1)
		return 0
	}
	var tr core.Trace
	t0 := time.Now()
	var d int64
	if dec.UseFlat && e.useFlat {
		opts := e.flatOpts
		opts.FixedBlockSize = dec.FixedL
		opts.InitialBlockSize = dec.SeedL
		opts.SearchPhase = dec.Phase
		tr, _ = c.EnsureSortedFlatTrace(opts)
		d = int64(time.Since(t0))
		e.flatSorts.Add(1)
		e.flatSortNanos.Add(d)
		e.adaptiveFlatRoutes.Add(1)
	} else {
		// The adaptive flag requires the "backward" algorithm, so the
		// interface path can call the kernel directly with the planned
		// options instead of going through the parameterless registry
		// entry in e.algo.
		opts := core.Options{
			FixedBlockSize:   dec.FixedL,
			InitialBlockSize: dec.SeedL,
			SearchPhase:      dec.Phase,
		}
		c.EnsureSorted(func(s core.Sortable) { tr = core.BackwardSort(s, opts) })
		d = int64(time.Since(t0))
		e.ifaceSorts.Add(1)
		e.ifaceSortNanos.Add(d)
		e.adaptiveIfaceRoutes.Add(1)
	}
	switch {
	case dec.FixedL > 0:
		// Search skipped on a stable prediction; no feedback — a
		// pinned L confirming itself would be circular.
		e.adaptiveFixedSorts.Add(1)
		e.searchItersSaved.Add(int64(dec.SavedIterations))
	case dec.SeedL > 0:
		e.adaptiveSeededSorts.Add(1)
		e.searchItersSaved.Add(int64(dec.SavedIterations))
		e.planner.Observe(sensor, tr.BlockSize)
	default:
		// Default search (cold sensor): still feed the measured L back
		// so stability can build.
		e.planner.Observe(sensor, tr.BlockSize)
	}
	if tr.BlockSize > 0 {
		atomicMin(&e.adaptiveMinL, int64(tr.BlockSize))
		atomicMax(&e.adaptiveMaxL, int64(tr.BlockSize))
	}
	return d
}

// atomicMin lowers v to x unless v is already ≤ x; 0 means unset.
func atomicMin(v *atomic.Int64, x int64) {
	for {
		old := v.Load()
		if old != 0 && old <= x {
			return
		}
		if v.CompareAndSwap(old, x) {
			return
		}
	}
}

// atomicMax raises v to x unless v is already ≥ x.
func atomicMax(v *atomic.Int64, x int64) {
	for {
		old := v.Load()
		if old >= x {
			return
		}
		if v.CompareAndSwap(old, x) {
			return
		}
	}
}
