package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/tvlist"
)

// lockWaitBuckets is the histogram width: bucket 0 counts waits under
// 1µs, bucket i counts waits in [2^(i-1), 2^i) µs, and the last bucket
// absorbs everything longer (2^22 µs ≈ 4.2 s).
const lockWaitBuckets = 24

// lockWaitHist is a lock-free histogram of engine-lock acquisition
// waits. Only contended acquisitions are recorded (the uncontended
// fast path costs one TryLock), so the counts answer the question the
// paper's Figures 13–15 circle around: how often, and for how long,
// does the engine lock make someone wait?
type lockWaitHist struct {
	counts [lockWaitBuckets]atomic.Int64
	n      atomic.Int64
	total  atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

func (h *lockWaitHist) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.n.Add(1)
	h.total.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	us := d.Microseconds()
	b := 0
	for us > 0 && b < lockWaitBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
}

// percentileMicros returns an upper bound for the p-th percentile wait
// in microseconds, at bucket (power-of-two) resolution.
func (h *lockWaitHist) percentileMicros(p float64) float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := int64(float64(n)*p/100 + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < lockWaitBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return float64(int64(1) << i)
		}
	}
	return float64(int64(1) << (lockWaitBuckets - 1))
}

// lockContended acquires the engine lock, recording the wait whenever
// the lock was not immediately free. isQuery additionally feeds the
// queries-blocked counter — the query side of IoTDB's
// query-blocks-writes contention window.
func (e *Engine) lockContended(isQuery bool) {
	if e.mu.TryLock() {
		return
	}
	t0 := time.Now()
	e.mu.Lock()
	e.lockHist.record(time.Since(t0))
	if isQuery {
		e.queriesBlocked.Add(1)
	}
}

// sortChunk orders one TVList, routing it through the contiguous flat
// kernel when the engine's backward algorithm has one and the list is
// big enough to amortize the coalesce/scatter copies, and through the
// configured interface algorithm otherwise. It returns the elapsed
// sort nanoseconds (0 when the sorted flag let the sort be skipped —
// an earlier query or drain paid for it, or the data arrived ordered —
// which feeds the SortsSkipped counter) and tallies per-path counts
// and cumulative time for Stats.
func (e *Engine) sortChunk(c *tvlist.TVList[float64]) int64 {
	if c.Sorted() {
		e.sortsSkipped.Add(1)
		return 0
	}
	t0 := time.Now()
	if e.useFlat && c.Len() >= e.flatThreshold {
		c.EnsureSortedFlat(e.flatOpts)
		d := int64(time.Since(t0))
		e.flatSorts.Add(1)
		e.flatSortNanos.Add(d)
		return d
	}
	c.EnsureSorted(e.algo)
	d := int64(time.Since(t0))
	e.ifaceSorts.Add(1)
	e.ifaceSortNanos.Add(d)
	return d
}
