// Package engine implements the miniature time series storage engine
// the system experiments run against — a Go stand-in for the parts of
// Apache IoTDB the paper exercises (Section V):
//
//   - writes land in a *working* memtable (one TVList per sensor);
//   - the *separation policy*: a point whose timestamp is not newer
//     than the sensor's last flushed time goes to the *unsequence*
//     memtable, so the sequence path only ever sees delays into the
//     not-too-distant future (Section II);
//   - when the memtable is full it becomes immutable (*flushing*) and
//     is drained asynchronously: each TVList is sorted with the
//     configured algorithm, then encoded and written to a TsFile-like
//     chunk file — the flush-time metric of Figures 16–18 measures
//     exactly this state-transition-to-disk window;
//   - queries take the engine lock (blocking writes, as in IoTDB,
//     Section VI-D1), sort the working TVLists they touch, and merge
//     memtable data with flushed files.
package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/memtable"
	"repro/internal/sortalgo"
	"repro/internal/tsfile"
	"repro/internal/tvlist"
	"repro/internal/wal"
)

// DefaultMemTableSize is the flush threshold in points. The paper uses
// 100,000 as "the appropriate memory points size in the IoTDB".
const DefaultMemTableSize = 100000

// Config configures an Engine.
type Config struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// MemTableSize is the point-count flush threshold across all
	// sensors (default DefaultMemTableSize).
	MemTableSize int
	// ArrayLen is the TVList array length (default 32).
	ArrayLen int
	// Algorithm names the sorting algorithm (sortalgo registry;
	// default "backward").
	Algorithm string
	// SyncFlush makes flushes run inline on the triggering Insert,
	// for deterministic tests. Production-style async is the default.
	SyncFlush bool
	// WAL enables the write-ahead log: every batch is logged before
	// it is acknowledged, and unflushed memtable contents are
	// replayed (and immediately flushed) on Open. Off by default —
	// the paper's experiments do not exercise it.
	WAL bool
}

// TV is one query result record.
type TV struct {
	T int64
	V float64
}

// Stats is a snapshot of engine-side metrics.
type Stats struct {
	FlushCount     int
	AvgFlushMillis float64 // mean wall time: state transition → file on disk
	AvgSortMillis  float64 // mean sorting component of flushes
	SeqPoints      int64   // points ingested via the sequence path
	UnseqPoints    int64   // points diverted by the separation policy
	Files          int
	MemTablePoints int
}

// Engine is the storage engine. All methods are safe for concurrent
// use.
type Engine struct {
	cfg  Config
	algo sortalgo.Func

	// mu is the engine lock. As in IoTDB, queries hold it while they
	// sort and scan memtables, blocking writers.
	mu          sync.Mutex
	working     *memtable.MemTable // sequence writes
	workingUn   *memtable.MemTable // unsequence writes (separation policy)
	flushing    []*flushUnit
	lastFlushed map[string]int64 // per-sensor separation watermark
	latest      map[string]int64 // per-sensor max ingested time ("current")
	files       []*fileHandle
	fileSeq     int
	walSeq      int
	walSeg      *wal.Segment // active segment covering the working memtables
	closed      bool

	flushWG sync.WaitGroup

	statsMu     sync.Mutex
	flushTotal  time.Duration
	sortTotal   time.Duration
	flushCount  int
	seqPoints   int64
	unseqPoints int64
	flushErr    error // first background flush failure, surfaced on Query/Close
}

// flushUnit is one immutable memtable pair being drained. Its mutex
// serializes the drain's in-place sorting against concurrent queries.
type flushUnit struct {
	mu      sync.Mutex
	seq     *memtable.MemTable
	unseq   *memtable.MemTable
	walSeg  *wal.Segment // segment covering this generation, if WAL is on
	started time.Time
}

// fileHandle is one flushed file with its cached chunk index.
type fileHandle struct {
	path   string
	reader *tsfile.Reader
	index  []tsfile.ChunkMeta
	unseq  bool
}

// Open creates or opens an engine over cfg.Dir. Flushed files from a
// previous run are recovered: their indexes are loaded, the separation
// watermarks restored from the sequence files, and their data becomes
// queryable again. (Unflushed memtable contents are lost on crash — as
// in an IoTDB deployment without its write-ahead log, which the
// paper's experiments do not exercise.)
func Open(cfg Config) (*Engine, error) {
	if cfg.MemTableSize <= 0 {
		cfg.MemTableSize = DefaultMemTableSize
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "backward"
	}
	algo, ok := sortalgo.Get(cfg.Algorithm)
	if !ok {
		return nil, fmt.Errorf("engine: unknown sort algorithm %q", cfg.Algorithm)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("engine: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		algo:        algo,
		working:     memtable.New(cfg.ArrayLen),
		workingUn:   memtable.New(cfg.ArrayLen),
		lastFlushed: make(map[string]int64),
		latest:      make(map[string]int64),
	}
	if err := e.recover(); err != nil {
		return nil, err
	}
	if cfg.WAL {
		if err := e.recoverWAL(); err != nil {
			return nil, err
		}
		// The recovery flush may already have rotated a fresh active
		// segment into place; only create one if it did not.
		if e.walSeg == nil {
			if err := e.newWALSegment(); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// recoverWAL replays unflushed generations from leftover WAL segments
// into the working memtables, flushes them to chunk files, and removes
// the segments.
func (e *Engine) recoverWAL() error {
	segs, err := wal.Segments(e.cfg.Dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	// Seed the segment counter past every leftover so the recovery
	// flush's fresh segment cannot collide with (and then delete) a
	// live file.
	for _, path := range segs {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(path), "wal-%d.log", &seq); err == nil && seq > e.walSeq {
			e.walSeq = seq
		}
	}
	replayed := 0
	for _, path := range segs {
		err := wal.Replay(path, func(b wal.Batch) error {
			replayed += len(b.Times)
			return e.insertRouted(b.Sensor, b.Times, b.Values)
		})
		if err != nil {
			return fmt.Errorf("engine: wal recovery: %w", err)
		}
	}
	if replayed > 0 {
		e.Flush() // make the replayed data durable as chunk files
		if err := e.FlushError(); err != nil {
			return err
		}
	}
	for _, path := range segs {
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	return nil
}

// newWALSegment starts a fresh active segment. Caller must ensure no
// concurrent inserts (Open, or under e.mu via rotateLocked).
func (e *Engine) newWALSegment() error {
	e.walSeq++
	seg, err := wal.Create(filepath.Join(e.cfg.Dir, fmt.Sprintf("wal-%09d.log", e.walSeq)))
	if err != nil {
		return err
	}
	e.walSeg = seg
	return nil
}

// insertRouted routes points through the separation policy without WAL
// logging (used by WAL replay itself).
func (e *Engine) insertRouted(sensor string, times []int64, values []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	watermark, hasWatermark := e.lastFlushed[sensor]
	for i, t := range times {
		if hasWatermark && t <= watermark {
			e.workingUn.Write(sensor, t, values[i])
		} else {
			e.working.Write(sensor, t, values[i])
		}
		if t > e.latest[sensor] {
			e.latest[sensor] = t
		}
	}
	return nil
}

// recover loads pre-existing flushed files from the data directory.
func (e *Engine) recover() error {
	entries, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || filepath.Ext(name) != ".gtsf" {
			continue
		}
		unseq := strings.HasPrefix(name, "unseq-")
		if !unseq && !strings.HasPrefix(name, "seq-") {
			continue
		}
		path := filepath.Join(e.cfg.Dir, name)
		r, err := tsfile.Open(path)
		if err != nil {
			return fmt.Errorf("engine: recover %s: %w", name, err)
		}
		idx := r.Index()
		e.files = append(e.files, &fileHandle{path: path, reader: r, index: idx, unseq: unseq})
		for _, m := range idx {
			if !unseq && m.MaxTime > e.lastFlushed[m.Sensor] {
				e.lastFlushed[m.Sensor] = m.MaxTime
			}
			if m.MaxTime > e.latest[m.Sensor] {
				e.latest[m.Sensor] = m.MaxTime
			}
		}
		// Keep new flush files numbered after the recovered ones.
		var seqNo int
		if _, err := fmt.Sscanf(strings.TrimPrefix(strings.TrimPrefix(name, "unseq-"), "seq-"), "%d.gtsf", &seqNo); err == nil {
			if seqNo > e.fileSeq {
				e.fileSeq = seqNo
			}
		}
	}
	return nil
}

// Insert ingests one point.
func (e *Engine) Insert(sensor string, t int64, v float64) error {
	return e.InsertBatch(sensor, []int64{t}, []float64{v})
}

// InsertBatch ingests a batch of points for one sensor (the benchmark
// sends batches of 500, Section VI-A2). Points are routed through the
// separation policy individually.
func (e *Engine) InsertBatch(sensor string, times []int64, values []float64) error {
	if len(times) != len(values) {
		return fmt.Errorf("engine: batch shape mismatch: %d times, %d values", len(times), len(values))
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("engine: closed")
	}
	if e.walSeg != nil {
		if err := e.walSeg.Append(sensor, times, values); err != nil {
			e.mu.Unlock()
			return fmt.Errorf("engine: wal append: %w", err)
		}
	}
	var seq, unseq int64
	watermark, hasWatermark := e.lastFlushed[sensor]
	for i, t := range times {
		if hasWatermark && t <= watermark {
			e.workingUn.Write(sensor, t, values[i])
			unseq++
		} else {
			e.working.Write(sensor, t, values[i])
			seq++
		}
		if t > e.latest[sensor] {
			e.latest[sensor] = t
		}
	}
	var unit *flushUnit
	if e.working.Points()+e.workingUn.Points() >= e.cfg.MemTableSize {
		unit = e.rotateLocked()
	}
	e.mu.Unlock()

	e.statsMu.Lock()
	e.seqPoints += seq
	e.unseqPoints += unseq
	e.statsMu.Unlock()

	if unit != nil {
		if e.cfg.SyncFlush {
			e.drain(unit)
		} else {
			e.flushWG.Add(1)
			go func() {
				defer e.flushWG.Done()
				e.drain(unit)
			}()
		}
	}
	return nil
}

// rotateLocked transitions the working memtables to flushing and
// installs fresh ones. Caller holds e.mu.
func (e *Engine) rotateLocked() *flushUnit {
	if e.working.Empty() && e.workingUn.Empty() {
		return nil
	}
	unit := &flushUnit{seq: e.working, unseq: e.workingUn, started: time.Now()}
	unit.seq.MarkFlushing()
	unit.unseq.MarkFlushing()
	if e.cfg.WAL {
		unit.walSeg = e.walSeg
		if err := e.newWALSegment(); err != nil {
			// Writes continue unlogged; surface the problem like a
			// flush failure rather than dropping ingestion.
			e.walSeg = nil
			e.statsMu.Lock()
			if e.flushErr == nil {
				e.flushErr = err
			}
			e.statsMu.Unlock()
		}
	}
	e.flushing = append(e.flushing, unit)
	// Advance the separation watermark now: anything older than what
	// is being flushed must go to the unsequence path from here on.
	for _, s := range unit.seq.Sensors() {
		if maxT := unit.seq.Chunk(s).MaxTime(); maxT > e.lastFlushed[s] {
			e.lastFlushed[s] = maxT
		}
	}
	e.working = memtable.New(e.cfg.ArrayLen)
	e.workingUn = memtable.New(e.cfg.ArrayLen)
	return unit
}

// drain sorts and writes one flushing unit to disk, then publishes the
// resulting files and retires the unit. A failure mid-drain leaves the
// unit in the flushing list (its data stays queryable from memory) and
// records the error for Query/Close to surface.
func (e *Engine) drain(unit *flushUnit) {
	unit.mu.Lock()
	var sortDur time.Duration
	var handles []*fileHandle
	fail := func(err error) {
		unit.mu.Unlock()
		e.statsMu.Lock()
		if e.flushErr == nil {
			e.flushErr = err
		}
		e.statsMu.Unlock()
	}
	for _, part := range []struct {
		mt    *memtable.MemTable
		unseq bool
		kind  string
	}{{unit.seq, false, "seq"}, {unit.unseq, true, "unseq"}} {
		if part.mt.Empty() {
			continue
		}
		e.mu.Lock()
		e.fileSeq++
		seq := e.fileSeq
		e.mu.Unlock()
		path := filepath.Join(e.cfg.Dir, fmt.Sprintf("%s-%06d.gtsf", part.kind, seq))
		w, err := tsfile.Create(path)
		if err != nil {
			fail(fmt.Errorf("engine: flush create %s: %w", path, err))
			return
		}
		for _, sensor := range part.mt.Sensors() {
			chunk := part.mt.Chunk(sensor)
			t0 := time.Now()
			chunk.Sort(e.algo)
			sortDur += time.Since(t0)
			ts, vs := chunk.ToSlices()
			if err := w.WriteChunk(sensor, ts, vs); err != nil {
				fail(fmt.Errorf("engine: flush write %s: %w", path, err))
				return
			}
		}
		if err := w.Close(); err != nil {
			fail(fmt.Errorf("engine: flush close %s: %w", path, err))
			return
		}
		r, err := tsfile.Open(path)
		if err != nil {
			fail(fmt.Errorf("engine: flush reopen %s: %w", path, err))
			return
		}
		handles = append(handles, &fileHandle{path: path, reader: r, index: r.Index(), unseq: part.unseq})
	}
	unit.mu.Unlock()
	elapsed := time.Since(unit.started)

	e.mu.Lock()
	e.files = append(e.files, handles...)
	for i, u := range e.flushing {
		if u == unit {
			e.flushing = append(e.flushing[:i], e.flushing[i+1:]...)
			break
		}
	}
	e.mu.Unlock()

	// The generation is durable as chunk files: its WAL segment is no
	// longer needed.
	if unit.walSeg != nil {
		if err := unit.walSeg.Remove(); err != nil {
			e.statsMu.Lock()
			if e.flushErr == nil {
				e.flushErr = err
			}
			e.statsMu.Unlock()
		}
	}

	e.statsMu.Lock()
	e.flushCount++
	e.flushTotal += elapsed
	e.sortTotal += sortDur
	e.statsMu.Unlock()
}

// Flush forces the current working memtables to disk (synchronously).
func (e *Engine) Flush() {
	e.mu.Lock()
	unit := e.rotateLocked()
	e.mu.Unlock()
	if unit != nil {
		e.drain(unit)
	}
}

// Query returns every record of sensor with minT <= t <= maxT, in time
// order. When the same timestamp appears in multiple generations the
// newest write wins (unsequence over flushed, memtable over files).
// Like IoTDB, the query sorts the working TVList it touches: the
// engine lock is held across that sort, blocking writers — the
// contention Figures 13–15 measure.
func (e *Engine) Query(sensor string, minT, maxT int64) ([]TV, error) {
	var sources [][]TV

	if err := e.FlushError(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: closed")
	}
	// Oldest first: files, then flushing units, then working tables;
	// within a generation, unsequence data is newer than sequence.
	fileRefs := append([]*fileHandle(nil), e.files...)
	unitRefs := append([]*flushUnit(nil), e.flushing...)
	for _, mt := range []*memtable.MemTable{e.workingUn, e.working} {
		if chunk := mt.Chunk(sensor); chunk != nil {
			chunk.Sort(e.algo)
			if out := scanChunk(chunk, minT, maxT); len(out) > 0 {
				sources = append(sources, out)
			}
		}
	}
	e.mu.Unlock()

	for _, unit := range unitRefs {
		unit.mu.Lock()
		for _, mt := range []*memtable.MemTable{unit.unseq, unit.seq} {
			if chunk := mt.Chunk(sensor); chunk != nil {
				chunk.Sort(e.algo)
				if out := scanChunk(chunk, minT, maxT); len(out) > 0 {
					sources = append(sources, out)
				}
			}
		}
		unit.mu.Unlock()
	}

	// Files newest-first, so the rank-based dedup below gives a
	// rewritten timestamp its most recent flushed value.
	for i := len(fileRefs) - 1; i >= 0; i-- {
		ts, vs, err := fileRefs[i].reader.QuerySensor(sensor, minT, maxT)
		if err != nil {
			return nil, err
		}
		if len(ts) > 0 {
			out := make([]TV, len(ts))
			for j := range ts {
				out[j] = TV{ts[j], vs[j]}
			}
			sources = append(sources, out)
		}
	}

	switch len(sources) {
	case 0:
		return nil, nil
	case 1:
		return dedupSorted(sources[0]), nil
	}
	// Newest-wins dedup: sources were gathered newest-first (working
	// memtable before flushing units before files), so on equal
	// timestamps keep the record from the earliest-listed source.
	var all []TV
	rank := make([]int, 0)
	for si, src := range sources {
		for _, tv := range src {
			all = append(all, tv)
			rank = append(rank, si)
		}
	}
	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if all[ia].T != all[ib].T {
			return all[ia].T < all[ib].T
		}
		return rank[ia] < rank[ib]
	})
	out := make([]TV, 0, len(all))
	for _, i := range idx {
		if len(out) > 0 && out[len(out)-1].T == all[i].T {
			continue // an earlier (newer-source) record already holds this timestamp
		}
		out = append(out, all[i])
	}
	return out, nil
}

// dedupSorted collapses equal timestamps in a sorted result to one
// record (a rewrite of the same timestamp within one generation).
func dedupSorted(in []TV) []TV {
	out := in[:0]
	for i, tv := range in {
		if i > 0 && out[len(out)-1].T == tv.T {
			continue
		}
		out = append(out, tv)
	}
	return out
}

func scanChunk(chunk *tvlist.TVList[float64], minT, maxT int64) []TV {
	var out []TV
	chunk.ScanRange(minT, maxT, func(t int64, v float64) bool {
		out = append(out, TV{t, v})
		return true
	})
	return out
}

// LatestTime returns the newest ingested timestamp for sensor, used by
// the benchmark's "time > current - window" queries.
func (e *Engine) LatestTime(sensor string) (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.latest[sensor]
	return t, ok
}

// Stats returns a metrics snapshot.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	s := Stats{
		FlushCount:  e.flushCount,
		SeqPoints:   e.seqPoints,
		UnseqPoints: e.unseqPoints,
	}
	if e.flushCount > 0 {
		s.AvgFlushMillis = float64(e.flushTotal.Microseconds()) / 1000 / float64(e.flushCount)
		s.AvgSortMillis = float64(e.sortTotal.Microseconds()) / 1000 / float64(e.flushCount)
	}
	e.statsMu.Unlock()
	e.mu.Lock()
	s.Files = len(e.files)
	s.MemTablePoints = e.working.Points() + e.workingUn.Points()
	e.mu.Unlock()
	return s
}

// WaitFlushes blocks until every in-flight background flush has
// finished (it does not force a new one; see Flush for that).
func (e *Engine) WaitFlushes() { e.flushWG.Wait() }

// FlushError returns the first background flush failure, if any.
func (e *Engine) FlushError() error {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.flushErr
}

// Close flushes remaining data, waits for in-flight flushes, and
// releases file handles.
func (e *Engine) Close() error {
	e.Flush()
	e.flushWG.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	firstErr := e.FlushError()
	if e.walSeg != nil {
		// The active segment is empty (Flush above rotated the last
		// writes into a drained unit), so it can go.
		if err := e.walSeg.Remove(); err != nil && firstErr == nil {
			firstErr = err
		}
		e.walSeg = nil
	}
	for _, fh := range e.files {
		if err := fh.reader.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Algorithm returns the engine's configured sorting algorithm name.
func (e *Engine) Algorithm() string { return e.cfg.Algorithm }

// sortableGuard: the engine relies on TVList implementing
// core.Sortable; keep the dependency explicit.
var _ core.Sortable = (*tvlist.TVList[float64])(nil)
