// Package engine implements the miniature time series storage engine
// the system experiments run against — a Go stand-in for the parts of
// Apache IoTDB the paper exercises (Section V):
//
//   - writes land in a *working* memtable (one TVList per sensor);
//   - the *separation policy*: a point whose timestamp is not newer
//     than the sensor's last flushed time goes to the *unsequence*
//     memtable, so the sequence path only ever sees delays into the
//     not-too-distant future (Section II);
//   - when the memtable is full it becomes immutable (*flushing*) and
//     is drained asynchronously: each TVList is sorted with the
//     configured algorithm and encoded on a bounded worker pool, then
//     written to a TsFile-like chunk file in deterministic sensor
//     order — the flush-time metric of Figures 16–18 measures exactly
//     this state-transition-to-disk window;
//   - queries snapshot the engine state under the engine lock and do
//     their sorting outside it. IoTDB's original query-blocks-writes
//     behavior (Section VI-D1, the contention of Figures 13–15) is
//     preserved behind Config.LegacyLockedQueries for the paper
//     reproduction.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/memtable"
	"repro/internal/sortalgo"
	"repro/internal/tsfile"
	"repro/internal/tvlist"
	"repro/internal/wal"
)

// WAL sync policies (Config.WALSync).
const (
	// WALSyncNone acknowledges writes once they reach the OS page
	// cache: process crashes lose nothing, machine crashes may. This is
	// IoTDB's wal_buffer default and the paper's timing profile;
	// cmd/repro uses it.
	WALSyncNone = "none"
	// WALSyncInterval fsyncs the active segment in the background every
	// Config.WALSyncPeriod: a machine crash loses at most one period.
	WALSyncInterval = "interval"
	// WALSyncAlways acknowledges a write only after its WAL record is
	// fsynced. Concurrent inserts share fsyncs via group commit, so the
	// cost per batch shrinks as concurrency grows.
	WALSyncAlways = "always"
)

// DefaultWALSyncPeriod is the background fsync cadence under
// WALSyncInterval when Config.WALSyncPeriod is zero.
const DefaultWALSyncPeriod = 200 * time.Millisecond

// DefaultMemTableSize is the flush threshold in points. The paper uses
// 100,000 as "the appropriate memory points size in the IoTDB".
const DefaultMemTableSize = 100000

// DefaultFlatSortThreshold is the TVList length at or above which a
// backward-sort routes through the contiguous flat kernel. Below it
// the 2·O(n) coalesce/scatter copies and the pool round-trip rival the
// kernel's constant-factor win; above it the kernel dominates.
const DefaultFlatSortThreshold = 4096

// DefaultBlockPoints is the target points-per-block for the v3 chunk
// layout when Config.BlockPoints is zero. Small enough that a
// narrow-range query decodes a fraction of a big chunk, large enough
// that the per-block CRC + index entry stays under ~1% overhead.
const DefaultBlockPoints = 4096

// Leveled-compaction defaults (Config.L0CompactFiles and friends).
const (
	DefaultL0CompactFiles = 4
	DefaultLevelBaseBytes = 4 << 20
	DefaultLevelGrowth    = 10
	DefaultMaxLevel       = 4
)

// Config configures an Engine.
type Config struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// MemTableSize is the point-count flush threshold across all
	// sensors (default DefaultMemTableSize).
	MemTableSize int
	// ArrayLen is the TVList array length (default 32).
	ArrayLen int
	// Algorithm names the sorting algorithm (sortalgo registry;
	// default "backward").
	Algorithm string
	// SyncFlush makes flushes run inline on the triggering Insert,
	// for deterministic tests. Production-style async is the default.
	SyncFlush bool
	// FlushWorkers bounds the worker pool that sorts and encodes
	// sensor chunks during a flush (default GOMAXPROCS). 1 keeps the
	// drain fully sequential, as the original IoTDB-style pipeline
	// was.
	FlushWorkers int
	// FlatSortThreshold is the TVList length at or above which
	// backward-sorts take the compact-to-flat kernel path instead of
	// the in-place interface path (0 selects
	// DefaultFlatSortThreshold; negative disables the kernel, pinning
	// every sort to the interface path — cmd/repro uses that so the
	// reproduced figures keep measuring the algorithm, not the
	// kernel). Only the "backward" algorithm has a flat kernel; other
	// algorithms always sort through the interface.
	FlatSortThreshold int
	// SortParallelism bounds the flat kernel's phase-2 block-sorting
	// workers (default 1: block sorting stays on the sorting
	// goroutine, which composes predictably with FlushWorkers — raise
	// it when flushes are the bottleneck and cores are spare).
	SortParallelism int
	// FixedBlockSize, when positive, pins the backward-sort block size
	// for every flush sort instead of running the doubling search per
	// chunk — the fully static configuration the adaptive planner is
	// benchmarked against. Only meaningful for the "backward"
	// algorithm; ignored (with the search kept) otherwise, and ignored
	// when AdaptiveSort is on.
	FixedBlockSize int
	// AdaptiveSort self-tunes the flush sort path per sensor from
	// online disorder sketches (internal/adaptive): every insert feeds
	// a per-sensor O(1) sketch, and each flush plans the sort — seed
	// the block-size search with the sketch-predicted L, skip the
	// search entirely once the prediction is stable, and route
	// flat-vs-interface per sensor instead of by the global
	// FlatSortThreshold. Off by default, and only the "backward"
	// algorithm supports it; cmd/repro leaves it off so the reproduced
	// figures keep measuring the paper's static configuration.
	AdaptiveSort bool
	// LegacyLockedQueries restores IoTDB's query-blocks-writes
	// behavior: queries sort the live working TVLists in place while
	// holding the engine lock. Off by default — queries snapshot under
	// the lock and sort outside it. cmd/repro turns it on so Figures
	// 13–15 keep measuring the contention the paper describes.
	LegacyLockedQueries bool
	// WAL enables the write-ahead log: every batch is logged before
	// it is acknowledged, and unflushed memtable contents are
	// replayed (and immediately flushed) on Open. Off by default —
	// the paper's experiments do not exercise it.
	WAL bool
	// WALSync selects the WAL durability policy: WALSyncNone (default),
	// WALSyncInterval, or WALSyncAlways. Only meaningful when WAL is
	// on. Any policy other than none also makes chunk publication
	// durable: flushed files are fsynced before their rename into
	// place, and the data directory is fsynced after segment and chunk
	// lifecycle changes.
	WALSync string
	// WALSyncPeriod is the background fsync cadence under
	// WALSyncInterval (default DefaultWALSyncPeriod).
	WALSyncPeriod time.Duration
	// FS is the filesystem seam for the write path (default
	// faultfs.OS). Crash tests inject fault filesystems here; it
	// threads through the WAL, chunk-file writes, renames and removes.
	FS faultfs.FS
	// SharedPool, when set, replaces the engine's own flush worker
	// pool with one shared across engines (the shard layer uses this
	// so N shards stay within one machine-wide sort/encode bound).
	// FlushWorkers is ignored then, and Close leaves the pool running
	// for its owner to stop.
	SharedPool *SharedFlushPool
	// BlockPoints selects the tsfile chunk layout for flushed and
	// compacted files: > 0 writes format v3 with ~BlockPoints points
	// per independently CRC'd, independently indexed block, 0 selects
	// DefaultBlockPoints, and a negative value pins the legacy v2
	// single-unit chunks — cmd/repro uses -1 so the paper's write path
	// stays byte-for-byte.
	BlockPoints int
	// PartitionDuration, when > 0, enables time-partitioned leveled
	// storage: flush output lands under p<epoch>/L0/ (epoch =
	// floor(t / PartitionDuration)), per-level size bounds trigger
	// bounded merges into the next level after each flush, and whole
	// expired partitions drop in O(1) via DropPartitionsBefore. 0
	// keeps the flat single-directory layout and Compact's
	// fold-everything semantics.
	PartitionDuration int64
	// L0CompactFiles triggers a level-0 merge in a partition once its
	// L0 holds at least this many files (default
	// DefaultL0CompactFiles). Partitioned mode only.
	L0CompactFiles int
	// LevelBaseBytes is the level-0 size bound; level n is bounded by
	// LevelBaseBytes · LevelGrowth^n (defaults DefaultLevelBaseBytes /
	// DefaultLevelGrowth). An automatic compaction pass never reads
	// more than one level's bound per pass.
	LevelBaseBytes int64
	// LevelGrowth is the per-level bound multiplier (default
	// DefaultLevelGrowth).
	LevelGrowth int
	// MaxLevel is the deepest level automatic compaction creates
	// (default DefaultMaxLevel). The terminal level is never rewritten
	// by the automatic path; a full Compact still folds it.
	MaxLevel int
}

// TV is one query result record.
type TV struct {
	T int64
	V float64
}

// Stats is a snapshot of engine-side metrics. The write-side counters
// and the flush timings come from one coherent two-lock snapshot; the
// lock-wait numbers are lock-free counters read at the same moment.
type Stats struct {
	FlushCount     int
	AvgFlushMillis float64 // mean wall time: state transition → file on disk
	// AvgSortMillis is the mean summed chunk-sorting time per flush.
	// With FlushWorkers > 1 sorts run concurrently, so this is CPU
	// time and can exceed the flush wall time.
	AvgSortMillis   float64
	AvgEncodeMillis float64 // mean summed chunk-encoding (columnar codec + CRC) time per flush
	AvgWriteMillis  float64 // mean file write+close+reopen wall time per flush
	SeqPoints       int64   // points ingested via the sequence path
	UnseqPoints     int64   // points diverted by the separation policy
	Files           int
	MemTablePoints  int
	FlushWorkers    int   // resolved worker-pool size
	SortsSkipped    int64 // TVList sorts avoided via the sorted flag
	// Sort kernel routing: how many TVList sorts took the contiguous
	// flat kernel vs the in-place interface path, and the cumulative
	// wall time spent in each (flush drains and queries combined).
	FlatSorts           int64
	InterfaceSorts      int64
	FlatSortMillis      float64
	InterfaceSortMillis float64
	SortParallelism     int // resolved phase-2 worker bound
	FlatSortThreshold   int // resolved routing threshold (<0 = kernel off)
	// Adaptive sort-path counters (Config.AdaptiveSort): how often the
	// per-sensor disorder sketches informed flush sorts, the doubling
	// -search scan iterations they avoided, the per-sensor routing
	// outcomes, and the range of block sizes the planned sorts ran
	// with (a two-sided histogram summary; 0 = no planned sort yet).
	AdaptiveSortEnabled bool
	SketchSeededFlushes int64 // flushes with ≥1 sketch-informed sort decision
	SearchItersSaved    int64 // block-size search iterations skipped via seeding/pinning
	AdaptiveFixedSorts  int64 // planned sorts that pinned L and skipped the search
	AdaptiveSeededSorts int64 // planned sorts whose search started at the sketch seed
	AdaptiveFlatRoutes  int64 // planned sorts routed per-sensor to the flat kernel
	AdaptiveIfaceRoutes int64 // planned sorts routed per-sensor to the interface path
	AdaptiveMinL        int64 // smallest L a planned sort ran with
	AdaptiveMaxL        int64 // largest L a planned sort ran with
	// Engine-lock contention, recorded only when an acquisition had to
	// wait (the uncontended fast path is not counted).
	LockWaits         int64
	AvgLockWaitMicros float64
	MaxLockWaitMicros float64
	P99LockWaitMicros float64
	QueriesBlocked    int64 // queries that waited on the engine lock
	// Durability counters: WAL fsync activity (WALCommits/WALSyncs is
	// the mean group-commit batch size under WALSyncAlways) and crash
	// recovery outcomes from the last Open.
	WALSyncs            int64 // fsyncs issued on WAL segments
	WALCommits          int64 // commit tickets served by those fsyncs
	QuarantinedFiles    int   // torn/corrupt files quarantined at recovery
	RecoveredWALBatches int64 // batches replayed from WAL at recovery
	// Aggregation-pushdown pruning counters: chunks answered from
	// index statistics without decoding (and the points that skipped
	// decoding as a result) vs chunks the read path actually decoded.
	ChunksFromStats int64
	ChunksDecoded   int64
	PointsSkipped   int64
	// Read-amplification counters (v3 block index): file bytes
	// fetched for decode on the query path, and the per-block outcome
	// of the time-range seek — decoded vs skipped without I/O.
	// BlocksFromStats counts blocks answered from per-block statistics
	// (the block-granular extension of ChunksFromStats).
	BytesRead       int64
	BlocksDecoded   int64
	BlocksSkipped   int64
	BlocksFromStats int64
	// Leveled compaction and time-partition lifecycle.
	CompactionPasses       int64 // merge passes completed (automatic + full)
	CompactionBytesRead    int64 // input bytes consumed by those passes
	MaxCompactionPassBytes int64 // largest single pass's input bytes
	PartitionsDropped      int64 // partitions removed by DropPartitionsBefore
	PartitionsActive       int   // distinct time partitions currently on disk
	// Label-index counters. The inverted series index lives at the
	// shard-router layer, so a bare engine always reports zeros; the
	// fields sit in Stats so the merged router snapshot keeps the
	// engine's shape for every existing consumer.
	SeriesCount        int   // registered label series
	LabelPairs         int   // distinct name=value postings lists
	PostingsEntries    int64 // total series-id entries across postings
	MatcherResolutions int64 // selector resolutions served by the index
	SelectorQueries    int64 // multi-series selector queries executed
	FanoutSeries       int64 // per-series subqueries fanned out by those
	MaxFanoutWidth     int   // widest single selector fan-out
	// Ingest front-end counters. The bounded dispatch queue and the
	// connection multiplexer live in the rpc server (shared with the
	// HTTP gateway), so a bare engine always reports zeros; the server
	// overlays them onto the aggregate snapshot it serves, the same
	// way the router injects the label-index counters.
	IngestQueueCap   int   // dispatch queue capacity
	IngestQueueDepth int   // tasks waiting at snapshot time
	IngestWorkers    int   // shared worker-pool size
	IngestEnqueued   int64 // ops accepted into the queue (rpc + http)
	IngestRejected   int64 // ops refused with overloaded/429
	PipelinedConns   int64 // v7 tagged-frame connections accepted
	LegacyConns      int64 // v<=6 one-in-flight connections accepted
	// HTTP gateway counters, filled only by the gateway's own /stats
	// view (the rpc stats payload does not carry them).
	HTTPWrites int64 // line-protocol POST /write requests served
	HTTPPoints int64 // points ingested through the gateway
}

// Engine is the storage engine. All methods are safe for concurrent
// use.
type Engine struct {
	cfg        Config
	algo       sortalgo.Func
	pool       *flushPool
	poolShared bool // pool belongs to cfg.SharedPool's owner, not us

	// Durability plumbing, resolved at Open: the filesystem seam, the
	// sync policy split into its two consequences (walDurable: segment
	// and chunk lifecycle ops fsync; walAlways: inserts ack only after
	// a group commit), and the WAL-wide fsync counters shared by every
	// segment this engine creates.
	fs         faultfs.FS
	walDurable bool
	walAlways  bool
	walStats   wal.SyncStats

	// Recovery outcomes from Open (written before Open returns, then
	// read-only).
	quarantined      int
	recoveredBatches int64

	// Interval-sync ticker lifecycle (WALSyncInterval only).
	walTickStop chan struct{}
	walTickDone chan struct{}

	// Flat-kernel routing, resolved at Open: lists of at least
	// flatThreshold records sort through tvlist.EnsureSortedFlat when
	// useFlat (algorithm is "backward" and the threshold is not
	// negative); everything else takes the interface path.
	useFlat       bool
	flatThreshold int
	flatOpts      core.FlatOptions

	// Adaptive sort path (Config.AdaptiveSort): the planner persists
	// per-sensor decayed disorder state across flush generations;
	// per-generation sketches live in the memtables.
	adaptive bool
	planner  *adaptive.Planner

	// mu is the engine lock. It guards the mutable engine state: the
	// working memtables, the flushing list, the files list, the
	// watermarks and the sequence counters. Unless
	// Config.LegacyLockedQueries is set, queries hold it only long
	// enough to snapshot — never across a sort.
	mu          sync.Mutex
	working     *memtable.MemTable // sequence writes
	workingUn   *memtable.MemTable // unsequence writes (separation policy)
	flushing    []*flushUnit
	lastFlushed map[string]int64 // per-sensor separation watermark
	latest      map[string]int64 // per-sensor max ingested time ("current")
	files       []*fileHandle
	fileSeq     int
	walSeq      int
	walSeg      *wal.Segment // active segment covering the working memtables
	closed      bool
	closeDone   chan struct{} // closed when the winning Close finishes
	closeErr    error         // the winning Close's result; read after closeDone

	flushWG   sync.WaitGroup
	compactMu sync.Mutex // serializes Compact calls

	statsMu     sync.Mutex
	flushTotal  time.Duration
	sortTotal   time.Duration
	encodeTotal time.Duration
	writeTotal  time.Duration
	flushCount  int
	seqPoints   int64
	unseqPoints int64
	flushErr    error // first background flush failure, surfaced on Query/Close

	lockHist       lockWaitHist
	queriesBlocked atomic.Int64
	sortsSkipped   atomic.Int64

	// Sort-path observability (lock-free; drains and queries both
	// feed them through sortChunk).
	flatSorts      atomic.Int64
	ifaceSorts     atomic.Int64
	flatSortNanos  atomic.Int64
	ifaceSortNanos atomic.Int64

	// Adaptive sort-path observability (lock-free; planned flush sorts
	// feed them through sortChunkPlanned).
	sketchSeededFlushes atomic.Int64
	searchItersSaved    atomic.Int64
	adaptiveFixedSorts  atomic.Int64
	adaptiveSeededSorts atomic.Int64
	adaptiveFlatRoutes  atomic.Int64
	adaptiveIfaceRoutes atomic.Int64
	adaptiveMinL        atomic.Int64 // 0 = no adaptive sort yet
	adaptiveMaxL        atomic.Int64

	// Aggregation-pushdown observability (lock-free; Query and
	// AggregateWindows feed them).
	chunksFromStats atomic.Int64
	chunksDecoded   atomic.Int64
	pointsSkipped   atomic.Int64

	// Read-amplification observability (lock-free; the file read path
	// feeds them).
	bytesRead       atomic.Int64
	blocksDecoded   atomic.Int64
	blocksSkipped   atomic.Int64
	blocksFromStats atomic.Int64

	// Compaction/partition observability.
	compactionPasses    atomic.Int64
	compactionBytesRead atomic.Int64
	maxCompactionPass   atomic.Int64
	partitionsDropped   atomic.Int64

	// Partitioned-mode settings, resolved at Open. blockPoints <= 0
	// means the legacy v2 chunk layout.
	blockPoints int
	partitioned bool
}

// flushUnit is one immutable memtable pair being drained. Its chunks
// are sorted in place by drain workers and by queries; chunkLocks
// serializes those sorts per chunk (the map is built at rotation and
// read-only afterwards, so lookups need no extra locking).
type flushUnit struct {
	seq        *memtable.MemTable
	unseq      *memtable.MemTable
	walSeg     *wal.Segment // segment covering this generation, if WAL is on
	started    time.Time
	chunkLocks map[*tvlist.TVList[float64]]*sync.Mutex
}

func (u *flushUnit) lockChunk(c *tvlist.TVList[float64]) *sync.Mutex {
	return u.chunkLocks[c]
}

// fileHandle is one flushed file with its cached chunk index. Handles
// are reference-counted: the engine's files list holds one reference
// and every query that snapshots the list takes another for the
// duration of its reads, so retiring a file (Close, compaction)
// cannot close a reader out from under a query that released the
// engine lock.
type fileHandle struct {
	path   string
	reader *tsfile.Reader
	index  []tsfile.ChunkMeta
	unseq  bool
	refs   atomic.Int64
	size   int64 // on-disk bytes, for level bounds and pass accounting
	// Placement under the partitioned layout. Legacy flat-layout files
	// have partitioned == false; they rank oldest and are folded into
	// partitions by the next full Compact.
	partitioned bool
	part        int64
	level       int
	seqNo       int
}

func newFileHandle(path string, r *tsfile.Reader, unseq bool) *fileHandle {
	h := &fileHandle{path: path, reader: r, index: r.Index(), unseq: unseq}
	if st, err := os.Stat(path); err == nil {
		h.size = st.Size()
	}
	h.refs.Store(1)
	return h
}

func (h *fileHandle) acquire() { h.refs.Add(1) }

// release drops one reference, closing the reader when the last one
// goes.
func (h *fileHandle) release() error {
	if h.refs.Add(-1) == 0 {
		return h.reader.Close()
	}
	return nil
}

// Open creates or opens an engine over cfg.Dir. Flushed files from a
// previous run are recovered: their indexes are loaded, the separation
// watermarks restored from the sequence files, and their data becomes
// queryable again. (Unflushed memtable contents are lost on crash — as
// in an IoTDB deployment without its write-ahead log, which the
// paper's experiments do not exercise.)
func Open(cfg Config) (*Engine, error) {
	if cfg.MemTableSize <= 0 {
		cfg.MemTableSize = DefaultMemTableSize
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "backward"
	}
	algo, ok := sortalgo.Get(cfg.Algorithm)
	if !ok {
		return nil, fmt.Errorf("engine: unknown sort algorithm %q", cfg.Algorithm)
	}
	if cfg.FixedBlockSize > 0 && cfg.Algorithm == "backward" && !cfg.AdaptiveSort {
		// Fully static block size: pin L on the interface path too (the
		// flat kernel gets it through flatOpts below).
		fixed := core.Options{FixedBlockSize: cfg.FixedBlockSize}
		algo = func(s core.Sortable) { core.BackwardSort(s, fixed) }
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("engine: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	workers := cfg.FlushWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	flatThreshold := cfg.FlatSortThreshold
	if flatThreshold == 0 {
		flatThreshold = DefaultFlatSortThreshold
	}
	sortPar := cfg.SortParallelism
	if sortPar <= 0 {
		sortPar = 1
	}
	switch cfg.WALSync {
	case "", WALSyncNone, WALSyncInterval, WALSyncAlways:
	default:
		return nil, fmt.Errorf("engine: unknown WAL sync policy %q", cfg.WALSync)
	}
	if cfg.WALSyncPeriod <= 0 {
		cfg.WALSyncPeriod = DefaultWALSyncPeriod
	}
	fs := cfg.FS
	if fs == nil {
		fs = faultfs.OS
	}
	blockPoints := cfg.BlockPoints
	if blockPoints == 0 {
		blockPoints = DefaultBlockPoints
	}
	if blockPoints < 0 {
		blockPoints = 0 // legacy v2 chunk layout
	}
	if cfg.PartitionDuration < 0 {
		return nil, fmt.Errorf("engine: negative PartitionDuration %d", cfg.PartitionDuration)
	}
	if cfg.L0CompactFiles <= 0 {
		cfg.L0CompactFiles = DefaultL0CompactFiles
	}
	if cfg.LevelBaseBytes <= 0 {
		cfg.LevelBaseBytes = DefaultLevelBaseBytes
	}
	if cfg.LevelGrowth <= 1 {
		cfg.LevelGrowth = DefaultLevelGrowth
	}
	if cfg.MaxLevel <= 0 {
		cfg.MaxLevel = DefaultMaxLevel
	}
	e := &Engine{
		cfg:           cfg,
		algo:          algo,
		fs:            fs,
		walDurable:    cfg.WAL && (cfg.WALSync == WALSyncInterval || cfg.WALSync == WALSyncAlways),
		walAlways:     cfg.WAL && cfg.WALSync == WALSyncAlways,
		useFlat:       flatThreshold > 0 && cfg.Algorithm == "backward",
		flatThreshold: flatThreshold,
		flatOpts:      core.FlatOptions{Parallelism: sortPar, FixedBlockSize: fixedBlock(cfg)},
		adaptive:      cfg.AdaptiveSort && cfg.Algorithm == "backward",
		working:       memtable.New(cfg.ArrayLen),
		workingUn:     memtable.New(cfg.ArrayLen),
		lastFlushed:   make(map[string]int64),
		latest:        make(map[string]int64),
		blockPoints:   blockPoints,
		partitioned:   cfg.PartitionDuration > 0,
	}
	if e.adaptive {
		e.planner = adaptive.NewPlanner(adaptive.Config{FlatMinLen: flatThreshold})
		e.working.TrackDisorder()
		e.workingUn.TrackDisorder()
	}
	if cfg.SharedPool != nil {
		e.pool = cfg.SharedPool.p
		e.poolShared = true
	} else {
		e.pool = newFlushPool(workers)
	}
	opened := false
	defer func() {
		if !opened && !e.poolShared {
			e.pool.close()
		}
	}()
	if err := e.recover(); err != nil {
		return nil, err
	}
	if cfg.WAL {
		if err := e.recoverWAL(); err != nil {
			return nil, err
		}
		// The recovery flush may already have rotated a fresh active
		// segment into place; only create one if it did not.
		if e.walSeg == nil {
			if err := e.newWALSegment(); err != nil {
				return nil, err
			}
		}
		if cfg.WALSync == WALSyncInterval {
			e.walTickStop = make(chan struct{})
			e.walTickDone = make(chan struct{})
			go e.walSyncLoop()
		}
	}
	opened = true
	return e, nil
}

// walSyncLoop fsyncs the active segment every WALSyncPeriod (the
// WALSyncInterval policy): a machine crash loses at most one period of
// acknowledged writes. It goes through Commit, so a tick overlapping
// always-style committers (or a segment mid-retirement) coalesces
// instead of double-syncing.
func (e *Engine) walSyncLoop() {
	defer close(e.walTickDone)
	ticker := time.NewTicker(e.cfg.WALSyncPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-e.walTickStop:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		seg := e.walSeg
		e.mu.Unlock()
		if seg == nil {
			continue
		}
		if err := seg.Commit(); err != nil {
			e.recordFlushErr(fmt.Errorf("engine: wal interval sync: %w", err))
		}
	}
}

// recoverWAL replays unflushed generations from leftover WAL segments
// into the working memtables, flushes them to chunk files, and removes
// the segments.
func (e *Engine) recoverWAL() error {
	segs, err := wal.Segments(e.cfg.Dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	// Seed the segment counter past every leftover so the recovery
	// flush's fresh segment cannot collide with (and then delete) a
	// live file.
	for _, path := range segs {
		if seq, ok := wal.SeqFromName(filepath.Base(path)); ok && seq > e.walSeq {
			e.walSeq = seq
		}
	}
	replayedPoints := 0
	for _, path := range segs {
		err := wal.Replay(path, func(b wal.Batch) error {
			replayedPoints += len(b.Times)
			e.recoveredBatches++
			return e.insertRouted(b.Sensor, b.Times, b.Values)
		})
		if err != nil {
			return fmt.Errorf("engine: wal recovery: %w", err)
		}
	}
	if replayedPoints > 0 {
		e.Flush() // make the replayed data durable as chunk files
		if err := e.FlushError(); err != nil {
			return err
		}
	}
	for _, path := range segs {
		if err := e.fs.Remove(path); err != nil {
			return err
		}
	}
	if e.walDurable {
		if err := e.fs.SyncDir(e.cfg.Dir); err != nil {
			return err
		}
	}
	return nil
}

// newWALSegment starts a fresh active segment. Caller must ensure no
// concurrent inserts (Open, or under e.mu via rotateLocked).
func (e *Engine) newWALSegment() error {
	e.walSeq++
	seg, err := wal.CreateFS(e.fs, filepath.Join(e.cfg.Dir, wal.SegmentName(e.walSeq)),
		wal.Options{Durable: e.walDurable, Stats: &e.walStats})
	if err != nil {
		return err
	}
	e.walSeg = seg
	return nil
}

// insertRouted routes points through the separation policy without WAL
// logging (used by WAL replay itself).
func (e *Engine) insertRouted(sensor string, times []int64, values []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	watermark, hasWatermark := e.lastFlushed[sensor]
	for i, t := range times {
		if hasWatermark && t <= watermark {
			e.workingUn.Write(sensor, t, values[i])
		} else {
			e.working.Write(sensor, t, values[i])
		}
		if t > e.latest[sensor] {
			e.latest[sensor] = t
		}
	}
	return nil
}

// quarantineSuffix marks files recovery set aside instead of serving:
// unpublished flush temporaries and chunk files that failed
// validation. Quarantined files are renamed, not deleted — an operator
// (or a forensic test) can still inspect them — and recovery skips
// them on later Opens.
const quarantineSuffix = ".quarantine"

// quarantine renames path out of the live namespace and counts it.
func (e *Engine) quarantine(path string) error {
	if err := e.fs.Rename(path, path+quarantineSuffix); err != nil {
		return fmt.Errorf("engine: quarantine %s: %w", filepath.Base(path), err)
	}
	e.quarantined++
	return nil
}

// recoverChunkDir loads the chunk files of one directory. Leftover
// flush temporaries (crash before the publishing rename) and chunk
// files that fail header/footer/index validation are quarantined
// rather than served or fatal: a crash mid-publication must never
// leave the directory unopenable, and a torn file must never answer a
// query. Handles are returned in directory (lexicographic) order.
func (e *Engine) recoverChunkDir(dir string, partitioned bool, part int64, level int) ([]*fileHandle, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*fileHandle
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".gtsf.tmp") {
			// A flush or compaction died between Create and the
			// publishing rename. The WAL still covers any unflushed
			// generation; the partial file is garbage.
			if err := e.quarantine(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
			continue
		}
		if filepath.Ext(name) != ".gtsf" {
			continue
		}
		unseq := strings.HasPrefix(name, "unseq-")
		if !unseq && !strings.HasPrefix(name, "seq-") {
			continue
		}
		path := filepath.Join(dir, name)
		r, err := tsfile.Open(path)
		if err != nil {
			if errors.Is(err, tsfile.ErrCorrupt) {
				if qerr := e.quarantine(path); qerr != nil {
					return nil, qerr
				}
				continue
			}
			return nil, fmt.Errorf("engine: recover %s: %w", name, err)
		}
		fh := newFileHandle(path, r, unseq)
		fh.partitioned = partitioned
		fh.part = part
		fh.level = level
		// Keep new flush files numbered after the recovered ones.
		if _, err := fmt.Sscanf(strings.TrimPrefix(strings.TrimPrefix(name, "unseq-"), "seq-"), "%d.gtsf", &fh.seqNo); err == nil {
			if fh.seqNo > e.fileSeq {
				e.fileSeq = fh.seqNo
			}
		}
		out = append(out, fh)
	}
	return out, nil
}

// parsePartitionDir parses a time-partition directory name ("p<epoch>",
// epoch possibly negative).
func parsePartitionDir(name string) (int64, bool) {
	if len(name) < 2 || name[0] != 'p' {
		return 0, false
	}
	part, err := strconv.ParseInt(name[1:], 10, 64)
	return part, err == nil
}

// parseLevelDir parses a compaction-level directory name ("L<n>").
func parseLevelDir(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'L' {
		return 0, false
	}
	level, err := strconv.Atoi(name[1:])
	if err != nil || level < 0 {
		return 0, false
	}
	return level, true
}

// recover loads pre-existing flushed files: flat-layout files in the
// root of the data directory (the legacy layout, still the default),
// then partitioned files under p<epoch>/L<level>/. The files list must
// end up ordered oldest generation first — that ordering is what gives
// newest-wins dedup its ranks — so legacy files come first (they
// predate any partitioned run, and keep their historical lexicographic
// order), and partitioned files follow sorted by partition, then level
// descending (higher levels hold older, already-compacted data), then
// sequence number (a same-level file with a higher sequence is newer).
func (e *Engine) recover() error {
	legacy, err := e.recoverChunkDir(e.cfg.Dir, false, 0, 0)
	if err != nil {
		return err
	}
	e.files = append(e.files, legacy...)

	entries, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return err
	}
	var parts []*fileHandle
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		part, ok := parsePartitionDir(ent.Name())
		if !ok {
			continue
		}
		partDir := filepath.Join(e.cfg.Dir, ent.Name())
		levels, err := os.ReadDir(partDir)
		if err != nil {
			return err
		}
		for _, lent := range levels {
			if !lent.IsDir() {
				continue
			}
			level, ok := parseLevelDir(lent.Name())
			if !ok {
				continue
			}
			hs, err := e.recoverChunkDir(filepath.Join(partDir, lent.Name()), true, part, level)
			if err != nil {
				return err
			}
			parts = append(parts, hs...)
		}
	}
	sort.SliceStable(parts, func(a, b int) bool {
		x, y := parts[a], parts[b]
		if x.part != y.part {
			return x.part < y.part
		}
		if x.level != y.level {
			return x.level > y.level
		}
		return x.seqNo < y.seqNo
	})
	e.files = append(e.files, parts...)

	for _, fh := range e.files {
		for _, m := range fh.index {
			if !fh.unseq && m.MaxTime > e.lastFlushed[m.Sensor] {
				e.lastFlushed[m.Sensor] = m.MaxTime
			}
			if m.MaxTime > e.latest[m.Sensor] {
				e.latest[m.Sensor] = m.MaxTime
			}
		}
	}
	if e.quarantined > 0 && e.walDurable {
		if err := e.fs.SyncDir(e.cfg.Dir); err != nil {
			return err
		}
	}
	return nil
}

// Insert ingests one point.
func (e *Engine) Insert(sensor string, t int64, v float64) error {
	return e.InsertBatch(sensor, []int64{t}, []float64{v})
}

// InsertBatch ingests a batch of points for one sensor (the benchmark
// sends batches of 500, Section VI-A2). Points are routed through the
// separation policy individually.
func (e *Engine) InsertBatch(sensor string, times []int64, values []float64) error {
	if len(times) != len(values) {
		return fmt.Errorf("engine: batch shape mismatch: %d times, %d values", len(times), len(values))
	}
	e.lockContended(false)
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("engine: closed")
	}
	if e.cfg.WAL && e.walSeg == nil {
		// A previous segment rotation failed: accepting this write
		// would acknowledge data that no WAL covers. Reject instead —
		// the durability contract outranks availability here.
		e.mu.Unlock()
		return fmt.Errorf("engine: wal unavailable (segment rotation failed); write rejected")
	}
	walSeg := e.walSeg
	if walSeg != nil {
		if err := walSeg.Append(sensor, times, values); err != nil {
			e.mu.Unlock()
			return fmt.Errorf("engine: wal append: %w", err)
		}
	}
	var seq, unseq int64
	watermark, hasWatermark := e.lastFlushed[sensor]
	for i, t := range times {
		if hasWatermark && t <= watermark {
			e.workingUn.Write(sensor, t, values[i])
			unseq++
		} else {
			e.working.Write(sensor, t, values[i])
			seq++
		}
		if t > e.latest[sensor] {
			e.latest[sensor] = t
		}
	}
	var unit *flushUnit
	if e.working.Points()+e.workingUn.Points() >= e.cfg.MemTableSize {
		unit = e.rotateLocked()
		if unit != nil {
			// Registered while still holding e.mu: Close marks the
			// engine closed under the same lock, so it can never miss
			// this drain when it waits on the group.
			e.flushWG.Add(1)
		}
	}
	e.mu.Unlock()

	e.statsMu.Lock()
	e.seqPoints += seq
	e.unseqPoints += unseq
	e.statsMu.Unlock()

	var commitErr error
	if walSeg != nil && e.walAlways {
		// Acknowledge only after the record is on stable storage. The
		// fsync runs outside e.mu, so concurrent inserts group-commit:
		// they piggyback on one in-flight fsync instead of queueing one
		// each. If this batch's generation already flushed (the segment
		// was retired mid-commit), Commit reports success — the data is
		// durable as an fsynced chunk file.
		commitErr = walSeg.Commit()
	}

	// A registered drain must run even when the commit failed — the
	// unit is already in the flushing list and Close waits on it.
	if unit != nil {
		if e.cfg.SyncFlush {
			e.drain(unit)
			e.flushWG.Done()
		} else {
			go func() {
				defer e.flushWG.Done()
				e.drain(unit)
			}()
		}
	}
	if commitErr != nil {
		return fmt.Errorf("engine: wal commit: %w", commitErr)
	}
	return nil
}

// rotateLocked transitions the working memtables to flushing and
// installs fresh ones. Caller holds e.mu.
func (e *Engine) rotateLocked() *flushUnit {
	if e.working.Empty() && e.workingUn.Empty() {
		return nil
	}
	unit := &flushUnit{
		seq:        e.working,
		unseq:      e.workingUn,
		started:    time.Now(),
		chunkLocks: make(map[*tvlist.TVList[float64]]*sync.Mutex),
	}
	unit.seq.MarkFlushing()
	unit.unseq.MarkFlushing()
	for _, mt := range []*memtable.MemTable{unit.seq, unit.unseq} {
		for _, s := range mt.Sensors() {
			unit.chunkLocks[mt.Chunk(s)] = &sync.Mutex{}
		}
	}
	if e.cfg.WAL {
		unit.walSeg = e.walSeg
		if err := e.newWALSegment(); err != nil {
			// Writes continue unlogged; surface the problem like a
			// flush failure rather than dropping ingestion.
			e.walSeg = nil
			e.recordFlushErr(err)
		}
	}
	e.flushing = append(e.flushing, unit)
	// Advance the separation watermark now: anything older than what
	// is being flushed must go to the unsequence path from here on.
	for _, s := range unit.seq.Sensors() {
		if maxT := unit.seq.Chunk(s).MaxTime(); maxT > e.lastFlushed[s] {
			e.lastFlushed[s] = maxT
		}
	}
	e.working = memtable.New(e.cfg.ArrayLen)
	e.workingUn = memtable.New(e.cfg.ArrayLen)
	if e.adaptive {
		// Fresh memtables start fresh sketches: per-generation disorder
		// state never leaks across the rotation — the planner holds the
		// decayed cross-generation memory.
		e.working.TrackDisorder()
		e.workingUn.TrackDisorder()
	}
	return unit
}

// recordFlushErr stores the first background failure for Query/Close
// to surface.
func (e *Engine) recordFlushErr(err error) {
	e.statsMu.Lock()
	if e.flushErr == nil {
		e.flushErr = err
	}
	e.statsMu.Unlock()
}

// partitionOf returns the time-partition index of t (floor division,
// so negative timestamps land in negative partitions). Partitioned
// mode only.
func (e *Engine) partitionOf(t int64) int64 {
	d := e.cfg.PartitionDuration
	p := t / d
	if t < 0 && t%d != 0 {
		p--
	}
	return p
}

// partitionBounds is partitionOf's inverse: partition p covers
// [p·d, (p+1)·d).
func (e *Engine) partitionBounds(p int64) (lo, hi int64) {
	d := e.cfg.PartitionDuration
	return p * d, (p+1)*d - 1
}

// writeChunkFile assembles one chunk file at path (creating its
// directory first under the partitioned layout) with the same atomic
// publication protocol flush has always used: build at a .tmp path,
// rename into place only once complete — and, under a durable sync
// policy, fsync the file before the rename and the directory after. A
// crash at any point leaves either no file or a .tmp that recovery
// quarantines, never a torn file at a servable name.
func (e *Engine) writeChunkFile(path string, mkdir bool, write func(w *tsfile.Writer) error) error {
	dir := filepath.Dir(path)
	if mkdir {
		if err := e.fs.MkdirAll(dir); err != nil {
			return fmt.Errorf("engine: flush mkdir %s: %w", dir, err)
		}
	}
	tmp := path + ".tmp"
	w, err := tsfile.CreateFS(e.fs, tmp)
	if err != nil {
		return fmt.Errorf("engine: flush create %s: %w", tmp, err)
	}
	w.BlockPoints = e.blockPoints
	w.SyncOnClose = e.walDurable
	if err := write(w); err != nil {
		w.Close()
		e.fs.Remove(tmp)
		return fmt.Errorf("engine: flush write %s: %w", tmp, err)
	}
	if err := w.Close(); err != nil {
		e.fs.Remove(tmp)
		return fmt.Errorf("engine: flush close %s: %w", tmp, err)
	}
	if err := e.fs.Rename(tmp, path); err != nil {
		e.fs.Remove(tmp)
		return fmt.Errorf("engine: flush publish %s: %w", path, err)
	}
	if e.walDurable {
		if err := e.fs.SyncDir(dir); err != nil {
			e.fs.Remove(path)
			return fmt.Errorf("engine: flush publish sync %s: %w", dir, err)
		}
		if mkdir {
			// The partition/level directories may be new; their own
			// durability hangs off the root directory entry.
			if err := e.fs.SyncDir(e.cfg.Dir); err != nil {
				e.fs.Remove(path)
				return fmt.Errorf("engine: flush publish sync %s: %w", e.cfg.Dir, err)
			}
		}
	}
	return nil
}

// drain sorts, encodes and writes one flushing unit to disk, then
// publishes the resulting files and retires the unit. Chunk sorting
// and encoding fan out across the engine's flush worker pool; the
// encoded chunks are appended to the file in deterministic (sorted
// sensor) order by this goroutine. Under the partitioned layout a
// sensor's sorted points are split at time-partition boundaries and
// each partition gets its own level-0 file. A failure mid-drain closes
// and removes everything the drain created — the unit stays in the
// flushing list (its data remains queryable from memory, and no
// partial .gtsf file is left for recover() to trip over on the next
// Open) — and records the error for Query/Close to surface.
func (e *Engine) drain(unit *flushUnit) {
	var sortNanos, encodeNanos atomic.Int64
	var sketchInformed atomic.Bool
	var writeDur time.Duration
	var handles []*fileHandle
	fail := func(err error) {
		for _, h := range handles {
			h.release()
			e.fs.Remove(h.path)
		}
		e.recordFlushErr(err)
	}
	// One encoded chunk destined for one partition's file (part is 0
	// and unused in flat mode).
	type pchunk struct {
		part int64
		enc  *tsfile.EncodedChunk
	}
	for _, part := range []struct {
		mt    *memtable.MemTable
		unseq bool
		kind  string
	}{{unit.seq, false, "seq"}, {unit.unseq, true, "unseq"}} {
		if part.mt.Empty() {
			continue
		}
		sensors := part.mt.Sensors()
		encoded := make([][]pchunk, len(sensors))
		errs := make([]error, len(sensors))
		jobs := make([]func(), len(sensors))
		mt := part.mt
		for i := range sensors {
			i := i
			jobs[i] = func() {
				sensor := sensors[i]
				chunk := mt.Chunk(sensor)
				mu := unit.lockChunk(chunk)
				mu.Lock()
				if sk, ok := mt.Sketch(sensor); e.adaptive && ok {
					dec := e.planner.Plan(sensor, sk, chunk.Len())
					if dec.Sketched {
						sketchInformed.Store(true)
					}
					sortNanos.Add(e.sortChunkPlanned(sensor, chunk, dec))
				} else {
					sortNanos.Add(e.sortChunk(chunk))
				}
				ts, vs := chunk.ToSlices()
				mu.Unlock()
				t1 := time.Now()
				defer func() { encodeNanos.Add(int64(time.Since(t1))) }()
				if !e.partitioned {
					enc, err := tsfile.EncodeChunkBlocks(sensor, ts, vs, e.blockPoints)
					if err != nil {
						errs[i] = err
						return
					}
					encoded[i] = []pchunk{{0, enc}}
					return
				}
				// Split the sorted run at partition boundaries; each
				// segment becomes a chunk in its partition's L0 file.
				for start := 0; start < len(ts); {
					p := e.partitionOf(ts[start])
					end := start + 1
					for end < len(ts) && e.partitionOf(ts[end]) == p {
						end++
					}
					enc, err := tsfile.EncodeChunkBlocks(sensor, ts[start:end], vs[start:end], e.blockPoints)
					if err != nil {
						errs[i] = err
						return
					}
					encoded[i] = append(encoded[i], pchunk{p, enc})
					start = end
				}
			}
		}
		e.pool.do(jobs)
		for _, err := range errs {
			if err != nil {
				fail(fmt.Errorf("engine: flush encode (%s): %w", part.kind, err))
				return
			}
		}

		// Group chunks by destination partition, preserving sensor
		// order within each file.
		perPart := map[int64][]*tsfile.EncodedChunk{}
		var partIDs []int64
		for _, chunks := range encoded {
			for _, pc := range chunks {
				if _, ok := perPart[pc.part]; !ok {
					partIDs = append(partIDs, pc.part)
				}
				perPart[pc.part] = append(perPart[pc.part], pc.enc)
			}
		}
		sort.Slice(partIDs, func(a, b int) bool { return partIDs[a] < partIDs[b] })

		t2 := time.Now()
		for _, p := range partIDs {
			e.mu.Lock()
			e.fileSeq++
			seq := e.fileSeq
			e.mu.Unlock()
			var path string
			if e.partitioned {
				path = filepath.Join(e.cfg.Dir, fmt.Sprintf("p%d", p), "L0",
					fmt.Sprintf("%s-%06d.gtsf", part.kind, seq))
			} else {
				path = filepath.Join(e.cfg.Dir, fmt.Sprintf("%s-%06d.gtsf", part.kind, seq))
			}
			err := e.writeChunkFile(path, e.partitioned, func(w *tsfile.Writer) error {
				for _, enc := range perPart[p] {
					if err := w.AppendEncoded(enc); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				fail(err)
				return
			}
			r, err := tsfile.Open(path)
			if err != nil {
				e.fs.Remove(path)
				fail(fmt.Errorf("engine: flush reopen %s: %w", path, err))
				return
			}
			fh := newFileHandle(path, r, part.unseq)
			fh.partitioned = e.partitioned
			fh.part = p
			fh.seqNo = seq
			handles = append(handles, fh)
		}
		writeDur += time.Since(t2)
	}
	elapsed := time.Since(unit.started)

	e.mu.Lock()
	e.files = append(e.files, handles...)
	for i, u := range e.flushing {
		if u == unit {
			e.flushing = append(e.flushing[:i], e.flushing[i+1:]...)
			break
		}
	}
	e.mu.Unlock()

	// The generation is durable as chunk files: its WAL segment is no
	// longer needed.
	if unit.walSeg != nil {
		if err := unit.walSeg.Remove(); err != nil {
			e.recordFlushErr(err)
		}
	}

	if sketchInformed.Load() {
		e.sketchSeededFlushes.Add(1)
	}

	e.statsMu.Lock()
	e.flushCount++
	e.flushTotal += elapsed
	e.sortTotal += time.Duration(sortNanos.Load())
	e.encodeTotal += time.Duration(encodeNanos.Load())
	e.writeTotal += writeDur
	e.statsMu.Unlock()

	// Leveled compaction rides the flush path: each published flush
	// may tip a partition's L0 file count or a level's size bound over
	// its threshold. Passes are bounded and serialized on compactMu,
	// and never hold the engine lock while merging.
	if e.partitioned {
		e.maybeCompact()
	}
}

// Flush forces the current working memtables to disk (synchronously).
func (e *Engine) Flush() {
	e.lockContended(false)
	if e.closed {
		e.mu.Unlock()
		return
	}
	unit := e.rotateLocked()
	if unit != nil {
		e.flushWG.Add(1)
	}
	e.mu.Unlock()
	if unit != nil {
		defer e.flushWG.Done()
		e.drain(unit)
	}
}

// Query returns every record of sensor with minT <= t <= maxT, in time
// order. When the same timestamp appears in multiple generations the
// newest write wins (unsequence over flushed, memtable over files).
//
// The engine lock is held only to snapshot (see gatherSources); the
// result is then produced by a streaming k-way merge over the
// snapshotted sources with rank-based newest-wins dedup, decoding file
// chunks lazily — one chunk per file is in memory at a time instead of
// every overlapping chunk at once. Config.LegacyLockedQueries restores
// the paper's behavior of sorting the live working TVLists under the
// lock, blocking writers.
func (e *Engine) Query(sensor string, minT, maxT int64) ([]TV, error) {
	if err := e.FlushError(); err != nil {
		return nil, err
	}
	if minT > maxT {
		return nil, nil
	}
	qs, err := e.gatherSources(sensor, minT, maxT)
	if err != nil {
		return nil, err
	}
	defer qs.release()
	srcs := make([]pointSource, 0, len(qs.mem)+len(qs.files))
	for _, s := range qs.mem {
		srcs = append(srcs, &sliceSource{buf: s})
	}
	for _, fh := range qs.files {
		if chunks := overlapping(fh, sensor, minT, maxT); len(chunks) > 0 {
			srcs = append(srcs, &fileSource{e: e, fh: fh, chunks: chunks, minT: minT, maxT: maxT})
		}
	}
	m, err := newMerge(srcs)
	if err != nil {
		return nil, err
	}
	var out []TV
	for {
		tv, ok, err := m.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, tv)
	}
}

func scanChunk(chunk *tvlist.TVList[float64], minT, maxT int64) []TV {
	var out []TV
	chunk.ScanRange(minT, maxT, func(t int64, v float64) bool {
		out = append(out, TV{t, v})
		return true
	})
	return out
}

// LatestTime returns the newest ingested timestamp for sensor, used by
// the benchmark's "time > current - window" queries.
func (e *Engine) LatestTime(sensor string) (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.latest[sensor]
	return t, ok
}

// Stats returns a metrics snapshot. Both locks are held together (in
// the engine's usual e.mu → statsMu order) so the flush counters, the
// averages derived from them, and the files/memtable numbers all
// describe the same instant.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	e.statsMu.Lock()
	s := Stats{
		FlushCount:     e.flushCount,
		SeqPoints:      e.seqPoints,
		UnseqPoints:    e.unseqPoints,
		Files:          len(e.files),
		MemTablePoints: e.working.Points() + e.workingUn.Points(),
		FlushWorkers:   e.pool.size,
	}
	if e.partitioned {
		parts := map[int64]struct{}{}
		for _, fh := range e.files {
			if fh.partitioned {
				parts[fh.part] = struct{}{}
			}
		}
		s.PartitionsActive = len(parts)
	}
	if e.flushCount > 0 {
		n := float64(e.flushCount)
		s.AvgFlushMillis = float64(e.flushTotal.Microseconds()) / 1000 / n
		s.AvgSortMillis = float64(e.sortTotal.Microseconds()) / 1000 / n
		s.AvgEncodeMillis = float64(e.encodeTotal.Microseconds()) / 1000 / n
		s.AvgWriteMillis = float64(e.writeTotal.Microseconds()) / 1000 / n
	}
	e.statsMu.Unlock()
	e.mu.Unlock()

	s.SortsSkipped = e.sortsSkipped.Load()
	s.FlatSorts = e.flatSorts.Load()
	s.InterfaceSorts = e.ifaceSorts.Load()
	s.FlatSortMillis = float64(e.flatSortNanos.Load()) / 1e6
	s.InterfaceSortMillis = float64(e.ifaceSortNanos.Load()) / 1e6
	s.SortParallelism = e.flatOpts.Parallelism
	if e.useFlat {
		s.FlatSortThreshold = e.flatThreshold
	} else {
		s.FlatSortThreshold = -1
	}
	s.AdaptiveSortEnabled = e.adaptive
	s.SketchSeededFlushes = e.sketchSeededFlushes.Load()
	s.SearchItersSaved = e.searchItersSaved.Load()
	s.AdaptiveFixedSorts = e.adaptiveFixedSorts.Load()
	s.AdaptiveSeededSorts = e.adaptiveSeededSorts.Load()
	s.AdaptiveFlatRoutes = e.adaptiveFlatRoutes.Load()
	s.AdaptiveIfaceRoutes = e.adaptiveIfaceRoutes.Load()
	s.AdaptiveMinL = e.adaptiveMinL.Load()
	s.AdaptiveMaxL = e.adaptiveMaxL.Load()
	s.QueriesBlocked = e.queriesBlocked.Load()
	s.LockWaits = e.lockHist.n.Load()
	if s.LockWaits > 0 {
		s.AvgLockWaitMicros = float64(e.lockHist.total.Load()) / 1e3 / float64(s.LockWaits)
		s.MaxLockWaitMicros = float64(e.lockHist.max.Load()) / 1e3
		s.P99LockWaitMicros = e.lockHist.percentileMicros(99)
	}
	s.WALSyncs = e.walStats.Syncs.Load()
	s.WALCommits = e.walStats.Commits.Load()
	s.ChunksFromStats = e.chunksFromStats.Load()
	s.ChunksDecoded = e.chunksDecoded.Load()
	s.PointsSkipped = e.pointsSkipped.Load()
	s.BytesRead = e.bytesRead.Load()
	s.BlocksDecoded = e.blocksDecoded.Load()
	s.BlocksSkipped = e.blocksSkipped.Load()
	s.BlocksFromStats = e.blocksFromStats.Load()
	s.CompactionPasses = e.compactionPasses.Load()
	s.CompactionBytesRead = e.compactionBytesRead.Load()
	s.MaxCompactionPassBytes = e.maxCompactionPass.Load()
	s.PartitionsDropped = e.partitionsDropped.Load()
	e.statsMu.Lock()
	s.QuarantinedFiles = e.quarantined
	s.RecoveredWALBatches = e.recoveredBatches
	e.statsMu.Unlock()
	return s
}

// WaitFlushes blocks until every in-flight background flush has
// finished (it does not force a new one; see Flush for that).
func (e *Engine) WaitFlushes() { e.flushWG.Wait() }

// FlushError returns the first background flush failure, if any.
func (e *Engine) FlushError() error {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.flushErr
}

// Close flushes remaining data, waits for in-flight flushes, stops the
// flush worker pool, and releases the engine's file references
// (queries still reading a file keep it open until they finish).
//
// Close is safe to call concurrently: exactly one caller performs the
// shutdown, and every other caller blocks until it has finished (and
// returns the same result) rather than returning while flushes are
// still draining.
func (e *Engine) Close() error {
	e.Flush()
	e.mu.Lock()
	if e.closed {
		done := e.closeDone
		e.mu.Unlock()
		<-done
		e.statsMu.Lock()
		defer e.statsMu.Unlock()
		return e.closeErr
	}
	e.closed = true
	done := make(chan struct{})
	e.closeDone = done
	e.mu.Unlock()
	if e.walTickStop != nil {
		close(e.walTickStop)
		<-e.walTickDone
	}
	// closed is set: no new drain can be registered, so the wait is
	// complete and the pool can be stopped safely.
	e.flushWG.Wait()
	if !e.poolShared {
		e.pool.close()
	}

	e.mu.Lock()
	firstErr := e.FlushError()
	if e.walSeg != nil {
		// The active segment may only be removed when it is provably
		// empty — i.e. Flush above rotated every batch into a unit that
		// drained successfully. If a final flush failed, the segment
		// still guards un-persisted batches: keep it on disk so the
		// next Open replays it, and surface the retention.
		if e.walSeg.Empty() {
			if err := e.walSeg.Remove(); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			closeErr := e.walSeg.Close()
			if firstErr == nil {
				if closeErr != nil {
					firstErr = closeErr
				} else {
					firstErr = fmt.Errorf("engine: close: %d un-flushed wal batches retained in %s for replay", e.walSeg.Batches(), e.walSeg.Path())
				}
			}
		}
		e.walSeg = nil
	}
	for _, fh := range e.files {
		if err := fh.release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.files = nil
	e.mu.Unlock()

	e.statsMu.Lock()
	e.closeErr = firstErr
	e.statsMu.Unlock()
	close(done)
	return firstErr
}

// Algorithm returns the engine's configured sorting algorithm name.
func (e *Engine) Algorithm() string { return e.cfg.Algorithm }

// fixedBlock resolves Config.FixedBlockSize: the static pin applies
// only to the "backward" algorithm, and the adaptive planner overrides
// it per sensor.
func fixedBlock(cfg Config) int {
	if cfg.FixedBlockSize > 0 && cfg.Algorithm == "backward" && !cfg.AdaptiveSort {
		return cfg.FixedBlockSize
	}
	return 0
}

// sortableGuard: the engine relies on TVList implementing
// core.Sortable; keep the dependency explicit.
var _ core.Sortable = (*tvlist.TVList[float64])(nil)
