package engine

import (
	"testing"

	"repro/internal/dataset"
)

func TestQueryBoundsInclusive(t *testing.T) {
	e := openTest(t, Config{})
	for i := 1; i <= 5; i++ {
		e.Insert("s", int64(i*10), float64(i))
	}
	cases := []struct {
		min, max int64
		want     int
	}{
		{10, 50, 5},  // exact bounds inclusive
		{11, 49, 3},  // strict interior
		{50, 50, 1},  // single point
		{51, 100, 0}, // past the end
		{-5, 9, 0},   // before the start
		{30, 10, 0},  // inverted
	}
	for _, c := range cases {
		out, err := e.Query("s", c.min, c.max)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != c.want {
			t.Fatalf("[%d,%d]: got %d points, want %d", c.min, c.max, len(out), c.want)
		}
	}
}

func TestQueryAfterManyGenerations(t *testing.T) {
	// Dozens of small generations: the k-way assembly across many
	// files must stay sorted and complete.
	e := openTest(t, Config{MemTableSize: 50})
	s := dataset.LogNormal(2000, 1, 1, 12)
	for i := range s.Times {
		if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.FlushCount < 30 {
		t.Fatalf("expected many generations, got %d flushes", st.FlushCount)
	}
	out, err := e.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2000 {
		t.Fatalf("got %d of 2000", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].T > out[i].T {
			t.Fatal("unsorted across generations")
		}
	}
}

func TestArrayLenConfigPropagates(t *testing.T) {
	e := openTest(t, Config{ArrayLen: 4, MemTableSize: 100})
	for i := 0; i < 10; i++ {
		e.Insert("s", int64(i), 0)
	}
	out, err := e.Query("s", 0, 100)
	if err != nil || len(out) != 10 {
		t.Fatalf("arraylen engine broken: %d, %v", len(out), err)
	}
}

func TestStatsSnapshotIndependentOfQueries(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 10})
	for i := 0; i < 25; i++ {
		e.Insert("s", int64(i), 0)
	}
	before := e.Stats()
	for i := 0; i < 5; i++ {
		if _, err := e.Query("s", 0, 100); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Stats()
	if after.FlushCount != before.FlushCount || after.SeqPoints != before.SeqPoints {
		t.Fatalf("queries mutated write stats: %+v vs %+v", before, after)
	}
}
