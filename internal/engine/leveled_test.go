package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/delay"
	"repro/internal/tsfile"
	"repro/internal/winagg"
)

// TestBlockIndexMatchesLegacyOracle ingests identical workloads —
// random delay scenarios plus cross-generation overwrites of
// already-flushed ranges — into a v3 engine with small blocks and a
// legacy-v2 engine, and requires bit-identical answers from Query and
// AggregateWindows while the v3 engine demonstrably exercises its
// block index.
func TestBlockIndexMatchesLegacyOracle(t *testing.T) {
	dists := []delay.Distribution{
		delay.Constant{C: 0}, // fully in order: maximal block pruning
		delay.DiscreteUniform{K: 8},
		delay.LogNormal{Mu: 1, Sigma: 1},
	}
	for di, dist := range dists {
		dist := dist
		t.Run(dist.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4200 + di)))
			v3 := openTest(t, Config{MemTableSize: 256, BlockPoints: 32})
			v2 := openTest(t, Config{MemTableSize: 256, BlockPoints: -1})
			const n = 3000
			insert := func(ts int64, v float64) {
				t.Helper()
				if err := v3.Insert("s", ts, v); err != nil {
					t.Fatal(err)
				}
				if err := v2.Insert("s", ts, v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				ts := int64(i) - int64(dist.Sample(rng))
				insert(ts, float64(ts%173)+0.5)
			}
			// Cross-generation overwrites: newer files rewriting slices
			// of old ranges must win in both layouts, and must also
			// disqualify the shadowed older blocks from stats answers.
			for i := 0; i < 150; i++ {
				insert(int64(rng.Intn(n/2)), -2000-float64(i))
			}
			v3.Flush()
			v2.Flush()

			check := func(lo, hi int64) {
				t.Helper()
				got, err := v3.Query("s", lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				want, err := v2.Query("s", lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("[%d,%d]: v3 %d points, v2 %d points", lo, hi, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("[%d,%d] record %d: v3 %+v, v2 %+v", lo, hi, i, got[i], want[i])
					}
				}
			}
			check(-64, n+64)
			for q := 0; q < 60; q++ {
				lo := int64(rng.Intn(n)) - 32
				check(lo, lo+int64(rng.Intn(200)))
			}
			for q := 0; q < 25; q++ {
				startT := int64(rng.Intn(n)) - 16
				endT := startT + int64(1+rng.Intn(n/2))
				window := int64(1 + rng.Intn(250))
				for op := winagg.Count; op <= winagg.Last; op++ {
					got, err := v3.AggregateWindows("s", startT, endT, window, op)
					if err != nil {
						t.Fatal(err)
					}
					want, err := v2.AggregateWindows("s", startT, endT, window, op)
					if err != nil {
						t.Fatal(err)
					}
					if !sameWindows(got, want) {
						t.Fatalf("%v [%d,%d) w=%d: v3 %v, v2 %v", op, startT, endT, window, got, want)
					}
				}
			}
			if st := v3.Stats(); st.BlocksDecoded+st.BlocksFromStats == 0 || st.BlocksSkipped == 0 {
				t.Fatalf("v3 engine never exercised the block index: %+v", st)
			}
		})
	}
}

// rewriteEngineFileAsV1 transcodes one of the engine's v2 chunk files
// to the original statistics-free v1 index in place — the engine-level
// analog of the tsfile package's back-compat fixture, built from the
// documented on-disk layout so compat tests need no old binary.
func rewriteEngineFileAsV1(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const tail = 16 // 8-byte index offset + 8-byte magic
	ftr := len(raw) - tail
	if string(raw[ftr+8:]) != "GTSFEND2" {
		t.Fatalf("fixture expects a v2 file, footer %q", raw[ftr+8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(raw[ftr : ftr+8]))
	br := bytes.NewReader(raw[indexOff:ftr])
	count, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	v1 := binary.AppendUvarint(nil, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			t.Fatal(err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			t.Fatal(err)
		}
		off, _ := binary.ReadUvarint(br)
		cnt, _ := binary.ReadUvarint(br)
		minT, _ := binary.ReadVarint(br)
		maxT, _ := binary.ReadVarint(br)
		flags, err := br.ReadByte()
		if err != nil {
			t.Fatal(err)
		}
		if flags&1 != 0 {
			if _, err := br.Seek(5*8, io.SeekCurrent); err != nil {
				t.Fatal(err)
			}
		}
		v1 = binary.AppendUvarint(v1, nameLen)
		v1 = append(v1, name...)
		v1 = binary.AppendUvarint(v1, off)
		v1 = binary.AppendUvarint(v1, cnt)
		v1 = binary.AppendVarint(v1, minT)
		v1 = binary.AppendVarint(v1, maxT)
	}
	out := append([]byte(nil), raw[:indexOff]...)
	out = append(out, v1...)
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], uint64(indexOff))
	out = append(out, foot[:]...)
	out = append(out, "GTSFEND1"...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBackwardCompatUpgradeToV3 is the version matrix: a store holding
// v1 and v2 files opens and queries correctly under the v3-default
// configuration, the first compaction rewrites everything into a v3
// file, and answers are unchanged before, after, and across a reopen.
func TestBackwardCompatUpgradeToV3(t *testing.T) {
	dir := t.TempDir()
	const n = 400
	e1, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true, BlockPoints: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := e1.Insert("s", int64(i), float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gtsf"))
	if len(files) < 2 {
		t.Fatalf("fixture needs several v2 files, got %v", files)
	}
	sort.Strings(files)
	rewriteEngineFileAsV1(t, files[0])

	e2, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true, BlockPoints: 64})
	if err != nil {
		t.Fatalf("mixed v1/v2 store rejected: %v", err)
	}
	defer e2.Close()
	verify := func(e *Engine) {
		t.Helper()
		out, err := e.Query("s", -1, n+1)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("%d of %d points", len(out), n)
		}
		for i, tv := range out {
			if tv.T != int64(i) || tv.V != float64(i)*0.5 {
				t.Fatalf("record %d corrupted: %+v", i, tv)
			}
		}
	}
	verify(e2)
	if err := e2.Compact(); err != nil {
		t.Fatal(err)
	}
	verify(e2)
	files, _ = filepath.Glob(filepath.Join(dir, "*.gtsf"))
	if len(files) != 1 {
		t.Fatalf("files after upgrade compaction: %v", files)
	}
	r, err := tsfile.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Version(); v != 3 {
		r.Close()
		t.Fatalf("compaction produced a v%d file, want v3", v)
	}
	r.Close()
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	e3, err := Open(Config{Dir: dir, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	verify(e3)
}

// TestCompactRewritesSingleLegacyFile pins the needsRewrite rule: one
// file is normally a compaction no-op, but a single legacy file still
// upgrades to v3 when blocks are enabled.
func TestCompactRewritesSingleLegacyFile(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true, BlockPoints: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e1.Insert("s", int64(i), 1)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Config{Dir: dir, SyncFlush: true, BlockPoints: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.Compact(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gtsf"))
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
	r, err := tsfile.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v := r.Version(); v != 3 {
		t.Fatalf("single legacy file not upgraded: v%d", v)
	}
}

// TestTornV3FileQuarantined proves a torn v3 write (a crash mid-flush
// leaving a truncated file at the servable name) is quarantined on
// recovery instead of served or fatal.
func TestTornV3FileQuarantined(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 64, SyncFlush: true, BlockPoints: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		e1.Insert("s", int64(i), float64(i))
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gtsf"))
	if len(files) != 1 {
		t.Fatalf("fixture files = %v", files)
	}
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Config{Dir: dir, SyncFlush: true, BlockPoints: 16})
	if err != nil {
		t.Fatalf("open with torn v3 file: %v", err)
	}
	defer e2.Close()
	if got := e2.Stats().QuarantinedFiles; got != 1 {
		t.Fatalf("QuarantinedFiles = %d, want 1", got)
	}
	if e2.FileCount() != 0 {
		t.Fatalf("torn file served: FileCount = %d", e2.FileCount())
	}
	if _, err := os.Stat(files[0] + ".quarantine"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}

// TestLeveledCompactionBoundsAndRecovery drives the partitioned leveled
// layout end to end: automatic merges run, no single pass reads more
// input than the deepest automatically-compacted level's size bound,
// files live under p<epoch>/L<n>/, a full scan is intact, and the whole
// structure round-trips a close/reopen.
func TestLeveledCompactionBoundsAndRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, MemTableSize: 500, SyncFlush: true,
		PartitionDuration: 5000, L0CompactFiles: 3,
		LevelBaseBytes: 8 << 10, LevelGrowth: 4, MaxLevel: 2,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000 // 4 partitions x 10 L0 flushes
	for i := 0; i < n; i++ {
		if err := e.Insert("s", int64(i), float64(i%389)+0.25); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	e.WaitFlushes()

	st := e.Stats()
	if st.CompactionPasses == 0 {
		t.Fatal("no automatic compaction passes ran")
	}
	// Automatic compaction reads from levels 0..MaxLevel-1, and a pass
	// out of level l takes inputs up to that level's bound.
	bound := cfg.LevelBaseBytes
	for l := 1; l < cfg.MaxLevel; l++ {
		bound *= int64(cfg.LevelGrowth)
	}
	if st.MaxCompactionPassBytes > bound {
		t.Fatalf("largest pass read %d input bytes, above the %d-byte level bound", st.MaxCompactionPassBytes, bound)
	}
	if st.PartitionsActive != 4 {
		t.Fatalf("PartitionsActive = %d, want 4", st.PartitionsActive)
	}
	if root, _ := filepath.Glob(filepath.Join(dir, "*.gtsf")); len(root) != 0 {
		t.Fatalf("partitioned engine left files in the root: %v", root)
	}
	leveled, _ := filepath.Glob(filepath.Join(dir, "p*", "L*", "*.gtsf"))
	if len(leveled) == 0 {
		t.Fatal("no files under the p*/L*/ layout")
	}
	for p := 0; p < 4; p++ {
		l0, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("p%d", p), "L0", "*.gtsf"))
		if len(l0) >= cfg.L0CompactFiles {
			t.Fatalf("partition %d retains %d L0 files, trigger is %d", p, len(l0), cfg.L0CompactFiles)
		}
	}
	verify := func(e *Engine) {
		t.Helper()
		out, err := e.Query("s", 0, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("full scan: %d of %d points", len(out), n)
		}
		for i, tv := range out {
			if tv.T != int64(i) || tv.V != float64(i%389)+0.25 {
				t.Fatalf("record %d corrupted: %+v", i, tv)
			}
		}
	}
	verify(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatalf("partitioned recovery: %v", err)
	}
	defer e2.Close()
	verify(e2)
	if st := e2.Stats(); st.PartitionsActive != 4 {
		t.Fatalf("PartitionsActive after reopen = %d, want 4", st.PartitionsActive)
	}
	// The recovered store keeps ingesting and compacting.
	for i := n; i < n+1500; i++ {
		if err := e2.Insert("s", int64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	e2.Flush()
	e2.WaitFlushes()
	out, err := e2.Query("s", n, n+1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1500 {
		t.Fatalf("post-recovery ingest: %d of 1500 points", len(out))
	}
}

// TestDropPartitionsBefore covers O(1) retention: whole expired
// partitions unlink, the counters report it, queries stop seeing the
// dropped range, and the drop survives a reopen. A non-partitioned
// engine refuses the call.
func TestDropPartitionsBefore(t *testing.T) {
	flat := openTest(t, Config{})
	if _, err := flat.DropPartitionsBefore(10); err == nil {
		t.Fatal("flat-layout engine accepted DropPartitionsBefore")
	}

	dir := t.TempDir()
	cfg := Config{Dir: dir, MemTableSize: 200, SyncFlush: true, PartitionDuration: 1000}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // partitions 0..4
	for i := 0; i < n; i++ {
		if err := e.Insert("s", int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	e.WaitFlushes()

	dropped, err := e.DropPartitionsBefore(2000)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped %d partitions, want 2", dropped)
	}
	st := e.Stats()
	if st.PartitionsDropped != 2 || st.PartitionsActive != 3 {
		t.Fatalf("drop not visible in stats: dropped=%d active=%d", st.PartitionsDropped, st.PartitionsActive)
	}
	for _, p := range []string{"p0", "p1"} {
		if _, err := os.Stat(filepath.Join(dir, p)); !os.IsNotExist(err) {
			t.Fatalf("partition dir %s survived the drop: %v", p, err)
		}
	}
	gone, err := e.Query("s", 0, 1999)
	if err != nil {
		t.Fatal(err)
	}
	if len(gone) != 0 {
		t.Fatalf("%d points served from dropped partitions", len(gone))
	}
	kept, err := e.Query("s", 2000, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != n-2000 {
		t.Fatalf("kept %d points, want %d", len(kept), n-2000)
	}
	// Idempotent at the same cutoff.
	if again, err := e.DropPartitionsBefore(2000); err != nil || again != 0 {
		t.Fatalf("second drop: %d, %v", again, err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	gone, err = e2.Query("s", 0, 1999)
	if err != nil {
		t.Fatal(err)
	}
	if len(gone) != 0 {
		t.Fatalf("dropped data resurrected across reopen: %d points", len(gone))
	}
	if st := e2.Stats(); st.PartitionsActive != 3 {
		t.Fatalf("PartitionsActive after reopen = %d, want 3", st.PartitionsActive)
	}
}
