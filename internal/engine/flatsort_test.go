package engine

import (
	"testing"

	"repro/internal/dataset"
)

// insertSeries feeds a disordered series into one sensor and returns
// the point count.
func insertSeries(t *testing.T, e *Engine, n int) *dataset.Series {
	t.Helper()
	s := dataset.AbsNormal(n, 1, 2, 11)
	for i := range s.Times {
		if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// checkQuery verifies a full-range query returns every point in order.
func checkQuery(t *testing.T, e *Engine, s *dataset.Series) {
	t.Helper()
	out, err := e.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(s.Times) {
		t.Fatalf("query returned %d points, want %d", len(out), len(s.Times))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].T > out[i].T {
			t.Fatalf("query result unsorted at %d", i)
		}
	}
}

// TestFlatSortRouting: with a low threshold every flush-time sort of a
// large-enough chunk takes the kernel, and the data stays correct.
func TestFlatSortRouting(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 500, FlatSortThreshold: 100, SortParallelism: 2})
	s := insertSeries(t, e, 2500)
	checkQuery(t, e, s)
	st := e.Stats()
	if st.FlatSorts == 0 {
		t.Fatalf("threshold 100 with 500-point flushes routed no sorts through the kernel: %+v", st)
	}
	if st.FlatSortThreshold != 100 || st.SortParallelism != 2 {
		t.Fatalf("stats do not echo config: threshold %d, parallelism %d", st.FlatSortThreshold, st.SortParallelism)
	}
	if st.FlatSortMillis < 0 {
		t.Fatalf("negative flat sort time %v", st.FlatSortMillis)
	}
}

// TestFlatSortDisabled: negative threshold pins every sort to the
// interface path (the cmd/repro figure configuration).
func TestFlatSortDisabled(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 500, FlatSortThreshold: -1})
	s := insertSeries(t, e, 2500)
	checkQuery(t, e, s)
	st := e.Stats()
	if st.FlatSorts != 0 {
		t.Fatalf("disabled kernel still ran %d flat sorts", st.FlatSorts)
	}
	if st.InterfaceSorts == 0 {
		t.Fatal("no interface sorts recorded")
	}
	if st.FlatSortThreshold != -1 {
		t.Fatalf("stats threshold = %d, want -1", st.FlatSortThreshold)
	}
}

// TestFlatSortBelowThreshold: chunks smaller than the threshold keep
// the interface path even with the kernel enabled.
func TestFlatSortBelowThreshold(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 500, FlatSortThreshold: 1 << 20})
	s := insertSeries(t, e, 2500)
	checkQuery(t, e, s)
	st := e.Stats()
	if st.FlatSorts != 0 {
		t.Fatalf("sub-threshold chunks took the kernel %d times", st.FlatSorts)
	}
	if st.InterfaceSorts == 0 {
		t.Fatal("no interface sorts recorded")
	}
}

// TestFlatSortOnlyForBackward: the kernel monomorphizes the backward
// algorithm specifically; other algorithms must stay on the interface
// path regardless of threshold.
func TestFlatSortOnlyForBackward(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 500, Algorithm: "tim", FlatSortThreshold: 1})
	s := insertSeries(t, e, 2500)
	checkQuery(t, e, s)
	st := e.Stats()
	if st.FlatSorts != 0 {
		t.Fatalf("algorithm tim routed %d sorts through the backward kernel", st.FlatSorts)
	}
}

// TestFlatSortResultsMatchInterface: same workload, kernel on vs off,
// byte-identical query results.
func TestFlatSortResultsMatchInterface(t *testing.T) {
	run := func(threshold int) []TV {
		e := openTest(t, Config{MemTableSize: 300, FlatSortThreshold: threshold})
		insertSeries(t, e, 3000)
		out, err := e.Query("s", -1<<62, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	flat := run(1)
	iface := run(-1)
	if len(flat) != len(iface) {
		t.Fatalf("kernel and interface paths disagree on length: %d vs %d", len(flat), len(iface))
	}
	for i := range flat {
		if flat[i] != iface[i] {
			t.Fatalf("kernel and interface paths diverge at %d: %+v vs %+v", i, flat[i], iface[i])
		}
	}
}
