package engine

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestCompactFoldsFiles(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := dataset.LogNormal(1000, 1, 2, 3)
	for i := range s.Times {
		if err := e.Insert("s", s.Times[i], s.Values[i]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	before, err := e.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if e.FileCount() < 2 {
		t.Fatalf("expected multiple files before compaction, got %d", e.FileCount())
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.FileCount() != 1 {
		t.Fatalf("files after compaction = %d", e.FileCount())
	}
	after, err := e.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("compaction changed point count: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("record %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}
	// Old files are gone from disk.
	files, _ := filepath.Glob(filepath.Join(dir, "*.gtsf"))
	if len(files) != 1 {
		t.Fatalf("disk files after compaction: %v", files)
	}
}

func TestCompactNewestWins(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 4, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Generation 1: t=1..4 value 1 (flushes).
	for i := 1; i <= 4; i++ {
		e.Insert("s", int64(i), 1)
	}
	// Generation 2: rewrite t=2 with value 2 (unsequence, flushes).
	e.Insert("s", 2, 2)
	e.Insert("s", 100, 1)
	e.Insert("s", 101, 1)
	e.Insert("s", 102, 1)
	e.Flush()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	out, err := e.Query("s", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].V != 2 {
		t.Fatalf("rewrite lost in compaction: %+v", out)
	}
}

func TestCompactMultiSensor(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 50, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 200; i++ {
		e.Insert("a", int64(i), float64(i))
		e.Insert("b", int64(i), float64(-i))
	}
	e.Flush()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, sensor := range []string{"a", "b"} {
		out, err := e.Query(sensor, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 200 {
			t.Fatalf("%s: %d points after compaction", sensor, len(out))
		}
	}
}

func TestCompactNoFilesIsNoop(t *testing.T) {
	e, err := Open(Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	// One file: still a no-op.
	for i := 0; i < 10; i++ {
		e.Insert("s", int64(i), 0)
	}
	e.Flush()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.FileCount() != 1 {
		t.Fatalf("files = %d", e.FileCount())
	}
}

func TestCompactConcurrentWithTraffic(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, MemTableSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Seed some flushed files.
	for i := 0; i < 900; i++ {
		e.Insert("s", int64(i), float64(i))
	}
	e.WaitFlushes()

	done := make(chan struct{})
	errCh := make(chan error, 3)
	go func() { // writer
		defer close(done)
		for i := 900; i < 2400; i++ {
			if err := e.Insert("s", int64(i), float64(i)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() { // reader
		for i := 0; i < 60; i++ {
			out, err := e.Query("s", 0, 1<<40)
			if err != nil {
				errCh <- err
				return
			}
			for j := 1; j < len(out); j++ {
				if out[j-1].T > out[j].T {
					errCh <- errUnsorted
					return
				}
			}
		}
	}()
	for i := 0; i < 5; i++ { // compactor
		if err := e.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	e.Flush()
	out, err := e.Query("s", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2400 {
		t.Fatalf("lost data under concurrent compaction: %d of 2400", len(out))
	}
}

var errUnsorted = fmt.Errorf("query result unsorted during compaction")

func TestCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Dir: dir, MemTableSize: 100, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.SamsungS10(500, 9)
	for i := range s.Times {
		e1.Insert("s", s.Times[i], s.Values[i])
	}
	e1.Flush()
	if err := e1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Config{Dir: dir, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	out, err := e2.Query("s", -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 500 {
		t.Fatalf("recovered %d of 500 after compaction", len(out))
	}
}
