package engine

import "testing"

// TestDedupTwoInFlightUnitsNewestWins is the regression test for the
// generation-ordering bug: with two flush units in flight that both
// hold a record for the same timestamp, the query's newest-wins dedup
// must keep the value from the *newer* unit. The seed code iterated
// flushing units oldest-first while the rank dedup assumed
// newest-first sources, so the older generation's value won.
func TestDedupTwoInFlightUnitsNewestWins(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 1 << 30}) // never auto-rotate
	if err := e.Insert("s", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("s", 5, 1); err != nil {
		t.Fatal(err)
	}
	// Rotate by hand so the unit stays in flight (not drained).
	e.mu.Lock()
	u1 := e.rotateLocked()
	e.mu.Unlock()
	if u1 == nil {
		t.Fatal("first rotation produced no unit")
	}
	// The rewrite of t=1 is older than the watermark (5) advanced by
	// the rotation, so it lands in the unsequence working table; a
	// second rotation puts it into a second in-flight unit.
	if err := e.Insert("s", 1, 2); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	u2 := e.rotateLocked()
	e.mu.Unlock()
	if u2 == nil {
		t.Fatal("second rotation produced no unit")
	}
	if u2.unseq.Empty() {
		t.Fatal("rewrite did not take the unsequence path")
	}

	out, err := e.Query("s", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].V != 2 {
		t.Fatalf("in-flight unit dedup kept the old value: %+v", out)
	}

	// Drain both units (oldest first, as the engine would) and check
	// the same rewrite resolves correctly once it lives in files.
	e.drain(u1)
	e.drain(u2)
	if err := e.FlushError(); err != nil {
		t.Fatal(err)
	}
	out, err = e.Query("s", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].V != 2 {
		t.Fatalf("file dedup kept the old value after drain: %+v", out)
	}
	// And the untouched record is still intact.
	out, err = e.Query("s", 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].V != 1 {
		t.Fatalf("untouched record damaged: %+v", out)
	}
}

// TestDedupInFlightUnitVsWorking: the working memtable must outrank
// every in-flight unit.
func TestDedupInFlightUnitVsWorking(t *testing.T) {
	e := openTest(t, Config{MemTableSize: 1 << 30})
	if err := e.Insert("s", 3, 1); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	u := e.rotateLocked()
	e.mu.Unlock()
	if u == nil {
		t.Fatal("rotation produced no unit")
	}
	if err := e.Insert("s", 3, 9); err != nil { // rewrite, stays in working unseq
		t.Fatal(err)
	}
	out, err := e.Query("s", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].V != 9 {
		t.Fatalf("working rewrite lost to in-flight unit: %+v", out)
	}
	e.drain(u)
}
