package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// oooSeries builds an out-of-order batch under the paper's delay
// model: generation timestamps are a distinct 10-tick grid, each point
// is delayed by up to maxLate ticks with probability 0.3, and the
// batch is emitted in arrival order. Randomized delays matter twice
// over: a strictly periodic pattern phase-aliases the stride-L
// estimator (the bias satellite tests cover in internal/inversion),
// and distinct timestamps keep equal-time tie order from differing
// between sort paths. Values are a pure function of the timestamp so
// result comparisons catch any pairing mistake.
func oooSeries(start int64, n int, maxLate int64, r *rand.Rand) ([]int64, []float64) {
	return oooSeriesBand(start, n, 1, maxLate, r)
}

// oooSeriesBand is oooSeries with delays drawn from [minLate, maxLate]
// instead of [1, maxLate]. A narrow band gives the delay distribution
// a sharp cliff, so the block-size search lands on the same L every
// flush — what the stability tests need.
func oooSeriesBand(start int64, n int, minLate, maxLate int64, r *rand.Rand) ([]int64, []float64) {
	type pt struct{ gen, arr int64 }
	pts := make([]pt, n)
	for i := range pts {
		gen := start + int64(i)*10
		arr := gen
		if maxLate > 0 && r.Float64() < 0.3 {
			arr += minLate + r.Int63n(maxLate-minLate+1)
		}
		pts[i] = pt{gen, arr}
	}
	sort.SliceStable(pts, func(a, b int) bool { return pts[a].arr < pts[b].arr })
	ts := make([]int64, n)
	vs := make([]float64, n)
	for i, p := range pts {
		ts[i] = p.gen
		vs[i] = float64(p.gen % 1009)
	}
	return ts, vs
}

// TestAdaptiveMatchesStaticResults is the adaptive path's correctness
// gate: with heterogeneous per-sensor disorder and many flush
// generations, an adaptive engine must return exactly the same query
// results as a static one — the planner may only change how sorts run,
// never what they produce.
func TestAdaptiveMatchesStaticResults(t *testing.T) {
	open := func(adaptive bool) *Engine {
		e, err := Open(Config{
			Dir:          t.TempDir(),
			MemTableSize: 1 << 20, // flushes forced explicitly
			SyncFlush:    true,
			AdaptiveSort: adaptive,
			// Low threshold so both routes get real traffic.
			FlatSortThreshold: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ad, st := open(true), open(false)
	defer ad.Close()
	defer st.Close()

	r := rand.New(rand.NewSource(11))
	sensors := []struct {
		name string
		late int64
		n    int // 0 = random 500..2000
	}{
		// "short" stays under the planner's tiny-chunk flat floor, so
		// it must route to the interface path.
		{"clean", 0, 0}, {"mild", 15, 0}, {"heavy", 2000, 0},
		{"extreme", 50000, 0}, {"short", 15, 20},
	}
	for round := 0; round < 6; round++ {
		for _, sc := range sensors {
			n := sc.n
			if n == 0 {
				n = 500 + r.Intn(1500)
			}
			ts, vs := oooSeries(int64(round)*1_000_000, n, sc.late, r)
			for _, e := range []*Engine{ad, st} {
				if err := e.InsertBatch(sc.name, ts, vs); err != nil {
					t.Fatal(err)
				}
			}
		}
		ad.Flush()
		st.Flush()
	}
	for _, sc := range sensors {
		a, err := ad.Query(sc.name, -1_000_000, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := st.Query(sc.name, -1_000_000, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: adaptive returned %d records, static %d", sc.name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs: adaptive %+v static %+v", sc.name, i, a[i], b[i])
			}
		}
	}

	s := ad.Stats()
	if !s.AdaptiveSortEnabled {
		t.Fatal("adaptive engine reports AdaptiveSortEnabled=false")
	}
	if s.SketchSeededFlushes == 0 {
		t.Fatalf("no sketch-seeded flushes after 6 rounds: %+v", s)
	}
	if s.SearchItersSaved == 0 {
		t.Fatalf("no search iterations saved after 6 stationary rounds: %+v", s)
	}
	if s.AdaptiveFlatRoutes == 0 || s.AdaptiveIfaceRoutes == 0 {
		t.Fatalf("per-sensor routing never used both paths: flat=%d iface=%d",
			s.AdaptiveFlatRoutes, s.AdaptiveIfaceRoutes)
	}
	if s.AdaptiveMinL <= 0 || s.AdaptiveMaxL < s.AdaptiveMinL {
		t.Fatalf("chosen-L range [%d, %d] malformed", s.AdaptiveMinL, s.AdaptiveMaxL)
	}
	// Heterogeneous lateness must spread the chosen block sizes: the
	// "extreme" sensor needs a far larger L than the "mild" one.
	if s.AdaptiveMaxL <= s.AdaptiveMinL {
		t.Fatalf("chosen-L histogram is flat [%d, %d] despite 4 disorder profiles",
			s.AdaptiveMinL, s.AdaptiveMaxL)
	}
	if st.Stats().AdaptiveSortEnabled || st.Stats().SketchSeededFlushes != 0 {
		t.Fatal("static engine reports adaptive activity")
	}
}

// TestAdaptiveStabilizesToFixedL drives one stationary sensor through
// enough generations that the planner pins the block size and skips
// the search outright.
func TestAdaptiveStabilizesToFixedL(t *testing.T) {
	e, err := Open(Config{
		Dir:          t.TempDir(),
		MemTableSize: 1 << 20,
		SyncFlush:    true,
		AdaptiveSort: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 10; round++ {
		// Delays banded in [900, 1000) ticks: α̃ is decisively above Θ
		// at L=64 and exactly zero at L=128, so every search confirms
		// the same block size and the prediction can pin it.
		ts, vs := oooSeriesBand(int64(round)*1_000_000, 2000, 900, 999, r)
		if err := e.InsertBatch("s", ts, vs); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	}
	s := e.Stats()
	if s.AdaptiveFixedSorts == 0 {
		t.Fatalf("planner never pinned L on a stationary sensor: %+v", s)
	}
	if s.AdaptiveSeededSorts == 0 {
		t.Fatalf("planner never ran a seeded search: %+v", s)
	}
}

// TestAdaptiveSketchStress is the -race gate for the tentpole's shared
// state: concurrent inserters, flushers, queriers and a sketch reader
// hammer one adaptive engine; every sketch snapshot observed mid-run —
// working and mid-flush generations alike — must report a disorder
// estimate in [0, 1], and the post-flush working memtable must start
// with fresh sketch state.
func TestAdaptiveSketchStress(t *testing.T) {
	e, err := Open(Config{
		Dir:          t.TempDir(),
		MemTableSize: 4096,
		AdaptiveSort: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, writers+2)

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sensor := fmt.Sprintf("s%d", w)
			r := rand.New(rand.NewSource(int64(w)))
			for base := int64(0); ; base += 256 {
				select {
				case <-stop:
					return
				default:
				}
				ts, vs := oooSeries(base*10, 256, int64(1+r.Intn(5000)), r)
				if err := e.InsertBatch(sensor, ts, vs); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.Flush()
			if _, err := e.Query("s0", 0, 1<<40); err != nil {
				errc <- err
				return
			}
		}
	}()
	// The sketch reader: snapshots every live generation's sketches
	// under the engine lock — exactly what the planner does mid-flush —
	// and checks the estimates stay in range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.mu.Lock()
			for w := 0; w < writers; w++ {
				sensor := fmt.Sprintf("s%d", w)
				if sk, ok := e.working.Sketch(sensor); ok {
					if f := sk.DisorderFraction(); f < 0 || f > 1 {
						errc <- fmt.Errorf("working sketch %s disorder %g out of [0,1]", sensor, f)
					}
				}
				for _, unit := range e.flushing {
					if sk, ok := unit.seq.Sketch(sensor); ok {
						if f := sk.DisorderFraction(); f < 0 || f > 1 {
							errc <- fmt.Errorf("mid-flush sketch %s disorder %g out of [0,1]", sensor, f)
						}
					}
				}
			}
			e.mu.Unlock()
		}
	}()

	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case err := <-errc:
		close(stop)
		<-wgDone
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		close(stop)
		<-wgDone
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Reset-on-rotation: after a final flush the fresh working memtable
	// must carry no sketch state for any sensor until new writes land.
	e.Flush()
	e.WaitFlushes()
	e.mu.Lock()
	for w := 0; w < writers; w++ {
		sensor := fmt.Sprintf("s%d", w)
		if sk, ok := e.working.Sketch(sensor); ok && sk.N != 0 {
			e.mu.Unlock()
			t.Fatalf("sketch state leaked across flush rotation: %s has N=%d", sensor, sk.N)
		}
	}
	e.mu.Unlock()
	if err := e.Insert("s0", 1<<41, 1); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	sk, ok := e.working.Sketch("s0")
	e.mu.Unlock()
	if !ok || sk.N != 1 || sk.OOO != 0 {
		t.Fatalf("fresh sketch after rotation should be N=1 OOO=0, got %+v ok=%v", sk, ok)
	}
}
