package engine

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/tsfile"
)

// Compact merges every flushed file — sequence and unsequence — into a
// single sorted sequence file and deletes the originals. This is the
// LSM-side complement of the separation policy (the paper's companion
// study "Separation or Not", ICDE 2022): out-of-order data parked in
// unsequence files is eventually folded back so reads stop paying a
// merge penalty. Queries remain correct throughout; newest-wins
// semantics for rewritten timestamps are preserved, and queries that
// snapshotted the old files keep reading them through their reference
// counts even after the files are unlinked.
func (e *Engine) Compact() error {
	// One compaction at a time: concurrent Compacts would race to
	// retire the same handles.
	e.compactMu.Lock()
	defer e.compactMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("engine: closed")
	}
	old := append([]*fileHandle(nil), e.files...)
	// Pin the inputs for the read phase, which runs outside e.mu.
	for _, fh := range old {
		fh.acquire()
	}
	e.mu.Unlock()
	releaseOld := func() {
		for _, fh := range old {
			fh.release()
		}
	}
	if len(old) < 2 {
		releaseOld()
		return nil // nothing to fold
	}

	// Collect per-sensor records, newest file last so that a simple
	// "later write wins" pass resolves duplicates (e.files is ordered
	// oldest → newest, and unsequence rewrites land in later files).
	type rec struct {
		t    int64
		v    float64
		rank int
	}
	perSensor := make(map[string][]rec)
	for rank, fh := range old {
		for _, m := range fh.index {
			ts, vs, err := fh.reader.ReadChunk(m)
			if err != nil {
				releaseOld()
				return fmt.Errorf("engine: compact read %s: %w", fh.path, err)
			}
			for i := range ts {
				perSensor[m.Sensor] = append(perSensor[m.Sensor], rec{ts[i], vs[i], rank})
			}
		}
	}

	e.mu.Lock()
	e.fileSeq++
	seq := e.fileSeq
	e.mu.Unlock()
	// Same atomic-publication protocol as flush: assemble at a .tmp
	// path, rename into place once complete, fsync the directory under
	// a durable policy. A crash mid-compaction leaves the inputs
	// untouched and at worst a quarantinable .tmp.
	path := filepath.Join(e.cfg.Dir, fmt.Sprintf("seq-%06d.gtsf", seq))
	tmp := path + ".tmp"
	w, err := tsfile.CreateFS(e.fs, tmp)
	if err != nil {
		releaseOld()
		return err
	}
	w.SyncOnClose = e.walDurable
	sensors := make([]string, 0, len(perSensor))
	for s := range perSensor {
		sensors = append(sensors, s)
	}
	sort.Strings(sensors)
	for _, sensor := range sensors {
		recs := perSensor[sensor]
		sort.SliceStable(recs, func(a, b int) bool {
			if recs[a].t != recs[b].t {
				return recs[a].t < recs[b].t
			}
			return recs[a].rank < recs[b].rank
		})
		ts := make([]int64, 0, len(recs))
		vs := make([]float64, 0, len(recs))
		for _, r := range recs {
			if n := len(ts); n > 0 && ts[n-1] == r.t {
				vs[n-1] = r.v // later rank wins
				continue
			}
			ts = append(ts, r.t)
			vs = append(vs, r.v)
		}
		if err := w.WriteChunk(sensor, ts, vs); err != nil {
			w.Close()
			e.fs.Remove(tmp)
			releaseOld()
			return fmt.Errorf("engine: compact write: %w", err)
		}
	}
	if err := w.Close(); err != nil {
		e.fs.Remove(tmp)
		releaseOld()
		return err
	}
	if err := e.fs.Rename(tmp, path); err != nil {
		e.fs.Remove(tmp)
		releaseOld()
		return fmt.Errorf("engine: compact publish %s: %w", path, err)
	}
	if e.walDurable {
		if err := e.fs.SyncDir(e.cfg.Dir); err != nil {
			e.fs.Remove(path)
			releaseOld()
			return fmt.Errorf("engine: compact publish sync %s: %w", e.cfg.Dir, err)
		}
	}
	r, err := tsfile.Open(path)
	if err != nil {
		e.fs.Remove(path)
		releaseOld()
		return err
	}
	newHandle := newFileHandle(path, r, false)

	// Swap: replace the compacted inputs with the new file, keeping
	// any files a concurrent flush published in the meantime.
	compacted := make(map[*fileHandle]bool, len(old))
	for _, fh := range old {
		compacted[fh] = true
	}
	e.mu.Lock()
	if e.closed {
		// The engine shut down mid-compaction. Leave the old files —
		// they are still the durable truth — and drop the new one.
		e.mu.Unlock()
		newHandle.release()
		e.fs.Remove(path)
		releaseOld()
		return fmt.Errorf("engine: closed")
	}
	kept := []*fileHandle{newHandle}
	for _, fh := range e.files {
		if !compacted[fh] {
			kept = append(kept, fh)
		}
	}
	e.files = kept
	e.mu.Unlock()

	var firstErr error
	for _, fh := range old {
		fh.release() // the read-phase pin
		// Drop the files-list reference the swap removed; in-flight
		// queries holding their own references keep the reader open
		// (and, on POSIX, the unlinked file readable) until they
		// finish.
		if err := fh.release(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := e.fs.Remove(fh.path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil && e.walDurable && len(old) > 0 {
		firstErr = e.fs.SyncDir(e.cfg.Dir)
	}
	return firstErr
}

// FileCount reports how many flushed files the engine currently holds
// (compaction reduces it to one).
func (e *Engine) FileCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.files)
}
