// Compaction: streaming merges of flushed chunk files.
//
// Two paths share one merge core (mergeInto — the same k-way
// newest-wins heap queries use, one chunk per input in memory at a
// time, never a materialized file):
//
//   - Compact folds everything: in the flat layout, every file into a
//     single sorted sequence file (the LSM-side complement of the
//     separation policy — the paper's companion study "Separation or
//     Not", ICDE 2022: out-of-order data parked in unsequence files is
//     eventually folded back so reads stop paying a merge penalty); in
//     the partitioned layout, every partition's files — plus the slice
//     of any legacy flat-layout file that falls inside the partition —
//     into one terminal-level file per partition. Pre-v3 files are
//     upgraded to the block-indexed layout whenever the engine writes
//     v3.
//   - maybeCompact rides the flush path in partitioned mode: when a
//     partition's L0 file count or a level's total size crosses its
//     bound, a bounded pass merges an oldest-first prefix of that
//     level (input capped at the level's size bound, minimum two
//     files) into the next level. Passes run without the engine lock;
//     queries that snapshotted the old files keep reading them through
//     their reference counts even after the files are unlinked.
//
// DropPartitionsBefore is the retention path the partitioned layout
// buys: a whole expired partition disappears as one directory unlink —
// O(1), no rewriting.
package engine

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/tsfile"
)

// compactSource streams one input file's chunks of one sensor,
// restricted to [minT, maxT], decoding one chunk at a time. It is
// fileSource minus the query-path read-amplification counters —
// compaction I/O is accounted per pass, not per block.
type compactSource struct {
	fh         *fileHandle
	chunks     []tsfile.ChunkMeta
	minT, maxT int64
	buf        []TV
	pos        int
}

func (s *compactSource) next() (TV, bool, error) {
	for {
		if s.pos < len(s.buf) {
			tv := s.buf[s.pos]
			s.pos++
			return tv, true, nil
		}
		if len(s.chunks) == 0 {
			return TV{}, false, nil
		}
		m := s.chunks[0]
		s.chunks = s.chunks[1:]
		ts, vs, err := s.fh.reader.ReadChunk(m)
		if err != nil {
			return TV{}, false, fmt.Errorf("engine: compact read %s: %w", s.fh.path, err)
		}
		s.buf = s.buf[:0]
		s.pos = 0
		for i, t := range ts {
			if t >= s.minT && t <= s.maxT {
				s.buf = append(s.buf, TV{t, vs[i]})
			}
		}
	}
}

// mergeInto streams the newest-wins merge of inputs (ordered oldest
// generation first, as in e.files), restricted to [minT, maxT], into w
// — sensor by sensor in sorted order, block by block in bounded
// memory. blockPoints > 0 writes v3 chunks through the streaming
// writer; otherwise legacy chunks are emitted in DefaultBlockPoints
// slices so a huge sensor never has to materialize at once.
func mergeInto(w *tsfile.Writer, inputs []*fileHandle, minT, maxT int64, blockPoints int) error {
	seen := map[string]bool{}
	var sensors []string
	for _, fh := range inputs {
		for _, m := range fh.index {
			if !seen[m.Sensor] && m.MaxTime >= minT && m.MinTime <= maxT {
				seen[m.Sensor] = true
				sensors = append(sensors, m.Sensor)
			}
		}
	}
	sort.Strings(sensors)
	cut := blockPoints
	if cut <= 0 {
		cut = DefaultBlockPoints
	}
	for _, sensor := range sensors {
		// Sources newest-first, matching the rank convention of merge.
		srcs := make([]pointSource, 0, len(inputs))
		for i := len(inputs) - 1; i >= 0; i-- {
			if chunks := overlapping(inputs[i], sensor, minT, maxT); len(chunks) > 0 {
				srcs = append(srcs, &compactSource{fh: inputs[i], chunks: chunks, minT: minT, maxT: maxT})
			}
		}
		m, err := newMerge(srcs)
		if err != nil {
			return err
		}
		ts := make([]int64, 0, cut)
		vs := make([]float64, 0, cut)
		begun := false
		emit := func() error {
			if len(ts) == 0 {
				return nil
			}
			if blockPoints > 0 {
				if !begun {
					if err := w.BeginChunk(sensor); err != nil {
						return err
					}
					begun = true
				}
				if err := w.AppendBlock(ts, vs); err != nil {
					return err
				}
			} else if err := w.WriteChunk(sensor, ts, vs); err != nil {
				return err
			}
			ts, vs = ts[:0], vs[:0]
			return nil
		}
		for {
			tv, ok, err := m.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			ts = append(ts, tv.T)
			vs = append(vs, tv.V)
			if len(ts) >= cut {
				if err := emit(); err != nil {
					return err
				}
			}
		}
		if err := emit(); err != nil {
			return err
		}
		if begun {
			if err := w.EndChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// levelBound is level n's total-size bound:
// LevelBaseBytes · LevelGrowth^n.
func (e *Engine) levelBound(level int) int64 {
	b := e.cfg.LevelBaseBytes
	for i := 0; i < level; i++ {
		b *= int64(e.cfg.LevelGrowth)
	}
	return b
}

// notePass records one completed merge pass and its input volume.
func (e *Engine) notePass(bytes int64) {
	e.compactionPasses.Add(1)
	e.compactionBytesRead.Add(bytes)
	for {
		cur := e.maxCompactionPass.Load()
		if bytes <= cur || e.maxCompactionPass.CompareAndSwap(cur, bytes) {
			return
		}
	}
}

// needsRewrite reports whether a lone file still warrants a Compact:
// a pre-v3 file is upgraded to the block-indexed layout when the
// engine writes v3, and a legacy flat-layout file is migrated into the
// partition tree when partitioning is on.
func (e *Engine) needsRewrite(fh *fileHandle) bool {
	if e.blockPoints > 0 && fh.reader.Version() < 3 {
		return true
	}
	return e.partitioned && !fh.partitioned
}

// swapCompacted replaces the input files with the output files in
// e.files, inserting the outputs at the oldest input's position so
// newest-wins ranks are preserved (everything older than every input
// stays older; everything newer stays newer; files between input
// positions belong to other partitions and share no timestamps).
func (e *Engine) swapCompacted(inputs map[*fileHandle]bool, outputs []*fileHandle) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("engine: closed")
	}
	pos := -1
	for i, fh := range e.files {
		if inputs[fh] {
			pos = i
			break
		}
	}
	kept := make([]*fileHandle, 0, len(e.files))
	for i, fh := range e.files {
		if i == pos {
			kept = append(kept, outputs...)
		}
		if !inputs[fh] {
			kept = append(kept, fh)
		}
	}
	if pos < 0 {
		kept = append(kept, outputs...)
	}
	e.files = kept
	return nil
}

// retireInputs drops the files-list reference of each compacted input
// and unlinks it. In-flight queries holding their own references keep
// the reader open (and, on POSIX, the unlinked file readable) until
// they finish.
func (e *Engine) retireInputs(inputs []*fileHandle) error {
	var firstErr error
	dirs := map[string]bool{}
	for _, fh := range inputs {
		dirs[filepath.Dir(fh.path)] = true
		if err := fh.release(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := e.fs.Remove(fh.path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if e.walDurable && firstErr == nil {
		names := make([]string, 0, len(dirs))
		for d := range dirs {
			names = append(names, d)
		}
		sort.Strings(names)
		for _, d := range names {
			if err := e.fs.SyncDir(d); err != nil {
				firstErr = err
				break
			}
		}
	}
	return firstErr
}

// pickCompaction scans the partitioned levels for one over threshold
// and returns a pinned oldest-first prefix of its files as the next
// pass's inputs (nil when nothing is due). A level triggers at its
// size bound with at least two files present — and L0 additionally at
// L0CompactFiles files — and the terminal level never triggers. The
// selected prefix stops once it would exceed the level bound (after
// the two-file minimum), so a pass never reads more than one level's
// bound.
func (e *Engine) pickCompaction() (inputs []*fileHandle, part int64, level int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, 0, 0
	}
	type key struct {
		part  int64
		level int
	}
	groups := map[key][]*fileHandle{}
	var keys []key
	for _, fh := range e.files {
		if !fh.partitioned || fh.level >= e.cfg.MaxLevel {
			continue
		}
		k := key{fh.part, fh.level}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], fh)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].part != keys[b].part {
			return keys[a].part < keys[b].part
		}
		return keys[a].level < keys[b].level
	})
	for _, k := range keys {
		fhs := groups[k]
		var total int64
		for _, fh := range fhs {
			total += fh.size
		}
		bound := e.levelBound(k.level)
		due := total >= bound && len(fhs) >= 2
		if k.level == 0 && len(fhs) >= e.cfg.L0CompactFiles {
			due = true
		}
		if !due {
			continue
		}
		var take []*fileHandle
		var cum int64
		for _, fh := range fhs {
			if len(take) >= 2 && cum+fh.size > bound {
				break
			}
			take = append(take, fh)
			cum += fh.size
		}
		for _, fh := range take {
			fh.acquire()
		}
		return take, k.part, k.level
	}
	return nil, 0, 0
}

// compactPass merges inputs (one partition, one level, pinned by
// pickCompaction) into a single file at the next level.
func (e *Engine) compactPass(part int64, level int, inputs []*fileHandle) error {
	defer func() {
		for _, fh := range inputs {
			fh.release() // the pickCompaction pin
		}
	}()
	var passBytes int64
	for _, fh := range inputs {
		passBytes += fh.size
	}
	e.mu.Lock()
	e.fileSeq++
	seq := e.fileSeq
	e.mu.Unlock()
	outLevel := level + 1
	path := filepath.Join(e.cfg.Dir, fmt.Sprintf("p%d", part), fmt.Sprintf("L%d", outLevel),
		fmt.Sprintf("seq-%06d.gtsf", seq))
	err := e.writeChunkFile(path, true, func(w *tsfile.Writer) error {
		return mergeInto(w, inputs, math.MinInt64, math.MaxInt64, e.blockPoints)
	})
	if err != nil {
		return fmt.Errorf("engine: compact p%d/L%d: %w", part, level, err)
	}
	r, err := tsfile.Open(path)
	if err != nil {
		e.fs.Remove(path)
		return err
	}
	out := newFileHandle(path, r, false)
	out.partitioned, out.part, out.level, out.seqNo = true, part, outLevel, seq
	inSet := make(map[*fileHandle]bool, len(inputs))
	for _, fh := range inputs {
		inSet[fh] = true
	}
	if err := e.swapCompacted(inSet, []*fileHandle{out}); err != nil {
		out.release()
		e.fs.Remove(path)
		return err
	}
	e.notePass(passBytes)
	return e.retireInputs(inputs)
}

// maybeCompact runs bounded leveled passes until no level is over its
// threshold. It is called after each partitioned flush publishes;
// passes are serialized on compactMu and never hold the engine lock
// while merging. Each pass folds at least two files into one, so the
// loop terminates. Failures are recorded like flush failures and stop
// further passes; the inputs stay live, so no data is at risk.
func (e *Engine) maybeCompact() {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	for {
		inputs, part, level := e.pickCompaction()
		if inputs == nil {
			return
		}
		if err := e.compactPass(part, level, inputs); err != nil {
			e.recordFlushErr(err)
			return
		}
	}
}

// Compact folds the whole store. In the flat layout every flushed file
// — sequence and unsequence — merges into a single sorted sequence
// file and the originals are deleted. In the partitioned layout every
// partition's files fold into one terminal-level (MaxLevel) file per
// partition, and legacy flat-layout files are migrated: each one's
// points are split at partition boundaries and folded into the
// partitions they belong to. Either way pre-v3 inputs come out in the
// engine's configured chunk layout — the v1/v2 → v3 upgrade path.
// Newest-wins semantics for rewritten timestamps are preserved, and
// queries that snapshotted the old files keep reading them through
// their reference counts even after the files are unlinked. As a
// fold-everything operation it is exempt from the per-pass level
// bound that caps the automatic path.
func (e *Engine) Compact() error {
	// One compaction at a time: concurrent passes would race to retire
	// the same handles.
	e.compactMu.Lock()
	defer e.compactMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("engine: closed")
	}
	old := append([]*fileHandle(nil), e.files...)
	// Pin the inputs for the read phase, which runs outside e.mu.
	for _, fh := range old {
		fh.acquire()
	}
	e.mu.Unlock()
	releaseOld := func() {
		for _, fh := range old {
			fh.release()
		}
	}
	if e.partitioned {
		return e.compactPartitionedFull(old, releaseOld)
	}
	if len(old) == 0 || (len(old) == 1 && !e.needsRewrite(old[0])) {
		releaseOld()
		return nil // nothing to fold
	}
	var passBytes int64
	for _, fh := range old {
		passBytes += fh.size
	}
	e.mu.Lock()
	e.fileSeq++
	seq := e.fileSeq
	e.mu.Unlock()
	path := filepath.Join(e.cfg.Dir, fmt.Sprintf("seq-%06d.gtsf", seq))
	err := e.writeChunkFile(path, false, func(w *tsfile.Writer) error {
		return mergeInto(w, old, math.MinInt64, math.MaxInt64, e.blockPoints)
	})
	if err != nil {
		releaseOld()
		return fmt.Errorf("engine: compact: %w", err)
	}
	r, err := tsfile.Open(path)
	if err != nil {
		e.fs.Remove(path)
		releaseOld()
		return err
	}
	out := newFileHandle(path, r, false)
	out.seqNo = seq
	inSet := make(map[*fileHandle]bool, len(old))
	for _, fh := range old {
		inSet[fh] = true
	}
	if err := e.swapCompacted(inSet, []*fileHandle{out}); err != nil {
		// The engine shut down mid-compaction. Leave the old files —
		// they are still the durable truth — and drop the new one.
		out.release()
		e.fs.Remove(path)
		releaseOld()
		return err
	}
	e.notePass(passBytes)
	firstErr := e.retireInputs(old)
	releaseOld()
	return firstErr
}

// compactPartitionedFull is Compact under the partitioned layout: one
// terminal-level file per partition, legacy flat-layout files split at
// partition boundaries and absorbed. Partitions already reduced to a
// single up-to-date file are left alone.
func (e *Engine) compactPartitionedFull(old []*fileHandle, releaseOld func()) error {
	var legacy []*fileHandle
	partSet := map[int64]bool{}
	for _, fh := range old {
		if fh.partitioned {
			partSet[fh.part] = true
		} else {
			legacy = append(legacy, fh)
			for _, m := range fh.index {
				for p := e.partitionOf(m.MinTime); p <= e.partitionOf(m.MaxTime); p++ {
					partSet[p] = true
				}
			}
		}
	}
	parts := make([]int64, 0, len(partSet))
	for p := range partSet {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(a, b int) bool { return parts[a] < parts[b] })

	var outputs []*fileHandle
	inputsUsed := map[*fileHandle]bool{}
	fail := func(err error) error {
		for _, out := range outputs {
			out.release()
			e.fs.Remove(out.path)
		}
		releaseOld()
		return err
	}
	for _, p := range parts {
		lo, hi := e.partitionBounds(p)
		var inputs []*fileHandle
		for _, fh := range old { // e.files order = oldest first
			if fh.partitioned {
				if fh.part == p {
					inputs = append(inputs, fh)
				}
			} else if fileOverlaps(fh, lo, hi) {
				inputs = append(inputs, fh)
			}
		}
		if len(inputs) == 0 ||
			(len(inputs) == 1 && inputs[0].partitioned && !e.needsRewrite(inputs[0])) {
			continue
		}
		e.mu.Lock()
		e.fileSeq++
		seq := e.fileSeq
		e.mu.Unlock()
		path := filepath.Join(e.cfg.Dir, fmt.Sprintf("p%d", p), fmt.Sprintf("L%d", e.cfg.MaxLevel),
			fmt.Sprintf("seq-%06d.gtsf", seq))
		err := e.writeChunkFile(path, true, func(w *tsfile.Writer) error {
			return mergeInto(w, inputs, lo, hi, e.blockPoints)
		})
		if err != nil {
			return fail(fmt.Errorf("engine: compact p%d: %w", p, err))
		}
		r, err := tsfile.Open(path)
		if err != nil {
			e.fs.Remove(path)
			return fail(err)
		}
		out := newFileHandle(path, r, false)
		out.partitioned, out.part, out.level, out.seqNo = true, p, e.cfg.MaxLevel, seq
		outputs = append(outputs, out)
		for _, fh := range inputs {
			inputsUsed[fh] = true
		}
	}
	if len(outputs) == 0 {
		releaseOld()
		return nil
	}
	if err := e.swapCompacted(inputsUsed, outputs); err != nil {
		return fail(err)
	}
	var passBytes int64
	retired := make([]*fileHandle, 0, len(inputsUsed))
	for _, fh := range old {
		if inputsUsed[fh] {
			retired = append(retired, fh)
			passBytes += fh.size
		}
	}
	e.notePass(passBytes)
	firstErr := e.retireInputs(retired)
	releaseOld()
	return firstErr
}

// fileOverlaps reports whether any chunk of fh intersects [lo, hi]
// regardless of sensor.
func fileOverlaps(fh *fileHandle, lo, hi int64) bool {
	for _, m := range fh.index {
		if m.MaxTime >= lo && m.MinTime <= hi {
			return true
		}
	}
	return false
}

// DropPartitionsBefore removes every time partition wholly before
// cutoff — each is one directory unlink, O(1) in the partition's data
// volume. A partition [p·d, (p+1)·d) qualifies when its last covered
// instant precedes cutoff, i.e. (p+1)·d <= cutoff. Legacy flat-layout
// files are never dropped (their time ranges are unbounded; fold them
// into partitions with Compact first). The separation watermarks are
// deliberately not rewound: re-inserting a dropped timestamp still
// routes through the unsequence path, exactly as any rewrite of
// flushed history does. Returns the number of partitions removed.
func (e *Engine) DropPartitionsBefore(cutoff int64) (int, error) {
	if !e.partitioned {
		return 0, fmt.Errorf("engine: DropPartitionsBefore requires PartitionDuration > 0")
	}
	e.compactMu.Lock() // no pass may be mid-merge over a dropped partition
	defer e.compactMu.Unlock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: closed")
	}
	var kept, victims []*fileHandle
	for _, fh := range e.files {
		if fh.partitioned {
			if _, hi := e.partitionBounds(fh.part); hi < cutoff {
				victims = append(victims, fh)
				continue
			}
		}
		kept = append(kept, fh)
	}
	e.files = kept
	e.mu.Unlock()
	var firstErr error
	for _, fh := range victims {
		if err := fh.release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Unlink expired partition directories. Scanning the directory
	// (rather than the victim handles) also reclaims partitions whose
	// files were already compacted away or quarantined.
	entries, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return 0, err
	}
	dropped := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		p, ok := parsePartitionDir(ent.Name())
		if !ok {
			continue
		}
		if _, hi := e.partitionBounds(p); hi >= cutoff {
			continue
		}
		if err := os.RemoveAll(filepath.Join(e.cfg.Dir, ent.Name())); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		dropped++
	}
	if dropped > 0 {
		e.partitionsDropped.Add(int64(dropped))
		if e.walDurable && firstErr == nil {
			firstErr = e.fs.SyncDir(e.cfg.Dir)
		}
	}
	return dropped, firstErr
}

// FileCount reports how many flushed files the engine currently holds
// (a flat-layout Compact reduces it to one).
func (e *Engine) FileCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.files)
}
