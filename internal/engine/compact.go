package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/tsfile"
)

// Compact merges every flushed file — sequence and unsequence — into a
// single sorted sequence file and deletes the originals. This is the
// LSM-side complement of the separation policy (the paper's companion
// study "Separation or Not", ICDE 2022): out-of-order data parked in
// unsequence files is eventually folded back so reads stop paying a
// merge penalty. Queries remain correct throughout; newest-wins
// semantics for rewritten timestamps are preserved.
func (e *Engine) Compact() error {
	e.mu.Lock()
	old := append([]*fileHandle(nil), e.files...)
	e.mu.Unlock()
	if len(old) < 2 {
		return nil // nothing to fold
	}

	// Collect per-sensor records, newest file last so that a simple
	// "later write wins" pass resolves duplicates (e.files is ordered
	// oldest → newest, and unsequence rewrites land in later files).
	type rec struct {
		t    int64
		v    float64
		rank int
	}
	perSensor := make(map[string][]rec)
	for rank, fh := range old {
		for _, m := range fh.index {
			ts, vs, err := fh.reader.ReadChunk(m)
			if err != nil {
				return fmt.Errorf("engine: compact read %s: %w", fh.path, err)
			}
			for i := range ts {
				perSensor[m.Sensor] = append(perSensor[m.Sensor], rec{ts[i], vs[i], rank})
			}
		}
	}

	e.mu.Lock()
	e.fileSeq++
	seq := e.fileSeq
	e.mu.Unlock()
	path := filepath.Join(e.cfg.Dir, fmt.Sprintf("seq-%06d.gtsf", seq))
	w, err := tsfile.Create(path)
	if err != nil {
		return err
	}
	sensors := make([]string, 0, len(perSensor))
	for s := range perSensor {
		sensors = append(sensors, s)
	}
	sort.Strings(sensors)
	for _, sensor := range sensors {
		recs := perSensor[sensor]
		sort.SliceStable(recs, func(a, b int) bool {
			if recs[a].t != recs[b].t {
				return recs[a].t < recs[b].t
			}
			return recs[a].rank < recs[b].rank
		})
		ts := make([]int64, 0, len(recs))
		vs := make([]float64, 0, len(recs))
		for _, r := range recs {
			if n := len(ts); n > 0 && ts[n-1] == r.t {
				vs[n-1] = r.v // later rank wins
				continue
			}
			ts = append(ts, r.t)
			vs = append(vs, r.v)
		}
		if err := w.WriteChunk(sensor, ts, vs); err != nil {
			w.Close()
			os.Remove(path)
			return fmt.Errorf("engine: compact write: %w", err)
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	r, err := tsfile.Open(path)
	if err != nil {
		return err
	}
	newHandle := &fileHandle{path: path, reader: r, index: r.Index()}

	// Swap: replace the compacted inputs with the new file, keeping
	// any files a concurrent flush published in the meantime.
	compacted := make(map[*fileHandle]bool, len(old))
	for _, fh := range old {
		compacted[fh] = true
	}
	e.mu.Lock()
	kept := []*fileHandle{newHandle}
	for _, fh := range e.files {
		if !compacted[fh] {
			kept = append(kept, fh)
		}
	}
	e.files = kept
	e.mu.Unlock()

	var firstErr error
	for _, fh := range old {
		if err := fh.reader.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := os.Remove(fh.path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FileCount reports how many flushed files the engine currently holds
// (compaction reduces it to one).
func (e *Engine) FileCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.files)
}
