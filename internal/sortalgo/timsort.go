package sortalgo

import "repro/internal/core"

// Timsort sorts s with the run-detecting merge sort used as Java's
// default (and as Apache IoTDB's sorting method before Backward-Sort,
// Section VII-B): natural runs are detected (descending runs
// reversed), short runs are extended to minrun by insertion sort, and
// runs are merged under the classic stack invariants. Merges buffer
// only the smaller run in scratch space.
func Timsort(s core.Sortable) {
	n := s.Len()
	if n < 2 {
		return
	}
	minrun := minRunLength(n)
	var stack []runSpec
	lo := 0
	for lo < n {
		hi := countRunAndMakeAscending(s, lo, n)
		if hi-lo < minrun {
			end := lo + minrun
			if end > n {
				end = n
			}
			core.InsertionSortRange(s, lo, end)
			hi = end
		}
		stack = append(stack, runSpec{lo, hi - lo})
		stack = mergeCollapse(s, stack)
		lo = hi
	}
	// Force-merge whatever remains.
	for len(stack) > 1 {
		i := len(stack) - 2
		mergeAt(s, stack, i)
		stack[i].length += stack[i+1].length
		stack = stack[:len(stack)-1]
	}
}

type runSpec struct {
	start, length int
}

// minRunLength mirrors CPython/Java: pick k in [16,32] such that
// n/k is close to, but strictly less than, an exact power of 2.
func minRunLength(n int) int {
	r := 0
	for n >= 32 {
		r |= n & 1
		n >>= 1
	}
	return n + r
}

// countRunAndMakeAscending returns the end of the natural run starting
// at lo, reversing it in place if it is strictly descending.
func countRunAndMakeAscending(s core.Sortable, lo, n int) int {
	hi := lo + 1
	if hi == n {
		return hi
	}
	if s.Time(hi) < s.Time(lo) {
		// Strictly descending run.
		for hi < n && s.Time(hi) < s.Time(hi-1) {
			hi++
		}
		for i, j := lo, hi-1; i < j; i, j = i+1, j-1 {
			s.Swap(i, j)
		}
	} else {
		for hi < n && s.Time(hi) >= s.Time(hi-1) {
			hi++
		}
	}
	return hi
}

// mergeCollapse restores the Timsort stack invariants:
// len[i-2] > len[i-1] + len[i] and len[i-1] > len[i].
func mergeCollapse(s core.Sortable, stack []runSpec) []runSpec {
	for len(stack) > 1 {
		i := len(stack) - 2
		switch {
		case i > 0 && stack[i-1].length <= stack[i].length+stack[i+1].length:
			if stack[i-1].length < stack[i+1].length {
				i--
			}
			mergeAt(s, stack, i)
			stack[i].length += stack[i+1].length
			copy(stack[i+1:], stack[i+2:])
			stack = stack[:len(stack)-1]
		case stack[i].length <= stack[i+1].length:
			mergeAt(s, stack, i)
			stack[i].length += stack[i+1].length
			stack = stack[:len(stack)-1]
		default:
			return stack
		}
	}
	return stack
}

// mergeAt merges stack runs i and i+1 (adjacent in the array).
func mergeAt(s core.Sortable, stack []runSpec, i int) {
	a, b := stack[i], stack[i+1]
	mergeRuns(s, a.start, a.start+a.length, b.start+b.length)
}

// mergeRuns merges the adjacent sorted ranges [lo, mid) and [mid, hi),
// buffering the smaller side. Leading records of the left run already
// <= the right run's head (and trailing records of the right run
// already >= the left run's tail) are skipped first, the same
// locality-trim Timsort applies before galloping.
func mergeRuns(s core.Sortable, lo, mid, hi int) {
	if lo >= mid || mid >= hi {
		return
	}
	// Trim: left records already in place.
	head := s.Time(mid)
	for lo < mid && s.Time(lo) <= head {
		lo++
	}
	if lo == mid {
		return
	}
	// Trim: right records already in place.
	tail := s.Time(mid - 1)
	for hi > mid && s.Time(hi-1) >= tail {
		hi--
	}
	if mid-lo <= hi-mid {
		mergeLo(s, lo, mid, hi)
	} else {
		mergeHi(s, lo, mid, hi)
	}
}

// minGallop is the consecutive-win threshold that flips a merge into
// galloping mode, as in Java's TimSort.
const minGallop = 7

// mergeLo buffers the left run and merges forward. After minGallop
// consecutive wins by one side it gallops: an exponential search finds
// how far the winning side runs, and that whole stretch is copied in
// one burst — the adaptation that makes Timsort excel on data with
// long sorted stretches.
func mergeLo(s core.Sortable, lo, mid, hi int) {
	r := mid - lo
	s.EnsureScratch(r)
	times := make([]int64, r)
	for i := 0; i < r; i++ {
		times[i] = s.Time(lo + i)
		s.Save(lo+i, i)
	}
	i, j, dst := 0, mid, lo
	winsL, winsR := 0, 0
	for i < r && j < hi {
		if times[i] <= s.Time(j) {
			s.Restore(i, dst)
			i++
			dst++
			winsL++
			winsR = 0
		} else {
			s.Move(j, dst)
			j++
			dst++
			winsR++
			winsL = 0
		}
		if winsL >= minGallop && i < r && j < hi {
			// Gallop left: count scratch records <= the right head.
			key := s.Time(j)
			n := gallopRight(func(k int) int64 { return times[i+k] }, r-i, key)
			for k := 0; k < n; k++ {
				s.Restore(i, dst)
				i++
				dst++
			}
			winsL = 0
		}
		if winsR >= minGallop && i < r && j < hi {
			// Gallop right: count right records < the scratch head.
			key := times[i]
			n := gallopLeft(func(k int) int64 { return s.Time(j + k) }, hi-j, key)
			for k := 0; k < n; k++ {
				s.Move(j, dst)
				j++
				dst++
			}
			winsR = 0
		}
	}
	for i < r {
		s.Restore(i, dst)
		i++
		dst++
	}
}

// gallopRight returns how many of the n keys (accessed via at) are
// <= key, using exponential probing then binary search.
func gallopRight(at func(int) int64, n int, key int64) int {
	if n == 0 || at(0) > key {
		return 0
	}
	lo, hi := 0, 1
	for hi < n && at(hi) <= key {
		lo = hi
		hi *= 2
	}
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if at(mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopLeft returns how many of the n keys are strictly < key.
func gallopLeft(at func(int) int64, n int, key int64) int {
	if n == 0 || at(0) >= key {
		return 0
	}
	lo, hi := 0, 1
	for hi < n && at(hi) < key {
		lo = hi
		hi *= 2
	}
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if at(mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mergeHi buffers the right run and merges backward. It uses the
// classic merge without galloping: the trim step already removed the
// long already-in-place stretches, and mergeHi only runs when the
// right run is the shorter side, so its stretches are short.
func mergeHi(s core.Sortable, lo, mid, hi int) {
	r := hi - mid
	s.EnsureScratch(r)
	times := make([]int64, r)
	for i := 0; i < r; i++ {
		times[i] = s.Time(mid + i)
		s.Save(mid+i, i)
	}
	i, j, dst := r-1, mid-1, hi-1
	for i >= 0 && j >= lo {
		if times[i] >= s.Time(j) {
			s.Restore(i, dst)
			i--
		} else {
			s.Move(j, dst)
			j--
		}
		dst--
	}
	for i >= 0 {
		s.Restore(i, dst)
		i--
		dst--
	}
}
