package sortalgo

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
)

// TestExhaustiveSmallInputs drives every algorithm over every array of
// length <= 7 with values in {0,1,2} (3^7 = 2187 arrays per length).
// Small-input exhaustion catches the boundary bugs random testing
// misses — it is what exposed an order-bookkeeping bug in the
// Smoothsort port during development.
func TestExhaustiveSmallInputs(t *testing.T) {
	algos := map[string]Func{}
	for _, name := range AllNames() {
		algos[name] = MustGet(name)
	}
	for n := 0; n <= 7; n++ {
		total := 1
		for i := 0; i < n; i++ {
			total *= 3
		}
		for code := 0; code < total; code++ {
			times := make([]int64, n)
			c := code
			for i := 0; i < n; i++ {
				times[i] = int64(c % 3)
				c /= 3
			}
			want := append([]int64(nil), times...)
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			for name, algo := range algos {
				p := makePairs(times)
				algo(p)
				for i := range want {
					if p.Times[i] != want[i] {
						t.Fatalf("%s: n=%d input code %d: got %v, want %v", name, n, code, p.Times, want)
					}
				}
			}
		}
	}
}

// TestExhaustivePermutations drives every algorithm over all
// permutations of [0..6] — every possible disorder pattern of 7
// distinct keys.
func TestExhaustivePermutations(t *testing.T) {
	var perms [][]int64
	var gen func(cur []int64, rest []int64)
	gen = func(cur []int64, rest []int64) {
		if len(rest) == 0 {
			perms = append(perms, append([]int64(nil), cur...))
			return
		}
		for i := range rest {
			next := append(cur, rest[i])
			var rem []int64
			rem = append(rem, rest[:i]...)
			rem = append(rem, rest[i+1:]...)
			gen(next, rem)
		}
	}
	gen(nil, []int64{0, 1, 2, 3, 4, 5, 6})
	if len(perms) != 5040 {
		t.Fatalf("generated %d permutations", len(perms))
	}
	for _, name := range AllNames() {
		algo := MustGet(name)
		for pi, perm := range perms {
			p := makePairs(perm)
			algo(p)
			for i := 0; i < 7; i++ {
				if p.Times[i] != int64(i) {
					t.Fatalf("%s: permutation %d (%v) sorted to %v", name, pi, perm, p.Times)
				}
			}
		}
	}
}

// TestImpatienceMoveEconomy verifies Impatience Sort's selling point:
// every record moves exactly twice (one save, one restore), no matter
// how many merge rounds the index arrays go through.
func TestImpatienceMoveEconomy(t *testing.T) {
	times := []int64{5, 1, 9, 2, 8, 3, 7, 4, 6, 0, 15, 11, 19, 12, 18}
	c := core.NewCounter(makePairs(times))
	ImpatienceSort(c)
	n := int64(len(times))
	if c.Saves != n || c.Restores != n || c.Swaps != 0 || c.Moves != 0 {
		t.Fatalf("impatience moved records more than twice each: %+v", c)
	}
	if !core.IsSorted(c) {
		t.Fatal("not sorted")
	}
}

// TestAdaptiveAlgorithmsDoNoWorkWhenSorted: the nearly-sorted
// specialists must perform zero (or near-zero) record movement on
// already-sorted input — the essence of adaptivity the paper builds
// on.
func TestAdaptiveAlgorithmsDoNoWorkWhenSorted(t *testing.T) {
	n := 5000
	times := make([]int64, n)
	for i := range times {
		times[i] = int64(i)
	}
	for _, name := range []string{"backward", "insertion", "ck", "y"} {
		c := core.NewCounter(makePairs(times))
		MustGet(name)(c)
		if moved := c.Swaps + c.Moves + c.Saves + c.Restores; moved != 0 {
			t.Errorf("%s moved %d records on sorted input", name, moved)
		}
	}
	// Timsort detects one run; it may still binary-insert within
	// minrun extension, so allow a small constant, not zero.
	c := core.NewCounter(makePairs(times))
	Timsort(c)
	if moved := c.Swaps + c.Moves + c.Saves + c.Restores; moved > int64(n)/100 {
		t.Errorf("tim moved %d records on sorted input", moved)
	}
}

// TestBackwardNeverMovesMoreThanStraight is the Figure 2 claim as a
// randomized property over delay-only inputs and block sizes.
func TestBackwardNeverMovesMoreThanStraight(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 500 + r.Intn(4000)
		mean := []float64{0.5, 2, 10, 50}[r.Intn(4)]
		block := []int{16, 64, 256}[r.Intn(3)]
		type p struct {
			gen     int64
			arrival float64
		}
		ps := make([]p, n)
		for i := range ps {
			ps[i] = p{int64(i), float64(i) + r.ExpFloat64()*mean}
		}
		sort.SliceStable(ps, func(a, b int) bool { return ps[a].arrival < ps[b].arrival })
		times := make([]int64, n)
		for i := range ps {
			times[i] = ps[i].gen
		}

		straight := core.NewCounter(makePairs(times))
		StraightMergeFrom(straight, block)
		backward := core.NewCounter(makePairs(times))
		core.BackwardSort(backward, core.Options{FixedBlockSize: block})
		if backward.TotalMoves() > straight.TotalMoves() {
			t.Fatalf("trial %d (n=%d mean=%g block=%d): backward %d moves > straight %d",
				trial, n, mean, block, backward.TotalMoves(), straight.TotalMoves())
		}
	}
}

// TestSmoothsortAdaptive checks the smooth degradation: sorted input
// must cost far fewer swaps than reverse input.
func TestSmoothsortAdaptive(t *testing.T) {
	n := 20000
	sorted := make([]int64, n)
	reverse := make([]int64, n)
	for i := range sorted {
		sorted[i] = int64(i)
		reverse[i] = int64(n - i)
	}
	cs := core.NewCounter(makePairs(sorted))
	Smoothsort(cs)
	cr := core.NewCounter(makePairs(reverse))
	Smoothsort(cr)
	if !core.IsSorted(cs.S.(*core.Pairs[int])) || !core.IsSorted(cr.S.(*core.Pairs[int])) {
		t.Fatal("not sorted")
	}
	if cs.Swaps*4 > cr.Swaps {
		t.Fatalf("smoothsort not adaptive: %d swaps sorted vs %d reversed", cs.Swaps, cr.Swaps)
	}
}
