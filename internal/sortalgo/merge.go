package sortalgo

import "repro/internal/core"

// MergeSort sorts s with a bottom-up ("straight") merge sort: blocks
// of a fixed starting width are sorted individually, then adjacent
// sorted runs are merged left to right in passes of doubling width.
// It is the Straight Merge strategy of the paper's Figure 2 — the
// strawman Backward Merge is compared against: every pass re-moves
// records that earlier passes already placed, which is exactly the
// redundant movement backward merging avoids.
func MergeSort(s core.Sortable) { MergeSortFrom(s, mergeBaseWidth) }

const mergeBaseWidth = 16

// MergeSortFrom runs the straight merge with the given starting block
// width (the Figure 2 experiment uses the same width for both merge
// strategies so the move counts are comparable).
func MergeSortFrom(s core.Sortable, width int) {
	n := s.Len()
	if n < 2 {
		return
	}
	if width < 1 {
		width = 1
	}
	for lo := 0; lo < n; lo += width {
		hi := lo + width
		if hi > n {
			hi = n
		}
		core.QuicksortRange(s, lo, hi)
	}
	for ; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			mergeRuns(s, lo, mid, hi)
		}
	}
}

// StraightMergeFrom is the *naive* straight merge of the paper's
// Figure 2: blocks are sorted, then adjacent runs are merged left to
// right with the whole left run buffered every time — no overlap
// trimming. Records placed by earlier passes are re-moved by later,
// wider passes ("the first block is moved again, causing redundant
// moves"), which is precisely the cost Backward Merge eliminates. It
// exists for the move-count comparison; MergeSort above is the
// stronger trimmed variant used as a regular baseline.
func StraightMergeFrom(s core.Sortable, width int) {
	n := s.Len()
	if n < 2 {
		return
	}
	if width < 1 {
		width = 1
	}
	for lo := 0; lo < n; lo += width {
		hi := lo + width
		if hi > n {
			hi = n
		}
		core.QuicksortRange(s, lo, hi)
	}
	for ; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			mergeRunsNaive(s, lo, mid, hi)
		}
	}
}

// mergeRunsNaive merges adjacent sorted runs [lo, mid) and [mid, hi)
// by buffering the entire left run, with no trimming.
func mergeRunsNaive(s core.Sortable, lo, mid, hi int) {
	r := mid - lo
	if r == 0 || hi == mid {
		return
	}
	s.EnsureScratch(r)
	times := make([]int64, r)
	for i := 0; i < r; i++ {
		times[i] = s.Time(lo + i)
		s.Save(lo+i, i)
	}
	i, j, dst := 0, mid, lo
	for i < r && j < hi {
		if times[i] <= s.Time(j) {
			s.Restore(i, dst)
			i++
		} else {
			s.Move(j, dst)
			j++
		}
		dst++
	}
	for i < r {
		s.Restore(i, dst)
		i++
		dst++
	}
}

// Heapsort sorts s with a classic binary max-heap, the in-place
// O(n log n) floor baseline (the family Smoothsort belongs to,
// Section VII-B). It is oblivious to existing order, so it bounds how
// much the adaptive algorithms gain from near-sortedness.
func Heapsort(s core.Sortable) {
	n := s.Len()
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(s, i, n)
	}
	for end := n - 1; end > 0; end-- {
		s.Swap(0, end)
		siftDown(s, 0, end)
	}
}

func siftDown(s core.Sortable, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && s.Time(child+1) > s.Time(child) {
			child++
		}
		if s.Time(root) >= s.Time(child) {
			return
		}
		s.Swap(root, child)
		root = child
	}
}
