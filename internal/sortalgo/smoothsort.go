package sortalgo

import (
	"math/bits"

	"repro/internal/core"
)

// Smoothsort sorts s with Dijkstra's Smoothsort (Sci. Comput.
// Program. 1982), discussed in the paper's related work: a heapsort
// over a forest of Leonardo-number-sized heaps whose cost degrades
// smoothly from O(n) on sorted input to O(n log n) on arbitrary input.
// Like the paper notes, it is unstable. The implementation follows the
// standard bitmask formulation ("Smoothsort demystified").
func Smoothsort(s core.Sortable) {
	n := s.Len()
	if n < 2 {
		return
	}
	lp := leonardo(n)
	// Invariant at the top of the grow loop: element head is the root
	// of the forest's smallest tree (order pshift, bitmask p) but has
	// not been heapified yet; the body fixes it, then prepares p and
	// pshift for element head+1 (merging the two smallest trees when
	// their orders are adjacent).
	var p uint64 = 1
	pshift := 1
	for head := 0; head < n-1; head++ {
		if p&3 == 3 {
			// Orders pshift and pshift+1 both present: the next
			// element merges them into one tree of order pshift+2.
			smoothSift(s, lp, pshift, head)
			p >>= 2
			pshift += 2
		} else {
			if lp[pshift-1] >= n-1-head {
				// The tree at head is final-sized: order all roots.
				smoothTrinkle(s, lp, p, pshift, head, false)
			} else {
				smoothSift(s, lp, pshift, head)
			}
			// The next element starts a new tree of order 1 (or 0
			// when an order-1 tree already exists).
			if pshift == 1 {
				p <<= 1
				pshift = 0
			} else {
				p <<= uint(pshift - 1)
				pshift = 1
			}
		}
		p |= 1
	}
	smoothTrinkle(s, lp, p, pshift, n-1, false)

	// Shrink phase: pop the maximum (the last root) and re-expose the
	// dismantled tree's children as roots.
	for head := n - 1; pshift != 1 || p != 1; head-- {
		if pshift <= 1 {
			trail := bits.TrailingZeros64(p &^ 1)
			p >>= uint(trail)
			pshift += trail
		} else {
			p <<= 2
			p ^= 7
			pshift -= 2
			smoothTrinkle(s, lp, p>>1, pshift+1, head-lp[pshift]-1, true)
			smoothTrinkle(s, lp, p, pshift, head-1, true)
		}
	}
}

// leonardo returns the Leonardo numbers 1, 1, 3, 5, 9, … up to > n.
func leonardo(n int) []int {
	lp := []int{1, 1}
	for lp[len(lp)-1] < n {
		lp = append(lp, lp[len(lp)-1]+lp[len(lp)-2]+1)
	}
	return lp
}

// smoothSift restores the heap property within one Leonardo tree
// rooted at head with order pshift.
func smoothSift(s core.Sortable, lp []int, pshift, head int) {
	for pshift > 1 {
		rt := head - 1
		lf := head - 1 - lp[pshift-2]
		hv := s.Time(head)
		if hv >= s.Time(lf) && hv >= s.Time(rt) {
			break
		}
		if s.Time(lf) >= s.Time(rt) {
			s.Swap(head, lf)
			head = lf
			pshift--
		} else {
			s.Swap(head, rt)
			head = rt
			pshift -= 2
		}
	}
}

// smoothTrinkle bubbles the root at head leftwards through the
// forest's root sequence, then sifts it into its tree.
func smoothTrinkle(s core.Sortable, lp []int, p uint64, pshift, head int, trusty bool) {
	for p != 1 {
		stepson := head - lp[pshift]
		if s.Time(stepson) <= s.Time(head) {
			break
		}
		if !trusty && pshift > 1 {
			rt := head - 1
			lf := head - 1 - lp[pshift-2]
			if s.Time(rt) >= s.Time(stepson) || s.Time(lf) >= s.Time(stepson) {
				break
			}
		}
		s.Swap(head, stepson)
		head = stepson
		trail := bits.TrailingZeros64(p &^ 1)
		p >>= uint(trail)
		pshift += trail
		trusty = false
	}
	if !trusty {
		smoothSift(s, lp, pshift, head)
	}
}

// ImpatienceSort sorts s following Impatience Sort (Chandramouli,
// Goldstein & Li, ICDE 2018), the paper's other nearly-sorted
// baseline: records are dealt into sorted runs exactly as Patience
// Sort does, but the runs are combined by balanced pairwise
// ("ping-pong") merges over index arrays, so every record physically
// moves only twice — once into scratch, once to its final position —
// regardless of how many merge rounds the indices go through.
func ImpatienceSort(s core.Sortable) {
	n := s.Len()
	if n < 2 {
		return
	}
	s.EnsureScratch(n)

	// Deal phase (same placement rule as PatienceSort).
	times := make([]int64, n)
	var piles [][]int32
	var tails []int64
	last := -1
	for i := 0; i < n; i++ {
		t := s.Time(i)
		times[i] = t
		s.Save(i, i)
		if last >= 0 && tails[last] <= t {
			piles[last] = append(piles[last], int32(i))
			tails[last] = t
			continue
		}
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := (lo + hi) / 2
			if tails[mid] > t {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		p := lo - 1
		if p < 0 {
			piles = append([][]int32{{int32(i)}}, piles...)
			tails = append([]int64{t}, tails...)
			last = 0
			continue
		}
		piles[p] = append(piles[p], int32(i))
		tails[p] = t
		last = p
	}

	// Ping-pong merge rounds over index arrays.
	for len(piles) > 1 {
		next := make([][]int32, 0, (len(piles)+1)/2)
		for i := 0; i+1 < len(piles); i += 2 {
			next = append(next, mergeIndexRuns(piles[i], piles[i+1], times))
		}
		if len(piles)%2 == 1 {
			next = append(next, piles[len(piles)-1])
		}
		piles = next
	}

	// Single placement pass.
	for dst, slot := range piles[0] {
		s.Restore(int(slot), dst)
	}
}

// mergeIndexRuns merges two slot-index runs ordered by times.
func mergeIndexRuns(a, b []int32, times []int64) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if times[a[i]] <= times[b[j]] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
