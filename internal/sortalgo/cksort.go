package sortalgo

import (
	"sort"

	"repro/internal/core"
)

// CKSort sorts s with the Cook–Kim hybrid (CACM 1980), a baseline the
// paper evaluates: records violating the sorted order are extracted
// into an auxiliary area (leaving the remainder sorted in place), the
// small auxiliary set is sorted, and the two sorted sequences are
// merged. It needs O(d) extra record space where d is the number of
// extracted records — up to O(n) on very disordered input, the space
// cost the paper notes.
func CKSort(s core.Sortable) {
	n := s.Len()
	if n < 2 {
		return
	}

	// Extraction: scan left to right compacting kept records. On a
	// violation a[i] < kept-tail, extract both the offender and the
	// kept tail (Cook & Kim remove the *pair*), so the kept region
	// stays sorted.
	s.EnsureScratch(n)
	var auxSlots []int
	var auxTimes []int64
	nextSlot := 0
	dst := 0 // kept region is [0, dst)
	for i := 0; i < n; i++ {
		t := s.Time(i)
		if dst > 0 && t < s.Time(dst-1) {
			// Extract the kept tail...
			s.Save(dst-1, nextSlot)
			auxSlots = append(auxSlots, nextSlot)
			auxTimes = append(auxTimes, s.Time(dst-1))
			nextSlot++
			dst--
			// ...and the offender.
			s.Save(i, nextSlot)
			auxSlots = append(auxSlots, nextSlot)
			auxTimes = append(auxTimes, t)
			nextSlot++
			continue
		}
		if dst != i {
			s.Move(i, dst)
		}
		dst++
	}
	if len(auxSlots) == 0 {
		return
	}

	// Sort the auxiliary records by time (indices only; the records
	// themselves stay parked in scratch).
	order := make([]int, len(auxSlots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return auxTimes[order[a]] < auxTimes[order[b]] })

	// Backward merge of the kept region [0, dst) with the sorted
	// auxiliary records into [0, n): filling from the back keeps every
	// pending main record to the left of where it lands.
	mi := dst - 1
	ai := len(order) - 1
	for pos := n - 1; pos >= 0; pos-- {
		if ai < 0 {
			break // remaining kept records are already in place
		}
		if mi >= 0 && s.Time(mi) > auxTimes[order[ai]] {
			s.Move(mi, pos)
			mi--
		} else {
			s.Restore(auxSlots[order[ai]], pos)
			ai--
		}
	}
}
