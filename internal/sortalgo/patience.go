package sortalgo

import (
	"sort"

	"repro/internal/core"
)

// PatienceSort sorts s with Patience Sort (Chandramouli & Goldstein,
// SIGMOD 2014), the state-of-the-art nearly-sorted baseline of the
// paper: records are dealt into sorted piles (natural runs), then the
// piles are merged. Every record is parked in scratch during dealing,
// so the algorithm needs O(n) extra record space — the memory cost the
// paper holds against it in the flush-time experiments.
func PatienceSort(s core.Sortable) {
	n := s.Len()
	if n < 2 {
		return
	}
	s.EnsureScratch(n)

	// Deal phase. Piles grow by appending, so each pile is sorted.
	// A record goes to the pile with the largest tail <= it (found by
	// binary search over tails, which stay in increasing order under
	// this placement rule), checking the most recently used pile
	// first — the locality shortcut that makes dealing near-linear on
	// nearly sorted data.
	times := make([]int64, n)
	var piles [][]int // scratch slot indices
	var tails []int64 // tails[p] = time of last record in pile p
	last := -1        // most recently used pile
	for i := 0; i < n; i++ {
		t := s.Time(i)
		times[i] = t
		s.Save(i, i)
		if last >= 0 && tails[last] <= t {
			piles[last] = append(piles[last], i)
			tails[last] = t
			continue
		}
		// Largest tail <= t: binary search the first tail > t.
		p := sort.Search(len(tails), func(k int) bool { return tails[k] > t }) - 1
		if p < 0 {
			// New pile. Insert keeping tails ordered: a brand-new
			// pile's tail t is smaller than every existing tail, so
			// it goes to the front.
			piles = append([][]int{{i}}, piles...)
			tails = append([]int64{t}, tails...)
			last = 0
			continue
		}
		piles[p] = append(piles[p], i)
		tails[p] = t
		last = p
	}

	// Merge phase: k-way merge of the sorted piles via a binary heap
	// of pile heads, restoring records into final positions.
	h := newPileHeap(piles, times)
	for dst := 0; dst < n; dst++ {
		slot := h.pop()
		s.Restore(slot, dst)
	}
}

// pileHeap is a minimal binary min-heap over pile heads, keyed by
// record time with the pile index as tiebreak for determinism.
type pileHeap struct {
	piles [][]int
	pos   []int // next unread element per pile
	times []int64
	heap  []int // pile indices
}

func newPileHeap(piles [][]int, times []int64) *pileHeap {
	h := &pileHeap{piles: piles, pos: make([]int, len(piles)), times: times}
	for p := range piles {
		if len(piles[p]) > 0 {
			h.heap = append(h.heap, p)
		}
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

func (h *pileHeap) key(p int) int64 { return h.times[h.piles[p][h.pos[p]]] }

func (h *pileHeap) less(i, j int) bool {
	a, b := h.heap[i], h.heap[j]
	ka, kb := h.key(a), h.key(b)
	if ka != kb {
		return ka < kb
	}
	return a < b
}

func (h *pileHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.heap[i], h.heap[small] = h.heap[small], h.heap[i]
		i = small
	}
}

// pop removes and returns the scratch slot of the globally smallest
// pile head.
func (h *pileHeap) pop() int {
	p := h.heap[0]
	slot := h.piles[p][h.pos[p]]
	h.pos[p]++
	if h.pos[p] == len(h.piles[p]) {
		// Pile exhausted: replace root with the last heap entry.
		h.heap[0] = h.heap[len(h.heap)-1]
		h.heap = h.heap[:len(h.heap)-1]
	}
	if len(h.heap) > 0 {
		h.down(0)
	}
	return slot
}
