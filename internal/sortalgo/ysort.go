package sortalgo

import "repro/internal/core"

// YSort sorts s with Wainwright's Quicksort variant (CACM 1985), a
// baseline of the paper: each partitioning pass also locates the
// minimum and maximum of the sublist and pins them to its left and
// right ends, so recursion shrinks faster and already-sorted sublists
// are detected and skipped. The paper observes it performs well at low
// disorder and degrades when disorder is large — the sortedness check
// and min/max scans are wasted work on heavily shuffled input.
func YSort(s core.Sortable) { ySortRange(s, 0, s.Len()) }

const yCutoff = 12

func ySortRange(s core.Sortable, lo, hi int) {
	for hi-lo > yCutoff {
		if sortedRange(s, lo, hi) {
			return
		}
		// Pin min and max to the ends.
		minI, maxI := lo, lo
		minT, maxT := s.Time(lo), s.Time(lo)
		for i := lo + 1; i < hi; i++ {
			t := s.Time(i)
			if t < minT {
				minT, minI = t, i
			}
			if t > maxT {
				maxT, maxI = t, i
			}
		}
		if minI != lo {
			s.Swap(lo, minI)
			if maxI == lo {
				maxI = minI // max was displaced by the min swap
			}
		}
		if maxI != hi-1 {
			s.Swap(hi-1, maxI)
		}
		// Partition the interior around its middle element.
		p := yPartition(s, lo+1, hi-1)
		if p+1-(lo+1) < (hi-1)-(p+1) {
			ySortRange(s, lo+1, p+1)
			lo = p + 1
		} else {
			ySortRange(s, p+1, hi-1)
			hi = p + 1
		}
	}
	core.InsertionSortRange(s, lo, hi)
}

func sortedRange(s core.Sortable, lo, hi int) bool {
	for i := lo + 1; i < hi; i++ {
		if s.Time(i-1) > s.Time(i) {
			return false
		}
	}
	return true
}

// yPartition is a Hoare partition of [lo, hi) around the middle
// element, returning j with [lo, j] <= pivot <= [j+1, hi).
func yPartition(s core.Sortable, lo, hi int) int {
	if hi-lo < 2 {
		return lo
	}
	mid := int(uint(lo+hi) >> 1)
	s.Swap(lo, mid)
	pivot := s.Time(lo)
	i, j := lo-1, hi
	for {
		for {
			i++
			if s.Time(i) >= pivot {
				break
			}
		}
		for {
			j--
			if s.Time(j) <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		s.Swap(i, j)
	}
}
