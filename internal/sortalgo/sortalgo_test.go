package sortalgo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
)

func makePairs(times []int64) *core.Pairs[int] {
	ts := make([]int64, len(times))
	copy(ts, times)
	vals := make([]int, len(times))
	for i := range vals {
		vals[i] = i
	}
	return core.NewPairs(ts, vals)
}

func checkSortedPermutation(t *testing.T, name string, p *core.Pairs[int], orig []int64) {
	t.Helper()
	if !core.IsSorted(p) {
		t.Fatalf("%s: output not sorted", name)
	}
	seen := make([]bool, len(orig))
	for i := range p.Times {
		idx := p.Values[i]
		if idx < 0 || idx >= len(orig) || seen[idx] {
			t.Fatalf("%s: record set corrupted at %d", name, i)
		}
		seen[idx] = true
		if p.Times[i] != orig[idx] {
			t.Fatalf("%s: record %d tore apart", name, idx)
		}
	}
}

// adversarialInputs are deterministic shapes that historically break
// sorting implementations.
func adversarialInputs() map[string][]int64 {
	n := 3000
	r := rand.New(rand.NewSource(12345))
	inputs := map[string][]int64{
		"empty":    {},
		"single":   {7},
		"two":      {2, 1},
		"ties":     {5, 5, 5, 5, 5},
		"sawtooth": make([]int64, n),
		"sorted":   make([]int64, n),
		"reverse":  make([]int64, n),
		"organ":    make([]int64, n),
		"random":   make([]int64, n),
		"fewvals":  make([]int64, n),
		"delayed":  dataset.LogNormal(n, 1, 2, 5).Times,
		"citibike": dataset.CitiBike201808(n, 5).Times,
		"samsung":  dataset.SamsungS10(n, 5).Times,
	}
	for i := 0; i < n; i++ {
		inputs["sawtooth"][i] = int64(i % 17)
		inputs["sorted"][i] = int64(i)
		inputs["reverse"][i] = int64(n - i)
		if i < n/2 {
			inputs["organ"][i] = int64(i)
		} else {
			inputs["organ"][i] = int64(n - i)
		}
		inputs["random"][i] = r.Int63n(1 << 40)
		inputs["fewvals"][i] = r.Int63n(3)
	}
	return inputs
}

func TestAllAlgorithmsOnAdversarialInputs(t *testing.T) {
	for _, name := range AllNames() {
		algo := MustGet(name)
		for shape, times := range adversarialInputs() {
			orig := make([]int64, len(times))
			copy(orig, times)
			p := makePairs(times)
			algo(p)
			checkSortedPermutation(t, name+"/"+shape, p, orig)
		}
	}
}

func TestAllAlgorithmsQuickProperty(t *testing.T) {
	for _, name := range AllNames() {
		algo := MustGet(name)
		f := func(times []int64) bool {
			if name == "insertion" && len(times) > 400 {
				times = times[:400]
			}
			orig := make([]int64, len(times))
			copy(orig, times)
			p := makePairs(times)
			algo(p)
			if !core.IsSorted(p) {
				return false
			}
			sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
			for i, v := range p.Times {
				if v != orig[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	if _, ok := Get("backward"); !ok {
		t.Fatal("backward missing from registry")
	}
	if _, ok := Get("bogus"); ok {
		t.Fatal("registry invented an algorithm")
	}
	for _, n := range PaperNames() {
		if _, ok := Get(n); !ok {
			t.Fatalf("paper algorithm %q not registered", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet should panic on unknown name")
		}
	}()
	MustGet("bogus")
}

func TestTimsortNaturalRuns(t *testing.T) {
	// Two pre-sorted halves merge with zero block re-sorting: verify
	// correct output and that descending runs reverse properly.
	times := []int64{1, 3, 5, 7, 9, 8, 6, 4, 2, 0}
	orig := make([]int64, len(times))
	copy(orig, times)
	p := makePairs(times)
	Timsort(p)
	checkSortedPermutation(t, "tim/runs", p, orig)
}

func TestGallopHelpers(t *testing.T) {
	keys := []int64{1, 3, 3, 5, 7, 9}
	at := func(i int) int64 { return keys[i] }
	cases := []struct {
		key         int64
		right, left int
	}{
		{0, 0, 0}, {1, 1, 0}, {3, 3, 1}, {4, 3, 3}, {9, 6, 5}, {10, 6, 6},
	}
	for _, c := range cases {
		if got := gallopRight(at, len(keys), c.key); got != c.right {
			t.Errorf("gallopRight(%d) = %d, want %d", c.key, got, c.right)
		}
		if got := gallopLeft(at, len(keys), c.key); got != c.left {
			t.Errorf("gallopLeft(%d) = %d, want %d", c.key, got, c.left)
		}
	}
	if gallopRight(at, 0, 5) != 0 || gallopLeft(at, 0, 5) != 0 {
		t.Fatal("empty gallop should be 0")
	}
}

func TestTimsortGallopsOnBlockSwap(t *testing.T) {
	// Two long sorted halves with interleaved blocks force merges with
	// long single-side stretches — galloping's best case. Check both
	// correctness and that comparisons stay well below one per record
	// move (the galloping win).
	n := 1 << 14
	times := make([]int64, 0, n)
	for b := 0; b < 8; b++ {
		base := int64(((b % 2) * (n / 2)) + (b/2)*(n/8))
		for i := 0; i < n/8; i++ {
			times = append(times, base+int64(i))
		}
	}
	orig := append([]int64(nil), times...)
	c := core.NewCounter(makePairs(times))
	Timsort(c)
	checkSortedPermutation(t, "tim/gallop", c.S.(*core.Pairs[int]), orig)
	if c.TimeReads > int64(8*n) {
		t.Fatalf("galloping did not bound comparisons: %d key reads for n=%d", c.TimeReads, n)
	}
}

func TestMinRunLength(t *testing.T) {
	cases := map[int]int{1: 1, 31: 31, 32: 16, 33: 17, 64: 16, 65: 17, 100000: 25}
	for n, want := range cases {
		if got := minRunLength(n); got != want {
			t.Errorf("minRunLength(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCKSortExtractionOnlyWhenNeeded(t *testing.T) {
	// On sorted input CKSort extracts nothing and moves nothing.
	times := make([]int64, 1000)
	for i := range times {
		times[i] = int64(i)
	}
	c := core.NewCounter(makePairs(times))
	CKSort(c)
	if c.Saves+c.Restores+c.Swaps != 0 {
		t.Fatalf("CKSort moved records on sorted input: %+v", c)
	}
}

func TestYSortSortedShortCircuit(t *testing.T) {
	times := make([]int64, 5000)
	for i := range times {
		times[i] = int64(i)
	}
	c := core.NewCounter(makePairs(times))
	YSort(c)
	if c.Swaps+c.Moves+c.Saves != 0 {
		t.Fatalf("YSort moved records on sorted input: %+v", c)
	}
}

func TestPatiencePileCountMatchesDisorder(t *testing.T) {
	// A single delayed record creates at most a couple of piles and
	// patience must restore every record exactly once.
	times := []int64{0, 1, 2, 10, 3, 4, 5, 6, 11, 12}
	orig := make([]int64, len(times))
	copy(orig, times)
	p := makePairs(times)
	c := core.NewCounter(p)
	PatienceSort(c)
	checkSortedPermutation(t, "patience/small", p, orig)
	if c.Saves != int64(len(times)) || c.Restores != int64(len(times)) {
		t.Fatalf("patience should save and restore each record once: %+v", c)
	}
}

func TestMergeSortFromWidths(t *testing.T) {
	orig := dataset.AbsNormal(5000, 1, 4, 9).Times
	for _, w := range []int{1, 2, 3, 16, 100, 5000, 10000} {
		p := makePairs(orig)
		MergeSortFrom(p, w)
		checkSortedPermutation(t, "merge/w", p, orig)
	}
	// Width < 1 is clamped.
	p := makePairs(orig)
	MergeSortFrom(p, 0)
	checkSortedPermutation(t, "merge/w0", p, orig)
}

// TestFig2BackwardBeatsStraightMerge reproduces the *claim* of the
// paper's Figure 2: on delay-only data split into blocks, the backward
// merge performs fewer record moves than the straight (bottom-up)
// merge, because the straight merge re-moves already-placed prefixes
// (the paper's worked example: 4M+4 vs 3M+7 moves).
func TestFig2BackwardBeatsStraightMerge(t *testing.T) {
	// Figure 2's shape: a few records delayed to the front of the
	// following block, e.g. M=16-record blocks with timestamps 1 and
	// 3 arriving late.
	const M = 64
	var times []int64
	next := int64(0)
	for b := 0; b < 8; b++ {
		delayedFromPrev := next - 2 // arrives at the head of this block
		if b > 0 {
			times = append(times, delayedFromPrev)
		}
		for i := 0; i < M; i++ {
			if b > 0 && i == M-3 {
				continue // hole for the record delayed into the next block
			}
			times = append(times, next)
			next++
		}
	}
	orig := make([]int64, len(times))
	copy(orig, times)

	straight := core.NewCounter(makePairs(times))
	StraightMergeFrom(straight, M)

	backward := core.NewCounter(makePairs(times))
	core.BackwardSort(backward, core.Options{FixedBlockSize: M})

	checkSortedPermutation(t, "fig2/straight", straight.S.(*core.Pairs[int]), orig)
	checkSortedPermutation(t, "fig2/backward", backward.S.(*core.Pairs[int]), orig)

	if backward.TotalMoves() >= straight.TotalMoves() {
		t.Fatalf("backward merge (%d moves) did not beat straight merge (%d moves)",
			backward.TotalMoves(), straight.TotalMoves())
	}
}

// TestBackwardMoveAdvantageOnDelayedData checks the Figure 2 claim on
// generated delay-only data rather than a constructed example.
func TestBackwardMoveAdvantageOnDelayedData(t *testing.T) {
	s := dataset.LogNormal(50000, 1, 1, 33)
	straight := core.NewCounter(makePairs(s.Times))
	StraightMergeFrom(straight, 256)
	backward := core.NewCounter(makePairs(s.Times))
	core.BackwardSort(backward, core.Options{FixedBlockSize: 256})
	if backward.TotalMoves() >= straight.TotalMoves() {
		t.Fatalf("backward merge (%d moves) did not beat straight merge (%d moves)",
			backward.TotalMoves(), straight.TotalMoves())
	}
}

func TestHeapsortOblivious(t *testing.T) {
	// Heapsort does roughly the same work sorted or not — it is the
	// non-adaptive floor. Just verify it sorts both.
	for _, gen := range []func() []int64{
		func() []int64 { return dataset.Ordered(2000, 1).Times },
		func() []int64 { return dataset.LogNormal(2000, 1, 4, 1).Times },
	} {
		times := gen()
		orig := make([]int64, len(times))
		copy(orig, times)
		p := makePairs(times)
		Heapsort(p)
		checkSortedPermutation(t, "heap", p, orig)
	}
}
