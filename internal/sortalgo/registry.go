// Package sortalgo implements the sorting algorithms the paper
// compares Backward-Sort against (Section VI-A1): Quicksort with a
// middle pivot, Timsort, Patience Sort, CKSort and YSort, plus
// straight Insertion-Sort, bottom-up (straight) Merge Sort and
// Heapsort as supporting baselines. Every algorithm runs against
// core.Sortable, the same record interface Backward-Sort uses, so move
// and comparison counts are directly comparable.
package sortalgo

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Func sorts a record sequence by timestamp.
type Func func(core.Sortable)

// registry maps algorithm names (as the paper's figure legends spell
// them) to implementations.
var registry = map[string]Func{
	"backward":   func(s core.Sortable) { core.BackwardSort(s, core.Options{}) },
	"quick":      core.Quicksort,
	"tim":        Timsort,
	"patience":   PatienceSort,
	"ck":         CKSort,
	"y":          YSort,
	"insertion":  core.InsertionSort,
	"merge":      MergeSort,
	"heap":       Heapsort,
	"smooth":     Smoothsort,
	"impatience": ImpatienceSort,
}

// Get returns the named algorithm.
func Get(name string) (Func, bool) {
	f, ok := registry[name]
	return f, ok
}

// MustGet returns the named algorithm or panics; experiment drivers
// use it with compile-time-known names.
func MustGet(name string) Func {
	f, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("sortalgo: unknown algorithm %q", name))
	}
	return f
}

// PaperNames returns the six algorithms of the paper's comparison
// figures, in legend order.
func PaperNames() []string {
	return []string{"backward", "tim", "patience", "quick", "ck", "y"}
}

// AllNames returns every registered algorithm, sorted.
func AllNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
