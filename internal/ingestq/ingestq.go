// Package ingestq provides the bounded dispatch queue and shared
// worker pool that every byte entering the system funnels through.
// The rpc server's pipelined connections and the HTTP line-protocol
// gateway submit work to one Queue, so both protocols see a single
// overload policy: when the queue is full, Submit fails immediately
// with ErrQueueFull instead of blocking the caller or growing an
// unbounded backlog, and RetryAfter offers the peer a hint — derived
// from the measured service rate — for when capacity is likely back.
//
// The queue is deliberately tiny: a buffered channel of closures and
// N worker goroutines. What it buys over "spawn a goroutine per
// request" is exactly the two properties a front end under overload
// needs — a hard bound on queued memory and a hard bound on
// concurrently executing work — so saturation degrades into fast,
// explicit rejections rather than OOM or collapse.
package ingestq

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by TrySubmit when the queue is at
// capacity. The rpc server translates it into the wire-level
// overloaded status; the HTTP gateway into 429 Too Many Requests.
var ErrQueueFull = errors.New("ingestq: queue full")

// ErrClosed is returned by TrySubmit after Close.
var ErrClosed = errors.New("ingestq: closed")

// Defaults used when New is given non-positive sizes.
const (
	DefaultCapacity = 1024
)

// retryAfter clamping bounds: hints below the floor just make clients
// busy-spin; hints above the ceiling turn a transient burst into an
// outage from the client's point of view.
const (
	minRetryAfter = 5 * time.Millisecond
	maxRetryAfter = 2 * time.Second
	// defaultTaskNanos seeds the hint before any task has completed.
	defaultTaskNanos = int64(2 * time.Millisecond)
)

// Queue is a bounded task queue drained by a fixed worker pool. All
// methods are safe for concurrent use. Close must only be called once
// no submitter can race it (in practice: after the rpc server and
// gateway sharing the queue have shut down).
type Queue struct {
	tasks   chan func()
	workers int
	wg      sync.WaitGroup

	closeOnce sync.Once
	closed    atomic.Bool
	done      chan struct{}

	enqueued  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	busyNanos atomic.Int64
}

// Stats is a point-in-time snapshot of the queue's counters.
type Stats struct {
	Capacity int   // queue slots
	Depth    int   // tasks waiting (not yet picked up by a worker)
	Workers  int   // worker pool size
	Enqueued int64 // tasks accepted since New
	Rejected int64 // TrySubmit calls refused with ErrQueueFull
}

// New builds a queue of the given capacity drained by the given number
// of workers. Non-positive capacity defaults to DefaultCapacity;
// non-positive workers defaults to GOMAXPROCS.
func New(capacity, workers int) *Queue {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	q := &Queue{
		tasks:   make(chan func(), capacity),
		workers: workers,
		done:    make(chan struct{}),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for t := range q.tasks {
		if t == nil {
			return // Close sentinel
		}
		start := time.Now()
		t()
		q.busyNanos.Add(int64(time.Since(start)))
		q.completed.Add(1)
	}
}

// TrySubmit enqueues t for execution by the worker pool, never
// blocking: a full queue fails with ErrQueueFull immediately. The
// task runs exactly once unless the queue is closed first.
func (q *Queue) TrySubmit(t func()) error {
	if q.closed.Load() {
		return ErrClosed
	}
	select {
	case q.tasks <- t:
		q.enqueued.Add(1)
		return nil
	default:
		q.rejected.Add(1)
		return ErrQueueFull
	}
}

// RetryAfter estimates how long an overloaded caller should wait
// before retrying: the time the pool needs to drain the current
// backlog at the measured mean task duration, clamped to a sane
// range. It is a hint, not a guarantee.
func (q *Queue) RetryAfter() time.Duration {
	avg := defaultTaskNanos
	if n := q.completed.Load(); n > 0 {
		avg = q.busyNanos.Load() / n
		if avg <= 0 {
			avg = 1
		}
	}
	backlog := int64(len(q.tasks))/int64(q.workers) + 1
	d := time.Duration(avg * backlog)
	if d < minRetryAfter {
		d = minRetryAfter
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Capacity: cap(q.tasks),
		Depth:    len(q.tasks),
		Workers:  q.workers,
		Enqueued: q.enqueued.Load(),
		Rejected: q.rejected.Load(),
	}
}

// Done returns a channel that is closed once Close has finished:
// workers are stopped and the straggler drain has run. Callers that
// block on a task-completion signal should select on it too, so a
// submit racing Close (see below) cannot strand them forever.
func (q *Queue) Done() <-chan struct{} { return q.done }

// Close stops the workers after the backlog ahead of the close drains,
// and waits for them. TrySubmit fails with ErrClosed afterwards.
// Tasks accepted by a TrySubmit racing Close — past the closed check
// before the sentinels landed — are run inline by Close itself, so
// accepted work is executed, not silently stranded. Owners should
// still stop all submitters (servers, gateways) before closing the
// queue they share: a submit that loses the race entirely fails with
// ErrClosed, and submitters must be prepared for that.
func (q *Queue) Close() {
	q.closeOnce.Do(func() {
		q.closed.Store(true)
		for i := 0; i < q.workers; i++ {
			q.tasks <- nil
		}
		q.wg.Wait()
		for {
			select {
			case t := <-q.tasks:
				if t != nil {
					t()
					q.completed.Add(1)
				}
				continue
			default:
			}
			break
		}
		close(q.done)
	})
}
