package ingestq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunsSubmittedTasks: every accepted task runs exactly once.
func TestRunsSubmittedTasks(t *testing.T) {
	q := New(16, 2)
	defer q.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		for {
			err := q.TrySubmit(func() { ran.Add(1); wg.Done() })
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
	st := q.Stats()
	if st.Enqueued != 100 {
		t.Fatalf("enqueued = %d, want 100", st.Enqueued)
	}
}

// TestRejectsWhenFull: with one worker wedged and the single slot
// occupied, further submits fail fast with ErrQueueFull and the
// rejection is counted; nothing blocks.
func TestRejectsWhenFull(t *testing.T) {
	q := New(1, 1)
	defer q.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	if err := q.TrySubmit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue slot free again
	if err := q.TrySubmit(func() {}); err != nil {
		t.Fatalf("slot submit: %v", err)
	}
	// Worker busy + slot full: the next submit must reject immediately.
	done := make(chan error, 1)
	go func() { done <- q.TrySubmit(func() {}) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("expected ErrQueueFull, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("TrySubmit blocked on a full queue")
	}
	if got := q.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	close(release)
}

// TestRetryAfterScalesWithBacklog: the hint stays within its clamp
// bounds and grows with queue depth.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	q := New(64, 1)
	defer q.Close()
	empty := q.RetryAfter()
	if empty < minRetryAfter || empty > maxRetryAfter {
		t.Fatalf("hint %v outside [%v, %v]", empty, minRetryAfter, maxRetryAfter)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	q.TrySubmit(func() { close(started); <-release })
	<-started
	for i := 0; i < 64; i++ {
		q.TrySubmit(func() { time.Sleep(time.Millisecond) })
	}
	deep := q.RetryAfter()
	if deep < empty {
		t.Fatalf("hint shrank with backlog: empty %v, deep %v", empty, deep)
	}
	close(release)
}

// TestCloseDrainsAndStops: Close waits for the backlog, and later
// submits fail with ErrClosed.
func TestCloseDrainsAndStops(t *testing.T) {
	q := New(32, 2)
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		if err := q.TrySubmit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if ran.Load() != 20 {
		t.Fatalf("Close lost tasks: ran %d of 20", ran.Load())
	}
	if err := q.TrySubmit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	q.Close() // idempotent
}

// TestCloseRunsStragglers: a task that lands in the channel after the
// close sentinels — the documented submit-racing-Close window — is run
// by Close itself rather than stranded, and Done() only closes after.
func TestCloseRunsStragglers(t *testing.T) {
	q := New(8, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	if err := q.TrySubmit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is wedged; the channel is empty

	closed := make(chan struct{})
	go func() {
		q.Close()
		close(closed)
	}()
	for !q.closed.Load() {
		time.Sleep(time.Millisecond)
	}
	// Emulate the racing submit: past TrySubmit's closed check, the
	// task enters the channel around the sentinel.
	ran := make(chan struct{})
	q.tasks <- func() { close(ran) }

	close(release)
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler task stranded by Close")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	select {
	case <-q.Done():
	default:
		t.Fatal("Done() not closed after Close returned")
	}
}
