package winagg

import (
	"math"
	"testing"
)

func TestAccPointsMatchStats(t *testing.T) {
	// Folding a chunk as individual points and folding it as one stats
	// block must produce identical results for every op.
	values := []float64{3, -1, 4, 1, 5, 9, 2, 6}
	min, max, sum := values[0], values[0], 0.0
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	for op := Count; op <= Last; op++ {
		var byPoint, byStats Acc
		byPoint.Op, byStats.Op = op, op
		byPoint.AddPoint(-7) // a decoded point before the chunk
		byStats.AddPoint(-7)
		for _, v := range values {
			byPoint.AddPoint(v)
		}
		byStats.AddStats(len(values), min, max, sum, values[0], values[len(values)-1])
		byPoint.AddPoint(100) // and one after
		byStats.AddPoint(100)
		if byPoint.Count() != byStats.Count() {
			t.Fatalf("%v: counts differ: %d vs %d", op, byPoint.Count(), byStats.Count())
		}
		if byPoint.Result() != byStats.Result() {
			t.Fatalf("%v: results differ: %g vs %g", op, byPoint.Result(), byStats.Result())
		}
	}
}

func TestAccEmpty(t *testing.T) {
	a := Acc{Op: Avg}
	if a.Count() != 0 || a.Result() != 0 {
		t.Fatalf("zero acc: count=%d result=%g", a.Count(), a.Result())
	}
	a.AddStats(0, 1, 2, 3, 4, 5) // ignored
	if a.Count() != 0 {
		t.Fatal("empty stats contribution changed the count")
	}
}

func TestOpValidAndString(t *testing.T) {
	for op := Count; op <= Last; op++ {
		if !op.Valid() {
			t.Fatalf("%d should be valid", int(op))
		}
		if op.String() == "" {
			t.Fatalf("%d has no name", int(op))
		}
	}
	if Op(-1).Valid() || Op(7).Valid() {
		t.Fatal("out-of-range ops accepted")
	}
}

func TestWindowStart(t *testing.T) {
	cases := []struct {
		startT, t, window, want int64
	}{
		{0, 0, 10, 0},
		{0, 9, 10, 0},
		{0, 10, 10, 10},
		{5, 7, 10, 5},
		{5, 15, 10, 15},
		{-100, -91, 10, -100},
		{-100, -90, 10, -90},
		// Extreme range: naive (t-startT) overflows int64.
		{math.MinInt64, math.MaxInt64, 1 << 40, math.MinInt64 + (1<<40)*((1<<24)-1) + ((1 << 40) * ((1 << 24) * ((1 << 63 / (1 << 40) / (1 << 24)) * 2)))},
	}
	// The extreme case is easier to assert structurally than literally.
	for _, c := range cases[:len(cases)-1] {
		if got := WindowStart(c.startT, c.t, c.window); got != c.want {
			t.Fatalf("WindowStart(%d, %d, %d) = %d, want %d", c.startT, c.t, c.window, got, c.want)
		}
	}
	ws := WindowStart(math.MinInt64, math.MaxInt64, 1<<40)
	if ws > math.MaxInt64-(1<<40)+1 || math.MaxInt64-ws >= 1<<40 {
		t.Fatalf("extreme-range window start %d not within one window of t", ws)
	}
}
