// Package winagg holds the windowed-aggregation primitives shared by
// the query layer (which reduces materialized point slices) and the
// storage engine (which pushes the same reductions down onto per-chunk
// statistics without decoding). Both paths fold contributions into an
// Acc; because an Acc accepts whole-chunk statistics as well as single
// points, a window can mix stats-answered chunks with decoded boundary
// points and still produce the exact first/last/min/max/sum the
// materialized path would.
//
// Contributions must be added in time order — First and Last are
// defined by it. The engine guarantees this: the merge cursor yields
// points in nondecreasing time order, and a stats-answered chunk is
// folded in at its MinTime, which is sound because eligibility
// requires that no other contribution falls inside the chunk's time
// range.
package winagg

import "fmt"

// Op selects the per-window aggregate function. The ordinal values are
// shared with query.Aggregator and the RPC wire encoding; do not
// reorder.
type Op int

// Supported aggregate functions.
const (
	Count Op = iota
	Sum
	Avg
	Min
	Max
	First
	Last
)

// String returns the SQL-ish name of the aggregator.
func (a Op) String() string {
	switch a {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case First:
		return "first"
	case Last:
		return "last"
	default:
		return fmt.Sprintf("Op(%d)", int(a))
	}
}

// Valid reports whether a names a supported aggregate function.
func (a Op) Valid() bool { return a >= Count && a <= Last }

// Window is one aggregated window [Start, Start+width).
type Window struct {
	Start int64
	Count int
	Value float64
}

// Acc accumulates one window's contributions. The zero value (plus an
// Op) is ready to use.
type Acc struct {
	Op    Op
	count int
	sum   float64
	min   float64
	max   float64
	first float64
	last  float64
}

// AddPoint folds one decoded point into the window.
func (a *Acc) AddPoint(v float64) { a.add(1, v, v, v, v, v) }

// AddStats folds a whole chunk's value statistics into the window
// without its points. The caller vouches that every one of the chunk's
// count points belongs to this window and that no other contribution
// lies inside the chunk's time range.
func (a *Acc) AddStats(count int, min, max, sum, first, last float64) {
	if count <= 0 {
		return
	}
	a.add(count, min, max, sum, first, last)
}

func (a *Acc) add(count int, min, max, sum, first, last float64) {
	if a.count == 0 {
		a.first = first
		a.min, a.max = min, max
	} else {
		if min < a.min {
			a.min = min
		}
		if max > a.max {
			a.max = max
		}
	}
	a.count += count
	a.sum += sum
	a.last = last
}

// Count returns the number of points folded in so far.
func (a *Acc) Count() int { return a.count }

// Result finalizes the window value for the accumulator's Op.
func (a *Acc) Result() float64 {
	switch a.Op {
	case Count:
		return float64(a.count)
	case Sum:
		return a.sum
	case Avg:
		if a.count == 0 {
			return 0
		}
		return a.sum / float64(a.count)
	case Min:
		return a.min
	case Max:
		return a.max
	case First:
		return a.first
	case Last:
		return a.last
	default:
		return 0
	}
}

// WindowStart returns the start of the window containing t for windows
// of the given width anchored at startT. t must be >= startT. The
// subtraction is done in uint64 so that extreme ranges (startT near
// MinInt64, t near MaxInt64) cannot overflow: two's-complement
// arithmetic makes the modular result exact whenever the true window
// start is representable, which it is (startT <= ws <= t).
func WindowStart(startT, t, window int64) int64 {
	delta := uint64(t) - uint64(startT)
	return startT + int64(delta/uint64(window)*uint64(window))
}
