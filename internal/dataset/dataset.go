// Package dataset produces time series in *arrival order*, the input
// the sorting algorithms of this repository consume. Generation
// follows Definition 5 of the paper: generation timestamps are evenly
// spaced (interval 1), every point is shifted by an i.i.d. delay τ ~ D,
// and the series is observed in order of arrival time t + τ. Because
// delays are non-negative, the resulting permutations are exactly the
// "delay-only, not-too-distant" disorders the paper studies.
//
// The paper evaluates on two synthetic datasets (AbsNormal, LogNormal)
// and four slices of two real-world datasets (CitiBike-201808,
// CitiBike-201902, Samsung-D5, Samsung-S10). The raw real-world files
// are not redistributable, so this package ships *simulated*
// equivalents: delay models calibrated so the interval-inversion-ratio
// curves (Figure 8a) have the paper's shape — Samsung disorder
// vanishes by block size ~2^5, CitiBike disorder persists until
// ~2^16. Since a sorting algorithm only ever observes the arrival
// permutation, and the IIR curve characterizes that permutation,
// matching the curve preserves the behaviour under study. See
// DESIGN.md §3.
package dataset

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/delay"
)

// Series is a time series in arrival order: Times[i] is the generation
// timestamp of the i-th point to arrive, Values[i] its value.
type Series struct {
	Name   string
	Times  []int64
	Values []float64
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Clone deep-copies the series so callers can sort destructively.
func (s *Series) Clone() *Series {
	c := &Series{Name: s.Name, Times: make([]int64, len(s.Times)), Values: make([]float64, len(s.Values))}
	copy(c.Times, s.Times)
	copy(c.Values, s.Values)
	return c
}

// scale converts delay units (generation intervals) into timestamp
// ticks. Using a coarse tick (1000 per interval) keeps fractional
// delays meaningful after the conversion to int64 timestamps.
const scale = 1000

// Generate builds an n-point series whose arrival order is induced by
// the delay distribution d. The generation timestamps are i*scale for
// i = 0..n-1; the value of point i is a smooth signal sampled at its
// generation time, so values remain physically tied to timestamps
// after sorting. Ties in arrival time are broken by generation order,
// which preserves the delay-only property (a point never jumps ahead
// of a later-generated point that arrived at the same instant).
func Generate(name string, n int, d delay.Distribution, seed int64) *Series {
	r := rand.New(rand.NewSource(seed))
	type point struct {
		gen     int64
		arrival float64
	}
	pts := make([]point, n)
	for i := range pts {
		tau := d.Sample(r)
		pts[i] = point{gen: int64(i) * scale, arrival: float64(i) + tau}
	}
	sort.SliceStable(pts, func(a, b int) bool { return pts[a].arrival < pts[b].arrival })
	s := &Series{Name: name, Times: make([]int64, n), Values: make([]float64, n)}
	for i, p := range pts {
		s.Times[i] = p.gen
		s.Values[i] = Signal(p.gen)
	}
	return s
}

// GenerateSegmented builds an n-point series whose delay distribution
// changes over time: the generation axis is split into len(segments)
// equal spans and points in span k draw their delay from segments[k].
// Unlike Generate's i.i.d. delays, this produces the *drifting*
// disorder regimes (deployments re-routed, networks degrading, clocks
// stepping) that a static sort configuration cannot track.
func GenerateSegmented(name string, n int, segments []delay.Distribution, seed int64) *Series {
	r := rand.New(rand.NewSource(seed))
	type point struct {
		gen     int64
		arrival float64
	}
	pts := make([]point, n)
	for i := range pts {
		seg := i * len(segments) / n
		if seg >= len(segments) {
			seg = len(segments) - 1
		}
		tau := segments[seg].Sample(r)
		pts[i] = point{gen: int64(i) * scale, arrival: float64(i) + tau}
	}
	sort.SliceStable(pts, func(a, b int) bool { return pts[a].arrival < pts[b].arrival })
	s := &Series{Name: name, Times: make([]int64, n), Values: make([]float64, n)}
	for i, p := range pts {
		s.Times[i] = p.gen
		s.Values[i] = Signal(p.gen)
	}
	return s
}

// Signal is the deterministic value signal used by all generated
// datasets: a blend of two sines plus a slow trend. Being a pure
// function of the timestamp, it lets tests verify that (time, value)
// pairs stay glued together through any amount of sorting.
func Signal(t int64) float64 {
	x := float64(t) / scale
	return 40*math.Sin(x/12.0) + 8*math.Sin(x/2.5) + x/500.0
}

// AbsNormal generates the paper's AbsNormal(μ,σ) synthetic dataset.
func AbsNormal(n int, mu, sigma float64, seed int64) *Series {
	d := delay.AbsNormal{Mu: mu, Sigma: sigma}
	return Generate(d.Name(), n, d, seed)
}

// LogNormal generates the paper's LogNormal(μ,σ) synthetic dataset.
// σ = 0 yields a fully ordered series (constant shift e^μ).
func LogNormal(n int, mu, sigma float64, seed int64) *Series {
	d := delay.LogNormal{Mu: mu, Sigma: sigma}
	return Generate(d.Name(), n, d, seed)
}

// Ordered generates an already-sorted series (the "ordered" σ=0 points
// in Figures 9 and 10).
func Ordered(n int, seed int64) *Series {
	return Generate("Ordered", n, delay.Constant{C: 0}, seed)
}

// CitiBike201808 simulates the citibike-201808 slice: heavy-tailed
// delays (truncated LogNormal) whose interval inversion ratio decays
// slowly and only reaches zero near block size 2^16, matching the
// CitiBike curves of Figure 8a.
func CitiBike201808(n int, seed int64) *Series {
	d := delay.Truncated{Inner: delay.LogNormal{Mu: 5.2, Sigma: 2.0}, Max: 60000}
	s := Generate("citibike-201808", n, d, seed)
	return s
}

// CitiBike201902 simulates the citibike-201902 slice: same family as
// 201808 but slightly less disordered, as in Figure 8a.
func CitiBike201902(n int, seed int64) *Series {
	d := delay.Truncated{Inner: delay.LogNormal{Mu: 4.6, Sigma: 1.9}, Max: 60000}
	s := Generate("citibike-201902", n, d, seed)
	return s
}

// SamsungD5 simulates the samsung-d5 sensor: the vast majority of
// points arrive in order and the few delayed ones are delayed by a
// bounded small amount, so the IIR hits zero by block size ~2^5
// (Figure 8a).
func SamsungD5(n int, seed int64) *Series {
	d := delay.Mixture{P: 0.97, A: delay.Constant{C: 0}, B: delay.DiscreteUniform{K: 24}}
	s := Generate("samsung-d5", n, d, seed)
	return s
}

// SamsungS10 simulates the samsung-s10 sensor: a little more disorder
// than d5 but with the same bounded-delay envelope.
func SamsungS10(n int, seed int64) *Series {
	d := delay.Mixture{P: 0.90, A: delay.Constant{C: 0}, B: delay.DiscreteUniform{K: 28}}
	s := Generate("samsung-s10", n, d, seed)
	return s
}

// DriftClockSkew is a drifting clock-skew scenario: a device fleet
// starts nearly synchronized, then one device's clock steps badly out
// and is later corrected. The right block size swings by two orders of
// magnitude between segments, so any single static L is wrong most of
// the run.
func DriftClockSkew(n int, seed int64) *Series {
	return GenerateSegmented("drift-clockskew", n, []delay.Distribution{
		delay.ClockSkew{P: 0.05, Skew: 4, Jitter: 0.5},
		delay.ClockSkew{P: 0.35, Skew: 600, Jitter: 4},
		delay.ClockSkew{P: 0.35, Skew: 600, Jitter: 4},
		delay.ClockSkew{P: 0.05, Skew: 4, Jitter: 0.5},
	}, seed)
}

// ParetoBursts alternates calm, nearly ordered traffic with
// heavy-tailed outage backlogs (truncated Pareto): the bursty segments
// need a large block size, the calm ones barely need sorting at all.
// The backlog floor Xm = 32 models whole outage windows replayed at
// once: every backlogged point lands tens to thousands of positions
// out of place, exactly the regime where a small pinned block size
// drowns in merge work.
func ParetoBursts(n int, seed int64) *Series {
	calm := delay.Mixture{P: 0.98, A: delay.Constant{C: 0}, B: delay.DiscreteUniform{K: 6}}
	burst := delay.Truncated{Inner: delay.Pareto{Xm: 32, Alpha: 0.9}, Max: 3000}
	return GenerateSegmented("pareto-bursts", n, []delay.Distribution{
		calm, burst, calm, burst, calm,
	}, seed)
}

// DriftMixture is a time-varying mixture: the fraction of delayed
// points and their delay envelope both grow over the run, as when an
// ingest path slowly saturates — ending fully saturated, where every
// point is delayed and ordering is effectively random within the
// backlog window. The saturated tail is the regime that punishes a
// small pinned block size hardest: nearly every block boundary
// overlaps nearly the whole sorted suffix.
func DriftMixture(n int, seed int64) *Series {
	return GenerateSegmented("drift-mixture", n, []delay.Distribution{
		delay.Mixture{P: 0.99, A: delay.Constant{C: 0}, B: delay.DiscreteUniform{K: 8}},
		delay.Mixture{P: 0.90, A: delay.Constant{C: 0}, B: delay.DiscreteUniform{K: 64}},
		delay.Mixture{P: 0.75, A: delay.Constant{C: 0}, B: delay.DiscreteUniform{K: 512}},
		delay.Mixture{P: 0.60, A: delay.Constant{C: 0}, B: delay.DiscreteUniform{K: 2048}},
		delay.DiscreteUniform{K: 4096},
	}, seed)
}

// ByName returns the named dataset generator used across the
// experiment drivers. Recognized names are the paper's dataset labels.
func ByName(name string, n int, seed int64) (*Series, bool) {
	switch name {
	case "citibike-201808":
		return CitiBike201808(n, seed), true
	case "citibike-201902":
		return CitiBike201902(n, seed), true
	case "samsung-d5":
		return SamsungD5(n, seed), true
	case "samsung-s10":
		return SamsungS10(n, seed), true
	case "ordered":
		return Ordered(n, seed), true
	case "drift-clockskew":
		return DriftClockSkew(n, seed), true
	case "pareto-bursts":
		return ParetoBursts(n, seed), true
	case "drift-mixture":
		return DriftMixture(n, seed), true
	}
	return nil, false
}

// DriftingNames lists the drifting delay scenarios used by the
// adaptive-sort benchmarks; none of them is i.i.d. over the run.
func DriftingNames() []string {
	return []string{"drift-clockskew", "pareto-bursts", "drift-mixture"}
}

// RealWorldNames lists the simulated real-world datasets in the order
// the paper plots them.
func RealWorldNames() []string {
	return []string{"citibike-201808", "citibike-201902", "samsung-d5", "samsung-s10"}
}
