package dataset

import (
	"math"
	"sort"
	"testing"

	"repro/internal/delay"
	"repro/internal/inversion"
)

func TestGenerateDeterministic(t *testing.T) {
	a := AbsNormal(1000, 1, 2, 42)
	b := AbsNormal(1000, 1, 2, 42)
	if len(a.Times) != len(b.Times) {
		t.Fatal("lengths differ")
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Values[i] != b.Values[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := AbsNormal(1000, 1, 2, 43)
	same := true
	for i := range a.Times {
		if a.Times[i] != c.Times[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestGeneratePermutationOfGenerationTimes(t *testing.T) {
	s := LogNormal(5000, 1, 2, 7)
	ts := make([]int64, len(s.Times))
	copy(ts, s.Times)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	for i, v := range ts {
		if v != int64(i)*scale {
			t.Fatalf("timestamps are not a permutation of i*scale: got %d at %d", v, i)
		}
	}
}

func TestValuesTiedToTimes(t *testing.T) {
	s := CitiBike201808(2000, 3)
	for i := range s.Times {
		if want := Signal(s.Times[i]); s.Values[i] != want {
			t.Fatalf("value at %d decoupled from its timestamp", i)
		}
	}
}

func TestOrderedIsSorted(t *testing.T) {
	s := Ordered(10000, 1)
	if !inversion.IsSorted(s.Times) {
		t.Fatal("Ordered dataset is not sorted")
	}
}

func TestConstantDelayIsSorted(t *testing.T) {
	// Any constant delay (including LogNormal σ=0) keeps the series
	// sorted: delay-only with equal delays is a pure shift.
	s := Generate("shift", 5000, delay.Constant{C: 17.3}, 9)
	if !inversion.IsSorted(s.Times) {
		t.Fatal("constant-shift series is not sorted")
	}
}

func TestDelayOnlyProperty(t *testing.T) {
	// Delay-only: in arrival order, the generation timestamp at
	// position i can lag the front (be delayed) but the maximum seen
	// so far can never exceed the generation time by more than the
	// max delay — equivalently every prefix of arrivals is a set
	// {0..k} minus some delayed stragglers. Check the precise
	// invariant: if a point with generation index g appears at
	// arrival position i, then every generation index < g whose delay
	// put it later is the only reason for disorder. We verify the
	// weaker but sharp structural claim used by the algorithm:
	// max prefix generation time grows and no point arrives before
	// ALL points generated >= maxDelay later.
	s := SamsungS10(20000, 5)
	maxSoFar := int64(-1)
	const maxDelayTicks = 29 * scale // K=28 mixture bound + 1 interval
	for i, tt := range s.Times {
		if tt > maxSoFar {
			maxSoFar = tt
		}
		if maxSoFar-tt > maxDelayTicks {
			t.Fatalf("point %d delayed beyond the distribution bound: max %d, t %d", i, maxSoFar, tt)
		}
	}
}

func TestSigmaIncreasesDisorder(t *testing.T) {
	// Figures 9/10: greater σ means more disorder. Check inversions
	// grow monotonically in σ for AbsNormal(1,σ).
	prev := int64(-1)
	for _, sigma := range []float64{0.5, 1, 2, 4} {
		s := AbsNormal(50000, 1, sigma, 11)
		inv := inversion.Count(s.Times)
		if inv <= prev {
			t.Fatalf("inversions did not grow with σ=%g: %d <= %d", sigma, inv, prev)
		}
		prev = inv
	}
}

func TestSimulatedRealWorldIIRShapes(t *testing.T) {
	// DESIGN.md §3: Samsung disorder must vanish by L≈2^5; CitiBike
	// disorder persists well beyond 2^8 but dies by 2^16.
	n := 200000
	sam := SamsungS10(n, 1)
	if r, _ := inversion.Ratio(sam.Times, 64); r != 0 {
		t.Fatalf("samsung-s10 IIR at L=64 should be 0, got %g", r)
	}
	if r, _ := inversion.Ratio(sam.Times, 1); r == 0 {
		t.Fatal("samsung-s10 should have some disorder at L=1")
	}
	cb := CitiBike201808(n, 1)
	if r, _ := inversion.Ratio(cb.Times, 256); r == 0 {
		t.Fatal("citibike-201808 IIR at L=256 should still be positive")
	}
	if r, _ := inversion.Ratio(cb.Times, 1<<17); r != 0 {
		t.Fatalf("citibike-201808 IIR at L=2^17 should be 0, got %g", r)
	}
}

func TestProposition2OnAbsNormal(t *testing.T) {
	// E[α_L] = P(Δτ > L) holds for distributions without closed
	// forms too: compare the generated series' IIR against the
	// Monte-Carlo Δτ tail.
	d := delay.AbsNormal{Mu: 1, Sigma: 2}
	s := Generate("absnormal-p2", 300000, d, 21)
	for _, L := range []int{1, 2, 4} {
		got, _ := inversion.Ratio(s.Times, L)
		want := delay.EmpiricalDeltaTauTail(d, float64(L), 400000, 22)
		if got < want*0.85-0.002 || got > want*1.15+0.002 {
			t.Errorf("L=%d: series IIR %g vs Δτ tail %g", L, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range append(RealWorldNames(), "ordered") {
		s, ok := ByName(name, 100, 1)
		if !ok || s.Len() != 100 {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope", 10, 1); ok {
		t.Fatal("ByName accepted an unknown dataset")
	}
}

func TestClone(t *testing.T) {
	s := AbsNormal(100, 1, 1, 2)
	c := s.Clone()
	c.Times[0] = -999
	c.Values[0] = math.Inf(1)
	if s.Times[0] == -999 || math.IsInf(s.Values[0], 1) {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestSignalDeterministic(t *testing.T) {
	if Signal(12345) != Signal(12345) {
		t.Fatal("Signal is not deterministic")
	}
}
