package core

// DefaultInitialBlockSize is L0 of Algorithm 1. The paper's parameter
// tuning (Section VI-B) finds the optimal block size is almost always
// greater than 4, so starting at 4 cannot skip past it while still
// avoiding the insertion-sort degeneration of tiny blocks.
const DefaultInitialBlockSize = 4

// DefaultThreshold is the empirical interval inversion ratio threshold
// Θ̃ = 0.04 fixed in Section VI-B: block doubling stops once the
// down-sampled IIR falls below it.
const DefaultThreshold = 0.04

// Options configures BackwardSort. The zero value selects the paper's
// defaults.
type Options struct {
	// InitialBlockSize is L0 (default DefaultInitialBlockSize).
	InitialBlockSize int
	// Threshold is Θ (default DefaultThreshold).
	Threshold float64
	// FixedBlockSize, when positive, skips the set-block-size search
	// and uses the given L directly. The paper's parameter-tuning
	// experiment (Figure 8b) drives this.
	FixedBlockSize int
	// SearchPhase anchors the block-size search's stride-L subsample
	// at index SearchPhase mod L instead of index 0. 0 reproduces the
	// paper's anchoring; the adaptive planner rotates it so repeated
	// estimates are unbiased on periodic timestamp patterns.
	SearchPhase int
	// BlockSort sorts one block in place; nil selects QuicksortRange
	// ("Quicksort is used in default and can be substituted",
	// Section III-B).
	BlockSort func(s Sortable, lo, hi int)
}

func (o Options) withDefaults() Options {
	if o.InitialBlockSize <= 0 {
		o.InitialBlockSize = DefaultInitialBlockSize
	}
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	if o.BlockSort == nil {
		o.BlockSort = QuicksortRange
	}
	return o
}

// Trace reports what one BackwardSort invocation did; the experiment
// harness uses it to study block-size selection and overlap lengths.
type Trace struct {
	// BlockSize is the L the sort ran with.
	BlockSize int
	// SearchIterations is how many while-loop iterations the
	// set-block-size phase took (P in Table I).
	SearchIterations int
	// Blocks is B = ceil(N/L).
	Blocks int
	// Merges counts block boundaries that actually required a merge.
	Merges int
	// OverlapTotal sums the suffix overlap lengths q across merges;
	// OverlapTotal/Merges estimates Q of Proposition 4.
	OverlapTotal int64
	// TailTotal sums the block tail lengths moved to scratch.
	TailTotal int64
	// MaxOverlap is the largest single merge overlap observed.
	MaxOverlap int
}

// BackwardSort sorts s by timestamp using Algorithm 1 of the paper:
// set block size, sort by blocks, backward merge. It returns a Trace
// describing the run.
//
// Complexity (Section IV): O(n/L0) to set the block size
// (Proposition 3), O(n log L) to sort blocks, and O(n·Q/L) to merge,
// where Q is the expected overlap between adjacent sorted blocks
// (E[Q] ≤ E[Δτ | Δτ ≥ 0], Proposition 4). With L=1 it degenerates to
// straight insertion sort, with L=n to Quicksort (Proposition 5).
func BackwardSort(s Sortable, opts Options) Trace {
	opts = opts.withDefaults()
	n := s.Len()
	var tr Trace
	if n < 2 {
		tr.BlockSize = n
		return tr
	}

	// Phase 1: set block size (Algorithm 1 lines 1-8).
	L := opts.FixedBlockSize
	if L <= 0 {
		L, tr.SearchIterations = setBlockSize(s, opts.InitialBlockSize, opts.Threshold, opts.SearchPhase)
	}
	if L > n {
		L = n
	}
	if L < 1 {
		L = 1
	}
	tr.BlockSize = L

	// Phase 2: sort by blocks (lines 9-12). The final partial block
	// is sorted as its own (shorter) block.
	tr.Blocks = (n + L - 1) / L
	for lo := 0; lo < n; lo += L {
		hi := lo + L
		if hi > n {
			hi = n
		}
		opts.BlockSort(s, lo, hi)
	}

	// Phase 3: backward merge (lines 13-16).
	backwardMerge(s, n, L, &tr)
	return tr
}

// setBlockSize runs the shared block-size search (search.go) over the
// Sortable's timestamp accessor.
func setBlockSize(s Sortable, l0 int, theta float64, phase int) (L, iterations int) {
	return searchBlockSize(s.Len(), s.Time, l0, DefaultInitialBlockSize, theta, phase)
}

// empiricalIIR estimates α̃_L from the phase-0 stride-L subsample
// t_0, t_L, t_2L, … (Example 5 / Proposition 2).
func empiricalIIR(s Sortable, L int) float64 {
	return empiricalIIRAt(s.Len(), s.Time, L, 0)
}

// backwardMerge walks block boundaries from the last one backwards.
// Invariant: the suffix [blockEnd, n) is fully sorted. For each block
// the overlap with the suffix is located by binary search and only the
// overlapping records move: the block tail is parked in scratch and
// merged with the suffix head in place. Searching the whole sorted
// suffix subsumes findOverlappedBlock (line 14): a tail overlapping k
// blocks ahead simply yields a larger q.
func backwardMerge(s Sortable, n, L int, tr *Trace) {
	if L >= n {
		return
	}
	// Last block boundary: start of the final (possibly partial)
	// block, then walk backwards in steps of L.
	lastStart := ((n - 1) / L) * L
	var tailTimes []int64 // reused across merges
	for blockEnd := lastStart; blockEnd >= L; blockEnd -= L {
		blockMax := s.Time(blockEnd - 1)
		suffixHead := s.Time(blockEnd)
		if blockMax <= suffixHead {
			continue // no overlap: already in order across the boundary
		}
		// q: suffix records strictly smaller than the block max must
		// participate in the merge.
		q := lowerBoundSuffix(s, blockEnd, n, blockMax)
		// a: block records with time <= suffixHead stay in place;
		// the tail [a, blockEnd) merges.
		a := upperBoundBlock(s, blockEnd-L, blockEnd, suffixHead)
		r := blockEnd - a
		// Geometric growth: a run of ever-larger overlaps costs O(log)
		// reallocations, where exact-fit sizing would pay one per merge.
		tailTimes = growInt64(tailTimes, r)
		mergeOverlap(s, a, blockEnd, q, tailTimes)
		tr.Merges++
		tr.OverlapTotal += int64(q)
		tr.TailTotal += int64(r)
		if q > tr.MaxOverlap {
			tr.MaxOverlap = q
		}
	}
}

// lowerBoundSuffix returns the count of records in the sorted suffix
// [start, n) with time strictly less than key.
func lowerBoundSuffix(s Sortable, start, n int, key int64) int {
	lo, hi := start, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Time(mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - start
}

// upperBoundBlock returns the first index in the sorted block
// [lo, hi) whose time is strictly greater than key.
func upperBoundBlock(s Sortable, lo, hi int, key int64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Time(mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mergeOverlap merges the sorted block tail [a, blockEnd) with the
// sorted suffix head [blockEnd, blockEnd+q) in place, buffering
// whichever side is smaller — the paper's backward merge parks only
// the overlapping points in extra space (Section III-B), so when a
// single delayed record overlaps a long tail the merge costs ~tail+2
// moves, not 2·tail. Every record left of a and right of blockEnd+q is
// already in final position.
func mergeOverlap(s Sortable, a, blockEnd, q int, keys []int64) {
	r := blockEnd - a
	if r == 0 || q == 0 {
		return
	}
	if r <= q {
		mergeOverlapLo(s, a, blockEnd, q, keys[:r])
	} else {
		mergeOverlapHi(s, a, blockEnd, q, keys[:q])
	}
}

// mergeOverlapLo buffers the block tail (the smaller side) and merges
// forward.
func mergeOverlapLo(s Sortable, a, blockEnd, q int, tailTimes []int64) {
	r := blockEnd - a
	s.EnsureScratch(r)
	for i := 0; i < r; i++ {
		tailTimes[i] = s.Time(a + i)
		s.Save(a+i, i)
	}
	dst := a
	i, j := 0, blockEnd // i over scratch slots, j over suffix records
	end := blockEnd + q
	for i < r && j < end {
		if tailTimes[i] <= s.Time(j) {
			s.Restore(i, dst)
			i++
		} else {
			s.Move(j, dst)
			j++
		}
		dst++
	}
	for i < r {
		s.Restore(i, dst)
		i++
		dst++
	}
	// Remaining suffix records [j, end) are already in place: once the
	// scratch drains, dst == j.
}

// mergeOverlapHi buffers the suffix overlap (the smaller side) and
// merges backward.
func mergeOverlapHi(s Sortable, a, blockEnd, q int, overlapTimes []int64) {
	r := blockEnd - a
	s.EnsureScratch(q)
	for i := 0; i < q; i++ {
		overlapTimes[i] = s.Time(blockEnd + i)
		s.Save(blockEnd+i, i)
	}
	dst := blockEnd + q - 1
	i, j := q-1, blockEnd-1 // i over scratch slots, j over tail records
	lo := blockEnd - r
	for i >= 0 && j >= lo {
		if overlapTimes[i] >= s.Time(j) {
			s.Restore(i, dst)
			i--
		} else {
			s.Move(j, dst)
			j--
		}
		dst--
	}
	for i >= 0 {
		s.Restore(i, dst)
		i--
		dst--
	}
	// Remaining tail records [lo, j] are already in place: once the
	// scratch drains, dst == j.
}
