package core

// This file is the single implementation of Algorithm 1's
// set-block-size phase (lines 1-8). The interface path (backward.go)
// and the flat kernel (flat.go) used to carry parallel copies of the
// doubling search and the stride-L estimator; both now delegate here,
// over a timestamp accessor, so the two paths cannot drift apart.

// searchBlockSize performs the iterative block-size search: starting
// at l0 it estimates the empirical interval inversion ratio α̃_L by
// down-sampling (Example 5) and doubles L while α̃_L ≥ Θ (Equation
// 15). The scan touches n/L points per iteration, O(n/l0) in total
// (Proposition 3). The subsample is anchored at index phase mod L;
// phase 0 reproduces the paper's anchoring exactly, and a rotating
// phase (what the adaptive planner passes) averages out the bias a
// fixed anchor has on timestamp patterns whose period divides L.
//
// When l0 sits above floor (a seeded search) and the very first probe
// already clears Θ, the seed overshot: the from-floor search might
// have stopped at a smaller L, and accepting the seed as-is would
// silently inflate every block sort. The search then reruns the
// ascent from floor, capped at the seed. Restarting — rather than
// probing downward from the seed — matters because α̃_L need not be
// monotone in L (clock-skew patterns dip below Θ and rise again): a
// downward probe stops at the first *failure* from above, the paper's
// search at the first *clearance* from below, and on non-monotone
// data those differ. The restart makes a seeded search return exactly
// the block size the default search finds, at the cost of one wasted
// probe at the seed.
func searchBlockSize(n int, at func(int) int64, l0, floor int, theta float64, phase int) (L, iterations int) {
	if floor <= 0 || floor > l0 {
		floor = l0
	}
	L = l0
	for L <= n {
		iterations++
		if empiricalIIRAt(n, at, L, phase) < theta {
			break
		}
		L *= 2
	}
	if L > n {
		return n, iterations
	}
	if L == l0 && l0 > floor {
		// The seed itself cleared Θ: rerun from the floor. Every probe
		// below the seed is untested, and the seed is a known-clearing
		// upper bound if they all fail.
		L = floor
		for L < l0 {
			iterations++
			if empiricalIIRAt(n, at, L, phase) < theta {
				break
			}
			L *= 2
		}
	}
	return L, iterations
}

// empiricalIIRAt estimates α̃_L from the stride-L subsample
// t_p, t_{p+L}, t_{p+2L}, … (p = phase mod L): the fraction of
// consecutive sampled pairs that are inverted. Each sampled pair is L
// apart, so E[α̃_L] = E[α_L] = F̄_Δτ(L) (Proposition 2) regardless of
// the anchor.
func empiricalIIRAt(n int, at func(int) int64, L, phase int) float64 {
	if L <= 0 || L >= n {
		return 0
	}
	p := phase % L
	if p < 0 {
		p += L
	}
	pairs, inverted := 0, 0
	prev := at(p)
	for i := p + L; i < n; i += L {
		t := at(i)
		pairs++
		if prev > t {
			inverted++
		}
		prev = t
	}
	if pairs == 0 {
		return 0
	}
	return float64(inverted) / float64(pairs)
}
