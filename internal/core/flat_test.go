package core

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// oracleSort returns the times stably sorted and, per timestamp, the
// sorted multiset of original indices carrying it — the ground truth
// any correct (not necessarily stable) sort must reproduce.
func oracleSort(times []int64) []int64 {
	out := append([]int64(nil), times...)
	sort.SliceStable(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAgainstOracle verifies sorted (times, values-as-original-index)
// output: timestamps match the stable-sorted oracle exactly, and every
// run of equal timestamps carries exactly the original indices that
// had that timestamp (records never tear apart or duplicate).
func checkAgainstOracle(t *testing.T, label string, orig, gotT []int64, gotV []int) {
	t.Helper()
	want := oracleSort(orig)
	if len(gotT) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(gotT), len(want))
	}
	for i := range want {
		if gotT[i] != want[i] {
			t.Fatalf("%s: time[%d] = %d, want %d", label, i, gotT[i], want[i])
		}
	}
	seen := make([]bool, len(orig))
	for i, idx := range gotV {
		if idx < 0 || idx >= len(orig) || seen[idx] {
			t.Fatalf("%s: value at %d is not a permutation (index %d)", label, i, idx)
		}
		seen[idx] = true
		if orig[idx] != gotT[i] {
			t.Fatalf("%s: record %d tore apart: carries time %d, original %d", label, idx, gotT[i], orig[idx])
		}
	}
}

// runBothPaths sorts orig through the interface path and the flat path
// (at the given parallelism) with identical options, checks both
// against the oracle, and asserts their Traces agree — the two paths
// run the same algorithm, so every trace counter must match.
func runBothPaths(t *testing.T, label string, orig []int64, fixedL, parallelism int) {
	t.Helper()

	p := makePairs(orig)
	trIface := BackwardSort(p, Options{FixedBlockSize: fixedL})
	checkAgainstOracle(t, label+"/interface", orig, p.Times, p.Values)

	ft := append([]int64(nil), orig...)
	fv := make([]int, len(orig))
	for i := range fv {
		fv[i] = i
	}
	trFlat := SortFlat(ft, fv, FlatOptions{FixedBlockSize: fixedL, Parallelism: parallelism})
	checkAgainstOracle(t, label+"/flat", orig, ft, fv)

	if trIface != trFlat {
		t.Fatalf("%s: trace mismatch: interface %+v, flat %+v", label, trIface, trFlat)
	}
}

// adversarialInputs are the workloads that violate the delay-only
// assumption in every way the merge logic could care about.
func adversarialInputs() map[string][]int64 {
	r := rand.New(rand.NewSource(42))
	rnd := make([]int64, 3000)
	for i := range rnd {
		rnd[i] = int64(r.Intn(100)) - 50
	}
	saw := make([]int64, 2048)
	for i := range saw {
		saw[i] = int64(i % 17)
	}
	rev := make([]int64, 1500)
	for i := range rev {
		rev[i] = int64(len(rev) - i)
	}
	dup := make([]int64, 1000)
	for i := range dup {
		dup[i] = int64(r.Intn(3))
	}
	ext := []int64{9223372036854775807, -9223372036854775808, 0, 1, -1, 9223372036854775807, -9223372036854775808}
	return map[string][]int64{
		"random":    rnd,
		"sawtooth":  saw,
		"reverse":   rev,
		"dupheavy":  dup,
		"extremes":  ext,
		"empty":     {},
		"single":    {7},
		"twoswap":   {2, 1},
		"allequal":  make([]int64, 257),
		"presorted": oracleSort(rnd),
	}
}

func TestSortFlatMatchesInterfaceDelayOnly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 31, 100, 1000, 20000} {
		for _, mean := range []float64{0, 0.5, 5, 50, 500} {
			orig := delayedTimes(n, mean, int64(n)*13+int64(mean)+1)
			for _, par := range []int{1, 4} {
				runBothPaths(t, "delay", orig, 0, par)
			}
		}
	}
}

func TestSortFlatMatchesInterfaceAdversarial(t *testing.T) {
	for name, orig := range adversarialInputs() {
		for _, par := range []int{1, 3} {
			runBothPaths(t, name, orig, 0, par)
		}
	}
}

func TestSortFlatEveryFixedBlockSize(t *testing.T) {
	orig := delayedTimes(4000, 12, 77)
	sizes := []int{1, 2, 3, 4, 5, 7, 12, 13, 16, 33, 100, 512, 1024, 3999, 4000, 9001}
	for _, L := range sizes {
		for _, par := range []int{1, 2, 8} {
			runBothPaths(t, "fixedL", orig, L, par)
		}
	}
	// And the adversarial set across a few block sizes.
	for name, adv := range adversarialInputs() {
		for _, L := range []int{1, 3, 16, 1024} {
			runBothPaths(t, name+"/fixedL", adv, L, 2)
		}
	}
}

func TestSortFlatQuick(t *testing.T) {
	f := func(times []int64, parSeed uint8) bool {
		orig := append([]int64(nil), times...)
		ft := append([]int64(nil), times...)
		fv := make([]int, len(times))
		for i := range fv {
			fv[i] = i
		}
		SortFlat(ft, fv, FlatOptions{Parallelism: int(parSeed%5) + 1})
		want := oracleSort(orig)
		for i := range want {
			if ft[i] != want[i] {
				return false
			}
		}
		for i, idx := range fv {
			if orig[idx] != ft[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSortFlat feeds arbitrary byte strings as timestamp arrays
// through both paths and the oracle. `go test` runs the seed corpus;
// `go test -fuzz=FuzzSortFlat ./internal/core` explores further.
func FuzzSortFlat(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(4))
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<63), uint8(0))
	seed := make([]byte, 0, 2048)
	for i := 255; i >= 0; i-- {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(i/3))
	}
	f.Add(seed, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, par uint8) {
		n := len(data) / 8
		orig := make([]int64, n)
		for i := 0; i < n; i++ {
			orig[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}
		p := makePairs(orig)
		BackwardSort(p, Options{})
		ft := append([]int64(nil), orig...)
		fv := make([]int, n)
		for i := range fv {
			fv[i] = i
		}
		SortFlat(ft, fv, FlatOptions{Parallelism: int(par % 9)})
		want := oracleSort(orig)
		for i := range want {
			if ft[i] != want[i] || p.Times[i] != want[i] {
				t.Fatalf("paths diverge from oracle at %d: flat %d, interface %d, want %d",
					i, ft[i], p.Times[i], want[i])
			}
			if orig[fv[i]] != ft[i] {
				t.Fatalf("flat record %d tore apart", i)
			}
		}
	})
}

func TestSortFlatLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SortFlat([]int64{1, 2}, []int{1}, FlatOptions{})
}

func TestFlatScratchPoolRoundTrip(t *testing.T) {
	// A scratch put back must come out again for the same value type,
	// and the pool must never hand a wrong-typed scratch to a caller.
	s := getFlatScratch[string]()
	s.v = append(s.v[:0], "pinned")
	putFlatScratch(s)
	s2 := getFlatScratch[string]()
	for _, v := range s2.v[:cap(s2.v)] {
		if v != "" {
			t.Fatal("pooled scratch retained value references")
		}
	}
	putFlatScratch(s2)
	// A float64 caller either gets a fresh scratch or a float64 one —
	// getFlatScratch's type assertion guarantees it; just exercise it.
	f := getFlatScratch[float64]()
	putFlatScratch(f)
}

func TestGrowGeometric(t *testing.T) {
	var s []int64
	allocs := 0
	for n := 1; n <= 1<<14; n++ {
		before := cap(s)
		s = growInt64(s, n)
		if len(s) != n {
			t.Fatalf("growInt64(%d): len %d", n, len(s))
		}
		if cap(s) != before {
			allocs++
		}
	}
	// Doubling growth: ~log2(16384) reallocations, not 16384.
	if allocs > 16 {
		t.Fatalf("growInt64 reallocated %d times over monotone growth; want O(log n)", allocs)
	}
}

// TestEnsureScratchGeometric pins the satellite fix: ever-growing
// scratch requests must cost O(log) allocations, not one each.
func TestEnsureScratchGeometric(t *testing.T) {
	const steps = 4096
	allocs := testing.AllocsPerRun(3, func() {
		p := NewPairs([]int64{}, []int{})
		for n := 1; n <= steps; n++ {
			p.EnsureScratch(n)
		}
	})
	// 2 slices × ~log2(4096) reallocations + the Pairs itself; the old
	// exact-fit sizing cost ~2×4096.
	if allocs > 40 {
		t.Fatalf("EnsureScratch allocated %v times for %d monotone requests; growth is not geometric", allocs, steps)
	}
}
