package core

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestPairsBasics(t *testing.T) {
	p := NewPairs([]int64{3, 1, 2}, []string{"c", "a", "b"})
	if p.Len() != 3 || p.Time(0) != 3 {
		t.Fatal("Len/Time wrong")
	}
	p.Swap(0, 1)
	if p.Times[0] != 1 || p.Values[0] != "a" || p.Times[1] != 3 || p.Values[1] != "c" {
		t.Fatal("Swap tore records apart")
	}
	p.Move(2, 0)
	if p.Times[0] != 2 || p.Values[0] != "b" {
		t.Fatal("Move wrong")
	}
	p.EnsureScratch(2)
	p.Save(1, 0)
	if p.ScratchTime(0) != 3 {
		t.Fatal("ScratchTime wrong")
	}
	p.Restore(0, 2)
	if p.Times[2] != 3 || p.Values[2] != "c" {
		t.Fatal("Restore wrong")
	}
}

func TestNewPairsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPairs length mismatch should panic")
		}
	}()
	NewPairs([]int64{1}, []int{})
}

func TestEnsureScratchGrows(t *testing.T) {
	p := NewPairs(make([]int64, 10), make([]int, 10))
	p.EnsureScratch(4)
	p.Save(0, 3)
	p.EnsureScratch(2) // must not shrink
	p.Save(0, 3)
	p.EnsureScratch(100)
	p.Save(0, 99)
}

func TestCounterCounts(t *testing.T) {
	p := NewPairs([]int64{2, 1}, []int{0, 1})
	c := NewCounter(p)
	c.Time(0)
	c.Swap(0, 1)
	c.EnsureScratch(5)
	c.Save(0, 0)
	c.Restore(0, 1)
	c.Move(0, 1)
	if c.TimeReads != 1 || c.Swaps != 1 || c.Saves != 1 || c.Restores != 1 || c.Moves != 1 {
		t.Fatalf("counter wrong: %+v", c)
	}
	if c.MaxScratch != 5 {
		t.Fatalf("MaxScratch = %d, want 5", c.MaxScratch)
	}
	if got := c.TotalMoves(); got != 3+1+1+1 {
		t.Fatalf("TotalMoves = %d, want 6", got)
	}
	if c.ScratchTime(0) != p.ScratchTime(0) {
		t.Fatal("Counter.ScratchTime does not delegate")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(NewPairs(nil, []int{})) {
		t.Fatal("empty not sorted?")
	}
	if !IsSorted(NewPairs([]int64{1, 1, 2}, []int{0, 1, 2})) {
		t.Fatal("ties should be sorted")
	}
	if IsSorted(NewPairs([]int64{2, 1}, []int{0, 1})) {
		t.Fatal("false positive")
	}
}

func TestQuicksortQuick(t *testing.T) {
	f := func(times []int64) bool {
		orig := make([]int64, len(times))
		copy(orig, times)
		p := makePairs(times)
		Quicksort(p)
		if !IsSorted(p) {
			return false
		}
		sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
		for i, v := range p.Times {
			if v != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionSortQuick(t *testing.T) {
	f := func(times []int64) bool {
		if len(times) > 500 {
			times = times[:500]
		}
		orig := make([]int64, len(times))
		copy(orig, times)
		p := makePairs(times)
		InsertionSort(p)
		if !IsSorted(p) {
			return false
		}
		sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
		for i, v := range p.Times {
			if v != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionSortAdaptive(t *testing.T) {
	// On sorted input, insertion sort performs zero record movement.
	times := make([]int64, 1000)
	for i := range times {
		times[i] = int64(i)
	}
	c := NewCounter(makePairs(times))
	InsertionSort(c)
	if c.Swaps+c.Moves+c.Saves+c.Restores != 0 {
		t.Fatalf("insertion sort moved records on sorted input: %+v", c)
	}
}

func TestQuicksortRangeSubrange(t *testing.T) {
	times := []int64{9, 8, 5, 4, 3, 2, 1, 0}
	p := makePairs(times)
	QuicksortRange(p, 2, 6) // sort only [5,4,3,2]
	want := []int64{9, 8, 2, 3, 4, 5, 1, 0}
	for i, v := range p.Times {
		if v != want[i] {
			t.Fatalf("subrange sort: got %v, want %v", p.Times, want)
		}
	}
}

func TestQuicksortLargeAdversarial(t *testing.T) {
	// Organ-pipe and constant inputs historically break naive
	// quicksorts (stack depth / quadratic partitions).
	n := 100000
	organ := make([]int64, n)
	for i := range organ {
		if i < n/2 {
			organ[i] = int64(i)
		} else {
			organ[i] = int64(n - i)
		}
	}
	p := makePairs(organ)
	Quicksort(p)
	if !IsSorted(p) {
		t.Fatal("organ pipe unsorted")
	}
	flat := make([]int64, n) // all zero
	p2 := makePairs(flat)
	Quicksort(p2)
	if !IsSorted(p2) {
		t.Fatal("constant input unsorted")
	}
}
