package core

import (
	"testing"
)

func TestTraceAccountsBlocksAndMerges(t *testing.T) {
	// 10 blocks of 100; delay-only input with small delays: merges
	// can't exceed boundaries, overlap totals are consistent.
	orig := delayedTimes(1000, 3, 13)
	p := makePairs(orig)
	tr := BackwardSort(p, Options{FixedBlockSize: 100})
	if tr.Blocks != 10 {
		t.Fatalf("blocks = %d", tr.Blocks)
	}
	if tr.Merges > tr.Blocks-1 {
		t.Fatalf("merges %d exceed boundaries %d", tr.Merges, tr.Blocks-1)
	}
	if tr.Merges > 0 && tr.OverlapTotal <= 0 {
		t.Fatal("merges recorded but no overlap")
	}
	if int64(tr.MaxOverlap) > tr.OverlapTotal {
		t.Fatal("max overlap exceeds total")
	}
	if tr.TailTotal < 0 || (tr.Merges > 0 && tr.TailTotal == 0) {
		t.Fatalf("tail accounting wrong: %+v", tr)
	}
}

func TestTracePartialLastBlock(t *testing.T) {
	// n not divisible by L: the partial block must be counted and
	// sorted correctly.
	orig := delayedTimes(1037, 5, 3)
	p := makePairs(orig)
	tr := BackwardSort(p, Options{FixedBlockSize: 64})
	if tr.Blocks != (1037+63)/64 {
		t.Fatalf("blocks = %d", tr.Blocks)
	}
	checkSortedPermutation(t, p, orig)
}

func TestBackwardSortTinyInputs(t *testing.T) {
	for n := 0; n <= 3; n++ {
		times := make([]int64, n)
		for i := range times {
			times[i] = int64(n - i)
		}
		p := makePairs(times)
		tr := BackwardSort(p, Options{})
		if !IsSorted(p) {
			t.Fatalf("n=%d unsorted", n)
		}
		if n < 2 && tr.Merges != 0 {
			t.Fatalf("n=%d: phantom merges", n)
		}
	}
}

func TestCounterTotalMovesSwapWeight(t *testing.T) {
	// Heapsort-style swap-only algorithms must be charged 3 moves per
	// swap so move counts are comparable with shift-based ones.
	p := makePairs([]int64{3, 2, 1})
	c := NewCounter(p)
	c.Swap(0, 2)
	if c.TotalMoves() != 3 {
		t.Fatalf("TotalMoves after one swap = %d", c.TotalMoves())
	}
}

func TestBackwardSortRespectsTiesAcrossBlocks(t *testing.T) {
	// Equal timestamps spanning a block boundary must all survive.
	times := []int64{1, 2, 3, 4, 5, 5, 5, 5, 3, 3, 9, 10}
	orig := append([]int64(nil), times...)
	p := makePairs(times)
	BackwardSort(p, Options{FixedBlockSize: 4})
	checkSortedPermutation(t, p, orig)
}
