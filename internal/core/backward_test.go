package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// makePairs builds a Pairs over the given times with the original
// index as the value, so tests can verify records never tear apart.
func makePairs(times []int64) *Pairs[int] {
	ts := make([]int64, len(times))
	copy(ts, times)
	vals := make([]int, len(times))
	for i := range vals {
		vals[i] = i
	}
	return NewPairs(ts, vals)
}

// checkSortedPermutation verifies p is sorted by time and is a
// permutation of the original (time, index) records.
func checkSortedPermutation(t *testing.T, p *Pairs[int], orig []int64) {
	t.Helper()
	if !IsSorted(p) {
		t.Fatal("output is not sorted")
	}
	if len(p.Times) != len(orig) {
		t.Fatalf("length changed: %d -> %d", len(orig), len(p.Times))
	}
	seen := make([]bool, len(orig))
	for i := range p.Times {
		idx := p.Values[i]
		if idx < 0 || idx >= len(orig) {
			t.Fatalf("value %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("record %d duplicated", idx)
		}
		seen[idx] = true
		if p.Times[i] != orig[idx] {
			t.Fatalf("record %d tore apart: time %d, original %d", idx, p.Times[i], orig[idx])
		}
	}
}

// delayedTimes generates a delay-only permutation: generation times
// 0..n-1 each delayed by an exponential-ish amount, observed in
// arrival order.
func delayedTimes(n int, meanDelay float64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	type p struct {
		gen     int64
		arrival float64
	}
	ps := make([]p, n)
	for i := range ps {
		ps[i] = p{int64(i), float64(i) + r.ExpFloat64()*meanDelay}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].arrival < ps[b].arrival })
	out := make([]int64, n)
	for i := range ps {
		out[i] = ps[i].gen
	}
	return out
}

func TestBackwardSortDelayOnlyInputs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 16, 100, 1000, 10000} {
		for _, mean := range []float64{0, 0.5, 3, 20, 200} {
			orig := delayedTimes(n, mean, int64(n)*31+int64(mean*7)+1)
			p := makePairs(orig)
			tr := BackwardSort(p, Options{})
			checkSortedPermutation(t, p, orig)
			if n >= 2 && (tr.BlockSize < 1 || tr.BlockSize > n) {
				t.Fatalf("n=%d mean=%g: bad block size %d", n, mean, tr.BlockSize)
			}
		}
	}
}

func TestBackwardSortArbitraryInputsQuick(t *testing.T) {
	// Even though the algorithm is designed for delay-only data, it
	// must sort *any* input correctly.
	f := func(times []int64) bool {
		orig := make([]int64, len(times))
		copy(orig, times)
		p := makePairs(times)
		BackwardSort(p, Options{})
		if !IsSorted(p) {
			return false
		}
		got := make([]int64, len(p.Times))
		copy(got, p.Times)
		sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
		for i := range got {
			if got[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardSortFixedBlockSizes(t *testing.T) {
	orig := delayedTimes(5000, 10, 99)
	for _, L := range []int{1, 2, 3, 4, 5, 7, 16, 33, 100, 1024, 5000, 9999} {
		p := makePairs(orig)
		tr := BackwardSort(p, Options{FixedBlockSize: L})
		checkSortedPermutation(t, p, orig)
		wantL := L
		if wantL > 5000 {
			wantL = 5000
		}
		if tr.BlockSize != wantL {
			t.Fatalf("L=%d: trace block size %d", L, tr.BlockSize)
		}
	}
}

func TestBackwardSortDegenerateEndpoints(t *testing.T) {
	// Proposition 5 / Figure 6: L=1 behaves like insertion sort
	// (every block is one record, everything happens in merges); L=N
	// is exactly one Quicksort call with no merges.
	orig := delayedTimes(2000, 5, 7)

	p1 := makePairs(orig)
	tr1 := BackwardSort(p1, Options{FixedBlockSize: 1})
	checkSortedPermutation(t, p1, orig)
	if tr1.Blocks != 2000 {
		t.Fatalf("L=1: blocks = %d, want 2000", tr1.Blocks)
	}

	pn := makePairs(orig)
	trn := BackwardSort(pn, Options{FixedBlockSize: 2000})
	checkSortedPermutation(t, pn, orig)
	if trn.Blocks != 1 || trn.Merges != 0 {
		t.Fatalf("L=N: blocks=%d merges=%d, want 1 and 0", trn.Blocks, trn.Merges)
	}
}

func TestBackwardSortAlreadySorted(t *testing.T) {
	n := 10000
	times := make([]int64, n)
	for i := range times {
		times[i] = int64(i)
	}
	p := makePairs(times)
	c := NewCounter(p)
	tr := BackwardSort(c, Options{})
	if !IsSorted(p) {
		t.Fatal("sorted input came out unsorted")
	}
	if tr.SearchIterations != 1 {
		t.Fatalf("sorted input should settle block size in 1 iteration, got %d", tr.SearchIterations)
	}
	if tr.BlockSize != DefaultInitialBlockSize {
		t.Fatalf("sorted input should keep L0, got %d", tr.BlockSize)
	}
	if tr.Merges != 0 {
		t.Fatalf("sorted input needed %d merges", tr.Merges)
	}
	if c.Saves+c.Moves+c.Restores != 0 {
		t.Fatalf("sorted input moved records: %+v", c)
	}
}

func TestBackwardSortReverseSorted(t *testing.T) {
	// Reverse order is the pathological anti-delay-only input; the
	// search should escalate L to n and the sort degenerate to
	// Quicksort (Proposition 6's high-disorder branch).
	n := 4096
	times := make([]int64, n)
	for i := range times {
		times[i] = int64(n - i)
	}
	p := makePairs(times)
	tr := BackwardSort(p, Options{})
	if !IsSorted(p) {
		t.Fatal("reverse input came out unsorted")
	}
	if tr.BlockSize != n {
		t.Fatalf("reverse input should escalate to L=n, got L=%d", tr.BlockSize)
	}
}

func TestBackwardSortDuplicateTimestamps(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	times := make([]int64, 5000)
	for i := range times {
		times[i] = int64(r.Intn(50)) // heavy duplication
	}
	orig := make([]int64, len(times))
	copy(orig, times)
	p := makePairs(times)
	BackwardSort(p, Options{})
	checkSortedPermutation(t, p, orig)
}

func TestBackwardSortBlockSizeTracksDisorder(t *testing.T) {
	// More disorder (larger mean delay) must never shrink the chosen
	// block size on average; check endpoints.
	small := makePairs(delayedTimes(100000, 1, 5))
	trSmall := BackwardSort(small, Options{})
	big := makePairs(delayedTimes(100000, 500, 5))
	trBig := BackwardSort(big, Options{})
	if trBig.BlockSize <= trSmall.BlockSize {
		t.Fatalf("block size did not grow with disorder: %d (mean 1) vs %d (mean 500)",
			trSmall.BlockSize, trBig.BlockSize)
	}
}

func TestBackwardSortOverlapBound(t *testing.T) {
	// Proposition 4: mean merge overlap is bounded by
	// E(Δτ | Δτ ≥ 0). With exponential delays of mean m,
	// E(Δτ | Δτ ≥ 0) = m. Allow generous slack: the bound is on the
	// expectation and our estimate divides by boundaries merged.
	mean := 8.0
	orig := delayedTimes(200000, mean, 17)
	p := makePairs(orig)
	tr := BackwardSort(p, Options{})
	if tr.Merges == 0 {
		t.Fatal("expected merges on disordered input")
	}
	avg := float64(tr.OverlapTotal) / float64(tr.Merges)
	if avg > 4*mean {
		t.Fatalf("average overlap %g far exceeds the E(Δτ|Δτ≥0)=%g bound regime", avg, mean)
	}
}

func TestProposition3SearchIterationBound(t *testing.T) {
	// Proposition 3: the set-block-size loop runs at most
	// log2(n/L0)+1 times, for any input.
	for _, n := range []int{16, 1000, 100000} {
		for _, mean := range []float64{0, 2, 50, 1e6} {
			orig := delayedTimes(n, mean, int64(n)+int64(mean))
			p := makePairs(orig)
			tr := BackwardSort(p, Options{})
			bound := 1
			for l := DefaultInitialBlockSize; l <= n; l *= 2 {
				bound++
			}
			if tr.SearchIterations > bound {
				t.Fatalf("n=%d mean=%g: %d iterations exceeds log bound %d", n, mean, tr.SearchIterations, bound)
			}
		}
	}
}

func TestSetBlockSizeThresholdMonotonic(t *testing.T) {
	// A stricter (smaller) Θ can only grow the chosen block size.
	orig := delayedTimes(100000, 10, 3)
	var prev int
	for i, theta := range []float64{0.5, 0.04, 0.001} {
		p := makePairs(orig)
		tr := BackwardSort(p, Options{Threshold: theta})
		if i > 0 && tr.BlockSize < prev {
			t.Fatalf("Θ=%g produced smaller L (%d) than looser threshold (%d)", theta, tr.BlockSize, prev)
		}
		prev = tr.BlockSize
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.InitialBlockSize != DefaultInitialBlockSize || o.Threshold != DefaultThreshold || o.BlockSort == nil {
		t.Fatalf("defaults not applied: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{InitialBlockSize: 8, Threshold: 0.1}.withDefaults()
	if o2.InitialBlockSize != 8 || o2.Threshold != 0.1 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestCustomBlockSort(t *testing.T) {
	orig := delayedTimes(5000, 5, 21)
	p := makePairs(orig)
	calls := 0
	BackwardSort(p, Options{BlockSort: func(s Sortable, lo, hi int) {
		calls++
		InsertionSortRange(s, lo, hi)
	}})
	checkSortedPermutation(t, p, orig)
	if calls == 0 {
		t.Fatal("custom block sorter never called")
	}
}

func TestEmpiricalIIRMatchesDownsampledDefinition(t *testing.T) {
	times := []int64{4, 3, 9, 8, 5, 6, 11, 1, 12, 7, 15, 2, 16, 17, 18}
	p := makePairs(times)
	// Stride-3 samples 4,8,11,7,16 have exactly one inverted pair.
	if got := empiricalIIR(p, 3); got != 0.25 {
		t.Fatalf("empiricalIIR(3) = %g, want 0.25", got)
	}
	if got := empiricalIIR(p, 5); got != 0 {
		t.Fatalf("empiricalIIR(5) = %g, want 0", got)
	}
	if got := empiricalIIR(p, 100); got != 0 {
		t.Fatalf("empiricalIIR beyond n = %g, want 0", got)
	}
}
