package core

import (
	"runtime"
	"sync"
)

// This file is the monomorphized fast path of Backward-Sort: the same
// three phases as BackwardSort (set block size / sort by blocks /
// backward merge), specialized to contiguous []int64 / []V slices.
// Every s.Time(i) of the interface path is an indexed load here, every
// Swap/Move/Save/Restore a pair of slice assignments — no interface
// dispatch, no i/arrayLen+i%arrayLen block arithmetic. Phase 2 may
// additionally fan the independent block sorts (Algorithm 1 lines
// 9-12) across a bounded set of goroutines; phase 3 stays sequential
// and backward, exactly as the algorithm requires.

// FlatOptions configures SortFlat. The zero value selects the paper's
// defaults and a sequential phase 2.
type FlatOptions struct {
	// InitialBlockSize is L0 (default DefaultInitialBlockSize).
	InitialBlockSize int
	// Threshold is Θ (default DefaultThreshold).
	Threshold float64
	// FixedBlockSize, when positive, skips the set-block-size search
	// and uses the given L directly.
	FixedBlockSize int
	// SearchPhase anchors the block-size search's stride-L subsample
	// at index SearchPhase mod L instead of index 0 (see
	// Options.SearchPhase).
	SearchPhase int
	// Parallelism bounds the phase-2 block-sorting workers; values
	// below 2 keep phase 2 on the calling goroutine. Phases 1 and 3
	// are sequential regardless: the block-size scan is O(n/L0) and
	// the backward merge's suffix invariant is inherently ordered.
	Parallelism int
}

func (o FlatOptions) withDefaults() FlatOptions {
	if o.InitialBlockSize <= 0 {
		o.InitialBlockSize = DefaultInitialBlockSize
	}
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	return o
}

// flatScratch is the pooled merge scratch of the flat kernel: the
// parked block tail (or suffix overlap), keys and values side by side.
type flatScratch[V any] struct {
	t []int64
	v []V
}

// flatScratchPool recycles merge scratch across sorts — and, because
// it is package-level, across every flush worker and query goroutine
// in the process, so steady-state sorting allocates nothing. The pool
// stores mixed instantiations; a Get that surfaces a scratch of
// another value type drops it (a process overwhelmingly sorts one
// value type, so mismatches are startup noise, not churn).
var flatScratchPool sync.Pool

func getFlatScratch[V any]() *flatScratch[V] {
	if x := flatScratchPool.Get(); x != nil {
		if s, ok := x.(*flatScratch[V]); ok {
			return s
		}
	}
	return &flatScratch[V]{}
}

func putFlatScratch[V any](s *flatScratch[V]) {
	clear(s.v) // drop value references so pooling cannot pin them
	flatScratchPool.Put(s)
}

// growInt64 returns s resized to n, growing geometrically so a
// sequence of ever-larger requests costs O(log) reallocations, not one
// each. Contents are not preserved across a reallocation.
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n {
			c = n
		}
		s = make([]int64, c)
	}
	return s[:n]
}

// growSlice is growInt64 for the value side.
func growSlice[V any](s []V, n int) []V {
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n {
			c = n
		}
		s = make([]V, c)
	}
	return s[:n]
}

// SortFlat sorts the parallel slices by timestamp using Backward-Sort,
// specialized to contiguous storage. It panics if the lengths differ.
// The Trace it returns is identical to what BackwardSort would report
// on the same input: the two paths run the same algorithm, and the
// phase-2 fan-out cannot change what any block contains.
func SortFlat[V any](times []int64, values []V, opts FlatOptions) Trace {
	if len(times) != len(values) {
		panic("core: times and values length mismatch")
	}
	opts = opts.withDefaults()
	n := len(times)
	var tr Trace
	if n < 2 {
		tr.BlockSize = n
		return tr
	}

	// Phase 1: set block size (Algorithm 1 lines 1-8).
	L := opts.FixedBlockSize
	if L <= 0 {
		L, tr.SearchIterations = setBlockSizeFlat(times, opts.InitialBlockSize, opts.Threshold, opts.SearchPhase)
	}
	if L > n {
		L = n
	}
	if L < 1 {
		L = 1
	}
	tr.BlockSize = L
	tr.Blocks = (n + L - 1) / L

	// Phase 2: sort by blocks (lines 9-12), fanned out when asked.
	sortBlocksFlat(times, values, L, opts.Parallelism)

	// Phase 3: backward merge (lines 13-16), sequential by invariant.
	backwardMergeFlat(times, values, L, &tr)
	return tr
}

// setBlockSizeFlat runs the shared block-size search (search.go) over
// a flat timestamp slice.
func setBlockSizeFlat(times []int64, l0 int, theta float64, phase int) (L, iterations int) {
	return searchBlockSize(len(times), func(i int) int64 { return times[i] }, l0, DefaultInitialBlockSize, theta, phase)
}

// sortBlocksFlat sorts every L-sized block in place. Blocks are
// independent by construction (Algorithm 1 lines 9-12), so with
// parallelism > 1 contiguous runs of blocks are handed to up to that
// many goroutines; run boundaries are block boundaries, so the result
// is bit-identical to the sequential order.
func sortBlocksFlat[V any](times []int64, values []V, L, parallelism int) {
	n := len(times)
	blocks := (n + L - 1) / L
	workers := parallelism
	if workers > blocks {
		workers = blocks
	}
	// Never fan out beyond the CPUs actually available: an extra worker
	// can't run anyway, and on a loaded scheduler the spawned goroutine
	// waits a full run-queue round behind busy peers — turning a
	// sub-millisecond block sort into milliseconds of latency.
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers <= 1 {
		for lo := 0; lo < n; lo += L {
			hi := lo + L
			if hi > n {
				hi = n
			}
			quicksortFlat(times, values, lo, hi)
		}
		return
	}
	per := (blocks + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		startBlk := w * per
		if startBlk >= blocks {
			break
		}
		end := (startBlk + per) * L
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, end int) {
			defer wg.Done()
			for ; lo < end; lo += L {
				hi := lo + L
				if hi > end {
					hi = end
				}
				quicksortFlat(times, values, lo, hi)
			}
		}(startBlk*L, end)
	}
	wg.Wait()
}

// quicksortFlat is QuicksortRange monomorphized: middle-element pivot,
// smaller-side recursion, insertion sort below the cutoff.
func quicksortFlat[V any](t []int64, v []V, lo, hi int) {
	for hi-lo > insertionCutoff {
		p := partitionFlat(t, v, lo, hi)
		if p+1-lo < hi-p-1 {
			quicksortFlat(t, v, lo, p+1)
			lo = p + 1
		} else {
			quicksortFlat(t, v, p+1, hi)
			hi = p + 1
		}
	}
	insertionSortFlat(t, v, lo, hi)
}

// partitionFlat is the Hoare partition of QuicksortRange on flat
// slices.
func partitionFlat[V any](t []int64, v []V, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	t[lo], t[mid] = t[mid], t[lo]
	v[lo], v[mid] = v[mid], v[lo]
	pivot := t[lo]
	i, j := lo-1, hi
	for {
		for {
			i++
			if t[i] >= pivot {
				break
			}
		}
		for {
			j--
			if t[j] <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		t[i], t[j] = t[j], t[i]
		v[i], v[j] = v[j], v[i]
	}
}

// insertionSortFlat shifts displaced records right while the record in
// flight sits in two locals — the flat path needs no scratch slot at
// all for insertion.
func insertionSortFlat[V any](t []int64, v []V, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		key := t[i]
		if key >= t[i-1] {
			continue
		}
		val := v[i]
		j := i
		for j > lo && t[j-1] > key {
			t[j] = t[j-1]
			v[j] = v[j-1]
			j--
		}
		t[j] = key
		v[j] = val
	}
}

// backwardMergeFlat is backwardMerge on flat slices, drawing its merge
// scratch from the shared pool. Same invariant: the suffix right of
// blockEnd is fully sorted; only overlapping records move.
func backwardMergeFlat[V any](t []int64, v []V, L int, tr *Trace) {
	n := len(t)
	if L >= n {
		return
	}
	sc := getFlatScratch[V]()
	lastStart := ((n - 1) / L) * L
	for blockEnd := lastStart; blockEnd >= L; blockEnd -= L {
		blockMax := t[blockEnd-1]
		suffixHead := t[blockEnd]
		if blockMax <= suffixHead {
			continue // no overlap across the boundary
		}
		q := lowerBoundFlat(t, blockEnd, n, blockMax)
		a := upperBoundFlat(t, blockEnd-L, blockEnd, suffixHead)
		r := blockEnd - a
		if r <= q {
			mergeOverlapLoFlat(t, v, a, blockEnd, q, sc)
		} else {
			mergeOverlapHiFlat(t, v, a, blockEnd, q, sc)
		}
		tr.Merges++
		tr.OverlapTotal += int64(q)
		tr.TailTotal += int64(r)
		if q > tr.MaxOverlap {
			tr.MaxOverlap = q
		}
	}
	putFlatScratch(sc)
}

// lowerBoundFlat counts records in the sorted suffix [start, n) with
// time strictly less than key. The overlap is delay-bounded and almost
// always tiny relative to the suffix, so it gallops out from the
// boundary — O(log overlap) probes that stay in cache — instead of
// bisecting the whole (cold) suffix.
func lowerBoundFlat(t []int64, start, n int, key int64) int {
	if start >= n || t[start] >= key {
		return 0
	}
	off := 1
	for start+off < n && t[start+off] < key {
		off <<= 1
	}
	lo := start + off>>1 + 1
	hi := start + off
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - start
}

// upperBoundFlat returns the first index in the sorted range [lo, hi)
// whose time is strictly greater than key. The block tail that
// overlaps the suffix is small for the same delay-bound reason, so it
// gallops backward from hi.
func upperBoundFlat(t []int64, lo, hi int, key int64) int {
	if lo >= hi {
		return lo
	}
	if t[hi-1] <= key {
		return hi
	}
	off := 1
	for hi-1-off >= lo && t[hi-1-off] > key {
		off <<= 1
	}
	if l := hi - off; l > lo {
		lo = l
	}
	hi -= off >> 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mergeOverlapLoFlat parks the block tail [a, blockEnd) (the smaller
// side) in scratch and merges forward with the suffix head.
func mergeOverlapLoFlat[V any](t []int64, v []V, a, blockEnd, q int, sc *flatScratch[V]) {
	r := blockEnd - a
	sc.t = growInt64(sc.t, r)
	sc.v = growSlice(sc.v, r)
	copy(sc.t, t[a:blockEnd])
	copy(sc.v, v[a:blockEnd])
	dst := a
	i, j := 0, blockEnd
	end := blockEnd + q
	for i < r && j < end {
		if sc.t[i] <= t[j] {
			t[dst] = sc.t[i]
			v[dst] = sc.v[i]
			i++
		} else {
			t[dst] = t[j]
			v[dst] = v[j]
			j++
		}
		dst++
	}
	for i < r {
		t[dst] = sc.t[i]
		v[dst] = sc.v[i]
		i++
		dst++
	}
	// Remaining suffix records [j, end) are already in place.
}

// mergeOverlapHiFlat parks the suffix overlap [blockEnd, blockEnd+q)
// (the smaller side) in scratch and merges backward with the tail.
func mergeOverlapHiFlat[V any](t []int64, v []V, a, blockEnd, q int, sc *flatScratch[V]) {
	r := blockEnd - a
	sc.t = growInt64(sc.t, q)
	sc.v = growSlice(sc.v, q)
	copy(sc.t, t[blockEnd:blockEnd+q])
	copy(sc.v, v[blockEnd:blockEnd+q])
	dst := blockEnd + q - 1
	i, j := q-1, blockEnd-1
	lo := blockEnd - r
	for i >= 0 && j >= lo {
		if sc.t[i] >= t[j] {
			t[dst] = sc.t[i]
			v[dst] = sc.v[i]
			i--
		} else {
			t[dst] = t[j]
			v[dst] = v[j]
			j--
		}
		dst--
	}
	for i >= 0 {
		t[dst] = sc.t[i]
		v[dst] = sc.v[i]
		i--
		dst--
	}
	// Remaining tail records [lo, j] are already in place.
}
