// Package core implements Backward-Sort, the time series sorting
// algorithm of "Backward-Sort for Time Series in Apache IoTDB"
// (ICDE 2023), together with the record-sequence abstraction all
// sorting algorithms in this repository are written against.
//
// The algorithm exploits two features of out-of-order arrivals in IoT
// workloads: points are only ever *delayed* (never early), and the
// delays are *not too distant* (extreme stragglers are diverted by the
// storage engine's separation policy before they reach the sorter).
// Backward-Sort therefore (1) picks a block size L from the empirical
// interval inversion ratio, (2) sorts each block independently, and
// (3) merges blocks backwards, moving only the short overlapping
// regions between adjacent sorted blocks.
package core

// Sortable is the record sequence the sorting algorithms operate on.
// It mirrors the sort interface Apache IoTDB abstracts over its
// TVList (Section V-C of the paper): algorithms order records by the
// int64 timestamp key and move whole records, never separating a
// timestamp from its value.
//
// Beyond sort.Interface-style Len/Swap, merge-based algorithms need a
// scratch area to park overlapping records: Save copies record i into
// scratch slot, Restore writes a scratch slot back over record i, and
// EnsureScratch grows the scratch area. Move overwrites record dst
// with record src (the record at src is left intact).
type Sortable interface {
	// Len returns the number of records.
	Len() int
	// Time returns the ordering key (timestamp) of record i.
	Time(i int) int64
	// Swap exchanges records i and j.
	Swap(i, j int)
	// Move copies record src over record dst.
	Move(src, dst int)
	// EnsureScratch guarantees at least n scratch slots.
	EnsureScratch(n int)
	// Save copies record i into scratch slot.
	Save(i, slot int)
	// Restore copies scratch slot over record i.
	Restore(slot, i int)
}

// Pairs is the canonical flat Sortable: parallel timestamp/value
// slices. It is the in-memory representation used by the algorithm
// experiments; TVList provides the blocked equivalent used inside the
// storage engine.
type Pairs[V any] struct {
	Times  []int64
	Values []V

	scratchT []int64
	scratchV []V
}

// NewPairs wraps parallel slices. It panics if the lengths differ,
// which is always a programming error.
func NewPairs[V any](times []int64, values []V) *Pairs[V] {
	if len(times) != len(values) {
		panic("core: times and values length mismatch")
	}
	return &Pairs[V]{Times: times, Values: values}
}

// Len implements Sortable.
func (p *Pairs[V]) Len() int { return len(p.Times) }

// Time implements Sortable.
func (p *Pairs[V]) Time(i int) int64 { return p.Times[i] }

// Swap implements Sortable.
func (p *Pairs[V]) Swap(i, j int) {
	p.Times[i], p.Times[j] = p.Times[j], p.Times[i]
	p.Values[i], p.Values[j] = p.Values[j], p.Values[i]
}

// Move implements Sortable.
func (p *Pairs[V]) Move(src, dst int) {
	p.Times[dst] = p.Times[src]
	p.Values[dst] = p.Values[src]
}

// EnsureScratch implements Sortable. Scratch grows geometrically so a
// sequence of ever-larger merges costs O(log) reallocations.
func (p *Pairs[V]) EnsureScratch(n int) {
	if cap(p.scratchT) < n {
		c := 2 * cap(p.scratchT)
		if c < n {
			c = n
		}
		p.scratchT = make([]int64, c)
		p.scratchV = make([]V, c)
	}
	p.scratchT = p.scratchT[:cap(p.scratchT)]
	p.scratchV = p.scratchV[:cap(p.scratchV)]
}

// Save implements Sortable.
func (p *Pairs[V]) Save(i, slot int) {
	p.scratchT[slot] = p.Times[i]
	p.scratchV[slot] = p.Values[i]
}

// Restore implements Sortable.
func (p *Pairs[V]) Restore(slot, i int) {
	p.Times[i] = p.scratchT[slot]
	p.Values[i] = p.scratchV[slot]
}

// ScratchTime returns the timestamp stored in scratch slot. Algorithms
// that merge out of scratch need to compare parked records without
// restoring them; exposing the key (not the value) keeps the record
// abstraction intact.
func (p *Pairs[V]) ScratchTime(slot int) int64 { return p.scratchT[slot] }

// ScratchTimer is implemented by Sortables that can report the
// timestamp of a scratch slot directly. All Sortables in this
// repository implement it; algorithms fall back to caller-side key
// caching when one does not.
type ScratchTimer interface {
	ScratchTime(slot int) int64
}

// Counter wraps a Sortable and counts the operations the algorithms
// perform. The paper's merge analysis (Figure 2 and Section IV) is in
// terms of record *moves*; Counter tallies moves, swaps, saves,
// restores, key reads and the high-water scratch usage so experiments
// can compare algorithms on the paper's own metric.
type Counter struct {
	S Sortable

	TimeReads  int64 // Time() calls: an upper bound proxy for comparisons
	Swaps      int64
	Moves      int64
	Saves      int64
	Restores   int64
	MaxScratch int
}

// NewCounter wraps s.
func NewCounter(s Sortable) *Counter { return &Counter{S: s} }

// TotalMoves returns every record movement performed: swaps count as
// three moves (the classic temp-swap accounting used by the paper's
// Figure 2), saves and restores as one each.
func (c *Counter) TotalMoves() int64 {
	return 3*c.Swaps + c.Moves + c.Saves + c.Restores
}

// Len implements Sortable.
func (c *Counter) Len() int { return c.S.Len() }

// Time implements Sortable.
func (c *Counter) Time(i int) int64 {
	c.TimeReads++
	return c.S.Time(i)
}

// Swap implements Sortable.
func (c *Counter) Swap(i, j int) {
	c.Swaps++
	c.S.Swap(i, j)
}

// Move implements Sortable.
func (c *Counter) Move(src, dst int) {
	c.Moves++
	c.S.Move(src, dst)
}

// EnsureScratch implements Sortable.
func (c *Counter) EnsureScratch(n int) {
	if n > c.MaxScratch {
		c.MaxScratch = n
	}
	c.S.EnsureScratch(n)
}

// Save implements Sortable.
func (c *Counter) Save(i, slot int) {
	c.Saves++
	c.S.Save(i, slot)
}

// Restore implements Sortable.
func (c *Counter) Restore(slot, i int) {
	c.Restores++
	c.S.Restore(slot, i)
}

// ScratchTime implements ScratchTimer by delegating when possible.
func (c *Counter) ScratchTime(slot int) int64 {
	if st, ok := c.S.(ScratchTimer); ok {
		return st.ScratchTime(slot)
	}
	panic("core: underlying Sortable does not expose scratch times")
}

// IsSorted reports whether s is ordered by nondecreasing timestamp.
func IsSorted(s Sortable) bool {
	n := s.Len()
	for i := 1; i < n; i++ {
		if s.Time(i-1) > s.Time(i) {
			return false
		}
	}
	return true
}
