package core

// insertionCutoff is the sub-range size below which QuicksortRange
// switches to insertion sort. Small ranges sort faster by insertion
// and nearly sorted small ranges are the common case here.
const insertionCutoff = 12

// QuicksortRange sorts records [lo, hi) of s by timestamp using the
// Quicksort the paper evaluates: the pivot is always the middle
// element of the range ("due to time series", Section VI-A1 — the
// middle of a nearly sorted range is close to its median). Backward-
// Sort uses it as the default per-block sorter (Algorithm 1 line 11),
// and with L = N Backward-Sort degenerates to exactly this procedure
// (Figure 6).
func QuicksortRange(s Sortable, lo, hi int) {
	for hi-lo > insertionCutoff {
		p := partition(s, lo, hi)
		// Recurse into the smaller side, loop on the larger: keeps
		// stack depth O(log n) even on adversarial inputs.
		if p+1-lo < hi-p-1 {
			QuicksortRange(s, lo, p+1)
			lo = p + 1
		} else {
			QuicksortRange(s, p+1, hi)
			hi = p + 1
		}
	}
	InsertionSortRange(s, lo, hi)
}

// partition splits [lo, hi) Hoare-style around the middle-element
// pivot (parked at lo first) and returns j such that [lo, j] holds
// records <= pivot and [j+1, hi) records >= pivot, both sides
// nonempty. Hoare scanning keeps duplicate-heavy inputs O(n log n),
// where a Lomuto scan degrades quadratically.
func partition(s Sortable, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	s.Swap(lo, mid)
	pivot := s.Time(lo)
	i, j := lo-1, hi
	for {
		for {
			i++
			if s.Time(i) >= pivot {
				break
			}
		}
		for {
			j--
			if s.Time(j) <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		s.Swap(i, j)
	}
}

// InsertionSortRange sorts records [lo, hi) by straight insertion,
// shifting rather than swapping: the displaced record is parked in one
// scratch slot while larger records move right. This is the
// Insertion-Sort that Backward-Sort degenerates to at L = 1
// (Proposition 5).
func InsertionSortRange(s Sortable, lo, hi int) {
	if hi-lo < 2 {
		return
	}
	s.EnsureScratch(1)
	for i := lo + 1; i < hi; i++ {
		t := s.Time(i)
		if t >= s.Time(i-1) {
			continue
		}
		s.Save(i, 0)
		j := i
		for j > lo && s.Time(j-1) > t {
			s.Move(j-1, j)
			j--
		}
		s.Restore(0, j)
	}
}

// Quicksort sorts all of s with QuicksortRange.
func Quicksort(s Sortable) { QuicksortRange(s, 0, s.Len()) }

// InsertionSort sorts all of s with InsertionSortRange.
func InsertionSort(s Sortable) { InsertionSortRange(s, 0, s.Len()) }
