//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow allocations break allocs-per-op assertions.
const raceEnabled = true
