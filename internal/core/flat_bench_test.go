package core

import (
	"testing"

	"repro/internal/dataset"
)

// benchSeries is the workload every sort benchmark shares: AbsNormal
// delays (the paper's primary synthetic dataset) at a memtable-flush
// scale. Each iteration re-copies the arrival-order data into
// preallocated buffers so steady-state allocations are attributable to
// the sort itself, not the harness.
const benchN = 1 << 17 // 131072 points, a realistic flush size

func benchData() ([]int64, []float64) {
	s := dataset.AbsNormal(benchN, 1, 2, 1)
	return s.Times, s.Values
}

func BenchmarkSortInterfacePairs(b *testing.B) {
	srcT, srcV := benchData()
	p := NewPairs(make([]int64, benchN), make([]float64, benchN))
	p.EnsureScratch(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(p.Times, srcT)
		copy(p.Values, srcV)
		b.StartTimer()
		BackwardSort(p, Options{})
	}
}

func benchmarkSortFlat(b *testing.B, parallelism int) {
	srcT, srcV := benchData()
	t := make([]int64, benchN)
	v := make([]float64, benchN)
	opts := FlatOptions{Parallelism: parallelism}
	// Warm the scratch pool so the first iteration's grow doesn't count.
	copy(t, srcT)
	copy(v, srcV)
	SortFlat(t, v, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(t, srcT)
		copy(v, srcV)
		b.StartTimer()
		SortFlat(t, v, opts)
	}
}

func BenchmarkSortFlatP1(b *testing.B) { benchmarkSortFlat(b, 1) }
func BenchmarkSortFlatP2(b *testing.B) { benchmarkSortFlat(b, 2) }
func BenchmarkSortFlatP4(b *testing.B) { benchmarkSortFlat(b, 4) }
func BenchmarkSortFlatP8(b *testing.B) { benchmarkSortFlat(b, 8) }

// TestSortFlatSteadyStateAllocs pins the kernel's zero-allocation
// contract at parallelism 1: once the pooled scratch is warm, sorting
// must not allocate. (Parallelism > 1 spends a few allocations on
// goroutine fan-out, which is why the contract is sequential-only.)
func TestSortFlatSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is measured without -race")
	}
	const n = 1 << 14
	s := dataset.AbsNormal(n, 1, 2, 7)
	ts := make([]int64, n)
	vs := make([]float64, n)
	copy(ts, s.Times)
	copy(vs, s.Values)
	SortFlat(ts, vs, FlatOptions{}) // warm the scratch pool
	allocs := testing.AllocsPerRun(10, func() {
		copy(ts, s.Times)
		copy(vs, s.Values)
		SortFlat(ts, vs, FlatOptions{})
	})
	// Tolerate <1: a GC between runs can flush the sync.Pool and force
	// one scratch reallocation, which is not a leak in the kernel.
	if allocs >= 1 {
		t.Fatalf("SortFlat steady state allocates %v times per run; want 0", allocs)
	}
}
