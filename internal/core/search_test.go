package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/delay"
)

// TestSearchPathsPickIdenticalL is the property test guarding the
// deduplicated block-size search: for identical input, the interface
// path (setBlockSize over a Sortable) and the flat kernel
// (setBlockSizeFlat over a slice) must pick the identical L with the
// identical iteration count, across delay scenarios and phases.
func TestSearchPathsPickIdenticalL(t *testing.T) {
	scenarios := []struct {
		name string
		d    delay.Distribution
	}{
		{"constant0", delay.Constant{}},
		{"exp2", delay.Exponential{Lambda: 2}},
		{"exp0.1", delay.Exponential{Lambda: 0.1}},
		{"absnormal", delay.AbsNormal{Mu: 1, Sigma: 2}},
		{"lognormal", delay.LogNormal{Mu: 1, Sigma: 2}},
		{"uniform", delay.DiscreteUniform{K: 64}},
		{"pareto", delay.Truncated{Inner: delay.Pareto{Xm: 1, Alpha: 1.1}, Max: 5000}},
		{"clockskew", delay.ClockSkew{P: 0.3, Skew: 200, Jitter: 2}},
		{"mixture", delay.Mixture{P: 0.9, A: delay.Constant{}, B: delay.Exponential{Lambda: 0.05}}},
	}
	sizes := []int{2, 5, 100, 4096, 100000}
	for _, sc := range scenarios {
		for _, n := range sizes {
			s := dataset.Generate(sc.name, n, sc.d, 42)
			times := s.Times
			for _, phase := range []int{0, 1, 3, 17} {
				wantL, wantIters := setBlockSizeFlat(times, DefaultInitialBlockSize, DefaultThreshold, phase)
				p := NewPairs(append([]int64(nil), times...), make([]float64, n))
				gotL, gotIters := setBlockSize(p, DefaultInitialBlockSize, DefaultThreshold, phase)
				if gotL != wantL || gotIters != wantIters {
					t.Errorf("%s n=%d phase=%d: interface picked L=%d in %d iters, flat picked L=%d in %d iters",
						sc.name, n, phase, gotL, gotIters, wantL, wantIters)
				}
			}
		}
	}
}

// TestSearchPhaseZeroMatchesPaperAnchor pins the refactor to the
// paper's semantics: with phase 0 the shared estimator must equal the
// original t_0, t_L, t_2L, … subsample on the paper's Figure 3
// sequence (α̃_3 = 0.25, Example 5).
func TestSearchPhaseZeroMatchesPaperAnchor(t *testing.T) {
	fig3 := []int64{4, 3, 9, 8, 5, 6, 11, 1, 12, 7, 15, 2, 16, 17, 18}
	at := func(i int) int64 { return fig3[i] }
	if got := empiricalIIRAt(len(fig3), at, 3, 0); got != 0.25 {
		t.Fatalf("phase-0 α̃_3 = %g, want 0.25", got)
	}
	// Out-of-range L values yield 0 pairs, reported as ratio 0.
	if got := empiricalIIRAt(len(fig3), at, len(fig3), 0); got != 0 {
		t.Fatalf("α̃ at L=n should be 0, got %g", got)
	}
	if got := empiricalIIRAt(len(fig3), at, 100, 0); got != 0 {
		t.Fatalf("α̃ beyond n should be 0, got %g", got)
	}
}
