// Package index implements the inverted series index that resolves
// label selectors to series: every name=value pair maps to a postings
// list of series IDs (kept sorted, so selector terms intersect by
// sorted-list merge, the classic inverted-index plan), and the series
// catalog — the ID ↔ label-set mapping — persists in an append-only
// catalog.log that is replayed on open, so series IDs survive
// restarts the way acknowledged writes survive through the WAL.
//
// Matcher semantics follow the usual selector conventions: a series'
// value for an absent label is the empty string, so {host=""} selects
// series without a host label; regex matchers are fully anchored; a
// selector that matches nothing returns an empty list, not an error.
package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultfs"
	"repro/internal/labels"
)

// SeriesID identifies one series. IDs are assigned densely in
// registration order, persist across restarts via the catalog, and
// are never reused.
type SeriesID uint64

// Options configures an Index beyond its directory.
type Options struct {
	// FS is the filesystem seam for catalog writes (default
	// faultfs.OS); crash tests inject fault filesystems here.
	FS faultfs.FS
	// Durable makes series registration survive a machine crash: each
	// appended catalog record is fsynced before EnsureSeries returns,
	// and catalog lifecycle changes fsync the directory. Registration
	// is rare relative to ingestion, so the cost is per new series,
	// not per point.
	Durable bool
}

// Stats is a snapshot of index-side metrics.
type Stats struct {
	// Series is the number of registered series.
	Series int
	// LabelPairs is the number of distinct name=value postings lists.
	LabelPairs int
	// PostingsEntries is the total series-ID entries across those
	// lists — the index's memory-side size.
	PostingsEntries int64
	// Resolutions counts selector resolutions served by Select.
	Resolutions int64
}

// Index is the inverted series index. All methods are safe for
// concurrent use.
type Index struct {
	mu       sync.RWMutex
	catalog  *catalog
	series   map[SeriesID]labels.Set
	ids      map[string]SeriesID // canonical encoding -> id
	all      []SeriesID          // every id, ascending
	postings map[string]map[string][]SeriesID
	byName   map[string][]SeriesID // union of postings[name], ascending
	pairs    int
	entries  int64
	nextID   SeriesID

	resolutions atomic.Int64
}

// Open creates or reopens the index rooted at dir, replaying
// catalog.log (when present) so series keep their IDs. A torn final
// record — a crash mid-append — is dropped and healed by the
// compacting rewrite, like a torn WAL tail: it was never
// acknowledged. Corruption before the tail is an error, because it
// means an acknowledged registration was lost.
func Open(dir string, opts Options) (*Index, error) {
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	x := &Index{
		series:   make(map[SeriesID]labels.Set),
		ids:      make(map[string]SeriesID),
		postings: make(map[string]map[string][]SeriesID),
		byName:   make(map[string][]SeriesID),
	}
	cat, err := openCatalog(dir, opts, func(id SeriesID, canonical string) error {
		ls, err := labels.ParseCanonical(canonical)
		if err != nil {
			return err
		}
		return x.addLocked(id, ls, canonical)
	})
	if err != nil {
		return nil, err
	}
	x.catalog = cat
	return x, nil
}

// addLocked registers a series in the in-memory maps. Caller holds
// x.mu (or, during Open, is the sole owner). Replaying a canonical
// encoding that is already registered keeps the first ID (the one the
// catalog acknowledged first).
func (x *Index) addLocked(id SeriesID, ls labels.Set, canonical string) error {
	if _, ok := x.ids[canonical]; ok {
		return nil
	}
	if _, ok := x.series[id]; ok {
		return fmt.Errorf("index: duplicate series id %d in catalog", id)
	}
	x.series[id] = ls
	x.ids[canonical] = id
	x.all = append(x.all, id)
	for _, l := range ls {
		vals, ok := x.postings[l.Name]
		if !ok {
			vals = make(map[string][]SeriesID)
			x.postings[l.Name] = vals
		}
		if _, ok := vals[l.Value]; !ok {
			x.pairs++
		}
		vals[l.Value] = append(vals[l.Value], id)
		x.byName[l.Name] = append(x.byName[l.Name], id)
		x.entries++
	}
	if id >= x.nextID {
		x.nextID = id + 1
	}
	return nil
}

// EnsureSeries returns the ID for ls, registering it (and appending
// the registration to the catalog) on first sight. The bool reports
// whether the series was created by this call.
func (x *Index) EnsureSeries(ls labels.Set) (SeriesID, bool, error) {
	canonical := ls.Canonical()
	x.mu.RLock()
	id, ok := x.ids[canonical]
	x.mu.RUnlock()
	if ok {
		return id, false, nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if id, ok := x.ids[canonical]; ok {
		return id, false, nil
	}
	id = x.nextID
	// Persist before registering: a series the catalog did not accept
	// must not be handed out, or its ID would change on restart.
	if err := x.catalog.append(id, canonical); err != nil {
		return 0, false, fmt.Errorf("index: catalog append: %w", err)
	}
	if err := x.addLocked(id, ls, canonical); err != nil {
		return 0, false, err
	}
	return id, true, nil
}

// Lookup returns the ID registered for ls, if any (it never creates).
func (x *Index) Lookup(ls labels.Set) (SeriesID, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	id, ok := x.ids[ls.Canonical()]
	return id, ok
}

// Series returns the label set registered under id.
func (x *Index) Series(id SeriesID) (labels.Set, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	ls, ok := x.series[id]
	return ls, ok
}

// NumSeries returns the registered series count.
func (x *Index) NumSeries() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.all)
}

// Select resolves a selector to the ascending IDs of every series all
// matchers accept. Each matcher term resolves to a sorted postings
// list (equality by direct lookup; regex by union over the name's
// values; negations and empty-value terms by complement against the
// full series list) and the term lists intersect pairwise. An empty
// matcher list selects every series; a selector matching nothing
// returns an empty slice, not an error.
func (x *Index) Select(ms []*labels.Matcher) []SeriesID {
	x.resolutions.Add(1)
	x.mu.RLock()
	defer x.mu.RUnlock()
	result := x.all
	for _, m := range ms {
		result = intersect(result, x.matchingLocked(m))
		if len(result) == 0 {
			return nil
		}
	}
	// Callers may keep the result; never alias internal postings.
	out := make([]SeriesID, len(result))
	copy(out, result)
	return out
}

// matchingLocked returns the ascending IDs of series whose value for
// m.Name (empty when absent) satisfies m. Caller holds x.mu.
func (x *Index) matchingLocked(m *labels.Matcher) []SeriesID {
	if m.Type == labels.MatchEq && m.Value != "" {
		return x.postings[m.Name][m.Value]
	}
	var lists [][]SeriesID
	for v, ids := range x.postings[m.Name] {
		if m.Matches(v) {
			lists = append(lists, ids)
		}
	}
	u := unionAll(lists)
	if m.Matches("") {
		// Series without the label match too: the complement of every
		// series that has it.
		u = unionAll([][]SeriesID{u, complement(x.all, x.byName[m.Name])})
	}
	return u
}

// intersect merges two ascending lists into their intersection.
func intersect(a, b []SeriesID) []SeriesID {
	var out []SeriesID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionAll merges ascending lists into their ascending union.
func unionAll(lists [][]SeriesID) []SeriesID {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	// Repeated pairwise union; selector terms rarely union more than a
	// handful of value lists, so no heap is warranted.
	out := lists[0]
	for _, l := range lists[1:] {
		merged := make([]SeriesID, 0, len(out)+len(l))
		i, j := 0, 0
		for i < len(out) && j < len(l) {
			switch {
			case out[i] < l[j]:
				merged = append(merged, out[i])
				i++
			case out[i] > l[j]:
				merged = append(merged, l[j])
				j++
			default:
				merged = append(merged, out[i])
				i++
				j++
			}
		}
		merged = append(merged, out[i:]...)
		merged = append(merged, l[j:]...)
		out = merged
	}
	return out
}

// complement returns all \ sub (both ascending).
func complement(all, sub []SeriesID) []SeriesID {
	var out []SeriesID
	j := 0
	for _, id := range all {
		for j < len(sub) && sub[j] < id {
			j++
		}
		if j < len(sub) && sub[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Stats returns a metrics snapshot.
func (x *Index) Stats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return Stats{
		Series:          len(x.all),
		LabelPairs:      x.pairs,
		PostingsEntries: x.entries,
		Resolutions:     x.resolutions.Load(),
	}
}

// Close closes the catalog file. Safe to call more than once.
func (x *Index) Close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.catalog.close()
}
