package index

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/labels"
)

// registerAll registers n series in a fixed order, stopping at the
// first error; it returns how many registrations were acknowledged.
func registerAll(x *Index, sets []labels.Set) (acked int, err error) {
	for i, ls := range sets {
		id, _, err := x.EnsureSeries(ls)
		if err != nil {
			return i, err
		}
		if id != SeriesID(i) {
			return i, fmt.Errorf("series %d got id %d", i, id)
		}
	}
	return len(sets), nil
}

// TestCrashMatrix sweeps the faultfs kill point across an entire
// registration run: at every possible crash interleaving, recovery
// must replay a clean prefix of the registrations — every
// acknowledged series with its original ID, never a phantom or
// reordered one — and accept new registrations afterwards.
func TestCrashMatrix(t *testing.T) {
	const n = 12
	sets := make([]labels.Set, n)
	for i := range sets {
		sets[i] = labels.MustNew(
			labels.Label{Name: "host", Value: fmt.Sprintf("h%d", i%4)},
			labels.Label{Name: "metric", Value: fmt.Sprintf("m%d", i)},
		)
	}

	// First pass: count the operations of a full run.
	probe := faultfs.NewInjector(faultfs.OS, 0)
	dir := t.TempDir()
	x, err := Open(dir, Options{FS: probe, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := registerAll(x, sets); err != nil {
		t.Fatal(err)
	}
	x.Close()
	totalOps := int(probe.Ops())
	if totalOps < n {
		t.Fatalf("probe counted only %d ops", totalOps)
	}

	for k := 1; k <= totalOps; k++ {
		k := k
		t.Run(fmt.Sprintf("kill=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS, k)
			x, err := Open(dir, Options{FS: inj, Durable: true})
			acked := 0
			if err == nil {
				acked, err = registerAll(x, sets)
				x.Close()
			}
			if err != nil && !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("non-crash error: %v", err)
			}
			if !inj.Crashed() {
				t.Fatalf("kill point %d never reached", k)
			}

			// Recover with the real filesystem, as a restarted process
			// would.
			y, err := Open(dir, Options{FS: faultfs.OS, Durable: true})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer y.Close()

			m := y.NumSeries()
			// Everything acknowledged must survive; a record whose write
			// landed but whose fsync crashed may also legitimately appear.
			if m < acked || m > len(sets) {
				t.Fatalf("recovered %d series, acked %d", m, acked)
			}
			for i := 0; i < m; i++ {
				ls, ok := y.Series(SeriesID(i))
				if !ok || ls.Canonical() != sets[i].Canonical() {
					t.Fatalf("series %d: got %q ok=%v want %q", i, ls.Canonical(), ok, sets[i].Canonical())
				}
			}
			// The index stays writable after recovery and continues the
			// ID sequence densely.
			for i := m; i < len(sets); i++ {
				id, created, err := y.EnsureSeries(sets[i])
				if err != nil || !created || id != SeriesID(i) {
					t.Fatalf("re-register %d: id=%d created=%v err=%v", i, id, created, err)
				}
			}
			// And selection sees the full set again.
			got := y.Select([]*labels.Matcher{labels.MustMatcher(labels.MatchEq, "host", "h1")})
			if len(got) != n/4 {
				t.Fatalf("post-recovery select: %d series, want %d", len(got), n/4)
			}
		})
	}
}
