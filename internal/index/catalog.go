package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// The series catalog is an append-only log of registrations, one
// record per new series, in the WAL's record framing:
//
//	uint32 payloadLen | payload | uint32 CRC-32(payload)
//
// with payload = uvarint(seriesID) + canonical label-set bytes.
//
// faultfs.FS has no append-open (crash injection only concerns the
// write path, and the engine's other logs are create-once), so reopen
// replays the existing file with a plain read handle, then rewrites a
// compacted copy through fs.Create + atomic rename and keeps that
// handle for subsequent appends — the inode survives the rename, so
// appends through the kept handle land in the live catalog. The
// rewrite also heals a torn tail left by a crash mid-append. A store
// that never registers a series never creates the file, so
// flat-sensor directories stay label-free.

const (
	catalogName = "catalog.log"
	// maxCatalogRecord bounds one record; far above any sane label set,
	// low enough that a corrupt length prefix cannot demand gigabytes.
	maxCatalogRecord = 1 << 20
)

type catalog struct {
	fs      faultfs.FS
	dir     string
	path    string
	durable bool
	f       faultfs.File // nil until first append when no records replayed
	closed  bool
}

type record struct {
	id        SeriesID
	canonical string
}

// openCatalog replays dir/catalog.log (if present) through add, then
// prepares the append handle. Torn final records are dropped; earlier
// corruption is an error. When records were replayed the file is
// rewritten compacted (tmp + rename) and that handle kept open;
// otherwise the file is created lazily on first append.
func openCatalog(dir string, opts Options, add func(id SeriesID, canonical string) error) (*catalog, error) {
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("index: mkdir %s: %w", dir, err)
	}
	c := &catalog{
		fs:      opts.FS,
		dir:     dir,
		path:    filepath.Join(dir, catalogName),
		durable: opts.Durable,
	}
	var records []record
	err := replayCatalog(c.path, func(r record) error {
		if err := add(r.id, r.canonical); err != nil {
			return err
		}
		records = append(records, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return c, nil
	}
	if err := c.rewrite(records); err != nil {
		return nil, err
	}
	return c, nil
}

// replayCatalog streams records through fn, mirroring wal.Replay's
// torn-tail semantics: a missing file or torn final record is fine, a
// CRC mismatch with bytes after it is corruption.
func replayCatalog(path string, fn func(record) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [4]byte
	var buf []byte
	offset := int64(0)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end, or torn length prefix
			}
			return err
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:]))
		if plen <= 0 || plen > maxCatalogRecord {
			return fmt.Errorf("index: %s: invalid record length %d at offset %d", path, plen, offset)
		}
		if cap(buf) < plen+4 {
			buf = make([]byte, plen+4)
		}
		buf = buf[:plen+4]
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn tail
			}
			return err
		}
		payload := buf[:plen]
		want := binary.LittleEndian.Uint32(buf[plen:])
		if crc32.ChecksumIEEE(payload) != want {
			// A bad CRC on the very last record is a torn final write;
			// anything following it makes this mid-file corruption.
			if _, err := br.ReadByte(); err == io.EOF {
				return nil
			}
			return fmt.Errorf("index: %s: CRC mismatch at offset %d", path, offset)
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("index: %s: offset %d: %w", path, offset, err)
		}
		if err := fn(r); err != nil {
			return err
		}
		offset += int64(4 + plen + 4)
	}
}

func decodeRecord(payload []byte) (record, error) {
	id, n := binary.Uvarint(payload)
	if n <= 0 {
		return record{}, fmt.Errorf("bad series id varint")
	}
	if len(payload) == n {
		return record{}, fmt.Errorf("empty canonical encoding")
	}
	return record{id: SeriesID(id), canonical: string(payload[n:])}, nil
}

func encodeRecord(r record) []byte {
	payload := binary.AppendUvarint(nil, uint64(r.id))
	payload = append(payload, r.canonical...)
	buf := make([]byte, 0, 4+len(payload)+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf
}

// rewrite writes records into a fresh tmp file and atomically renames
// it over the catalog, keeping the handle open for appends.
func (c *catalog) rewrite(records []record) error {
	tmp := c.path + ".tmp"
	f, err := c.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("index: create %s: %w", tmp, err)
	}
	for _, r := range records {
		if _, err := f.Write(encodeRecord(r)); err != nil {
			f.Close()
			return fmt.Errorf("index: rewrite %s: %w", tmp, err)
		}
	}
	if c.durable {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("index: sync %s: %w", tmp, err)
		}
	}
	if err := c.fs.Rename(tmp, c.path); err != nil {
		f.Close()
		return fmt.Errorf("index: rename %s: %w", tmp, err)
	}
	if c.durable {
		if err := c.fs.SyncDir(c.dir); err != nil {
			f.Close()
			return fmt.Errorf("index: syncdir %s: %w", c.dir, err)
		}
	}
	c.f = f
	return nil
}

// append writes one registration record, fsyncing when durable. The
// caller holds the index write lock, so appends are serialized.
func (c *catalog) append(id SeriesID, canonical string) error {
	if c.closed {
		return fmt.Errorf("index: catalog closed")
	}
	if c.f == nil {
		f, err := c.fs.Create(c.path)
		if err != nil {
			return fmt.Errorf("index: create %s: %w", c.path, err)
		}
		c.f = f
		if c.durable {
			if err := c.fs.SyncDir(c.dir); err != nil {
				return fmt.Errorf("index: syncdir %s: %w", c.dir, err)
			}
		}
	}
	if _, err := c.f.Write(encodeRecord(record{id: id, canonical: canonical})); err != nil {
		return err
	}
	if c.durable {
		if err := c.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (c *catalog) close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
