package index

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/labels"
)

func testSet(t *testing.T, pairs ...string) labels.Set {
	t.Helper()
	if len(pairs)%2 != 0 {
		t.Fatalf("odd pairs")
	}
	ls := make([]labels.Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, labels.Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return labels.MustNew(ls...)
}

func mustOpen(t *testing.T, dir string) *Index {
	t.Helper()
	x, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return x
}

func TestEnsureSeriesAssignsStableIDs(t *testing.T) {
	x := mustOpen(t, t.TempDir())
	defer x.Close()

	a := testSet(t, "host", "a", "metric", "cpu")
	id1, created, err := x.EnsureSeries(a)
	if err != nil || !created {
		t.Fatalf("first EnsureSeries: id=%d created=%v err=%v", id1, created, err)
	}
	id2, created, err := x.EnsureSeries(testSet(t, "metric", "cpu", "host", "a"))
	if err != nil || created {
		t.Fatalf("re-EnsureSeries created a new series: id=%d created=%v err=%v", id2, created, err)
	}
	if id1 != id2 {
		t.Fatalf("same label set got two ids: %d vs %d", id1, id2)
	}
	got, ok := x.Series(id1)
	if !ok || got.Canonical() != a.Canonical() {
		t.Fatalf("Series(%d) = %v, %v", id1, got, ok)
	}
	if id, ok := x.Lookup(a); !ok || id != id1 {
		t.Fatalf("Lookup = %d, %v", id, ok)
	}
	if _, ok := x.Lookup(testSet(t, "host", "zzz")); ok {
		t.Fatal("Lookup found unregistered series")
	}
}

func TestSelectMatchers(t *testing.T) {
	x := mustOpen(t, t.TempDir())
	defer x.Close()

	// hosts a,b,c × metrics cpu,mem; plus one series with no host label.
	ids := map[string]SeriesID{}
	for _, h := range []string{"a", "b", "c"} {
		for _, m := range []string{"cpu", "mem"} {
			id, _, err := x.EnsureSeries(testSet(t, "host", h, "metric", m))
			if err != nil {
				t.Fatal(err)
			}
			ids[h+"/"+m] = id
		}
	}
	global, _, err := x.EnsureSeries(testSet(t, "metric", "uptime"))
	if err != nil {
		t.Fatal(err)
	}

	sel := func(ms ...*labels.Matcher) []SeriesID { return x.Select(ms) }

	if got := sel(); len(got) != 7 {
		t.Fatalf("empty selector returned %d series, want all 7", len(got))
	}
	if got := sel(labels.MustMatcher(labels.MatchEq, "host", "a")); !reflect.DeepEqual(got, []SeriesID{ids["a/cpu"], ids["a/mem"]}) {
		t.Fatalf("host=a: %v", got)
	}
	got := sel(
		labels.MustMatcher(labels.MatchEq, "host", "a"),
		labels.MustMatcher(labels.MatchEq, "metric", "cpu"),
	)
	if !reflect.DeepEqual(got, []SeriesID{ids["a/cpu"]}) {
		t.Fatalf("host=a,metric=cpu: %v", got)
	}
	// Regex union across values.
	got = sel(labels.MustMatcher(labels.MatchRe, "host", "a|c"))
	want := []SeriesID{ids["a/cpu"], ids["a/mem"], ids["c/cpu"], ids["c/mem"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("host=~a|c: %v want %v", got, want)
	}
	// Not-equal includes series lacking the label.
	got = sel(labels.MustMatcher(labels.MatchNotEq, "host", "a"))
	if len(got) != 5 {
		t.Fatalf("host!=a returned %d series, want 5 (b,c pairs + global)", len(got))
	}
	// Empty-value equality selects exactly the label-less series.
	got = sel(labels.MustMatcher(labels.MatchEq, "host", ""))
	if !reflect.DeepEqual(got, []SeriesID{global}) {
		t.Fatalf(`host="": %v want [%d]`, got, global)
	}
	// host!="" excludes it.
	got = sel(labels.MustMatcher(labels.MatchNotEq, "host", ""))
	if len(got) != 6 {
		t.Fatalf(`host!="" returned %d series, want 6`, len(got))
	}
	// Non-matching selector: empty result, not an error.
	if got := sel(labels.MustMatcher(labels.MatchEq, "host", "nope")); len(got) != 0 {
		t.Fatalf("host=nope: %v", got)
	}
	// Anchoring: =~"a" must not pick up a multi-char value starting with a.
	if _, _, err := x.EnsureSeries(testSet(t, "host", "ab", "metric", "cpu")); err != nil {
		t.Fatal(err)
	}
	got = sel(labels.MustMatcher(labels.MatchRe, "host", "a"))
	if !reflect.DeepEqual(got, []SeriesID{ids["a/cpu"], ids["a/mem"]}) {
		t.Fatalf("host=~a matched unanchored: %v", got)
	}
}

func TestCatalogReplayKeepsIDs(t *testing.T) {
	dir := t.TempDir()
	x := mustOpen(t, dir)
	want := map[SeriesID]string{}
	for i := 0; i < 100; i++ {
		ls := testSet(t, "host", fmt.Sprintf("h%02d", i%10), "metric", fmt.Sprintf("m%d", i/10))
		id, created, err := x.EnsureSeries(ls)
		if err != nil || !created {
			t.Fatalf("EnsureSeries %d: created=%v err=%v", i, created, err)
		}
		want[id] = ls.Canonical()
	}
	st := x.Stats()
	if st.Series != 100 || st.LabelPairs != 20 || st.PostingsEntries != 200 {
		t.Fatalf("stats before restart: %+v", st)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	y := mustOpen(t, dir)
	defer y.Close()
	if y.NumSeries() != 100 {
		t.Fatalf("replayed %d series, want 100", y.NumSeries())
	}
	for id, canonical := range want {
		ls, ok := y.Series(id)
		if !ok || ls.Canonical() != canonical {
			t.Fatalf("series %d: got %q ok=%v want %q", id, ls.Canonical(), ok, canonical)
		}
	}
	// New registrations continue past the replayed IDs.
	id, created, err := y.EnsureSeries(testSet(t, "host", "new"))
	if err != nil || !created || id != 100 {
		t.Fatalf("post-replay EnsureSeries: id=%d created=%v err=%v", id, created, err)
	}
	// Selection works over replayed postings.
	got := y.Select([]*labels.Matcher{labels.MustMatcher(labels.MatchEq, "host", "h03")})
	if len(got) != 10 {
		t.Fatalf("post-replay select: %d series, want 10", len(got))
	}
}

func TestReplayErrorsOnMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	x := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		if _, _, err := x.EnsureSeries(testSet(t, "host", fmt.Sprintf("h%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	x.Close()

	path := filepath.Join(dir, catalogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the middle: replay must refuse. The offset
	// lands inside record 5's payload (each record here is 16 bytes:
	// 4 length + 8 payload + 4 CRC), not in a length prefix — a mangled
	// length prefix is indistinguishable from a torn tail.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2+5] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted mid-file corruption")
	}

	// A torn tail (truncated final record) is recovered from: the torn
	// record is dropped and the rest replays.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	y, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer y.Close()
	if y.NumSeries() != 9 {
		t.Fatalf("torn-tail replay kept %d series, want 9", y.NumSeries())
	}
	// The healed catalog re-registers the lost series under a fresh ID.
	id, created, err := y.EnsureSeries(testSet(t, "host", "h9"))
	if err != nil || !created || id != 9 {
		t.Fatalf("re-register after torn tail: id=%d created=%v err=%v", id, created, err)
	}
}

func TestConcurrentEnsureSeries(t *testing.T) {
	x := mustOpen(t, t.TempDir())
	defer x.Close()
	const workers = 8
	done := make(chan map[string]SeriesID, workers)
	for w := 0; w < workers; w++ {
		go func() {
			got := map[string]SeriesID{}
			for i := 0; i < 50; i++ {
				ls := testSet(t, "host", fmt.Sprintf("h%d", i))
				id, _, err := x.EnsureSeries(ls)
				if err != nil {
					panic(err)
				}
				got[ls.Canonical()] = id
			}
			done <- got
		}()
	}
	first := <-done
	for w := 1; w < workers; w++ {
		if got := <-done; !reflect.DeepEqual(got, first) {
			t.Fatalf("workers disagree on ids")
		}
	}
	if x.NumSeries() != 50 {
		t.Fatalf("NumSeries = %d, want 50", x.NumSeries())
	}
}
