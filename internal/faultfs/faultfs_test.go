package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.dat")
	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.dat")); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "b.dat"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := OS.Remove(filepath.Join(dir, "b.dat")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorKillsAtKthOp(t *testing.T) {
	dir := t.TempDir()
	// Ops: 1 create, 2 write, 3 sync, 4 rename. Kill at the sync.
	inj := NewInjector(OS, 3)
	f, err := inj.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync at kill point: got %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector should report crashed")
	}
	// Everything after the crash fails and has no effect.
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: got %v", err)
	}
	if err := inj.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: got %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close must stay available after crash: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "x"))
	if err != nil || string(got) != "abcd" {
		t.Fatalf("pre-crash write must survive intact: %q, %v", got, err)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, 2) // kill on the first write
	f, err := inj.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if n != 4 {
		t.Fatalf("torn write should land half the buffer, landed %d", n)
	}
	f.Close()
	got, _ := os.ReadFile(filepath.Join(dir, "x"))
	if string(got) != "abcd" {
		t.Fatalf("torn prefix on disk: %q", got)
	}
}

func TestInjectorCountsWithoutKill(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, 0)
	f, _ := inj.Create(filepath.Join(dir, "x"))
	f.Write([]byte("a"))
	f.Sync()
	f.Close()
	inj.Remove(filepath.Join(dir, "x"))
	if inj.Crashed() {
		t.Fatal("killAfter=0 must never crash")
	}
	if got := inj.Ops(); got != 4 {
		t.Fatalf("counted %d ops, want 4 (create, write, sync, remove)", got)
	}
}

func TestHookFSTargetedFailure(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	fs := &HookFS{Under: OS, Hook: func(op Op, path string) error {
		if op == OpRename && strings.HasSuffix(path, ".tmp") {
			return boom
		}
		return nil
	}}
	f, err := fs.Create(filepath.Join(dir, "c.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Rename(filepath.Join(dir, "c.tmp"), filepath.Join(dir, "c")); !errors.Is(err, boom) {
		t.Fatalf("hooked rename: got %v", err)
	}
	if err := fs.Remove(filepath.Join(dir, "c.tmp")); err != nil {
		t.Fatalf("unhooked remove: %v", err)
	}
}
