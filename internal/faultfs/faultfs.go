// Package faultfs is a minimal filesystem seam for the storage
// engine's write path. The WAL and tsfile writers perform every
// durability-relevant operation — create, write, fsync, rename,
// remove, directory fsync — through the FS interface, with an
// os-backed default that adds no overhead beyond one interface call.
//
// The point of the seam is the Injector: a wrapping FS that counts
// operations and "kills the process" at the k-th one — the triggering
// write lands only a torn prefix (like a machine losing power
// mid-write) and every later operation fails with ErrCrashed, so
// nothing after the crash point can reach the disk. A crash-matrix
// test sweeps k across an entire ingestion run, recovers from the
// surviving directory state with the real filesystem, and asserts the
// engine's durability contract at every possible interleaving.
//
// HookFS is the targeted sibling: it consults a callback before each
// operation, so a test can fail exactly "the rename of the second
// chunk file" without counting operations.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// File is the write-side file surface the storage engine needs. Reads
// go through plain *os.File handles — crash injection only concerns
// mutations.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the write-side filesystem surface.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// MkdirAll creates path and any missing parents (the engine's
	// time-partition/level directories).
	MkdirAll(path string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// SyncDir fsyncs the directory itself, making renames, creates
	// and removes inside it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error)     { return os.Create(path) }
func (osFS) MkdirAll(path string) error           { return os.MkdirAll(path, 0o755) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// ErrCrashed is returned by every operation attempted at or after an
// Injector's kill point.
var ErrCrashed = errors.New("faultfs: crashed")

// Op identifies one filesystem operation kind, for HookFS callbacks
// and crash diagnostics.
type Op uint8

// Operation kinds.
const (
	OpCreate Op = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpSyncDir
	OpMkdirAll
)

func (op Op) String() string {
	switch op {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	case OpMkdirAll:
		return "mkdirall"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Injector wraps an FS and simulates a process kill at the k-th
// operation: the k-th write applies only a torn prefix, any other
// k-th operation has no effect, and everything afterwards fails with
// ErrCrashed. Close is never counted or failed — closing a file
// descriptor frees a process resource but mutates no durable state,
// and the tests need it so abandoned engines do not leak fds.
//
// An Injector is safe for concurrent use; the operation counter gives
// concurrent histories a total order.
type Injector struct {
	under FS

	mu        sync.Mutex
	killAfter int64 // crash on the op that makes count exceed this; <= 0 never
	count     int64
	crashed   bool
	crashOp   Op
}

// NewInjector returns an Injector over under that crashes at the
// killAfter-th operation (1-based). killAfter <= 0 never crashes —
// the Injector then only counts, which is how the crash matrix
// measures a run's total operation count.
func NewInjector(under FS, killAfter int) *Injector {
	return &Injector{under: under, killAfter: int64(killAfter)}
}

// step accounts one operation. It returns (true, nil) when the
// operation should proceed normally, (false, err) when it must fail,
// and (false, nil) exactly at the kill point — the caller then applies
// its torn-crash behavior and reports ErrCrashed.
func (i *Injector) step(op Op) (proceed bool, err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return false, fmt.Errorf("%w (at %s)", ErrCrashed, i.crashOp)
	}
	i.count++
	if i.killAfter > 0 && i.count >= i.killAfter {
		i.crashed = true
		i.crashOp = op
		return false, nil
	}
	return true, nil
}

// Crashed reports whether the kill point was reached.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Ops returns how many operations have been counted so far.
func (i *Injector) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.count
}

func (i *Injector) Create(path string) (File, error) {
	proceed, err := i.step(OpCreate)
	if err != nil {
		return nil, err
	}
	if !proceed {
		// Crash during create: like a kill between the open syscall
		// and anything using it — no file appears.
		return nil, fmt.Errorf("%w (create %s)", ErrCrashed, path)
	}
	f, err := i.under.Create(path)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

func (i *Injector) MkdirAll(path string) error {
	proceed, err := i.step(OpMkdirAll)
	if err != nil {
		return err
	}
	if !proceed {
		// Crash during mkdir: like rename, each directory either exists
		// fully or not at all. Model "not at all".
		return fmt.Errorf("%w (mkdirall %s)", ErrCrashed, path)
	}
	return i.under.MkdirAll(path)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	proceed, err := i.step(OpRename)
	if err != nil {
		return err
	}
	if !proceed {
		// rename(2) is atomic: a crash either lands it fully or not at
		// all. Model the "not at all" half — the old path survives.
		return fmt.Errorf("%w (rename %s)", ErrCrashed, oldpath)
	}
	return i.under.Rename(oldpath, newpath)
}

func (i *Injector) Remove(path string) error {
	proceed, err := i.step(OpRemove)
	if err != nil {
		return err
	}
	if !proceed {
		return fmt.Errorf("%w (remove %s)", ErrCrashed, path)
	}
	return i.under.Remove(path)
}

func (i *Injector) SyncDir(dir string) error {
	proceed, err := i.step(OpSyncDir)
	if err != nil {
		return err
	}
	if !proceed {
		return fmt.Errorf("%w (syncdir %s)", ErrCrashed, dir)
	}
	return i.under.SyncDir(dir)
}

// injFile threads the injector through per-file operations.
type injFile struct {
	inj *Injector
	f   File
}

func (f *injFile) Name() string { return f.f.Name() }

// Close is deliberately uninstrumented; see Injector.
func (f *injFile) Close() error { return f.f.Close() }

func (f *injFile) Write(p []byte) (int, error) {
	proceed, err := f.inj.step(OpWrite)
	if err != nil {
		return 0, err
	}
	if !proceed {
		// Torn write: half the buffer reaches the file, then the
		// process dies. Recovery must treat the tail as garbage.
		n := len(p) / 2
		if n > 0 {
			f.f.Write(p[:n])
		}
		return n, fmt.Errorf("%w (write %s)", ErrCrashed, f.f.Name())
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	proceed, err := f.inj.step(OpSync)
	if err != nil {
		return err
	}
	if !proceed {
		// Crash during fsync: the sync never completed, so no
		// durability may be assumed from it.
		return fmt.Errorf("%w (sync %s)", ErrCrashed, f.f.Name())
	}
	return f.f.Sync()
}

// HookFS consults Hook before every operation (including writes and
// syncs on files it created); a non-nil return fails the operation
// without touching the underlying FS. A nil Hook passes everything
// through.
type HookFS struct {
	Under FS
	Hook  func(op Op, path string) error
}

func (h *HookFS) check(op Op, path string) error {
	if h.Hook == nil {
		return nil
	}
	return h.Hook(op, path)
}

func (h *HookFS) Create(path string) (File, error) {
	if err := h.check(OpCreate, path); err != nil {
		return nil, err
	}
	f, err := h.Under.Create(path)
	if err != nil {
		return nil, err
	}
	return &hookFile{fs: h, f: f}, nil
}

func (h *HookFS) MkdirAll(path string) error {
	if err := h.check(OpMkdirAll, path); err != nil {
		return err
	}
	return h.Under.MkdirAll(path)
}

func (h *HookFS) Rename(oldpath, newpath string) error {
	if err := h.check(OpRename, oldpath); err != nil {
		return err
	}
	return h.Under.Rename(oldpath, newpath)
}

func (h *HookFS) Remove(path string) error {
	if err := h.check(OpRemove, path); err != nil {
		return err
	}
	return h.Under.Remove(path)
}

func (h *HookFS) SyncDir(dir string) error {
	if err := h.check(OpSyncDir, dir); err != nil {
		return err
	}
	return h.Under.SyncDir(dir)
}

type hookFile struct {
	fs *HookFS
	f  File
}

func (f *hookFile) Name() string { return f.f.Name() }
func (f *hookFile) Close() error { return f.f.Close() }

func (f *hookFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite, f.f.Name()); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *hookFile) Sync() error {
	if err := f.fs.check(OpSync, f.f.Name()); err != nil {
		return err
	}
	return f.f.Sync()
}
