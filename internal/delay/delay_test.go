package delay

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstant(t *testing.T) {
	c := Constant{C: 3}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := c.Sample(r); got != 3 {
			t.Fatalf("Sample = %g, want 3", got)
		}
	}
	if c.DeltaTauTail(0) != 0 || c.DeltaTauTail(-1) != 1 {
		t.Fatal("Constant tail wrong")
	}
}

func TestExponentialClosedFormExample6(t *testing.T) {
	// Example 6 of the paper: λ=2 gives E[α_1] = 1/(2e^2) ≈ 0.067668
	// and E[α_5] = 1/(2e^10)… the paper prints α_5 = 1/(2e^5) with
	// λ=1-scaled exponent; our closed form is e^{−λL}/2.
	e := Exponential{Lambda: 2}
	if got, want := e.DeltaTauTail(1), 1/(2*math.E*math.E); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tail(1) = %g, want %g", got, want)
	}
	e1 := Exponential{Lambda: 1}
	if got, want := e1.DeltaTauTail(5), 1/(2*math.Exp(5)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tail(5) = %g, want %g", got, want)
	}
}

func TestExponentialTailMatchesMonteCarlo(t *testing.T) {
	// Proposition 2 sanity: Monte Carlo Δτ tail matches closed form.
	e := Exponential{Lambda: 2}
	for _, L := range []float64{0, 1, 2} {
		mc := EmpiricalDeltaTauTail(e, L, 400000, 42)
		cf := e.DeltaTauTail(L)
		if math.Abs(mc-cf) > 0.004 {
			t.Errorf("L=%g: MC tail %g vs closed form %g", L, mc, cf)
		}
	}
}

func TestExponentialPDFEven(t *testing.T) {
	// Proposition 1: f_Δτ is an even function.
	e := Exponential{Lambda: 3}
	for _, x := range []float64{0.1, 0.5, 1, 2.5} {
		if math.Abs(e.DeltaTauPDF(x)-e.DeltaTauPDF(-x)) > 1e-15 {
			t.Fatalf("PDF not even at %g", x)
		}
	}
	// Integrates to ~1.
	sum := 0.0
	const dx = 1e-3
	for x := -12.0; x < 12.0; x += dx {
		sum += e.DeltaTauPDF(x) * dx
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("PDF integrates to %g, want 1", sum)
	}
}

func TestAbsNormalNonNegative(t *testing.T) {
	d := AbsNormal{Mu: 1, Sigma: 4}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		if d.Sample(r) < 0 {
			t.Fatal("AbsNormal produced a negative delay")
		}
	}
}

func TestLogNormalPositiveAndDegenerate(t *testing.T) {
	d := LogNormal{Mu: 1, Sigma: 2}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		if d.Sample(r) <= 0 {
			t.Fatal("LogNormal produced a non-positive delay")
		}
	}
	// σ=0 is the constant e^μ: every delay equal, fully ordered.
	d0 := LogNormal{Mu: 1, Sigma: 0}
	want := math.E
	for i := 0; i < 100; i++ {
		if got := d0.Sample(r); math.Abs(got-want) > 1e-12 {
			t.Fatalf("LogNormal(1,0) sample %g, want e", got)
		}
	}
}

func TestDiscreteUniformExample7(t *testing.T) {
	// Example 7: K=3 gives E(Q) = E(Δτ|Δτ≥0) = 5/8, and the three
	// summed tails F̄(1)+F̄(2)+F̄(3)… the closed check: Σ_{k≥0}F̄(k).
	d := DiscreteUniform{K: 3}
	if got := d.MeanNonNegDeltaTau(); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("E(Δτ|Δτ≥0) = %g, want 5/8", got)
	}
	// Individual strict tails P(Δτ > k); the 6/16, 3/16, 1/16 terms
	// of the paper's Eq. 22 are these at k = 0, 1, 2.
	wants := map[int]float64{0: 6.0 / 16, 1: 3.0 / 16, 2: 1.0 / 16, 3: 0}
	for L, w := range wants {
		if got := d.DeltaTauTail(float64(L)); math.Abs(got-w) > 1e-12 {
			t.Errorf("tail(%d) = %g, want %g", L, got, w)
		}
	}
}

func TestDiscreteUniformTailMatchesMC(t *testing.T) {
	d := DiscreteUniform{K: 3}
	for _, L := range []float64{0, 1, 2, 3} {
		mc := EmpiricalDeltaTauTail(d, L, 300000, 5)
		cf := d.DeltaTauTail(L)
		if math.Abs(mc-cf) > 0.005 {
			t.Errorf("L=%g: MC %g vs closed %g", L, mc, cf)
		}
	}
}

func TestMixture(t *testing.T) {
	m := Mixture{P: 0.75, A: Constant{C: 0}, B: Constant{C: 9}}
	r := rand.New(rand.NewSource(3))
	zeros := 0
	const n = 100000
	for i := 0; i < n; i++ {
		switch m.Sample(r) {
		case 0:
			zeros++
		case 9:
		default:
			t.Fatal("mixture produced a value from neither component")
		}
	}
	frac := float64(zeros) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("mixture P estimate %g, want 0.75", frac)
	}
}

func TestTruncated(t *testing.T) {
	tr := Truncated{Inner: Exponential{Lambda: 0.01}, Max: 5}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		if v := tr.Sample(r); v > 5 {
			t.Fatalf("truncated sample %g exceeds max", v)
		}
	}
}

func TestMeanNonNegDeltaTauMC(t *testing.T) {
	d := DiscreteUniform{K: 3}
	got := MeanNonNegDeltaTauMC(d, 400000, 11)
	// E[Δτ | Δτ >= 0]: mass at 0 is 4/16, 1:3/16, 2:2/16, 3:1/16 →
	// conditional mean = (0*4+1*3+2*2+3*1)/10 = 1.
	if math.Abs(got-1.0) > 0.02 {
		t.Fatalf("conditional mean = %g, want 1.0", got)
	}
}

func TestPareto(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 3}
	r := rand.New(rand.NewSource(6))
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := p.Sample(r)
		if v < 2 {
			t.Fatalf("Pareto sample %g below scale", v)
		}
		sum += v
	}
	// Mean of Pareto(2,3) is α·xm/(α−1) = 3.
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("Pareto mean %g, want 3", mean)
	}
}

func TestClockSkew(t *testing.T) {
	c := ClockSkew{P: 0.3, Skew: 50, Jitter: 0.5}
	r := rand.New(rand.NewSource(6))
	skewed := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := c.Sample(r)
		if v < 0 {
			t.Fatal("negative delay")
		}
		if v >= 40 {
			skewed++
		}
	}
	frac := float64(skewed) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("skewed fraction %g, want 0.3", frac)
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		d    Distribution
		want string
	}{
		{Constant{C: 1}, "Constant(1)"},
		{Exponential{Lambda: 2}, "Exponential(2)"},
		{AbsNormal{Mu: 1, Sigma: 4}, "AbsNormal(1,4)"},
		{LogNormal{Mu: 0, Sigma: 1}, "LogNormal(0,1)"},
		{DiscreteUniform{K: 3}, "DiscreteUniform{0..3}"},
	}
	for _, c := range cases {
		if got := c.d.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
