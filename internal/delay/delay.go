// Package delay implements the delay-time distributions of Definition 5
// in the paper: the order of an ingested time series is determined by
// the generation time t plus an i.i.d. delay τ drawn from a
// distribution D. The package also carries the analytic results of
// Section IV where they exist in closed form, most importantly the
// tail of the delay difference Δτ = τ_i − τ_j, which by Proposition 2
// equals the expected interval inversion ratio: E[α_L] = F̄_Δτ(L).
package delay

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution is a delay-time distribution D in the sense of
// Definition 5. Delays are expressed in units of the generation
// interval (the paper normalizes the interval to 1).
type Distribution interface {
	// Name identifies the distribution in experiment output,
	// e.g. "LogNormal(1,2)".
	Name() string
	// Sample draws one delay. Delays are always >= 0 (delay-only).
	Sample(r *rand.Rand) float64
}

// TailedDistribution is implemented by distributions whose delay
// difference tail F̄_Δτ(L) = P(Δτ > L) is known in closed form.
type TailedDistribution interface {
	Distribution
	// DeltaTauTail returns F̄_Δτ(L) = P(Δτ > L), which by
	// Proposition 2 equals the expected interval inversion ratio
	// with interval L.
	DeltaTauTail(L float64) float64
}

// Constant is the degenerate distribution τ ≡ C. With C constant every
// point is shifted equally, so the arrival order is exactly the
// generation order: a fully sorted series.
type Constant struct{ C float64 }

// Name implements Distribution.
func (c Constant) Name() string { return fmt.Sprintf("Constant(%g)", c.C) }

// Sample implements Distribution.
func (c Constant) Sample(*rand.Rand) float64 { return c.C }

// DeltaTauTail implements TailedDistribution: Δτ ≡ 0.
func (c Constant) DeltaTauTail(L float64) float64 {
	if L < 0 {
		return 1
	}
	return 0
}

// Exponential is τ ~ E(λ), the worked Example 6 of the paper:
// f_Δτ(t) = (λ/2)·e^{−λ|t|} and E[α_L] = e^{−λL}/2.
type Exponential struct{ Lambda float64 }

// Name implements Distribution.
func (e Exponential) Name() string { return fmt.Sprintf("Exponential(%g)", e.Lambda) }

// Sample implements Distribution.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Lambda }

// DeltaTauTail returns the closed form of Example 6,
// E[α_L] = e^{−λL}/2 for L >= 0.
func (e Exponential) DeltaTauTail(L float64) float64 {
	if L < 0 {
		return 1 - 0.5*math.Exp(e.Lambda*L)
	}
	return 0.5 * math.Exp(-e.Lambda*L)
}

// DeltaTauPDF returns the probability density of the delay difference
// Δτ at t, f_Δτ(t) = (λ/2)·e^{−λ|t|} (Figure 5 of the paper). By
// Proposition 1 it is an even function.
func (e Exponential) DeltaTauPDF(t float64) float64 {
	return 0.5 * e.Lambda * math.Exp(-e.Lambda*math.Abs(t))
}

// AbsNormal is τ = |N(μ,σ)|, the AbsNormal synthetic dataset of the
// paper (borrowed from the Patience Sort evaluation).
type AbsNormal struct{ Mu, Sigma float64 }

// Name implements Distribution.
func (a AbsNormal) Name() string { return fmt.Sprintf("AbsNormal(%g,%g)", a.Mu, a.Sigma) }

// Sample implements Distribution.
func (a AbsNormal) Sample(r *rand.Rand) float64 {
	return math.Abs(r.NormFloat64()*a.Sigma + a.Mu)
}

// LogNormal is τ ~ exp(N(μ,σ)), the LogNormal synthetic dataset of the
// paper. σ = 0 degenerates to the constant delay e^μ (fully ordered),
// matching the paper's "LogNormal(1,0) means no delayed points".
type LogNormal struct{ Mu, Sigma float64 }

// Name implements Distribution.
func (l LogNormal) Name() string { return fmt.Sprintf("LogNormal(%g,%g)", l.Mu, l.Sigma) }

// Sample implements Distribution.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(r.NormFloat64()*l.Sigma + l.Mu)
}

// DiscreteUniform is P(τ = k) = 1/(K+1) for k ∈ {0,…,K}, the
// distribution of the paper's Example 7 (K = 3 there, giving
// E(Q) = E(Δτ | Δτ ≥ 0) = 5/8).
type DiscreteUniform struct{ K int }

// Name implements Distribution.
func (d DiscreteUniform) Name() string { return fmt.Sprintf("DiscreteUniform{0..%d}", d.K) }

// Sample implements Distribution.
func (d DiscreteUniform) Sample(r *rand.Rand) float64 {
	return float64(r.Intn(d.K + 1))
}

// DeltaTauTail returns P(Δτ > L) for integer-valued Δτ with the
// triangular PMF of the difference of two independent uniforms:
// P(Δτ = d) = (K+1−|d|)/(K+1)² for |d| ≤ K.
func (d DiscreteUniform) DeltaTauTail(L float64) float64 {
	n := float64(d.K + 1)
	sum := 0.0
	for dd := -d.K; dd <= d.K; dd++ {
		if float64(dd) > L {
			sum += (n - math.Abs(float64(dd))) / (n * n)
		}
	}
	return sum
}

// MeanNonNegDeltaTau returns E(Δτ | Δτ ≥ 0) computed as Σ_{k≥0} F̄(k)
// (Equation 20), the expected overlap length bound of Proposition 4.
func (d DiscreteUniform) MeanNonNegDeltaTau() float64 {
	sum := 0.0
	for k := 0; k <= d.K; k++ {
		sum += d.DeltaTauTail(float64(k))
	}
	return sum
}

// Mixture draws from A with probability P and otherwise from B. It is
// used to model sensors where most points arrive in order and a small
// fraction are delayed (the Samsung-style datasets).
type Mixture struct {
	P    float64 // probability of drawing from A
	A, B Distribution
}

// Name implements Distribution.
func (m Mixture) Name() string {
	return fmt.Sprintf("Mixture(%.3g*%s + %.3g*%s)", m.P, m.A.Name(), 1-m.P, m.B.Name())
}

// Sample implements Distribution.
func (m Mixture) Sample(r *rand.Rand) float64 {
	if r.Float64() < m.P {
		return m.A.Sample(r)
	}
	return m.B.Sample(r)
}

// Truncated clamps samples of Inner to at most Max. It keeps
// heavy-tailed models inside the "not-too-distant" regime that the
// separation policy guarantees in Apache IoTDB (extreme delays are
// routed to the unsequence memtable and never reach the sorter).
type Truncated struct {
	Inner Distribution
	Max   float64
}

// Name implements Distribution.
func (t Truncated) Name() string { return fmt.Sprintf("Trunc(%s,%g)", t.Inner.Name(), t.Max) }

// Sample implements Distribution.
func (t Truncated) Sample(r *rand.Rand) float64 {
	v := t.Inner.Sample(r)
	if v > t.Max {
		return t.Max
	}
	return v
}

// Pareto is a heavy-tailed delay, τ = Xm·U^(−1/α) for U ~ Uniform(0,1):
// the power-law tails seen when network outages back up deliveries.
// α <= 1 has infinite mean — exactly the regime the separation policy
// exists to cut off (wrap in Truncated for the sorter's input).
type Pareto struct {
	Xm    float64 // scale (minimum delay), > 0
	Alpha float64 // tail exponent, > 0
}

// Name implements Distribution.
func (p Pareto) Name() string { return fmt.Sprintf("Pareto(%g,%g)", p.Xm, p.Alpha) }

// Sample implements Distribution.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64() // (0, 1]
	return p.Xm * math.Pow(u, -1/p.Alpha)
}

// ClockSkew models the clock-skew disorder source of Section II: a
// fraction P of points come from a device whose clock lags by Skew
// intervals (plus jitter), the rest arrive with small jitter only.
// Unlike pure network delay, skew shifts points by a near-constant
// amount, producing long runs of displaced points.
type ClockSkew struct {
	P      float64 // fraction of skewed points
	Skew   float64 // lag of the skewed device's clock, in intervals
	Jitter float64 // |N(0, Jitter)| noise on every point
}

// Name implements Distribution.
func (c ClockSkew) Name() string {
	return fmt.Sprintf("ClockSkew(p=%g,skew=%g,jitter=%g)", c.P, c.Skew, c.Jitter)
}

// Sample implements Distribution.
func (c ClockSkew) Sample(r *rand.Rand) float64 {
	d := math.Abs(r.NormFloat64() * c.Jitter)
	if r.Float64() < c.P {
		d += c.Skew
	}
	return d
}

// EmpiricalDeltaTauTail estimates F̄_Δτ(L) by Monte Carlo with n draws
// of the pair (τ_i, τ_j). It is used for distributions without a
// closed-form tail and in tests validating Proposition 2.
func EmpiricalDeltaTauTail(d Distribution, L float64, n int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	count := 0
	for i := 0; i < n; i++ {
		if d.Sample(r)-d.Sample(r) > L {
			count++
		}
	}
	return float64(count) / float64(n)
}

// MeanNonNegDeltaTauMC estimates E(Δτ | Δτ ≥ 0)·P(Δτ ≥ 0)⁻¹-free
// quantity E(Δτ⁺ restricted): precisely Σ contribution used by
// Proposition 4, i.e. E[Δτ · 1{Δτ ≥ 0}] / P(Δτ ≥ 0).
func MeanNonNegDeltaTauMC(d Distribution, n int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		dt := d.Sample(r) - d.Sample(r)
		if dt >= 0 {
			sum += dt
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
