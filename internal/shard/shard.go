// Package shard implements the storage-group layer: a Router that
// hash-partitions sensors across N independent engine.Engine instances
// ("shards"), the way IoTDB deployments partition series into storage
// groups so ingestion, flushing and recovery scale across cores and
// directories. Each shard owns its own data directory (shard-%03d/
// under the router root), its own WAL segments and its own memtable
// budget; one machine-wide sort/encode worker pool is shared by every
// shard so N shards cannot oversubscribe the CPU.
//
// Routing is FNV-1a over the sensor id, modulo the shard count — a
// pure function of (sensor, N), so the same sensor lands on the same
// shard across restarts as long as N is unchanged (Open rejects a
// directory whose recorded layout disagrees with the requested count).
//
// The Router exposes the full engine surface. Single-sensor operations
// (Insert, InsertBatch, Query, LatestTime, Aggregate) go to the owning
// shard only; engine-wide operations (Flush, WaitFlushes, Compact,
// Close) fan out to every shard in parallel and return the first error
// by shard order; Stats merges per-shard snapshots into one aggregate
// while keeping the per-shard breakdown available via ShardStats.
package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/winagg"
)

// Config configures a Router. The embedded engine.Config is the
// per-shard template: Dir is the router's root directory (each shard
// lives in Dir/shard-%03d), MemTableSize is the per-shard flush
// threshold, and the remaining fields apply to every shard verbatim.
// SharedPool and FlushWorkers interact as follows: the router always
// builds one engine.SharedFlushPool of FlushWorkers workers (default
// GOMAXPROCS) and hands it to every shard, so the flush-concurrency
// bound is global, not per shard.
type Config struct {
	engine.Config
	// ShardCount is the number of engine shards (default GOMAXPROCS).
	// It must match the layout of an existing data directory.
	ShardCount int
	// FanOutWorkers bounds the per-selector-query worker pool that runs
	// multi-series fan-out (default GOMAXPROCS). It limits concurrency
	// within one selector query; concurrent queries each get their own
	// budget, matching how per-shard engine locks already serialize.
	FanOutWorkers int
}

// Router fans the engine API out over hash-partitioned shards. All
// methods are safe for concurrent use.
type Router struct {
	cfg    Config
	shards []*engine.Engine
	pool   *engine.SharedFlushPool

	// Label-series layer (labels.go): store-level inverted index plus
	// selector fan-out accounting.
	idx             *index.Index
	fanWorkers      int
	selectorQueries atomic.Int64
	fanoutSeries    atomic.Int64
	maxFanoutWidth  atomic.Int64
}

// shardDirFmt is the per-shard directory name layout under the root.
const shardDirFmt = "shard-%03d"

// Index returns the shard index FNV-1a assigns to sensor among n
// shards. It is exported so tests (and operators reading per-shard
// stats) can predict placement; the function is stable — changing it
// would orphan existing data directories.
func Index(sensor string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(sensor); i++ {
		h ^= uint64(sensor[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Open creates or reopens a sharded store rooted at cfg.Dir. Shards
// are opened concurrently, so per-shard WAL recovery (when
// cfg.WAL is set) runs in parallel too. Reopening a directory with a
// different ShardCount fails: hash routing is stable only for a fixed
// N, so a mismatch would silently strand data on unreachable shards.
func Open(cfg Config) (*Router, error) {
	if cfg.ShardCount < 0 {
		return nil, fmt.Errorf("shard: ShardCount must be positive, got %d", cfg.ShardCount)
	}
	if cfg.ShardCount == 0 {
		cfg.ShardCount = runtime.GOMAXPROCS(0)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shard: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if existing, err := countShardDirs(cfg.Dir); err != nil {
		return nil, err
	} else if existing > 0 && existing != cfg.ShardCount {
		return nil, fmt.Errorf("shard: directory %s holds %d shard(s) but %d requested; routing would not be stable",
			cfg.Dir, existing, cfg.ShardCount)
	}

	r := &Router{
		cfg:    cfg,
		shards: make([]*engine.Engine, cfg.ShardCount),
		pool:   engine.NewSharedFlushPool(cfg.FlushWorkers),
	}
	errs := make([]error, cfg.ShardCount)
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shardCfg := cfg.Config
			shardCfg.Dir = filepath.Join(cfg.Dir, fmt.Sprintf(shardDirFmt, i))
			shardCfg.SharedPool = r.pool
			r.shards[i], errs[i] = engine.Open(shardCfg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Close whatever did open, then surface the first failure.
			for _, e := range r.shards {
				if e != nil {
					e.Close()
				}
			}
			r.pool.Close()
			return nil, fmt.Errorf("shard: open: %w", err)
		}
	}

	// The label-series index is store-level, beside the shard dirs. It
	// inherits the engine's filesystem seam and follows the WAL's
	// durability posture: if acknowledged writes survive crashes, so
	// must acknowledged series registrations.
	fs := cfg.FS
	if fs == nil {
		fs = faultfs.OS
	}
	idx, err := index.Open(filepath.Join(cfg.Dir, "index"), index.Options{
		FS:      fs,
		Durable: cfg.WAL && cfg.WALSync != "" && cfg.WALSync != engine.WALSyncNone,
	})
	if err != nil {
		for _, e := range r.shards {
			e.Close()
		}
		r.pool.Close()
		return nil, fmt.Errorf("shard: open index: %w", err)
	}
	r.idx = idx
	r.fanWorkers = cfg.FanOutWorkers
	if r.fanWorkers <= 0 {
		r.fanWorkers = runtime.GOMAXPROCS(0)
	}
	return r, nil
}

// countShardDirs counts shard-%03d subdirectories under root.
func countShardDirs(root string) (int, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range entries {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), "shard-") {
			n++
		}
	}
	return n, nil
}

// ShardCount returns the number of shards.
func (r *Router) ShardCount() int { return len(r.shards) }

// shardFor returns the engine owning sensor.
func (r *Router) shardFor(sensor string) *engine.Engine {
	return r.shards[Index(sensor, len(r.shards))]
}

// Insert ingests one point, routed to the sensor's shard.
func (r *Router) Insert(sensor string, t int64, v float64) error {
	return r.shardFor(sensor).Insert(sensor, t, v)
}

// InsertBatch ingests a batch for one sensor, routed to its shard.
func (r *Router) InsertBatch(sensor string, times []int64, values []float64) error {
	return r.shardFor(sensor).InsertBatch(sensor, times, values)
}

// Query returns sensor's records in [minT, maxT] from its shard.
func (r *Router) Query(sensor string, minT, maxT int64) ([]engine.TV, error) {
	return r.shardFor(sensor).Query(sensor, minT, maxT)
}

// LatestTime returns the newest ingested timestamp for sensor.
func (r *Router) LatestTime(sensor string) (int64, bool) {
	return r.shardFor(sensor).LatestTime(sensor)
}

// Aggregate runs a windowed aggregation over sensor on its shard:
// SELECT agg(value) GROUP BY window over the half-open [startT, endT).
func (r *Router) Aggregate(sensor string, startT, endT, window int64, agg query.Aggregator) ([]query.WindowResult, error) {
	return query.WindowQuery(r.shardFor(sensor), sensor, startT, endT, window, agg)
}

// AggregateWindows evaluates a windowed aggregate directly on the
// owning shard's engine. It makes the Router satisfy
// query.WindowAggregator, so query.WindowQuery over a Router keeps the
// engine's statistics pushdown instead of falling back to a
// materializing range query.
func (r *Router) AggregateWindows(sensor string, startT, endT, window int64, op winagg.Op) ([]winagg.Window, error) {
	return r.shardFor(sensor).AggregateWindows(sensor, startT, endT, window, op)
}

// fanOut runs f on every shard concurrently and returns the first
// error by shard order.
func (r *Router) fanOut(f func(*engine.Engine) error) error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, e := range r.shards {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			errs[i] = f(e)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush forces every shard's working memtables to disk, in parallel.
func (r *Router) Flush() {
	r.fanOut(func(e *engine.Engine) error {
		e.Flush()
		return nil
	})
}

// WaitFlushes blocks until every shard's in-flight background flushes
// have finished.
func (r *Router) WaitFlushes() {
	r.fanOut(func(e *engine.Engine) error {
		e.WaitFlushes()
		return nil
	})
}

// Compact folds every shard's flushed files, in parallel, returning
// the first error by shard order.
func (r *Router) Compact() error {
	return r.fanOut((*engine.Engine).Compact)
}

// DropPartitionsBefore removes every time partition wholly before
// cutoff on every shard (partitioned mode only), returning the total
// number of partition directories dropped and the first error by
// shard order.
func (r *Router) DropPartitionsBefore(cutoff int64) (int, error) {
	counts := make([]int, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, e := range r.shards {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			counts[i], errs[i] = e.DropPartitionsBefore(cutoff)
		}(i, e)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	for _, err := range errs {
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// FlushError returns the first recorded background flush failure
// across the shards, by shard order.
func (r *Router) FlushError() error {
	for _, e := range r.shards {
		if err := e.FlushError(); err != nil {
			return err
		}
	}
	return nil
}

// FileCount reports the total flushed-file count across shards.
func (r *Router) FileCount() int {
	n := 0
	for _, e := range r.shards {
		n += e.FileCount()
	}
	return n
}

// Close closes every shard in parallel (each flushes its remaining
// data and waits out its drains), then stops the shared flush pool.
// The first per-shard error by shard order is returned. Safe to call
// more than once and concurrently, like engine.Close.
func (r *Router) Close() error {
	err := r.fanOut((*engine.Engine).Close)
	// All shards are closed: no drain can submit pool work anymore.
	r.pool.Close()
	if cerr := r.idx.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns one aggregate snapshot merged across the shards (same
// shape an unsharded engine reports, so every existing consumer keeps
// working). Use ShardStats for the per-shard breakdown.
func (r *Router) Stats() engine.Stats {
	m := MergeStats(r.ShardStats())
	r.injectIndexStats(&m)
	return m
}

// StatsAll returns the merged aggregate and the per-shard snapshots
// from one collection pass, so the two views describe the same instant
// (the rpc server uses this for the OpStats payload).
func (r *Router) StatsAll() (engine.Stats, []engine.Stats) {
	per := r.ShardStats()
	m := MergeStats(per)
	r.injectIndexStats(&m)
	return m, per
}

// ShardStats returns one stats snapshot per shard, indexed by shard.
func (r *Router) ShardStats() []engine.Stats {
	out := make([]engine.Stats, len(r.shards))
	var wg sync.WaitGroup
	for i, e := range r.shards {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			out[i] = e.Stats()
		}(i, e)
	}
	wg.Wait()
	return out
}

// Algorithm returns the shards' configured sorting algorithm name.
func (r *Router) Algorithm() string { return r.shards[0].Algorithm() }

// MergeStats folds per-shard snapshots into one engine-shaped
// aggregate: counters sum; per-flush averages are weighted by each
// shard's flush count and per-wait averages by its wait count; the max
// lock wait is the max across shards, and the aggregate p99 is the
// worst per-shard p99 (a conservative upper bound — exact cross-shard
// percentiles would need the raw histograms). Configuration echoes
// (workers, thresholds) come from the first shard, which all shards
// share.
func MergeStats(per []engine.Stats) engine.Stats {
	var m engine.Stats
	if len(per) == 0 {
		return m
	}
	m.FlushWorkers = per[0].FlushWorkers
	m.SortParallelism = per[0].SortParallelism
	m.FlatSortThreshold = per[0].FlatSortThreshold
	m.AdaptiveSortEnabled = per[0].AdaptiveSortEnabled
	var flushWeight, lockWeight float64
	for _, s := range per {
		m.FlushCount += s.FlushCount
		m.SeqPoints += s.SeqPoints
		m.UnseqPoints += s.UnseqPoints
		m.Files += s.Files
		m.MemTablePoints += s.MemTablePoints
		m.SortsSkipped += s.SortsSkipped
		m.FlatSorts += s.FlatSorts
		m.InterfaceSorts += s.InterfaceSorts
		m.FlatSortMillis += s.FlatSortMillis
		m.InterfaceSortMillis += s.InterfaceSortMillis
		m.SketchSeededFlushes += s.SketchSeededFlushes
		m.SearchItersSaved += s.SearchItersSaved
		m.AdaptiveFixedSorts += s.AdaptiveFixedSorts
		m.AdaptiveSeededSorts += s.AdaptiveSeededSorts
		m.AdaptiveFlatRoutes += s.AdaptiveFlatRoutes
		m.AdaptiveIfaceRoutes += s.AdaptiveIfaceRoutes
		// The chosen-L histogram summary merges min-of-mins and
		// max-of-maxes; 0 means a shard has no planned sort yet.
		if s.AdaptiveMinL > 0 && (m.AdaptiveMinL == 0 || s.AdaptiveMinL < m.AdaptiveMinL) {
			m.AdaptiveMinL = s.AdaptiveMinL
		}
		if s.AdaptiveMaxL > m.AdaptiveMaxL {
			m.AdaptiveMaxL = s.AdaptiveMaxL
		}
		m.LockWaits += s.LockWaits
		m.QueriesBlocked += s.QueriesBlocked
		m.WALSyncs += s.WALSyncs
		m.WALCommits += s.WALCommits
		m.QuarantinedFiles += s.QuarantinedFiles
		m.RecoveredWALBatches += s.RecoveredWALBatches
		m.ChunksFromStats += s.ChunksFromStats
		m.ChunksDecoded += s.ChunksDecoded
		m.PointsSkipped += s.PointsSkipped
		m.BytesRead += s.BytesRead
		m.BlocksDecoded += s.BlocksDecoded
		m.BlocksSkipped += s.BlocksSkipped
		m.BlocksFromStats += s.BlocksFromStats
		m.CompactionPasses += s.CompactionPasses
		m.CompactionBytesRead += s.CompactionBytesRead
		if s.MaxCompactionPassBytes > m.MaxCompactionPassBytes {
			m.MaxCompactionPassBytes = s.MaxCompactionPassBytes
		}
		m.PartitionsDropped += s.PartitionsDropped
		m.PartitionsActive += s.PartitionsActive
		m.SeriesCount += s.SeriesCount
		m.LabelPairs += s.LabelPairs
		m.PostingsEntries += s.PostingsEntries
		m.MatcherResolutions += s.MatcherResolutions
		m.SelectorQueries += s.SelectorQueries
		m.FanoutSeries += s.FanoutSeries
		if s.MaxFanoutWidth > m.MaxFanoutWidth {
			m.MaxFanoutWidth = s.MaxFanoutWidth
		}

		w := float64(s.FlushCount)
		flushWeight += w
		m.AvgFlushMillis += s.AvgFlushMillis * w
		m.AvgSortMillis += s.AvgSortMillis * w
		m.AvgEncodeMillis += s.AvgEncodeMillis * w
		m.AvgWriteMillis += s.AvgWriteMillis * w

		lw := float64(s.LockWaits)
		lockWeight += lw
		m.AvgLockWaitMicros += s.AvgLockWaitMicros * lw
		if s.MaxLockWaitMicros > m.MaxLockWaitMicros {
			m.MaxLockWaitMicros = s.MaxLockWaitMicros
		}
		if s.P99LockWaitMicros > m.P99LockWaitMicros {
			m.P99LockWaitMicros = s.P99LockWaitMicros
		}
	}
	if flushWeight > 0 {
		m.AvgFlushMillis /= flushWeight
		m.AvgSortMillis /= flushWeight
		m.AvgEncodeMillis /= flushWeight
		m.AvgWriteMillis /= flushWeight
	}
	if lockWeight > 0 {
		m.AvgLockWaitMicros /= lockWeight
	}
	return m
}
