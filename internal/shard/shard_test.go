package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
)

// TestRoutingStable pins the hash function: routing is a pure function
// of (sensor, N), identical across processes and restarts. The golden
// values catch an accidental change to the FNV-1a constants or fold
// order — which would orphan every existing sharded data directory.
func TestRoutingStable(t *testing.T) {
	golden := []struct {
		sensor string
		n      int
		want   int
	}{
		{"", 4, 1},
		{"a", 4, 0},
		{"d0.s0", 4, 2},
		{"d0.s0", 1, 0},
		{"room.temp", 7, 2},
	}
	// Belt and braces: a hand-rolled FNV-1a fold must agree too, so a
	// refactor of Index cannot drift with the golden table.
	fold := func(s string) uint64 {
		h := uint64(14695981039346656037)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		return h
	}
	for _, g := range golden {
		if got := Index(g.sensor, g.n); got != g.want {
			t.Fatalf("Index(%q, %d) = %d, want %d", g.sensor, g.n, got, g.want)
		}
		if got, want := Index(g.sensor, g.n), int(fold(g.sensor)%uint64(g.n)); got != want {
			t.Fatalf("Index(%q, %d) = %d, FNV-1a fold says %d", g.sensor, g.n, got, want)
		}
	}

	// Property: stable across calls, in range, and every shard of a
	// 4-way split is reachable from a modest sensor population.
	r := rand.New(rand.NewSource(7))
	hit := make([]bool, 4)
	for i := 0; i < 2000; i++ {
		sensor := fmt.Sprintf("d%d.s%d", r.Intn(64), r.Intn(8))
		idx := Index(sensor, 4)
		if idx < 0 || idx >= 4 {
			t.Fatalf("Index(%q, 4) = %d out of range", sensor, idx)
		}
		if idx != Index(sensor, 4) {
			t.Fatalf("Index(%q, 4) unstable", sensor)
		}
		hit[idx] = true
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("shard %d unreachable across 2000 sensors", i)
		}
	}
}

// TestRoutingStableAcrossRestart writes through a router, reopens the
// directory, and checks every sensor still reads from the shard that
// holds its data (same sensor → same shard across restarts).
func TestRoutingStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ShardCount: 4, Config: engine.Config{Dir: dir, MemTableSize: 100, SyncFlush: true}}
	r1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sensors := make([]string, 24)
	for i := range sensors {
		sensors[i] = fmt.Sprintf("dev%d.sen%d", i/3, i%3)
		if err := r1.Insert(sensors[i], int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	r1.Flush()
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for i, s := range sensors {
		out, err := r2.Query(s, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0].T != int64(i) || out[0].V != float64(i) {
			t.Fatalf("sensor %q after restart: %+v", s, out)
		}
	}
}

// TestShardCountMismatchRejected: reopening with a different N would
// silently strand data on unreachable shards, so Open must refuse.
func TestShardCountMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{ShardCount: 4, Config: engine.Config{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{ShardCount: 2, Config: engine.Config{Dir: dir}}); err == nil {
		t.Fatal("reopening 4-shard dir with 2 shards should fail")
	}
}

// opRecord is one step of the recorded op sequence the equivalence
// test replays against both implementations.
type opRecord struct {
	kind   string // insert, query, latest, flush, compact, agg
	sensor string
	times  []int64
	values []float64
	minT   int64
	maxT   int64
}

// TestOneShardRouterMatchesBareEngine replays a recorded op sequence —
// out-of-order inserts, range queries, latest, flush, compact,
// windowed aggregation — against a bare engine and a 1-shard router
// with identical configs, and requires byte-for-byte identical results
// and identical data-path stats. This is the contract that lets
// cmd/repro run through the shard layer with ShardCount pinned to 1
// while still reproducing the paper's single-engine figures.
func TestOneShardRouterMatchesBareEngine(t *testing.T) {
	engCfg := engine.Config{MemTableSize: 300, SyncFlush: true, ArrayLen: 16}

	bareCfg := engCfg
	bareCfg.Dir = t.TempDir()
	bare, err := engine.Open(bareCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()

	routedCfg := engCfg
	routedCfg.Dir = t.TempDir()
	routed, err := Open(Config{ShardCount: 1, Config: routedCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer routed.Close()

	r := rand.New(rand.NewSource(42))
	sensors := []string{"d0.s0", "d0.s1", "d1.s0", "room.temp"}
	var ops []opRecord
	tick := int64(0)
	for i := 0; i < 400; i++ {
		sensor := sensors[r.Intn(len(sensors))]
		switch k := r.Intn(10); {
		case k < 6: // out-of-order batch insert
			n := 1 + r.Intn(20)
			times := make([]int64, n)
			values := make([]float64, n)
			for j := range times {
				tick++
				times[j] = tick - int64(r.Intn(50)) // delayed arrivals
				values[j] = float64(r.Intn(1000))
			}
			ops = append(ops, opRecord{kind: "insert", sensor: sensor, times: times, values: values})
		case k < 8:
			lo := int64(r.Intn(int(tick + 1)))
			ops = append(ops, opRecord{kind: "query", sensor: sensor, minT: lo, maxT: lo + int64(r.Intn(200))})
		case k == 8:
			ops = append(ops, opRecord{kind: "latest", sensor: sensor})
		default:
			switch r.Intn(3) {
			case 0:
				ops = append(ops, opRecord{kind: "flush"})
			case 1:
				ops = append(ops, opRecord{kind: "compact"})
			default:
				ops = append(ops, opRecord{kind: "agg", sensor: sensor, minT: 0, maxT: tick + 1})
			}
		}
	}

	for i, op := range ops {
		switch op.kind {
		case "insert":
			errB := bare.InsertBatch(op.sensor, op.times, op.values)
			errR := routed.InsertBatch(op.sensor, op.times, op.values)
			if (errB == nil) != (errR == nil) {
				t.Fatalf("op %d insert: bare err %v, routed err %v", i, errB, errR)
			}
		case "query":
			outB, errB := bare.Query(op.sensor, op.minT, op.maxT)
			outR, errR := routed.Query(op.sensor, op.minT, op.maxT)
			if (errB == nil) != (errR == nil) {
				t.Fatalf("op %d query: bare err %v, routed err %v", i, errB, errR)
			}
			if len(outB) != len(outR) {
				t.Fatalf("op %d query: %d vs %d records", i, len(outB), len(outR))
			}
			for j := range outB {
				if outB[j] != outR[j] {
					t.Fatalf("op %d query record %d: %+v vs %+v", i, j, outB[j], outR[j])
				}
			}
		case "latest":
			tB, okB := bare.LatestTime(op.sensor)
			tR, okR := routed.LatestTime(op.sensor)
			if tB != tR || okB != okR {
				t.Fatalf("op %d latest: (%d,%v) vs (%d,%v)", i, tB, okB, tR, okR)
			}
		case "flush":
			bare.Flush()
			routed.Flush()
		case "compact":
			errB := bare.Compact()
			errR := routed.Compact()
			if (errB == nil) != (errR == nil) {
				t.Fatalf("op %d compact: bare err %v, routed err %v", i, errB, errR)
			}
		case "agg":
			winB, errB := query.WindowQuery(bare, op.sensor, op.minT, op.maxT, 64, query.Avg)
			winR, errR := routed.Aggregate(op.sensor, op.minT, op.maxT, 64, query.Avg)
			if (errB == nil) != (errR == nil) {
				t.Fatalf("op %d agg: bare err %v, routed err %v", i, errB, errR)
			}
			if len(winB) != len(winR) {
				t.Fatalf("op %d agg: %d vs %d windows", i, len(winB), len(winR))
			}
			for j := range winB {
				if winB[j] != winR[j] {
					t.Fatalf("op %d agg window %d: %+v vs %+v", i, j, winB[j], winR[j])
				}
			}
		}
	}

	// Data-path stats must agree exactly (timings may not).
	sB, sR := bare.Stats(), routed.Stats()
	if sB.SeqPoints != sR.SeqPoints || sB.UnseqPoints != sR.UnseqPoints ||
		sB.FlushCount != sR.FlushCount || sB.Files != sR.Files ||
		sB.MemTablePoints != sR.MemTablePoints {
		t.Fatalf("stats diverge:\nbare   %+v\nrouted %+v", sB, sR)
	}
	if got := bare.FileCount(); got != routed.FileCount() {
		t.Fatalf("file counts diverge: %d vs %d", got, routed.FileCount())
	}
}

// TestFanOutCollectsFirstError: Compact after Close must surface the
// per-shard failure, not swallow it.
func TestFanOutCollectsFirstError(t *testing.T) {
	r, err := Open(Config{ShardCount: 2, Config: engine.Config{Dir: t.TempDir(), SyncFlush: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Compact(); err == nil {
		t.Fatal("Compact on closed router should fail")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMergeStats checks the aggregate arithmetic: counters sum,
// averages weight by their denominators, maxima take the max.
func TestMergeStats(t *testing.T) {
	per := []engine.Stats{
		{FlushCount: 1, AvgFlushMillis: 10, SeqPoints: 100, Files: 2, LockWaits: 4, AvgLockWaitMicros: 8, MaxLockWaitMicros: 50, FlushWorkers: 3},
		{FlushCount: 3, AvgFlushMillis: 2, SeqPoints: 50, Files: 1, LockWaits: 0, MaxLockWaitMicros: 10, FlushWorkers: 3},
	}
	m := MergeStats(per)
	if m.FlushCount != 4 || m.SeqPoints != 150 || m.Files != 3 {
		t.Fatalf("sums wrong: %+v", m)
	}
	if want := (10.0*1 + 2.0*3) / 4; m.AvgFlushMillis != want {
		t.Fatalf("AvgFlushMillis = %v, want %v", m.AvgFlushMillis, want)
	}
	if m.AvgLockWaitMicros != 8 { // only shard 0 waited
		t.Fatalf("AvgLockWaitMicros = %v, want 8", m.AvgLockWaitMicros)
	}
	if m.MaxLockWaitMicros != 50 || m.FlushWorkers != 3 {
		t.Fatalf("max/echo wrong: %+v", m)
	}
	if z := MergeStats(nil); z != (engine.Stats{}) {
		t.Fatalf("MergeStats(nil) = %+v", z)
	}
}

// TestRouterSpreadsSensors: with enough sensors every shard of a
// 4-shard router ingests data, and per-shard stats see it.
func TestRouterSpreadsSensors(t *testing.T) {
	r, err := Open(Config{ShardCount: 4, Config: engine.Config{Dir: t.TempDir(), SyncFlush: true, MemTableSize: 50}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for d := 0; d < 16; d++ {
		for s := 0; s < 4; s++ {
			sensor := fmt.Sprintf("d%d.s%d", d, s)
			if err := r.Insert(sensor, int64(d*10+s), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	merged, per := r.StatsAll()
	if len(per) != 4 {
		t.Fatalf("len(per) = %d", len(per))
	}
	var sum int64
	for i, s := range per {
		if s.SeqPoints+s.UnseqPoints == 0 {
			t.Fatalf("shard %d ingested nothing", i)
		}
		sum += s.SeqPoints + s.UnseqPoints
	}
	if sum != 64 || merged.SeqPoints+merged.UnseqPoints != 64 {
		t.Fatalf("points: per-shard sum %d, merged %d, want 64", sum, merged.SeqPoints+merged.UnseqPoints)
	}
}

// TestOpenRejectsBadConfig covers the config validation paths.
func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(Config{ShardCount: -1, Config: engine.Config{Dir: t.TempDir()}}); err == nil {
		t.Fatal("negative ShardCount should fail")
	}
	if _, err := Open(Config{ShardCount: 2}); err == nil {
		t.Fatal("missing Dir should fail")
	}
	if _, err := Open(Config{ShardCount: 2, Config: engine.Config{Dir: t.TempDir(), Algorithm: "nope"}}); err == nil {
		t.Fatal("unknown algorithm should fail per shard")
	}
}
