package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultfs"
)

// crashWorkload ingests batches round-robin across one sensor per
// shard until the filesystem crashes (or the workload completes),
// returning the number of acknowledged batches per sensor. Batch b for
// a sensor covers timestamps [b*10, b*10+9] with value == timestamp,
// so recovery checks are pure arithmetic.
func crashWorkload(t *testing.T, r *Router, sensors []string, rounds int) map[string]int {
	t.Helper()
	acked := make(map[string]int, len(sensors))
	for b := 0; b < rounds; b++ {
		for _, s := range sensors {
			times := make([]int64, 10)
			values := make([]float64, 10)
			for i := range times {
				times[i] = int64(b*10 + i)
				values[i] = float64(times[i])
			}
			if err := r.InsertBatch(s, times, values); err != nil {
				return acked
			}
			acked[s]++
		}
	}
	return acked
}

// sensorPerShard picks one sensor routed to each of n shards.
func sensorPerShard(n int) []string {
	out := make([]string, n)
	found := 0
	for i := 0; found < n; i++ {
		s := fmt.Sprintf("d%d.s0", i)
		idx := Index(s, n)
		if out[idx] == "" {
			out[idx] = s
			found++
		}
	}
	return out
}

// countSuffix counts files under root (recursively) whose name ends in
// suffix.
func countSuffix(t *testing.T, root, suffix string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), suffix) {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestShardCrashRecovery kills the "process" at points spread across a
// sharded ingest run (WALSync=always, so an acknowledged InsertBatch is
// a durability promise), then recovers from the surviving directory
// state with the real filesystem and asserts per-shard completeness:
// every acknowledged batch is queryable in full, no torn or temporary
// file is served, and quarantined leftovers are reported in Stats.
func TestShardCrashRecovery(t *testing.T) {
	const shards = 4
	const rounds = 12
	sensors := sensorPerShard(shards)

	cfg := func(dir string, fs faultfs.FS) Config {
		return Config{
			Config: engine.Config{
				Dir:          dir,
				MemTableSize: 25, // several flushes per shard over the run
				SyncFlush:    true,
				WAL:          true,
				WALSync:      engine.WALSyncAlways,
				FS:           fs,
			},
			ShardCount: shards,
		}
	}

	// Calibration pass: count the run's total filesystem operations so
	// the kill points can be spread across the whole history.
	calib := faultfs.NewInjector(faultfs.OS, 0)
	r, err := Open(cfg(t.TempDir(), calib))
	if err != nil {
		t.Fatal(err)
	}
	opsAtOpen := calib.Ops()
	crashWorkload(t, r, sensors, rounds)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	total := calib.Ops()
	if total <= opsAtOpen {
		t.Fatalf("calibration run issued no ingest ops (open=%d total=%d)", opsAtOpen, total)
	}

	// Kill points: just after open, mid-run, and late in the run.
	kills := []int64{
		opsAtOpen + 1,
		opsAtOpen + (total-opsAtOpen)/4,
		opsAtOpen + (total-opsAtOpen)/2,
		opsAtOpen + 3*(total-opsAtOpen)/4,
		total - 1,
	}
	for _, k := range kills {
		k := k
		t.Run(fmt.Sprintf("kill=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS, int(k))
			var acked map[string]int
			r, err := Open(cfg(dir, inj))
			if err == nil {
				acked = crashWorkload(t, r, sensors, rounds)
				r.Close() // crashed fs blocks durable mutation; ignore error
			}
			if !inj.Crashed() {
				t.Fatalf("kill point %d never reached (ops=%d)", k, inj.Ops())
			}

			// Recover with the real filesystem.
			re, err := Open(cfg(dir, faultfs.OS))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer re.Close()

			for _, s := range sensors {
				n := acked[s]
				if n == 0 {
					continue
				}
				maxT := int64(n*10 - 1)
				got, err := re.Query(s, 0, 1<<40)
				if err != nil {
					t.Fatalf("query %s: %v", s, err)
				}
				seen := make(map[int64]bool, len(got))
				for _, tv := range got {
					if tv.V != float64(tv.T) {
						t.Fatalf("%s: torn value at t=%d: got %v", s, tv.T, tv.V)
					}
					seen[tv.T] = true
				}
				for ts := int64(0); ts <= maxT; ts++ {
					if !seen[ts] {
						t.Fatalf("%s: acknowledged point t=%d lost (acked %d batches, kill=%d)", s, ts, n, k)
					}
				}
			}

			// Torn artifacts must be quarantined, reported, and never
			// served at a readable name.
			if n := countSuffix(t, dir, ".tmp"); n != 0 {
				t.Fatalf("%d .tmp file(s) survived recovery", n)
			}
			agg, per := re.StatsAll()
			if want := countSuffix(t, dir, ".quarantine"); agg.QuarantinedFiles != want {
				t.Fatalf("Stats.QuarantinedFiles = %d, %d .quarantine files on disk", agg.QuarantinedFiles, want)
			}
			sum := 0
			for _, s := range per {
				sum += s.QuarantinedFiles
			}
			if sum != agg.QuarantinedFiles {
				t.Fatalf("per-shard quarantine sum %d != aggregate %d", sum, agg.QuarantinedFiles)
			}
		})
	}
}

// TestShardQuarantineReportedInStats plants a half-written chunk file
// (a crash-leftover .tmp) inside one shard's directory and verifies the
// reopened router quarantines it, reports it on exactly that shard, and
// folds it into the aggregate.
func TestShardQuarantineReportedInStats(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	cfg := Config{
		Config:     engine.Config{Dir: dir, SyncFlush: true},
		ShardCount: shards,
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, fmt.Sprintf(shardDirFmt, 2), "seq-000042.gtsf.tmp")
	if err := os.WriteFile(victim, []byte("half a flush"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err = Open(cfg)
	if err != nil {
		t.Fatalf("reopen with planted .tmp: %v", err)
	}
	defer r.Close()
	agg, per := r.StatsAll()
	if agg.QuarantinedFiles != 1 {
		t.Fatalf("aggregate QuarantinedFiles = %d, want 1", agg.QuarantinedFiles)
	}
	for i, s := range per {
		want := 0
		if i == 2 {
			want = 1
		}
		if s.QuarantinedFiles != want {
			t.Fatalf("shard %d QuarantinedFiles = %d, want %d", i, s.QuarantinedFiles, want)
		}
	}
	if _, err := os.Stat(victim + ".quarantine"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}
