package shard

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/labels"
	"repro/internal/query"
)

func openLabelRouter(t *testing.T, dir string, shards int) *Router {
	t.Helper()
	r, err := Open(Config{
		Config:     engine.Config{Dir: dir, MemTableSize: 512},
		ShardCount: shards,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return r
}

// TestCanonicalRouting is the regression for sorted-pair routing:
// the same pairs in any insertion order hash to the same shard,
// because routing consumes the canonical encoding, never the input
// order.
func TestCanonicalRouting(t *testing.T) {
	ab := labels.MustNew(labels.Label{Name: "a", Value: "1"}, labels.Label{Name: "b", Value: "2"})
	ba := labels.MustNew(labels.Label{Name: "b", Value: "2"}, labels.Label{Name: "a", Value: "1"})
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		if Index(ab.Canonical(), n) != Index(ba.Canonical(), n) {
			t.Fatalf("n=%d: {a=1,b=2} and {b=2,a=1} routed to different shards", n)
		}
	}
	// And the canonical hash is the router hash: Set.Hash mod n must
	// agree with Index over the canonical string.
	if int(ab.Hash()%4) != Index(ab.Canonical(), 4) {
		t.Fatal("labels.Set.Hash disagrees with shard.Index over the canonical encoding")
	}

	// End to end: points inserted under either order are one series.
	r := openLabelRouter(t, t.TempDir(), 4)
	defer r.Close()
	if err := r.InsertSeries(ab, []int64{1, 2}, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := r.InsertSeries(ba, []int64{3}, []float64{30}); err != nil {
		t.Fatal(err)
	}
	if n := r.SeriesCount(); n != 1 {
		t.Fatalf("SeriesCount = %d, want 1 (orders collapsed)", n)
	}
	sp, err := r.QuerySeries(nil, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 1 || len(sp[0].Points) != 3 {
		t.Fatalf("merged series query: %+v", sp)
	}
}

// seed1000 registers and fills 50 hosts × 20 metrics = 1000 series.
func seed1000(t *testing.T, r *Router) map[string][]engine.TV {
	t.Helper()
	oracle := map[string][]engine.TV{}
	for h := 0; h < 50; h++ {
		for m := 0; m < 20; m++ {
			ls := labels.MustNew(
				labels.Label{Name: "host", Value: fmt.Sprintf("h%02d", h)},
				labels.Label{Name: "metric", Value: fmt.Sprintf("m%02d", m)},
			)
			times := make([]int64, 8)
			values := make([]float64, 8)
			pts := make([]engine.TV, 8)
			for i := range times {
				times[i] = int64(i * 10)
				values[i] = float64(h*1000 + m*10 + i)
				pts[i] = engine.TV{T: times[i], V: values[i]}
			}
			if err := r.InsertSeries(ls, times, values); err != nil {
				t.Fatal(err)
			}
			oracle[ls.Canonical()] = pts
		}
	}
	return oracle
}

// TestSelectorFanoutMatchesOracle is the acceptance-criteria test: a
// selector over 1000 series resolves via postings intersection, fans
// out across shards in parallel, and returns byte-identical results to
// a per-sensor oracle loop.
func TestSelectorFanoutMatchesOracle(t *testing.T) {
	r := openLabelRouter(t, t.TempDir(), 4)
	defer r.Close()
	oracle := seed1000(t, r)
	if n := r.SeriesCount(); n != 1000 {
		t.Fatalf("SeriesCount = %d, want 1000", n)
	}

	for _, tc := range []struct {
		name string
		ms   []*labels.Matcher
		want int // matching series
	}{
		{"all", nil, 1000},
		{"one-host", []*labels.Matcher{labels.MustMatcher(labels.MatchEq, "host", "h07")}, 20},
		{"regex-hosts", []*labels.Matcher{labels.MustMatcher(labels.MatchRe, "host", "h0.")}, 200},
		{"host-and-metric", []*labels.Matcher{
			labels.MustMatcher(labels.MatchRe, "host", "h1[0-4]"),
			labels.MustMatcher(labels.MatchEq, "metric", "m03"),
		}, 5},
		{"not-host", []*labels.Matcher{labels.MustMatcher(labels.MatchNotEq, "host", "h00")}, 980},
		{"nothing", []*labels.Matcher{labels.MustMatcher(labels.MatchEq, "host", "absent")}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := r.QuerySeries(tc.ms, 0, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.want {
				t.Fatalf("selected %d series, want %d", len(got), tc.want)
			}
			// Oracle: re-run every selected series as a single-sensor
			// query, and independently verify the selection itself by
			// scanning the oracle keys through the matchers.
			matched := 0
			for canonical := range oracle {
				ls, err := labels.ParseCanonical(canonical)
				if err != nil {
					t.Fatal(err)
				}
				ok := true
				for _, m := range tc.ms {
					if !m.Matches(ls.Get(m.Name)) {
						ok = false
						break
					}
				}
				if ok {
					matched++
				}
			}
			if matched != tc.want {
				t.Fatalf("oracle scan matched %d, want %d", matched, tc.want)
			}
			for _, sp := range got {
				single, err := r.Query(sp.Labels.Canonical(), 0, 1000)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sp.Points, single) {
					t.Fatalf("series %s: fan-out result differs from single query", sp.Labels)
				}
				if !reflect.DeepEqual(sp.Points, oracle[sp.Labels.Canonical()]) {
					t.Fatalf("series %s: result differs from oracle points", sp.Labels)
				}
			}
		})
	}

	st := r.Stats()
	if st.SeriesCount != 1000 || st.SelectorQueries == 0 || st.MaxFanoutWidth != 1000 {
		t.Fatalf("index stats not surfaced: %+v", st)
	}
	if st.MatcherResolutions == 0 || st.PostingsEntries != 2000 || st.LabelPairs != 70 {
		t.Fatalf("postings stats wrong: pairs=%d entries=%d resolutions=%d",
			st.LabelPairs, st.PostingsEntries, st.MatcherResolutions)
	}
}

// TestSeriesSurviveRestart: series IDs and postings come back from the
// catalog after a close/reopen, and selectors resolve identically.
func TestSeriesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	r := openLabelRouter(t, dir, 4)
	seed1000(t, r)
	wantIDs := r.SelectSeries([]*labels.Matcher{labels.MustMatcher(labels.MatchEq, "metric", "m05")})
	if len(wantIDs) != 50 {
		t.Fatalf("pre-restart selection: %d series", len(wantIDs))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openLabelRouter(t, dir, 4)
	defer r2.Close()
	if n := r2.SeriesCount(); n != 1000 {
		t.Fatalf("replayed %d series, want 1000", n)
	}
	gotIDs := r2.SelectSeries([]*labels.Matcher{labels.MustMatcher(labels.MatchEq, "metric", "m05")})
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("selection changed across restart:\n  was %v\n  now %v", wantIDs, gotIDs)
	}
	// A known series keeps its labels under the same ID.
	ls, ok := r2.SeriesLabels(wantIDs[0])
	if !ok || ls.Get("metric") != "m05" {
		t.Fatalf("series %d labels after restart: %v ok=%v", wantIDs[0], ls, ok)
	}
	// And data is still addressable through the selector path.
	sp, err := r2.QuerySeries([]*labels.Matcher{
		labels.MustMatcher(labels.MatchEq, "host", "h03"),
		labels.MustMatcher(labels.MatchEq, "metric", "m05"),
	}, 0, 1000)
	if err != nil || len(sp) != 1 || len(sp[0].Points) != 8 {
		t.Fatalf("post-restart selector query: %v err=%v", sp, err)
	}
}

// TestAggregateSeriesGroup checks the cross-series merge against a
// hand-computed result.
func TestAggregateSeriesGroup(t *testing.T) {
	r := openLabelRouter(t, t.TempDir(), 2)
	defer r.Close()
	mk := func(host string) labels.Set {
		return labels.MustNew(
			labels.Label{Name: "host", Value: host},
			labels.Label{Name: "metric", Value: "cpu"},
		)
	}
	// host a: windows [0,10) -> 1,2 ; [10,20) -> 3
	if err := r.InsertSeries(mk("a"), []int64{0, 5, 10}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// host b: windows [0,10) -> 10 ; [20,30) -> 20
	if err := r.InsertSeries(mk("b"), []int64{2, 20}, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	ms := []*labels.Matcher{labels.MustMatcher(labels.MatchEq, "metric", "cpu")}

	sum, err := r.AggregateSeriesGroup(ms, 0, 30, 10, query.Sum)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := []query.WindowResult{
		{Start: 0, Count: 3, Value: 13},
		{Start: 10, Count: 1, Value: 3},
		{Start: 20, Count: 1, Value: 20},
	}
	if !reflect.DeepEqual(sum, wantSum) {
		t.Fatalf("group sum = %+v, want %+v", sum, wantSum)
	}

	avg, err := r.AggregateSeriesGroup(ms, 0, 30, 10, query.Avg)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: (1+2+10)/3 — weighted, not mean-of-means (1.5+10)/2.
	if avg[0].Value != 13.0/3.0 {
		t.Fatalf("group avg window 0 = %v, want %v", avg[0].Value, 13.0/3.0)
	}

	if _, err := r.AggregateSeriesGroup(ms, 0, 30, 10, query.First); err == nil {
		t.Fatal("First merged across series without error")
	}

	// Per-series view keeps each series separate.
	per, err := r.AggregateSeries(ms, 0, 30, 10, query.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 || len(per[0].Windows) != 2 || len(per[1].Windows) != 2 {
		t.Fatalf("per-series windows: %+v", per)
	}
}
