package shard

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

// TestRouterDropPartitionsBefore fans the retention drop out across
// shards: every shard unlinks its own expired partitions, the router
// sums the counts, merged stats report the drop, and no sensor — on
// any shard — still serves the dropped range.
func TestRouterDropPartitionsBefore(t *testing.T) {
	r, err := Open(Config{ShardCount: 3, Config: engine.Config{
		Dir: t.TempDir(), SyncFlush: true, MemTableSize: 200,
		PartitionDuration: 1000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// 8 sensors so every shard owns at least one; each sensor covers
	// partitions 0..3.
	sensors := make([]string, 8)
	for i := range sensors {
		sensors[i] = fmt.Sprintf("d%d.s0", i)
	}
	const n = 4000
	for _, s := range sensors {
		for ts := 0; ts < n; ts += 200 {
			times := make([]int64, 200)
			values := make([]float64, 200)
			for j := range times {
				times[j] = int64(ts + j)
				values[j] = float64(ts + j)
			}
			if err := r.InsertBatch(s, times, values); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.WaitFlushes()

	dropped, err := r.DropPartitionsBefore(2000)
	if err != nil {
		t.Fatal(err)
	}
	// Partitions 0 and 1 vanish on each of the 3 shards.
	if dropped != 6 {
		t.Fatalf("dropped %d partitions across shards, want 6", dropped)
	}
	st := r.Stats()
	if st.PartitionsDropped != int64(dropped) {
		t.Fatalf("merged stats report %d dropped, want %d", st.PartitionsDropped, dropped)
	}
	if st.PartitionsActive != 6 { // 2 surviving partitions x 3 shards
		t.Fatalf("merged PartitionsActive = %d, want 6", st.PartitionsActive)
	}
	for _, s := range sensors {
		gone, err := r.Query(s, 0, 1999)
		if err != nil {
			t.Fatal(err)
		}
		if len(gone) != 0 {
			t.Fatalf("%s: %d points served from dropped partitions", s, len(gone))
		}
		kept, err := r.Query(s, 2000, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(kept) != n-2000 {
			t.Fatalf("%s: kept %d points, want %d", s, len(kept), n-2000)
		}
	}
}
