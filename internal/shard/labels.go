package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/labels"
	"repro/internal/query"
)

// Label-series layer: the Router owns the inverted series index
// (Dir/index/catalog.log) and stores each label series under its
// canonical encoding as the engine sensor key. Because Index() is
// FNV-1a over that string — exactly labels.Set.Hash modulo the shard
// count — routing is a pure function of the sorted pair set: {a=1,b=2}
// and {b=2,a=1} canonicalize identically and land on the same shard.
//
// Selector queries resolve matchers to series IDs on the index, then
// fan the per-series range queries out across the shards on a bounded
// worker pool and merge the results per-series (or cross-series for
// windowed aggregates). Flat string sensors bypass all of this: the
// index file is created lazily, so a router that never registers a
// label series is byte-identical on disk to one built before this
// layer existed.

// SeriesPoints is one series' slice of a multi-series query result.
type SeriesPoints struct {
	ID     index.SeriesID
	Labels labels.Set
	Points []engine.TV
}

// SeriesWindows is one series' slice of a multi-series windowed
// aggregation result.
type SeriesWindows struct {
	ID      index.SeriesID
	Labels  labels.Set
	Windows []query.WindowResult
}

// EnsureSeries registers ls in the series index (persisting the
// registration) and returns its stable ID.
func (r *Router) EnsureSeries(ls labels.Set) (index.SeriesID, error) {
	id, _, err := r.idx.EnsureSeries(ls)
	return id, err
}

// InsertSeries ingests a batch for the label series ls, registering it
// on first sight and routing by the canonical encoding.
func (r *Router) InsertSeries(ls labels.Set, times []int64, values []float64) error {
	if _, _, err := r.idx.EnsureSeries(ls); err != nil {
		return err
	}
	return r.InsertBatch(ls.Canonical(), times, values)
}

// SeriesCount returns the number of registered label series.
func (r *Router) SeriesCount() int { return r.idx.NumSeries() }

// SeriesLabels returns the label set registered under id.
func (r *Router) SeriesLabels(id index.SeriesID) (labels.Set, bool) { return r.idx.Series(id) }

// SelectSeries resolves a selector to the matching series IDs
// (ascending) via postings intersection, without touching point data.
// An empty matcher list selects every registered series; a selector
// matching nothing returns an empty slice, not an error.
func (r *Router) SelectSeries(ms []*labels.Matcher) []index.SeriesID {
	return r.idx.Select(ms)
}

// IndexStats returns the series-index snapshot.
func (r *Router) IndexStats() index.Stats { return r.idx.Stats() }

// noteFanout records one selector query fanning out over width series.
func (r *Router) noteFanout(width int) {
	r.selectorQueries.Add(1)
	r.fanoutSeries.Add(int64(width))
	for {
		cur := r.maxFanoutWidth.Load()
		if int64(width) <= cur || r.maxFanoutWidth.CompareAndSwap(cur, int64(width)) {
			return
		}
	}
}

// forEachSeries runs f(i, id) for every selected series on the bounded
// fan-out pool and returns the first error by selection order.
func (r *Router) forEachSeries(ids []index.SeriesID, f func(i int, id index.SeriesID) error) error {
	r.noteFanout(len(ids))
	workers := r.fanWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(ids))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = f(i, ids[i])
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// QuerySeries resolves the selector and range-queries every matching
// series in parallel across its shards. Results are ordered by series
// ID (registration order), each series' points sorted by time exactly
// as a single-sensor Query would return them; series with no points in
// range are included with an empty Points slice so the caller sees the
// full selection width.
func (r *Router) QuerySeries(ms []*labels.Matcher, minT, maxT int64) ([]SeriesPoints, error) {
	ids := r.idx.Select(ms)
	out := make([]SeriesPoints, len(ids))
	err := r.forEachSeries(ids, func(i int, id index.SeriesID) error {
		ls, ok := r.idx.Series(id)
		if !ok {
			return fmt.Errorf("shard: series %d vanished from index", id)
		}
		pts, err := r.Query(ls.Canonical(), minT, maxT)
		if err != nil {
			return err
		}
		out[i] = SeriesPoints{ID: id, Labels: ls, Points: pts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AggregateSeries runs the windowed aggregation per matching series in
// parallel, returning one window list per series ordered by series ID.
// Series with no points in range appear with an empty window list.
func (r *Router) AggregateSeries(ms []*labels.Matcher, startT, endT, window int64, agg query.Aggregator) ([]SeriesWindows, error) {
	ids := r.idx.Select(ms)
	out := make([]SeriesWindows, len(ids))
	err := r.forEachSeries(ids, func(i int, id index.SeriesID) error {
		ls, ok := r.idx.Series(id)
		if !ok {
			return fmt.Errorf("shard: series %d vanished from index", id)
		}
		ws, err := query.WindowQuery(r, ls.Canonical(), startT, endT, window, agg)
		if err != nil {
			return err
		}
		out[i] = SeriesWindows{ID: id, Labels: ls, Windows: ws}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AggregateSeriesGroup runs the windowed aggregation across every
// matching series and merges the per-series windows into one
// cross-series result per window — SELECT agg(value) FROM
// series{...} GROUP BY WINDOW. First/Last cannot be merged across
// series and are refused.
func (r *Router) AggregateSeriesGroup(ms []*labels.Matcher, startT, endT, window int64, agg query.Aggregator) ([]query.WindowResult, error) {
	per, err := r.AggregateSeries(ms, startT, endT, window, agg)
	if err != nil {
		return nil, err
	}
	lists := make([][]query.WindowResult, len(per))
	for i, sw := range per {
		lists[i] = sw.Windows
	}
	return query.MergeWindows(agg, lists)
}

// injectIndexStats injects the router-level index counters into a merged
// engine-shaped snapshot (per-shard snapshots keep zeros: the index is
// store-level, not per-shard).
func (r *Router) injectIndexStats(m *engine.Stats) {
	st := r.idx.Stats()
	m.SeriesCount = st.Series
	m.LabelPairs = st.LabelPairs
	m.PostingsEntries = st.PostingsEntries
	m.MatcherResolutions = st.Resolutions
	m.SelectorQueries = r.selectorQueries.Load()
	m.FanoutSeries = r.fanoutSeries.Load()
	m.MaxFanoutWidth = int(r.maxFanoutWidth.Load())
}

// SortSeriesByCanonical orders a SeriesPoints slice by canonical
// encoding — handy for deterministic text output (tsql, tsbench).
func SortSeriesByCanonical(sp []SeriesPoints) {
	sort.Slice(sp, func(i, j int) bool {
		return sp[i].Labels.Canonical() < sp[j].Labels.Canonical()
	})
}
