package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// copyTree copies a directory recursively — the crash simulator: the
// copied tree is what a machine that lost power mid-run would find on
// disk (flushed chunk files plus live WAL segments, no clean Close).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copyTree: %v", err)
	}
}

// TestPerShardWALRecovery: points spread across every shard of a
// WAL-enabled router, none of them flushed, must all survive a
// simulated crash (directory tree copied while the router is live,
// then reopened elsewhere). Recovery runs per shard, concurrently, in
// Open.
func TestPerShardWALRecovery(t *testing.T) {
	live := t.TempDir()
	cfg := Config{ShardCount: 4, Config: engine.Config{
		Dir:          live,
		MemTableSize: 1 << 20, // never flush: everything rides on the WAL
		WAL:          true,
		SyncFlush:    true,
	}}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	type point struct {
		sensor string
		t      int64
		v      float64
	}
	var want []point
	for d := 0; d < 16; d++ {
		sensor := fmt.Sprintf("d%d.s0", d)
		times := make([]int64, 30)
		values := make([]float64, 30)
		for j := range times {
			times[j] = int64(j * 3)
			values[j] = float64(d*1000 + j)
			want = append(want, point{sensor, times[j], values[j]})
		}
		if err := r.InsertBatch(sensor, times, values); err != nil {
			t.Fatal(err)
		}
	}
	// Every shard must be carrying WAL state for the crash to exercise
	// per-shard recovery (16 sensors spread 3..5 per shard, see
	// TestRoutingStable's reachability property).
	for i := 0; i < 4; i++ {
		segs, err := filepath.Glob(filepath.Join(live, fmt.Sprintf(shardDirFmt, i), "wal-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("shard %d has no WAL segment (err %v)", i, err)
		}
	}

	// Crash: snapshot the tree with the router still open (nothing was
	// flushed or closed), then recover the snapshot.
	crashed := t.TempDir()
	copyTree(t, live, crashed)

	cfg2 := cfg
	cfg2.Dir = crashed
	r2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer r2.Close()
	for _, p := range want {
		out, err := r2.Query(p.sensor, p.t, p.t)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0].V != p.v {
			t.Fatalf("point (%s, %d) after crash recovery: %+v, want v=%v", p.sensor, p.t, out, p.v)
		}
	}
	// Recovery flushes the replayed generations: the data is durable
	// as chunk files now, not only in the WAL.
	if st := r2.Stats(); st.FlushCount == 0 || st.Files == 0 {
		t.Fatalf("recovery should flush replayed data: %+v", st)
	}
}
