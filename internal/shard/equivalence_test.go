package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
)

// TestOneShardFlatEquivalence pins the paper-measurement path: a
// one-shard router with flat string sensors (no label routing, the
// configuration cmd/repro uses a bare engine for) returns exactly what
// the bare engine returns — same points, same windows, same file
// counts — so layering the label subsystem above the router cannot
// have perturbed the published flat-sensor behavior.
func TestOneShardFlatEquivalence(t *testing.T) {
	mkCfg := func(dir string) engine.Config {
		return engine.Config{Dir: dir, MemTableSize: 256}
	}
	bare, err := engine.Open(mkCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	routed, err := Open(Config{Config: mkCfg(t.TempDir()), ShardCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer routed.Close()

	rng := rand.New(rand.NewSource(42))
	sensors := []string{"s.engine.speed", "s.engine.temp", "s.chassis.vib"}
	for i := 0; i < 3000; i++ {
		sensor := sensors[rng.Intn(len(sensors))]
		// Unique but disordered timestamps: each block of 10 arrives
		// reversed, exercising the unseq path deterministically.
		ts := int64(i - i%10 + (9 - i%10))
		v := rng.Float64() * 100
		if err := bare.Insert(sensor, ts, v); err != nil {
			t.Fatal(err)
		}
		if err := routed.Insert(sensor, ts, v); err != nil {
			t.Fatal(err)
		}
	}
	bare.Flush()
	bare.WaitFlushes()
	routed.Flush()
	routed.WaitFlushes()

	for _, sensor := range sensors {
		b, err := bare.Query(sensor, -100, 3100)
		if err != nil {
			t.Fatal(err)
		}
		r, err := routed.Query(sensor, -100, 3100)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b, r) {
			t.Fatalf("%s: routed query differs from bare engine", sensor)
		}
		bw, err := query.WindowQuery(bare, sensor, 0, 3000, 250, query.Avg)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := query.WindowQuery(routed, sensor, 0, 3000, 250, query.Avg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bw, rw) {
			t.Fatalf("%s: routed windows differ from bare engine", sensor)
		}
	}

	// Flat-sensor use never touches the label layer: no series appear,
	// and the index stays empty (its catalog is created lazily, so the
	// on-disk shard layout matches the pre-label format).
	if n := routed.SeriesCount(); n != 0 {
		t.Fatalf("flat inserts registered %d label series", n)
	}
}
