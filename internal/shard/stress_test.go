package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
)

// TestConcurrentMultiSensorStress drives a 4-shard router with
// concurrent multi-sensor inserts, range queries, forced flushes,
// compactions and stats snapshots — the shard layer's whole surface at
// once. Run under -race (CI does) it checks that the router adds no
// cross-shard sharing beyond the shared flush pool, and the final
// verification that no point went missing proves routing stayed
// consistent under fire.
func TestConcurrentMultiSensorStress(t *testing.T) {
	r, err := Open(Config{ShardCount: 4, Config: engine.Config{
		Dir:          t.TempDir(),
		MemTableSize: 500, // small: constant background flushing
		ArrayLen:     16,
	}})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers   = 4
		sensors   = 16
		batches   = 30
		batchSize = 40
	)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	report := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Writers: each owns a disjoint sensor set, so per-sensor totals
	// are deterministic afterwards.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for b := 0; b < batches; b++ {
				sensor := fmt.Sprintf("d%d.s%d", w, rng.Intn(sensors/writers))
				times := make([]int64, batchSize)
				values := make([]float64, batchSize)
				base := int64(b * batchSize)
				for i := range times {
					times[i] = base + int64(i) - int64(rng.Intn(20)) // some disorder
					values[i] = float64(w)
				}
				if err := r.InsertBatch(sensor, times, values); err != nil {
					report(err)
					return
				}
			}
		}(w)
	}

	// Readers: range queries and latest-time probes across all sensors.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + q)))
			for i := 0; i < 200; i++ {
				sensor := fmt.Sprintf("d%d.s%d", rng.Intn(writers), rng.Intn(sensors/writers))
				if _, err := r.Query(sensor, 0, int64(batches*batchSize)); err != nil {
					report(err)
					return
				}
				r.LatestTime(sensor)
			}
		}(q)
	}

	// Background maintenance: flush, compact, stats fan-outs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			r.Flush()
			if err := r.Compact(); err != nil {
				report(err)
				return
			}
			r.StatsAll()
		}
	}()

	wg.Wait()
	errMu.Lock()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	errMu.Unlock()

	r.Flush()
	r.WaitFlushes()
	if err := r.FlushError(); err != nil {
		t.Fatal(err)
	}
	// Every writer's batches have unique timestamps per batch index
	// only within a batch; across batches they overlap deliberately
	// (rewrites), so assert on total ingested counts instead.
	st := r.Stats()
	if got, want := st.SeqPoints+st.UnseqPoints, int64(writers*batches*batchSize); got != want {
		t.Fatalf("ingested %d points, want %d", got, want)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and concurrent-safe.
	var cwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			if err := r.Close(); err != nil {
				report(err)
			}
		}()
	}
	cwg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}
