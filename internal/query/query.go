// Package query implements windowed aggregation over time series —
// the downstream analytics the paper motivates sorting with
// (Section VI-E: "computing the average speed of an engine in every
// minute" gives incorrect statistics on disordered data). Aggregations
// run over the sorted record streams the engine's range queries
// return, in a single pass — or, when the source can evaluate windows
// itself, are pushed down so the engine answers whole chunks from
// index statistics without decoding them.
//
// All aggregation ranges in this package are half-open: a query over
// [startT, endT) includes startT and excludes endT. tsql compiles its
// inclusive time predicates to this convention (time <= T becomes
// endT = T+1).
package query

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/winagg"
)

// ErrInvalidArgument tags errors caused by the caller's parameters —
// a non-positive window, an inverted range — as opposed to faults
// inside the storage backend. Front ends branch on it with errors.Is
// to report client mistakes (HTTP 400) separately from server faults
// (HTTP 500).
var ErrInvalidArgument = errors.New("invalid argument")

// Aggregator selects the per-window aggregate function. It aliases
// winagg.Op, the representation shared with the engine's pushdown
// path and the RPC wire encoding.
type Aggregator = winagg.Op

// Supported aggregate functions.
const (
	Count = winagg.Count
	Sum   = winagg.Sum
	Avg   = winagg.Avg
	Min   = winagg.Min
	Max   = winagg.Max
	First = winagg.First
	Last  = winagg.Last
)

// WindowResult is one aggregated window [Start, Start+Width).
type WindowResult struct {
	Start int64
	Count int
	Value float64
}

// AggregateWindows buckets the points into fixed windows
// [startT + k·window, startT + (k+1)·window) for startT <= t < endT
// and aggregates each. Points must be sorted by time (the engine
// guarantees this); out-of-order input returns an error, because
// silently aggregating disordered data is exactly the failure mode the
// paper warns about. Empty windows are omitted.
func AggregateWindows(points []engine.TV, startT, endT, window int64, agg Aggregator) ([]WindowResult, error) {
	if window <= 0 {
		return nil, fmt.Errorf("query: window must be positive, got %d: %w", window, ErrInvalidArgument)
	}
	if endT < startT {
		return nil, fmt.Errorf("query: empty range [%d, %d): %w", startT, endT, ErrInvalidArgument)
	}
	var out []WindowResult
	var cur *WindowResult
	var acc winagg.Acc
	flush := func() {
		if cur != nil {
			cur.Count = acc.Count()
			cur.Value = acc.Result()
			out = append(out, *cur)
		}
	}
	prevT := int64(0)
	for i, p := range points {
		if i > 0 && p.T < prevT {
			return nil, fmt.Errorf("query: input not sorted at index %d (%d after %d)", i, p.T, prevT)
		}
		prevT = p.T
		if p.T < startT || p.T >= endT {
			continue
		}
		ws := winagg.WindowStart(startT, p.T, window)
		if cur == nil || cur.Start != ws {
			flush()
			cur = &WindowResult{Start: ws}
			acc = winagg.Acc{Op: agg}
		}
		acc.AddPoint(p.V)
	}
	flush()
	return out, nil
}

// Source is anything that can answer sorted time-range queries — a
// bare engine.Engine or the shard router, which fans the engine API
// out over hash-partitioned shards.
type Source interface {
	Query(sensor string, minT, maxT int64) ([]engine.TV, error)
}

// WindowAggregator is implemented by sources that evaluate windowed
// aggregates themselves: the engine pushes them down onto chunk
// statistics, and the shard router routes to the owning shard.
// WindowQuery prefers this path when available.
type WindowAggregator interface {
	AggregateWindows(sensor string, startT, endT, window int64, op winagg.Op) ([]winagg.Window, error)
}

// WindowQuery runs a windowed aggregation on the source — SELECT
// agg(value) FROM sensor WHERE startT <= time < endT GROUP BY window.
// The range is half-open: endT itself is excluded. An empty range
// (endT <= startT... strictly, endT == startT) yields no windows;
// endT < startT is an error, matching AggregateWindows.
//
// Sources implementing WindowAggregator answer via pushdown; others
// are range-queried and aggregated here. Both produce identical
// results — the pushdown property test asserts it.
func WindowQuery(e Source, sensor string, startT, endT, window int64, agg Aggregator) ([]WindowResult, error) {
	if window <= 0 {
		return nil, fmt.Errorf("query: window must be positive, got %d: %w", window, ErrInvalidArgument)
	}
	if endT < startT {
		return nil, fmt.Errorf("query: empty range [%d, %d): %w", startT, endT, ErrInvalidArgument)
	}
	if endT == startT {
		// Also the guard that keeps endT-1 below from underflowing
		// when endT == math.MinInt64 (endT < startT was ruled out, so
		// startT == MinInt64 too and the range is empty).
		return nil, nil
	}
	if wa, ok := e.(WindowAggregator); ok {
		ws, err := wa.AggregateWindows(sensor, startT, endT, window, agg)
		if err != nil {
			return nil, err
		}
		out := make([]WindowResult, len(ws))
		for i, w := range ws {
			out[i] = WindowResult{Start: w.Start, Count: w.Count, Value: w.Value}
		}
		return out, nil
	}
	points, err := e.Query(sensor, startT, endT-1)
	if err != nil {
		return nil, err
	}
	return AggregateWindows(points, startT, endT, window, agg)
}

// MergeWindows folds per-series window results into one cross-series
// result per window start — the reduce step of a selector aggregation
// after the per-series queries fan out across shards. Counts always
// sum; Sum sums values, Count's value is the summed count, Avg is
// re-weighted by per-series point counts (the mean of means would be
// wrong when series contribute unevenly), Min/Max take the extreme.
// First/Last are refused: their cross-series value depends on
// ingestion order inside a window, which the merged form no longer
// carries. Windows empty in every series stay absent; the output is
// ordered by window start.
func MergeWindows(agg Aggregator, perSeries [][]WindowResult) ([]WindowResult, error) {
	type acc struct {
		count int
		sum   float64
		min   float64
		max   float64
	}
	switch agg {
	case Count, Sum, Avg, Min, Max:
	case First, Last:
		return nil, fmt.Errorf("query: %v cannot be merged across series", agg)
	default:
		return nil, fmt.Errorf("query: unknown aggregator %v", agg)
	}
	merged := map[int64]*acc{}
	var starts []int64
	for _, ws := range perSeries {
		for _, w := range ws {
			a, ok := merged[w.Start]
			if !ok {
				a = &acc{min: w.Value, max: w.Value}
				merged[w.Start] = a
				starts = append(starts, w.Start)
			}
			a.count += w.Count
			switch agg {
			case Sum:
				a.sum += w.Value
			case Avg:
				a.sum += w.Value * float64(w.Count)
			case Min:
				if w.Value < a.min {
					a.min = w.Value
				}
			case Max:
				if w.Value > a.max {
					a.max = w.Value
				}
			}
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]WindowResult, 0, len(starts))
	for _, s := range starts {
		a := merged[s]
		w := WindowResult{Start: s, Count: a.count}
		switch agg {
		case Count:
			w.Value = float64(a.count)
		case Sum:
			w.Value = a.sum
		case Avg:
			if a.count > 0 {
				w.Value = a.sum / float64(a.count)
			}
		case Min:
			w.Value = a.min
		case Max:
			w.Value = a.max
		}
		out = append(out, w)
	}
	return out, nil
}
