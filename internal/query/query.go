// Package query implements windowed aggregation over time series —
// the downstream analytics the paper motivates sorting with
// (Section VI-E: "computing the average speed of an engine in every
// minute" gives incorrect statistics on disordered data). Aggregations
// run over the sorted record streams the engine's range queries
// return, in a single pass.
package query

import (
	"fmt"

	"repro/internal/engine"
)

// Aggregator selects the per-window aggregate function.
type Aggregator int

// Supported aggregate functions.
const (
	Count Aggregator = iota
	Sum
	Avg
	Min
	Max
	First
	Last
)

// String returns the SQL-ish name of the aggregator.
func (a Aggregator) String() string {
	switch a {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case First:
		return "first"
	case Last:
		return "last"
	default:
		return fmt.Sprintf("Aggregator(%d)", int(a))
	}
}

// WindowResult is one aggregated window [Start, Start+Width).
type WindowResult struct {
	Start int64
	Count int
	Value float64
}

// AggregateWindows buckets the points into fixed windows
// [startT + k·window, startT + (k+1)·window) for startT <= t < endT
// and aggregates each. Points must be sorted by time (the engine
// guarantees this); out-of-order input returns an error, because
// silently aggregating disordered data is exactly the failure mode the
// paper warns about. Empty windows are omitted.
func AggregateWindows(points []engine.TV, startT, endT, window int64, agg Aggregator) ([]WindowResult, error) {
	if window <= 0 {
		return nil, fmt.Errorf("query: window must be positive, got %d", window)
	}
	if endT < startT {
		return nil, fmt.Errorf("query: empty range [%d, %d)", startT, endT)
	}
	var out []WindowResult
	var cur *WindowResult
	prevT := int64(0)
	for i, p := range points {
		if i > 0 && p.T < prevT {
			return nil, fmt.Errorf("query: input not sorted at index %d (%d after %d)", i, p.T, prevT)
		}
		prevT = p.T
		if p.T < startT || p.T >= endT {
			continue
		}
		ws := startT + ((p.T-startT)/window)*window
		if cur == nil || cur.Start != ws {
			if cur != nil {
				finalize(cur, agg)
				out = append(out, *cur)
			}
			cur = &WindowResult{Start: ws}
		}
		accumulate(cur, p.V, agg)
	}
	if cur != nil {
		finalize(cur, agg)
		out = append(out, *cur)
	}
	return out, nil
}

func accumulate(w *WindowResult, v float64, agg Aggregator) {
	w.Count++
	switch agg {
	case Count:
		w.Value = float64(w.Count)
	case Sum, Avg:
		w.Value += v
	case Min:
		if w.Count == 1 || v < w.Value {
			w.Value = v
		}
	case Max:
		if w.Count == 1 || v > w.Value {
			w.Value = v
		}
	case First:
		if w.Count == 1 {
			w.Value = v
		}
	case Last:
		w.Value = v
	}
}

func finalize(w *WindowResult, agg Aggregator) {
	if agg == Avg && w.Count > 0 {
		w.Value /= float64(w.Count)
	}
}

// Source is anything that can answer sorted time-range queries — a
// bare engine.Engine or the shard router, which fans the engine API
// out over hash-partitioned shards.
type Source interface {
	Query(sensor string, minT, maxT int64) ([]engine.TV, error)
}

// WindowQuery runs a time-range query on the source and aggregates the
// result — SELECT agg(value) FROM sensor WHERE startT <= time < endT
// GROUP BY window.
func WindowQuery(e Source, sensor string, startT, endT, window int64, agg Aggregator) ([]WindowResult, error) {
	points, err := e.Query(sensor, startT, endT-1)
	if err != nil {
		return nil, err
	}
	return AggregateWindows(points, startT, endT, window, agg)
}
