package query

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/winagg"
)

func pts(tv ...float64) []engine.TV {
	out := make([]engine.TV, 0, len(tv)/2)
	for i := 0; i+1 < len(tv); i += 2 {
		out = append(out, engine.TV{T: int64(tv[i]), V: tv[i+1]})
	}
	return out
}

func TestAggregateWindowsAvg(t *testing.T) {
	// Two windows of width 10: [0,10) holds 1,3; [10,20) holds 5.
	in := pts(0, 1, 5, 3, 12, 5)
	out, err := AggregateWindows(in, 0, 20, 10, Avg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("windows = %+v", out)
	}
	if out[0].Start != 0 || out[0].Count != 2 || out[0].Value != 2 {
		t.Fatalf("window 0 = %+v", out[0])
	}
	if out[1].Start != 10 || out[1].Count != 1 || out[1].Value != 5 {
		t.Fatalf("window 1 = %+v", out[1])
	}
}

func TestAggregateWindowsAllAggregators(t *testing.T) {
	in := pts(0, 4, 1, -2, 2, 7) // one window
	wants := map[Aggregator]float64{
		Count: 3, Sum: 9, Avg: 3, Min: -2, Max: 7, First: 4, Last: 7,
	}
	for agg, want := range wants {
		out, err := AggregateWindows(in, 0, 10, 10, agg)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0].Value != want {
			t.Fatalf("%s: got %+v, want %g", agg, out, want)
		}
	}
}

func TestAggregateWindowsSkipsEmptyAndOutOfRange(t *testing.T) {
	in := pts(-5, 1, 0, 2, 35, 3, 99, 4)
	out, err := AggregateWindows(in, 0, 40, 10, Count)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: [0,10)→1 point, [30,40)→1 point; -5 and 99 excluded;
	// empty windows [10,20),[20,30) omitted.
	if len(out) != 2 || out[0].Start != 0 || out[1].Start != 30 {
		t.Fatalf("windows = %+v", out)
	}
}

func TestAggregateWindowsRejectsDisorder(t *testing.T) {
	in := pts(5, 1, 3, 2) // out of order
	if _, err := AggregateWindows(in, 0, 10, 5, Avg); err == nil {
		t.Fatal("disordered input accepted — the exact failure the paper warns about")
	}
}

func TestAggregateWindowsValidation(t *testing.T) {
	if _, err := AggregateWindows(nil, 0, 10, 0, Avg); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := AggregateWindows(nil, 10, 0, 5, Avg); err == nil {
		t.Fatal("inverted range accepted")
	}
	out, err := AggregateWindows(nil, 0, 10, 5, Avg)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %+v, %v", out, err)
	}
}

func TestAggregateWindowsNegativeStart(t *testing.T) {
	in := pts(-15, 1, -5, 2, 5, 3)
	out, err := AggregateWindows(in, -20, 10, 10, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].Start != -20 || out[1].Start != -10 || out[2].Start != 0 {
		t.Fatalf("windows = %+v", out)
	}
}

func TestAggregateWindowsTiesWithinWindow(t *testing.T) {
	in := pts(5, 1, 5, 2, 5, 3) // equal timestamps are legal input
	out, err := AggregateWindows(in, 0, 10, 10, Count)
	if err != nil || len(out) != 1 || out[0].Count != 3 {
		t.Fatalf("ties: %+v, %v", out, err)
	}
}

func TestAggregatorString(t *testing.T) {
	if Count.String() != "count" || Avg.String() != "avg" || Aggregator(99).String() == "" {
		t.Fatal("String() wrong")
	}
}

func TestWindowQueryEndToEnd(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), MemTableSize: 50, SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// 120 points at t=0..119, value = t; some arrive out of order.
	order := make([]int64, 0, 120)
	for i := 0; i < 120; i += 2 {
		order = append(order, int64(i+1), int64(i)) // pairwise swapped
	}
	for _, tt := range order {
		if err := e.Insert("s", tt, float64(tt)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := WindowQuery(e, "s", 0, 120, 60, Avg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("windows = %+v", out)
	}
	// Average of 0..59 = 29.5; of 60..119 = 89.5.
	if math.Abs(out[0].Value-29.5) > 1e-9 || math.Abs(out[1].Value-89.5) > 1e-9 {
		t.Fatalf("averages = %+v", out)
	}
	if out[0].Count != 60 || out[1].Count != 60 {
		t.Fatalf("counts = %+v", out)
	}
}

func TestWindowQueryHalfOpenBoundary(t *testing.T) {
	e, err := engine.Open(engine.Config{Dir: t.TempDir(), SyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Insert("s", 9, 1)
	e.Insert("s", 10, 2) // endT is exclusive: must not appear
	out, err := WindowQuery(e, "s", 0, 10, 10, Count)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Count != 1 {
		t.Fatalf("boundary leak: %+v", out)
	}
}

// recordingSource counts Query calls so tests can prove WindowQuery
// short-circuited (or dispatched to pushdown) without scanning.
type recordingSource struct {
	queries int
	aggs    int
}

func (r *recordingSource) Query(sensor string, minT, maxT int64) ([]engine.TV, error) {
	r.queries++
	return pts(0, 1, 5, 2), nil
}

type recordingAggSource struct {
	recordingSource
}

func (r *recordingAggSource) AggregateWindows(sensor string, startT, endT, window int64, op winagg.Op) ([]winagg.Window, error) {
	r.aggs++
	return []winagg.Window{{Start: startT, Count: 2, Value: 3}}, nil
}

func TestWindowQueryEmptyRangeGuards(t *testing.T) {
	src := &recordingSource{}
	// endT == startT is empty under the half-open contract. In
	// particular endT == math.MinInt64 must be handled here: the
	// materialized fallback computes endT-1, which would wrap to
	// MaxInt64 and scan everything.
	for _, r := range [][2]int64{{0, 0}, {math.MinInt64, math.MinInt64}, {5, 5}} {
		out, err := WindowQuery(src, "s", r[0], r[1], 10, Count)
		if err != nil || out != nil {
			t.Fatalf("[%d,%d): got %v, %v", r[0], r[1], out, err)
		}
	}
	if src.queries != 0 {
		t.Fatalf("empty range still scanned %d times", src.queries)
	}
	if _, err := WindowQuery(src, "s", 10, 5, 10, Count); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := WindowQuery(src, "s", 0, 10, 0, Count); err == nil {
		t.Fatal("window=0 accepted")
	}
}

func TestWindowQueryDispatchesToPushdown(t *testing.T) {
	agg := &recordingAggSource{}
	out, err := WindowQuery(agg, "s", 0, 10, 10, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if agg.aggs != 1 || agg.queries != 0 {
		t.Fatalf("pushdown not used: aggs=%d queries=%d", agg.aggs, agg.queries)
	}
	if len(out) != 1 || out[0].Count != 2 {
		t.Fatalf("pushdown result not returned: %+v", out)
	}
	// A plain Source falls back to materialize-then-aggregate.
	plain := &recordingSource{}
	if _, err := WindowQuery(plain, "s", 0, 10, 10, Sum); err != nil {
		t.Fatal(err)
	}
	if plain.queries != 1 {
		t.Fatalf("fallback did not scan: %d", plain.queries)
	}
}
