package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestStd(t *testing.T) {
	if got := Std([]float64{5}); got != 0 {
		t.Fatalf("Std of single = %g, want 0", got)
	}
	// Population std of {2,4,4,4,5,5,7,9} is 2.
	if got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("Std = %g, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %g, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%g,%g), want (-1,7)", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(nil) should panic")
		}
	}()
	MinMax(nil)
}

func TestPercentileBounds(t *testing.T) {
	// Property: percentile is always within [min, max].
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pp)
		min, max := MinMax(xs)
		return v >= min && v <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if h.Samples() != 100 {
		t.Fatalf("Samples = %d, want 100", h.Samples())
	}
	for i := range h.Counts {
		if h.Counts[i] != 10 {
			t.Fatalf("bucket %d count %d, want 10", i, h.Counts[i])
		}
		if !almostEq(h.Density(i), 0.1, 1e-12) {
			t.Fatalf("bucket %d density %g, want 0.1", i, h.Density(i))
		}
		if !almostEq(h.BucketCenter(i), float64(i)+0.5, 1e-12) {
			t.Fatalf("bucket %d center %g", i, h.BucketCenter(i))
		}
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("out-of-range samples not clamped: %v", h.Counts)
	}
}

func TestHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with hi<=lo should panic")
		}
	}()
	NewHistogram(1, 1, 4)
}
