// Package stats provides the small numeric helpers shared by the
// measurement and benchmarking code: means, standard deviations,
// percentiles and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs, or 0 for fewer
// than two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies xs, so the
// input is left unmodified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the smallest and largest values in xs. It panics on
// an empty slice, which is always a programming error in this
// repository.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Histogram is a fixed-width histogram over [Lo, Hi). Samples outside
// the range are clamped into the first or last bucket.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int64
	width   float64
	samples int64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) with %d buckets", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n), width: (hi - lo) / float64(n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.samples++
}

// Samples reports the number of recorded samples.
func (h *Histogram) Samples() int64 { return h.samples }

// Density returns the normalized density of bucket i, so that the
// densities integrate to ~1 over [Lo, Hi).
func (h *Histogram) Density(i int) float64 {
	if h.samples == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.samples) * h.width)
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}
