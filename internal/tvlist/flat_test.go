package tvlist

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sortalgo"
)

func fillRandom(l *TVList[float64], n int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		t := int64(r.Intn(n * 2))
		l.Put(t, float64(t)*0.5)
	}
}

// TestEnsureSortedFlatMatchesInterface sorts identical lists through
// the flat kernel and the interface path and requires identical
// contents, across sizes that exercise empty, single-array, exact
// multiple-of-arrayLen, and ragged-last-array layouts.
func TestEnsureSortedFlatMatchesInterface(t *testing.T) {
	backward, ok := sortalgo.Get("backward")
	if !ok {
		t.Fatal("backward algorithm not registered")
	}
	for _, arrayLen := range []int{1, 7, 32} {
		for _, n := range []int{0, 1, 2, 31, 32, 33, 64, 1000, 4096, 5000} {
			a := NewWithArrayLen[float64](arrayLen)
			b := NewWithArrayLen[float64](arrayLen)
			fillRandom(a, n, int64(n+arrayLen))
			fillRandom(b, n, int64(n+arrayLen))
			fa := a.EnsureSortedFlat(core.FlatOptions{Parallelism: 2})
			fb := b.EnsureSorted(backward)
			if fa != fb {
				t.Fatalf("arrayLen=%d n=%d: flat path sorted=%v, interface sorted=%v", arrayLen, n, fa, fb)
			}
			if !a.Sorted() {
				t.Fatalf("arrayLen=%d n=%d: flat path did not mark list sorted", arrayLen, n)
			}
			for i := 0; i < n; i++ {
				at, av := a.Get(i)
				bt, bv := b.Get(i)
				if at != bt || av != bv {
					t.Fatalf("arrayLen=%d n=%d: element %d differs: flat (%d,%v), interface (%d,%v)",
						arrayLen, n, i, at, av, bt, bv)
				}
			}
		}
	}
}

func TestEnsureSortedFlatAlreadySorted(t *testing.T) {
	l := New[float64]()
	for i := 0; i < 100; i++ {
		l.Put(int64(i), float64(i))
	}
	if !l.Sorted() {
		t.Fatal("in-order puts should leave the list sorted")
	}
	if l.EnsureSortedFlat(core.FlatOptions{}) {
		t.Fatal("EnsureSortedFlat re-sorted an already-sorted list")
	}
}

// TestEnsureSortedFlatText makes sure the compact-to-flat buffers work
// for pointerful value types and that the pooled buffer comes back
// clean — a pooled []string retaining references would pin every sorted
// Text chunk's strings until the pool is GC'd.
func TestEnsureSortedFlatText(t *testing.T) {
	l := NewText()
	want := make(map[int64]string)
	for i := 2000; i > 0; i-- {
		s := string(rune('a'+i%26)) + "-value"
		l.Put(int64(i), s)
		want[int64(i)] = s
	}
	l.EnsureSortedFlat(core.FlatOptions{})
	for i := 0; i < l.Len(); i++ {
		tm, v := l.Get(i)
		if want[tm] != v {
			t.Fatalf("element %d: time %d carries %q, want %q", i, tm, v, want[tm])
		}
		if i > 0 && l.Time(i-1) > tm {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// The buffer the sort used must have been scrubbed on the way back
	// into the pool.
	buf := getFlatBuf[string](2048)
	for i, s := range buf.v[:cap(buf.v)] {
		if s != "" {
			t.Fatalf("pooled flat buffer slot %d retained %q", i, s)
		}
	}
	putFlatBuf(buf)
}

// TestResetClearsValueRefs pins satellite 1: Reset keeps the backing
// arrays for reuse, so for reference-holding value types it must clear
// them — otherwise a recycled Text chunk pins every string it ever
// held.
func TestResetClearsValueRefs(t *testing.T) {
	l := NewText()
	for i := 0; i < 100; i++ {
		l.Put(int64(100-i), "retained")
	}
	l.EnsureScratch(64)
	l.Save(0, 0)
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Reset left Len %d", l.Len())
	}
	for ai, arr := range l.values {
		for i, v := range arr[:cap(arr)] {
			if v != "" {
				t.Fatalf("Reset retained value reference in array %d slot %d: %q", ai, i, v)
			}
		}
	}
	for i, v := range l.scratchV[:cap(l.scratchV)] {
		if v != "" {
			t.Fatalf("Reset retained scratch value reference at %d: %q", i, v)
		}
	}
}

// TestResetKeepsPrimitiveArrays checks the other half of the contract:
// primitive lists skip the clearing memset but still recycle arrays.
func TestResetKeepsPrimitiveArrays(t *testing.T) {
	l := NewDouble()
	for i := 0; i < 100; i++ {
		l.Put(int64(i), 1.0)
	}
	arrays := l.MemoryArrays()
	l.Reset()
	if l.MemoryArrays() != arrays {
		t.Fatalf("Reset dropped recycled arrays: %d, want %d", l.MemoryArrays(), arrays)
	}
	for i := 0; i < 100; i++ {
		l.Put(int64(i), 2.0)
	}
	for i := 0; i < 100; i++ {
		if _, v := l.Get(i); v != 2.0 {
			t.Fatalf("recycled array returned stale value at %d: %v", i, v)
		}
	}
}

// TestEnsureScratchGeometricTVList pins satellite 2 on the TVList
// copy of the scratch-growth logic.
func TestEnsureScratchGeometricTVList(t *testing.T) {
	const steps = 4096
	allocs := testing.AllocsPerRun(3, func() {
		l := New[float64]()
		for n := 1; n <= steps; n++ {
			l.EnsureScratch(n)
		}
	})
	if allocs > 40 {
		t.Fatalf("EnsureScratch allocated %v times for %d monotone requests; growth is not geometric", allocs, steps)
	}
}

// TestEnsureSortedFlatSteadyStateAllocs: after the pool is warm, the
// whole compact-sort-scatter cycle for a primitive list allocates
// nothing at parallelism 1.
func TestEnsureSortedFlatSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is measured without -race")
	}
	const n = 8192
	s := dataset.AbsNormal(n, 1, 2, 3)
	l := New[float64]()
	load := func() {
		l.Reset()
		for i := 0; i < n; i++ {
			l.Put(s.Times[i], s.Values[i])
		}
	}
	load()
	l.EnsureSortedFlat(core.FlatOptions{}) // warm the flat-buffer and scratch pools
	allocs := testing.AllocsPerRun(10, func() {
		load()
		l.EnsureSortedFlat(core.FlatOptions{})
	})
	if allocs >= 1 {
		t.Fatalf("EnsureSortedFlat steady state allocates %v times per run; want 0", allocs)
	}
}

func sortBenchList(n int) (*TVList[float64], *dataset.Series) {
	s := dataset.AbsNormal(n, 1, 2, 1)
	return New[float64](), s
}

func loadList(l *TVList[float64], s *dataset.Series) {
	l.Reset()
	for i := range s.Times {
		l.Put(s.Times[i], s.Values[i])
	}
}

func BenchmarkSortTVListInterface(b *testing.B) {
	backward := sortalgo.MustGet("backward")
	l, s := sortBenchList(1 << 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		loadList(l, s)
		b.StartTimer()
		l.EnsureSorted(backward)
	}
}

func BenchmarkSortTVListFlat(b *testing.B) {
	l, s := sortBenchList(1 << 17)
	loadList(l, s)
	l.EnsureSortedFlat(core.FlatOptions{}) // warm pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		loadList(l, s)
		b.StartTimer()
		l.EnsureSortedFlat(core.FlatOptions{})
	}
}

// sortCheck guards the oracle property at the TVList level once more,
// this time with the kernel threading through the blocked layout.
func TestEnsureSortedFlatOracle(t *testing.T) {
	const n = 3000
	l := New[float64]()
	r := rand.New(rand.NewSource(99))
	orig := make([]int64, n)
	for i := range orig {
		orig[i] = int64(r.Intn(500))
		l.Put(orig[i], float64(orig[i]))
	}
	l.EnsureSortedFlat(core.FlatOptions{Parallelism: 4, FixedBlockSize: 13})
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	for i := 0; i < n; i++ {
		tm, v := l.Get(i)
		if tm != orig[i] {
			t.Fatalf("time[%d] = %d, want %d", i, tm, orig[i])
		}
		if v != float64(tm) {
			t.Fatalf("value detached from time at %d", i)
		}
	}
}
